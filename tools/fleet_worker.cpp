//===- tools/fleet_worker.cpp - fleet worker process entry point ----------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The worker half of a fleet campaign (DESIGN.md Section 16): speaks the
// line-framed protocol of distrib/FleetProtocol.h on stdin/stdout and runs
// each lease through the differential harness. Spawned by the
// CampaignCoordinator, one process per worker slot:
//
//   spe_fleet_worker [--status <path>] [--status-every-ms <n>]
//
//===----------------------------------------------------------------------===//

#include "distrib/Worker.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

int main(int Argc, char **Argv) {
  spe::FleetWorkerOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--status" && I + 1 < Argc) {
      Opts.StatusPath = Argv[++I];
    } else if (Arg == "--status-every-ms" && I + 1 < Argc) {
      Opts.StatusEveryMs = std::strtoull(Argv[++I], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--status <path>] [--status-every-ms <n>]\n",
                   Argv[0]);
      return 64;
    }
  }
  // Lease replies must reach the coordinator as soon as they are written,
  // not when a stdio buffer happens to fill.
  std::ios::sync_with_stdio(false);
  return spe::runFleetWorker(std::cin, std::cout, Opts);
}
