//===- tests/testing_oracle_cache_test.cpp - cache cap + stats -----------===//
//
// Unit tests for the OracleCache size cap (FIFO eviction, eviction
// accounting, cap shrinking) and for the cache/store lifetime stats the
// harness surfaces on CampaignResult at campaign end.
//
//===----------------------------------------------------------------------===//

#include "testing/Corpus.h"
#include "testing/Harness.h"
#include "testing/OracleCache.h"

#include "gtest/gtest.h"

#include <filesystem>

using namespace spe;

namespace {

OracleCache::Entry entry(int64_t Exit) {
  OracleCache::Entry E;
  E.FrontendOk = true;
  E.Status = ExecStatus::Ok;
  E.ExitCode = Exit;
  return E;
}

} // namespace

TEST(OracleCacheCapTest, UnboundedByDefault) {
  OracleCache Cache;
  for (int I = 0; I < 100; ++I)
    Cache.insert("k" + std::to_string(I), entry(I));
  EXPECT_EQ(Cache.size(), 100u);
  EXPECT_EQ(Cache.evictions(), 0u);
}

TEST(OracleCacheCapTest, CapEvictsOldestFirst) {
  OracleCache Cache;
  Cache.setCapacity(3);
  for (int I = 0; I < 5; ++I)
    Cache.insert("k" + std::to_string(I), entry(I));
  EXPECT_EQ(Cache.size(), 3u);
  EXPECT_EQ(Cache.evictions(), 2u);

  OracleCache::Entry E;
  // k0 and k1 (the two oldest) are gone; k2..k4 survive.
  EXPECT_FALSE(Cache.lookup("k0", E));
  EXPECT_FALSE(Cache.lookup("k1", E));
  ASSERT_TRUE(Cache.lookup("k2", E));
  EXPECT_EQ(E.ExitCode, 2);
  EXPECT_TRUE(Cache.lookup("k3", E));
  EXPECT_TRUE(Cache.lookup("k4", E));
}

TEST(OracleCacheCapTest, DuplicateInsertDoesNotEvict) {
  OracleCache Cache;
  Cache.setCapacity(2);
  Cache.insert("a", entry(1));
  Cache.insert("b", entry(2));
  // First-writer-wins re-insert must neither grow the cache nor evict.
  Cache.insert("a", entry(99));
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.evictions(), 0u);
  OracleCache::Entry E;
  ASSERT_TRUE(Cache.lookup("a", E));
  EXPECT_EQ(E.ExitCode, 1);
  EXPECT_TRUE(Cache.lookup("b", E));
}

TEST(OracleCacheCapTest, ShrinkingTheCapEvictsImmediately) {
  OracleCache Cache;
  for (int I = 0; I < 6; ++I)
    Cache.insert("k" + std::to_string(I), entry(I));
  // Enabling a cap on an uncapped population orders by sorted key, so the
  // survivors are deterministic regardless of hash iteration order.
  Cache.setCapacity(2);
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.evictions(), 4u);
  OracleCache::Entry E;
  EXPECT_TRUE(Cache.lookup("k4", E));
  EXPECT_TRUE(Cache.lookup("k5", E));
  EXPECT_FALSE(Cache.lookup("k0", E));
}

TEST(OracleCacheCapTest, ClearResetsEvictionAccounting) {
  OracleCache Cache;
  Cache.setCapacity(1);
  Cache.insert("a", entry(1));
  Cache.insert("b", entry(2));
  EXPECT_EQ(Cache.evictions(), 1u);
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.evictions(), 0u);
}

TEST(OracleCacheCapTest, CampaignSurfacesEvictionAndStoreStats) {
  // A single-threaded campaign with a tightly capped cache: the eviction
  // count and the on-disk store size must land on CampaignResult, and a
  // capped cache must not change what the campaign finds.
  std::filesystem::create_directories("oracle_cache_test_tmp");
  std::string Dir = "oracle_cache_test_tmp";
  std::vector<std::string> Seeds(embeddedSeeds().begin(),
                                 embeddedSeeds().begin() + 2);

  HarnessOptions Plain;
  Plain.Configs = HarnessOptions::crashMatrix(Persona::GccSim, 48);
  Plain.VariantBudget = 40;
  CampaignResult Reference = DifferentialHarness(Plain).runCampaign(Seeds);

  OracleCache Capped;
  Capped.setCapacity(5);
  HarnessOptions Opts = Plain;
  Opts.Cache = &Capped;
  Opts.CheckpointPath = Dir + "/campaign.ck";
  Opts.OracleStorePath = Dir + "/oracle.log";
  std::filesystem::remove(Opts.CheckpointPath);
  std::filesystem::remove(Opts.OracleStorePath);
  CampaignResult Result = DifferentialHarness(Opts).runCampaign(Seeds);

  // Same bugs and coverage-visible outcomes despite the tiny cap.
  EXPECT_EQ(Result.UniqueBugs, Reference.UniqueBugs);
  EXPECT_EQ(Result.VariantsTested, Reference.VariantsTested);

  EXPECT_EQ(Result.OracleCacheEvictions, Capped.evictions());
  EXPECT_GT(Result.OracleCacheEvictions, 0u);
  EXPECT_GT(Result.OracleStoreBytes, 0u);
  EXPECT_EQ(Result.OracleStoreBytes,
            std::filesystem::file_size(Opts.OracleStorePath));
}
