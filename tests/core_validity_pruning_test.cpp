//===- tests/core_validity_pruning_test.cpp - stratum pruning tests ------===//
//
// The contract of core/ValidityPruning.h and the cursor integration: a
// pruned cursor visits exactly the unpruned sequence minus the assignments
// that violate the constraints, in the same order and at the same ranks;
// the skipped count is exact; sharding still partitions the space; and the
// pruned-count DP (countValidClasses) agrees with brute-force filtering.
//
//===----------------------------------------------------------------------===//

#include "core/AssignmentCursor.h"
#include "core/ValidityPruning.h"
#include "combinatorics/Stirling.h"
#include "skeleton/ProgramEnumerator.h"

#include "gtest/gtest.h"

using namespace spe;

namespace {

/// Two scopes, two types, enough holes for multi-digit strata:
///   root: a0 a1 a2 : type0, p0 p1 : type1
///   child: b0 : type0
/// Holes: four of type0 (two in root, two in child), two of type1 in root.
AbstractSkeleton testSkeleton() {
  AbstractSkeleton Sk;
  ScopeId Root = AbstractSkeleton::rootScope();
  ScopeId Child = Sk.addScope(Root);
  Sk.addVariable("a0", Root, 0);
  Sk.addVariable("a1", Root, 0);
  Sk.addVariable("a2", Root, 0);
  Sk.addVariable("p0", Root, 1);
  Sk.addVariable("p1", Root, 1);
  Sk.addVariable("b0", Child, 0);
  Sk.addHole(Root, 0);
  Sk.addHole(Root, 0);
  Sk.addHole(Child, 0);
  Sk.addHole(Child, 0);
  Sk.addHole(Root, 1);
  Sk.addHole(Root, 1);
  return Sk;
}

std::vector<Assignment> collect(const AbstractSkeleton &Sk, SpeMode Mode,
                                const ValidityConstraints *C) {
  AssignmentCursor Cursor(Sk, Mode);
  if (C)
    Cursor.setConstraints(C);
  std::vector<Assignment> Out;
  while (const Assignment *A = Cursor.next())
    Out.push_back(*A);
  return Out;
}

/// A constraint set exercising every stratum: a level digit (hole 2 may not
/// use any root variable... impossible to forbid wholesale here, so instead
/// forbid concrete (hole, var) pairs across types and scopes).
ValidityConstraints someConstraints(const AbstractSkeleton &Sk) {
  ValidityConstraints C;
  C.reset(Sk);
  C.forbid(0, 1); // hole 0 (type0, root) may not take a1.
  C.forbid(2, 5); // hole 2 (type0, child) may not take the child-local b0.
  C.forbid(3, 0); // hole 3 may not take a0.
  C.forbid(5, 4); // hole 5 (type1) may not take p1.
  return C;
}

} // namespace

TEST(ValidityPruningTest, PrunedCursorEqualsBruteForceFilter) {
  AbstractSkeleton Sk = testSkeleton();
  ValidityConstraints C = someConstraints(Sk);

  std::vector<Assignment> All = collect(Sk, SpeMode::Exact, nullptr);
  std::vector<Assignment> Expected;
  for (const Assignment &A : All)
    if (!assignmentViolates(A, C))
      Expected.push_back(A);

  std::vector<Assignment> Pruned = collect(Sk, SpeMode::Exact, &C);
  EXPECT_EQ(Pruned, Expected);
  EXPECT_LT(Pruned.size(), All.size()) << "constraints should bite";

  AssignmentCursor Counter(Sk, SpeMode::Exact);
  Counter.setConstraints(&C);
  uint64_t Valid = 0;
  while (Counter.next())
    ++Valid;
  EXPECT_EQ(Counter.pruned(), BigInt(All.size() - Expected.size()));
  EXPECT_EQ(Valid, Expected.size());
}

TEST(ValidityPruningTest, PaperFaithfulModeFiltersIdentically) {
  AbstractSkeleton Sk = testSkeleton();
  ValidityConstraints C = someConstraints(Sk);

  std::vector<Assignment> All = collect(Sk, SpeMode::PaperFaithful, nullptr);
  std::vector<Assignment> Expected;
  for (const Assignment &A : All)
    if (!assignmentViolates(A, C))
      Expected.push_back(A);
  EXPECT_EQ(collect(Sk, SpeMode::PaperFaithful, &C), Expected);
}

TEST(ValidityPruningTest, InvalidSpanEndIsExact) {
  AbstractSkeleton Sk = testSkeleton();
  ValidityConstraints C = someConstraints(Sk);
  std::vector<Assignment> All = collect(Sk, SpeMode::Exact, nullptr);

  AssignmentCursor Cursor(Sk, SpeMode::Exact);
  ASSERT_TRUE(Cursor.size().fitsInUint64());
  uint64_t N = Cursor.size().toUint64();
  ASSERT_EQ(N, All.size());
  for (uint64_t R = 0; R < N; ++R) {
    BigInt SpanEnd = Cursor.invalidSpanEnd(BigInt(R), C);
    if (assignmentViolates(All[R], C)) {
      // The whole reported span must be invalid, and it must not be empty.
      ASSERT_GT(SpanEnd, BigInt(R)) << "rank " << R;
      ASSERT_TRUE(SpanEnd.fitsInUint64());
      for (uint64_t S = R; S < SpanEnd.toUint64(); ++S)
        EXPECT_TRUE(assignmentViolates(All[S], C)) << "rank " << S;
    } else {
      EXPECT_EQ(SpanEnd, BigInt(R)) << "rank " << R;
    }
  }
}

TEST(ValidityPruningTest, ShardsPartitionThePrunedSequence) {
  AbstractSkeleton Sk = testSkeleton();
  ValidityConstraints C = someConstraints(Sk);
  std::vector<Assignment> Expected = collect(Sk, SpeMode::Exact, &C);

  for (uint64_t Shards : {2u, 3u, 4u, 7u}) {
    std::vector<Assignment> Union;
    BigInt TotalPruned(0);
    for (uint64_t S = 0; S < Shards; ++S) {
      AssignmentCursor Cursor(Sk, SpeMode::Exact);
      Cursor.setConstraints(&C);
      Cursor.shard(S, Shards);
      while (const Assignment *A = Cursor.next())
        Union.push_back(*A);
      TotalPruned += Cursor.pruned();
    }
    EXPECT_EQ(Union, Expected) << Shards << " shards";
    AssignmentCursor Full(Sk, SpeMode::Exact);
    EXPECT_EQ(TotalPruned + BigInt(Expected.size()), Full.size());
  }
}

TEST(ValidityPruningTest, CountValidPartitionsMatchesUnconstrained) {
  // With nothing forbidden the DP must reproduce partitionsUpTo(N, K).
  StirlingTable Table;
  AbstractSkeleton Sk = testSkeleton();
  ValidityConstraints None;
  None.reset(Sk);
  for (unsigned N = 0; N <= 5; ++N) {
    std::vector<unsigned> Holes(N);
    for (unsigned I = 0; I < N; ++I)
      Holes[I] = I;
    for (unsigned K = 1; K <= 4; ++K) {
      std::vector<VarId> Vars(K);
      for (unsigned I = 0; I < K; ++I)
        Vars[I] = I;
      EXPECT_EQ(countValidPartitions(Holes, Vars, None),
                Table.partitionsUpTo(N, K))
          << "N=" << N << " K=" << K;
    }
  }
}

TEST(ValidityPruningTest, CountValidClassesMatchesEnumeration) {
  AbstractSkeleton Sk = testSkeleton();
  ValidityConstraints C = someConstraints(Sk);
  EXPECT_EQ(countValidClasses(Sk, C),
            BigInt(collect(Sk, SpeMode::Exact, &C).size()));

  ValidityConstraints None;
  None.reset(Sk);
  AssignmentCursor Cursor(Sk, SpeMode::Exact);
  EXPECT_EQ(countValidClasses(Sk, None), Cursor.size());
}

TEST(ValidityPruningTest, FullyForbiddenHoleEmptiesTheSpace) {
  AbstractSkeleton Sk = testSkeleton();
  ValidityConstraints C;
  C.reset(Sk);
  // Hole 4 (type1, root) loses both p0 and p1: nothing survives.
  C.forbid(4, 3);
  C.forbid(4, 4);
  EXPECT_TRUE(collect(Sk, SpeMode::Exact, &C).empty());
  EXPECT_EQ(countValidClasses(Sk, C), BigInt(0));
  AssignmentCursor Cursor(Sk, SpeMode::Exact);
  Cursor.setConstraints(&C);
  EXPECT_EQ(Cursor.next(), nullptr);
  EXPECT_EQ(Cursor.pruned(), Cursor.size());
}

TEST(ValidityPruningTest, ProgramSpanDecodeSurvivesHugeUnitSuffixes) {
  // Regression: ProgramCursor's rank decode must divide by multi-limb
  // (>= 2^64) unit suffixes correctly -- an earlier draft aliased the
  // divmod remainder with its dividend, which BigInt zeroes first, so the
  // less-significant units all decoded as rank 0 and invalid variants
  // slipped through. Unit 1 is a ~10^82 space, putting every suffix to its
  // left far beyond one limb.
  SkeletonUnit Small;
  Small.Skeleton.addVariable("s0", AbstractSkeleton::rootScope(), 0);
  Small.Skeleton.addVariable("s1", AbstractSkeleton::rootScope(), 0);
  Small.Skeleton.addHole(AbstractSkeleton::rootScope(), 0);
  Small.Skeleton.addHole(AbstractSkeleton::rootScope(), 0);

  SkeletonUnit Huge;
  {
    AbstractSkeleton &Sk = Huge.Skeleton;
    ScopeId Scope = AbstractSkeleton::rootScope();
    std::vector<ScopeId> Chain{Scope};
    for (unsigned Depth = 0; Depth < 4; ++Depth) {
      Scope = Sk.addScope(Scope);
      Chain.push_back(Scope);
    }
    for (TypeKey T = 0; T < 3; ++T) {
      for (ScopeId S : Chain) {
        Sk.addVariable("v", S, T);
        Sk.addVariable("w", S, T);
      }
      for (ScopeId S : Chain)
        for (unsigned H = 0; H < 8; ++H)
          Sk.addHole(S, T);
    }
  }

  SkeletonUnit Tail;
  Tail.Skeleton.addVariable("t0", AbstractSkeleton::rootScope(), 0);
  Tail.Skeleton.addVariable("t1", AbstractSkeleton::rootScope(), 0);
  Tail.Skeleton.addHole(AbstractSkeleton::rootScope(), 0);
  Tail.Skeleton.addHole(AbstractSkeleton::rootScope(), 0);

  std::vector<SkeletonUnit> Units;
  Units.push_back(std::move(Small));
  Units.push_back(std::move(Huge));
  Units.push_back(std::move(Tail));

  // Forbid the tail unit's second assignment (hole 1 -> var 1), leaving
  // one valid tail rank out of two: the pruned stream over the first few
  // program ranks must be exactly the even ranks.
  ValidityConstraints TailC;
  TailC.reset(Units[2].Skeleton);
  TailC.forbid(1, 1);

  ProgramCursor Pruned(Units, SpeMode::Exact);
  ASSERT_FALSE(Pruned.size().fitsInUint64()) << "suffixes must be multi-limb";
  Pruned.setConstraints({nullptr, nullptr, &TailC});
  Pruned.setEnd(BigInt(8));
  ProgramCursor All(Units, SpeMode::Exact);
  All.setEnd(BigInt(8));

  std::vector<ProgramAssignment> Expected, Got;
  while (const ProgramAssignment *PA = All.next())
    if (!assignmentViolates((*PA)[2], TailC))
      Expected.push_back(*PA);
  while (const ProgramAssignment *PA = Pruned.next()) {
    EXPECT_FALSE(assignmentViolates((*PA)[2], TailC))
        << "pruned cursor emitted a forbidden tail assignment";
    Got.push_back(*PA);
  }
  EXPECT_EQ(Got, Expected);
  EXPECT_EQ(Pruned.pruned(), BigInt(4)); // Ranks 1, 3, 5, 7.

  // Deep seek: beyond the first multi-limb block the decode's dividend
  // exceeds 2^64, the exact case the aliasing bug corrupted. Forbid the
  // *first* unit's rank-0 assignment too (hole 1 -> var 0), so a decode
  // that misreads the leading digit as 0 fabricates a huge bogus span and
  // silently swallows the valid variants that follow.
  ValidityConstraints HeadC;
  HeadC.reset(Units[0].Skeleton);
  HeadC.forbid(1, 0);

  BigInt H = AssignmentCursor(Units[1].Skeleton, SpeMode::Exact).size();
  BigInt BlockStart = H * 2; // Start of head-unit rank 1 (the valid head).
  ProgramCursor Deep(Units, SpeMode::Exact);
  Deep.setConstraints({&HeadC, nullptr, &TailC});
  Deep.seek(BlockStart + BigInt(5)); // Odd rank: tail invalid.
  Deep.setEnd(BlockStart + BigInt(10));
  std::vector<ProgramAssignment> DeepGot;
  while (const ProgramAssignment *PA = Deep.next())
    DeepGot.push_back(*PA);
  // Valid ranks in [start+5, start+10) are the even ones: +6 and +8.
  ASSERT_EQ(DeepGot.size(), 2u)
      << "span decode overshot past valid deep ranks";
  for (const ProgramAssignment &PA : DeepGot) {
    EXPECT_FALSE(assignmentViolates(PA[0], HeadC));
    EXPECT_FALSE(assignmentViolates(PA[2], TailC));
  }
  EXPECT_EQ(Deep.pruned(), BigInt(3)); // Ranks +5, +7, +9.
}

TEST(ValidityPruningTest, SeekLandsOnUnprunedRanks) {
  // Ranks are not renumbered: seeking to rank R then pulling must yield the
  // first *valid* assignment at rank >= R, exactly like filtering the
  // unpruned stream from R.
  AbstractSkeleton Sk = testSkeleton();
  ValidityConstraints C = someConstraints(Sk);
  std::vector<Assignment> All = collect(Sk, SpeMode::Exact, nullptr);

  for (uint64_t R = 0; R < All.size(); R += 7) {
    AssignmentCursor Cursor(Sk, SpeMode::Exact);
    Cursor.setConstraints(&C);
    Cursor.seek(BigInt(R));
    const Assignment *A = Cursor.next();
    const Assignment *Want = nullptr;
    for (uint64_t S = R; S < All.size(); ++S) {
      if (!assignmentViolates(All[S], C)) {
        Want = &All[S];
        break;
      }
    }
    if (!Want) {
      EXPECT_EQ(A, nullptr) << "seek " << R;
    } else {
      ASSERT_NE(A, nullptr) << "seek " << R;
      EXPECT_EQ(*A, *Want) << "seek " << R;
    }
  }
}
