//===- tests/triage_pipeline_test.cpp - post-campaign triage acceptance --===//
//
// The acceptance bar of the triage subsystem, measured on the two-persona
// corpus campaign (the generated c-torture-style corpus, both personas at
// trunk over the paper's crash matrix):
//
//   * signature clustering collapses the raw per-configuration finding
//     stream into fewer clusters (dedup ratio > 1) without losing any
//     ground-truth bug id;
//   * the triaged report is bit-identical at 1, 2, and 4 worker threads
//     (and so is the full CampaignResult, UniqueBugs included);
//   * every reduced reproducer still triggers its original signature AND
//     its original injected ground-truth bug;
//   * the mean reproducer token count shrinks by >= 40% versus the raw
//     representative witness.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "lang/Parser.h"
#include "reduce/BugRepro.h"
#include "reduce/SkeletonReducer.h"
#include "sema/Sema.h"
#include "testing/Corpus.h"
#include "testing/Harness.h"
#include "testing/OracleCache.h"
#include "triage/Deduper.h"

#include "gtest/gtest.h"

#include <memory>
#include <set>

using namespace spe;

namespace {

std::vector<std::string> corpusSeeds() {
  CorpusOptions Opts;
  Opts.UninitLocalProb = 0.6;
  return generateCorpus(3000, 32, Opts);
}

/// The two-persona trunk campaign over the paper's crash matrix; triage is
/// run explicitly on the merged result so both personas share one report.
CampaignResult twoPersonaCampaign(const std::vector<std::string> &Seeds,
                                  OracleCache *Cache, unsigned Threads) {
  CampaignResult Total;
  for (Persona P : {Persona::GccSim, Persona::ClangSim}) {
    HarnessOptions Opts;
    Opts.Configs =
        HarnessOptions::crashMatrix(P, P == Persona::GccSim ? 70 : 40);
    Opts.VariantBudget = 150;
    Opts.Cache = Cache;
    Opts.Threads = Threads;
    Total.merge(DifferentialHarness(Opts).runCampaign(Seeds));
  }
  return Total;
}

bool triggersGroundTruth(const std::string &Source, const FoundBug &Bug) {
  auto Ctx = std::make_unique<ASTContext>();
  DiagnosticEngine Diags;
  if (!Parser::parse(Source, *Ctx, Diags))
    return false;
  Sema Analysis(*Ctx, Diags);
  if (!Analysis.run())
    return false;
  MiniCompiler CC({Bug.P, Bug.Version, Bug.OptLevel, Bug.Mode64});
  CompileResult R = CC.compile(*Ctx);
  if (Bug.Effect == BugEffect::Crash)
    return R.crashed() && R.CrashBugId == Bug.BugId;
  for (int Id : R.FiredBugs)
    if (Id == Bug.BugId)
      return true;
  return false;
}

} // namespace

TEST(TriagePipelineTest, SignatureClusteringCollapsesConfigDuplicates) {
  OracleCache Cache;
  CampaignResult Campaign = twoPersonaCampaign(corpusSeeds(), &Cache, 1);
  ASSERT_FALSE(Campaign.UniqueBugs.empty());
  ASSERT_GT(Campaign.RawFindings.size(), Campaign.UniqueBugs.size())
      << "the raw stream must carry per-config duplicates";

  TriageOptions Opts;
  Opts.Cache = &Cache;
  triageCampaign(Campaign, Opts);

  ASSERT_FALSE(Campaign.Triaged.empty());
  EXPECT_EQ(Campaign.Reduction.RawBugs, Campaign.RawFindings.size());
  EXPECT_EQ(Campaign.Reduction.Clusters, Campaign.Triaged.size());
  EXPECT_GT(Campaign.Reduction.dedupRatio(), 1.0)
      << "triage must collapse duplicate findings into signature clusters";

  // No ground-truth bug id may be lost by clustering, and the clusters'
  // signatures must be unique and sorted.
  std::set<int> Covered;
  for (size_t I = 0; I < Campaign.Triaged.size(); ++I) {
    const TriagedBug &Cluster = Campaign.Triaged[I];
    EXPECT_GE(Cluster.RawCount, Cluster.MemberIds.size());
    Covered.insert(Cluster.MemberIds.begin(), Cluster.MemberIds.end());
    if (I > 0)
      EXPECT_TRUE(Campaign.Triaged[I - 1].Sig < Cluster.Sig);
  }
  std::set<int> Expected;
  for (const auto &[Id, Bug] : Campaign.UniqueBugs)
    Expected.insert(Id);
  EXPECT_EQ(Covered, Expected);
}

TEST(TriagePipelineTest, TriagedReportIsThreadCountInvariant) {
  std::vector<std::string> Seeds = corpusSeeds();

  // One fresh cache per thread-count run (shared across that run's shards
  // and its triage pass), so even the oracle-cost counters must coincide.
  OracleCache CacheOne;
  CampaignResult AtOne = twoPersonaCampaign(Seeds, &CacheOne, 1);
  TriageOptions OptsOne;
  OptsOne.Cache = &CacheOne;
  triageCampaign(AtOne, OptsOne);
  ASSERT_FALSE(AtOne.Triaged.empty());

  for (unsigned Threads : {2u, 4u}) {
    OracleCache Cache;
    CampaignResult At = twoPersonaCampaign(Seeds, &Cache, Threads);
    TriageOptions Opts;
    Opts.Cache = &Cache;
    triageCampaign(At, Opts);
    EXPECT_TRUE(At.Triaged == AtOne.Triaged) << "threads=" << Threads;
    EXPECT_TRUE(At == AtOne) << "threads=" << Threads;
  }

  // The harness's own opt-in pass produces the same per-persona clusters.
  HarnessOptions HOpts;
  HOpts.Configs = HarnessOptions::crashMatrix(Persona::GccSim, 70);
  HOpts.VariantBudget = 150;
  HOpts.Cache = &CacheOne;
  HOpts.Triage = true;
  CampaignResult ViaHarness = DifferentialHarness(HOpts).runCampaign(Seeds);
  ASSERT_FALSE(ViaHarness.Triaged.empty());
  EXPECT_GT(ViaHarness.Reduction.ReductionProbes, 0u);
  for (const TriagedBug &Cluster : ViaHarness.Triaged)
    EXPECT_EQ(Cluster.Sig.P, Persona::GccSim);
}

TEST(TriagePipelineTest, ReducedReproducersStayFaithfulAndShrink40Percent) {
  OracleCache Cache;
  CampaignResult Campaign = twoPersonaCampaign(corpusSeeds(), &Cache, 1);

  TriageOptions Opts;
  Opts.Cache = &Cache;
  triageCampaign(Campaign, Opts);
  ASSERT_FALSE(Campaign.Triaged.empty());

  double ReductionSum = 0.0;
  for (const TriagedBug &Cluster : Campaign.Triaged) {
    const FoundBug &Rep = Cluster.Representative;

    // Faithfulness: the reduced reproducer still shows the cluster's
    // normalized signature and still fires the original injected bug.
    ReproSpec Spec;
    Spec.Config = {Rep.P, Rep.Version, Rep.OptLevel, Rep.Mode64};
    Spec.Effect = Rep.Effect;
    Spec.SignatureKey = Cluster.Sig.Key;
    ReproOracle Check(Spec, &Cache);
    EXPECT_TRUE(Check.reproduces(Rep.WitnessProgram))
        << Cluster.Sig.str() << "\n"
        << Rep.WitnessProgram;
    EXPECT_TRUE(triggersGroundTruth(Rep.WitnessProgram, Rep))
        << Cluster.Sig.str();

    EXPECT_EQ(Cluster.TokensAfter, tokenCount(Rep.WitnessProgram));
    ASSERT_GT(Cluster.TokensBefore, 0u);
    ReductionSum += 1.0 - static_cast<double>(Cluster.TokensAfter) /
                              static_cast<double>(Cluster.TokensBefore);
  }

  double MeanReduction =
      ReductionSum / static_cast<double>(Campaign.Triaged.size());
  EXPECT_GE(MeanReduction, 0.40)
      << "mean reproducer token shrink below the acceptance bar";
  EXPECT_GE(Campaign.Reduction.tokenReduction(), 0.40);
  EXPECT_GT(Campaign.Reduction.OracleRuns + Campaign.Reduction.OracleCacheHits,
            0u);
}

TEST(TriagePipelineTest, EmbeddedSeedCampaignTriagesEverySignature) {
  // The embedded handwritten seeds reach more of the bug population; the
  // pipeline must stay faithful there too (no 40% bar: these witnesses are
  // handcrafted minimal figures to begin with).
  OracleCache Cache;
  CampaignResult Total;
  for (Persona P : {Persona::GccSim, Persona::ClangSim}) {
    HarnessOptions Opts;
    Opts.Configs =
        HarnessOptions::crashMatrix(P, P == Persona::GccSim ? 70 : 40);
    for (const CompilerConfig &C : HarnessOptions::optLevelSweep(
             P, P == Persona::GccSim ? 70 : 40))
      Opts.Configs.push_back(C);
    Opts.VariantBudget = 150;
    Opts.Cache = &Cache;
    Total.merge(DifferentialHarness(Opts).runCampaign(embeddedSeeds()));
  }
  ASSERT_GE(Total.UniqueBugs.size(), 4u);

  TriageOptions Opts;
  Opts.Cache = &Cache;
  triageCampaign(Total, Opts);
  EXPECT_GT(Total.Reduction.dedupRatio(), 1.0);
  EXPECT_LT(Total.Reduction.TokensAfter, Total.Reduction.TokensBefore);
  for (const TriagedBug &Cluster : Total.Triaged) {
    const FoundBug &Rep = Cluster.Representative;
    ReproSpec Spec;
    Spec.Config = {Rep.P, Rep.Version, Rep.OptLevel, Rep.Mode64};
    Spec.Effect = Rep.Effect;
    Spec.SignatureKey = Cluster.Sig.Key;
    ReproOracle Check(Spec, &Cache);
    EXPECT_TRUE(Check.reproduces(Rep.WitnessProgram)) << Cluster.Sig.str();
  }
}
