//===- tests/testing_harness_parallel_test.cpp - parallel campaign tests -===//
//
// The load-bearing property of the worker-pool campaign: a campaign split
// across N cursor shards must produce a CampaignResult identical to the
// single-threaded run -- same counters, same unique bugs, same witness
// programs -- and the merged coverage registry must match too.
//
//===----------------------------------------------------------------------===//

#include "testing/Corpus.h"
#include "testing/Harness.h"

#include "gtest/gtest.h"

using namespace spe;

namespace {

HarnessOptions baseOptions() {
  HarnessOptions Opts;
  Opts.Configs = HarnessOptions::crashMatrix(Persona::GccSim, 48);
  std::vector<CompilerConfig> Clang =
      HarnessOptions::crashMatrix(Persona::ClangSim, 36);
  Opts.Configs.insert(Opts.Configs.end(), Clang.begin(), Clang.end());
  Opts.VariantBudget = 150;
  return Opts;
}

std::vector<std::string> testSeeds() {
  const std::vector<std::string> &Embedded = embeddedSeeds();
  std::vector<std::string> Seeds(Embedded.begin(),
                                 Embedded.begin() +
                                     std::min<size_t>(Embedded.size(), 4));
  return Seeds;
}

} // namespace

TEST(HarnessParallelTest, MultiThreadedCampaignIsDeterministic) {
  std::vector<std::string> Seeds = testSeeds();

  HarnessOptions Serial = baseOptions();
  Serial.Threads = 1;
  CampaignResult Reference = DifferentialHarness(Serial).runCampaign(Seeds);
  EXPECT_GT(Reference.VariantsEnumerated, 0u);

  for (unsigned Threads : {2u, 3u, 4u}) {
    HarnessOptions Parallel = baseOptions();
    Parallel.Threads = Threads;
    CampaignResult Result = DifferentialHarness(Parallel).runCampaign(Seeds);
    EXPECT_TRUE(Result == Reference)
        << "threads=" << Threads << ": " << Result.VariantsEnumerated << "/"
        << Reference.VariantsEnumerated << " variants, "
        << Result.UniqueBugs.size() << "/" << Reference.UniqueBugs.size()
        << " bugs";
  }
}

TEST(HarnessParallelTest, WitnessProgramsMatchAcrossThreadCounts) {
  // Witnesses are the first finding in rank order; sharding must not change
  // which variant gets credited.
  std::vector<std::string> Seeds = testSeeds();
  HarnessOptions Serial = baseOptions();
  CampaignResult Reference = DifferentialHarness(Serial).runCampaign(Seeds);

  HarnessOptions Parallel = baseOptions();
  Parallel.Threads = 4;
  CampaignResult Result = DifferentialHarness(Parallel).runCampaign(Seeds);

  ASSERT_EQ(Result.UniqueBugs.size(), Reference.UniqueBugs.size());
  for (const auto &[Id, Bug] : Reference.UniqueBugs) {
    auto It = Result.UniqueBugs.find(Id);
    ASSERT_NE(It, Result.UniqueBugs.end()) << "bug " << Id;
    EXPECT_EQ(It->second.WitnessProgram, Bug.WitnessProgram) << "bug " << Id;
  }
}

TEST(HarnessParallelTest, CoverageMergesDeterministically) {
  std::vector<std::string> Seeds = testSeeds();

  CoverageRegistry SerialCov;
  HarnessOptions Serial = baseOptions();
  Serial.Cov = &SerialCov;
  DifferentialHarness(Serial).runCampaign(Seeds);

  CoverageRegistry ParallelCov;
  HarnessOptions Parallel = baseOptions();
  Parallel.Threads = 4;
  Parallel.Cov = &ParallelCov;
  DifferentialHarness(Parallel).runCampaign(Seeds);

  EXPECT_EQ(ParallelCov.hitSet(), SerialCov.hitSet());
  EXPECT_EQ(ParallelCov.totalPoints(), SerialCov.totalPoints());
  EXPECT_GT(ParallelCov.hitPoints(), 0u);
}

TEST(HarnessParallelTest, ZeroThreadsMeansHardwareConcurrency) {
  // Threads = 0 must run (one worker per hardware thread) and still agree
  // with the serial result.
  std::vector<std::string> Seeds = testSeeds();
  HarnessOptions Serial = baseOptions();
  CampaignResult Reference = DifferentialHarness(Serial).runCampaign(Seeds);

  HarnessOptions Auto = baseOptions();
  Auto.Threads = 0;
  CampaignResult Result = DifferentialHarness(Auto).runCampaign(Seeds);
  EXPECT_TRUE(Result == Reference);
}

TEST(HarnessParallelTest, ThreadsBeyondBudgetAreHarmless) {
  std::vector<std::string> Seeds = testSeeds();
  HarnessOptions Tiny = baseOptions();
  Tiny.VariantBudget = 3;
  CampaignResult Reference = DifferentialHarness(Tiny).runCampaign(Seeds);

  HarnessOptions Wide = baseOptions();
  Wide.VariantBudget = 3;
  Wide.Threads = 16;
  CampaignResult Result = DifferentialHarness(Wide).runCampaign(Seeds);
  EXPECT_TRUE(Result == Reference);
  EXPECT_LE(Result.VariantsEnumerated, 3u * Seeds.size());
}

TEST(HarnessParallelTest, ExactModeIsTheDefault) {
  EXPECT_EQ(HarnessOptions().Mode, SpeMode::Exact);
}
