//===- tests/compiler_batch_renderer_test.cpp - packed-TU semantics ------===//
//
// The multi-variant translation unit under compiler/BatchRenderer.h: the
// token-exact alpha-rename (identifiers prefixed, printf and keywords
// preserved, string literals and comments surviving byte-for-byte), the
// packed-TU structure and dispatch-main ABI, real host-compiler execution
// equivalence (running `./batch i` reproduces variant i's solo exit code
// and stdout, including the DispatchBadIndex sentinel), and the harness
// batching contract with the in-process backend: campaign results and
// checkpoints bit-identical across BatchSize and thread count, resumable
// across batch sizes because BatchSize never enters the fingerprint.
//
//===----------------------------------------------------------------------===//

#include "compiler/BatchRenderer.h"
#include "support/ProcessRunner.h"
#include "testing/Corpus.h"
#include "testing/Harness.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>

using namespace spe;

namespace {

std::string tempPath(const std::string &Name) {
  std::filesystem::create_directories("batch_renderer_test_tmp");
  return "batch_renderer_test_tmp/" + Name;
}

bool hostCcWorks() {
  static bool Works = [] {
    ProcessResult R = runProcess({"cc", "--version"});
    return R.exitedWith(0);
  }();
  return Works;
}

#define SKIP_WITHOUT_HOST_CC()                                              \
  do {                                                                      \
    if (!hostCcWorks())                                                     \
      GTEST_SKIP() << "no usable host compiler (cc --version failed)";      \
  } while (0)

} // namespace

//===----------------------------------------------------------------------===//
// prefixIdentifiers: the token-exact alpha-rename
//===----------------------------------------------------------------------===//

TEST(BatchRendererTest, PrefixesIdentifiersButNotKeywordsOrPrintf) {
  std::string Out, Err;
  ASSERT_TRUE(BatchRenderer::prefixIdentifiers(
      "int main(void) { int x = 2; printf(\"%d\\n\", x); return x; }\n",
      "v3_", Out, Err))
      << Err;
  EXPECT_EQ(Out, "int v3_main(void) { int v3_x = 2; "
                 "printf(\"%d\\n\", v3_x); return v3_x; }\n");
}

TEST(BatchRendererTest, LiteralsAndCommentsSurviveByteForByte) {
  // "main" inside a string, a // comment and a /* */ comment must not be
  // renamed: the lexer never produces identifier tokens there, and the
  // splice copies raw text between identifiers untouched.
  std::string Src = "// main x comment\n"
                    "int main(void) {\n"
                    "  /* int x = main; */\n"
                    "  printf(\"main x %d\\n\", 7);\n"
                    "  return 0;\n"
                    "}\n";
  std::string Out, Err;
  ASSERT_TRUE(BatchRenderer::prefixIdentifiers(Src, "v0_", Out, Err)) << Err;
  EXPECT_NE(Out.find("// main x comment"), std::string::npos);
  EXPECT_NE(Out.find("/* int x = main; */"), std::string::npos);
  EXPECT_NE(Out.find("\"main x %d\\n\""), std::string::npos);
  EXPECT_NE(Out.find("int v0_main(void)"), std::string::npos);
}

TEST(BatchRendererTest, RenameIsInjectivePerVariant) {
  // Distinct names stay distinct under a shared prefix; the same name is
  // renamed consistently at every occurrence.
  std::string Out, Err;
  ASSERT_TRUE(BatchRenderer::prefixIdentifiers(
      "int a = 1; int aa = 2;\n"
      "int main(void) { return a + aa + a; }\n",
      "v1_", Out, Err))
      << Err;
  EXPECT_EQ(Out, "int v1_a = 1; int v1_aa = 2;\n"
                 "int v1_main(void) { return v1_a + v1_aa + v1_a; }\n");
}

TEST(BatchRendererTest, NonLexingSourceIsReportedNotPacked) {
  std::string Out, Err;
  EXPECT_FALSE(BatchRenderer::prefixIdentifiers(
      "int main(void) { /* unterminated\n", "v0_", Out, Err));
  EXPECT_FALSE(Err.empty());

  BatchRenderer::Result R = BatchRenderer::pack(
      {"int main(void) { return 0; }\n", "int main(void) { @ }\n"},
      "#include <stdio.h>\n");
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
}

//===----------------------------------------------------------------------===//
// pack: structure and subset numbering
//===----------------------------------------------------------------------===//

TEST(BatchRendererTest, PackedTuCarriesPreludeVariantsAndDispatch) {
  BatchRenderer::Result R = BatchRenderer::pack(
      {"int main(void) { return 1; }\n", "int main(void) { return 2; }\n"},
      "#include <stdio.h>\n");
  ASSERT_TRUE(R.Ok) << R.Error;
  // Prelude exactly once, up front.
  EXPECT_EQ(R.Source.rfind("#include <stdio.h>\n", 0), 0u);
  // Each member renamed into its own namespace...
  EXPECT_NE(R.Source.find("int v0_main(void) { return 1; }"),
            std::string::npos);
  EXPECT_NE(R.Source.find("int v1_main(void) { return 2; }"),
            std::string::npos);
  // ...selected by one generated dispatch main.
  EXPECT_NE(R.Source.find("int main(int argc, char **argv)"),
            std::string::npos);
  EXPECT_NE(R.Source.find("return v0_main();"), std::string::npos);
  EXPECT_NE(R.Source.find("return v1_main();"), std::string::npos);
}

TEST(BatchRendererTest, SubsetPackNumbersMembersLocally) {
  // Bisection re-packs sub-batches; the packed TU numbers members in
  // subset order starting at 0, so the driver's argv index is always the
  // local position, never the original batch position.
  std::vector<std::string> Variants = {"int main(void) { return 10; }\n",
                                       "int main(void) { return 11; }\n",
                                       "int main(void) { return 12; }\n"};
  BatchRenderer::Result R =
      BatchRenderer::pack(Variants, {2, 0}, "#include <stdio.h>\n");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_NE(R.Source.find("int v0_main(void) { return 12; }"),
            std::string::npos);
  EXPECT_NE(R.Source.find("int v1_main(void) { return 10; }"),
            std::string::npos);
  EXPECT_EQ(R.Source.find("v2_"), std::string::npos);

  BatchRenderer::Result Empty =
      BatchRenderer::pack(Variants, {}, "#include <stdio.h>\n");
  EXPECT_FALSE(Empty.Ok);
}

//===----------------------------------------------------------------------===//
// Host-compiler execution equivalence (auto-skipped without cc)
//===----------------------------------------------------------------------===//

TEST(BatchRendererTest, PackedBinaryReproducesEachSoloVariantExactly) {
  SKIP_WITHOUT_HOST_CC();
  // Three variants with distinct exit codes and outputs, sharing global
  // names to prove the per-variant namespaces really are disjoint.
  std::vector<std::string> Variants = {
      "int g = 3;\nint main(void) { printf(\"a %d\\n\", g); return 31; }\n",
      "int g = 4;\nint main(void) { printf(\"b %d\\n\", g + 1); return 0; }\n",
      "int g = 5;\nint main(void) { return g + 60; }\n"};

  BatchRenderer::Result Packed =
      BatchRenderer::pack(Variants, "#include <stdio.h>\n");
  ASSERT_TRUE(Packed.Ok) << Packed.Error;

  std::string Src = tempPath("equiv.c"), Bin = tempPath("equiv.bin");
  {
    std::ofstream OutF(Src);
    OutF << Packed.Source;
  }
  ProcessResult CR = runProcess({"cc", "-w", "-O1", Src, "-o", Bin});
  ASSERT_TRUE(CR.exitedWith(0)) << CR.Stderr;

  for (size_t I = 0; I < Variants.size(); ++I) {
    // Solo reference: the variant compiled on its own.
    std::string SSrc = tempPath("solo" + std::to_string(I) + ".c");
    std::string SBin = tempPath("solo" + std::to_string(I) + ".bin");
    {
      std::ofstream OutF(SSrc);
      OutF << "#include <stdio.h>\n" << Variants[I];
    }
    ProcessResult SC = runProcess({"cc", "-w", "-O1", SSrc, "-o", SBin});
    ASSERT_TRUE(SC.exitedWith(0)) << SC.Stderr;
    ProcessResult Solo = runProcess({"./" + SBin});
    ProcessResult Batched = runProcess({"./" + Bin, std::to_string(I)});
    ASSERT_EQ(Batched.St, ProcessResult::Status::Exited) << Batched.Error;
    EXPECT_EQ(Batched.ExitCode, Solo.ExitCode) << "variant " << I;
    EXPECT_EQ(Batched.Stdout, Solo.Stdout) << "variant " << I;
  }

  // The dispatch ABI's failure sentinel, which the driver never passes.
  EXPECT_TRUE(runProcess({"./" + Bin, "99"})
                  .exitedWith(BatchRenderer::DispatchBadIndex));
  EXPECT_TRUE(runProcess({"./" + Bin})
                  .exitedWith(BatchRenderer::DispatchBadIndex));
  EXPECT_TRUE(runProcess({"./" + Bin, "1x"})
                  .exitedWith(BatchRenderer::DispatchBadIndex));
}

//===----------------------------------------------------------------------===//
// Harness batching contract (in-process backend: no compiler needed)
//===----------------------------------------------------------------------===//

namespace {

HarnessOptions batchedCampaignOptions() {
  HarnessOptions Opts;
  Opts.Configs = {{Persona::GccSim, 70, 0, true},
                  {Persona::GccSim, 70, 2, true},
                  {Persona::ClangSim, 120, 2, true}};
  Opts.VariantBudget = 10;
  return Opts;
}

std::vector<std::string> batchedCampaignSeeds() {
  return {embeddedSeeds()[0], embeddedSeeds()[2], embeddedSeeds()[5]};
}

} // namespace

TEST(BatchedHarnessTest, ResultsAreBitIdenticalAcrossBatchSizeAndThreads) {
  std::vector<std::string> Seeds = batchedCampaignSeeds();
  HarnessOptions Opts = batchedCampaignOptions();
  Opts.BatchSize = 1;
  Opts.Threads = 1;
  CampaignResult Ref = DifferentialHarness(Opts).runCampaign(Seeds);
  EXPECT_GT(Ref.VariantsTested, 0u);
  // The in-process backend finds real (ground-truth) bugs on these seeds,
  // so identity below covers finding-bearing campaigns, not just counters.
  EXPECT_FALSE(Ref.RawFindings.empty());

  for (uint64_t Batch : {2u, 8u, 64u}) {
    for (unsigned Threads : {1u, 2u, 4u}) {
      Opts.BatchSize = Batch;
      Opts.Threads = Threads;
      CampaignResult R = DifferentialHarness(Opts).runCampaign(Seeds);
      EXPECT_TRUE(R == Ref) << "BatchSize " << Batch << " x " << Threads
                            << " threads changed the campaign result";
    }
  }
}

TEST(BatchedHarnessTest, ResumeWorksAcrossBatchSizesBothWays) {
  // BatchSize is deliberately not part of the options fingerprint: a
  // campaign checkpointed at one batch size must resume at any other with
  // bit-identical final results.
  std::vector<std::string> Seeds = batchedCampaignSeeds();
  HarnessOptions Base = batchedCampaignOptions();
  Base.CheckpointEveryN = 3;

  for (auto [CrashBatch, ResumeBatch] :
       {std::pair<uint64_t, uint64_t>{8, 1}, {1, 8}, {8, 64}}) {
    std::string Tag = std::to_string(CrashBatch) + "_to_" +
                      std::to_string(ResumeBatch);
    HarnessOptions Ref = Base;
    Ref.CheckpointPath = tempPath("resume_" + Tag + "_ref.ck");
    Ref.BatchSize = ResumeBatch;
    CampaignResult Uninterrupted = DifferentialHarness(Ref).runCampaign(Seeds);

    HarnessOptions Crashing = Base;
    Crashing.CheckpointPath = tempPath("resume_" + Tag + ".ck");
    Crashing.BatchSize = CrashBatch;
    Crashing.SimulateCrashAfter = 7;
    (void)DifferentialHarness(Crashing).runCampaign(Seeds);

    HarnessOptions Resuming = Base;
    Resuming.CheckpointPath = Crashing.CheckpointPath;
    Resuming.BatchSize = ResumeBatch;
    CampaignResult Resumed;
    std::string Err;
    ASSERT_TRUE(
        DifferentialHarness(Resuming).resumeCampaign(Seeds, Resumed, Err))
        << "crash@" << CrashBatch << " resume@" << ResumeBatch << ": " << Err;
    EXPECT_TRUE(Resumed == Uninterrupted)
        << "crash@" << CrashBatch << " resume@" << ResumeBatch
        << " diverged from the uninterrupted campaign";
  }
}
