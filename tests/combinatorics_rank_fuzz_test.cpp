//===- tests/combinatorics_rank_fuzz_test.cpp - rank/unrank fuzzing ------===//
//
// Property-fuzz tests for the ranking primitives behind cursor seek and
// checkpoint restore: RgsRanker rank/unrank must be mutually inverse at
// *random large ranks* (the existing tests sweep small spaces
// sequentially), SetPartitionGenerator::seekTo must splice into the
// lexicographic stream at any unranked position, and BigInt::divmod must
// hold its division identity on multi-limb operands near radix boundaries
// -- the exact arithmetic the mixed-radix decode leans on at every restore.
//
//===----------------------------------------------------------------------===//

#include "combinatorics/SetPartitions.h"
#include "combinatorics/Stirling.h"
#include "support/BigInt.h"

#include "gtest/gtest.h"

#include <random>

using namespace spe;

namespace {

/// Uniform-ish random BigInt in [0, Bound) built from 64-bit words; exact
/// uniformity is irrelevant for a round-trip property.
BigInt randomBelow(std::mt19937_64 &Rng, const BigInt &Bound) {
  if (Bound <= BigInt(1))
    return BigInt(0);
  unsigned Limbs = (Bound.numBits() + 63) / 64 + 1;
  BigInt R(0);
  for (unsigned I = 0; I < Limbs; ++I) {
    // R = R * 2^64 + word, via two 32-bit multiplies to stay in BigInt ops.
    R *= uint64_t(1) << 32;
    R *= uint64_t(1) << 32;
    R += BigInt(Rng());
  }
  return R % Bound;
}

} // namespace

TEST(RankFuzzTest, RgsRankerRoundTripsAtRandomLargeRanks) {
  std::mt19937_64 Rng(0x5EED);
  // (N, MaxBlocks) shapes chosen so the rank spaces span one to several
  // limbs: Bell(25) ~ 4.6e18 is just inside uint64, Bell(30) ~ 8.5e23 is
  // well past it, and the bounded-block shapes mirror real skeleton groups.
  const std::pair<unsigned, unsigned> Shapes[] = {
      {6, 6}, {9, 4}, {12, 12}, {16, 7}, {20, 20}, {25, 25}, {30, 30},
      {32, 9}};
  for (auto [N, K] : Shapes) {
    RgsRanker Ranker(N, K);
    ASSERT_FALSE(Ranker.count().isZero());
    for (int I = 0; I < 40; ++I) {
      BigInt Rank = randomBelow(Rng, Ranker.count());
      RestrictedGrowthString RGS = Ranker.unrank(Rank);
      ASSERT_TRUE(isValidRGS(RGS)) << "N=" << N << " K=" << K;
      ASSERT_EQ(RGS.size(), N);
      EXPECT_LE(numBlocks(RGS), K);
      EXPECT_EQ(Ranker.rank(RGS), Rank)
          << "N=" << N << " K=" << K << " rank " << Rank.toString();
    }
  }
}

TEST(RankFuzzTest, RgsRankerRoundTripsAtRadixBoundaries) {
  // The divmod edge cases a mixed-radix decode hits: rank 0, count-1, and
  // the ranks straddling each suffix-product boundary (where a digit
  // rolls over and the remainder collapses to 0 / expands to radix-1).
  for (auto [N, K] : {std::pair<unsigned, unsigned>{26, 26},
                      {30, 10},
                      {28, 28}}) {
    RgsRanker Ranker(N, K);
    const BigInt &Count = Ranker.count();
    std::vector<BigInt> Probes = {BigInt(0), Count - BigInt(1),
                                  Count.divideBySmall(2),
                                  Count.divideBySmall(2) + BigInt(1)};
    // Straddle powers of two near the limb boundary when inside range.
    for (unsigned Bits : {63u, 64u, 65u}) {
      BigInt P = BigInt::pow(2, Bits);
      if (P < Count) {
        Probes.push_back(P - BigInt(1));
        Probes.push_back(P);
      }
    }
    for (const BigInt &Rank : Probes) {
      RestrictedGrowthString RGS = Ranker.unrank(Rank);
      EXPECT_EQ(Ranker.rank(RGS), Rank)
          << "N=" << N << " K=" << K << " rank " << Rank.toString();
    }
  }
}

TEST(RankFuzzTest, UnrankIsStrictlyLexicographicAcrossNeighbors) {
  std::mt19937_64 Rng(0xBEEF);
  RgsRanker Ranker(18, 18);
  for (int I = 0; I < 30; ++I) {
    BigInt Rank = randomBelow(Rng, Ranker.count() - BigInt(1));
    RestrictedGrowthString A = Ranker.unrank(Rank);
    RestrictedGrowthString B = Ranker.unrank(Rank + BigInt(1));
    EXPECT_TRUE(A < B) << "rank " << Rank.toString()
                       << " is not lexicographically before its successor";
  }
}

TEST(RankFuzzTest, SeekToSplicesIntoTheGeneratorStreamAnywhere) {
  // seekTo(unrank(r)) then next() must walk unrank(r+1), unrank(r+2), ...
  // exactly -- the property cursor restores depend on. Fuzz random splice
  // points in spaces too large to sweep.
  std::mt19937_64 Rng(0xACE);
  for (auto [N, K] : {std::pair<unsigned, unsigned>{14, 14},
                      {18, 6},
                      {22, 22}}) {
    RgsRanker Ranker(N, K);
    for (int I = 0; I < 12; ++I) {
      BigInt Rank = randomBelow(Rng, Ranker.count());
      SetPartitionGenerator Gen(N, K);
      Gen.seekTo(Ranker.unrank(Rank));
      EXPECT_EQ(Gen.current(), Ranker.unrank(Rank));
      // Walk a short window forward and compare against direct unranking.
      BigInt Next = Rank + BigInt(1);
      for (int Step = 0; Step < 5 && Next < Ranker.count(); ++Step) {
        ASSERT_TRUE(Gen.next());
        EXPECT_EQ(Gen.current(), Ranker.unrank(Next))
            << "N=" << N << " K=" << K << " splice "
            << Rank.toString() << " step " << Step;
        Next += BigInt(1);
      }
      if (Next == Ranker.count())
        EXPECT_FALSE(Gen.next());
    }
  }
}

TEST(RankFuzzTest, BigIntDivmodIdentityOnMultiLimbOperands) {
  // divmod is the engine under every unranking: fuzz the division identity
  // q * d + r == n with r < d on operands spanning 1..5 limbs, biased
  // toward all-ones limb patterns (the historical carry-bug habitat).
  std::mt19937_64 Rng(0xD1CE);
  auto RandomBig = [&](unsigned Limbs, bool Saturate) {
    BigInt V(0);
    for (unsigned I = 0; I < Limbs; ++I) {
      V *= uint64_t(1) << 32;
      V *= uint64_t(1) << 32;
      V += BigInt(Saturate ? ~uint64_t(0) - (Rng() & 0xff) : Rng());
    }
    return V;
  };
  for (int I = 0; I < 200; ++I) {
    unsigned NL = 1 + Rng() % 5, DL = 1 + Rng() % NL;
    bool Saturate = (Rng() & 3) == 0;
    BigInt N = RandomBig(NL, Saturate);
    BigInt D = RandomBig(DL, Saturate);
    if (D.isZero())
      D = BigInt(1);
    BigInt Q, R;
    BigInt::divmod(N, D, Q, R);
    EXPECT_TRUE(R < D) << "remainder not reduced";
    EXPECT_EQ(Q * D + R, N) << "division identity violated";
  }
  // Exact radix boundaries: n = d * k and n = d * k - 1.
  BigInt D = RandomBig(2, true);
  BigInt K = RandomBig(2, false);
  BigInt Product = D * K;
  BigInt Q, R;
  BigInt::divmod(Product, D, Q, R);
  EXPECT_EQ(Q, K);
  EXPECT_TRUE(R.isZero());
  BigInt::divmod(Product - BigInt(1), D, Q, R);
  EXPECT_EQ(Q, K - BigInt(1));
  EXPECT_EQ(R, D - BigInt(1));
}
