//===- tests/lang_parser_test.cpp - parser unit tests --------------------===//

#include "lang/AstPrinter.h"
#include "lang/Parser.h"

#include "gtest/gtest.h"

using namespace spe;

namespace {
/// Parses and returns success; on failure the diagnostics are attached.
bool parses(const std::string &Source, ASTContext &Ctx) {
  DiagnosticEngine Diags;
  bool Ok = Parser::parse(Source, Ctx, Diags);
  EXPECT_TRUE(Ok) << Diags.toString() << "\nsource:\n" << Source;
  return Ok;
}
} // namespace

TEST(ParserTest, GlobalsAndTypes) {
  ASTContext Ctx;
  ASSERT_TRUE(parses("int a; unsigned long b = 7; char c, d = 'x';\n"
                     "short *p; int arr[4]; int m[2][3];",
                     Ctx));
  std::vector<VarDecl *> Gs = Ctx.globals();
  ASSERT_EQ(Gs.size(), 7u);
  EXPECT_EQ(Gs[0]->type()->toString(), "int");
  EXPECT_EQ(Gs[1]->type()->toString(), "unsigned long");
  ASSERT_NE(Gs[1]->init(), nullptr);
  EXPECT_EQ(Gs[3]->name(), "d");
  EXPECT_EQ(Gs[4]->type()->toString(), "short *");
  EXPECT_EQ(Gs[5]->type()->toString(), "int [4]");
  EXPECT_EQ(Gs[6]->type()->toString(), "int [2] [3]");
  EXPECT_EQ(Gs[6]->type()->arraySize(), 2u);
}

TEST(ParserTest, StructDefinitionAndUse) {
  ASTContext Ctx;
  ASSERT_TRUE(parses("struct s { char c[1]; int n; };\n"
                     "struct s a, b;\n"
                     "int d;",
                     Ctx));
  const Type *S = Ctx.types().getOrCreateStruct("s");
  ASSERT_TRUE(S->isCompleteStruct());
  ASSERT_EQ(S->fields().size(), 2u);
  EXPECT_EQ(S->fields()[0].Name, "c");
  EXPECT_EQ(S->fields()[1].Offset, 1u);
  EXPECT_EQ(S->sizeInBytes(), 5u);
}

TEST(ParserTest, FunctionWithParamsAndBody) {
  ASTContext Ctx;
  ASSERT_TRUE(parses("int add(int a, int b) { return a + b; }", Ctx));
  FunctionDecl *F = Ctx.findFunction("add");
  ASSERT_NE(F, nullptr);
  ASSERT_TRUE(F->isDefinition());
  ASSERT_EQ(F->params().size(), 2u);
  EXPECT_EQ(F->params()[0]->storage(), VarDecl::Storage::Param);
  ASSERT_EQ(F->body()->body().size(), 1u);
  EXPECT_TRUE(isa<ReturnStmt>(F->body()->body()[0]));
}

TEST(ParserTest, ArrayParamsDecayToPointers) {
  ASTContext Ctx;
  ASSERT_TRUE(parses("void f(int a[4]) { }", Ctx));
  FunctionDecl *F = Ctx.findFunction("f");
  EXPECT_EQ(F->params()[0]->type()->toString(), "int *");
}

TEST(ParserTest, PrecedenceShapesTheTree) {
  ASTContext Ctx;
  ASSERT_TRUE(parses("int x; int y; int z;\n"
                     "void f(void) { x = y + z * 2; }",
                     Ctx));
  auto *Body = Ctx.findFunction("f")->body();
  auto *S = cast<ExprStmt>(Body->body()[0]);
  auto *Assign = cast<BinaryExpr>(S->expr());
  EXPECT_EQ(Assign->op(), BinaryOp::Assign);
  auto *Add = cast<BinaryExpr>(Assign->rhs());
  EXPECT_EQ(Add->op(), BinaryOp::Add);
  auto *Mul = cast<BinaryExpr>(Add->rhs());
  EXPECT_EQ(Mul->op(), BinaryOp::Mul);
}

TEST(ParserTest, AssignmentIsRightAssociative) {
  ASTContext Ctx;
  ASSERT_TRUE(parses("int a; int b; void f(void) { a = b = 1; }", Ctx));
  auto *S = cast<ExprStmt>(Ctx.findFunction("f")->body()->body()[0]);
  auto *Outer = cast<BinaryExpr>(S->expr());
  auto *Inner = cast<BinaryExpr>(Outer->rhs());
  EXPECT_EQ(Inner->op(), BinaryOp::Assign);
}

TEST(ParserTest, ConditionalAndNestedConditional) {
  // The shape from the paper's Figure 3 (GCC bug 69801).
  ASTContext Ctx;
  ASSERT_TRUE(parses("struct s { char c[1]; };\n"
                     "struct s a, b, c;\n"
                     "int d; int e;\n"
                     "void bar(void) {\n"
                     "  e ? (d == 0 ? b : c).c : (d == 0 ? b : c).c;\n"
                     "}",
                     Ctx));
  auto *S = cast<ExprStmt>(Ctx.findFunction("bar")->body()->body()[0]);
  auto *Cond = cast<ConditionalExpr>(S->expr());
  EXPECT_TRUE(isa<MemberExpr>(Cond->trueExpr()));
  EXPECT_TRUE(isa<MemberExpr>(Cond->falseExpr()));
}

TEST(ParserTest, ControlFlowStatements) {
  ASTContext Ctx;
  ASSERT_TRUE(parses(
      "int a; int b;\n"
      "void f(void) {\n"
      "  while (a) { a = a - 1; }\n"
      "  do a = a + 1; while (a < 10);\n"
      "  for (b = 0; b < 4; b = b + 1) continue;\n"
      "  for (;;) break;\n"
      "  if (a) b = 1; else b = 2;\n"
      "}",
      Ctx));
  auto &Body = Ctx.findFunction("f")->body()->body();
  ASSERT_EQ(Body.size(), 5u);
  EXPECT_TRUE(isa<WhileStmt>(Body[0]));
  EXPECT_TRUE(isa<DoStmt>(Body[1]));
  EXPECT_TRUE(isa<ForStmt>(Body[2]));
  EXPECT_TRUE(isa<ForStmt>(Body[3]));
  EXPECT_TRUE(isa<IfStmt>(Body[4]));
  EXPECT_EQ(cast<ForStmt>(Body[3])->cond(), nullptr);
}

TEST(ParserTest, GotoAndLabels) {
  // The shape from the paper's Figure 11(d) (Clang bug 26994).
  ASTContext Ctx;
  ASSERT_TRUE(parses("int main(void) {\n"
                     "  int *p = 0;\n"
                     "trick:\n"
                     "  if (p) return *p;\n"
                     "  int x = 0;\n"
                     "  p = &x;\n"
                     "  goto trick;\n"
                     "  return 0;\n"
                     "}",
                     Ctx));
  auto &Body = Ctx.findFunction("main")->body()->body();
  EXPECT_TRUE(isa<LabelStmt>(Body[1]));
  EXPECT_EQ(cast<LabelStmt>(Body[1])->name(), "trick");
}

TEST(ParserTest, ForWithDeclInit) {
  ASTContext Ctx;
  ASSERT_TRUE(parses("void f(void) { for (int i = 0; i < 3; ++i) ; }", Ctx));
  auto *For = cast<ForStmt>(Ctx.findFunction("f")->body()->body()[0]);
  ASSERT_NE(For->init(), nullptr);
  EXPECT_TRUE(isa<DeclStmt>(For->init()));
}

TEST(ParserTest, PointerOperationsAndCasts) {
  ASTContext Ctx;
  ASSERT_TRUE(parses("int a; int *p;\n"
                     "void f(void) {\n"
                     "  p = &a;\n"
                     "  *p = 1;\n"
                     "  a = *p + 2;\n"
                     "  a = (int)(long)p;\n"
                     "  p = (int *)0;\n"
                     "}",
                     Ctx));
}

TEST(ParserTest, SizeofForms) {
  ASTContext Ctx;
  ASSERT_TRUE(parses("int a; long b;\n"
                     "void f(void) { b = sizeof(int) + sizeof a + "
                     "sizeof(struct s *); }\n"
                     "struct s { int x; };",
                     Ctx));
}

TEST(ParserTest, InitializerLists) {
  ASTContext Ctx;
  ASSERT_TRUE(parses("int c[3] = {0, 1, 2};\n"
                     "struct s { int a; int b; };\n"
                     "struct s v = {1, 2};\n"
                     "void f(void) { int local[1] = {0}; }",
                     Ctx));
  auto *C = Ctx.globals()[0];
  ASSERT_TRUE(isa<InitListExpr>(C->init()));
  EXPECT_EQ(cast<InitListExpr>(C->init())->elements().size(), 3u);
}

TEST(ParserTest, CommaExpression) {
  ASTContext Ctx;
  ASSERT_TRUE(parses("int a; int b; void f(void) { a = 1, b = 2; }", Ctx));
  auto *S = cast<ExprStmt>(Ctx.findFunction("f")->body()->body()[0]);
  EXPECT_EQ(cast<BinaryExpr>(S->expr())->op(), BinaryOp::Comma);
}

TEST(ParserTest, ErrorRecoveryReportsAndContinues) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  EXPECT_FALSE(Parser::parse("int a = ;\nint b;", Ctx, Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, MissingSemicolonIsError) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  EXPECT_FALSE(Parser::parse("int f(void) { return 0 }", Ctx, Diags));
}

TEST(ParserTest, PrototypesAreAccepted) {
  ASTContext Ctx;
  ASSERT_TRUE(parses("int f(int a);\nint f(int a) { return a; }", Ctx));
}
