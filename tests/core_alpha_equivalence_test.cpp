//===- tests/core_alpha_equivalence_test.cpp - alpha-equivalence tests ---===//

#include "core/AlphaEquivalence.h"

#include "gtest/gtest.h"

using namespace spe;

namespace {

/// The WHILE program of the paper's Figure 5: two global variables, six
/// holes, no scopes, one type.
AbstractSkeleton makeFigure5Skeleton() {
  AbstractSkeleton Sk;
  Sk.addVariable("a", AbstractSkeleton::rootScope(), 0);
  Sk.addVariable("b", AbstractSkeleton::rootScope(), 0);
  for (int I = 0; I < 6; ++I)
    Sk.addHole(AbstractSkeleton::rootScope(), 0);
  return Sk;
}

/// The C program of the paper's Figure 6: globals a, b; an if-scope with
/// c, d; holes 0-2 and 8-9 global, holes 3-7 in the inner scope.
AbstractSkeleton makeFigure6Skeleton() {
  AbstractSkeleton Sk;
  ScopeId Root = AbstractSkeleton::rootScope();
  ScopeId Inner = Sk.addScope(Root);
  Sk.addVariable("a", Root, 0);
  Sk.addVariable("b", Root, 0);
  Sk.addVariable("c", Inner, 0);
  Sk.addVariable("d", Inner, 0);
  for (int I = 0; I < 3; ++I)
    Sk.addHole(Root, 0);
  for (int I = 0; I < 5; ++I)
    Sk.addHole(Inner, 0);
  for (int I = 0; I < 2; ++I)
    Sk.addHole(Root, 0);
  return Sk;
}

} // namespace

TEST(AlphaEquivalenceTest, Figure5PandP1AreEquivalent) {
  AbstractSkeleton Sk = makeFigure5Skeleton();
  AlphaCanonicalizer Canon(Sk);
  // s_P = <a,b,a,a,a,b>, s_P1 = <b,a,b,b,b,a> (Example 2).
  Assignment P = {0, 1, 0, 0, 0, 1};
  Assignment P1 = {1, 0, 1, 1, 1, 0};
  EXPECT_TRUE(Canon.areEquivalent(P, P1));
  EXPECT_EQ(Canon.canonicalRepresentative(P1), P);
}

TEST(AlphaEquivalenceTest, Figure5PandP2AreNotEquivalent) {
  AbstractSkeleton Sk = makeFigure5Skeleton();
  AlphaCanonicalizer Canon(Sk);
  // s_P2 = <a,b,b,b,a,b> (Example 2).
  Assignment P = {0, 1, 0, 0, 0, 1};
  Assignment P2 = {0, 1, 1, 1, 0, 1};
  EXPECT_FALSE(Canon.areEquivalent(P, P2));
}

TEST(AlphaEquivalenceTest, CanonicalRepresentativeIsIdempotent) {
  AbstractSkeleton Sk = makeFigure5Skeleton();
  AlphaCanonicalizer Canon(Sk);
  Assignment A = {1, 1, 0, 1, 0, 0};
  Assignment Rep = Canon.canonicalRepresentative(A);
  EXPECT_EQ(Canon.canonicalRepresentative(Rep), Rep);
  EXPECT_TRUE(Canon.areEquivalent(A, Rep));
}

TEST(AlphaEquivalenceTest, Figure6CompactRenamings) {
  AbstractSkeleton Sk = makeFigure6Skeleton();
  AlphaCanonicalizer Canon(Sk);
  // Original program P: <a,b,a, c,d,b,c,d, a,b> (Example 4). Variable ids:
  // a=0,b=1,c=2,d=3.
  Assignment P = {0, 1, 0, 2, 3, 1, 2, 3, 0, 1};
  // P2 of Figure 6(d) applies the compact renaming (a b c d)->(b a d c).
  Assignment P2 = {1, 0, 1, 3, 2, 0, 3, 2, 1, 0};
  EXPECT_TRUE(Canon.areEquivalent(P, P2));
}

TEST(AlphaEquivalenceTest, ScopeRespectingRenamingOnly) {
  AbstractSkeleton Sk = makeFigure6Skeleton();
  AlphaCanonicalizer Canon(Sk);
  // Swapping the global a with the local c is NOT a compact renaming: the
  // assignments <a,a,a,c,...> and <a,a,a,a,...> differ even though a plain
  // (scope-blind) renaming relates some such pairs.
  Assignment UsesLocal = {0, 1, 0, 2, 2, 1, 2, 2, 0, 1};
  Assignment UsesGlobalInstead = {0, 1, 0, 0, 0, 1, 0, 0, 0, 1};
  EXPECT_FALSE(Canon.areEquivalent(UsesLocal, UsesGlobalInstead));
}

TEST(AlphaEquivalenceTest, TypeRespectingRenamingOnly) {
  AbstractSkeleton Sk;
  ScopeId Root = AbstractSkeleton::rootScope();
  Sk.addVariable("i", Root, /*Type=*/0);
  Sk.addVariable("j", Root, /*Type=*/0);
  Sk.addVariable("p", Root, /*Type=*/1);
  Sk.addHole(Root, 0);
  Sk.addHole(Root, 0);
  AlphaCanonicalizer Canon(Sk);
  // <i,j> ~ <j,i> via renaming within type 0.
  EXPECT_TRUE(Canon.areEquivalent({0, 1}, {1, 0}));
  // <i,i> and <i,j> differ.
  EXPECT_FALSE(Canon.areEquivalent({0, 0}, {0, 1}));
}

TEST(AlphaEquivalenceTest, EmptyAssignment) {
  AbstractSkeleton Sk;
  AlphaCanonicalizer Canon(Sk);
  EXPECT_TRUE(Canon.areEquivalent({}, {}));
  EXPECT_EQ(Canon.canonicalRepresentative({}), Assignment{});
}

TEST(AbstractSkeletonTest, CandidatesRespectScopeAndType) {
  AbstractSkeleton Sk = makeFigure6Skeleton();
  // Global hole 0 sees only a, b.
  EXPECT_EQ(Sk.candidatesFor(0), (std::vector<VarId>{0, 1}));
  // Inner hole 3 sees a, b, c, d.
  EXPECT_EQ(Sk.candidatesFor(3), (std::vector<VarId>{0, 1, 2, 3}));
}

TEST(AbstractSkeletonTest, ScopeChainAndAncestry) {
  AbstractSkeleton Sk;
  ScopeId Root = AbstractSkeleton::rootScope();
  ScopeId A = Sk.addScope(Root);
  ScopeId B = Sk.addScope(A);
  ScopeId C = Sk.addScope(Root);
  EXPECT_EQ(Sk.scopeChain(B), (std::vector<ScopeId>{Root, A, B}));
  EXPECT_TRUE(Sk.isAncestorOrSelf(Root, B));
  EXPECT_TRUE(Sk.isAncestorOrSelf(A, B));
  EXPECT_TRUE(Sk.isAncestorOrSelf(B, B));
  EXPECT_FALSE(Sk.isAncestorOrSelf(B, A));
  EXPECT_FALSE(Sk.isAncestorOrSelf(C, B));
  EXPECT_EQ(Sk.childrenOf(Root), (std::vector<ScopeId>{A, C}));
}
