//===- tests/interp_test.cpp - reference interpreter tests ---------------===//

#include "interp/Interpreter.h"
#include "lang/Parser.h"
#include "sema/Sema.h"

#include "gtest/gtest.h"

using namespace spe;

namespace {

ExecResult runProgram(const std::string &Source, InterpOptions Opts = {}) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  EXPECT_TRUE(Parser::parse(Source, Ctx, Diags)) << Diags.toString();
  Sema Analysis(Ctx, Diags);
  EXPECT_TRUE(Analysis.run()) << Diags.toString();
  return interpret(Ctx, Opts);
}

} // namespace

TEST(InterpTest, ReturnsExitCode) {
  ExecResult R = runProgram("int main(void) { return 42; }");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(InterpTest, FallingOffMainReturnsZero) {
  ExecResult R = runProgram("int main(void) { }");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(InterpTest, ArithmeticAndLocals) {
  ExecResult R = runProgram("int main(void) {\n"
                            "  int a = 6, b = 7;\n"
                            "  int c = a * b;\n"
                            "  return c - 2 * (a + b) % 5;\n"
                            "}");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 42 - (2 * 13) % 5);
}

TEST(InterpTest, GlobalsAreZeroInitialized) {
  ExecResult R = runProgram("int g;\nint main(void) { return g; }");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(InterpTest, GlobalInitializersRunInOrder) {
  ExecResult R = runProgram("int a = 3;\nint b = 4;\n"
                            "int main(void) { return a * 10 + b; }");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 34);
}

TEST(InterpTest, PrintfOutput) {
  ExecResult R = runProgram("int main(void) {\n"
                            "  int x = -5; unsigned u = 7; long l = 1l << 40;\n"
                            "  printf(\"%d %u %ld %c!\\n\", x, u, l, 65);\n"
                            "  return 0;\n"
                            "}");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.Output, "-5 7 1099511627776 A!\n");
}

TEST(InterpTest, ControlFlow) {
  ExecResult R = runProgram("int main(void) {\n"
                            "  int sum = 0;\n"
                            "  for (int i = 1; i <= 10; ++i) {\n"
                            "    if (i % 2 == 0) continue;\n"
                            "    sum += i;\n"
                            "    if (sum > 20) break;\n"
                            "  }\n"
                            "  int n = 0;\n"
                            "  while (n < 3) n++;\n"
                            "  do sum--; while (sum > 24);\n"
                            "  return sum + n;\n"
                            "}");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  // sum: 1+3+5+7+9 = 25 -> break at 25; do-while: 24; n = 3.
  EXPECT_EQ(R.ExitCode, 27);
}

TEST(InterpTest, FunctionCallsAndRecursion) {
  ExecResult R = runProgram("int fib(int n) {\n"
                            "  if (n < 2) return n;\n"
                            "  return fib(n - 1) + fib(n - 2);\n"
                            "}\n"
                            "int main(void) { return fib(10); }");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 55);
}

TEST(InterpTest, PointersAndArrays) {
  ExecResult R = runProgram("int arr[4] = {10, 20, 30, 40};\n"
                            "int main(void) {\n"
                            "  int *p = arr + 1;\n"
                            "  *p = *p + 5;\n"
                            "  p++;\n"
                            "  return arr[1] + *p;\n"
                            "}");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 55);
}

TEST(InterpTest, StructsAndMembers) {
  ExecResult R = runProgram("struct s { int x; int y; };\n"
                            "struct s g = {3, 4};\n"
                            "int main(void) {\n"
                            "  struct s local;\n"
                            "  local = g;\n"
                            "  local.y = local.y + 1;\n"
                            "  struct s *p = &local;\n"
                            "  return p->x * 10 + p->y;\n"
                            "}");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 35);
}

TEST(InterpTest, GotoForwardAndBackward) {
  // The paper's Figure 11(d) program: expected exit code 0.
  ExecResult R = runProgram("int main(void) {\n"
                            "  int *p = 0;\n"
                            "trick:\n"
                            "  if (p) return *p;\n"
                            "  int x = 0;\n"
                            "  p = &x;\n"
                            "  goto trick;\n"
                            "  return 1;\n"
                            "}");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(InterpTest, GotoIntoLoopBody) {
  ExecResult R = runProgram("int main(void) {\n"
                            "  int i = 0, sum = 100;\n"
                            "  goto inside;\n"
                            "  while (i < 3) {\n"
                            "inside:\n"
                            "    sum += 1;\n"
                            "    i += 1;\n"
                            "  }\n"
                            "  return sum;\n"
                            "}");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  // Entered mid-body: sum += 1, i = 1, then loop runs i = 1, 2 -> sum = 103.
  EXPECT_EQ(R.ExitCode, 103);
}

TEST(InterpTest, ShortCircuitEvaluation) {
  ExecResult R = runProgram("int g = 0;\n"
                            "int bump(void) { g = g + 1; return 1; }\n"
                            "int main(void) {\n"
                            "  0 && bump();\n"
                            "  1 || bump();\n"
                            "  1 && bump();\n"
                            "  return g;\n"
                            "}");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 1);
}

TEST(InterpTest, ConditionalExprWithStructs) {
  // The shape of the paper's Figure 3 crash program executes cleanly here.
  ExecResult R = runProgram("struct s { char c[1]; };\n"
                            "struct s a, b, c;\n"
                            "int d; int e;\n"
                            "int main(void) {\n"
                            "  e ? (d == 0 ? b : c).c : (d == 0 ? b : c).c;\n"
                            "  return 0;\n"
                            "}");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
}

TEST(InterpTest, UnsignedWraparoundIsDefined) {
  ExecResult R = runProgram("int main(void) {\n"
                            "  unsigned u = 4294967295u;\n"
                            "  u = u + 1;\n"
                            "  return u == 0;\n"
                            "}");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 1);
}

// --- UB oracle ----------------------------------------------------------

TEST(InterpUBTest, UninitializedReadIsUB) {
  ExecResult R = runProgram("int main(void) { int x; return x; }");
  EXPECT_EQ(R.Status, ExecStatus::UndefinedBehavior);
  EXPECT_NE(R.Message.find("uninitialized"), std::string::npos);
}

TEST(InterpUBTest, SignedOverflowIsUB) {
  ExecResult R = runProgram("int main(void) {\n"
                            "  int x = 2147483647;\n"
                            "  x = x + 1;\n"
                            "  return 0;\n"
                            "}");
  EXPECT_EQ(R.Status, ExecStatus::UndefinedBehavior);
  EXPECT_NE(R.Message.find("overflow"), std::string::npos);
}

TEST(InterpUBTest, DivisionByZeroIsUB) {
  ExecResult R = runProgram("int z;\nint main(void) { return 5 / z; }");
  EXPECT_EQ(R.Status, ExecStatus::UndefinedBehavior);
  ExecResult R2 = runProgram("int z;\nint main(void) { return 5 % z; }");
  EXPECT_EQ(R2.Status, ExecStatus::UndefinedBehavior);
}

TEST(InterpUBTest, IntMinDivMinusOneIsUB) {
  ExecResult R = runProgram("int main(void) {\n"
                            "  int a = 1; a = -2147483647 - a;\n"
                            "  int b = -1;\n"
                            "  return a / b;\n"
                            "}");
  EXPECT_EQ(R.Status, ExecStatus::UndefinedBehavior);
}

TEST(InterpUBTest, OversizedShiftIsUB) {
  ExecResult R = runProgram("int s = 32;\nint main(void) { return 1 << s; }");
  EXPECT_EQ(R.Status, ExecStatus::UndefinedBehavior);
}

TEST(InterpUBTest, NegativeLeftShiftIsUB) {
  ExecResult R = runProgram("int v = -1;\nint main(void) { return v << 1; }");
  EXPECT_EQ(R.Status, ExecStatus::UndefinedBehavior);
}

TEST(InterpUBTest, NullDerefIsUB) {
  ExecResult R = runProgram("int main(void) { int *p = 0; return *p; }");
  EXPECT_EQ(R.Status, ExecStatus::UndefinedBehavior);
  EXPECT_NE(R.Message.find("null"), std::string::npos);
}

TEST(InterpUBTest, OutOfBoundsIndexIsUB) {
  ExecResult R = runProgram("int arr[3];\n"
                            "int main(void) { arr[0] = 1; return arr[3]; }");
  EXPECT_EQ(R.Status, ExecStatus::UndefinedBehavior);
  EXPECT_NE(R.Message.find("out-of-bounds"), std::string::npos);
}

TEST(InterpUBTest, PointerEscapeIsUB) {
  ExecResult R = runProgram("int a;\n"
                            "int main(void) { int *p = &a; p = p + 2; "
                            "return 0; }");
  EXPECT_EQ(R.Status, ExecStatus::UndefinedBehavior);
}

TEST(InterpUBTest, OnePastEndPointerIsAllowed) {
  ExecResult R = runProgram("int arr[3];\n"
                            "int main(void) {\n"
                            "  int *p = arr + 3;\n"
                            "  return p - arr;\n"
                            "}");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 3);
}

TEST(InterpUBTest, DanglingPointerUseIsUB) {
  ExecResult R = runProgram("int *leak(void) { int x = 1; return &x; }\n"
                            "int main(void) { int *p = leak(); return *p; }");
  EXPECT_EQ(R.Status, ExecStatus::UndefinedBehavior);
  EXPECT_NE(R.Message.find("dangling"), std::string::npos);
}

TEST(InterpUBTest, CrossObjectRelationIsUB) {
  ExecResult R = runProgram("int a; int b;\n"
                            "int main(void) { return &a < &b; }");
  EXPECT_EQ(R.Status, ExecStatus::UndefinedBehavior);
}

TEST(InterpUBTest, CrossObjectEqualityIsDefined) {
  ExecResult R = runProgram("int a; int b;\n"
                            "int main(void) { return &a == &b; }");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(InterpUBTest, UnusedIndeterminateReturnIsNotUB) {
  ExecResult R = runProgram("int noret(void) { }\n"
                            "int main(void) { noret(); return 7; }");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 7);
}

TEST(InterpUBTest, UsedIndeterminateReturnIsUB) {
  ExecResult R = runProgram("int noret(void) { }\n"
                            "int main(void) { return noret() + 1; }");
  EXPECT_EQ(R.Status, ExecStatus::UndefinedBehavior);
}

TEST(InterpTest, InfiniteLoopTimesOut) {
  InterpOptions Opts;
  Opts.MaxSteps = 10000;
  ExecResult R = runProgram("int main(void) { while (1) ; return 0; }", Opts);
  EXPECT_EQ(R.Status, ExecStatus::Timeout);
}

TEST(InterpTest, DeepRecursionTimesOut) {
  ExecResult R = runProgram("int f(int n) { return f(n + 0); }\n"
                            "int main(void) { return f(1); }");
  EXPECT_EQ(R.Status, ExecStatus::Timeout);
}

TEST(InterpTest, ExecutedStatementsAreTracked) {
  ExecResult R = runProgram("int main(void) {\n"
                            "  int a = 1;\n"
                            "  if (a) a = 2; else a = 3;\n"
                            "  return a;\n"
                            "}");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 2);
  // Some statements ran; the else branch did not.
  EXPECT_GE(R.ExecutedStmts.size(), 4u);
}

TEST(InterpTest, AliasingThroughPointers) {
  // The essence of the paper's Figure 2 bug: two routes to one object; the
  // last write must win.
  ExecResult R = runProgram("int a = 0;\n"
                            "int main(void) {\n"
                            "  int *p = &a, *q = &a;\n"
                            "  *p = 1;\n"
                            "  *q = 2;\n"
                            "  return a;\n"
                            "}");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 2);
}

TEST(InterpTest, CompoundAssignOnPointer) {
  ExecResult R = runProgram("int arr[5] = {1, 2, 3, 4, 5};\n"
                            "int main(void) {\n"
                            "  int *p = arr;\n"
                            "  p += 3;\n"
                            "  p -= 1;\n"
                            "  return *p;\n"
                            "}");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 3);
}

TEST(InterpTest, CharAndShortPromotions) {
  ExecResult R = runProgram("int main(void) {\n"
                            "  char c = 100;\n"
                            "  char d = 100;\n"
                            "  int x = c + d;\n"
                            "  short s = -4;\n"
                            "  return x + s;\n"
                            "}");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 196);
}

TEST(InterpTest, TruncationOnNarrowStoreIsDefined) {
  ExecResult R = runProgram("int main(void) {\n"
                            "  char c = 300;\n" // 300 & 0xff = 44
                            "  unsigned char u;\n"
                            "  return c;\n"
                            "}");
  ASSERT_EQ(R.Status, ExecStatus::Ok) << R.Message;
  EXPECT_EQ(R.ExitCode, 44);
}
