//===- tests/support_random_test.cpp - RandomEngine unit tests -----------===//

#include "support/RandomEngine.h"

#include "gtest/gtest.h"

#include <set>

using namespace spe;

TEST(RandomEngineTest, DeterministicForSameSeed) {
  RandomEngine A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomEngineTest, DifferentSeedsDiverge) {
  RandomEngine A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I < 16 && !AnyDifferent; ++I)
    AnyDifferent = A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(RandomEngineTest, UniformIntStaysInRange) {
  RandomEngine Rng(7);
  for (int I = 0; I < 10000; ++I) {
    int64_t V = Rng.uniformInt(-5, 9);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 9);
  }
}

TEST(RandomEngineTest, UniformIntCoversFullRange) {
  RandomEngine Rng(11);
  std::set<int64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(Rng.uniformInt(0, 3));
  EXPECT_EQ(Seen.size(), 4u);
}

TEST(RandomEngineTest, UniformRealInHalfOpenUnitInterval) {
  RandomEngine Rng(13);
  for (int I = 0; I < 10000; ++I) {
    double V = Rng.uniformReal();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(RandomEngineTest, PickWeightedRespectsZeroWeight) {
  RandomEngine Rng(17);
  std::vector<double> Weights = {0.0, 1.0, 0.0};
  for (int I = 0; I < 200; ++I)
    EXPECT_EQ(Rng.pickWeighted(Weights), 1u);
}

TEST(RandomEngineTest, ShufflePreservesElements) {
  RandomEngine Rng(19);
  std::vector<int> Items = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> Shuffled = Items;
  Rng.shuffle(Shuffled);
  std::multiset<int> A(Items.begin(), Items.end());
  std::multiset<int> B(Shuffled.begin(), Shuffled.end());
  EXPECT_EQ(A, B);
}

TEST(RandomEngineTest, ReseedRestartsSequence) {
  RandomEngine Rng(23);
  uint64_t First = Rng.next();
  Rng.next();
  Rng.reseed(23);
  EXPECT_EQ(Rng.next(), First);
}
