//===- tests/testing_telemetry_test.cpp - observation stays observation --===//
//
// The telemetry layer's contract (DESIGN.md Section 15), pinned from three
// sides. Determinism: campaigns with the full telemetry stack attached
// (sink + event log + status feed) are bit-identical to campaigns without
// it, at 1/2/4 threads and batch sizes 1/8, down to the checkpoint file
// bytes. Crash safety: status.json is complete, parseable JSON after a
// simulated kill at any variant count, because writes are atomic renames.
// Trace sanity: the JSONL event log parses line by line, converts to a
// valid Chrome trace, and spans nest properly per thread (RAII scope-exit
// emission means a thread's events are ordered by end time and every
// overlap is a containment). Plus unit coverage for the histogram math the
// quantile feeds rely on.
//
//===----------------------------------------------------------------------===//

#include "testing/CampaignStatus.h"
#include "testing/Corpus.h"
#include "testing/Harness.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

using namespace spe;

namespace {

struct TempDir {
  std::string Dir;
  explicit TempDir(const std::string &Name)
      : Dir("telemetry_test_tmp/" + Name) {
    std::filesystem::remove_all(Dir);
    std::filesystem::create_directories(Dir);
  }
  std::string path(const char *File) const { return Dir + "/" + File; }
};

std::vector<std::string> testSeeds() {
  const std::vector<std::string> &Embedded = embeddedSeeds();
  return {Embedded[0], Embedded[2]};
}

HarnessOptions baseOptions(unsigned Threads, uint64_t BatchSize) {
  HarnessOptions Opts;
  Opts.Configs = HarnessOptions::crashMatrix(Persona::GccSim, 48);
  Opts.VariantBudget = 30;
  Opts.Threads = Threads;
  Opts.BatchSize = BatchSize;
  Opts.Triage = true;
  return Opts;
}

std::string fileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

std::vector<std::string> fileLines(const std::string &Path) {
  std::ifstream In(Path);
  std::vector<std::string> Lines;
  std::string Line;
  while (std::getline(In, Line))
    if (!Line.empty())
      Lines.push_back(Line);
  return Lines;
}

} // namespace

//===----------------------------------------------------------------------===//
// Histogram + summary units
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, HistogramBucketsArePowerOfTwoRanges) {
  EXPECT_EQ(LatencyHistogram::bucketFor(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucketFor(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucketFor(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucketFor(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucketFor(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucketUpperUs(0), 1u);
  EXPECT_EQ(LatencyHistogram::bucketUpperUs(10), 1024u);
  // The top bucket absorbs everything, however absurd.
  EXPECT_LT(LatencyHistogram::bucketFor(~uint64_t(0)),
            LatencyHistogram::NumBuckets);
}

TEST(TelemetryTest, HistogramQuantilesAreNearestRankBucketBounds) {
  LatencyHistogram H;
  H.record(100); // Bucket upper bound 128.
  EXPECT_EQ(H.quantileUs(0.5), 128u);
  EXPECT_EQ(H.quantileUs(0.99), 128u);

  H.record(1);       // Upper bound 2.
  H.record(1000000); // Upper bound 2^20.
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.quantileUs(0.0), 2u);
  EXPECT_EQ(H.quantileUs(0.5), 128u);
  EXPECT_EQ(H.quantileUs(1.0), uint64_t(1) << 20);

  LatencyHistogram Empty;
  EXPECT_EQ(Empty.quantileUs(0.5), 0u);
}

TEST(TelemetryTest, HistogramMergeIsOrderIndependent) {
  LatencyHistogram A, B;
  for (uint64_t Us : {3u, 70u, 900u, 900u})
    A.record(Us);
  for (uint64_t Us : {1u, 70u, 12345u})
    B.record(Us);

  LatencyHistogram AB = A, BA = B;
  AB.merge(B);
  BA.merge(A);
  EXPECT_TRUE(AB == BA);
  EXPECT_EQ(AB.count(), 7u);
  EXPECT_EQ(AB.quantileUs(1.0), BA.quantileUs(1.0));
}

TEST(TelemetryTest, SummaryMergeIsOrderIndependent) {
  TelemetrySummary A, B;
  A.record("compile", "gcc", "O2", 500);
  A.record("compile", "gcc", "O0", 200);
  A.record("render", "", "", 7);
  B.record("compile", "gcc", "O2", 900);
  B.record("vote", "", "", 3);

  TelemetrySummary AB = A, BA = B;
  AB.merge(B);
  BA.merge(A);
  EXPECT_TRUE(AB == BA);
  EXPECT_EQ(AB.countFor("compile"), 3u);
  EXPECT_EQ(AB.totalUsFor("compile"), 1600u);
  EXPECT_EQ(AB.countFor("render"), 1u);
  EXPECT_EQ(AB.countFor("never_ran"), 0u);
}

TEST(TelemetryTest, LabelsAndJsonHelpers) {
  EXPECT_EQ(telemetryBackendLabel("cc -O2 | gcc (GCC) 12.2.0"), "cc -O2");
  EXPECT_EQ(telemetryBackendLabel("minicc-gccsim"), "minicc-gccsim");
  EXPECT_EQ(telemetryBackendLabel("first line\nsecond | x"), "first line");
  EXPECT_EQ(telemetryBackendLabel(std::string(100, 'x')),
            std::string(48, 'x'));
  EXPECT_EQ(telemetryConfigLabel(2, true), "O2");
  EXPECT_EQ(telemetryConfigLabel(3, false), "O3.m32");

  EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_TRUE(isValidJsonText("{\"a\": [1, 2.5, \"x\", null, true]}"));
  EXPECT_TRUE(isValidJsonText("{}"));
  EXPECT_FALSE(isValidJsonText(""));
  EXPECT_FALSE(isValidJsonText("{\"a\": }"));
  EXPECT_FALSE(isValidJsonText("{\"a\": 1} trailing"));
  EXPECT_FALSE(isValidJsonText("{\"a\": 1"));
  EXPECT_FALSE(isValidJsonText("{'a': 1}"));
}

//===----------------------------------------------------------------------===//
// Campaign identity: telemetry on == telemetry off, bit for bit
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, InstrumentedCampaignIsBitIdenticalIncludingCheckpoint) {
  std::vector<std::string> Seeds = testSeeds();
  for (unsigned Threads : {1u, 2u, 4u}) {
    for (uint64_t Batch : {uint64_t(1), uint64_t(8)}) {
      std::string Tag =
          "t" + std::to_string(Threads) + "_b" + std::to_string(Batch);

      TempDir PlainDir("plain_" + Tag);
      HarnessOptions Plain = baseOptions(Threads, Batch);
      Plain.CheckpointPath = PlainDir.path("campaign.ck");
      CampaignResult RPlain = DifferentialHarness(Plain).runCampaign(Seeds);

      TempDir TelDir("tel_" + Tag);
      TelemetrySink::Options SO;
      SO.EventLogPath = TelDir.path("events.jsonl");
      TelemetrySink Sink(SO);
      CampaignStatusFeed Status({TelDir.path("status.json"), 0});
      Status.attachSink(&Sink);
      HarnessOptions Instrumented = baseOptions(Threads, Batch);
      Instrumented.CheckpointPath = TelDir.path("campaign.ck");
      Instrumented.Telemetry = &Sink;
      Instrumented.Status = &Status;
      CampaignResult RTel =
          DifferentialHarness(Instrumented).runCampaign(Seeds);

      // The campaign result (operator== covers bugs, findings, triage, and
      // every deterministic counter) must not notice the observers.
      EXPECT_TRUE(RPlain == RTel) << Tag;

      // Checkpoint bytes too: telemetry is excluded from the options
      // fingerprint and from the snapshot payload.
      EXPECT_EQ(fileBytes(PlainDir.path("campaign.ck")),
                fileBytes(TelDir.path("campaign.ck")))
          << Tag;

      // And the instrumentation actually observed the campaign: phases on
      // both accumulation paths (worker-local spans, global checkpoint
      // writes and triage stages) are populated. Batched runs spend their
      // backend time in batch_wait rather than per-variant backend_run.
      EXPECT_GT(RTel.Telemetry.countFor("render"), 0u) << Tag;
      EXPECT_GT(RTel.Telemetry.countFor("backend_run") +
                    RTel.Telemetry.countFor("batch_wait"),
                0u)
          << Tag;
      EXPECT_GT(RTel.Telemetry.countFor("checkpoint_write"), 0u) << Tag;
      EXPECT_GT(RTel.Telemetry.countFor("triage_dedup"), 0u) << Tag;
      EXPECT_GT(Sink.eventsWritten(), 0u) << Tag;
      EXPECT_GT(Status.writes(), 0u) << Tag;
      EXPECT_EQ(Status.variants(), RTel.VariantsEnumerated) << Tag;
    }
  }
}

TEST(TelemetryTest, WorkerLocalPhaseCountsMatchCampaignCounters) {
  // The per-variant phases aggregate through worker partial results, so
  // their counts must line up exactly with the campaign's own counters --
  // any drift would mean spans were lost or double counted in the merge.
  TelemetrySink Sink;
  HarnessOptions Opts = baseOptions(2, 1);
  Opts.Telemetry = &Sink;
  CampaignResult R = DifferentialHarness(Opts).runCampaign(testSeeds());
  EXPECT_EQ(R.Telemetry.countFor("render"), R.VariantsEnumerated);
  // No cache attached: every enumerated variant takes one oracle_exec
  // span (the span covers the interpretation attempt, hit or not).
  EXPECT_EQ(R.Telemetry.countFor("oracle_exec"), R.VariantsEnumerated);
  EXPECT_GE(R.Telemetry.countFor("oracle_exec"), R.OracleExecutions);
  // One backend_run span per (tested variant, config) on the classic
  // unbatched path.
  EXPECT_EQ(R.Telemetry.countFor("backend_run"),
            R.VariantsTested * Opts.Configs.size());
}

//===----------------------------------------------------------------------===//
// Status feed: parseable at any instant, live through a kill
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, StatusFileIsParseableAfterSimulatedKills) {
  std::vector<std::string> Seeds = testSeeds();
  for (uint64_t KillAfter : {uint64_t(3), uint64_t(7), uint64_t(19)}) {
    TempDir T("kill_" + std::to_string(KillAfter));
    // EveryMs=0: every variant is write-due, maximizing rename traffic so
    // the kill lands as close to a write as the schedule allows.
    CampaignStatusFeed Status({T.path("status.json"), 0});
    HarnessOptions Opts = baseOptions(2, 1);
    Opts.CheckpointPath = T.path("campaign.ck");
    Opts.SimulateCrashAfter = KillAfter;
    Opts.Status = &Status;
    DifferentialHarness(Opts).runCampaign(Seeds);

    std::string Doc = fileBytes(T.path("status.json"));
    ASSERT_FALSE(Doc.empty()) << "no status write before kill@" << KillAfter;
    EXPECT_TRUE(isValidJsonText(Doc)) << "kill@" << KillAfter << ": " << Doc;
    // A killed campaign never reaches finishCampaign: the file must still
    // say the campaign is in flight, which is exactly what tells a fleet
    // coordinator to resume it.
    EXPECT_NE(Doc.find("\"state\":\"running\""), std::string::npos) << Doc;
    EXPECT_NE(Doc.find("\"schema\":1"), std::string::npos);
  }
}

TEST(TelemetryTest, StatusFileReportsCompletionAndClusters) {
  TempDir T("complete");
  CampaignStatusFeed Status({T.path("status.json"), 0});
  HarnessOptions Opts = baseOptions(2, 1);
  Opts.Status = &Status;
  CampaignResult R = DifferentialHarness(Opts).runCampaign(testSeeds());

  std::string Doc = fileBytes(T.path("status.json"));
  ASSERT_TRUE(isValidJsonText(Doc)) << Doc;
  EXPECT_NE(Doc.find("\"state\":\"complete\""), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"clusters\":" + std::to_string(R.Triaged.size())),
            std::string::npos)
      << Doc;
  EXPECT_NE(Doc.find("\"seeds\":{"), std::string::npos);
  EXPECT_NE(Doc.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(Doc.find("\"variants\":" + std::to_string(R.VariantsEnumerated)),
            std::string::npos)
      << Doc;
}

//===----------------------------------------------------------------------===//
// Event log + Chrome trace
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, EventLogParsesAndSpansNestPerThread) {
  TempDir T("trace");
  TelemetrySink::Options SO;
  SO.EventLogPath = T.path("events.jsonl");
  TelemetrySink Sink(SO);
  HarnessOptions Opts = baseOptions(2, 1);
  Opts.Telemetry = &Sink;
  (void)DifferentialHarness(Opts).runCampaign(testSeeds());
  Sink.flush();

  std::vector<std::string> Lines = fileLines(SO.EventLogPath);
  ASSERT_EQ(Lines.size(), Sink.eventsWritten());
  ASSERT_GT(Lines.size(), 0u);

  // Every line is one valid JSON object that round-trips through the
  // reader, and per thread the RAII discipline shows: events appear in
  // end-time order, and any two overlapping spans strictly nest.
  std::map<unsigned, std::vector<TelemetryEvent>> ByTid;
  bool SawBackendRun = false;
  for (const std::string &Line : Lines) {
    EXPECT_TRUE(isValidJsonText(Line)) << Line;
    TelemetryEvent Ev;
    ASSERT_TRUE(TelemetrySink::parseEventLine(Line, Ev)) << Line;
    EXPECT_FALSE(Ev.Phase.empty()) << Line;
    SawBackendRun |= Ev.Phase == "backend_run";
    ByTid[Ev.Tid].push_back(Ev);
  }
  EXPECT_TRUE(SawBackendRun);

  for (const auto &[Tid, Events] : ByTid) {
    for (size_t I = 1; I < Events.size(); ++I) {
      const TelemetryEvent &Prev = Events[I - 1];
      const TelemetryEvent &Cur = Events[I];
      uint64_t PrevEnd = Prev.StartUs + Prev.DurUs;
      uint64_t CurEnd = Cur.StartUs + Cur.DurUs;
      // Scope exits on one thread are totally ordered.
      EXPECT_LE(PrevEnd, CurEnd) << "tid " << Tid << " event " << I;
      // Overlap means the earlier-ending span was nested inside this one.
      if (Cur.StartUs < PrevEnd)
        EXPECT_LE(Cur.StartUs, Prev.StartUs)
            << "tid " << Tid << " event " << I << " (" << Cur.Phase
            << ") partially overlaps " << Prev.Phase;
    }
  }

  // The Chrome trace conversion yields one valid JSON document.
  std::string Err;
  ASSERT_TRUE(Sink.exportChromeTrace(T.path("trace.json"), Err)) << Err;
  std::string Trace = fileBytes(T.path("trace.json"));
  EXPECT_TRUE(isValidJsonText(Trace));
  EXPECT_NE(Trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Trace.find("\"ph\":\"X\""), std::string::npos);

  // A sink without a log refuses the export instead of writing an empty
  // husk.
  TelemetrySink NoLog;
  EXPECT_FALSE(NoLog.exportChromeTrace(T.path("no.json"), Err));
  EXPECT_FALSE(Err.empty());
}

TEST(TelemetryTest, ParseEventLineRejectsMalformedInput) {
  TelemetryEvent Ev;
  EXPECT_FALSE(TelemetrySink::parseEventLine("", Ev));
  EXPECT_FALSE(TelemetrySink::parseEventLine("{\"ph\":\"x\"}", Ev));
  EXPECT_FALSE(TelemetrySink::parseEventLine(
      "{\"ph\":\"x\",\"be\":\"\",\"cfg\":\"\",\"ts\":-1,\"dur\":2,"
      "\"tid\":0}",
      Ev));
  EXPECT_TRUE(TelemetrySink::parseEventLine(
      "{\"ph\":\"compile\",\"be\":\"cc\",\"cfg\":\"O2\",\"ts\":10,"
      "\"dur\":5,\"tid\":3}",
      Ev));
  EXPECT_EQ(Ev.Phase, "compile");
  EXPECT_EQ(Ev.Backend, "cc");
  EXPECT_EQ(Ev.Config, "O2");
  EXPECT_EQ(Ev.StartUs, 10u);
  EXPECT_EQ(Ev.DurUs, 5u);
  EXPECT_EQ(Ev.Tid, 3u);
}
