//===- tests/combinatorics_partitions_test.cpp - partition generators ----===//

#include "combinatorics/SetPartitions.h"
#include "combinatorics/Stirling.h"

#include "gtest/gtest.h"

#include <set>

using namespace spe;

TEST(RGSTest, ValidityPredicate) {
  EXPECT_TRUE(isValidRGS({}));
  EXPECT_TRUE(isValidRGS({0}));
  EXPECT_TRUE(isValidRGS({0, 0, 1, 0, 2}));
  EXPECT_FALSE(isValidRGS({1}));
  EXPECT_FALSE(isValidRGS({0, 2}));
  EXPECT_FALSE(isValidRGS({0, 1, 3}));
}

TEST(RGSTest, NumBlocks) {
  EXPECT_EQ(numBlocks({}), 0u);
  EXPECT_EQ(numBlocks({0, 0, 0}), 1u);
  EXPECT_EQ(numBlocks({0, 1, 2, 1}), 3u);
}

TEST(RGSTest, CanonicalizeLabeling) {
  // Labels 7,7,3,7,9 -> 0,0,1,0,2.
  RestrictedGrowthString C = canonicalizeLabeling({7, 7, 3, 7, 9});
  EXPECT_EQ(C, RestrictedGrowthString({0, 0, 1, 0, 2}));
  EXPECT_TRUE(isValidRGS(C));
  // Canonicalizing a valid RGS is the identity.
  EXPECT_EQ(canonicalizeLabeling({0, 1, 0, 2}),
            RestrictedGrowthString({0, 1, 0, 2}));
}

TEST(SetPartitionGeneratorTest, EmptySetHasOnePartition) {
  SetPartitionGenerator Gen(0, 3);
  EXPECT_TRUE(Gen.next());
  EXPECT_TRUE(Gen.current().empty());
  EXPECT_FALSE(Gen.next());
}

TEST(SetPartitionGeneratorTest, ZeroBlocksYieldsNothing) {
  SetPartitionGenerator Gen(3, 0);
  EXPECT_FALSE(Gen.next());
}

TEST(SetPartitionGeneratorTest, CountsMatchStirlingSums) {
  StirlingTable T;
  for (unsigned N = 1; N <= 8; ++N) {
    for (unsigned K = 1; K <= N + 2; ++K) {
      SetPartitionGenerator Gen(N, K);
      uint64_t Count = 0;
      while (Gen.next())
        ++Count;
      EXPECT_EQ(Count, T.partitionsUpTo(N, K).toUint64())
          << "N=" << N << " K=" << K;
    }
  }
}

TEST(SetPartitionGeneratorTest, AllOutputsAreValidAndDistinct) {
  SetPartitionGenerator Gen(7, 4);
  std::set<RestrictedGrowthString> Seen;
  while (Gen.next()) {
    EXPECT_TRUE(isValidRGS(Gen.current()));
    EXPECT_LE(numBlocks(Gen.current()), 4u);
    EXPECT_TRUE(Seen.insert(Gen.current()).second) << "duplicate partition";
  }
}

TEST(SetPartitionGeneratorTest, LexicographicOrder) {
  SetPartitionGenerator Gen(5, 5);
  RestrictedGrowthString Prev;
  bool First = true;
  while (Gen.next()) {
    if (!First)
      EXPECT_LT(Prev, Gen.current());
    Prev = Gen.current();
    First = false;
  }
}

TEST(SetPartitionGeneratorTest, ResetRestartsStream) {
  SetPartitionGenerator Gen(4, 2);
  uint64_t CountA = 0, CountB = 0;
  while (Gen.next())
    ++CountA;
  Gen.reset();
  while (Gen.next())
    ++CountB;
  EXPECT_EQ(CountA, CountB);
}

TEST(ExactBlockPartitionGeneratorTest, CountsMatchStirlingNumbers) {
  StirlingTable T;
  for (unsigned N = 0; N <= 8; ++N) {
    for (unsigned K = 0; K <= N + 1; ++K) {
      ExactBlockPartitionGenerator Gen(N, K);
      uint64_t Count = 0;
      while (Gen.next()) {
        EXPECT_EQ(numBlocks(Gen.current()), K);
        ++Count;
      }
      EXPECT_EQ(Count, T.stirling2(N, K).toUint64())
          << "N=" << N << " K=" << K;
    }
  }
}

TEST(CombinationGeneratorTest, CountsMatchBinomials) {
  StirlingTable T;
  for (unsigned N = 0; N <= 9; ++N) {
    for (unsigned K = 0; K <= N + 1; ++K) {
      CombinationGenerator Gen(N, K);
      uint64_t Count = 0;
      while (Gen.next()) {
        EXPECT_EQ(Gen.current().size(), K);
        ++Count;
      }
      EXPECT_EQ(Count, T.binomial(N, K).toUint64()) << "N=" << N << " K=" << K;
    }
  }
}

TEST(CombinationGeneratorTest, SubsetsAreSortedAndDistinct) {
  CombinationGenerator Gen(6, 3);
  std::set<std::vector<uint32_t>> Seen;
  while (Gen.next()) {
    const std::vector<uint32_t> &C = Gen.current();
    for (size_t I = 1; I < C.size(); ++I)
      EXPECT_LT(C[I - 1], C[I]);
    EXPECT_LT(C.back(), 6u);
    EXPECT_TRUE(Seen.insert(C).second);
  }
  EXPECT_EQ(Seen.size(), 20u);
}

// Property sweep: every (N, MaxBlocks) pairing in a grid produces only valid,
// distinct RGS strings whose block count respects the bound.
class PartitionSweepTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(PartitionSweepTest, StreamIsCanonicalAndComplete) {
  auto [N, MaxBlocks] = GetParam();
  StirlingTable T;
  SetPartitionGenerator Gen(N, MaxBlocks);
  std::set<RestrictedGrowthString> Seen;
  while (Gen.next()) {
    ASSERT_TRUE(isValidRGS(Gen.current()));
    ASSERT_LE(numBlocks(Gen.current()),
              MaxBlocks == 0 ? 0u : MaxBlocks);
    ASSERT_TRUE(Seen.insert(Gen.current()).second);
  }
  EXPECT_EQ(Seen.size(), N == 0 ? 1 : T.partitionsUpTo(N, MaxBlocks).toUint64());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PartitionSweepTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 6u, 9u),
                       ::testing::Values(1u, 2u, 3u, 4u, 9u)));

TEST(SetPartitionGeneratorTest, SeekToResumesMidStream) {
  // Collect the reference stream, then for every position check that seekTo
  // reproduces the exact suffix.
  for (unsigned MaxBlocks : {1u, 2u, 3u, 5u}) {
    std::vector<RestrictedGrowthString> All = allPartitionsUpTo(5, MaxBlocks);
    for (size_t Pos = 0; Pos < All.size(); ++Pos) {
      SetPartitionGenerator Gen(5, MaxBlocks);
      Gen.seekTo(All[Pos]);
      EXPECT_EQ(Gen.current(), All[Pos]);
      for (size_t Next = Pos + 1; Next < All.size(); ++Next) {
        ASSERT_TRUE(Gen.next());
        EXPECT_EQ(Gen.current(), All[Next]);
      }
      EXPECT_FALSE(Gen.next());
    }
  }
}

TEST(SetPartitionGeneratorTest, SeekToEmptyStringIsExhausted) {
  SetPartitionGenerator Gen(0, 3);
  Gen.seekTo({});
  EXPECT_TRUE(Gen.current().empty());
  EXPECT_FALSE(Gen.next());
}

TEST(RgsRankerTest, CountMatchesStirlingSums) {
  StirlingTable T;
  for (unsigned N : {0u, 1u, 2u, 4u, 6u, 9u}) {
    for (unsigned K : {0u, 1u, 2u, 3u, 6u, 9u}) {
      RgsRanker Ranker(N, K);
      if (N == 0)
        EXPECT_EQ(Ranker.count(), BigInt(1));
      else
        EXPECT_EQ(Ranker.count(), T.partitionsUpTo(N, K))
            << "N=" << N << " K=" << K;
    }
  }
}

TEST(RgsRankerTest, UnrankEnumeratesGeneratorOrder) {
  for (unsigned N : {1u, 3u, 5u, 7u}) {
    for (unsigned K : {1u, 2u, 3u, 7u}) {
      RgsRanker Ranker(N, K);
      SetPartitionGenerator Gen(N, K);
      BigInt Rank(0);
      while (Gen.next()) {
        EXPECT_EQ(Ranker.unrank(Rank), Gen.current())
            << "N=" << N << " K=" << K << " rank=" << Rank.toString();
        EXPECT_EQ(Ranker.rank(Gen.current()), Rank);
        Rank += BigInt(1);
      }
      EXPECT_EQ(Rank, Ranker.count());
    }
  }
}

TEST(RgsRankerTest, LargeSpaceRankRoundTrip) {
  // A Table-1-sized rank space (Bell(40) ~ 1.6e35): unranking must stay
  // consistent with ranking without ever materializing the stream.
  RgsRanker Ranker(40, 40);
  EXPECT_GT(Ranker.count().numDecimalDigits(), 30u);
  const BigInt Probes[] = {
      BigInt(0), BigInt(1), BigInt::pow(10, 20),
      Ranker.count() - BigInt(1), Ranker.count().divideBySmall(3),
  };
  for (const BigInt &Probe : Probes) {
    RestrictedGrowthString RGS = Ranker.unrank(Probe);
    EXPECT_TRUE(isValidRGS(RGS));
    EXPECT_EQ(Ranker.rank(RGS), Probe);
  }
}
