//===- tests/combinatorics_partitions_test.cpp - partition generators ----===//

#include "combinatorics/SetPartitions.h"
#include "combinatorics/Stirling.h"

#include "gtest/gtest.h"

#include <set>

using namespace spe;

TEST(RGSTest, ValidityPredicate) {
  EXPECT_TRUE(isValidRGS({}));
  EXPECT_TRUE(isValidRGS({0}));
  EXPECT_TRUE(isValidRGS({0, 0, 1, 0, 2}));
  EXPECT_FALSE(isValidRGS({1}));
  EXPECT_FALSE(isValidRGS({0, 2}));
  EXPECT_FALSE(isValidRGS({0, 1, 3}));
}

TEST(RGSTest, NumBlocks) {
  EXPECT_EQ(numBlocks({}), 0u);
  EXPECT_EQ(numBlocks({0, 0, 0}), 1u);
  EXPECT_EQ(numBlocks({0, 1, 2, 1}), 3u);
}

TEST(RGSTest, CanonicalizeLabeling) {
  // Labels 7,7,3,7,9 -> 0,0,1,0,2.
  RestrictedGrowthString C = canonicalizeLabeling({7, 7, 3, 7, 9});
  EXPECT_EQ(C, RestrictedGrowthString({0, 0, 1, 0, 2}));
  EXPECT_TRUE(isValidRGS(C));
  // Canonicalizing a valid RGS is the identity.
  EXPECT_EQ(canonicalizeLabeling({0, 1, 0, 2}),
            RestrictedGrowthString({0, 1, 0, 2}));
}

TEST(SetPartitionGeneratorTest, EmptySetHasOnePartition) {
  SetPartitionGenerator Gen(0, 3);
  EXPECT_TRUE(Gen.next());
  EXPECT_TRUE(Gen.current().empty());
  EXPECT_FALSE(Gen.next());
}

TEST(SetPartitionGeneratorTest, ZeroBlocksYieldsNothing) {
  SetPartitionGenerator Gen(3, 0);
  EXPECT_FALSE(Gen.next());
}

TEST(SetPartitionGeneratorTest, CountsMatchStirlingSums) {
  StirlingTable T;
  for (unsigned N = 1; N <= 8; ++N) {
    for (unsigned K = 1; K <= N + 2; ++K) {
      SetPartitionGenerator Gen(N, K);
      uint64_t Count = 0;
      while (Gen.next())
        ++Count;
      EXPECT_EQ(Count, T.partitionsUpTo(N, K).toUint64())
          << "N=" << N << " K=" << K;
    }
  }
}

TEST(SetPartitionGeneratorTest, AllOutputsAreValidAndDistinct) {
  SetPartitionGenerator Gen(7, 4);
  std::set<RestrictedGrowthString> Seen;
  while (Gen.next()) {
    EXPECT_TRUE(isValidRGS(Gen.current()));
    EXPECT_LE(numBlocks(Gen.current()), 4u);
    EXPECT_TRUE(Seen.insert(Gen.current()).second) << "duplicate partition";
  }
}

TEST(SetPartitionGeneratorTest, LexicographicOrder) {
  SetPartitionGenerator Gen(5, 5);
  RestrictedGrowthString Prev;
  bool First = true;
  while (Gen.next()) {
    if (!First)
      EXPECT_LT(Prev, Gen.current());
    Prev = Gen.current();
    First = false;
  }
}

TEST(SetPartitionGeneratorTest, ResetRestartsStream) {
  SetPartitionGenerator Gen(4, 2);
  uint64_t CountA = 0, CountB = 0;
  while (Gen.next())
    ++CountA;
  Gen.reset();
  while (Gen.next())
    ++CountB;
  EXPECT_EQ(CountA, CountB);
}

TEST(ExactBlockPartitionGeneratorTest, CountsMatchStirlingNumbers) {
  StirlingTable T;
  for (unsigned N = 0; N <= 8; ++N) {
    for (unsigned K = 0; K <= N + 1; ++K) {
      ExactBlockPartitionGenerator Gen(N, K);
      uint64_t Count = 0;
      while (Gen.next()) {
        EXPECT_EQ(numBlocks(Gen.current()), K);
        ++Count;
      }
      EXPECT_EQ(Count, T.stirling2(N, K).toUint64())
          << "N=" << N << " K=" << K;
    }
  }
}

TEST(CombinationGeneratorTest, CountsMatchBinomials) {
  StirlingTable T;
  for (unsigned N = 0; N <= 9; ++N) {
    for (unsigned K = 0; K <= N + 1; ++K) {
      CombinationGenerator Gen(N, K);
      uint64_t Count = 0;
      while (Gen.next()) {
        EXPECT_EQ(Gen.current().size(), K);
        ++Count;
      }
      EXPECT_EQ(Count, T.binomial(N, K).toUint64()) << "N=" << N << " K=" << K;
    }
  }
}

TEST(CombinationGeneratorTest, SubsetsAreSortedAndDistinct) {
  CombinationGenerator Gen(6, 3);
  std::set<std::vector<uint32_t>> Seen;
  while (Gen.next()) {
    const std::vector<uint32_t> &C = Gen.current();
    for (size_t I = 1; I < C.size(); ++I)
      EXPECT_LT(C[I - 1], C[I]);
    EXPECT_LT(C.back(), 6u);
    EXPECT_TRUE(Seen.insert(C).second);
  }
  EXPECT_EQ(Seen.size(), 20u);
}

// Property sweep: every (N, MaxBlocks) pairing in a grid produces only valid,
// distinct RGS strings whose block count respects the bound.
class PartitionSweepTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(PartitionSweepTest, StreamIsCanonicalAndComplete) {
  auto [N, MaxBlocks] = GetParam();
  StirlingTable T;
  SetPartitionGenerator Gen(N, MaxBlocks);
  std::set<RestrictedGrowthString> Seen;
  while (Gen.next()) {
    ASSERT_TRUE(isValidRGS(Gen.current()));
    ASSERT_LE(numBlocks(Gen.current()),
              MaxBlocks == 0 ? 0u : MaxBlocks);
    ASSERT_TRUE(Seen.insert(Gen.current()).second);
  }
  EXPECT_EQ(Seen.size(), N == 0 ? 1 : T.partitionsUpTo(N, MaxBlocks).toUint64());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PartitionSweepTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 6u, 9u),
                       ::testing::Values(1u, 2u, 3u, 4u, 9u)));
