//===- tests/testing_validity_property_test.cpp - pruning soundness ------===//
//
// End-to-end soundness of the validity-pruning pipeline over real seeds:
//
//   * Pruned enumeration must yield exactly the same set of oracle-valid
//     variants as brute-force filtering the unpruned cursor -- every variant
//     pruning drops must be rejected by the variant frontend or by the
//     reference oracle. Checked for all embedded handwritten seeds plus 50
//     generated corpus programs (with the uninitialized-local knob on, so
//     the def-before-use layer actually fires).
//
//   * A pruned + memoized campaign must produce the bit-identical deduped
//     FoundBug set, identical coverage, and identical VariantsTested at 1,
//     2, and 4 worker threads -- and reduce reference-oracle executions by
//     at least 30% on the two-persona corpus campaign (the acceptance bar).
//
//===----------------------------------------------------------------------===//

#include "compiler/Passes.h"
#include "interp/Interpreter.h"
#include "lang/Parser.h"
#include "sema/Sema.h"
#include "skeleton/ProgramEnumerator.h"
#include "skeleton/SkeletonExtractor.h"
#include "skeleton/ValidityAnalysis.h"
#include "skeleton/VariantRenderer.h"
#include "testing/Corpus.h"
#include "testing/Harness.h"
#include "testing/OracleCache.h"

#include "gtest/gtest.h"

using namespace spe;

namespace {

std::vector<std::string> propertySeeds(unsigned CorpusCount) {
  CorpusOptions Opts;
  Opts.UninitLocalProb = 0.6;
  std::vector<std::string> Seeds = embeddedSeeds();
  std::vector<std::string> Gen = generateCorpus(3000, CorpusCount, Opts);
  Seeds.insert(Seeds.end(), Gen.begin(), Gen.end());
  return Seeds;
}

/// \returns true when the variant parses, passes Sema, and the reference
/// oracle accepts it -- i.e. it would reach differential testing.
bool oracleAccepts(const std::string &Source) {
  auto Ctx = std::make_unique<ASTContext>();
  DiagnosticEngine Diags;
  if (!Parser::parse(Source, *Ctx, Diags))
    return false;
  Sema Analysis(*Ctx, Diags);
  if (!Analysis.run())
    return false;
  return interpret(*Ctx).ok();
}

/// The two-persona crash-hunting campaign the acceptance criterion is
/// measured on; both personas share \p Cache when non-null.
CampaignResult twoPersonaCampaign(const std::vector<std::string> &Seeds,
                                  bool Prune, OracleCache *Cache,
                                  CoverageRegistry *Cov, unsigned Threads) {
  // Register the real pass catalog so the coverage comparisons below are
  // over genuine per-point hit sets, not the synthetic-fallback entry.
  if (Cov)
    registerPassCoverageCatalog(*Cov);
  CampaignResult Total;
  for (Persona P : {Persona::GccSim, Persona::ClangSim}) {
    HarnessOptions Opts;
    Opts.Configs =
        HarnessOptions::crashMatrix(P, P == Persona::GccSim ? 48 : 36);
    Opts.VariantBudget = 150;
    Opts.PruneInvalid = Prune;
    Opts.Cache = Cache;
    Opts.Cov = Cov;
    Opts.Threads = Threads;
    Total.merge(DifferentialHarness(Opts).runCampaign(Seeds));
  }
  return Total;
}

} // namespace

TEST(ValidityPropertyTest, PrunedEnumerationKeepsExactlyTheOracleValidSet) {
  const uint64_t RankCap = 1200; // Per-seed enumeration cap (keeps CI fast).
  uint64_t TotalVariants = 0, TotalDropped = 0;
  unsigned SeedsWithFacts = 0;

  for (const std::string &Seed : propertySeeds(50)) {
    auto Ctx = std::make_unique<ASTContext>();
    DiagnosticEngine Diags;
    ASSERT_TRUE(Parser::parse(Seed, *Ctx, Diags)) << Seed;
    Sema Analysis(*Ctx, Diags);
    ASSERT_TRUE(Analysis.run()) << Seed;
    SkeletonExtractor Extractor(*Ctx, Analysis, {});
    std::vector<SkeletonUnit> Units = Extractor.extract();

    std::vector<ValidityConstraints> Validity =
        analyzeValidity(*Ctx, Analysis, Units);
    std::vector<const ValidityConstraints *> Ptrs;
    uint64_t Facts = 0;
    for (const ValidityConstraints &C : Validity) {
      Ptrs.push_back(&C);
      Facts += C.forbiddenPairs();
    }
    if (Facts)
      ++SeedsWithFacts;

    ProgramCursor All(Units, SpeMode::Exact);
    ProgramCursor Pruned(Units, SpeMode::Exact);
    Pruned.setConstraints(Ptrs);
    All.setEnd(BigInt(RankCap));
    Pruned.setEnd(BigInt(RankCap));

    VariantRenderer Renderer(*Ctx, Units);
    std::vector<std::string> AllTexts, PrunedTexts;
    std::string Buffer;
    while (const ProgramAssignment *PA = All.next()) {
      Renderer.renderInto(*PA, Buffer);
      AllTexts.push_back(Buffer);
    }
    while (const ProgramAssignment *PA = Pruned.next()) {
      Renderer.renderInto(*PA, Buffer);
      PrunedTexts.push_back(Buffer);
    }
    TotalVariants += AllTexts.size();

    // The pruned stream must be an ordered subsequence of the unpruned one,
    // the arithmetic must balance, and -- the soundness core -- everything
    // dropped must be frontend- or oracle-rejected.
    ASSERT_TRUE(Pruned.pruned().fitsInUint64());
    EXPECT_EQ(PrunedTexts.size() + Pruned.pruned().toUint64(),
              AllTexts.size())
        << Seed;
    size_t PI = 0;
    for (const std::string &Text : AllTexts) {
      if (PI < PrunedTexts.size() && PrunedTexts[PI] == Text) {
        ++PI;
        continue;
      }
      ++TotalDropped;
      EXPECT_FALSE(oracleAccepts(Text))
          << "pruning dropped an oracle-valid variant of seed:\n"
          << Seed << "\nvariant:\n"
          << Text;
    }
    EXPECT_EQ(PI, PrunedTexts.size())
        << "pruned stream is not a subsequence for seed:\n"
        << Seed;
  }

  // The analysis must actually bite on this corpus, not vacuously pass.
  EXPECT_GE(SeedsWithFacts, 20u);
  EXPECT_GT(TotalDropped, 0u);
  EXPECT_GT(TotalVariants, 1000u);
}

TEST(ValidityPropertyTest, PrunedCampaignMatchesUnprunedAtAllThreadCounts) {
  std::vector<std::string> Seeds = propertySeeds(8);

  CoverageRegistry UnprunedCov;
  CampaignResult Unpruned =
      twoPersonaCampaign(Seeds, /*Prune=*/false, nullptr, &UnprunedCov, 1);
  ASSERT_GT(Unpruned.VariantsTested, 0u);
  ASSERT_FALSE(Unpruned.UniqueBugs.empty());

  CampaignResult PrunedAtOne;
  for (unsigned Threads : {1u, 2u, 4u}) {
    CoverageRegistry Cov;
    CampaignResult Pruned =
        twoPersonaCampaign(Seeds, /*Prune=*/true, nullptr, &Cov, Threads);

    // The deduped FoundBug set (ids, personas, signatures, witnesses) and
    // every oracle-visible counter must be bit-identical to the unpruned
    // run; only enumeration-cost counters may differ.
    EXPECT_TRUE(Pruned.UniqueBugs == Unpruned.UniqueBugs)
        << "threads=" << Threads;
    EXPECT_EQ(Pruned.VariantsTested, Unpruned.VariantsTested);
    EXPECT_EQ(Pruned.CrashObservations, Unpruned.CrashObservations);
    EXPECT_EQ(Pruned.WrongCodeObservations, Unpruned.WrongCodeObservations);
    EXPECT_EQ(Pruned.VariantsEnumerated + Pruned.VariantsPruned,
              Unpruned.VariantsEnumerated);
    EXPECT_EQ(Cov.hitSet(), UnprunedCov.hitSet()) << "threads=" << Threads;
    EXPECT_EQ(Cov.totalPoints(), UnprunedCov.totalPoints());

    // And the pruned campaign itself must be thread-count invariant.
    if (Threads == 1)
      PrunedAtOne = Pruned;
    else
      EXPECT_TRUE(Pruned == PrunedAtOne) << "threads=" << Threads;
  }
}

TEST(ValidityPropertyTest, PruningPlusMemoizationCutsOracleExecutions) {
  // The acceptance bar: on the generated-corpus campaign (two personas over
  // the same seeds, the shape every version-sweep bench runs), pruning plus
  // oracle memoization must cut reference-oracle executions by >= 30% while
  // leaving bugs, coverage, and tested-variant counts bit-identical.
  std::vector<std::string> Seeds = propertySeeds(16);

  CoverageRegistry BaseCov;
  CampaignResult Base =
      twoPersonaCampaign(Seeds, /*Prune=*/false, nullptr, &BaseCov, 1);
  ASSERT_GT(Base.OracleExecutions, 0u);
  EXPECT_EQ(Base.OracleCacheHits, 0u);
  EXPECT_EQ(Base.VariantsPruned, 0u);

  OracleCache Cache;
  CoverageRegistry OptCov;
  CampaignResult Opt =
      twoPersonaCampaign(Seeds, /*Prune=*/true, &Cache, &OptCov, 1);

  EXPECT_TRUE(Opt.UniqueBugs == Base.UniqueBugs);
  EXPECT_EQ(Opt.VariantsTested, Base.VariantsTested);
  EXPECT_EQ(Opt.VariantsEnumerated + Opt.VariantsPruned,
            Base.VariantsEnumerated);
  EXPECT_LE(Opt.VariantsOracleExcluded, Base.VariantsOracleExcluded)
      << "pruned variants can only come out of the oracle-rejected pool";
  EXPECT_EQ(OptCov.hitSet(), BaseCov.hitSet());
  EXPECT_EQ(Opt.OracleCacheHits, Cache.hits());

  double Reduction =
      1.0 - static_cast<double>(Opt.OracleExecutions) /
                static_cast<double>(Base.OracleExecutions);
  EXPECT_GE(Reduction, 0.30)
      << Opt.OracleExecutions << " vs " << Base.OracleExecutions
      << " oracle executions";

  // The cached campaign must also stay deterministic across thread counts.
  OracleCache Cache4;
  CoverageRegistry Cov4;
  CampaignResult Opt4 = twoPersonaCampaign(Seeds, true, &Cache4, &Cov4, 4);
  EXPECT_TRUE(Opt4 == Opt);
  EXPECT_EQ(Cov4.hitSet(), OptCov.hitSet());
}
