//===- tests/testing_validity_property_test.cpp - pruning soundness ------===//
//
// End-to-end soundness of the validity-pruning pipeline over real seeds:
//
//   * Pruned enumeration must yield exactly the same set of oracle-valid
//     variants as brute-force filtering the unpruned cursor -- every variant
//     pruning drops must be rejected by the variant frontend or by the
//     reference oracle. Checked for all embedded handwritten seeds plus 50
//     generated corpus programs (with the uninitialized-local knob on, so
//     the def-before-use layer actually fires).
//
//   * A pruned + memoized campaign must produce the bit-identical deduped
//     FoundBug set, identical coverage, and identical VariantsTested at 1,
//     2, and 4 worker threads -- and reduce reference-oracle executions by
//     at least 30% on the two-persona corpus campaign (the acceptance bar).
//
//   * Both properties repeated on the loop/call corpus (bounded while/do
//     loops and rich helper bodies), where the pruned facts come from the
//     CFG dataflow layer rather than a straight-line prefix walk, and some
//     enumerated variants diverge and are excluded by the oracle's step
//     budget. The battery asserts the corpus does not silently degenerate
//     to loop-free programs.
//
//===----------------------------------------------------------------------===//

#include "compiler/Passes.h"
#include "interp/Interpreter.h"
#include "lang/Parser.h"
#include "sema/Sema.h"
#include "skeleton/ProgramEnumerator.h"
#include "skeleton/SkeletonExtractor.h"
#include "skeleton/ValidityAnalysis.h"
#include "skeleton/VariantRenderer.h"
#include "testing/Corpus.h"
#include "testing/Harness.h"
#include "testing/OracleCache.h"

#include "gtest/gtest.h"

using namespace spe;

namespace {

std::vector<std::string> propertySeeds(unsigned CorpusCount) {
  CorpusOptions Opts;
  Opts.UninitLocalProb = 0.6;
  std::vector<std::string> Seeds = embeddedSeeds();
  std::vector<std::string> Gen = generateCorpus(3000, CorpusCount, Opts);
  Seeds.insert(Seeds.end(), Gen.begin(), Gen.end());
  return Seeds;
}

/// Seeds exercising the CFG validity layer end to end: bounded while/do
/// loops in main, helper functions with uninitialized locals and loops of
/// their own, and the uninitialized-local knob kept nonzero so layer 2 has
/// something to prove.
std::vector<std::string> loopSeeds(unsigned CorpusCount) {
  CorpusOptions Opts;
  Opts.UninitLocalProb = 0.6;
  Opts.BoundedLoopProb = 0.6;
  Opts.RichHelperProb = 0.6;
  return generateCorpus(8000, CorpusCount, Opts);
}

/// The loop/call corpus must not silently degenerate into the loop-free
/// shape the old straight-line analysis already covered.
void assertLoopCorpusShape(const std::vector<std::string> &Seeds) {
  unsigned WithLoop = 0, WithHelper = 0;
  for (const std::string &S : Seeds) {
    if (S.find("while (") != std::string::npos ||
        S.find("do {") != std::string::npos)
      ++WithLoop;
    if (S.find("helper") != std::string::npos)
      ++WithHelper;
  }
  ASSERT_GE(WithLoop, Seeds.size() / 3) << "loop corpus degenerated";
  ASSERT_GE(WithHelper, 1u) << "loop corpus has no helper calls";
}

/// \returns true when the variant parses, passes Sema, and the reference
/// oracle accepts it -- i.e. it would reach differential testing.
bool oracleAccepts(const std::string &Source) {
  auto Ctx = std::make_unique<ASTContext>();
  DiagnosticEngine Diags;
  if (!Parser::parse(Source, *Ctx, Diags))
    return false;
  Sema Analysis(*Ctx, Diags);
  if (!Analysis.run())
    return false;
  return interpret(*Ctx).ok();
}

/// The two-persona crash-hunting campaign the acceptance criterion is
/// measured on; both personas share \p Cache when non-null.
CampaignResult twoPersonaCampaign(const std::vector<std::string> &Seeds,
                                  bool Prune, OracleCache *Cache,
                                  CoverageRegistry *Cov, unsigned Threads,
                                  uint64_t VariantBudget = 150,
                                  uint64_t VariantThreshold = 10'000,
                                  uint64_t OracleMaxSteps = 2'000'000) {
  // Register the real pass catalog so the coverage comparisons below are
  // over genuine per-point hit sets, not the synthetic-fallback entry.
  if (Cov)
    registerPassCoverageCatalog(*Cov);
  CampaignResult Total;
  for (Persona P : {Persona::GccSim, Persona::ClangSim}) {
    HarnessOptions Opts;
    Opts.Configs =
        HarnessOptions::crashMatrix(P, P == Persona::GccSim ? 48 : 36);
    Opts.VariantBudget = VariantBudget;
    Opts.VariantThreshold = VariantThreshold;
    Opts.OracleMaxSteps = OracleMaxSteps;
    Opts.PruneInvalid = Prune;
    Opts.Cache = Cache;
    Opts.Cov = Cov;
    Opts.Threads = Threads;
    Total.merge(DifferentialHarness(Opts).runCampaign(Seeds));
  }
  return Total;
}

/// Aggregate evidence from the exact-set sweep below.
struct PruneSweepStats {
  uint64_t Variants = 0;
  uint64_t Dropped = 0;
  unsigned SeedsWithFacts = 0;
};

/// The soundness core, applied to each seed of \p Seeds: the pruned cursor
/// must emit an ordered subsequence of the unpruned stream, the pruned
/// counter must balance, and every dropped variant must be frontend- or
/// oracle-rejected.
PruneSweepStats checkExactOracleValidSet(const std::vector<std::string> &Seeds,
                                         uint64_t RankCap) {
  PruneSweepStats Stats;
  for (const std::string &Seed : Seeds) {
    auto Ctx = std::make_unique<ASTContext>();
    DiagnosticEngine Diags;
    if (!Parser::parse(Seed, *Ctx, Diags)) {
      ADD_FAILURE() << "seed does not parse:\n" << Seed;
      continue;
    }
    Sema Analysis(*Ctx, Diags);
    if (!Analysis.run()) {
      ADD_FAILURE() << "seed fails Sema:\n" << Seed;
      continue;
    }
    SkeletonExtractor Extractor(*Ctx, Analysis, {});
    std::vector<SkeletonUnit> Units = Extractor.extract();

    std::vector<ValidityConstraints> Validity =
        analyzeValidity(*Ctx, Analysis, Units);
    std::vector<const ValidityConstraints *> Ptrs;
    uint64_t Facts = 0;
    for (const ValidityConstraints &C : Validity) {
      Ptrs.push_back(&C);
      Facts += C.forbiddenPairs();
    }
    if (Facts)
      ++Stats.SeedsWithFacts;

    ProgramCursor All(Units, SpeMode::Exact);
    ProgramCursor Pruned(Units, SpeMode::Exact);
    Pruned.setConstraints(Ptrs);
    All.setEnd(BigInt(RankCap));
    Pruned.setEnd(BigInt(RankCap));

    VariantRenderer Renderer(*Ctx, Units);
    std::vector<std::string> AllTexts, PrunedTexts;
    std::string Buffer;
    while (const ProgramAssignment *PA = All.next()) {
      Renderer.renderInto(*PA, Buffer);
      AllTexts.push_back(Buffer);
    }
    while (const ProgramAssignment *PA = Pruned.next()) {
      Renderer.renderInto(*PA, Buffer);
      PrunedTexts.push_back(Buffer);
    }
    Stats.Variants += AllTexts.size();

    // The pruned stream must be an ordered subsequence of the unpruned one,
    // the arithmetic must balance, and -- the soundness core -- everything
    // dropped must be frontend- or oracle-rejected.
    if (!Pruned.pruned().fitsInUint64()) {
      ADD_FAILURE() << "pruned count overflow for seed:\n" << Seed;
      continue;
    }
    EXPECT_EQ(PrunedTexts.size() + Pruned.pruned().toUint64(),
              AllTexts.size())
        << Seed;
    size_t PI = 0;
    for (const std::string &Text : AllTexts) {
      if (PI < PrunedTexts.size() && PrunedTexts[PI] == Text) {
        ++PI;
        continue;
      }
      ++Stats.Dropped;
      EXPECT_FALSE(oracleAccepts(Text))
          << "pruning dropped an oracle-valid variant of seed:\n"
          << Seed << "\nvariant:\n"
          << Text;
    }
    EXPECT_EQ(PI, PrunedTexts.size())
        << "pruned stream is not a subsequence for seed:\n"
        << Seed;
  }
  return Stats;
}

} // namespace

TEST(ValidityPropertyTest, PrunedEnumerationKeepsExactlyTheOracleValidSet) {
  // Per-seed enumeration cap of 1200 keeps CI fast.
  PruneSweepStats Stats = checkExactOracleValidSet(propertySeeds(50), 1200);

  // The analysis must actually bite on this corpus, not vacuously pass.
  EXPECT_GE(Stats.SeedsWithFacts, 20u);
  EXPECT_GT(Stats.Dropped, 0u);
  EXPECT_GT(Stats.Variants, 1000u);
}

TEST(ValidityPropertyTest, LoopCorpusPrunedEnumerationKeepsOracleValidSet) {
  // The same exact-set property on the loop/call corpus, where the pruned
  // facts come from must-execute loop bodies, post-loop joins, and
  // must-called helper summaries, and where some unpruned variants diverge
  // (retargeted counter updates) and cost the oracle its full step budget.
  std::vector<std::string> Seeds = loopSeeds(10);
  assertLoopCorpusShape(Seeds);

  PruneSweepStats Stats = checkExactOracleValidSet(Seeds, 600);
  EXPECT_GE(Stats.SeedsWithFacts, 3u);
  EXPECT_GT(Stats.Dropped, 0u);
  EXPECT_GT(Stats.Variants, 200u);
}

TEST(ValidityPropertyTest, PrunedCampaignMatchesUnprunedAtAllThreadCounts) {
  std::vector<std::string> Seeds = propertySeeds(8);

  CoverageRegistry UnprunedCov;
  CampaignResult Unpruned =
      twoPersonaCampaign(Seeds, /*Prune=*/false, nullptr, &UnprunedCov, 1);
  ASSERT_GT(Unpruned.VariantsTested, 0u);
  ASSERT_FALSE(Unpruned.UniqueBugs.empty());

  CampaignResult PrunedAtOne;
  for (unsigned Threads : {1u, 2u, 4u}) {
    CoverageRegistry Cov;
    CampaignResult Pruned =
        twoPersonaCampaign(Seeds, /*Prune=*/true, nullptr, &Cov, Threads);

    // The deduped FoundBug set (ids, personas, signatures, witnesses) and
    // every oracle-visible counter must be bit-identical to the unpruned
    // run; only enumeration-cost counters may differ.
    EXPECT_TRUE(Pruned.UniqueBugs == Unpruned.UniqueBugs)
        << "threads=" << Threads;
    EXPECT_EQ(Pruned.VariantsTested, Unpruned.VariantsTested);
    EXPECT_EQ(Pruned.CrashObservations, Unpruned.CrashObservations);
    EXPECT_EQ(Pruned.WrongCodeObservations, Unpruned.WrongCodeObservations);
    EXPECT_EQ(Pruned.VariantsEnumerated + Pruned.VariantsPruned,
              Unpruned.VariantsEnumerated);
    EXPECT_EQ(Cov.hitSet(), UnprunedCov.hitSet()) << "threads=" << Threads;
    EXPECT_EQ(Cov.totalPoints(), UnprunedCov.totalPoints());

    // And the pruned campaign itself must be thread-count invariant.
    if (Threads == 1)
      PrunedAtOne = Pruned;
    else
      EXPECT_TRUE(Pruned == PrunedAtOne) << "threads=" << Threads;
  }
}

TEST(ValidityPropertyTest, LoopCorpusPrunedCampaignMatchesUnprunedAtAllThreads) {
  // The acceptance battery on the loop/call corpus: pruning guided by the
  // CFG dataflow facts must leave the deduped FoundBug set, coverage, and
  // VariantsTested bit-identical to the unpruned campaign at 1, 2, and 4
  // worker threads, with diverging variants (Timeout) in the mix. A small
  // per-seed budget keeps the diverging interpretations affordable. Loop
  // seeds carry far more holes than the straight-line corpus, so their SPE
  // counts sail past the paper's 10K skip threshold; the campaign raises
  // the threshold (the per-seed budget still bounds the work actually done)
  // so the loop seeds are admitted rather than skipped.
  std::vector<std::string> Seeds = loopSeeds(5);
  assertLoopCorpusShape(Seeds);

  // A 100K-step oracle budget keeps diverging variants cheap while leaving
  // orders of magnitude of headroom for any terminating variant of these
  // small seeds (trip bounds are literal 2..5).
  const uint64_t Budget = 60;
  const uint64_t Threshold = 1'000'000'000'000'000ull;
  const uint64_t MaxSteps = 100'000;
  CoverageRegistry UnprunedCov;
  CampaignResult Unpruned = twoPersonaCampaign(Seeds, /*Prune=*/false,
                                               nullptr, &UnprunedCov, 1,
                                               Budget, Threshold, MaxSteps);
  ASSERT_GT(Unpruned.VariantsTested, 0u);
  ASSERT_GT(Unpruned.VariantsOracleExcluded, 0u)
      << "no diverging/rejected variants -- the loop corpus is not "
         "exercising the oracle exclusion path";

  CampaignResult PrunedAtOne;
  for (unsigned Threads : {1u, 2u, 4u}) {
    CoverageRegistry Cov;
    CampaignResult Pruned = twoPersonaCampaign(Seeds, /*Prune=*/true,
                                               nullptr, &Cov, Threads,
                                               Budget, Threshold, MaxSteps);

    EXPECT_TRUE(Pruned.UniqueBugs == Unpruned.UniqueBugs)
        << "threads=" << Threads;
    EXPECT_EQ(Pruned.VariantsTested, Unpruned.VariantsTested);
    EXPECT_EQ(Pruned.CrashObservations, Unpruned.CrashObservations);
    EXPECT_EQ(Pruned.WrongCodeObservations, Unpruned.WrongCodeObservations);
    EXPECT_EQ(Pruned.VariantsEnumerated + Pruned.VariantsPruned,
              Unpruned.VariantsEnumerated);
    EXPECT_EQ(Cov.hitSet(), UnprunedCov.hitSet()) << "threads=" << Threads;

    if (Threads == 1)
      PrunedAtOne = Pruned;
    else
      EXPECT_TRUE(Pruned == PrunedAtOne) << "threads=" << Threads;
  }
}

TEST(ValidityPropertyTest, PruningPlusMemoizationCutsOracleExecutions) {
  // The acceptance bar: on the generated-corpus campaign (two personas over
  // the same seeds, the shape every version-sweep bench runs), pruning plus
  // oracle memoization must cut reference-oracle executions by >= 30% while
  // leaving bugs, coverage, and tested-variant counts bit-identical.
  std::vector<std::string> Seeds = propertySeeds(16);

  CoverageRegistry BaseCov;
  CampaignResult Base =
      twoPersonaCampaign(Seeds, /*Prune=*/false, nullptr, &BaseCov, 1);
  ASSERT_GT(Base.OracleExecutions, 0u);
  EXPECT_EQ(Base.OracleCacheHits, 0u);
  EXPECT_EQ(Base.VariantsPruned, 0u);

  OracleCache Cache;
  CoverageRegistry OptCov;
  CampaignResult Opt =
      twoPersonaCampaign(Seeds, /*Prune=*/true, &Cache, &OptCov, 1);

  EXPECT_TRUE(Opt.UniqueBugs == Base.UniqueBugs);
  EXPECT_EQ(Opt.VariantsTested, Base.VariantsTested);
  EXPECT_EQ(Opt.VariantsEnumerated + Opt.VariantsPruned,
            Base.VariantsEnumerated);
  EXPECT_LE(Opt.VariantsOracleExcluded, Base.VariantsOracleExcluded)
      << "pruned variants can only come out of the oracle-rejected pool";
  EXPECT_EQ(OptCov.hitSet(), BaseCov.hitSet());
  EXPECT_EQ(Opt.OracleCacheHits, Cache.hits());

  double Reduction =
      1.0 - static_cast<double>(Opt.OracleExecutions) /
                static_cast<double>(Base.OracleExecutions);
  EXPECT_GE(Reduction, 0.30)
      << Opt.OracleExecutions << " vs " << Base.OracleExecutions
      << " oracle executions";

  // The cached campaign must also stay deterministic across thread counts.
  OracleCache Cache4;
  CoverageRegistry Cov4;
  CampaignResult Opt4 = twoPersonaCampaign(Seeds, true, &Cache4, &Cov4, 4);
  EXPECT_TRUE(Opt4 == Opt);
  EXPECT_EQ(Cov4.hitSet(), OptCov.hitSet());
}
