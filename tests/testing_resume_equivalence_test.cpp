//===- tests/testing_resume_equivalence_test.cpp - kill-point battery ----===//
//
// The headline guarantee of the persistence layer: a campaign killed at an
// *arbitrary* instant and resumed from its last on-disk checkpoint ends
// with a CampaignResult -- unique bugs, raw findings, coverage, triage,
// and every deterministic counter -- bit-identical to the uninterrupted
// run, at 1, 2, and 4 worker threads. The battery interrupts a campaign at
// every checkpoint boundary and at randomized fuzz points, with and
// without the oracle cache + on-disk store; it also pins the rejection
// paths (option/seed-list skew, missing snapshots) and that checkpointing
// itself does not perturb results.
//
//===----------------------------------------------------------------------===//

#include "compiler/Passes.h"
#include "testing/Corpus.h"
#include "testing/Harness.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

using namespace spe;

namespace {

/// Small-but-busy campaign shape: two distinct seeds plus a repeat of the
/// first, so the oracle cache sees real cross-seed hits whose counters the
/// resume must reproduce exactly.
std::vector<std::string> testSeeds() {
  const std::vector<std::string> &Embedded = embeddedSeeds();
  return {Embedded[0], Embedded[2], Embedded[0]};
}

HarnessOptions baseOptions(unsigned Threads) {
  HarnessOptions Opts;
  Opts.Configs = HarnessOptions::crashMatrix(Persona::GccSim, 48);
  Opts.VariantBudget = 30;
  Opts.Threads = Threads;
  Opts.CheckpointEveryN = 5; // Small cadence: many boundaries to kill at.
  return Opts;
}

struct TempDir {
  std::string Dir;
  explicit TempDir(const std::string &Name) : Dir("resume_test_tmp/" + Name) {
    std::filesystem::remove_all(Dir);
    std::filesystem::create_directories(Dir);
  }
  std::string path(const char *File) const { return Dir + "/" + File; }
};

struct RunOutput {
  CampaignResult Result;
  CoverageRegistry Cov;
};

/// The uninterrupted reference: checkpointing on (it must not perturb
/// anything), no crash.
RunOutput referenceRun(unsigned Threads, bool UseCache, bool UseTriage,
                       const std::string &Tag) {
  TempDir T("ref_" + Tag);
  RunOutput Out;
  registerPassCoverageCatalog(Out.Cov);
  OracleCache Cache;
  HarnessOptions Opts = baseOptions(Threads);
  Opts.Cov = &Out.Cov;
  Opts.CheckpointPath = T.path("campaign.ck");
  Opts.Triage = UseTriage;
  if (UseCache) {
    Opts.Cache = &Cache;
    Opts.OracleStorePath = T.path("oracle.log");
  }
  Out.Result = DifferentialHarness(Opts).runCampaign(testSeeds());
  return Out;
}

/// Kill the campaign after \p KillAfter variants, then resume from disk.
/// Fresh cache/coverage objects stand in for the new process's state.
RunOutput killAndResume(uint64_t KillAfter, unsigned Threads, bool UseCache,
                        bool UseTriage, const std::string &Tag) {
  TempDir T("kill_" + Tag);
  std::vector<std::string> Seeds = testSeeds();

  {
    CoverageRegistry CrashCov;
    registerPassCoverageCatalog(CrashCov);
    OracleCache CrashCache;
    HarnessOptions Opts = baseOptions(Threads);
    Opts.Cov = &CrashCov;
    Opts.CheckpointPath = T.path("campaign.ck");
    Opts.Triage = UseTriage;
    if (UseCache) {
      Opts.Cache = &CrashCache;
      Opts.OracleStorePath = T.path("oracle.log");
    }
    Opts.SimulateCrashAfter = KillAfter;
    // The "crashed process": its return value and in-memory state die here.
    DifferentialHarness(Opts).runCampaign(Seeds);
  }

  RunOutput Out;
  registerPassCoverageCatalog(Out.Cov);
  OracleCache ResumeCache;
  HarnessOptions Opts = baseOptions(Threads);
  Opts.Cov = &Out.Cov;
  Opts.CheckpointPath = T.path("campaign.ck");
  Opts.Triage = UseTriage;
  if (UseCache) {
    Opts.Cache = &ResumeCache;
    Opts.OracleStorePath = T.path("oracle.log");
  }
  std::string Err;
  EXPECT_TRUE(DifferentialHarness(Opts).resumeCampaign(Seeds, Out.Result,
                                                       Err))
      << Err;
  return Out;
}

void expectIdentical(const RunOutput &Resumed, const RunOutput &Reference,
                     const std::string &Tag) {
  EXPECT_TRUE(Resumed.Result == Reference.Result)
      << Tag << ": resumed result diverged ("
      << Resumed.Result.VariantsEnumerated << "/"
      << Reference.Result.VariantsEnumerated << " variants, "
      << Resumed.Result.UniqueBugs.size() << "/"
      << Reference.Result.UniqueBugs.size() << " bugs, "
      << Resumed.Result.OracleExecutions << "/"
      << Reference.Result.OracleExecutions << " oracle execs, "
      << Resumed.Result.OracleCacheHits << "/"
      << Reference.Result.OracleCacheHits << " cache hits)";
  EXPECT_EQ(Resumed.Cov.hitSet(), Reference.Cov.hitSet()) << Tag;
}

} // namespace

TEST(ResumeEquivalenceTest, CheckpointingItselfDoesNotPerturbResults) {
  // A checkpointed campaign must equal the plain one bit for bit, and the
  // final snapshot must be marked complete.
  HarnessOptions Plain = baseOptions(1);
  CampaignResult Reference = DifferentialHarness(Plain).runCampaign(testSeeds());
  ASSERT_GT(Reference.VariantsEnumerated, 0u);

  for (unsigned Threads : {1u, 2u, 4u}) {
    RunOutput Checkpointed =
        referenceRun(Threads, false, false, "perturb_t" +
                                                std::to_string(Threads));
    EXPECT_TRUE(Checkpointed.Result == Reference) << Threads << " threads";
  }
}

TEST(ResumeEquivalenceTest, KillAtEveryCheckpointBoundary) {
  // Kill exactly at each multiple of the publish cadence -- plus K=1,
  // death before the first publish (the crash-before-any-checkpoint
  // recovery path; K=0 would mean "simulation off", not "die at once") --
  // and resume; repeat per thread count.
  for (unsigned Threads : {1u, 2u, 4u}) {
    std::string Tag = "bound_t" + std::to_string(Threads);
    RunOutput Reference = referenceRun(Threads, false, false, Tag);
    uint64_t Total = Reference.Result.VariantsEnumerated;
    ASSERT_GT(Total, 10u);
    std::vector<uint64_t> KillPoints = {1};
    for (uint64_t K = 5; K < Total; K += 5)
      KillPoints.push_back(K);
    for (uint64_t K : KillPoints) {
      std::string Point = Tag + "_k" + std::to_string(K);
      RunOutput Resumed = killAndResume(K, Threads, false, false, Point);
      expectIdentical(Resumed, Reference, Point);
    }
  }
}

TEST(ResumeEquivalenceTest, KillAtRandomizedFuzzPoints) {
  // >= 20 randomized interrupt points spread over the thread counts, off
  // the checkpoint cadence on purpose.
  std::mt19937_64 Rng(0xC0FFEE);
  for (unsigned Threads : {1u, 2u, 4u}) {
    std::string Tag = "fuzz_t" + std::to_string(Threads);
    RunOutput Reference = referenceRun(Threads, false, false, Tag);
    uint64_t Total = Reference.Result.VariantsEnumerated;
    ASSERT_GT(Total, 2u);
    for (int I = 0; I < 8; ++I) {
      uint64_t K = 1 + Rng() % (Total - 1);
      std::string Point = Tag + "_k" + std::to_string(K) + "_i" +
                          std::to_string(I);
      RunOutput Resumed = killAndResume(K, Threads, false, false, Point);
      expectIdentical(Resumed, Reference, Point);
    }
  }
}

TEST(ResumeEquivalenceTest, KillPointsWithOracleCacheAndStore) {
  // With the memoizing cache + on-disk store active the resume must also
  // reproduce OracleExecutions / OracleCacheHits exactly: the store is
  // truncated to the snapshot's recorded length, so verdicts computed
  // after the last publish are recomputed exactly like the uninterrupted
  // run computed them. The repeated seed guarantees real cache traffic.
  std::mt19937_64 Rng(0xFEEDFACE);
  for (unsigned Threads : {1u, 2u, 4u}) {
    std::string Tag = "cache_t" + std::to_string(Threads);
    RunOutput Reference = referenceRun(Threads, true, false, Tag);
    ASSERT_GT(Reference.Result.OracleCacheHits, 0u)
        << "the repeated seed should produce cache hits";
    uint64_t Total = Reference.Result.VariantsEnumerated;
    for (int I = 0; I < 4; ++I) {
      uint64_t K = 1 + Rng() % (Total - 1);
      std::string Point = Tag + "_k" + std::to_string(K) + "_i" +
                          std::to_string(I);
      RunOutput Resumed = killAndResume(K, Threads, true, false, Point);
      expectIdentical(Resumed, Reference, Point);
    }
  }
}

TEST(ResumeEquivalenceTest, SparseCheckpointCadencesStillResumeExactly) {
  // Cadences coarser than a seed (commit writes amortized across seeds)
  // and coarser than the whole campaign (nothing on disk but the initial
  // snapshot at kill time) must still resume bit-identically -- they just
  // redo more work.
  std::mt19937_64 Rng(0xBADC0DE);
  for (uint64_t EveryN : {40u, 100000u}) {
    for (unsigned Threads : {1u, 2u}) {
      std::string Tag = "sparse_n" + std::to_string(EveryN) + "_t" +
                        std::to_string(Threads);
      TempDir RefT("ref_" + Tag);
      RunOutput Reference;
      registerPassCoverageCatalog(Reference.Cov);
      HarnessOptions RefOpts = baseOptions(Threads);
      RefOpts.CheckpointEveryN = EveryN;
      RefOpts.Cov = &Reference.Cov;
      RefOpts.CheckpointPath = RefT.path("campaign.ck");
      Reference.Result =
          DifferentialHarness(RefOpts).runCampaign(testSeeds());

      uint64_t Total = Reference.Result.VariantsEnumerated;
      uint64_t K = 1 + Rng() % (Total - 1);
      TempDir T("kill_" + Tag);
      {
        CoverageRegistry Cov;
        registerPassCoverageCatalog(Cov);
        HarnessOptions Opts = baseOptions(Threads);
        Opts.CheckpointEveryN = EveryN;
        Opts.Cov = &Cov;
        Opts.CheckpointPath = T.path("campaign.ck");
        Opts.SimulateCrashAfter = K;
        DifferentialHarness(Opts).runCampaign(testSeeds());
      }
      RunOutput Resumed;
      registerPassCoverageCatalog(Resumed.Cov);
      HarnessOptions Opts = baseOptions(Threads);
      Opts.CheckpointEveryN = EveryN;
      Opts.Cov = &Resumed.Cov;
      Opts.CheckpointPath = T.path("campaign.ck");
      std::string Err;
      ASSERT_TRUE(DifferentialHarness(Opts).resumeCampaign(
          testSeeds(), Resumed.Result, Err))
          << Tag << ": " << Err;
      expectIdentical(Resumed, Reference, Tag + "_k" + std::to_string(K));
    }
  }
}

TEST(ResumeEquivalenceTest, TriageOutputIsIdenticalAfterResume) {
  // Triage (dedup + reduction + rank minimization) runs post-campaign; a
  // resumed campaign must produce the identical triaged report, including
  // the reduction cost accounting.
  RunOutput Reference = referenceRun(2, true, true, "triage");
  ASSERT_FALSE(Reference.Result.Triaged.empty());
  uint64_t Total = Reference.Result.VariantsEnumerated;
  for (uint64_t K : {Total / 3, Total / 2}) {
    std::string Point = "triage_k" + std::to_string(K);
    RunOutput Resumed = killAndResume(K, 2, true, true, Point);
    expectIdentical(Resumed, Reference, Point);
    EXPECT_EQ(Resumed.Result.Triaged.size(), Reference.Result.Triaged.size());
    EXPECT_TRUE(Resumed.Result.Reduction == Reference.Result.Reduction);
  }
}

TEST(ResumeEquivalenceTest, ResumeOfACompletedCampaignReturnsTheFinalResult) {
  TempDir T("complete");
  std::vector<std::string> Seeds = testSeeds();
  CoverageRegistry Cov1;
  registerPassCoverageCatalog(Cov1);
  HarnessOptions Opts = baseOptions(2);
  Opts.Cov = &Cov1;
  Opts.CheckpointPath = T.path("campaign.ck");
  CampaignResult Reference = DifferentialHarness(Opts).runCampaign(Seeds);

  CoverageRegistry Cov2;
  registerPassCoverageCatalog(Cov2);
  HarnessOptions ResumeOpts = baseOptions(2);
  ResumeOpts.Cov = &Cov2;
  ResumeOpts.CheckpointPath = T.path("campaign.ck");
  CampaignResult Result;
  std::string Err;
  ASSERT_TRUE(
      DifferentialHarness(ResumeOpts).resumeCampaign(Seeds, Result, Err))
      << Err;
  EXPECT_TRUE(Result == Reference);
  EXPECT_EQ(Cov2.hitSet(), Cov1.hitSet());
}

TEST(ResumeEquivalenceTest, ResumeRejectsSkewedInputs) {
  TempDir T("reject");
  std::vector<std::string> Seeds = testSeeds();
  HarnessOptions Opts = baseOptions(2);
  Opts.CheckpointPath = T.path("campaign.ck");
  Opts.SimulateCrashAfter = 12;
  DifferentialHarness(Opts).runCampaign(Seeds);

  CampaignResult Result;
  std::string Err;
  auto SnapshotBytes = [&] {
    std::ifstream In(T.path("campaign.ck"), std::ios::binary);
    std::ostringstream Out;
    Out << In.rdbuf();
    return Out.str();
  };
  std::string Before = SnapshotBytes();

  // Different budget: options fingerprint mismatch.
  HarnessOptions BadBudget = Opts;
  BadBudget.SimulateCrashAfter = 0;
  BadBudget.VariantBudget = 31;
  EXPECT_FALSE(
      DifferentialHarness(BadBudget).resumeCampaign(Seeds, Result, Err));
  EXPECT_NE(Err.find("options"), std::string::npos) << Err;
  // A rejected resume must leave the snapshot untouched: it is exactly
  // the state a corrected retry needs.
  EXPECT_EQ(SnapshotBytes(), Before);

  // Coverage registry attached where the snapshot ran without one:
  // options fingerprint mismatch (the snapshot recorded no hit sets to
  // restore, so proceeding would silently skew coverage).
  CoverageRegistry LateCov;
  registerPassCoverageCatalog(LateCov);
  HarnessOptions BadCov = Opts;
  BadCov.SimulateCrashAfter = 0;
  BadCov.Cov = &LateCov;
  EXPECT_FALSE(
      DifferentialHarness(BadCov).resumeCampaign(Seeds, Result, Err));
  EXPECT_NE(Err.find("options"), std::string::npos) << Err;

  // Different corpus: seed-list fingerprint mismatch.
  HarnessOptions Good = Opts;
  Good.SimulateCrashAfter = 0;
  std::vector<std::string> OtherSeeds = Seeds;
  OtherSeeds.pop_back();
  EXPECT_FALSE(
      DifferentialHarness(Good).resumeCampaign(OtherSeeds, Result, Err));
  EXPECT_NE(Err.find("seed-list"), std::string::npos) << Err;

  // Missing snapshot.
  HarnessOptions NoFile = Good;
  NoFile.CheckpointPath = T.path("nonexistent.ck");
  EXPECT_FALSE(
      DifferentialHarness(NoFile).resumeCampaign(Seeds, Result, Err));

  // No checkpoint path configured at all.
  HarnessOptions NoPath = Good;
  NoPath.CheckpointPath.clear();
  EXPECT_FALSE(
      DifferentialHarness(NoPath).resumeCampaign(Seeds, Result, Err));

  // And the unskewed resume still works.
  ASSERT_TRUE(DifferentialHarness(Good).resumeCampaign(Seeds, Result, Err))
      << Err;
}

TEST(ResumeEquivalenceTest, CorruptSnapshotIsRejectedNotMisread) {
  TempDir T("corrupt");
  std::vector<std::string> Seeds = testSeeds();
  HarnessOptions Opts = baseOptions(1);
  Opts.CheckpointPath = T.path("campaign.ck");
  Opts.SimulateCrashAfter = 9;
  DifferentialHarness(Opts).runCampaign(Seeds);
  Opts.SimulateCrashAfter = 0;

  // Truncate the snapshot file (as a torn write outside the atomic rename
  // protocol would): resume must reject it.
  auto Bytes = std::filesystem::file_size(T.path("campaign.ck"));
  std::filesystem::resize_file(T.path("campaign.ck"), Bytes / 2);
  CampaignResult Result;
  std::string Err;
  EXPECT_FALSE(DifferentialHarness(Opts).resumeCampaign(Seeds, Result, Err));
  EXPECT_NE(Err.find("checksum"), std::string::npos) << Err;
}
