//===- tests/skeleton_program_cursor_test.cpp - program cursor tests -----===//
//
// The mixed-radix Cartesian-product cursor over skeleton units: its stream
// must equal the independently computed product of per-unit streams, whole-
// program variant #k must be addressable via seek(k), and shard(i, n) must
// partition the program space exactly.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "sema/Sema.h"
#include "skeleton/ProgramEnumerator.h"

#include "gtest/gtest.h"

using namespace spe;

namespace {

struct Pipeline {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  std::unique_ptr<Sema> Analysis;
  std::vector<SkeletonUnit> Units;
};

std::unique_ptr<Pipeline> extract(const std::string &Source,
                                  ExtractorOptions Opts = {}) {
  auto P = std::make_unique<Pipeline>();
  EXPECT_TRUE(Parser::parse(Source, P->Ctx, P->Diags)) << P->Diags.toString();
  P->Analysis = std::make_unique<Sema>(P->Ctx, P->Diags);
  EXPECT_TRUE(P->Analysis->run()) << P->Diags.toString();
  SkeletonExtractor Ex(P->Ctx, *P->Analysis, Opts);
  P->Units = Ex.extract();
  return P;
}

/// Two functions plus a hole-less one: three units with mixed radices.
const char *MultiUnitSource = "int a, b;\n"
                              "void f(void) { a = a - b; b = a; }\n"
                              "void g(void) { int c = 2; b = c + a; }\n"
                              "void h(void) { ; }\n";

/// Independent oracle: the Cartesian product of the per-unit streams, unit 0
/// most significant, computed with nested loops over per-unit cursors is
/// avoided on purpose -- per-unit streams come from SpeEnumerator.
std::vector<ProgramAssignment>
referenceProduct(const std::vector<SkeletonUnit> &Units, SpeMode Mode) {
  std::vector<std::vector<Assignment>> PerUnit;
  for (const SkeletonUnit &Unit : Units) {
    std::vector<Assignment> Stream;
    SpeEnumerator(Unit.Skeleton, Mode).enumerate([&](const Assignment &A) {
      Stream.push_back(A);
      return true;
    });
    PerUnit.push_back(std::move(Stream));
  }
  std::vector<ProgramAssignment> Product;
  ProgramAssignment Current(Units.size());
  std::function<void(size_t)> Recurse = [&](size_t U) {
    if (U == Units.size()) {
      Product.push_back(Current);
      return;
    }
    for (const Assignment &A : PerUnit[U]) {
      Current[U] = A;
      Recurse(U + 1);
    }
  };
  Recurse(0);
  return Product;
}

std::vector<ProgramAssignment> drain(ProgramCursor &Cursor) {
  std::vector<ProgramAssignment> Out;
  while (const ProgramAssignment *PA = Cursor.next())
    Out.push_back(*PA);
  return Out;
}

} // namespace

TEST(ProgramCursorTest, StreamMatchesReferenceProduct) {
  auto P = extract(MultiUnitSource);
  ASSERT_GE(P->Units.size(), 3u);
  for (SpeMode Mode : {SpeMode::Exact, SpeMode::PaperFaithful}) {
    SCOPED_TRACE(speModeName(Mode));
    std::vector<ProgramAssignment> Expected =
        referenceProduct(P->Units, Mode);
    ProgramCursor Cursor(P->Units, Mode);
    EXPECT_EQ(Cursor.size(), BigInt(Expected.size()));
    EXPECT_EQ(Cursor.size(), ProgramEnumerator(P->Units, Mode).countSpe());
    EXPECT_EQ(drain(Cursor), Expected);
  }
}

TEST(ProgramCursorTest, SeekAddressesVariantKDirectly) {
  auto P = extract(MultiUnitSource);
  std::vector<ProgramAssignment> Expected =
      referenceProduct(P->Units, SpeMode::Exact);
  for (size_t K = 0; K <= Expected.size(); ++K) {
    ProgramCursor Cursor(P->Units, SpeMode::Exact);
    Cursor.seek(BigInt(K));
    const ProgramAssignment *PA = Cursor.next();
    if (K == Expected.size()) {
      EXPECT_EQ(PA, nullptr);
      continue;
    }
    ASSERT_NE(PA, nullptr);
    EXPECT_EQ(*PA, Expected[K]) << "seek(" << K << ")";
  }
}

TEST(ProgramCursorTest, SeekThenStreamContinuesInOrder) {
  auto P = extract(MultiUnitSource);
  std::vector<ProgramAssignment> Expected =
      referenceProduct(P->Units, SpeMode::Exact);
  size_t Mid = Expected.size() / 2;
  ProgramCursor Cursor(P->Units, SpeMode::Exact);
  Cursor.seek(BigInt(Mid));
  std::vector<ProgramAssignment> Suffix = drain(Cursor);
  ASSERT_EQ(Suffix.size(), Expected.size() - Mid);
  for (size_t I = 0; I < Suffix.size(); ++I)
    EXPECT_EQ(Suffix[I], Expected[Mid + I]);
}

TEST(ProgramCursorTest, ShardPartitionsTheProgramSpaceExactly) {
  auto P = extract(MultiUnitSource);
  for (SpeMode Mode : {SpeMode::Exact, SpeMode::PaperFaithful}) {
    SCOPED_TRACE(speModeName(Mode));
    std::vector<ProgramAssignment> Expected = referenceProduct(P->Units, Mode);
    for (uint64_t N : {1u, 2u, 4u, 5u, 13u}) {
      std::vector<ProgramAssignment> Concat;
      for (uint64_t I = 0; I < N; ++I) {
        ProgramCursor Shard(P->Units, Mode);
        Shard.shard(I, N);
        std::vector<ProgramAssignment> Part = drain(Shard);
        Concat.insert(Concat.end(), Part.begin(), Part.end());
      }
      EXPECT_EQ(Concat, Expected) << "n=" << N;
    }
  }
}

TEST(ProgramCursorTest, TruncatedShardsPartitionTheBudgetPrefix) {
  // The harness pattern: cap the space at a budget, then shard the prefix.
  auto P = extract(MultiUnitSource);
  std::vector<ProgramAssignment> Expected =
      referenceProduct(P->Units, SpeMode::Exact);
  const uint64_t Budget = 7;
  ASSERT_GT(Expected.size(), Budget);
  std::vector<ProgramAssignment> Concat;
  for (uint64_t I = 0; I < 3; ++I) {
    ProgramCursor Shard(P->Units, SpeMode::Exact);
    Shard.setEnd(BigInt(Budget));
    Shard.shard(I, 3);
    std::vector<ProgramAssignment> Part = drain(Shard);
    Concat.insert(Concat.end(), Part.begin(), Part.end());
  }
  Expected.resize(Budget);
  EXPECT_EQ(Concat, Expected);
}

TEST(ProgramCursorTest, HolelessUnitsYieldSingleEmptyVariant) {
  auto P = extract("void h(void) { ; }\n");
  ProgramCursor Cursor(P->Units, SpeMode::Exact);
  EXPECT_EQ(Cursor.size(), BigInt(1));
  const ProgramAssignment *PA = Cursor.next();
  ASSERT_NE(PA, nullptr);
  for (const Assignment &A : *PA)
    EXPECT_TRUE(A.empty());
  EXPECT_EQ(Cursor.next(), nullptr);
}
