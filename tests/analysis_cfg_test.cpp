//===- tests/analysis_cfg_test.cpp - CFG builder and dataflow battery ----===//
//
// Unit coverage for the analysis/ subsystem underpinning CFG-based validity
// pruning:
//
//   * block/edge structure for if/while/do/for/goto nests, pinned by
//     locating the blocks that hold specific AST nodes;
//   * unreachable-code handling (code after return/goto takes no edges into
//     the reachable region);
//   * must-execute masks (blocks on every entry-to-exit path);
//   * dataflow fixpoint convergence on graphs with back edges, with a
//     transfer-count bound so a diverging lattice cannot hide behind a
//     passing result;
//   * call summaries and the transitive must-called set;
//   * the def-before-use facts the rewritten ValidityAnalysis derives from
//     loops, do-bodies, and must-called helpers -- including the cases the
//     old straight-line-prefix walker provably could not see.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/CallSummary.h"
#include "analysis/Dataflow.h"
#include "lang/Parser.h"
#include "sema/Sema.h"
#include "skeleton/SkeletonExtractor.h"
#include "skeleton/ValidityAnalysis.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "testing/Corpus.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <memory>

using namespace spe;

namespace {

/// A parsed and analyzed program plus the artifacts the assertions need.
struct Fixture {
  std::unique_ptr<ASTContext> Ctx;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<Sema> Analysis;
};

Fixture analyze(const std::string &Source) {
  Fixture F;
  F.Ctx = std::make_unique<ASTContext>();
  F.Diags = std::make_unique<DiagnosticEngine>();
  EXPECT_TRUE(Parser::parse(Source, *F.Ctx, *F.Diags)) << Source;
  F.Analysis = std::make_unique<Sema>(*F.Ctx, *F.Diags);
  EXPECT_TRUE(F.Analysis->run()) << Source;
  return F;
}

/// \returns the id of the unique block whose elements contain \p E.
unsigned blockOfExpr(const CFG &G, const Expr *E) {
  for (unsigned B = 0; B < G.size(); ++B)
    for (const CFGElement &El : G.block(B).Elems)
      if (El.ElemKind == CFGElement::Kind::Expr && El.E == E)
        return B;
  ADD_FAILURE() << "expression not placed in any block";
  return ~0u;
}

/// \returns the id of the unique block declaring the variable named \p Name.
unsigned blockOfDecl(const CFG &G, const std::string &Name) {
  for (unsigned B = 0; B < G.size(); ++B)
    for (const CFGElement &El : G.block(B).Elems)
      if (El.ElemKind == CFGElement::Kind::Decl && El.D->name() == Name)
        return B;
  ADD_FAILURE() << "declaration of " << Name << " not placed in any block";
  return ~0u;
}

bool hasEdge(const CFG &G, unsigned From, unsigned To) {
  const std::vector<unsigned> &S = G.block(From).Succs;
  return std::find(S.begin(), S.end(), To) != S.end();
}

/// \returns the first statement of kind \p K anywhere under \p S.
const Stmt *findStmt(const Stmt *S, Stmt::Kind K) {
  if (!S)
    return nullptr;
  if (S->kind() == K)
    return S;
  switch (S->kind()) {
  case Stmt::Kind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->body())
      if (const Stmt *Found = findStmt(Child, K))
        return Found;
    return nullptr;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    if (const Stmt *Found = findStmt(I->thenStmt(), K))
      return Found;
    return findStmt(I->elseStmt(), K);
  }
  case Stmt::Kind::While:
    return findStmt(cast<WhileStmt>(S)->body(), K);
  case Stmt::Kind::Do:
    return findStmt(cast<DoStmt>(S)->body(), K);
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    if (const Stmt *Found = findStmt(F->init(), K))
      return Found;
    return findStmt(F->body(), K);
  }
  case Stmt::Kind::Label:
    return findStmt(cast<LabelStmt>(S)->sub(), K);
  default:
    return nullptr;
  }
}

/// First statement of a compound body, as the expression it evaluates.
const Expr *firstBodyExpr(const Stmt *Body) {
  return cast<ExprStmt>(cast<CompoundStmt>(Body)->body().front())->expr();
}

//===----------------------------------------------------------------------===//
// Block and edge structure
//===----------------------------------------------------------------------===//

TEST(CFGStructureTest, StraightLineBodyIsOneBlock) {
  Fixture F = analyze("int main(void) {\n"
                      "  int x = 1;\n"
                      "  x = x + 2;\n"
                      "  return x;\n"
                      "}\n");
  const FunctionDecl *Main = F.Ctx->findFunction("main");
  CFG G = CFG::build(*Main);

  unsigned Body = blockOfDecl(G, "x");
  EXPECT_TRUE(hasEdge(G, CFG::EntryBlock, Body));
  EXPECT_TRUE(hasEdge(G, Body, CFG::ExitBlock));
  // Declaration, assignment, return value: one block, three elements.
  EXPECT_EQ(G.block(Body).Elems.size(), 3u);
  // Entry and exit are synthetic and empty.
  EXPECT_TRUE(G.block(CFG::EntryBlock).Elems.empty());
  EXPECT_TRUE(G.block(CFG::ExitBlock).Elems.empty());
}

TEST(CFGStructureTest, IfElseDiamond) {
  Fixture F = analyze("int main(void) {\n"
                      "  int c = 1;\n"
                      "  if (c > 0) {\n"
                      "    c = 2;\n"
                      "  } else {\n"
                      "    c = 3;\n"
                      "  }\n"
                      "  return c;\n"
                      "}\n");
  const FunctionDecl *Main = F.Ctx->findFunction("main");
  const auto *If = cast<IfStmt>(findStmt(Main->body(), Stmt::Kind::If));
  const auto *Ret =
      cast<ReturnStmt>(findStmt(Main->body(), Stmt::Kind::Return));
  CFG G = CFG::build(*Main);

  unsigned Cond = blockOfExpr(G, If->cond());
  unsigned Then = blockOfExpr(G, firstBodyExpr(If->thenStmt()));
  unsigned Else = blockOfExpr(G, firstBodyExpr(If->elseStmt()));
  unsigned Join = blockOfExpr(G, Ret->value());

  EXPECT_NE(Then, Else);
  EXPECT_TRUE(hasEdge(G, Cond, Then));
  EXPECT_TRUE(hasEdge(G, Cond, Else));
  EXPECT_TRUE(hasEdge(G, Then, Join));
  EXPECT_TRUE(hasEdge(G, Else, Join));
  EXPECT_FALSE(hasEdge(G, Cond, Join)) << "else branch must not be skipped";
  EXPECT_EQ(G.block(Cond).Succs.size(), 2u);
}

TEST(CFGStructureTest, IfWithoutElseShortcutsToJoin) {
  Fixture F = analyze("int main(void) {\n"
                      "  int c = 1;\n"
                      "  if (c > 0) {\n"
                      "    c = 2;\n"
                      "  }\n"
                      "  return c;\n"
                      "}\n");
  const FunctionDecl *Main = F.Ctx->findFunction("main");
  const auto *If = cast<IfStmt>(findStmt(Main->body(), Stmt::Kind::If));
  const auto *Ret =
      cast<ReturnStmt>(findStmt(Main->body(), Stmt::Kind::Return));
  CFG G = CFG::build(*Main);

  unsigned Cond = blockOfExpr(G, If->cond());
  unsigned Join = blockOfExpr(G, Ret->value());
  EXPECT_TRUE(hasEdge(G, Cond, Join));
  EXPECT_EQ(G.block(Cond).Succs.size(), 2u);
}

TEST(CFGStructureTest, WhileLoopHasBackEdgeAndExitEdge) {
  Fixture F = analyze("int main(void) {\n"
                      "  int n = 3;\n"
                      "  while (n > 0) {\n"
                      "    n = n - 1;\n"
                      "  }\n"
                      "  return n;\n"
                      "}\n");
  const FunctionDecl *Main = F.Ctx->findFunction("main");
  const auto *W = cast<WhileStmt>(findStmt(Main->body(), Stmt::Kind::While));
  const auto *Ret =
      cast<ReturnStmt>(findStmt(Main->body(), Stmt::Kind::Return));
  CFG G = CFG::build(*Main);

  unsigned Header = blockOfExpr(G, W->cond());
  unsigned Body = blockOfExpr(G, firstBodyExpr(W->body()));
  unsigned After = blockOfExpr(G, Ret->value());

  EXPECT_TRUE(hasEdge(G, Header, Body));
  EXPECT_TRUE(hasEdge(G, Header, After));
  EXPECT_TRUE(hasEdge(G, Body, Header)) << "back edge missing";
  EXPECT_FALSE(hasEdge(G, Body, After)) << "body must re-test the condition";
}

TEST(CFGStructureTest, DoLoopBodyPrecedesCondition) {
  Fixture F = analyze("int main(void) {\n"
                      "  int n = 3;\n"
                      "  do {\n"
                      "    n = n - 1;\n"
                      "  } while (n > 0);\n"
                      "  return n;\n"
                      "}\n");
  const FunctionDecl *Main = F.Ctx->findFunction("main");
  const auto *D = cast<DoStmt>(findStmt(Main->body(), Stmt::Kind::Do));
  const auto *Ret =
      cast<ReturnStmt>(findStmt(Main->body(), Stmt::Kind::Return));
  CFG G = CFG::build(*Main);

  unsigned Pre = blockOfDecl(G, "n");
  unsigned Body = blockOfExpr(G, firstBodyExpr(D->body()));
  unsigned Latch = blockOfExpr(G, D->cond());
  unsigned After = blockOfExpr(G, Ret->value());

  // The entry falls into the body, not the condition: a do-loop runs its
  // body once before the first test.
  EXPECT_TRUE(hasEdge(G, Pre, Body));
  EXPECT_FALSE(hasEdge(G, Pre, Latch));
  EXPECT_TRUE(hasEdge(G, Body, Latch));
  EXPECT_TRUE(hasEdge(G, Latch, Body)) << "back edge missing";
  EXPECT_TRUE(hasEdge(G, Latch, After));
  // And the body is therefore on every terminating path.
  std::vector<uint8_t> MustExec = mustExecuteBlocks(G);
  EXPECT_TRUE(MustExec[Body]);
  EXPECT_TRUE(MustExec[Latch]);
}

TEST(CFGStructureTest, ForLoopInitHeaderBodyLatch) {
  Fixture F = analyze("int main(void) {\n"
                      "  int acc = 0;\n"
                      "  for (int i = 0; i < 4; i = i + 1) {\n"
                      "    acc = acc + i;\n"
                      "  }\n"
                      "  return acc;\n"
                      "}\n");
  const FunctionDecl *Main = F.Ctx->findFunction("main");
  const auto *For = cast<ForStmt>(findStmt(Main->body(), Stmt::Kind::For));
  const auto *Ret =
      cast<ReturnStmt>(findStmt(Main->body(), Stmt::Kind::Return));
  CFG G = CFG::build(*Main);

  // The init runs once, in the block preceding the header.
  unsigned Init = blockOfDecl(G, "i");
  EXPECT_EQ(Init, blockOfDecl(G, "acc"));
  unsigned Header = blockOfExpr(G, For->cond());
  unsigned Body = blockOfExpr(G, firstBodyExpr(For->body()));
  unsigned Latch = blockOfExpr(G, For->step());
  unsigned After = blockOfExpr(G, Ret->value());

  EXPECT_TRUE(hasEdge(G, Init, Header));
  EXPECT_TRUE(hasEdge(G, Header, Body));
  EXPECT_TRUE(hasEdge(G, Header, After));
  EXPECT_TRUE(hasEdge(G, Body, Latch));
  EXPECT_TRUE(hasEdge(G, Latch, Header)) << "back edge missing";
  EXPECT_FALSE(hasEdge(G, Body, Header))
      << "the step must run between body and re-test";
}

TEST(CFGStructureTest, NestedLoopInsideIfKeepsBothLevels) {
  Fixture F = analyze("int main(void) {\n"
                      "  int c = 1;\n"
                      "  int n = 2;\n"
                      "  if (c > 0) {\n"
                      "    while (n > 0) {\n"
                      "      n = n - 1;\n"
                      "    }\n"
                      "  }\n"
                      "  return n;\n"
                      "}\n");
  const FunctionDecl *Main = F.Ctx->findFunction("main");
  const auto *If = cast<IfStmt>(findStmt(Main->body(), Stmt::Kind::If));
  const auto *W = cast<WhileStmt>(findStmt(Main->body(), Stmt::Kind::While));
  const auto *Ret =
      cast<ReturnStmt>(findStmt(Main->body(), Stmt::Kind::Return));
  CFG G = CFG::build(*Main);

  unsigned Cond = blockOfExpr(G, If->cond());
  unsigned Header = blockOfExpr(G, W->cond());
  unsigned After = blockOfExpr(G, Ret->value());

  // The inner loop header sits behind the then-edge; the else-path goes
  // straight to the join.
  EXPECT_TRUE(hasEdge(G, Cond, After));
  EXPECT_FALSE(hasEdge(G, Cond, Header));
  std::vector<uint8_t> MustExec = mustExecuteBlocks(G);
  EXPECT_FALSE(MustExec[Header]) << "a branch-guarded loop is not must-exec";
  EXPECT_TRUE(MustExec[Cond]);
  EXPECT_TRUE(MustExec[After]);
}

TEST(CFGStructureTest, BackwardGotoFormsLoop) {
  Fixture F = analyze("int main(void) {\n"
                      "  int d = 0;\n"
                      "  int r = 1;\n"
                      "top:\n"
                      "  if (d > 0) {\n"
                      "    return r;\n"
                      "  }\n"
                      "  d = 1;\n"
                      "  goto top;\n"
                      "}\n");
  const FunctionDecl *Main = F.Ctx->findFunction("main");
  const auto *If = cast<IfStmt>(findStmt(Main->body(), Stmt::Kind::If));
  const auto *Ret =
      cast<ReturnStmt>(findStmt(Main->body(), Stmt::Kind::Return));
  CFG G = CFG::build(*Main);

  unsigned Label = blockOfExpr(G, If->cond());
  unsigned RetBlock = blockOfExpr(G, Ret->value());
  EXPECT_NE(Label, blockOfDecl(G, "d")) << "the label starts a new block";

  // The label block has two reachable predecessors: the fall-in from the
  // declarations and the backward goto.
  std::vector<uint8_t> Reach = G.reachableFromEntry();
  unsigned ReachablePreds = 0;
  for (unsigned P : G.block(Label).Preds)
    if (Reach[P])
      ++ReachablePreds;
  EXPECT_EQ(ReachablePreds, 2u);
  EXPECT_TRUE(hasEdge(G, Label, RetBlock));

  // The exit is reached only through the return: the label and return
  // blocks are on every terminating path.
  std::vector<uint8_t> MustExec = mustExecuteBlocks(G);
  EXPECT_TRUE(Reach[CFG::ExitBlock]);
  EXPECT_TRUE(MustExec[Label]);
  EXPECT_TRUE(MustExec[RetBlock]);
}

//===----------------------------------------------------------------------===//
// Unreachable code
//===----------------------------------------------------------------------===//

TEST(CFGStructureTest, CodeAfterReturnIsUnreachable) {
  Fixture F = analyze("int main(void) {\n"
                      "  int x = 1;\n"
                      "  return x;\n"
                      "  x = 2;\n"
                      "  return x;\n"
                      "}\n");
  const FunctionDecl *Main = F.Ctx->findFunction("main");
  CFG G = CFG::build(*Main);
  std::vector<uint8_t> Reach = G.reachableFromEntry();

  // The dead tail (`x = 2; return x;`) parses and gets blocks, but no edge
  // from the reachable region leads into them.
  const auto *Dead = cast<CompoundStmt>(Main->body())->body()[2];
  unsigned DeadBlock = blockOfExpr(G, cast<ExprStmt>(Dead)->expr());
  EXPECT_FALSE(Reach[DeadBlock]);
  EXPECT_TRUE(Reach[CFG::ExitBlock]);

  // Reverse post-order enumerates only the reachable region, entry first.
  std::vector<unsigned> RPO = G.reversePostOrder();
  EXPECT_EQ(std::count(RPO.begin(), RPO.end(), DeadBlock), 0);
  for (unsigned B : RPO)
    EXPECT_TRUE(Reach[B]);
  ASSERT_FALSE(RPO.empty());
  EXPECT_EQ(RPO.front(), CFG::EntryBlock);
}

TEST(CFGStructureTest, ForeverLoopLeavesExitUnreachable) {
  Fixture F = analyze("int main(void) {\n"
                      "  int x = 0;\n"
                      "  for (;;) {\n"
                      "    x = x + 1;\n"
                      "  }\n"
                      "  return x;\n"
                      "}\n");
  const FunctionDecl *Main = F.Ctx->findFunction("main");
  CFG G = CFG::build(*Main);
  std::vector<uint8_t> Reach = G.reachableFromEntry();
  EXPECT_FALSE(Reach[CFG::ExitBlock])
      << "for(;;) without break cannot reach the exit";
  // Must-execute is vacuously all-ones: no execution terminates, so
  // layer-2 facts drawn here can never reject an accepted variant.
  std::vector<uint8_t> MustExec = mustExecuteBlocks(G);
  EXPECT_TRUE(std::all_of(MustExec.begin(), MustExec.end(),
                          [](uint8_t B) { return B == 1; }));
}

TEST(CFGStructureTest, BreakRestoresExitReachability) {
  Fixture F = analyze("int main(void) {\n"
                      "  int x = 0;\n"
                      "  for (;;) {\n"
                      "    x = x + 1;\n"
                      "    if (x > 3) {\n"
                      "      break;\n"
                      "    }\n"
                      "  }\n"
                      "  return x;\n"
                      "}\n");
  const FunctionDecl *Main = F.Ctx->findFunction("main");
  const auto *Ret =
      cast<ReturnStmt>(findStmt(Main->body(), Stmt::Kind::Return));
  CFG G = CFG::build(*Main);
  std::vector<uint8_t> Reach = G.reachableFromEntry();
  EXPECT_TRUE(Reach[CFG::ExitBlock]);
  // The post-loop block is reachable only through the break, and it is on
  // every terminating path.
  unsigned After = blockOfExpr(G, Ret->value());
  EXPECT_TRUE(Reach[After]);
  EXPECT_TRUE(mustExecuteBlocks(G)[After]);
}

//===----------------------------------------------------------------------===//
// Dataflow fixpoint convergence
//===----------------------------------------------------------------------===//

/// The traversed-blocks client (same lattice mustExecuteBlocks uses),
/// instantiated directly so the engine's transfer count is observable.
struct TraceClient {
  const CFG &G;
  using State = std::vector<uint8_t>;
  State boundary() const {
    State S(G.size(), 0);
    S[CFG::EntryBlock] = 1;
    return S;
  }
  State top() const { return State(G.size(), 1); }
  void meet(State &Into, const State &From) const {
    for (size_t I = 0; I < Into.size(); ++I)
      Into[I] = Into[I] && From[I];
  }
  void transfer(unsigned Block, State &S) const { S[Block] = 1; }
};

TEST(DataflowTest, FixpointConvergesOnBackEdgeLoop) {
  Fixture F = analyze("int main(void) {\n"
                      "  int n = 5;\n"
                      "  int acc = 0;\n"
                      "  while (n > 0) {\n"
                      "    acc = acc + n;\n"
                      "    n = n - 1;\n"
                      "  }\n"
                      "  return acc;\n"
                      "}\n");
  const FunctionDecl *Main = F.Ctx->findFunction("main");
  CFG G = CFG::build(*Main);
  TraceClient C{G};
  DataflowResult<std::vector<uint8_t>> R = runForwardDataflow(G, C);

  // The fixpoint must actually be a fixpoint: re-running transfer over any
  // block's In reproduces its Out.
  for (unsigned B : G.reversePostOrder()) {
    std::vector<uint8_t> S = R.In[B];
    C.transfer(B, S);
    EXPECT_EQ(S, R.Out[B]) << "block " << B << " not at fixpoint";
  }

  // Convergence bound: with RPO seeding, the single back edge costs at
  // most one extra sweep, so the transfer count stays under three passes
  // over the reachable region even though the graph is cyclic.
  unsigned Reachable = 0;
  for (uint8_t X : G.reachableFromEntry())
    Reachable += X;
  EXPECT_LE(R.TransfersRun, 3 * Reachable);
  EXPECT_GE(R.TransfersRun, Reachable) << "every reachable block transfers";

  // And the solution is the expected one: header and after-loop are on
  // every entry-to-exit path, the loop body is not.
  const auto *W = cast<WhileStmt>(findStmt(Main->body(), Stmt::Kind::While));
  const auto *Ret =
      cast<ReturnStmt>(findStmt(Main->body(), Stmt::Kind::Return));
  const std::vector<uint8_t> &MustExec = R.In[CFG::ExitBlock];
  EXPECT_TRUE(MustExec[blockOfExpr(G, W->cond())]);
  EXPECT_TRUE(MustExec[blockOfExpr(G, Ret->value())]);
  EXPECT_FALSE(MustExec[blockOfExpr(G, firstBodyExpr(W->body()))]);
}

//===----------------------------------------------------------------------===//
// Call summaries
//===----------------------------------------------------------------------===//

TEST(CallSummaryTest, MustCalledSeesUnconditionalNotBranchGuardedCalls) {
  Fixture F = analyze("int f(int a) { return a + 1; }\n"
                      "int g(int a) { return a + 2; }\n"
                      "int main(void) {\n"
                      "  int x = 1;\n"
                      "  x = f(x);\n"
                      "  if (x > 5) {\n"
                      "    x = g(x);\n"
                      "  }\n"
                      "  return x;\n"
                      "}\n");
  auto CFGs = buildAllFunctionCFGs(*F.Ctx);
  std::set<const FunctionDecl *> MustCalled =
      mustCalledFunctions(*F.Ctx, CFGs);
  EXPECT_EQ(MustCalled.count(F.Ctx->findFunction("main")), 1u);
  EXPECT_EQ(MustCalled.count(F.Ctx->findFunction("f")), 1u);
  EXPECT_EQ(MustCalled.count(F.Ctx->findFunction("g")), 0u)
      << "a branch-guarded call is not guaranteed to run";
}

TEST(CallSummaryTest, MustCalledIsTransitive) {
  Fixture F = analyze("int leaf(int a) { return a * 2; }\n"
                      "int mid(int a) { return leaf(a) + 1; }\n"
                      "int main(void) {\n"
                      "  int x = 3;\n"
                      "  x = mid(x);\n"
                      "  return x;\n"
                      "}\n");
  auto CFGs = buildAllFunctionCFGs(*F.Ctx);
  std::set<const FunctionDecl *> MustCalled =
      mustCalledFunctions(*F.Ctx, CFGs);
  EXPECT_EQ(MustCalled.count(F.Ctx->findFunction("leaf")), 1u)
      << "must-calledness composes through must-called callers";
}

TEST(CallSummaryTest, ShortCircuitCallIsNotDefinite) {
  Fixture F = analyze("int f(int a) { return a + 1; }\n"
                      "int main(void) {\n"
                      "  int x = 0;\n"
                      "  x = x > 3 && f(x) > 0;\n"
                      "  return x;\n"
                      "}\n");
  auto CFGs = buildAllFunctionCFGs(*F.Ctx);
  std::set<const FunctionDecl *> MustCalled =
      mustCalledFunctions(*F.Ctx, CFGs);
  EXPECT_EQ(MustCalled.count(F.Ctx->findFunction("f")), 0u)
      << "a call on a short-circuit RHS may never run";
}

//===----------------------------------------------------------------------===//
// Def-before-use facts over loops and helpers
//===----------------------------------------------------------------------===//

/// Runs extraction + validity analysis and \returns (Units, Constraints).
std::pair<std::vector<SkeletonUnit>, std::vector<ValidityConstraints>>
extractAndAnalyze(const Fixture &F) {
  SkeletonExtractor Extractor(*F.Ctx, *F.Analysis);
  std::vector<SkeletonUnit> Units = Extractor.extract();
  std::vector<ValidityConstraints> Cons =
      analyzeValidity(*F.Ctx, *F.Analysis, Units);
  return {std::move(Units), std::move(Cons)};
}

/// \returns the (unit, constraints) pair covering function \p Fn.
std::pair<const SkeletonUnit *, const ValidityConstraints *>
unitFor(const std::vector<SkeletonUnit> &Units,
        const std::vector<ValidityConstraints> &Cons,
        const FunctionDecl *Fn) {
  for (size_t I = 0; I < Units.size(); ++I)
    if (Units[I].Fn == Fn)
      return {&Units[I], &Cons[I]};
  ADD_FAILURE() << "no unit covers the requested function";
  return {nullptr, nullptr};
}

/// \returns the hole index of \p Site in \p Unit.
unsigned holeOf(const SkeletonUnit &Unit, const DeclRefExpr *Site) {
  for (unsigned H = 0; H < Unit.HoleSites.size(); ++H)
    if (Unit.HoleSites[H] == Site)
      return H;
  ADD_FAILURE() << "site is not a hole of the unit";
  return ~0u;
}

/// \returns the skeleton VarId of the variable named \p Name in \p Unit.
VarId varOf(const SkeletonUnit &Unit, const std::string &Name) {
  for (VarId V = 0; V < Unit.AstVars.size(); ++V)
    if (Unit.AstVars[V]->name() == Name)
      return V;
  ADD_FAILURE() << "no skeleton variable named " << Name;
  return ~0u;
}

TEST(ValidityDataflowTest, DoBodyReadForbidsUninitializedLocal) {
  // The do-body executes on every terminating run -- a fact the old
  // straight-line-prefix walker could not use (it stopped at the first
  // control-flow statement). The loop is counted through an array element,
  // so no hole before or inside the loop can possibly store to the scalar
  // z: retargeting the body's read of `a` onto z reads an indeterminate
  // value on the very first iteration, and (hole, z) must be forbidden.
  Fixture F = analyze("int main(void) {\n"
                      "  int z;\n"
                      "  int arr[2] = {2, 0};\n"
                      "  int a = 0;\n"
                      "  do {\n"
                      "    a;\n"
                      "    arr[0] = arr[0] - 1;\n"
                      "  } while (arr[0] > 0);\n"
                      "  return a;\n"
                      "}\n");
  auto [Units, Cons] = extractAndAnalyze(F);
  const FunctionDecl *Main = F.Ctx->findFunction("main");
  auto [Unit, C] = unitFor(Units, Cons, Main);
  ASSERT_NE(Unit, nullptr);

  const auto *Do = cast<DoStmt>(findStmt(Main->body(), Stmt::Kind::Do));
  const auto *Read = cast<DeclRefExpr>(firstBodyExpr(Do->body()));
  unsigned H = holeOf(*Unit, Read);
  EXPECT_TRUE(C->forbids(H, varOf(*Unit, "z")));
}

TEST(ValidityDataflowTest, PostLoopReadForbidsUntouchedLocal) {
  // A definite read after a loop whose holes are all array-typed: no path
  // -- zero iterations or many -- can have stored to the scalar z, so the
  // post-loop read must not be z. The old walker gave up at the while.
  Fixture F = analyze("int main(void) {\n"
                      "  int z;\n"
                      "  int arr[2] = {2, 0};\n"
                      "  int a = 1;\n"
                      "  while (arr[0] > 0) {\n"
                      "    arr[0] = arr[0] - 1;\n"
                      "  }\n"
                      "  a = a + 2;\n"
                      "  return a;\n"
                      "}\n");
  auto [Units, Cons] = extractAndAnalyze(F);
  const FunctionDecl *Main = F.Ctx->findFunction("main");
  auto [Unit, C] = unitFor(Units, Cons, Main);
  ASSERT_NE(Unit, nullptr);

  // `a = a + 2;` is the statement after the while.
  const auto *Body = cast<CompoundStmt>(Main->body());
  const auto *Asg = cast<BinaryExpr>(
      cast<ExprStmt>(Body->body()[Body->body().size() - 2])->expr());
  const auto *Read = cast<DeclRefExpr>(cast<BinaryExpr>(Asg->rhs())->lhs());
  unsigned H = holeOf(*Unit, Read);
  EXPECT_TRUE(C->forbids(H, varOf(*Unit, "z")));
}

TEST(ValidityDataflowTest, LoopBodyStoreBlocksPostLoopForbid) {
  // Same shape with a scalar loop counter: the counter update `n = n - 1`
  // is a write hole whose candidates include z, so some variant stores z
  // inside the loop and reads it legally afterwards. The back edge folds
  // that possible store into the header and the post-loop read must NOT
  // forbid z.
  Fixture F = analyze("int main(void) {\n"
                      "  int z;\n"
                      "  int a = 1;\n"
                      "  int n = 2;\n"
                      "  while (n > 0) {\n"
                      "    n = n - 1;\n"
                      "  }\n"
                      "  a = a + 2;\n"
                      "  return a;\n"
                      "}\n");
  auto [Units, Cons] = extractAndAnalyze(F);
  const FunctionDecl *Main = F.Ctx->findFunction("main");
  auto [Unit, C] = unitFor(Units, Cons, Main);
  ASSERT_NE(Unit, nullptr);

  const auto *Body = cast<CompoundStmt>(Main->body());
  const auto *Asg = cast<BinaryExpr>(
      cast<ExprStmt>(Body->body()[Body->body().size() - 2])->expr());
  const auto *Read = cast<DeclRefExpr>(cast<BinaryExpr>(Asg->rhs())->lhs());
  unsigned H = holeOf(*Unit, Read);
  EXPECT_FALSE(C->forbids(H, varOf(*Unit, "z")))
      << "a possible store inside the loop must clear the fact";
}

TEST(ValidityDataflowTest, MustCalledHelperUnitIsPruned) {
  // The helper is called unconditionally from main, so its unit's definite
  // reads are guaranteed to execute program-wide and may forbid the
  // helper's own uninitialized local.
  Fixture F = analyze("int helper(int q) {\n"
                      "  int z;\n"
                      "  int h = 1;\n"
                      "  h = h + q;\n"
                      "  return h;\n"
                      "}\n"
                      "int main(void) {\n"
                      "  int x = 2;\n"
                      "  x = helper(x);\n"
                      "  return x;\n"
                      "}\n");
  auto [Units, Cons] = extractAndAnalyze(F);
  const FunctionDecl *Helper = F.Ctx->findFunction("helper");
  auto [Unit, C] = unitFor(Units, Cons, Helper);
  ASSERT_NE(Unit, nullptr);

  const auto *Body = cast<CompoundStmt>(Helper->body());
  const auto *Asg = cast<BinaryExpr>(cast<ExprStmt>(Body->body()[2])->expr());
  const auto *Read = cast<DeclRefExpr>(cast<BinaryExpr>(Asg->rhs())->lhs());
  unsigned H = holeOf(*Unit, Read);
  EXPECT_TRUE(C->forbids(H, varOf(*Unit, "z")));
}

TEST(ValidityDataflowTest, BranchGuardedHelperIsNotPruned) {
  // The same helper called only under a branch: some variants never run
  // it, so no layer-2 fact about its body may be used.
  Fixture F = analyze("int helper(int q) {\n"
                      "  int z;\n"
                      "  int h = 1;\n"
                      "  h = h + q;\n"
                      "  return h;\n"
                      "}\n"
                      "int main(void) {\n"
                      "  int x = 2;\n"
                      "  if (x > 9) {\n"
                      "    x = helper(x);\n"
                      "  }\n"
                      "  return x;\n"
                      "}\n");
  auto [Units, Cons] = extractAndAnalyze(F);
  const FunctionDecl *Helper = F.Ctx->findFunction("helper");
  auto [Unit, C] = unitFor(Units, Cons, Helper);
  ASSERT_NE(Unit, nullptr);

  const auto *Body = cast<CompoundStmt>(Helper->body());
  const auto *Asg = cast<BinaryExpr>(cast<ExprStmt>(Body->body()[2])->expr());
  const auto *Read = cast<DeclRefExpr>(cast<BinaryExpr>(Asg->rhs())->lhs());
  unsigned H = holeOf(*Unit, Read);
  EXPECT_FALSE(C->forbids(H, varOf(*Unit, "z")))
      << "an only-conditionally-called helper may never execute";
}

TEST(ValidityDataflowTest, AddressTakenStaysPossiblyStored) {
  // The existing escape over-approximation must survive the rewrite: the
  // hole inside `&a` can name z, so from that event on every later read
  // may legally see z initialized through the pointer.
  Fixture F = analyze("int main(void) {\n"
                      "  int z;\n"
                      "  int a = 1;\n"
                      "  int *p = &a;\n"
                      "  *p = 5;\n"
                      "  a = a + 1;\n"
                      "  return a;\n"
                      "}\n");
  auto [Units, Cons] = extractAndAnalyze(F);
  const FunctionDecl *Main = F.Ctx->findFunction("main");
  auto [Unit, C] = unitFor(Units, Cons, Main);
  ASSERT_NE(Unit, nullptr);

  const auto *Body = cast<CompoundStmt>(Main->body());
  const auto *Asg = cast<BinaryExpr>(
      cast<ExprStmt>(Body->body()[Body->body().size() - 2])->expr());
  const auto *Read = cast<DeclRefExpr>(cast<BinaryExpr>(Asg->rhs())->lhs());
  unsigned H = holeOf(*Unit, Read);
  EXPECT_FALSE(C->forbids(H, varOf(*Unit, "z")))
      << "address-taking must keep z possibly-stored forever after";
}

TEST(ValidityDataflowTest, ReadBeyondIfJoinIsPruned) {
  // Facts survive an if-join when neither branch can store: the old
  // analysis stopped at the `if`, the CFG layer meets the two branch
  // states and keeps pruning at the join.
  Fixture F = analyze("int main(void) {\n"
                      "  int z;\n"
                      "  int a = 1;\n"
                      "  if (a > 2) {\n"
                      "    a;\n"
                      "  }\n"
                      "  a = a + 2;\n"
                      "  return a;\n"
                      "}\n");
  auto [Units, Cons] = extractAndAnalyze(F);
  const FunctionDecl *Main = F.Ctx->findFunction("main");
  auto [Unit, C] = unitFor(Units, Cons, Main);
  ASSERT_NE(Unit, nullptr);

  const auto *Body = cast<CompoundStmt>(Main->body());
  const auto *Asg = cast<BinaryExpr>(
      cast<ExprStmt>(Body->body()[Body->body().size() - 2])->expr());
  const auto *Read = cast<DeclRefExpr>(cast<BinaryExpr>(Asg->rhs())->lhs());
  unsigned H = holeOf(*Unit, Read);
  EXPECT_TRUE(C->forbids(H, varOf(*Unit, "z")));

  // But a read inside the branch itself is not on every path and must not
  // forbid anything -- only must-execute blocks report.
  const auto *If = cast<IfStmt>(findStmt(Main->body(), Stmt::Kind::If));
  const auto *BranchRead = cast<DeclRefExpr>(firstBodyExpr(If->thenStmt()));
  EXPECT_FALSE(C->forbids(holeOf(*Unit, BranchRead), varOf(*Unit, "z")));
}

//===----------------------------------------------------------------------===//
// Loop-corpus generation sanity (the must-not-degenerate property CI pins
// via the bench JSON; this is the unit-level counterpart)
//===----------------------------------------------------------------------===//

TEST(LoopCorpusTest, KnobsProduceLoopsAndParseCleanly) {
  CorpusOptions Opts;
  Opts.UninitLocalProb = 0.6;
  Opts.BoundedLoopProb = 0.8;
  Opts.RichHelperProb = 0.8;
  std::vector<std::string> Programs = generateCorpus(9100, 30, Opts);

  unsigned WithLoop = 0, WithDo = 0, WithHelper = 0;
  for (const std::string &P : Programs) {
    Fixture F = analyze(P); // Every seed must parse and pass Sema.
    if (P.find("while (") != std::string::npos)
      ++WithLoop;
    if (P.find("do {") != std::string::npos)
      ++WithDo;
    if (P.find("helper") != std::string::npos)
      ++WithHelper;
  }
  // The loop knob at 0.8 must not degenerate to loop-free programs.
  EXPECT_GE(WithLoop, 15u);
  EXPECT_GE(WithDo, 3u) << "the bounded-loop knob is the only do-loop source";
  EXPECT_GE(WithHelper, 8u);
}

TEST(LoopCorpusTest, GeneratorIsDeterministic) {
  CorpusOptions Opts;
  Opts.UninitLocalProb = 0.6;
  Opts.BoundedLoopProb = 0.8;
  Opts.RichHelperProb = 0.8;
  for (uint64_t Seed = 9100; Seed < 9110; ++Seed)
    EXPECT_EQ(generateCorpusProgram(Seed, Opts),
              generateCorpusProgram(Seed, Opts));
}

} // namespace
