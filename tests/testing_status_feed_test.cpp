//===- tests/testing_status_feed_test.cpp - status feed hardening ---------===//
//
// Regression tests for two CampaignStatusFeed bugs the fleet layer leans on:
//
//  1. writeNow() used to discard atomicWriteFile failures (the Err string
//     was dead) while serializeLocked pre-counted the in-flight write as
//     Writes + 1 -- so after one failed write the on-disk "writes" counter
//     lied on the next success, and nothing anywhere recorded the failure.
//
//  2. The windowed variants/sec divided over a zero-millisecond interval
//     when two writes landed in the same nowMs() tick (EveryMs=0 feeds do
//     this constantly); the `if (WinMs > 0)` guard silently reported 0.0
//     for a window that actually enumerated variants.
//
//===----------------------------------------------------------------------===//

#include "testing/CampaignStatus.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

using namespace spe;

namespace {

std::string readFile(const std::string &Path) {
  std::string Text;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Text;
  char Buf[1 << 12];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, Got);
  std::fclose(F);
  return Text;
}

/// Pulls the numeric value of \p Key out of a flat JSON document.
std::string jsonValue(const std::string &Doc, const std::string &Key) {
  std::string Needle = "\"" + Key + "\":";
  size_t At = Doc.find(Needle);
  if (At == std::string::npos)
    return "";
  At += Needle.size();
  size_t End = At;
  while (End < Doc.size() && Doc[End] != ',' && Doc[End] != '}')
    ++End;
  return Doc.substr(At, End - At);
}

struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/spe-status-test-XXXXXX";
    Path = mkdtemp(Buf);
  }
  ~TempDir() {
    std::remove((Path + "/status.json").c_str());
    std::remove((Path + "/status.json.tmp").c_str());
    ::rmdir(Path.c_str());
  }
};

//===----------------------------------------------------------------------===//
// Bug 1: failed writes must be surfaced and never counted
//===----------------------------------------------------------------------===//

TEST(StatusFeedWriteFailures, UnwritablePathIsCountedNotSwallowed) {
  TempDir Tmp;
  CampaignStatusFeed::Options O;
  // The parent directory does not exist, so the .tmp open fails.
  O.Path = Tmp.Path + "/no-such-dir/status.json";
  O.EveryMs = 0;
  CampaignStatusFeed Feed(O);

  Feed.writeNow();
  Feed.writeNow();
  EXPECT_EQ(Feed.writes(), 0u);
  EXPECT_EQ(Feed.writeFailures(), 2u);
}

TEST(StatusFeedWriteFailures, DocCountsOnlyCommittedWrites) {
  TempDir Tmp;
  std::string MissingDir = Tmp.Path + "/late-dir";
  CampaignStatusFeed::Options O;
  O.Path = MissingDir + "/status.json";
  O.EveryMs = 0;
  CampaignStatusFeed Feed(O);

  // First write fails (directory missing)...
  Feed.writeNow();
  ASSERT_EQ(Feed.writes(), 0u);
  ASSERT_EQ(Feed.writeFailures(), 1u);

  // ...then the directory appears and the next write commits. The document
  // must report the committed writes BEFORE it (0) and the failure tally
  // (1). The pre-fix code emitted "writes":1 here (the Writes+1 pre-count)
  // and had no write_failures field at all.
  ASSERT_EQ(::mkdir(MissingDir.c_str(), 0755), 0);
  Feed.writeNow();
  EXPECT_EQ(Feed.writes(), 1u);

  std::string Doc = readFile(O.Path);
  ASSERT_FALSE(Doc.empty());
  EXPECT_EQ(jsonValue(Doc, "writes"), "0");
  EXPECT_EQ(jsonValue(Doc, "write_failures"), "1");

  // A further committed write advances the on-disk counter by exactly one.
  Feed.writeNow();
  Doc = readFile(O.Path);
  EXPECT_EQ(jsonValue(Doc, "writes"), "1");
  EXPECT_EQ(jsonValue(Doc, "write_failures"), "1");

  std::remove(O.Path.c_str());
  ::rmdir(MissingDir.c_str());
}

//===----------------------------------------------------------------------===//
// Bug 2: same-tick writes must not zero the windowed rate
//===----------------------------------------------------------------------===//

uint64_t FrozenNow = 1000;
uint64_t frozenClock() { return FrozenNow; }

TEST(StatusFeedWindowMath, SameTickWriteKeepsNonZeroRate) {
  TempDir Tmp;
  CampaignStatusFeed::Options O;
  O.Path = Tmp.Path + "/status.json";
  O.EveryMs = 0;
  CampaignStatusFeed Feed(O);
  FrozenNow = 1000;
  Feed.setClockForTest(&frozenClock);

  StatusCounters Base;
  Feed.beginCampaign(1, 0, Base); // First write at t=1000 (window = start).
  Feed.beginSeed(1);

  // 50 variants land and a second write happens in the SAME millisecond
  // tick: the window is 0 ms wide but saw 50 variants. Pre-fix this
  // serialized "variants_per_sec":0.000; the clamped math reports the
  // 50 variants over a 1 ms floor instead.
  for (int I = 0; I < 50; ++I)
    Feed.noteVariant();
  Feed.writeNow();

  std::string Doc = readFile(O.Path);
  ASSERT_FALSE(Doc.empty());
  EXPECT_EQ(jsonValue(Doc, "variants"), "50");
  EXPECT_EQ(jsonValue(Doc, "variants_per_sec"), "50000.000");
  // Total rate has the same zero-uptime hazard on the clamped path.
  EXPECT_EQ(jsonValue(Doc, "variants_per_sec_total"), "50000.000");
}

TEST(StatusFeedWindowMath, AdvancingClockStillComputesRealRates) {
  TempDir Tmp;
  CampaignStatusFeed::Options O;
  O.Path = Tmp.Path + "/status.json";
  O.EveryMs = 0;
  CampaignStatusFeed Feed(O);
  FrozenNow = 5000;
  Feed.setClockForTest(&frozenClock);

  StatusCounters Base;
  Feed.beginCampaign(1, 0, Base); // Window anchor: t=5000, 0 variants.

  for (int I = 0; I < 200; ++I)
    Feed.noteVariant();
  FrozenNow = 5500; // 200 variants over a real 500 ms window.
  Feed.writeNow();

  std::string Doc = readFile(O.Path);
  EXPECT_EQ(jsonValue(Doc, "variants_per_sec"), "400.000");
  EXPECT_EQ(jsonValue(Doc, "uptime_ms"), "500");
}

} // namespace
