//===- tests/compiler_differential_property_test.cpp ---------------------===//
//
// The load-bearing property of the whole harness: with injected bugs
// disabled, MiniCC at every optimization level behaves exactly like the
// reference interpreter on every UB-free program. Random programs come from
// the same generator the benchmarks use, so this doubles as a self-test of
// the corpus (it must produce parseable, analyzable, mostly UB-free code).
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "interp/Interpreter.h"
#include "lang/Parser.h"
#include "sema/Sema.h"
#include "testing/Corpus.h"

#include "gtest/gtest.h"

using namespace spe;

class DifferentialPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialPropertyTest, AllOptLevelsMatchOracle) {
  CorpusOptions Opts;
  std::string Source = generateCorpusProgram(GetParam(), Opts);

  ASTContext Ctx;
  DiagnosticEngine Diags;
  ASSERT_TRUE(Parser::parse(Source, Ctx, Diags))
      << Diags.toString() << "\n"
      << Source;
  Sema Analysis(Ctx, Diags);
  ASSERT_TRUE(Analysis.run()) << Diags.toString() << "\n" << Source;

  ExecResult Ref = interpret(Ctx);
  if (Ref.Status != ExecStatus::Ok)
    GTEST_SKIP() << "oracle excluded: " << Ref.Message;

  for (unsigned Opt = 0; Opt <= 3; ++Opt) {
    ASTContext Ctx2;
    DiagnosticEngine Diags2;
    ASSERT_TRUE(Parser::parse(Source, Ctx2, Diags2));
    Sema Analysis2(Ctx2, Diags2);
    ASSERT_TRUE(Analysis2.run());
    CompilerConfig Config;
    Config.OptLevel = Opt;
    MiniCompiler CC(Config, nullptr, /*InjectBugs=*/false);
    CompileResult R = CC.compile(Ctx2);
    ASSERT_TRUE(R.ok()) << R.Error << R.CrashSignature << "\n" << Source;
    VMResult V = executeModule(R.Module);
    ASSERT_EQ(V.Status, VMStatus::Ok)
        << "O" << Opt << ": " << V.Message << "\n"
        << Source;
    EXPECT_EQ(V.ExitCode, Ref.ExitCode) << "O" << Opt << "\n" << Source;
    EXPECT_EQ(V.Output, Ref.Output) << "O" << Opt << "\n" << Source;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCorpus, DifferentialPropertyTest,
                         ::testing::Range<uint64_t>(0, 150));
