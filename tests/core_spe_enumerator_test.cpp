//===- tests/core_spe_enumerator_test.cpp - SPE enumerator unit tests ----===//

#include "core/AlphaEquivalence.h"
#include "core/NaiveEnumerator.h"
#include "core/SpeEnumerator.h"

#include "gtest/gtest.h"

#include <set>

using namespace spe;

namespace {

AbstractSkeleton makeFlatSkeleton(unsigned NumVars, unsigned NumHoles) {
  AbstractSkeleton Sk;
  for (unsigned I = 0; I < NumVars; ++I)
    Sk.addVariable("v" + std::to_string(I), AbstractSkeleton::rootScope(), 0);
  for (unsigned I = 0; I < NumHoles; ++I)
    Sk.addHole(AbstractSkeleton::rootScope(), 0);
  return Sk;
}

} // namespace

TEST(SpeEnumeratorTest, ModeNames) {
  EXPECT_STREQ(speModeName(SpeMode::Exact), "exact");
  EXPECT_STREQ(speModeName(SpeMode::PaperFaithful), "paper-faithful");
}

TEST(SpeEnumeratorTest, NoHolesYieldsOneEmptyProgram) {
  AbstractSkeleton Sk = makeFlatSkeleton(3, 0);
  for (SpeMode Mode : {SpeMode::Exact, SpeMode::PaperFaithful}) {
    SpeEnumerator Spe(Sk, Mode);
    EXPECT_EQ(Spe.count().toUint64(), 1u);
    uint64_t Produced = Spe.enumerate([](const Assignment &A) {
      EXPECT_TRUE(A.empty());
      return true;
    });
    EXPECT_EQ(Produced, 1u);
  }
}

TEST(SpeEnumeratorTest, SingleVariableYieldsOneProgram) {
  AbstractSkeleton Sk = makeFlatSkeleton(1, 7);
  for (SpeMode Mode : {SpeMode::Exact, SpeMode::PaperFaithful})
    EXPECT_EQ(SpeEnumerator(Sk, Mode).count().toUint64(), 1u);
}

TEST(SpeEnumeratorTest, FlatSkeletonCountsAreStirlingSums) {
  // Without scopes, both modes must agree with sum_{i=1..k} {n,i} (Eq. 1).
  const uint64_t Expected[][3] = {
      // n, k, count
      {3, 2, 4},   {4, 2, 8},   {4, 3, 14},  {6, 2, 32},
      {6, 3, 122}, {5, 5, 52},  {7, 3, 365}, {8, 4, 2795},
  };
  for (const auto &Row : Expected) {
    AbstractSkeleton Sk = makeFlatSkeleton(static_cast<unsigned>(Row[1]),
                                           static_cast<unsigned>(Row[0]));
    EXPECT_EQ(SpeEnumerator(Sk, SpeMode::Exact).count().toUint64(), Row[2])
        << "n=" << Row[0] << " k=" << Row[1];
    EXPECT_EQ(SpeEnumerator(Sk, SpeMode::PaperFaithful).count().toUint64(),
              Row[2])
        << "n=" << Row[0] << " k=" << Row[1];
  }
}

TEST(SpeEnumeratorTest, EnumerationMatchesCount) {
  AbstractSkeleton Sk = makeFlatSkeleton(3, 6);
  for (SpeMode Mode : {SpeMode::Exact, SpeMode::PaperFaithful}) {
    SpeEnumerator Spe(Sk, Mode);
    uint64_t Produced =
        Spe.enumerate([](const Assignment &) { return true; });
    EXPECT_EQ(Produced, Spe.count().toUint64());
  }
}

TEST(SpeEnumeratorTest, EnumeratedVariantsArePairwiseNonEquivalent) {
  AbstractSkeleton Sk = makeFlatSkeleton(3, 6);
  AlphaCanonicalizer Canon(Sk);
  for (SpeMode Mode : {SpeMode::Exact, SpeMode::PaperFaithful}) {
    std::set<std::string> Keys;
    SpeEnumerator(Sk, Mode).enumerate([&](const Assignment &A) {
      EXPECT_TRUE(Keys.insert(Canon.canonicalKey(A)).second)
          << "alpha-equivalent duplicate in " << speModeName(Mode);
      return true;
    });
  }
}

TEST(SpeEnumeratorTest, EnumeratedVariantsAreCanonicalRepresentatives) {
  AbstractSkeleton Sk = makeFlatSkeleton(4, 5);
  AlphaCanonicalizer Canon(Sk);
  SpeEnumerator(Sk, SpeMode::Exact).enumerate([&](const Assignment &A) {
    EXPECT_EQ(Canon.canonicalRepresentative(A), A);
    return true;
  });
}

TEST(SpeEnumeratorTest, LimitAndCallbackStop) {
  AbstractSkeleton Sk = makeFlatSkeleton(4, 8);
  SpeEnumerator Spe(Sk, SpeMode::Exact);
  EXPECT_EQ(Spe.enumerate([](const Assignment &) { return true; }, 17), 17u);
  uint64_t Count = 0;
  Spe.enumerate([&](const Assignment &) { return ++Count < 9; });
  EXPECT_EQ(Count, 9u);
}

TEST(SpeEnumeratorTest, TypesEnumerateIndependently) {
  // Two int holes over {i,j} and one float hole over {x}: classes =
  // partitions(2 holes, 2 vars) * 1 = 2.
  AbstractSkeleton Sk;
  ScopeId Root = AbstractSkeleton::rootScope();
  Sk.addVariable("i", Root, 0);
  Sk.addVariable("j", Root, 0);
  Sk.addVariable("x", Root, 1);
  Sk.addHole(Root, 0);
  Sk.addHole(Root, 0);
  Sk.addHole(Root, 1);
  for (SpeMode Mode : {SpeMode::Exact, SpeMode::PaperFaithful}) {
    SpeEnumerator Spe(Sk, Mode);
    EXPECT_EQ(Spe.count().toUint64(), 2u);
    std::set<Assignment> Variants;
    Spe.enumerate([&](const Assignment &A) {
      Variants.insert(A);
      return true;
    });
    EXPECT_TRUE(Variants.count({0, 0, 2}));
    EXPECT_TRUE(Variants.count({0, 1, 2}));
  }
}

TEST(SpeEnumeratorTest, UnfillableHoleYieldsZero) {
  AbstractSkeleton Sk;
  Sk.addVariable("a", AbstractSkeleton::rootScope(), 0);
  Sk.addHole(AbstractSkeleton::rootScope(), 5);
  for (SpeMode Mode : {SpeMode::Exact, SpeMode::PaperFaithful}) {
    SpeEnumerator Spe(Sk, Mode);
    EXPECT_TRUE(Spe.count().isZero());
    EXPECT_EQ(Spe.enumerate([](const Assignment &) { return true; }), 0u);
  }
}

TEST(SpeEnumeratorTest, LocalOnlyVariablesWork) {
  // No globals at all: two local holes over local {c,d} -> 2 classes.
  AbstractSkeleton Sk;
  ScopeId Root = AbstractSkeleton::rootScope();
  ScopeId Local = Sk.addScope(Root);
  Sk.addVariable("c", Local, 0);
  Sk.addVariable("d", Local, 0);
  Sk.addHole(Local, 0);
  Sk.addHole(Local, 0);
  EXPECT_EQ(SpeEnumerator(Sk, SpeMode::Exact).count().toUint64(), 2u);
  // Paper-faithful: S'_f = 0 (no globals) and the promotion loop keeps at
  // least one hole local per scope; here with u=2, k in {0,1} but k=1 leads
  // to a promoted hole with no global block to join ({1,0} = 0), so only
  // k=0 contributes both partitions.
  EXPECT_EQ(SpeEnumerator(Sk, SpeMode::PaperFaithful).count().toUint64(), 2u);
}

TEST(SpeEnumeratorTest, DeepNestingExactMatchesBruteForce) {
  // Three-level nesting exercises the level-map machinery beyond the
  // paper's two-level model.
  AbstractSkeleton Sk;
  ScopeId Root = AbstractSkeleton::rootScope();
  ScopeId Mid = Sk.addScope(Root);
  ScopeId Leaf = Sk.addScope(Mid);
  Sk.addVariable("g", Root, 0);
  Sk.addVariable("m", Mid, 0);
  Sk.addVariable("l", Leaf, 0);
  Sk.addHole(Root, 0);
  Sk.addHole(Mid, 0);
  Sk.addHole(Leaf, 0);
  Sk.addHole(Leaf, 0);

  NaiveEnumerator Naive(Sk);
  AlphaCanonicalizer Canon(Sk);
  std::set<std::string> Keys;
  Naive.enumerate([&](const Assignment &A) {
    Keys.insert(Canon.canonicalKey(A));
    return true;
  });
  SpeEnumerator Exact(Sk, SpeMode::Exact);
  EXPECT_EQ(Exact.count().toUint64(), Keys.size());
  uint64_t Produced = Exact.enumerate([](const Assignment &) { return true; });
  EXPECT_EQ(Produced, Keys.size());
}

TEST(SpeEnumeratorTest, SiblingScopesAreIndependent) {
  // Two sibling blocks, each with one local var and one hole; one global.
  AbstractSkeleton Sk;
  ScopeId Root = AbstractSkeleton::rootScope();
  ScopeId S1 = Sk.addScope(Root);
  ScopeId S2 = Sk.addScope(Root);
  Sk.addVariable("g", Root, 0);
  Sk.addVariable("x", S1, 0);
  Sk.addVariable("y", S2, 0);
  Sk.addHole(S1, 0);
  Sk.addHole(S2, 0);
  // Each hole independently picks {g or its local}: naive 4. Classes: all
  // four assignments are pairwise non-equivalent (different scope usage).
  NaiveEnumerator Naive(Sk);
  EXPECT_EQ(Naive.count().toUint64(), 4u);
  AlphaCanonicalizer Canon(Sk);
  std::set<std::string> Keys;
  Naive.enumerate([&](const Assignment &A) {
    Keys.insert(Canon.canonicalKey(A));
    return true;
  });
  EXPECT_EQ(Keys.size(), 4u);
  EXPECT_EQ(SpeEnumerator(Sk, SpeMode::Exact).count().toUint64(), 4u);
}
