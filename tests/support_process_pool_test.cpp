//===- tests/support_process_pool_test.cpp - broker pool semantics -------===//
//
// The warm pre-forked broker pool under support/ProcessPool.h: result
// parity with a direct runProcess() call (the pool's whole contract),
// concurrent submits across brokers, job timeouts staying inside the
// broker (no respawn), broker death respawned with the in-flight job
// retried exactly once, and a wedged broker group-killed within the job's
// wall-clock budget plus slack. Pure /bin/sh jobs -- no compiler needed.
//
//===----------------------------------------------------------------------===//

#include "support/ProcessPool.h"
#include "support/ProcessRunner.h"

#include "gtest/gtest.h"

#include <chrono>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/types.h>

using namespace spe;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

TEST(ProcessPoolTest, ResultsMatchDirectRunProcess) {
  ProcessPool Pool(2);
  // Exit code plus both streams, byte for byte.
  ProcessResult R =
      Pool.run({"/bin/sh", "-c", "printf out; printf err >&2; exit 7"});
  ASSERT_EQ(R.St, ProcessResult::Status::Exited) << R.Error;
  EXPECT_EQ(R.ExitCode, 7);
  EXPECT_EQ(R.Stdout, "out");
  EXPECT_EQ(R.Stderr, "err");

  // Signal decoding travels through the result frame intact.
  R = Pool.run({"/bin/sh", "-c", "kill -SEGV $$"});
  ASSERT_EQ(R.St, ProcessResult::Status::Signaled) << R.Error;
  EXPECT_EQ(R.Signal, SIGSEGV);

  // StartFailed (exec errno discipline) is a status, not an exit code.
  R = Pool.run({"spe-no-such-binary-exists"});
  ASSERT_EQ(R.St, ProcessResult::Status::StartFailed);
  EXPECT_NE(R.Error.find("spe-no-such-binary-exists"), std::string::npos);

  // The output cap applies inside the broker exactly as it does directly.
  ProcessOptions O;
  O.MaxOutputBytes = 512;
  R = Pool.run({"/bin/sh", "-c",
                "i=0; while [ $i -lt 5000 ]; do echo aaaaaaaaaa; "
                "i=$((i+1)); done"},
               O);
  ASSERT_EQ(R.St, ProcessResult::Status::Exited) << R.Error;
  EXPECT_EQ(R.Stdout.size(), 512u);

  EXPECT_EQ(Pool.respawns(), 0u);
}

TEST(ProcessPoolTest, OverlappingSubmitsRunConcurrently) {
  // Two brokers, two 400ms sleeps submitted back to back: if they truly
  // overlap the pair finishes in well under 800ms.
  ProcessPool Pool(2);
  auto T0 = std::chrono::steady_clock::now();
  ProcessPool::JobId A = Pool.submit({"/bin/sh", "-c", "sleep 0.4; exit 11"});
  ProcessPool::JobId B = Pool.submit({"/bin/sh", "-c", "sleep 0.4; exit 22"});
  ProcessResult RA = Pool.wait(A);
  ProcessResult RB = Pool.wait(B);
  double Secs = secondsSince(T0);
  EXPECT_TRUE(RA.exitedWith(11)) << RA.Error;
  EXPECT_TRUE(RB.exitedWith(22)) << RB.Error;
  EXPECT_LT(Secs, 0.75) << "two 0.4s jobs on two brokers took " << Secs
                        << "s -- they did not overlap";

  // Lifetime stats: both jobs accounted, pool idle again, and the
  // cumulative run time reflects two ~400ms jobs even though they
  // overlapped on the wall clock.
  ProcessPool::Stats S = Pool.stats();
  EXPECT_EQ(S.JobsSubmitted, 2u);
  EXPECT_EQ(S.JobsCompleted, 2u);
  EXPECT_EQ(S.QueueDepth, 0u);
  EXPECT_EQ(S.BusyBrokers, 0u);
  EXPECT_GE(S.CumRunMs, 700u) << "per-job run time should sum, not overlap";
}

TEST(ProcessPoolTest, ManyJobsQueueAcrossFewBrokersFromManyThreads) {
  // More threads than brokers: submit() must block for a free broker and
  // every job must come back with its own (correct) result.
  ProcessPool Pool(2);
  const int N = 12;
  std::vector<std::thread> Threads;
  std::vector<ProcessResult> Results(N);
  for (int I = 0; I < N; ++I)
    Threads.emplace_back([&Pool, &Results, I] {
      Results[I] = Pool.run(
          {"/bin/sh", "-c", "exit " + std::to_string(40 + I)});
    });
  for (auto &T : Threads)
    T.join();
  for (int I = 0; I < N; ++I)
    EXPECT_TRUE(Results[I].exitedWith(40 + I))
        << "job " << I << ": " << Results[I].Error;
  EXPECT_EQ(Pool.respawns(), 0u);

  // 12 jobs over 2 brokers cannot all dispatch immediately: the FIFO
  // queue must have been exercised and fully drained by the joins.
  ProcessPool::Stats S = Pool.stats();
  EXPECT_EQ(S.JobsSubmitted, static_cast<uint64_t>(N));
  EXPECT_EQ(S.JobsCompleted, static_cast<uint64_t>(N));
  EXPECT_GE(S.QueueHighWater, 1u);
  EXPECT_EQ(S.QueueDepth, 0u);
  EXPECT_EQ(S.BusyBrokers, 0u);
  EXPECT_EQ(S.Respawns, 0u);
}

TEST(ProcessPoolTest, JobTimeoutIsHandledInsideTheBrokerWithoutRespawn) {
  // The job's own wall-clock kill happens inside the broker's runProcess;
  // the broker answers TimedOut and stays alive for the next job.
  ProcessPool Pool(1);
  ProcessOptions O;
  O.TimeoutMs = 250;
  ProcessResult R = Pool.run({"/bin/sh", "-c", "sleep 30"}, O);
  EXPECT_EQ(R.St, ProcessResult::Status::TimedOut);
  EXPECT_EQ(Pool.respawns(), 0u);

  // Same broker, next job: still functional.
  R = Pool.run({"/bin/sh", "-c", "exit 3"});
  EXPECT_TRUE(R.exitedWith(3)) << R.Error;
  EXPECT_EQ(Pool.respawns(), 0u);
}

TEST(ProcessPoolTest, DeadBrokerIsRespawnedAndTheJobRetriedOnce) {
  ProcessPool Pool(1);
  // Kill the (idle) broker; the next submit discovers the corpse on the
  // pipe, respawns, and the job still succeeds.
  ASSERT_GT(Pool.killBrokerForTest(), 0);
  // Give the SIGKILL a moment to land so the write actually fails.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ProcessResult R = Pool.run({"/bin/sh", "-c", "exit 9"});
  EXPECT_TRUE(R.exitedWith(9)) << R.Error;
  EXPECT_GE(Pool.respawns(), 1u);

  // stats() reports the same respawn count, and the retried job counts
  // once -- a retry is the same submission, not a new one.
  ProcessPool::Stats S = Pool.stats();
  EXPECT_EQ(S.Respawns, Pool.respawns());
  EXPECT_EQ(S.JobsSubmitted, 1u);
  EXPECT_EQ(S.JobsCompleted, 1u);
}

TEST(ProcessPoolTest, DeathMidJobRetriesWithoutDuplicatingTheJob) {
  ProcessPool Pool(1);
  // A job that appends a line to a file, then sleeps long enough for the
  // test to kill its broker mid-flight. The retry must run the job again
  // -- so after the dust settles the file shows the retry's write, and the
  // final result is the retry's result, delivered exactly once.
  std::string Marker = "pool_test_marker_" + std::to_string(::getpid());
  std::string Path = "/tmp/" + Marker;
  ::unlink(Path.c_str());
  ProcessPool::JobId Id = Pool.submit(
      {"/bin/sh", "-c", "echo ran >> " + Path + "; sleep 0.6; exit 5"});
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_GT(Pool.killBrokerForTest(), 0);
  ProcessResult R = Pool.wait(Id);
  EXPECT_TRUE(R.exitedWith(5)) << R.Error;
  EXPECT_GE(Pool.respawns(), 1u);

  // wait() claims a ticket exactly once; the retry result above is the one
  // and only delivery. (The file may legitimately hold one or two "ran"
  // lines -- the first attempt may or may not have reached the echo --
  // which is exactly why the harness layers solo re-verification on top:
  // side effects of a killed attempt are invisible to findings.)
  ProcessResult Next = Pool.run({"/bin/sh", "-c", "exit 1"});
  EXPECT_TRUE(Next.exitedWith(1)) << Next.Error;
  ::unlink(Path.c_str());
}

TEST(ProcessPoolTest, WedgedBrokerIsGroupKilledWithinTheSlackBudget) {
  // WedgeArgv0 makes the broker accept the job and hang forever. With a
  // 300ms job budget and 700ms slack, wait() must declare the broker
  // wedged, group-kill it, retry once (the retry wedges too), and give up
  // -- all well inside a few seconds, never hanging.
  ProcessPool Pool(1, /*SlackMs=*/700);
  ProcessOptions O;
  O.TimeoutMs = 300;
  auto T0 = std::chrono::steady_clock::now();
  ProcessResult R = Pool.run({ProcessPool::WedgeArgv0}, O);
  double Secs = secondsSince(T0);
  EXPECT_EQ(R.St, ProcessResult::Status::StartFailed);
  EXPECT_NE(R.Error.find("wedged"), std::string::npos) << R.Error;
  EXPECT_LT(Secs, 5.0) << "wedged-broker handling took " << Secs << "s";
  EXPECT_GE(Pool.respawns(), 1u);

  // The replacement broker works.
  ProcessResult Next = Pool.run({"/bin/sh", "-c", "exit 2"});
  EXPECT_TRUE(Next.exitedWith(2)) << Next.Error;
}

TEST(ProcessPoolTest, WedgedBrokerPidIsActuallyDead) {
  ProcessPool Pool(1, /*SlackMs=*/500);
  ProcessOptions O;
  O.TimeoutMs = 200;
  // Grab the current broker pid by killing nothing: killBrokerForTest
  // would interfere, so instead submit the wedge and verify afterwards
  // that whatever broker exists now is a *different* process serving jobs.
  (void)Pool.run({ProcessPool::WedgeArgv0}, O);
  unsigned RespawnsAfterWedge = Pool.respawns();
  EXPECT_GE(RespawnsAfterWedge, 1u);
  // A wedged broker that survived its group-kill would still hold the job
  // pipe and the pool would hang here; a served job proves the pool freed
  // the slot and a fresh broker took over.
  ProcessResult R = Pool.run({"/bin/sh", "-c", "exit 6"});
  EXPECT_TRUE(R.exitedWith(6)) << R.Error;
}
