//===- tests/triage_matrix_vote_test.cpp - matrix attribution ------------===//
//
// Majority-vs-outlier voting for the N-way differential matrix
// (triage/MatrixVote.h, DESIGN.md Section 14), pinned at two levels:
// voteMatrixCell's rules directly (tie handling, strict-majority outvote,
// trap/hang exclusion, and the full-width 256+k vs low-8 k regression),
// and end to end through campaigns whose rosters contain scripted
// wrong-code backends -- behavior-skewing wrappers around the clean
// in-process compiler -- checking that findings name the bad backend, that
// 1-vs-1 splits fall back to the reference oracle, and that the same
// divergence reached through several sweep inputs dedups to one signature
// cluster.
//
//===----------------------------------------------------------------------===//

#include "testing/Harness.h"
#include "triage/Deduper.h"
#include "triage/MatrixVote.h"

#include "gtest/gtest.h"

#include <set>

using namespace spe;

namespace {

BackendObservation okExit(int64_t Exit, bool Low8 = false,
                          std::string Output = "") {
  BackendObservation O;
  O.Compile = BackendObservation::CompileStatus::Ok;
  O.Exec = BackendObservation::ExecStatus::Ok;
  O.ExitCode = Exit;
  O.ExitCodeLow8 = Low8;
  O.Output = std::move(Output);
  return O;
}

BackendObservation trapped() {
  BackendObservation O;
  O.Compile = BackendObservation::CompileStatus::Ok;
  O.Exec = BackendObservation::ExecStatus::Trap;
  return O;
}

MatrixVote vote(int64_t OracleExit,
                const std::vector<const BackendObservation *> &Obs) {
  return voteMatrixCell(OracleExit, "", Obs);
}

} // namespace

//===----------------------------------------------------------------------===//
// voteMatrixCell rules
//===----------------------------------------------------------------------===//

TEST(MatrixVoteTest, FullWidth256PlusKDoesNotCollideWithExitK) {
  // Regression: a full-width exit of 256+k must stay distinct from exit k.
  // Masking every exit to its low 8 bits -- the obvious shortcut, and what
  // POSIX wait() does to genuine subprocess exits -- would alias them and
  // silently hide the divergence class external compilers report via
  // _exit(), so masking is per-observation: only when the observation
  // itself says just the low 8 bits survived.
  EXPECT_FALSE(behaviorKey(okExit(259, false)) == behaviorKey(okExit(3)));
  // An exit that *did* pass through a wait status masks, and aliases.
  EXPECT_TRUE(behaviorKey(okExit(259, true)) == behaviorKey(okExit(3)));

  BackendObservation Full = okExit(259, false);
  MatrixVote V = vote(3, {&Full});
  EXPECT_FALSE(V.OracleOutvoted);
  ASSERT_EQ(V.Outliers.size(), 1u);
  EXPECT_NE(V.Outliers[0].find("exit"), std::string::npos)
      << "full-width 259 vs oracle 3 must be a divergence, got clean";

  BackendObservation Masked = okExit(259, true);
  V = vote(3, {&Masked});
  EXPECT_FALSE(V.OracleOutvoted);
  ASSERT_EQ(V.Outliers.size(), 1u);
  EXPECT_TRUE(V.Outliers[0].empty())
      << "a low-8 backend must not be blamed for bits it never saw";
}

TEST(MatrixVoteTest, OneVsOneTieFallsBackToTheOracle) {
  BackendObservation A = okExit(1), B = okExit(2);
  MatrixVote V = vote(0, {&A, &B});
  EXPECT_FALSE(V.OracleOutvoted);
  EXPECT_EQ(V.ConsensusExit, 0);
  ASSERT_EQ(V.Outliers.size(), 2u);
  EXPECT_FALSE(V.Outliers[0].empty());
  EXPECT_FALSE(V.Outliers[1].empty());
}

TEST(MatrixVoteTest, EqualWeightGroupsNeverOutvoteTheOracle) {
  // Two against two (and the oracle alone): no uniquely heaviest group,
  // so the oracle's behavior stays the consensus and all four are named.
  BackendObservation A = okExit(7), B = okExit(7), C = okExit(9),
                     D = okExit(9);
  MatrixVote V = vote(0, {&A, &B, &C, &D});
  EXPECT_FALSE(V.OracleOutvoted);
  for (const std::string &O : V.Outliers)
    EXPECT_FALSE(O.empty());
}

TEST(MatrixVoteTest, StrictMajorityOutvotesTheOracle) {
  BackendObservation A = okExit(7), B = okExit(7), C = okExit(7);
  MatrixVote V = vote(0, {&A, &B, &C});
  EXPECT_TRUE(V.OracleOutvoted);
  EXPECT_EQ(V.ConsensusExit, 7);
  EXPECT_FALSE(V.OracleSignature.empty());
  for (const std::string &O : V.Outliers)
    EXPECT_TRUE(O.empty()) << "consensus members must not be named";
}

TEST(MatrixVoteTest, AgreeingBackendsReinforceTheOracle) {
  // One backend matching the oracle raises the bar: a would-be majority of
  // two must now beat oracle weight two, and cannot.
  BackendObservation Good = okExit(0), Bad1 = okExit(7), Bad2 = okExit(7);
  MatrixVote V = vote(0, {&Good, &Bad1, &Bad2});
  EXPECT_FALSE(V.OracleOutvoted);
  EXPECT_TRUE(V.Outliers[0].empty());
  EXPECT_FALSE(V.Outliers[1].empty());
  EXPECT_FALSE(V.Outliers[2].empty());
}

TEST(MatrixVoteTest, TrapsAndHangsNeverFormConsensus) {
  // Even a unanimous roster of traps cannot outvote the oracle: a trap is
  // a divergence by definition, not a candidate behavior.
  BackendObservation A = trapped(), B = trapped(), C = trapped();
  MatrixVote V = vote(0, {&A, &B, &C});
  EXPECT_FALSE(V.OracleOutvoted);
  for (const std::string &O : V.Outliers)
    EXPECT_NE(O.find("trap"), std::string::npos);
}

TEST(MatrixVoteTest, AbstainersAreSkipped) {
  // Null entries (cell excluded) and not-run observations (compile failed)
  // neither vote nor get named.
  BackendObservation NotRun;
  NotRun.Compile = BackendObservation::CompileStatus::Crashed;
  BackendObservation Bad = okExit(5);
  MatrixVote V = vote(0, {nullptr, &NotRun, &Bad});
  EXPECT_FALSE(V.OracleOutvoted);
  ASSERT_EQ(V.Outliers.size(), 3u);
  EXPECT_TRUE(V.Outliers[0].empty());
  EXPECT_TRUE(V.Outliers[1].empty());
  EXPECT_FALSE(V.Outliers[2].empty());
}

//===----------------------------------------------------------------------===//
// End to end: scripted wrong-code backends in a matrix campaign
//===----------------------------------------------------------------------===//

namespace {

/// A wrong-code compiler double: the clean in-process compiler with every
/// successful execution's exit code skewed by a constant. Deterministic on
/// the source text, so triage reduction re-probes keep reproducing the
/// divergence; no ground truth, so its findings flow signature-only.
struct SkewBackend : CompilerBackend {
  InProcessBackend Inner{/*InjectBugs=*/false};
  std::string Name;
  int64_t Delta;
  explicit SkewBackend(std::string Name, int64_t Delta = 1)
      : Name(std::move(Name)), Delta(Delta) {}
  std::string identity() const override { return Name; }
  bool hasGroundTruth() const override { return false; }
  BackendObservation run(const std::string &S, const CompilerConfig &C,
                         CoverageRegistry *Cov) const override {
    return runWithInput(S, C, "", Cov);
  }
  BackendObservation runWithInput(const std::string &S,
                                  const CompilerConfig &C,
                                  const std::string &In,
                                  CoverageRegistry *Cov) const override {
    BackendObservation O = Inner.runWithInput(S, C, In, Cov);
    if (O.Exec == BackendObservation::ExecStatus::Ok)
      O.ExitCode += Delta;
    return O;
  }
};

/// A faithful clone of the clean in-process compiler under its own name.
struct CleanBackend : CompilerBackend {
  InProcessBackend Inner{/*InjectBugs=*/false};
  std::string Name;
  explicit CleanBackend(std::string Name) : Name(std::move(Name)) {}
  std::string identity() const override { return Name; }
  bool hasGroundTruth() const override { return false; }
  BackendObservation run(const std::string &S, const CompilerConfig &C,
                         CoverageRegistry *Cov) const override {
    return Inner.runWithInput(S, C, "", Cov);
  }
  BackendObservation runWithInput(const std::string &S,
                                  const CompilerConfig &C,
                                  const std::string &In,
                                  CoverageRegistry *Cov) const override {
    return Inner.runWithInput(S, C, In, Cov);
  }
};

/// One seed whose variants read the sweep, so per-input cells differ.
std::vector<std::string> voteSeeds() {
  return {"int main(void) {\n"
          "  int a = spe_input();\n"
          "  int b = 3, c = 1;\n"
          "  c = c - b;\n"
          "  if (a > c)\n"
          "    c = a - c;\n"
          "  return c + b;\n"
          "}\n"};
}

HarnessOptions voteOptions() {
  HarnessOptions Opts;
  Opts.Configs = HarnessOptions::crashMatrix(Persona::GccSim, 48);
  for (CompilerConfig &Config : Opts.Configs)
    Config.ExecSweep = {"1\n", "7\n", "42\n"};
  Opts.VariantBudget = 12;
  Opts.InjectBugs = false; // Clean primary: only scripted divergences.
  return Opts;
}

} // namespace

TEST(MatrixVoteCampaignTest, OutlierAttributionNamesTheBadBackend) {
  // Roster: clean primary (minicc), clean clone, one exit-skewing double.
  // Every finding must name the double -- never the agreeing majority.
  CleanBackend Good("minicc-good");
  SkewBackend Bad("minicc-skew+1", 1);
  HarnessOptions Opts = voteOptions();
  Opts.ExtraBackends = {&Good, &Bad};
  CampaignResult Result =
      DifferentialHarness(Opts).runCampaign(voteSeeds());
  ASSERT_FALSE(Result.RawFindings.empty());
  EXPECT_TRUE(Result.UniqueBugs.empty()); // Signature-only findings.
  for (const auto &KV : Result.RawFindings) {
    EXPECT_EQ(KV.second.Backend, "minicc-skew+1") << KV.second.Signature;
    EXPECT_EQ(KV.first.BackendIdx, 2u); // Roster slot of the double.
    EXPECT_EQ(KV.second.Effect, BugEffect::WrongCode);
  }
}

TEST(MatrixVoteCampaignTest, OneVsOneCampaignTieFallsBackToTheOracle) {
  // Primary and the one extra backend disagree with the oracle *and* each
  // other: no majority exists, the oracle's verdict stands, and both
  // backends are reported -- neither is "reference-oracle".
  SkewBackend BadA("minicc-skew+1", 1), BadB("minicc-skew+2", 2);
  HarnessOptions Opts = voteOptions();
  Opts.Backend = &BadA;
  Opts.ExtraBackends = {&BadB};
  CampaignResult Result =
      DifferentialHarness(Opts).runCampaign(voteSeeds());
  ASSERT_FALSE(Result.RawFindings.empty());
  std::set<std::string> Named;
  for (const auto &KV : Result.RawFindings)
    Named.insert(KV.second.Backend);
  EXPECT_EQ(Named,
            (std::set<std::string>{"minicc-skew+1", "minicc-skew+2"}));
}

TEST(MatrixVoteCampaignTest, UnanimousBackendMajorityOutvotesTheOracle) {
  // All three roster backends share the same skew: a strict majority
  // against the reference interpreter. The finding is attributed to
  // "reference-oracle" at roster-size slot -- the backends agree, so under
  // majority rule the *oracle* is the outlier.
  SkewBackend BadA("minicc-skew-a", 1), BadB("minicc-skew-b", 1),
      BadC("minicc-skew-c", 1);
  HarnessOptions Opts = voteOptions();
  Opts.Backend = &BadA;
  Opts.ExtraBackends = {&BadB, &BadC};
  CampaignResult Result =
      DifferentialHarness(Opts).runCampaign(voteSeeds());
  ASSERT_FALSE(Result.RawFindings.empty());
  for (const auto &KV : Result.RawFindings) {
    EXPECT_EQ(KV.second.Backend, "reference-oracle");
    EXPECT_EQ(KV.first.BackendIdx, 3u); // One past the last roster slot.
  }
}

TEST(MatrixVoteCampaignTest, SweepInputsDedupToOneSignatureCluster) {
  // The skewed backend diverges under every sweep input, producing raw
  // findings at several InputIdx values -- but the input is witness
  // metadata, not identity: signature triage must collapse them into ONE
  // cluster (per backend), not one per input.
  CleanBackend Good("minicc-good");
  SkewBackend Bad("minicc-skew+1", 1);
  HarnessOptions Opts = voteOptions();
  Opts.ExtraBackends = {&Good, &Bad};
  CampaignResult Result =
      DifferentialHarness(Opts).runCampaign(voteSeeds());

  std::set<unsigned> InputSlots;
  for (const auto &KV : Result.RawFindings)
    InputSlots.insert(KV.first.InputIdx);
  ASSERT_GT(InputSlots.size(), 1u)
      << "the sweep produced findings under only one input; the dedup "
         "claim below would be vacuous";

  std::vector<TriagedBug> Clusters = clusterBySignature(Result.RawFindings);
  ASSERT_EQ(Clusters.size(), 1u);
  EXPECT_EQ(Clusters[0].Sig.Backend, "minicc-skew+1");
  EXPECT_GT(Clusters[0].RawCount, 1u);
  // The cluster's signature renders with its backend attribution.
  EXPECT_NE(Clusters[0].Sig.str().find("@minicc-skew+1"),
            std::string::npos);
}

TEST(MatrixVoteCampaignTest, FullWidthExitSkewIsCaughtEndToEnd) {
  // The 256+k regression at campaign level: a backend whose exits are
  // shifted by exactly 256 diverges in bits a low-8 mask would erase.
  // The matrix must still catch and attribute it.
  CleanBackend Good("minicc-good");
  SkewBackend Bad("minicc-skew+256", 256);
  HarnessOptions Opts = voteOptions();
  Opts.ExtraBackends = {&Good, &Bad};
  CampaignResult Result =
      DifferentialHarness(Opts).runCampaign(voteSeeds());
  ASSERT_FALSE(Result.RawFindings.empty());
  for (const auto &KV : Result.RawFindings)
    EXPECT_EQ(KV.second.Backend, "minicc-skew+256");
}
