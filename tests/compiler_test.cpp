//===- tests/compiler_test.cpp - MiniCC compiler tests -------------------===//

#include "compiler/Compiler.h"
#include "compiler/Passes.h"
#include "interp/Interpreter.h"
#include "lang/Parser.h"
#include "sema/Sema.h"

#include "gtest/gtest.h"

using namespace spe;

namespace {

struct Compiled {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  std::unique_ptr<Sema> Analysis;
};

std::unique_ptr<Compiled> analyze(const std::string &Source) {
  auto C = std::make_unique<Compiled>();
  EXPECT_TRUE(Parser::parse(Source, C->Ctx, C->Diags)) << C->Diags.toString();
  C->Analysis = std::make_unique<Sema>(C->Ctx, C->Diags);
  EXPECT_TRUE(C->Analysis->run()) << C->Diags.toString();
  return C;
}

/// Compiles at \p OptLevel with bugs disabled and runs the VM.
VMResult compileAndRun(const std::string &Source, unsigned OptLevel) {
  auto C = analyze(Source);
  CompilerConfig Config;
  Config.OptLevel = OptLevel;
  MiniCompiler CC(Config, nullptr, /*InjectBugs=*/false);
  CompileResult R = CC.compile(C->Ctx);
  EXPECT_TRUE(R.ok()) << R.Error << R.CrashSignature;
  if (!R.ok())
    return {};
  return executeModule(R.Module);
}

/// Runs the same source under the oracle and under MiniCC at every opt
/// level (bugs off) and requires identical observable behavior.
void expectAllLevelsMatchOracle(const std::string &Source) {
  auto C = analyze(Source);
  ExecResult Ref = interpret(C->Ctx);
  ASSERT_EQ(Ref.Status, ExecStatus::Ok) << Ref.Message;
  for (unsigned Opt = 0; Opt <= 3; ++Opt) {
    VMResult R = compileAndRun(Source, Opt);
    ASSERT_EQ(R.Status, VMStatus::Ok)
        << "O" << Opt << ": " << R.Message << "\n"
        << Source;
    EXPECT_EQ(R.ExitCode, Ref.ExitCode) << "O" << Opt << "\n" << Source;
    EXPECT_EQ(R.Output, Ref.Output) << "O" << Opt << "\n" << Source;
  }
}

} // namespace

TEST(CompilerTest, SimpleReturn) {
  expectAllLevelsMatchOracle("int main(void) { return 42; }");
}

TEST(CompilerTest, ArithmeticAndConversions) {
  expectAllLevelsMatchOracle(
      "int main(void) {\n"
      "  char c = 100; short s = -3; unsigned u = 40; long l = 1l << 33;\n"
      "  int x = c + s * 2;\n"
      "  unsigned y = u / 3 + (u % 7);\n"
      "  long z = l + x - y;\n"
      "  printf(\"%d %u %ld\\n\", x, y, z);\n"
      "  return (int)(z & 255);\n"
      "}");
}

TEST(CompilerTest, ControlFlowKitchenSink) {
  expectAllLevelsMatchOracle(
      "int main(void) {\n"
      "  int sum = 0;\n"
      "  for (int i = 0; i < 10; ++i) {\n"
      "    if (i % 3 == 0) continue;\n"
      "    sum += i;\n"
      "    if (sum > 30) break;\n"
      "  }\n"
      "  int n = 0;\n"
      "  while (n < 5) n++;\n"
      "  do sum += n; while (sum < 40);\n"
      "  return sum;\n"
      "}");
}

TEST(CompilerTest, FunctionsAndRecursion) {
  expectAllLevelsMatchOracle(
      "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n"
      "int twice(int v) { return v + v; }\n"
      "int main(void) { return twice(fib(9)); }");
}

TEST(CompilerTest, PointersArraysGlobals) {
  expectAllLevelsMatchOracle(
      "int arr[5] = {2, 4, 6, 8, 10};\n"
      "int g = 3;\n"
      "int main(void) {\n"
      "  int *p = arr + 1;\n"
      "  *p += g;\n"
      "  p++;\n"
      "  int sum = 0;\n"
      "  for (int i = 0; i < 5; ++i) sum += arr[i];\n"
      "  return sum + *p + (p - arr);\n"
      "}");
}

TEST(CompilerTest, StructsAndConditionals) {
  expectAllLevelsMatchOracle(
      "struct s { int x; int y; };\n"
      "struct s g = {3, 4};\n"
      "int main(void) {\n"
      "  struct s local;\n"
      "  local = g;\n"
      "  local.x = local.x + (local.y > 2 ? 10 : 20);\n"
      "  struct s *p = &local;\n"
      "  return p->x * 100 + p->y;\n"
      "}");
}

TEST(CompilerTest, GotoAndLabels) {
  expectAllLevelsMatchOracle(
      "int main(void) {\n"
      "  int i = 0, acc = 0;\n"
      "again:\n"
      "  acc += i;\n"
      "  i++;\n"
      "  if (i < 5) goto again;\n"
      "  return acc;\n"
      "}");
}

TEST(CompilerTest, ShortCircuitSideEffects) {
  expectAllLevelsMatchOracle(
      "int g = 0;\n"
      "int bump(void) { g = g + 1; return 1; }\n"
      "int main(void) {\n"
      "  int a = (0 && bump()) + (1 && bump()) + (0 || bump()) + (1 || bump());\n"
      "  return g * 10 + a;\n"
      "}");
}

TEST(CompilerTest, Figure1OptimizationScenario) {
  // The paper's Figure 1 P2: constant propagation of b = 1 folds the if
  // condition; dead code elimination removes the branch. Behavior must be
  // unchanged.
  expectAllLevelsMatchOracle("int main(void) {\n"
                             "  int a, b = 1;\n"
                             "  a = b - b;\n"
                             "  if (a)\n"
                             "    a = a - b;\n"
                             "  return a * 10 + b;\n"
                             "}");
}

TEST(CompilerTest, OptimizationActuallyShrinksCode) {
  auto C = analyze("int main(void) {\n"
                   "  int a = 3, b = 4;\n"
                   "  int c = a * b + a - a;\n"
                   "  if (0) c = 99;\n"
                   "  return c;\n"
                   "}");
  CompilerConfig O0, O3;
  O3.OptLevel = 3;
  MiniCompiler CC0(O0, nullptr, false), CC3(O3, nullptr, false);
  CompileResult R0 = CC0.compile(C->Ctx);
  CompileResult R3 = CC3.compile(C->Ctx);
  ASSERT_TRUE(R0.ok() && R3.ok());
  auto CountInstrs = [](const IRModule &M) {
    size_t N = 0;
    for (const IRFunction &F : M.Functions)
      for (const IRBlock &B : F.Blocks)
        N += B.Instrs.size();
    return N;
  };
  EXPECT_LT(CountInstrs(R3.Module), CountInstrs(R0.Module));
}

TEST(CompilerTest, VerifierAcceptsGeneratedIR) {
  auto C = analyze("int f(int n) { int s = 0; while (n) { s += n; n--; } "
                   "return s; }\n"
                   "int main(void) { return f(5); }");
  IRGenResult R = generateIR(C->Ctx);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(verifyModule(R.Module), "");
  // Each pass keeps the module well-formed.
  for (unsigned Opt = 1; Opt <= 3; ++Opt) {
    IRGenResult R2 = generateIR(C->Ctx);
    runPipeline(R2.Module, Opt, nullptr);
    EXPECT_EQ(verifyModule(R2.Module), "") << "O" << Opt;
  }
}

TEST(CompilerTest, CoveragePointsAccumulate) {
  CoverageRegistry Cov;
  registerPassCoverageCatalog(Cov);
  unsigned Total = Cov.totalPoints();
  EXPECT_GT(Total, 20u);
  EXPECT_EQ(Cov.hitPoints(), 0u);

  auto C = analyze("int main(void) {\n"
                   "  int a = 1, b = 1;\n"
                   "  int c = a - a + (b * 0);\n"
                   "  if (c) c = 7;\n"
                   "  while (c) c--;\n"
                   "  return c;\n"
                   "}");
  CompilerConfig Config;
  Config.OptLevel = 3;
  MiniCompiler CC(Config, &Cov, false);
  CompileResult R = CC.compile(C->Ctx);
  ASSERT_TRUE(R.ok());
  EXPECT_GT(Cov.hitPoints(), 5u);
  EXPECT_LE(Cov.hitPoints(), Total);
  EXPECT_GT(Cov.functionCoverage(), 0.0);
  Cov.resetHits();
  EXPECT_EQ(Cov.hitPoints(), 0u);
  EXPECT_EQ(Cov.totalPoints(), Total);
}

// --- injected bugs --------------------------------------------------------

TEST(InjectedBugTest, Figure3CrashFiresOnIdenticalCondArms) {
  // Enumerating e ? X : Y into e ? X : X (the paper's bug 69801 discovery).
  auto C = analyze("struct s { char c[1]; };\n"
                   "struct s a, b, c;\n"
                   "int d; int e;\n"
                   "int main(void) {\n"
                   "  e ? (d == 0 ? b : c).c : (d == 0 ? b : c).c;\n"
                   "  return 0;\n"
                   "}");
  CompilerConfig Config; // gcc-sim trunk -O0.
  MiniCompiler CC(Config);
  CompileResult R = CC.compile(C->Ctx);
  ASSERT_TRUE(R.crashed());
  EXPECT_NE(R.CrashSignature.find("operand_equal_p"), std::string::npos);
}

TEST(InjectedBugTest, OriginalFigure3ProgramDoesNotCrash) {
  // With distinct arms (e == 0 vs d == 0) the trigger pattern is absent.
  auto C = analyze("struct s { char c[1]; };\n"
                   "struct s a, b, c;\n"
                   "int d; int e;\n"
                   "int main(void) {\n"
                   "  e ? (e == 0 ? b : c).c : (d == 0 ? b : c).c;\n"
                   "  return 0;\n"
                   "}");
  CompilerConfig Config;
  MiniCompiler CC(Config);
  CompileResult R = CC.compile(C->Ctx);
  EXPECT_TRUE(R.ok()) << R.CrashSignature;
}

TEST(InjectedBugTest, Figure2AliasWrongCode) {
  // Two pointers to one object; the buggy compiler drops the last store.
  const char *Source = "int a = 0;\n"
                       "int main(void) {\n"
                       "  int *p = &a, *q = &a;\n"
                       "  *p = 1;\n"
                       "  *q = 2;\n"
                       "  return a;\n"
                       "}";
  auto C = analyze(Source);
  ExecResult Ref = interpret(C->Ctx);
  ASSERT_EQ(Ref.Status, ExecStatus::Ok);
  EXPECT_EQ(Ref.ExitCode, 2);

  CompilerConfig Config;
  Config.OptLevel = 2;
  auto C2 = analyze(Source);
  MiniCompiler Buggy(Config);
  CompileResult R = Buggy.compile(C2->Ctx);
  ASSERT_TRUE(R.ok()) << R.CrashSignature;
  VMResult V = executeModule(R.Module);
  ASSERT_TRUE(V.ok());
  // Miscompiled: the program returns 1 instead of 2 (as in the paper).
  EXPECT_NE(V.ExitCode, Ref.ExitCode);
}

TEST(InjectedBugTest, FixedVersionDoesNotFire) {
  auto C = analyze("int main(void) {\n"
                   "  int v = 5;\n"
                   "  int r = v - v;\n"
                   "  return r;\n"
                   "}");
  // Bug 4 (gcc-sim self-subtraction) is fixed in version 62.
  CompilerConfig Old;
  Old.Version = 61;
  Old.OptLevel = 2;
  CompilerConfig New;
  New.Version = 62;
  New.OptLevel = 2;
  MiniCompiler OldCC(Old), NewCC(New);
  auto C1 = analyze("int main(void) { int v = 5; return v - v; }");
  auto C2 = analyze("int main(void) { int v = 5; return v - v; }");
  CompileResult ROld = OldCC.compile(*&C1->Ctx);
  CompileResult RNew = NewCC.compile(*&C2->Ctx);
  ASSERT_TRUE(ROld.ok() && RNew.ok());
  bool OldFired = !ROld.FiredBugs.empty();
  bool NewFired = false;
  for (int Id : RNew.FiredBugs)
    if (Id == 4)
      NewFired = true;
  EXPECT_TRUE(OldFired);
  EXPECT_FALSE(NewFired);
  (void)C;
}

TEST(InjectedBugTest, OptLevelGatesBugs) {
  // The v/v fold bug needs -O3.
  const char *Source = "int main(void) { int v = 3; return v / v; }";
  for (unsigned Opt = 0; Opt <= 3; ++Opt) {
    auto C = analyze(Source);
    CompilerConfig Config;
    Config.OptLevel = Opt;
    MiniCompiler CC(Config);
    CompileResult R = CC.compile(C->Ctx);
    ASSERT_TRUE(R.ok());
    bool DivBugFired = false;
    for (int Id : R.FiredBugs)
      if (bugDatabase()[Id - 1].Mut == Mutilation::FoldSelfDivToOne)
        DivBugFired = true;
    EXPECT_EQ(DivBugFired, Opt >= 3) << "O" << Opt;
  }
}

TEST(InjectedBugTest, PersonasHaveDistinctBugs) {
  std::vector<const InjectedBug *> Gcc = bugsOf(Persona::GccSim);
  std::vector<const InjectedBug *> Clang = bugsOf(Persona::ClangSim);
  EXPECT_GE(Gcc.size(), 10u);
  EXPECT_GE(Clang.size(), 8u);
  for (const InjectedBug *B : Gcc)
    EXPECT_EQ(B->P, Persona::GccSim);
  // Ids are unique and dense.
  EXPECT_EQ(Gcc.size() + Clang.size(), bugDatabase().size());
  for (size_t I = 0; I < bugDatabase().size(); ++I)
    EXPECT_EQ(bugDatabase()[I].Id, static_cast<int>(I) + 1);
}

TEST(InjectedBugTest, PerformanceBugInflatesCost) {
  auto C = analyze("int main(void) {\n"
                   "  int i = 0;\n"
                   "  for (; i < i; ++i) ;\n"
                   "  return i;\n"
                   "}");
  CompilerConfig Config;
  Config.OptLevel = 2;
  MiniCompiler CC(Config);
  CompileResult R = CC.compile(C->Ctx);
  ASSERT_TRUE(R.ok()) << R.CrashSignature;
  EXPECT_GT(R.CompileCost, 1'000'000u);
}

TEST(InjectedBugTest, Mode32OnlyBugs) {
  const char *Source = "int main(void) { int v = 3; return v << v; }";
  auto C64 = analyze(Source);
  auto C32 = analyze(Source);
  CompilerConfig Cfg64;
  Cfg64.OptLevel = 1;
  CompilerConfig Cfg32 = Cfg64;
  Cfg32.Mode64 = false;
  CompileResult R64 = MiniCompiler(Cfg64).compile(C64->Ctx);
  CompileResult R32 = MiniCompiler(Cfg32).compile(C32->Ctx);
  EXPECT_TRUE(R64.ok());
  EXPECT_TRUE(R32.crashed());
  EXPECT_NE(R32.CrashSignature.find("lra-assigns"), std::string::npos);
}
