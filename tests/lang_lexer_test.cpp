//===- tests/lang_lexer_test.cpp - lexer unit tests ----------------------===//

#include "lang/Lexer.h"

#include "gtest/gtest.h"

using namespace spe;

namespace {
std::vector<Token> lex(const std::string &Source) {
  DiagnosticEngine Diags;
  Lexer L(Source, Diags);
  std::vector<Token> Tokens = L.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.toString();
  return Tokens;
}
} // namespace

TEST(LexerTest, EmptyInput) {
  std::vector<Token> T = lex("");
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T[0].is(TokenKind::EndOfFile));
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  std::vector<Token> T = lex("int foo while whilex _bar2");
  EXPECT_TRUE(T[0].is(TokenKind::KwInt));
  EXPECT_TRUE(T[1].is(TokenKind::Identifier));
  EXPECT_EQ(T[1].Text, "foo");
  EXPECT_TRUE(T[2].is(TokenKind::KwWhile));
  EXPECT_TRUE(T[3].is(TokenKind::Identifier));
  EXPECT_EQ(T[3].Text, "whilex");
  EXPECT_EQ(T[4].Text, "_bar2");
}

TEST(LexerTest, IntegerLiterals) {
  std::vector<Token> T = lex("0 42 0x1F 017 123u 5L 7ull");
  EXPECT_EQ(T[0].IntValue, 0u);
  EXPECT_EQ(T[1].IntValue, 42u);
  EXPECT_EQ(T[2].IntValue, 31u);
  EXPECT_EQ(T[3].IntValue, 15u);
  EXPECT_EQ(T[4].IntValue, 123u);
  EXPECT_TRUE(T[4].IsUnsigned);
  EXPECT_EQ(T[5].IntValue, 5u);
  EXPECT_TRUE(T[5].IsLong);
  EXPECT_TRUE(T[6].IsUnsigned);
  EXPECT_TRUE(T[6].IsLong);
}

TEST(LexerTest, CharLiterals) {
  std::vector<Token> T = lex("'a' '\\n' '\\0'");
  EXPECT_EQ(T[0].IntValue, static_cast<uint64_t>('a'));
  EXPECT_EQ(T[1].IntValue, static_cast<uint64_t>('\n'));
  EXPECT_EQ(T[2].IntValue, 0u);
}

TEST(LexerTest, StringLiterals) {
  std::vector<Token> T = lex("\"%d\\n\"");
  EXPECT_TRUE(T[0].is(TokenKind::StringConstant));
  EXPECT_EQ(T[0].Text, "%d\n");
}

TEST(LexerTest, CompoundOperators) {
  std::vector<Token> T = lex("<<= >>= << >> <= >= == != && || ++ -- -> += &=");
  TokenKind Expected[] = {
      TokenKind::LessLessEqual,  TokenKind::GreaterGreaterEqual,
      TokenKind::LessLess,       TokenKind::GreaterGreater,
      TokenKind::LessEqual,      TokenKind::GreaterEqual,
      TokenKind::EqualEqual,     TokenKind::ExclaimEqual,
      TokenKind::AmpAmp,         TokenKind::PipePipe,
      TokenKind::PlusPlus,       TokenKind::MinusMinus,
      TokenKind::Arrow,          TokenKind::PlusEqual,
      TokenKind::AmpEqual,
  };
  for (size_t I = 0; I < std::size(Expected); ++I)
    EXPECT_TRUE(T[I].is(Expected[I])) << "token " << I;
}

TEST(LexerTest, CommentsAreSkipped) {
  std::vector<Token> T = lex("a // line comment\n b /* block\n comment */ c");
  ASSERT_EQ(T.size(), 4u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b");
  EXPECT_EQ(T[2].Text, "c");
}

TEST(LexerTest, SourceLocations) {
  std::vector<Token> T = lex("a\n  b");
  EXPECT_EQ(T[0].Loc.Line, 1u);
  EXPECT_EQ(T[0].Loc.Column, 1u);
  EXPECT_EQ(T[1].Loc.Line, 2u);
  EXPECT_EQ(T[1].Loc.Column, 3u);
}

TEST(LexerTest, UnterminatedCommentIsError) {
  DiagnosticEngine Diags;
  Lexer L("a /* never closed", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, UnknownCharacterIsError) {
  DiagnosticEngine Diags;
  Lexer L("a @ b", Diags);
  std::vector<Token> T = L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
  // Lexing continues past the bad character.
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[1].Text, "b");
}
