//===- tests/core_assignment_cursor_test.cpp - cursor unit tests ---------===//
//
// Correctness of the pull-based rankable cursor: the stream must equal the
// classic enumeration, seek(k) must agree with skipping k items, and
// shard(i, n) must partition the space exactly -- in both modes, across
// skeleton shapes (flat, nested, multi-type, sibling scopes, empty).
//
//===----------------------------------------------------------------------===//

#include "core/AlphaEquivalence.h"
#include "core/AssignmentCursor.h"
#include "core/NaiveEnumerator.h"
#include "core/SpeEnumerator.h"

#include "gtest/gtest.h"

#include <set>

using namespace spe;

namespace {

AbstractSkeleton makeFlatSkeleton(unsigned NumVars, unsigned NumHoles) {
  AbstractSkeleton Sk;
  for (unsigned I = 0; I < NumVars; ++I)
    Sk.addVariable("v" + std::to_string(I), AbstractSkeleton::rootScope(), 0);
  for (unsigned I = 0; I < NumHoles; ++I)
    Sk.addHole(AbstractSkeleton::rootScope(), 0);
  return Sk;
}

/// Three-level nesting with holes at every level.
AbstractSkeleton makeNestedSkeleton() {
  AbstractSkeleton Sk;
  ScopeId Root = AbstractSkeleton::rootScope();
  ScopeId Mid = Sk.addScope(Root);
  ScopeId Leaf = Sk.addScope(Mid);
  Sk.addVariable("g", Root, 0);
  Sk.addVariable("h", Root, 0);
  Sk.addVariable("m", Mid, 0);
  Sk.addVariable("l", Leaf, 0);
  Sk.addHole(Root, 0);
  Sk.addHole(Mid, 0);
  Sk.addHole(Leaf, 0);
  Sk.addHole(Leaf, 0);
  Sk.addHole(Mid, 0);
  return Sk;
}

/// Two types, sibling scopes, and a hole-less type variable.
AbstractSkeleton makeMultiTypeSkeleton() {
  AbstractSkeleton Sk;
  ScopeId Root = AbstractSkeleton::rootScope();
  ScopeId S1 = Sk.addScope(Root);
  ScopeId S2 = Sk.addScope(Root);
  Sk.addVariable("a", Root, 0);
  Sk.addVariable("b", Root, 0);
  Sk.addVariable("x", S1, 0);
  Sk.addVariable("f", Root, 1);
  Sk.addVariable("g", S2, 1);
  Sk.addHole(S1, 0);
  Sk.addHole(S1, 0);
  Sk.addHole(Root, 0);
  Sk.addHole(S2, 1);
  Sk.addHole(S2, 1);
  return Sk;
}

std::vector<AbstractSkeleton> testSkeletons() {
  std::vector<AbstractSkeleton> Skeletons;
  Skeletons.push_back(makeFlatSkeleton(3, 5));
  Skeletons.push_back(makeFlatSkeleton(1, 4));
  Skeletons.push_back(makeFlatSkeleton(4, 0));
  Skeletons.push_back(makeNestedSkeleton());
  Skeletons.push_back(makeMultiTypeSkeleton());
  return Skeletons;
}

std::vector<Assignment> drain(AssignmentCursor &Cursor) {
  std::vector<Assignment> Out;
  while (const Assignment *A = Cursor.next())
    Out.push_back(*A);
  return Out;
}

std::vector<Assignment> legacyStream(const AbstractSkeleton &Sk,
                                     SpeMode Mode) {
  std::vector<Assignment> Out;
  SpeEnumerator(Sk, Mode).enumerate([&](const Assignment &A) {
    Out.push_back(A);
    return true;
  });
  return Out;
}

} // namespace

TEST(AssignmentCursorTest, StreamMatchesEnumerateInBothModes) {
  for (const AbstractSkeleton &Sk : testSkeletons()) {
    for (SpeMode Mode : {SpeMode::Exact, SpeMode::PaperFaithful}) {
      SCOPED_TRACE(speModeName(Mode));
      std::vector<Assignment> Legacy = legacyStream(Sk, Mode);
      AssignmentCursor Cursor(Sk, Mode);
      EXPECT_EQ(Cursor.size(), SpeEnumerator(Sk, Mode).count());
      std::vector<Assignment> Pulled = drain(Cursor);
      EXPECT_EQ(Pulled, Legacy);
      EXPECT_EQ(Cursor.position(), Cursor.size());
      EXPECT_EQ(Cursor.next(), nullptr);
    }
  }
}

TEST(AssignmentCursorTest, ExactStreamIsCanonicalAndComplete) {
  // Independent oracle: brute-force canonical dedup over the naive space.
  for (const AbstractSkeleton &Sk : testSkeletons()) {
    AlphaCanonicalizer Canon(Sk);
    std::set<std::string> Expected;
    NaiveEnumerator(Sk).enumerate([&](const Assignment &A) {
      Expected.insert(Canon.canonicalKey(A));
      return true;
    });
    if (Sk.numHoles() == 0)
      Expected.insert(Canon.canonicalKey({}));
    AssignmentCursor Cursor(Sk, SpeMode::Exact);
    std::set<std::string> Seen;
    while (const Assignment *A = Cursor.next()) {
      EXPECT_EQ(Canon.canonicalRepresentative(*A), *A);
      EXPECT_TRUE(Seen.insert(Canon.canonicalKey(*A)).second)
          << "duplicate class emitted";
    }
    EXPECT_EQ(Seen, Expected);
  }
}

TEST(AssignmentCursorTest, SeekAgreesWithSkipping) {
  for (const AbstractSkeleton &Sk : testSkeletons()) {
    for (SpeMode Mode : {SpeMode::Exact, SpeMode::PaperFaithful}) {
      SCOPED_TRACE(speModeName(Mode));
      std::vector<Assignment> Full = legacyStream(Sk, Mode);
      for (size_t K = 0; K <= Full.size(); ++K) {
        AssignmentCursor Cursor(Sk, Mode);
        Cursor.seek(BigInt(K));
        EXPECT_EQ(Cursor.position(), BigInt(K));
        std::vector<Assignment> Suffix = drain(Cursor);
        ASSERT_EQ(Suffix.size(), Full.size() - K) << "seek(" << K << ")";
        for (size_t I = 0; I < Suffix.size(); ++I)
          EXPECT_EQ(Suffix[I], Full[K + I]) << "seek(" << K << ") item " << I;
      }
    }
  }
}

TEST(AssignmentCursorTest, SeekIsRepositionableBothDirections) {
  AbstractSkeleton Sk = makeNestedSkeleton();
  std::vector<Assignment> Full = legacyStream(Sk, SpeMode::Exact);
  ASSERT_GE(Full.size(), 10u);
  AssignmentCursor Cursor(Sk, SpeMode::Exact);
  for (size_t K : {size_t(7), size_t(2), Full.size() - 1, size_t(0)}) {
    Cursor.seek(BigInt(K));
    const Assignment *A = Cursor.next();
    ASSERT_NE(A, nullptr);
    EXPECT_EQ(*A, Full[K]) << "re-seek to " << K;
  }
  Cursor.seek(Cursor.size() + BigInt(5)); // Past the end: clamped.
  EXPECT_EQ(Cursor.next(), nullptr);
}

TEST(AssignmentCursorTest, ShardPartitionsTheSpaceExactly) {
  for (const AbstractSkeleton &Sk : testSkeletons()) {
    for (SpeMode Mode : {SpeMode::Exact, SpeMode::PaperFaithful}) {
      SCOPED_TRACE(speModeName(Mode));
      std::vector<Assignment> Full = legacyStream(Sk, Mode);
      for (uint64_t N : {1u, 2u, 3u, 4u, 7u, 32u}) {
        std::vector<Assignment> Concat;
        for (uint64_t I = 0; I < N; ++I) {
          AssignmentCursor Shard(Sk, Mode);
          Shard.shard(I, N);
          std::vector<Assignment> Part = drain(Shard);
          Concat.insert(Concat.end(), Part.begin(), Part.end());
        }
        // Shards are contiguous rank ranges, so the concatenation in shard
        // order must reproduce the full stream exactly: no duplicate, no
        // loss, no reordering.
        EXPECT_EQ(Concat, Full) << "n=" << N;
      }
    }
  }
}

TEST(AssignmentCursorTest, ShardsAreBalanced) {
  AbstractSkeleton Sk = makeFlatSkeleton(4, 7); // 715 classes.
  const uint64_t N = 8;
  BigInt Size = SpeEnumerator(Sk, SpeMode::Exact).count();
  BigInt Total(0);
  for (uint64_t I = 0; I < N; ++I) {
    AssignmentCursor Shard(Sk, SpeMode::Exact);
    Shard.shard(I, N);
    BigInt Len = Shard.end() - Shard.position();
    Total += Len;
    // Near-equal split: every shard within one of size/N.
    BigInt Lo = Shard.size().divideBySmall(N);
    EXPECT_GE(Len, Lo - (Lo.isZero() ? BigInt(0) : BigInt(1)));
    EXPECT_LE(Len, Lo + BigInt(1));
  }
  EXPECT_EQ(Size.toUint64(), 715u);
  EXPECT_EQ(Total, Size);
}

TEST(AssignmentCursorTest, SetEndTruncatesAndShardComposes) {
  AbstractSkeleton Sk = makeFlatSkeleton(3, 6); // 122 classes.
  std::vector<Assignment> Full = legacyStream(Sk, SpeMode::Exact);
  AssignmentCursor Cursor(Sk, SpeMode::Exact);
  Cursor.setEnd(BigInt(10));
  std::vector<Assignment> First10 = drain(Cursor);
  ASSERT_EQ(First10.size(), 10u);
  for (size_t I = 0; I < 10; ++I)
    EXPECT_EQ(First10[I], Full[I]);

  // Sharding a truncated range partitions [0, 10), not the whole space.
  std::vector<Assignment> Concat;
  for (uint64_t I = 0; I < 3; ++I) {
    AssignmentCursor Shard(Sk, SpeMode::Exact);
    Shard.setEnd(BigInt(10));
    Shard.shard(I, 3);
    std::vector<Assignment> Part = drain(Shard);
    Concat.insert(Concat.end(), Part.begin(), Part.end());
  }
  EXPECT_EQ(Concat, First10);
}

TEST(AssignmentCursorTest, UnfillableHoleYieldsEmptyCursor) {
  AbstractSkeleton Sk;
  Sk.addVariable("a", AbstractSkeleton::rootScope(), 0);
  Sk.addHole(AbstractSkeleton::rootScope(), 5);
  for (SpeMode Mode : {SpeMode::Exact, SpeMode::PaperFaithful}) {
    AssignmentCursor Cursor(Sk, Mode);
    EXPECT_TRUE(Cursor.size().isZero());
    EXPECT_EQ(Cursor.next(), nullptr);
    Cursor.seek(BigInt(3));
    EXPECT_EQ(Cursor.next(), nullptr);
  }
}

TEST(AssignmentCursorTest, NoHolesYieldsOneEmptyAssignment) {
  AbstractSkeleton Sk = makeFlatSkeleton(3, 0);
  for (SpeMode Mode : {SpeMode::Exact, SpeMode::PaperFaithful}) {
    AssignmentCursor Cursor(Sk, Mode);
    EXPECT_EQ(Cursor.size(), BigInt(1));
    const Assignment *A = Cursor.next();
    ASSERT_NE(A, nullptr);
    EXPECT_TRUE(A->empty());
    EXPECT_EQ(Cursor.next(), nullptr);
  }
}

TEST(AssignmentCursorTest, SeekOnAstronomicalSpaceStaysExact) {
  // A space far beyond uint64: 60 holes over 12 variables. Seek must land
  // on internally consistent positions without materializing anything.
  AbstractSkeleton Sk = makeFlatSkeleton(12, 60);
  AssignmentCursor Cursor(Sk, SpeMode::Exact);
  ASSERT_GT(Cursor.size().numDecimalDigits(), 25u);

  // The first assignment maps every hole to the first variable.
  const Assignment *First = Cursor.next();
  ASSERT_NE(First, nullptr);
  EXPECT_EQ(*First, Assignment(60, 0));

  // Seek deep into the space; the two assignments at rank R and R+1 must be
  // adjacent: advancing after a seek equals seeking one further.
  BigInt Deep = Cursor.size().divideBySmall(3);
  Cursor.seek(Deep);
  const Assignment *AtDeep = Cursor.next();
  ASSERT_NE(AtDeep, nullptr);
  Assignment DeepCopy = *AtDeep;
  const Assignment *AfterDeep = Cursor.next();
  ASSERT_NE(AfterDeep, nullptr);
  Assignment AfterCopy = *AfterDeep;
  EXPECT_NE(DeepCopy, AfterCopy);

  AssignmentCursor Cursor2(Sk, SpeMode::Exact);
  Cursor2.seek(Deep + BigInt(1));
  const Assignment *Direct = Cursor2.next();
  ASSERT_NE(Direct, nullptr);
  EXPECT_EQ(*Direct, AfterCopy);

  // The last assignment exists and the cursor ends right after it.
  Cursor2.seek(Cursor2.size() - BigInt(1));
  EXPECT_NE(Cursor2.next(), nullptr);
  EXPECT_EQ(Cursor2.next(), nullptr);
}
