//===- tests/compiler_coverage_test.cpp - coverage registry tests --------===//
//
// CoverageRegistry behavior, in particular the release-mode-safe handling
// of hit() on unregistered names: instead of silently growing the catalog
// per distinct name (the old behavior, which skewed every ratio and only
// "worked" because nothing checked it), unknown hits fold into one
// synthetic catalog entry, identically in debug and release builds.
//
//===----------------------------------------------------------------------===//

#include "compiler/Coverage.h"

#include "gtest/gtest.h"

using namespace spe;

TEST(CoverageRegistryTest, RegisteredHitsAreCounted) {
  CoverageRegistry Cov;
  Cov.registerPoint("pass.a");
  Cov.registerPoint("pass.b");
  Cov.registerPoint("other.c");
  EXPECT_EQ(Cov.totalPoints(), 3u);
  EXPECT_EQ(Cov.hitPoints(), 0u);

  EXPECT_TRUE(Cov.hit("pass.a"));
  EXPECT_TRUE(Cov.hit("pass.a")); // Idempotent.
  EXPECT_EQ(Cov.hitPoints(), 1u);
  EXPECT_DOUBLE_EQ(Cov.pointCoverage(), 1.0 / 3.0);
}

TEST(CoverageRegistryTest, UnregisteredHitFoldsIntoSyntheticEntry) {
  CoverageRegistry Cov;
  Cov.registerPoint("pass.a");

  // Unregistered names must not grow the catalog per distinct string; both
  // land in the one synthetic entry, and hit() reports the fallback.
  EXPECT_FALSE(Cov.hit("typo.point"));
  EXPECT_FALSE(Cov.hit("another.unregistered"));
  EXPECT_EQ(Cov.totalPoints(), 2u); // pass.a + the synthetic entry.
  EXPECT_EQ(Cov.hitPoints(), 1u);
  EXPECT_EQ(Cov.hitSet().count(CoverageRegistry::syntheticPoint()), 1u);
  EXPECT_EQ(Cov.hitSet().count("typo.point"), 0u);

  // resetHits keeps the synthetic catalog entry, like any other point.
  Cov.resetHits();
  EXPECT_EQ(Cov.hitPoints(), 0u);
  EXPECT_EQ(Cov.totalPoints(), 2u);
}

TEST(CoverageRegistryTest, SyntheticEntryMergesLikeAnyPoint) {
  CoverageRegistry A, B;
  A.registerPoint("pass.a");
  A.hit("pass.a");
  B.registerPoint("pass.a");
  EXPECT_FALSE(B.hit("not.registered"));

  A.merge(B);
  EXPECT_EQ(A.totalPoints(), 2u);
  EXPECT_EQ(A.hitPoints(), 2u);
  EXPECT_EQ(A.hitSet().count(CoverageRegistry::syntheticPoint()), 1u);
}

TEST(CoverageRegistryTest, FunctionCoverageGroupsByRuleFamily) {
  CoverageRegistry Cov;
  Cov.registerPoint("algebra.selfcancel.-");
  Cov.registerPoint("algebra.selfcancel.^");
  Cov.registerPoint("dce.removed");
  EXPECT_EQ(Cov.totalFunctions(), 2u); // algebra.selfcancel and dce.removed.

  Cov.hit("algebra.selfcancel.-");
  EXPECT_EQ(Cov.hitFunctions(), 1u);
  EXPECT_DOUBLE_EQ(Cov.functionCoverage(), 0.5);
}
