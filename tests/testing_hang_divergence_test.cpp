//===- tests/testing_hang_divergence_test.cpp - hang-divergence recording ===//
//
// Regression battery for the silently-dropped hang divergence: a compiled
// module that exceeds its execution budget while the reference oracle
// terminated is a genuine wrong-code observation (the classic "miscompiled
// loop never exits" bug class), but the harness used to `continue` past it
// with no trace. These tests pin the fixed behavior: the new
// CampaignResult::ExecutionTimeouts counter, the "miscompilation (hang)"
// signature, attribution to the fired ground-truth bug, and survival of
// the finding through merge and the reduction pipeline's repro oracle.
//
//===----------------------------------------------------------------------===//

#include "reduce/BugRepro.h"
#include "testing/Harness.h"
#include "triage/Deduper.h"

#include "gtest/gtest.h"

using namespace spe;

namespace {

/// gcc-sim bug #7 (rtl-optimization, NegateFirstCondBr, versions 46..65,
/// -O1+) fires on IdenticalCmpOperands + a loop. The first conditional
/// branch is the `while` guard: the seed's loop body is never entered
/// (10 < 5), so the oracle returns fast, while the mutilated module takes
/// the inverted branch and counts upward forever -- the VM step budget
/// expires long before the increment wraps.
const char *HangSeed = "int main(void) {\n"
                       "  int i = 10;\n"
                       "  int n = 5;\n"
                       "  while (i < n)\n"
                       "    i = i + 1;\n"
                       "  if (i == i)\n"
                       "    n = 2;\n"
                       "  return n;\n"
                       "}\n";

/// A configuration where the NegateFirstCondBr bug is live...
CompilerConfig buggyConfig() { return {Persona::GccSim, 60, 2, true}; }
/// ...and one where no injected bug fires on this program at all, so the
/// hang manifests under exactly one persona.
CompilerConfig cleanConfig() { return {Persona::ClangSim, 40, 2, true}; }

} // namespace

TEST(HangDivergenceTest, ExecutionTimeoutIsRecordedNotDropped) {
  HarnessOptions Opts;
  Opts.Configs = {buggyConfig(), cleanConfig()};
  DifferentialHarness Harness(Opts);
  CampaignResult Result;
  Harness.testProgram(HangSeed, Result);

  ASSERT_EQ(Result.VariantsTested, 1u) << "seed must be oracle-clean";
  // Pre-fix, all three of these were zero: the timeout was `continue`d.
  EXPECT_EQ(Result.ExecutionTimeouts, 1u);
  EXPECT_EQ(Result.WrongCodeObservations, 1u);
  ASSERT_EQ(Result.UniqueBugs.size(), 1u);

  const FoundBug &Bug = Result.UniqueBugs.begin()->second;
  EXPECT_EQ(Bug.Effect, BugEffect::WrongCode);
  EXPECT_EQ(Bug.Signature, "miscompilation (hang)");
  EXPECT_EQ(Bug.P, Persona::GccSim);
  const InjectedBug *Truth = findBug(Bug.BugId);
  ASSERT_NE(Truth, nullptr);
  EXPECT_EQ(Truth->Mut, Mutilation::NegateFirstCondBr);

  // The clean persona executed the same variant without diverging: the
  // hang is attributed to one compiler, not to the program.
  EXPECT_EQ(Result.bugCount(Persona::ClangSim), 0u);
}

TEST(HangDivergenceTest, HangCountersSurviveMergeAndEquality) {
  HarnessOptions Opts;
  Opts.Configs = {buggyConfig()};
  DifferentialHarness Harness(Opts);
  CampaignResult A, B;
  Harness.testProgram(HangSeed, A);
  Harness.testProgram(HangSeed, B);

  CampaignResult Merged;
  Merged.merge(A);
  EXPECT_TRUE(Merged == A) << "merge into empty must reproduce the result";
  Merged.merge(B);
  EXPECT_EQ(Merged.ExecutionTimeouts, 2u);
  EXPECT_FALSE(Merged == A) << "== must see the ExecutionTimeouts delta";
}

TEST(HangDivergenceTest, HangSignatureNormalizesToItself) {
  // "(hang)" carries no variant-specific payload, so normalization must
  // keep it intact -- that is what makes hang findings one stable cluster.
  EXPECT_EQ(normalizeSignature(BugEffect::WrongCode, "miscompilation (hang)"),
            "miscompilation (hang)");
}

TEST(HangDivergenceTest, ReproOracleAcceptsAHangReproducer) {
  // The reduction pipeline must be able to re-probe a hang finding: a
  // candidate that still hangs under the finding's configuration
  // reproduces it; under the clean configuration it must not.
  ReproSpec Spec;
  Spec.Config = buggyConfig();
  Spec.Effect = BugEffect::WrongCode;
  Spec.SignatureKey = "miscompilation (hang)";
  ReproOracle Oracle(Spec);
  EXPECT_TRUE(Oracle.reproduces(HangSeed));

  ReproSpec CleanSpec = Spec;
  CleanSpec.Config = cleanConfig();
  ReproOracle CleanOracle(CleanSpec);
  EXPECT_FALSE(CleanOracle.reproduces(HangSeed));
}

TEST(HangDivergenceTest, TriageClustersTheHangFinding) {
  HarnessOptions Opts;
  Opts.Configs = {buggyConfig(), cleanConfig()};
  Opts.Triage = true;
  DifferentialHarness Harness(Opts);
  CampaignResult Result;
  Harness.testProgram(HangSeed, Result);
  triageCampaign(Result);

  ASSERT_EQ(Result.Triaged.size(), 1u);
  const TriagedBug &Cluster = Result.Triaged[0];
  EXPECT_EQ(Cluster.Sig.Effect, BugEffect::WrongCode);
  EXPECT_EQ(Cluster.Sig.Key, "miscompilation (hang)");
  // The reduced representative must still hang under its configuration.
  ReproSpec Spec;
  Spec.Config = {Cluster.Representative.P, Cluster.Representative.Version,
                 Cluster.Representative.OptLevel,
                 Cluster.Representative.Mode64};
  Spec.Effect = BugEffect::WrongCode;
  Spec.SignatureKey = Cluster.Sig.Key;
  ReproOracle Oracle(Spec);
  EXPECT_TRUE(Oracle.reproduces(Cluster.Representative.WitnessProgram));
}
