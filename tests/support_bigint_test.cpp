//===- tests/support_bigint_test.cpp - BigInt unit tests -----------------===//

#include "support/BigInt.h"

#include "gtest/gtest.h"

#include <cmath>

using namespace spe;

TEST(BigIntTest, DefaultIsZero) {
  BigInt Zero;
  EXPECT_TRUE(Zero.isZero());
  EXPECT_EQ(Zero.toString(), "0");
  EXPECT_EQ(Zero.toUint64(), 0u);
  EXPECT_EQ(Zero.numDecimalDigits(), 1u);
}

TEST(BigIntTest, SmallValuesRoundTrip) {
  for (uint64_t V : {1ull, 9ull, 10ull, 999ull, 1000000007ull,
                     18446744073709551615ull}) {
    BigInt B(V);
    EXPECT_EQ(B.toString(), std::to_string(V));
    EXPECT_EQ(B.toUint64(), V);
  }
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt Max(18446744073709551615ull);
  BigInt Result = Max + BigInt(1);
  EXPECT_EQ(Result.toString(), "18446744073709551616");
  EXPECT_FALSE(Result.fitsInUint64());
}

TEST(BigIntTest, SubtractionBorrowsAcrossLimbs) {
  BigInt TwoTo64 = BigInt::pow(2, 64);
  BigInt Result = TwoTo64 - BigInt(1);
  EXPECT_EQ(Result.toString(), "18446744073709551615");
  EXPECT_TRUE((TwoTo64 - TwoTo64).isZero());
}

TEST(BigIntTest, MultiplicationMatchesKnownPowers) {
  EXPECT_EQ(BigInt::pow(2, 100).toString(), "1267650600228229401496703205376");
  EXPECT_EQ(BigInt::pow(10, 30).toString(),
            std::string("1") + std::string(30, '0'));
  EXPECT_EQ(BigInt::pow(3, 0).toString(), "1");
  EXPECT_EQ(BigInt::pow(0, 5).toString(), "0");
  EXPECT_EQ(BigInt::pow(0, 0).toString(), "1");
}

TEST(BigIntTest, BigTimesBig) {
  BigInt A = BigInt::pow(2, 100);
  BigInt B = BigInt::pow(5, 100);
  // 2^100 * 5^100 = 10^100.
  EXPECT_EQ((A * B).toString(), BigInt::pow(10, 100).toString());
}

TEST(BigIntTest, MultiplySmall) {
  BigInt A = BigInt::pow(10, 25);
  A *= 7;
  EXPECT_EQ(A.toString(), "7" + std::string(25, '0'));
  A *= 0;
  EXPECT_TRUE(A.isZero());
}

TEST(BigIntTest, DivideBySmall) {
  BigInt A = BigInt::pow(10, 40);
  uint64_t Rem = 123;
  BigInt Q = (A + BigInt(123)).divideBySmall(10, &Rem);
  EXPECT_EQ(Rem, 3u);
  EXPECT_EQ(Q.toString(), "1" + std::string(37, '0') + "12");
}

TEST(BigIntTest, DivideExact) {
  BigInt A = BigInt::pow(7, 30);
  uint64_t Rem = 1;
  BigInt Q = A.divideBySmall(7, &Rem);
  EXPECT_EQ(Rem, 0u);
  EXPECT_EQ((Q * 7ull).toString(), A.toString());
}

TEST(BigIntTest, ComparisonOrdering) {
  BigInt A(5), B(7);
  BigInt C = BigInt::pow(2, 200);
  EXPECT_LT(A.compare(B), 0);
  EXPECT_GT(B.compare(A), 0);
  EXPECT_EQ(A.compare(BigInt(5)), 0);
  EXPECT_TRUE(B < C);
  EXPECT_TRUE(C >= B);
  EXPECT_TRUE(C == C);
}

TEST(BigIntTest, FromDecimalStringRoundTrip) {
  const std::string Digits = "123456789012345678901234567890123456789";
  EXPECT_EQ(BigInt::fromDecimalString(Digits).toString(), Digits);
  EXPECT_EQ(BigInt::fromDecimalString("0").toString(), "0");
  EXPECT_EQ(BigInt::fromDecimalString("007").toString(), "7");
}

TEST(BigIntTest, Log10Accuracy) {
  EXPECT_NEAR(BigInt(1000).log10(), 3.0, 1e-9);
  EXPECT_NEAR(BigInt::pow(10, 163).log10(), 163.0, 1e-6);
  EXPECT_NEAR(BigInt::pow(2, 64).log10(), 64.0 * std::log10(2.0), 1e-6);
  EXPECT_TRUE(std::isinf(BigInt(0).log10()));
}

TEST(BigIntTest, NumDecimalDigits) {
  EXPECT_EQ(BigInt(9).numDecimalDigits(), 1u);
  EXPECT_EQ(BigInt(10).numDecimalDigits(), 2u);
  EXPECT_EQ(BigInt::pow(10, 50).numDecimalDigits(), 51u);
}

TEST(BigIntTest, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(42).toDouble(), 42.0);
  EXPECT_NEAR(BigInt::pow(2, 70).toDouble(), std::pow(2.0, 70.0), 1e6);
  EXPECT_TRUE(std::isinf(BigInt::pow(10, 400).toDouble()));
}

TEST(BigIntTest, AccumulatedSumMatchesClosedForm) {
  // sum_{i=0..999} i = 499500, built through += on a growing accumulator.
  BigInt Sum;
  for (uint64_t I = 0; I < 1000; ++I)
    Sum += BigInt(I);
  EXPECT_EQ(Sum.toUint64(), 499500u);
}

TEST(BigIntTest, NumBitsAndBitAccess) {
  EXPECT_EQ(BigInt(0).numBits(), 0u);
  EXPECT_EQ(BigInt(1).numBits(), 1u);
  EXPECT_EQ(BigInt(255).numBits(), 8u);
  EXPECT_EQ(BigInt::pow(2, 64).numBits(), 65u);
  BigInt V = BigInt::pow(2, 100);
  EXPECT_TRUE(V.bit(100));
  EXPECT_FALSE(V.bit(99));
  EXPECT_FALSE(V.bit(101));
  EXPECT_FALSE(V.bit(500));
}

TEST(BigIntTest, DivmodSmallValues) {
  BigInt Q, R;
  BigInt::divmod(BigInt(17), BigInt(5), Q, R);
  EXPECT_EQ(Q.toUint64(), 3u);
  EXPECT_EQ(R.toUint64(), 2u);
  BigInt::divmod(BigInt(4), BigInt(9), Q, R);
  EXPECT_TRUE(Q.isZero());
  EXPECT_EQ(R.toUint64(), 4u);
  BigInt::divmod(BigInt(0), BigInt(3), Q, R);
  EXPECT_TRUE(Q.isZero());
  EXPECT_TRUE(R.isZero());
}

TEST(BigIntTest, DivmodLargeValuesRoundTrip) {
  // Quotient * Divisor + Remainder must reconstruct the dividend exactly,
  // across multi-limb dividends and divisors.
  const BigInt Dividends[] = {
      BigInt::pow(10, 163), BigInt::pow(2, 200) + BigInt(12345),
      BigInt::fromDecimalString("987654321098765432109876543210"),
  };
  const BigInt Divisors[] = {
      BigInt(7), BigInt::pow(2, 64), BigInt::pow(10, 50) + BigInt(3),
      BigInt::fromDecimalString("18446744073709551629"),
  };
  for (const BigInt &A : Dividends) {
    for (const BigInt &B : Divisors) {
      BigInt Q, R;
      BigInt::divmod(A, B, Q, R);
      EXPECT_TRUE(R < B);
      EXPECT_EQ(Q * B + R, A) << A.toString() << " / " << B.toString();
    }
  }
}

TEST(BigIntTest, DivisionOperators) {
  BigInt A = BigInt::pow(3, 120);
  BigInt B = BigInt::pow(3, 40);
  EXPECT_EQ(A / B, BigInt::pow(3, 80));
  EXPECT_TRUE((A % B).isZero());
  EXPECT_EQ((A + BigInt(5)) % B, BigInt(5));
  EXPECT_EQ(A / A, BigInt(1));
  EXPECT_EQ(A / (A + BigInt(1)), BigInt(0));
}
