//===- tests/testing_matrix_equivalence_test.cpp - matrix battery --------===//
//
// The equivalence battery behind the N-way differential matrix (DESIGN.md
// Section 14). The matrix generalizes the campaign loop along two axes --
// N backends per variant, M sweep inputs per compiled artifact -- and the
// guarantee that makes it trustworthy is degeneration: with N=2 (the
// reference oracle plus one backend) and M=1 (the single empty-stdin
// execution) the generalized loop must be bit-identical to the classic
// campaign, and a genuine matrix campaign must be bit-identical across
// thread counts, batch sizes, and kill/resume points, because the batched
// pipeline, the unbatched inline loop, and the resumed continuation are
// three different code paths over the same deterministic rank stream.
//
//===----------------------------------------------------------------------===//

#include "compiler/Passes.h"
#include "persist/Checkpoint.h"
#include "testing/Corpus.h"
#include "testing/Harness.h"

#include "gtest/gtest.h"

#include <filesystem>

using namespace spe;

namespace {

/// An InProcessBackend clone under its own identity. Behaviorally
/// identical to the default backend, so a matrix over clones exercises the
/// full N-way compile/execute/vote machinery while every cell agrees --
/// the determinism tests isolate the plumbing, not divergence handling.
struct CloneBackend : CompilerBackend {
  InProcessBackend Inner;
  std::string Name;
  CloneBackend(std::string Name, bool InjectBugs)
      : Inner(InjectBugs), Name(std::move(Name)) {}
  std::string identity() const override { return Name; }
  bool hasGroundTruth() const override { return true; }
  BackendObservation run(const std::string &S, const CompilerConfig &C,
                         CoverageRegistry *Cov) const override {
    return Inner.run(S, C, Cov);
  }
  BackendObservation runWithInput(const std::string &S,
                                  const CompilerConfig &C,
                                  const std::string &In,
                                  CoverageRegistry *Cov) const override {
    return Inner.runWithInput(S, C, In, Cov);
  }
  std::vector<BackendObservation>
  runSweep(const std::string &S, const CompilerConfig &C,
           const std::vector<std::string> &Ins,
           CoverageRegistry *Cov) const override {
    return Inner.runSweep(S, C, Ins, Cov);
  }
};

/// Seeds whose enumeration reaches injected-bug triggers, plus one seed
/// that reads the sweep: spe_input() feeds the comparison different
/// behavior per input, so M > 1 exercises real per-cell verdicts instead
/// of M copies of the same execution.
std::vector<std::string> matrixSeeds() {
  const std::vector<std::string> &Embedded = embeddedSeeds();
  return {Embedded[0],
          "int main(void) {\n"
          "  int a = spe_input();\n"
          "  int b = 3, c = 1;\n"
          "  c = c - b;\n"
          "  if (a > c)\n"
          "    c = a - c;\n"
          "  return c * 10 + b;\n"
          "}\n",
          Embedded[2]};
}

HarnessOptions classicOptions(unsigned Threads, uint64_t BatchSize) {
  HarnessOptions Opts;
  Opts.Configs = HarnessOptions::crashMatrix(Persona::GccSim, 48);
  Opts.VariantBudget = 30;
  Opts.Threads = Threads;
  Opts.BatchSize = BatchSize;
  return Opts;
}

/// A real matrix shape: three backends (the default in-process primary
/// plus two clones) x four sweep inputs on every config.
HarnessOptions matrixOptions(unsigned Threads, uint64_t BatchSize,
                             const CloneBackend &B, const CloneBackend &C) {
  HarnessOptions Opts = classicOptions(Threads, BatchSize);
  for (CompilerConfig &Config : Opts.Configs)
    Config.ExecSweep = {"1\n", "7\n", "-3\n", "100\n"};
  Opts.ExtraBackends = {&B, &C};
  return Opts;
}

struct RunOutput {
  CampaignResult Result;
  CoverageRegistry Cov;
};

RunOutput runWith(const HarnessOptions &Base) {
  RunOutput Out;
  registerPassCoverageCatalog(Out.Cov);
  HarnessOptions Opts = Base;
  Opts.Cov = &Out.Cov;
  Out.Result = DifferentialHarness(Opts).runCampaign(matrixSeeds());
  return Out;
}

void expectIdentical(const RunOutput &A, const RunOutput &B,
                     const std::string &Tag) {
  EXPECT_TRUE(A.Result == B.Result)
      << Tag << ": results diverged (" << A.Result.VariantsTested << "/"
      << B.Result.VariantsTested << " tested, "
      << A.Result.RawFindings.size() << "/" << B.Result.RawFindings.size()
      << " raw findings, " << A.Result.MatrixCellsCompared << "/"
      << B.Result.MatrixCellsCompared << " cells)";
  EXPECT_EQ(A.Cov.hitSet(), B.Cov.hitSet()) << Tag;
}

} // namespace

//===----------------------------------------------------------------------===//
// Degeneration: N=2 / M=1 is the classic campaign
//===----------------------------------------------------------------------===//

TEST(MatrixEquivalenceTest, ClassicCampaignIsIdenticalAcrossThreadsAndBatch) {
  // The N=2/M=1 configuration (no ExtraBackends, no ExecSweep) must stay
  // the classic single-backend campaign, bit for bit, on every execution
  // strategy: the unbatched loop (BatchSize 1), the batched pipeline
  // (BatchSize 8), and any worker count.
  RunOutput Ref = runWith(classicOptions(1, 1));
  EXPECT_FALSE(Ref.Result.RawFindings.empty());
  // The matrix counters must be inert in a classic campaign.
  EXPECT_EQ(Ref.Result.MatrixCellsCompared, 0u);
  EXPECT_EQ(Ref.Result.SweepCellsExcluded, 0u);
  // And classic findings must not carry matrix attribution: the sole
  // backend is implied, which is what keeps signatures and checkpoint
  // bytes unchanged from the pre-matrix format.
  for (const auto &KV : Ref.Result.RawFindings) {
    EXPECT_EQ(KV.first.BackendIdx, 0u);
    EXPECT_EQ(KV.first.InputIdx, 0u);
    EXPECT_EQ(KV.second.Backend, "");
    EXPECT_EQ(KV.second.Input, "");
  }
  for (unsigned Threads : {1u, 2u, 4u})
    for (uint64_t Batch : {uint64_t(1), uint64_t(8)}) {
      if (Threads == 1 && Batch == 1)
        continue;
      expectIdentical(runWith(classicOptions(Threads, Batch)), Ref,
                      "classic t" + std::to_string(Threads) + " b" +
                          std::to_string(Batch));
    }
}

TEST(MatrixEquivalenceTest, EmptySweepEqualsSingletonEmptySweep) {
  // M=1 written explicitly (ExecSweep {""}) must degenerate to no sweep at
  // all: configInputs maps both to the same single empty-stdin execution.
  RunOutput Plain = runWith(classicOptions(2, 4));
  HarnessOptions Explicit = classicOptions(2, 4);
  for (CompilerConfig &Config : Explicit.Configs)
    Config.ExecSweep = {""};
  expectIdentical(runWith(Explicit), Plain, "explicit M=1");
}

//===----------------------------------------------------------------------===//
// Matrix determinism: threads x batch sizes
//===----------------------------------------------------------------------===//

TEST(MatrixEquivalenceTest, MatrixCampaignIsDeterministic) {
  CloneBackend B("minicc-cloneB", true), C("minicc-cloneC", true);
  RunOutput Ref = runWith(matrixOptions(1, 1, B, C));
  // The matrix must have actually engaged: per-cell comparisons happened,
  // and with agreeing clones the finding stream still attributes per
  // roster slot (the same ground-truth bug observed by three backends is
  // three raw findings).
  EXPECT_GT(Ref.Result.MatrixCellsCompared, 0u);
  EXPECT_FALSE(Ref.Result.RawFindings.empty());
  bool SawExtraSlot = false;
  for (const auto &KV : Ref.Result.RawFindings)
    SawExtraSlot |= KV.first.BackendIdx > 0;
  EXPECT_TRUE(SawExtraSlot)
      << "no finding was attributed to an ExtraBackends roster slot";
  for (unsigned Threads : {1u, 2u, 4u})
    for (uint64_t Batch : {uint64_t(1), uint64_t(8)}) {
      if (Threads == 1 && Batch == 1)
        continue;
      expectIdentical(runWith(matrixOptions(Threads, Batch, B, C)), Ref,
                      "matrix t" + std::to_string(Threads) + " b" +
                          std::to_string(Batch));
    }
}

TEST(MatrixEquivalenceTest, SweepInputsReachProgramBehavior) {
  // The spe_input() seed must produce different oracle verdicts across the
  // sweep -- otherwise M executions are one execution copied M times and
  // the matrix proves nothing. Detect via the harness itself: a sweep
  // campaign must compare strictly more cells than configs x variants
  // (i.e. the extra inputs were actually executed and compared).
  CloneBackend B("minicc-cloneB", true), C("minicc-cloneC", true);
  RunOutput Swept = runWith(matrixOptions(1, 1, B, C));
  HarnessOptions OneInput = matrixOptions(1, 1, B, C);
  for (CompilerConfig &Config : OneInput.Configs)
    Config.ExecSweep = {"1\n"};
  RunOutput Single = runWith(OneInput);
  EXPECT_GT(Swept.Result.MatrixCellsCompared,
            Single.Result.MatrixCellsCompared);
}

//===----------------------------------------------------------------------===//
// Resume-mid-matrix: the kill-point battery
//===----------------------------------------------------------------------===//

namespace {

struct TempDir {
  std::string Dir;
  explicit TempDir(const std::string &Name)
      : Dir("matrix_test_tmp/" + Name) {
    std::filesystem::remove_all(Dir);
    std::filesystem::create_directories(Dir);
  }
  std::string path(const char *File) const { return Dir + "/" + File; }
};

} // namespace

TEST(MatrixEquivalenceTest, ResumeMidMatrixIsExact) {
  CloneBackend B("minicc-cloneB", true), C("minicc-cloneC", true);
  std::vector<std::string> Seeds = matrixSeeds();

  HarnessOptions RefOpts = matrixOptions(2, 4, B, C);
  RefOpts.CheckpointEveryN = 5;
  TempDir RefT("ref");
  RunOutput Ref;
  registerPassCoverageCatalog(Ref.Cov);
  {
    HarnessOptions Opts = RefOpts;
    Opts.Cov = &Ref.Cov;
    Opts.CheckpointPath = RefT.path("campaign.ck");
    Ref.Result = DifferentialHarness(Opts).runCampaign(Seeds);
  }

  for (uint64_t KillAfter : {uint64_t(3), uint64_t(11), uint64_t(26),
                             uint64_t(47)}) {
    TempDir T("kill_" + std::to_string(KillAfter));
    {
      // The "crashed process": a batch may be mid-flight across the whole
      // roster when the kill lands; its tickets are abandoned.
      CoverageRegistry CrashCov;
      registerPassCoverageCatalog(CrashCov);
      HarnessOptions Opts = RefOpts;
      Opts.Cov = &CrashCov;
      Opts.CheckpointPath = T.path("campaign.ck");
      Opts.SimulateCrashAfter = KillAfter;
      DifferentialHarness(Opts).runCampaign(Seeds);
    }
    RunOutput Resumed;
    registerPassCoverageCatalog(Resumed.Cov);
    HarnessOptions Opts = RefOpts;
    Opts.Cov = &Resumed.Cov;
    Opts.CheckpointPath = T.path("campaign.ck");
    std::string Err;
    ASSERT_TRUE(DifferentialHarness(Opts).resumeCampaign(Seeds,
                                                         Resumed.Result, Err))
        << "kill@" << KillAfter << ": " << Err;
    expectIdentical(Resumed, Ref, "kill@" + std::to_string(KillAfter));
  }
}

TEST(MatrixEquivalenceTest, RosterAndSweepSkewRejectTheResume) {
  // The checkpoint fingerprints the full roster identity list and every
  // config's sweep: resuming the same file under a different matrix shape
  // must be refused, not silently diverge.
  CloneBackend B("minicc-cloneB", true), C("minicc-cloneC", true);
  std::vector<std::string> Seeds = matrixSeeds();
  TempDir T("skew");
  HarnessOptions Opts = matrixOptions(1, 1, B, C);
  Opts.CheckpointPath = T.path("campaign.ck");
  DifferentialHarness(Opts).runCampaign(Seeds);

  CampaignResult Ignored;
  std::string Err;
  {
    // Dropped roster slot.
    HarnessOptions Skew = Opts;
    Skew.ExtraBackends = {&B};
    EXPECT_FALSE(
        DifferentialHarness(Skew).resumeCampaign(Seeds, Ignored, Err));
  }
  {
    // Same roster size, different identity.
    CloneBackend D("minicc-cloneD", true);
    HarnessOptions Skew = Opts;
    Skew.ExtraBackends = {&B, &D};
    EXPECT_FALSE(
        DifferentialHarness(Skew).resumeCampaign(Seeds, Ignored, Err));
  }
  {
    // Extended sweep.
    HarnessOptions Skew = Opts;
    for (CompilerConfig &Config : Skew.Configs)
      Config.ExecSweep.push_back("9\n");
    EXPECT_FALSE(
        DifferentialHarness(Skew).resumeCampaign(Seeds, Ignored, Err));
  }
}
