//===- tests/reduce_pipeline_test.cpp - reducer + minimizer --------------===//
//
// The reduction half of the triage pipeline, bottom up:
//
//   * the AstPrinter hooks it rides on (statement elision, top-level decl
//     deletion, expression replacement) render exactly what they promise
//     and re-parse cleanly;
//   * ReproOracle accepts the original finding and rejects programs that
//     are invalid or show a different signature, memoizing through a shared
//     OracleCache;
//   * SkeletonReducer shrinks real campaign witnesses while -- the core
//     soundness property -- the reduced witness still triggers the original
//     ground-truth bug under its original configuration;
//   * VariantMinimizer returns a reproducer at the lowest triggering rank
//     of the witness's own skeleton, deterministically.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "reduce/BugRepro.h"
#include "reduce/SkeletonReducer.h"
#include "reduce/VariantMinimizer.h"
#include "sema/Sema.h"
#include "testing/Corpus.h"
#include "testing/Harness.h"
#include "testing/OracleCache.h"
#include "triage/BugSignature.h"

#include "gtest/gtest.h"

#include <memory>

using namespace spe;

namespace {

std::unique_ptr<ASTContext> parseAndAnalyze(const std::string &Source,
                                            std::unique_ptr<Sema> &Analysis) {
  auto Ctx = std::make_unique<ASTContext>();
  DiagnosticEngine Diags;
  if (!Parser::parse(Source, *Ctx, Diags))
    return nullptr;
  Analysis = std::make_unique<Sema>(*Ctx, Diags);
  if (!Analysis->run())
    return nullptr;
  return Ctx;
}

/// Runs the embedded-seed two-persona campaign once and returns its result.
CampaignResult embeddedCampaign() {
  OracleCache Cache;
  CampaignResult Total;
  for (Persona P : {Persona::GccSim, Persona::ClangSim}) {
    HarnessOptions Opts;
    Opts.Configs =
        HarnessOptions::crashMatrix(P, P == Persona::GccSim ? 70 : 40);
    Opts.VariantBudget = 200;
    Opts.Cache = &Cache;
    Total.merge(DifferentialHarness(Opts).runCampaign(embeddedSeeds()));
  }
  return Total;
}

ReproSpec specOf(const FoundBug &Bug) {
  ReproSpec Spec;
  Spec.Config = {Bug.P, Bug.Version, Bug.OptLevel, Bug.Mode64};
  Spec.Effect = Bug.Effect;
  Spec.SignatureKey = normalizeSignature(Bug.Effect, Bug.Signature);
  return Spec;
}

/// Ground-truth check: compiling \p Source under \p Bug's configuration
/// re-fires the same injected bug id.
bool triggersGroundTruth(const std::string &Source, const FoundBug &Bug) {
  std::unique_ptr<Sema> Analysis;
  auto Ctx = parseAndAnalyze(Source, Analysis);
  if (!Ctx)
    return false;
  MiniCompiler CC({Bug.P, Bug.Version, Bug.OptLevel, Bug.Mode64});
  CompileResult R = CC.compile(*Ctx);
  if (Bug.Effect == BugEffect::Crash)
    return R.crashed() && R.CrashBugId == Bug.BugId;
  for (int Id : R.FiredBugs)
    if (Id == Bug.BugId)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// AstPrinter reduction hooks
//===----------------------------------------------------------------------===//

TEST(PrinterHooksTest, ElidedStatementsDisappear) {
  const char *Source = "int main(void)\n{\n  int x = 1;\n  int y = 2;\n"
                       "  x = y;\n  return x;\n}\n";
  std::unique_ptr<Sema> Analysis;
  auto Ctx = parseAndAnalyze(Source, Analysis);
  ASSERT_TRUE(Ctx);

  // Find the id of the `x = y;` statement (third child of main's body).
  CompoundStmt *Body = Ctx->functions()[0]->body();
  ASSERT_EQ(Body->body().size(), 4u);
  int AssignId = Body->body()[2]->stmtId();
  ASSERT_GE(AssignId, 0);

  AstPrinter P;
  P.setDeletedStmts({AssignId});
  std::string WithSemi = P.print(*Ctx);
  EXPECT_NE(WithSemi.find("  ;\n"), std::string::npos);
  EXPECT_EQ(WithSemi.find("x = y"), std::string::npos);

  P.setElideDeletedStmts(true);
  std::string Elided = P.print(*Ctx);
  EXPECT_EQ(Elided.find("  ;\n"), std::string::npos);
  EXPECT_EQ(Elided.find("x = y"), std::string::npos);
  EXPECT_LT(tokenCount(Elided), tokenCount(WithSemi));

  // A deleted non-compound if-branch still needs its `;` placeholder.
  const char *Branchy = "int main(void)\n{\n  int x = 1;\n  if (x)\n"
                        "    x = 0;\n  return x;\n}\n";
  std::unique_ptr<Sema> Analysis2;
  auto Ctx2 = parseAndAnalyze(Branchy, Analysis2);
  ASSERT_TRUE(Ctx2);
  auto *If = cast<IfStmt>(Ctx2->functions()[0]->body()->body()[1]);
  AstPrinter P2;
  P2.setDeletedStmts({If->thenStmt()->stmtId()});
  P2.setElideDeletedStmts(true);
  std::string Out = P2.print(*Ctx2);
  EXPECT_NE(Out.find("if (x)\n    ;"), std::string::npos) << Out;
  std::unique_ptr<Sema> Reparse;
  EXPECT_TRUE(parseAndAnalyze(Out, Reparse));
}

TEST(PrinterHooksTest, DeletedDeclsAndReplacedExprs) {
  const char *Source = "int g = 7;\nint h = 8;\nint main(void)\n{\n"
                       "  return h + (3 * 4);\n}\n";
  std::unique_ptr<Sema> Analysis;
  auto Ctx = parseAndAnalyze(Source, Analysis);
  ASSERT_TRUE(Ctx);

  AstPrinter P;
  P.setDeletedDecls({Ctx->TopLevel[0]});
  std::string NoG = P.print(*Ctx);
  EXPECT_EQ(NoG.find("int g"), std::string::npos);
  EXPECT_NE(NoG.find("int h"), std::string::npos);
  std::unique_ptr<Sema> Reparse;
  EXPECT_TRUE(parseAndAnalyze(NoG, Reparse));

  // Replace the whole return value with a literal; bare texts print without
  // parentheses, compound texts gain them.
  auto *Ret = cast<ReturnStmt>(Ctx->functions()[0]->body()->body()[0]);
  AstPrinter PBare;
  PBare.setReplacedExprs({{Ret->value(), "0"}});
  EXPECT_NE(PBare.print(*Ctx).find("return 0;"), std::string::npos);
  AstPrinter PComp;
  PComp.setReplacedExprs({{Ret->value(), "1 + 2"}});
  std::string Comp = PComp.print(*Ctx);
  EXPECT_NE(Comp.find("return (1 + 2);"), std::string::npos);
  std::unique_ptr<Sema> Reparse2;
  EXPECT_TRUE(parseAndAnalyze(Comp, Reparse2));
}

//===----------------------------------------------------------------------===//
// ReproOracle
//===----------------------------------------------------------------------===//

TEST(ReproOracleTest, AcceptsOriginalRejectsOthers) {
  CampaignResult Campaign = embeddedCampaign();
  ASSERT_FALSE(Campaign.UniqueBugs.empty());
  const FoundBug &Bug = Campaign.UniqueBugs.begin()->second;

  OracleCache Cache;
  ReproOracle Oracle(specOf(Bug), &Cache);
  EXPECT_TRUE(Oracle.reproduces(Bug.WitnessProgram));
  // A harmless program shows no signature.
  EXPECT_FALSE(Oracle.reproduces("int main(void)\n{\n  return 0;\n}\n"));
  // Frontend-invalid and oracle-rejected candidates never reproduce.
  EXPECT_FALSE(Oracle.reproduces("int main(void) { return x; }"));
  EXPECT_FALSE(
      Oracle.reproduces("int main(void)\n{\n  int z;\n  return z;\n}\n"));

  // Repeat probes answer from the memo, not the oracle.
  ReproStats Before = Oracle.stats();
  EXPECT_TRUE(Oracle.reproduces(Bug.WitnessProgram));
  EXPECT_EQ(Oracle.stats().MemoHits, Before.MemoHits + 1);
  EXPECT_EQ(Oracle.stats().OracleRuns, Before.OracleRuns);

  // A fresh oracle sharing the cache replays verdicts instead of re-running
  // the interpreter.
  ReproOracle Second(specOf(Bug), &Cache);
  EXPECT_TRUE(Second.reproduces(Bug.WitnessProgram));
  EXPECT_EQ(Second.stats().OracleRuns, 0u);
  EXPECT_EQ(Second.stats().OracleCacheHits, 1u);
}

//===----------------------------------------------------------------------===//
// SkeletonReducer
//===----------------------------------------------------------------------===//

TEST(SkeletonReducerTest, ShrinksCampaignWitnessesAndPreservesGroundTruth) {
  CampaignResult Campaign = embeddedCampaign();
  ASSERT_FALSE(Campaign.UniqueBugs.empty());

  OracleCache Cache;
  SkeletonReducer Reducer({}, &Cache);
  uint64_t TotalBefore = 0, TotalAfter = 0;
  for (const auto &[Id, Bug] : Campaign.UniqueBugs) {
    ReproSpec Spec = specOf(Bug);
    ReductionOutcome Out = Reducer.reduce(Bug.WitnessProgram, Spec);
    TotalBefore += Out.TokensBefore;
    TotalAfter += Out.TokensAfter;
    EXPECT_LE(Out.TokensAfter, Out.TokensBefore) << "bug " << Id;

    // Soundness: the reduced witness still reproduces the normalized
    // signature *and* still fires the original injected bug.
    ReproOracle Check(Spec, &Cache);
    EXPECT_TRUE(Check.reproduces(Out.Reduced)) << "bug " << Id;
    EXPECT_TRUE(triggersGroundTruth(Out.Reduced, Bug)) << "bug " << Id;

    // Determinism: reducing the same witness again is bit-identical.
    EXPECT_EQ(Reducer.reduce(Bug.WitnessProgram, Spec).Reduced, Out.Reduced);
  }
  // The pass must actually bite across the set, not just not regress.
  EXPECT_LT(TotalAfter, TotalBefore);
}

TEST(SkeletonReducerTest, BoundedLoopGuardRejectsUnboundedProbesStatically) {
  // A witness whose crash feature (identical conditional arms, the
  // operand_equal_p ICE) sits inside a bounded counter loop. ddmin's
  // natural first move -- delete the counter update, keep the loop --
  // produces probes that diverge; without the guard each one burns a full
  // interpreter step budget before the oracle can reject it (visible as
  // ReproStats::TimeoutRuns), with the guard they are rejected by a parse.
  const std::string Witness = "int main(void)\n{\n"
                              "  int x = 1;\n"
                              "  int y = 2;\n"
                              "  int n = 3;\n"
                              "  while (n > 0)\n"
                              "  {\n"
                              "    x = y > 0 ? x : x;\n"
                              "    n = n - 1;\n"
                              "  }\n"
                              "  return x;\n}\n";
  ReproSpec Spec;
  Spec.Config = {Persona::GccSim, 70, 0, true};
  Spec.Effect = BugEffect::Crash;
  Spec.SignatureKey = normalizeSignature(
      BugEffect::Crash,
      "internal compiler error: in operand_equal_p, at fold-const.c:2977");

  // Sanity: the witness itself reproduces the signature.
  {
    ReproOracle Check(Spec);
    ASSERT_TRUE(Check.reproduces(Witness));
  }

  ReducerOptions GuardOff;
  GuardOff.BoundedLoopGuard = false;
  ReductionOutcome Unguarded = SkeletonReducer(GuardOff).reduce(Witness, Spec);
  EXPECT_GT(Unguarded.Oracle.TimeoutRuns, 0u)
      << "deleting the counter update never produced a diverging probe -- "
         "the regression scenario is not being exercised";
  EXPECT_EQ(Unguarded.UnboundedLoopProbesRejected, 0u);

  ReductionOutcome Guarded = SkeletonReducer().reduce(Witness, Spec);
  EXPECT_EQ(Guarded.Oracle.TimeoutRuns, 0u)
      << "a statically unbounded probe still reached the oracle";
  EXPECT_GT(Guarded.UnboundedLoopProbesRejected, 0u);

  // The guard is an optimization, not a semantics change: the reduced
  // witness still reproduces, and the conditional-arms feature survived.
  ReproOracle Check(Spec);
  EXPECT_TRUE(Check.reproduces(Guarded.Reduced));
  EXPECT_LT(Guarded.TokensAfter, Guarded.TokensBefore);
}

TEST(SkeletonReducerTest, NonReproducingWitnessIsReturnedUnchanged) {
  ReproSpec Spec;
  Spec.Config = {Persona::GccSim, 70, 3, true};
  Spec.Effect = BugEffect::Crash;
  Spec.SignatureKey = "no such signature";
  SkeletonReducer Reducer;
  const std::string Benign = "int main(void)\n{\n  return 0;\n}\n";
  ReductionOutcome Out = Reducer.reduce(Benign, Spec);
  EXPECT_EQ(Out.Reduced, Benign);
  EXPECT_EQ(Out.TokensBefore, Out.TokensAfter);
  EXPECT_EQ(Out.StatementsDeleted, 0u);
}

//===----------------------------------------------------------------------===//
// VariantMinimizer
//===----------------------------------------------------------------------===//

TEST(VariantMinimizerTest, FindsLowestTriggeringRank) {
  CampaignResult Campaign = embeddedCampaign();
  ASSERT_FALSE(Campaign.UniqueBugs.empty());

  OracleCache Cache;
  VariantMinimizer Minimizer({}, &Cache);
  unsigned Checked = 0;
  for (const auto &[Id, Bug] : Campaign.UniqueBugs) {
    ReproSpec Spec = specOf(Bug);
    MinimizeOutcome Out = Minimizer.minimize(Bug.WitnessProgram, Spec);
    ASSERT_FALSE(Out.Minimized.empty());

    // Whatever came back still reproduces (the witness itself always does).
    ReproOracle Check(Spec, &Cache);
    EXPECT_TRUE(Check.reproduces(Out.Minimized)) << "bug " << Id;

    // Alpha-renaming invariance of the skeleton: rank search never changes
    // the token count, only the variable choice.
    EXPECT_EQ(tokenCount(Out.Minimized), tokenCount(Bug.WitnessProgram));

    // Determinism.
    MinimizeOutcome Again = Minimizer.minimize(Bug.WitnessProgram, Spec);
    EXPECT_EQ(Again.Minimized, Out.Minimized);
    EXPECT_EQ(Again.Rank, Out.Rank);
    if (Out.FoundAtRank)
      ++Checked;
  }
  EXPECT_GT(Checked, 0u);
}
