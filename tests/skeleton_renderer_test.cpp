//===- tests/skeleton_renderer_test.cpp - variant rendering tests --------===//

#include "lang/Parser.h"
#include "sema/Sema.h"
#include "skeleton/ProgramEnumerator.h"
#include "skeleton/VariantRenderer.h"

#include "gtest/gtest.h"

#include <set>

using namespace spe;

namespace {

struct Pipeline {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  std::unique_ptr<Sema> Analysis;
  std::vector<SkeletonUnit> Units;
};

std::unique_ptr<Pipeline> extract(const std::string &Source,
                                  ExtractorOptions Opts = {}) {
  auto P = std::make_unique<Pipeline>();
  EXPECT_TRUE(Parser::parse(Source, P->Ctx, P->Diags)) << P->Diags.toString();
  P->Analysis = std::make_unique<Sema>(P->Ctx, P->Diags);
  EXPECT_TRUE(P->Analysis->run()) << P->Diags.toString();
  SkeletonExtractor Ex(P->Ctx, *P->Analysis, Opts);
  P->Units = Ex.extract();
  return P;
}

/// Every rendered variant must itself parse and pass sema.
bool isValidProgram(const std::string &Source) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  if (!Parser::parse(Source, Ctx, Diags))
    return false;
  Sema Analysis(Ctx, Diags);
  return Analysis.run();
}

} // namespace

TEST(VariantRendererTest, IdentityAssignmentReproducesOriginal) {
  auto P = extract("int a, b;\nvoid f(void) { a = a - b; if (b) b = 1; }\n");
  VariantRenderer Renderer(P->Ctx, P->Units);
  std::string Original = Renderer.renderOriginal();
  std::string Identity = Renderer.render(Renderer.identityAssignment());
  EXPECT_EQ(Original, Identity);
}

TEST(VariantRendererTest, SubstitutionChangesOnlyUseSites) {
  auto P = extract("int a, b;\nvoid f(void) { b = b - a; }\n");
  const SkeletonUnit &U = P->Units[0];
  ASSERT_EQ(U.Skeleton.numHoles(), 3u);
  // Fill all three holes with 'a'.
  VarId A = 0;
  EXPECT_EQ(U.Skeleton.var(A).Name, "a");
  VariantRenderer Renderer(P->Ctx, P->Units);
  std::string Variant = Renderer.render({Assignment{A, A, A}});
  EXPECT_NE(Variant.find("a = a - a;"), std::string::npos) << Variant;
  // The declaration is untouched.
  EXPECT_NE(Variant.find("int a"), std::string::npos);
  EXPECT_NE(Variant.find("int b"), std::string::npos);
}

TEST(VariantRendererTest, AllEnumeratedVariantsAreValidPrograms) {
  auto P = extract("int main(void) {\n"
                   "  int a = 1, b = 0;\n"
                   "  if (a) {\n"
                   "    int c = 3, d = 5;\n"
                   "    b = c + d;\n"
                   "  }\n"
                   "  return b - a;\n"
                   "}\n");
  VariantRenderer Renderer(P->Ctx, P->Units);
  ProgramEnumerator Enum(P->Units, SpeMode::Exact);
  std::set<std::string> Sources;
  uint64_t Produced = Enum.enumerate([&](const ProgramAssignment &PA) {
    std::string Source = Renderer.render(PA);
    EXPECT_TRUE(isValidProgram(Source)) << Source;
    EXPECT_TRUE(Sources.insert(Source).second) << "duplicate variant";
    return true;
  });
  EXPECT_EQ(Produced, Sources.size());
  EXPECT_GT(Produced, 10u);
  // The identity variant is among them (enumeration is exhaustive and the
  // original realizes its own skeleton).
  EXPECT_TRUE(Sources.count(Renderer.renderOriginal()));
}

TEST(VariantRendererTest, PaperExampleFigure1Variants) {
  // Figure 1 of the paper: P2 replaces b-a with b-b, P3 additionally flips
  // the if and body holes. Both must be among the enumerated variants.
  auto P = extract("int a, b;\n"
                   "void f(void) {\n"
                   "  b = b - a;\n"
                   "  if (a)\n"
                   "    a = a - b;\n"
                   "}\n");
  VariantRenderer Renderer(P->Ctx, P->Units);
  ProgramEnumerator Enum(P->Units, SpeMode::Exact);
  std::set<std::string> Sources;
  Enum.enumerate([&](const ProgramAssignment &PA) {
    Sources.insert(Renderer.render(PA));
    return true;
  });
  bool FoundP2Shape = false, FoundP3Shape = false;
  for (const std::string &S : Sources) {
    if (S.find("a = b - b;") != std::string::npos &&
        S.find("if (a)") != std::string::npos)
      FoundP2Shape = true;
    if (S.find("a = b - b;") != std::string::npos &&
        S.find("if (b)") != std::string::npos &&
        S.find("a = b - b;") == S.rfind("a = b - b;"))
      FoundP3Shape = FoundP3Shape || S.find("if (b)") != std::string::npos;
  }
  EXPECT_TRUE(FoundP2Shape);
  EXPECT_TRUE(FoundP3Shape);
}

TEST(VariantRendererTest, MultiUnitProgramsRenderConsistently) {
  auto P = extract("int g;\n"
                   "void f(void) { g = 1; }\n"
                   "int main(void) { int x; x = g; return x; }\n");
  VariantRenderer Renderer(P->Ctx, P->Units);
  ProgramEnumerator Enum(P->Units, SpeMode::Exact);
  uint64_t Produced = Enum.enumerate([&](const ProgramAssignment &PA) {
    EXPECT_TRUE(isValidProgram(Renderer.render(PA)));
    return true;
  });
  BigInt Expected = Enum.countSpe();
  EXPECT_EQ(BigInt(Produced).toString(), Expected.toString());
}

TEST(VariantRendererTest, RoundTripPrintParsePrintIsStable) {
  const char *Source = "struct s { int x; };\n"
                       "struct s v;\n"
                       "int arr[3] = {1, 2, 3};\n"
                       "int f(int n) {\n"
                       "  int acc = 0;\n"
                       "  for (int i = 0; i < n; ++i)\n"
                       "    acc += arr[i] * (n - 1) / 2 % 7;\n"
                       "  while (acc > 100 && n)\n"
                       "    acc = acc - (v.x ? 1 : 2);\n"
                       "  return -acc;\n"
                       "}\n";
  auto P1 = extract(Source);
  std::string Printed1 = VariantRenderer(P1->Ctx, P1->Units).renderOriginal();
  auto P2 = extract(Printed1);
  std::string Printed2 = VariantRenderer(P2->Ctx, P2->Units).renderOriginal();
  EXPECT_EQ(Printed1, Printed2);
}

TEST(VariantRendererTest, RenderIntoReusesBuffersAcrossVariants) {
  // The batch path must agree with the one-shot path for every variant, and
  // repeated renders into the same buffer must not leak previous content.
  auto P = extract("int a, b;\nvoid f(void) { a = a - b; b = a + b; }\n");
  VariantRenderer Batch(P->Ctx, P->Units);
  VariantRenderer Fresh(P->Ctx, P->Units);
  ProgramEnumerator Enum(P->Units, SpeMode::Exact);
  std::string Buffer;
  Enum.enumerate([&](const ProgramAssignment &PA) {
    Batch.renderInto(PA, Buffer);
    EXPECT_EQ(Buffer, Fresh.render(PA));
    return true;
  });
  // After a long variant, a short one must not retain stale bytes.
  ProgramAssignment Identity = Batch.identityAssignment();
  std::string Once = Batch.render(Identity);
  Batch.renderInto(Identity, Buffer);
  EXPECT_EQ(Buffer, Once);
}
