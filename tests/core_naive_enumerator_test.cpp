//===- tests/core_naive_enumerator_test.cpp - naive enumeration tests ----===//

#include "core/NaiveEnumerator.h"

#include "gtest/gtest.h"

#include <cmath>
#include <set>

using namespace spe;

namespace {

AbstractSkeleton makeFlatSkeleton(unsigned NumVars, unsigned NumHoles) {
  AbstractSkeleton Sk;
  for (unsigned I = 0; I < NumVars; ++I)
    Sk.addVariable("v" + std::to_string(I), AbstractSkeleton::rootScope(), 0);
  for (unsigned I = 0; I < NumHoles; ++I)
    Sk.addHole(AbstractSkeleton::rootScope(), 0);
  return Sk;
}

} // namespace

TEST(NaiveEnumeratorTest, Figure5CountIs64) {
  // Figure 5: skeleton with 6 holes over {a, b} realizes 2^6 = 64 programs.
  AbstractSkeleton Sk = makeFlatSkeleton(2, 6);
  NaiveEnumerator Naive(Sk);
  EXPECT_EQ(Naive.count().toUint64(), 64u);
}

TEST(NaiveEnumeratorTest, Figure6ScopedCountIs32768) {
  // Figure 6: with scope information the naive approach enumerates
  // 2^5 * 4^5 = 32768 programs instead of 4^10.
  AbstractSkeleton Sk;
  ScopeId Root = AbstractSkeleton::rootScope();
  ScopeId Inner = Sk.addScope(Root);
  Sk.addVariable("a", Root, 0);
  Sk.addVariable("b", Root, 0);
  Sk.addVariable("c", Inner, 0);
  Sk.addVariable("d", Inner, 0);
  for (int I = 0; I < 5; ++I)
    Sk.addHole(Root, 0);
  for (int I = 0; I < 5; ++I)
    Sk.addHole(Inner, 0);
  NaiveEnumerator Naive(Sk);
  EXPECT_EQ(Naive.count().toUint64(), 32768u);
}

TEST(NaiveEnumeratorTest, EnumerationMatchesCountAndIsDistinct) {
  AbstractSkeleton Sk = makeFlatSkeleton(3, 4);
  NaiveEnumerator Naive(Sk);
  std::set<Assignment> Seen;
  uint64_t Produced = Naive.enumerate([&](const Assignment &A) {
    EXPECT_TRUE(Seen.insert(A).second) << "duplicate assignment";
    return true;
  });
  EXPECT_EQ(Produced, 81u);
  EXPECT_EQ(Seen.size(), Naive.count().toUint64());
}

TEST(NaiveEnumeratorTest, LimitStopsEnumeration) {
  AbstractSkeleton Sk = makeFlatSkeleton(3, 6);
  NaiveEnumerator Naive(Sk);
  uint64_t Produced =
      Naive.enumerate([](const Assignment &) { return true; }, 10);
  EXPECT_EQ(Produced, 10u);
}

TEST(NaiveEnumeratorTest, CallbackFalseStopsEnumeration) {
  AbstractSkeleton Sk = makeFlatSkeleton(2, 8);
  NaiveEnumerator Naive(Sk);
  uint64_t Count = 0;
  uint64_t Produced = Naive.enumerate([&](const Assignment &) {
    ++Count;
    return Count < 5;
  });
  EXPECT_EQ(Produced, 5u);
}

TEST(NaiveEnumeratorTest, UnfillableHoleYieldsZero) {
  AbstractSkeleton Sk;
  Sk.addVariable("a", AbstractSkeleton::rootScope(), /*Type=*/0);
  Sk.addHole(AbstractSkeleton::rootScope(), /*Type=*/9);
  NaiveEnumerator Naive(Sk);
  EXPECT_TRUE(Naive.count().isZero());
  EXPECT_EQ(Naive.enumerate([](const Assignment &) { return true; }), 0u);
}

TEST(NaiveEnumeratorTest, NoHolesYieldsSingleEmptyAssignment) {
  AbstractSkeleton Sk = makeFlatSkeleton(2, 0);
  NaiveEnumerator Naive(Sk);
  EXPECT_EQ(Naive.count().toUint64(), 1u);
  uint64_t Produced = Naive.enumerate([](const Assignment &A) {
    EXPECT_TRUE(A.empty());
    return true;
  });
  EXPECT_EQ(Produced, 1u);
}

TEST(NaiveEnumeratorTest, HugeCountsDoNotOverflow) {
  // 5 variables, 80 holes: 5^80 ~ 8.27e55.
  AbstractSkeleton Sk = makeFlatSkeleton(5, 80);
  NaiveEnumerator Naive(Sk);
  EXPECT_EQ(Naive.count().toString(), BigInt::pow(5, 80).toString());
  EXPECT_NEAR(Naive.count().log10(), 80.0 * std::log10(5.0), 1e-6);
}

TEST(NaiveEnumeratorTest, ScopedCandidatesVaryPerHole) {
  AbstractSkeleton Sk;
  ScopeId Root = AbstractSkeleton::rootScope();
  ScopeId S1 = Sk.addScope(Root);
  Sk.addVariable("g", Root, 0);
  Sk.addVariable("l", S1, 0);
  Sk.addHole(Root, 0); // Only g.
  Sk.addHole(S1, 0);   // g or l.
  NaiveEnumerator Naive(Sk);
  EXPECT_EQ(Naive.count().toUint64(), 2u);
  std::set<Assignment> Seen;
  Naive.enumerate([&](const Assignment &A) {
    Seen.insert(A);
    return true;
  });
  EXPECT_TRUE(Seen.count({0, 0}));
  EXPECT_TRUE(Seen.count({0, 1}));
}
