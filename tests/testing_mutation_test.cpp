//===- tests/testing_mutation_test.cpp - Orion-style EMI baseline --------===//
//
// Dedicated coverage for testing/Mutation.cpp: the EMI guarantee (mutants
// delete only statements the reference execution never reached, so behavior
// is preserved), determinism, bounds, and the rejection paths.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "lang/Parser.h"
#include "sema/Sema.h"
#include "testing/Corpus.h"
#include "testing/Mutation.h"

#include "gtest/gtest.h"

#include <memory>
#include <set>

using namespace spe;

namespace {

const char *DeadCodeSeed = "int main(void)\n"
                           "{\n"
                           "  int x = 3;\n"
                           "  int y = 4;\n"
                           "  if (x > 10)\n"
                           "  {\n"
                           "    y = 99;\n"
                           "    x = y + 1;\n"
                           "  }\n"
                           "  while (x > 100)\n"
                           "    x = x - 1;\n"
                           "  return x + y;\n"
                           "}\n";

/// Interprets \p Source; \returns nullopt-style failure via Status.
ExecResult run(const std::string &Source) {
  auto Ctx = std::make_unique<ASTContext>();
  DiagnosticEngine Diags;
  ExecResult Fail;
  if (!Parser::parse(Source, *Ctx, Diags))
    return Fail;
  Sema Analysis(*Ctx, Diags);
  if (!Analysis.run())
    return Fail;
  return interpret(*Ctx);
}

} // namespace

TEST(MutationTest, MutantsDeleteOnlyDeadCodeAndPreserveBehavior) {
  ExecResult Ref = run(DeadCodeSeed);
  ASSERT_TRUE(Ref.ok());

  std::vector<std::string> Mutants =
      generateEmiMutants(DeadCodeSeed, /*MaxDeletions=*/2, /*NumMutants=*/8,
                         /*Seed=*/42);
  ASSERT_FALSE(Mutants.empty());
  for (const std::string &Mutant : Mutants) {
    EXPECT_NE(Mutant, DeadCodeSeed);
    ExecResult Mut = run(Mutant);
    ASSERT_TRUE(Mut.ok()) << Mutant;
    // EMI: only never-executed statements were deleted, so the observable
    // behavior is identical to the seed's.
    EXPECT_EQ(Mut.ExitCode, Ref.ExitCode) << Mutant;
    EXPECT_EQ(Mut.Output, Ref.Output) << Mutant;
  }
}

TEST(MutationTest, DeterministicAndDeduplicated) {
  std::vector<std::string> A = generateEmiMutants(DeadCodeSeed, 2, 6, 7);
  std::vector<std::string> B = generateEmiMutants(DeadCodeSeed, 2, 6, 7);
  EXPECT_EQ(A, B);
  std::set<std::string> Unique(A.begin(), A.end());
  EXPECT_EQ(Unique.size(), A.size()) << "duplicate mutants returned";

  std::vector<std::string> C = generateEmiMutants(DeadCodeSeed, 2, 6, 8);
  EXPECT_NE(A, C) << "different RNG seeds should explore different subsets";
}

TEST(MutationTest, RespectsNumMutantsBound) {
  for (unsigned N : {1u, 3u, 10u}) {
    std::vector<std::string> Mutants =
        generateEmiMutants(DeadCodeSeed, 2, N, 3);
    EXPECT_LE(Mutants.size(), N);
    EXPECT_GE(Mutants.size(), 1u);
  }
}

TEST(MutationTest, SingleDeletionMutantsRemoveExactlyOneStatement) {
  // With MaxDeletions=1, each mutant differs from the seed by one deleted
  // statement: re-running it still matches the reference behavior, and its
  // source is strictly shorter.
  std::vector<std::string> Mutants = generateEmiMutants(DeadCodeSeed, 1, 8, 5);
  ASSERT_FALSE(Mutants.empty());
  for (const std::string &Mutant : Mutants)
    EXPECT_LT(Mutant.size(), std::string(DeadCodeSeed).size());
}

TEST(MutationTest, RejectionPaths) {
  // Unparseable input.
  EXPECT_TRUE(generateEmiMutants("int main( {", 2, 4, 1).empty());
  // Oracle-rejected input (uninitialized read is UB).
  EXPECT_TRUE(
      generateEmiMutants("int main(void)\n{\n  int z;\n  return z;\n}\n", 2,
                         4, 1)
          .empty());
  // Fully-executed program: no dead statements to delete.
  EXPECT_TRUE(
      generateEmiMutants("int main(void)\n{\n  int x = 1;\n  x = x + 1;\n"
                         "  return x;\n}\n",
                         2, 4, 1)
          .empty());
}

TEST(MutationTest, WorksAcrossTheGeneratedCorpus) {
  // The generator's programs must round-trip through the mutator without
  // ever producing a behavior-changing mutant.
  unsigned WithMutants = 0;
  for (const std::string &Seed : generateCorpus(500, 12, {})) {
    ExecResult Ref = run(Seed);
    if (!Ref.ok())
      continue;
    std::vector<std::string> Mutants = generateEmiMutants(Seed, 3, 4, 11);
    WithMutants += Mutants.empty() ? 0 : 1;
    for (const std::string &Mutant : Mutants) {
      ExecResult Mut = run(Mutant);
      ASSERT_TRUE(Mut.ok()) << Mutant;
      EXPECT_EQ(Mut.ExitCode, Ref.ExitCode);
      EXPECT_EQ(Mut.Output, Ref.Output);
    }
  }
  EXPECT_GT(WithMutants, 0u);
}
