//===- tests/core_spe_property_test.cpp - randomized SPE properties ------===//
//
// Property-based validation of the enumerators on randomly generated
// skeletons (random scope trees, variables, hole placements, types):
//
//  P1. SpeMode::Exact count == brute-force number of alpha-classes.
//  P2. SpeMode::Exact enumeration emits each class exactly once, as its
//      canonical representative.
//  P3. SpeMode::PaperFaithful enumeration agrees with its own closed-form
//      count and emits a subset of the exact classes (the published
//      algorithm never invents classes, it only misses some).
//  P4. NaiveEnumerator count == product of candidate-set sizes and its
//      enumeration covers every class.
//
//===----------------------------------------------------------------------===//

#include "core/AlphaEquivalence.h"
#include "core/NaiveEnumerator.h"
#include "core/SpeEnumerator.h"
#include "support/RandomEngine.h"

#include "gtest/gtest.h"

#include <map>
#include <set>

using namespace spe;

namespace {

/// Builds a random skeleton small enough for brute forcing: at most 4
/// scopes, 5 variables, 6 holes, 2 types.
AbstractSkeleton makeRandomSkeleton(uint64_t Seed) {
  RandomEngine Rng(Seed);
  AbstractSkeleton Sk;
  unsigned NumScopes = static_cast<unsigned>(Rng.uniformInt(1, 4));
  std::vector<ScopeId> Scopes{AbstractSkeleton::rootScope()};
  for (unsigned I = 1; I < NumScopes; ++I) {
    ScopeId Parent = Scopes[Rng.uniformBelow(Scopes.size())];
    Scopes.push_back(Sk.addScope(Parent));
  }
  unsigned NumTypes = static_cast<unsigned>(Rng.uniformInt(1, 2));
  unsigned NumVars = static_cast<unsigned>(Rng.uniformInt(1, 5));
  for (unsigned I = 0; I < NumVars; ++I) {
    ScopeId Scope = Scopes[Rng.uniformBelow(Scopes.size())];
    TypeKey Type = static_cast<TypeKey>(Rng.uniformBelow(NumTypes));
    Sk.addVariable("v" + std::to_string(I), Scope, Type);
  }
  unsigned NumHoles = static_cast<unsigned>(Rng.uniformInt(0, 6));
  for (unsigned I = 0; I < NumHoles; ++I) {
    ScopeId Scope = Scopes[Rng.uniformBelow(Scopes.size())];
    TypeKey Type = static_cast<TypeKey>(Rng.uniformBelow(NumTypes));
    Sk.addHole(Scope, Type);
  }
  return Sk;
}

struct BruteForceResult {
  BigInt NaiveCount;
  std::set<std::string> ClassKeys;
  std::set<Assignment> CanonicalReps;
};

BruteForceResult bruteForce(const AbstractSkeleton &Sk) {
  BruteForceResult Result;
  NaiveEnumerator Naive(Sk);
  AlphaCanonicalizer Canon(Sk);
  Result.NaiveCount = Naive.count();
  uint64_t Enumerated = Naive.enumerate([&](const Assignment &A) {
    Result.ClassKeys.insert(Canon.canonicalKey(A));
    Result.CanonicalReps.insert(Canon.canonicalRepresentative(A));
    return true;
  });
  EXPECT_EQ(BigInt(Enumerated).toString(), Result.NaiveCount.toString());
  return Result;
}

} // namespace

class SpePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpePropertyTest, ExactCountMatchesBruteForce) {
  AbstractSkeleton Sk = makeRandomSkeleton(GetParam());
  BruteForceResult Truth = bruteForce(Sk);
  SpeEnumerator Exact(Sk, SpeMode::Exact);
  EXPECT_EQ(Exact.count().toUint64(), Truth.ClassKeys.size());
}

TEST_P(SpePropertyTest, ExactEnumerationIsCompleteAndCanonical) {
  AbstractSkeleton Sk = makeRandomSkeleton(GetParam());
  BruteForceResult Truth = bruteForce(Sk);
  AlphaCanonicalizer Canon(Sk);
  SpeEnumerator Exact(Sk, SpeMode::Exact);

  std::set<std::string> Keys;
  std::set<Assignment> Reps;
  uint64_t Produced = Exact.enumerate([&](const Assignment &A) {
    EXPECT_EQ(Canon.canonicalRepresentative(A), A)
        << "non-canonical variant " << Sk.assignmentToString(A);
    EXPECT_TRUE(Keys.insert(Canon.canonicalKey(A)).second)
        << "duplicate class " << Sk.assignmentToString(A);
    Reps.insert(A);
    return true;
  });
  EXPECT_EQ(Produced, Truth.ClassKeys.size());
  EXPECT_EQ(Keys, Truth.ClassKeys);
  EXPECT_EQ(Reps, Truth.CanonicalReps);
}

TEST_P(SpePropertyTest, PaperModeIsConsistentAndSound) {
  AbstractSkeleton Sk = makeRandomSkeleton(GetParam());
  BruteForceResult Truth = bruteForce(Sk);
  AlphaCanonicalizer Canon(Sk);
  SpeEnumerator Paper(Sk, SpeMode::PaperFaithful);

  std::set<std::string> Keys;
  uint64_t Produced = Paper.enumerate([&](const Assignment &A) {
    EXPECT_TRUE(Keys.insert(Canon.canonicalKey(A)).second)
        << "duplicate class " << Sk.assignmentToString(A);
    return true;
  });
  // Closed-form count agrees with enumeration.
  EXPECT_EQ(BigInt(Produced).toString(), Paper.count().toString());
  // Soundness: every emitted class is a real class.
  for (const std::string &Key : Keys)
    EXPECT_TRUE(Truth.ClassKeys.count(Key));
  EXPECT_LE(Keys.size(), Truth.ClassKeys.size());
}

TEST_P(SpePropertyTest, NaiveCountIsCandidateProduct) {
  AbstractSkeleton Sk = makeRandomSkeleton(GetParam());
  BigInt Product(1);
  for (unsigned H = 0; H < Sk.numHoles(); ++H)
    Product *= static_cast<uint64_t>(Sk.candidatesFor(H).size());
  EXPECT_EQ(NaiveEnumerator(Sk).count().toString(), Product.toString());
}

INSTANTIATE_TEST_SUITE_P(RandomSkeletons, SpePropertyTest,
                         ::testing::Range<uint64_t>(0, 60));
