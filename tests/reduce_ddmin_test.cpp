//===- tests/reduce_ddmin_test.cpp - generic ddmin properties ------------===//
//
// The reduction pipeline rests on ddmin's contract: given a predicate that
// holds on the full index set, it returns a 1-minimal subset on which it
// still holds, deterministically. These tests pin that contract directly,
// including the brute-force check that no single element of the result can
// be dropped.
//
//===----------------------------------------------------------------------===//

#include "reduce/DeltaDebug.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <set>

using namespace spe;

namespace {

/// Predicate: the kept set contains all of \p Needed.
DdminPredicate needsAll(std::set<size_t> Needed) {
  return [Needed = std::move(Needed)](const std::vector<size_t> &Keep) {
    for (size_t N : Needed)
      if (std::find(Keep.begin(), Keep.end(), N) == Keep.end())
        return false;
    return true;
  };
}

} // namespace

TEST(DdminTest, FindsExactCore) {
  for (size_t N : {2u, 5u, 16u, 37u}) {
    std::set<size_t> Core = {1, N - 1};
    std::vector<size_t> Result = ddmin(N, needsAll(Core));
    EXPECT_EQ(std::set<size_t>(Result.begin(), Result.end()), Core)
        << "N=" << N;
  }
}

TEST(DdminTest, SingletonAndScatteredCores) {
  EXPECT_EQ(ddmin(20, needsAll({7})), std::vector<size_t>({7}));
  std::vector<size_t> R = ddmin(30, needsAll({0, 13, 29}));
  EXPECT_EQ(std::set<size_t>(R.begin(), R.end()),
            (std::set<size_t>{0, 13, 29}));
}

TEST(DdminTest, EmptyCoreShrinksToNothing) {
  // Predicate that always holds: everything can go.
  std::vector<size_t> R =
      ddmin(12, [](const std::vector<size_t> &) { return true; });
  EXPECT_TRUE(R.empty());
}

TEST(DdminTest, FullSetNeededStaysFull) {
  // Predicate holds only on the complete set.
  std::vector<size_t> R = ddmin(9, [](const std::vector<size_t> &Keep) {
    return Keep.size() == 9;
  });
  ASSERT_EQ(R.size(), 9u);
  for (size_t I = 0; I < 9; ++I)
    EXPECT_EQ(R[I], I);
}

TEST(DdminTest, TrivialSizes) {
  EXPECT_TRUE(ddmin(0, needsAll({})).empty());
  EXPECT_EQ(ddmin(1, needsAll({0})), std::vector<size_t>({0}));
  EXPECT_TRUE(ddmin(1, needsAll({})).empty());
}

TEST(DdminTest, ResultIsOneMinimal) {
  // A non-monotone predicate: needs {2, 5} and an even number of elements
  // from {8..15}. ddmin's result must still be 1-minimal.
  auto Test = [](const std::vector<size_t> &Keep) {
    size_t Tail = 0;
    bool Has2 = false, Has5 = false;
    for (size_t K : Keep) {
      Has2 |= K == 2;
      Has5 |= K == 5;
      Tail += K >= 8 ? 1 : 0;
    }
    return Has2 && Has5 && Tail % 2 == 0;
  };
  std::vector<size_t> R = ddmin(16, Test);
  ASSERT_TRUE(Test(R));
  for (size_t I = 0; I < R.size(); ++I) {
    std::vector<size_t> Less = R;
    Less.erase(Less.begin() + static_cast<ptrdiff_t>(I));
    EXPECT_FALSE(Test(Less)) << "element " << R[I] << " is removable";
  }
}

TEST(DdminTest, DeterministicAndCountsProbes) {
  DdminStats A, B;
  std::vector<size_t> R1 = ddmin(24, needsAll({3, 17, 20}), &A);
  std::vector<size_t> R2 = ddmin(24, needsAll({3, 17, 20}), &B);
  EXPECT_EQ(R1, R2);
  EXPECT_EQ(A.Probes, B.Probes);
  EXPECT_EQ(A.Reductions, B.Reductions);
  EXPECT_GT(A.Probes, 0u);
  EXPECT_GT(A.Reductions, 0u);
  EXPECT_GE(A.Probes, A.Reductions);
}
