//===- tests/persist_checkpoint_test.cpp - snapshot format + cursors -----===//
//
// The persistence layer's local guarantees, independent of whole-campaign
// runs: (a) cursor saveState/restoreState round-trips across every stratum
// of the rank space (types, levels, partitions, units) in exact and
// paper-faithful mode, pruned or not; (b) CampaignCheckpoint text
// serialization is a lossless involution, written atomically; (c) corrupt,
// truncated, and version-skewed snapshots are rejected loudly; (d) the
// append-only OracleStore replays exactly the prefix a checkpoint recorded
// and tolerates torn tails.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "persist/Checkpoint.h"
#include "persist/OracleStore.h"
#include "sema/Sema.h"
#include "skeleton/ProgramEnumerator.h"
#include "skeleton/SkeletonExtractor.h"
#include "skeleton/ValidityAnalysis.h"
#include "testing/Corpus.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <filesystem>

using namespace spe;

namespace {

struct Pipeline {
  std::unique_ptr<ASTContext> Ctx;
  std::unique_ptr<Sema> Analysis;
  std::vector<SkeletonUnit> Units;
};

Pipeline analyze(const std::string &Seed) {
  Pipeline P;
  P.Ctx = std::make_unique<ASTContext>();
  DiagnosticEngine Diags;
  EXPECT_TRUE(Parser::parse(Seed, *P.Ctx, Diags));
  P.Analysis = std::make_unique<Sema>(*P.Ctx, Diags);
  EXPECT_TRUE(P.Analysis->run());
  SkeletonExtractor Extractor(*P.Ctx, *P.Analysis, {});
  P.Units = Extractor.extract();
  return P;
}

/// A deterministic, fully populated snapshot exercising every field,
/// including strings that stress the token escaping.
CampaignCheckpoint sampleCheckpoint() {
  CampaignCheckpoint CP;
  CP.OptionsFingerprint = 0x1122334455667788ull;
  CP.SeedsFingerprint = 0x99aabbccddeeff00ull;
  CP.StoreBytes = 4242;
  CP.Complete = false;
  CP.NextSeed = 3;

  FoundBug Crash;
  Crash.BugId = 7;
  Crash.P = Persona::GccSim;
  Crash.Effect = BugEffect::Crash;
  Crash.Signature = "ICE in gimplify, at gimplify.c:1234";
  Crash.Version = 48;
  Crash.OptLevel = 3;
  Crash.Mode64 = false;
  Crash.WitnessProgram = "int main(void)\n{\n  int a = 3;\n  return a;\n}\n";
  FoundBug Wrong;
  Wrong.BugId = 31;
  Wrong.P = Persona::ClangSim;
  Wrong.Effect = BugEffect::WrongCode;
  Wrong.Signature = "miscompilation (exit 4 != 0)";
  Wrong.Version = 36;
  Wrong.OptLevel = 2;
  Wrong.WitnessProgram = "";

  CP.Merged.UniqueBugs.emplace(Crash.BugId, Crash);
  CP.Merged.UniqueBugs.emplace(Wrong.BugId, Wrong);
  CP.Merged.RawFindings.emplace(
      FindingKey{Crash.BugId, Crash.P, Crash.Version, Crash.OptLevel,
                 Crash.Mode64},
      Crash);
  // A signature-only finding (BugId 0, external backend): its key carries
  // the normalized signature, including characters the token escaper must
  // round-trip.
  FoundBug SigOnly;
  SigOnly.BugId = 0;
  SigOnly.P = Persona::GccSim;
  SigOnly.Effect = BugEffect::Crash;
  SigOnly.Signature = "internal compiler error: in foo_bar, at foo.c:12";
  SigOnly.Version = 140;
  SigOnly.OptLevel = 3;
  SigOnly.WitnessProgram = "int main(void)\n{\n  return 1;\n}\n";
  CP.Merged.RawFindings.emplace(
      FindingKey{0, SigOnly.P, SigOnly.Version, SigOnly.OptLevel,
                 SigOnly.Mode64, 0, 0, SigOnly.Signature},
      SigOnly);
  CP.Merged.SeedsProcessed = 3;
  CP.Merged.VariantsEnumerated = 120;
  CP.Merged.VariantsOracleExcluded = 11;
  CP.Merged.VariantsTested = 100;
  CP.Merged.VariantsPruned = 9;
  CP.Merged.OracleExecutions = 80;
  CP.Merged.OracleCacheHits = 31;
  CP.Merged.CrashObservations = 5;
  CP.Merged.WrongCodeObservations = 2;
  CP.Merged.ExecutionTimeouts = 1;
  CP.CovHits = {"constfold.binary", "dce.removed\tstore", "gvn.hit point"};

  CP.InFlight = true;
  CP.ConstraintsFingerprint = 0xdeadbeefcafef00dull;
  CP.SeedHeader.SeedsProcessed = 1;

  WorkerCheckpoint W0;
  W0.Finished = true;
  W0.Cursor = {"15", "15", "4"};
  W0.Partial.VariantsEnumerated = 11;
  W0.Partial.VariantsPruned = 4;
  W0.CovHits = {"licm.hoisted"};
  WorkerCheckpoint W1;
  W1.Finished = false;
  W1.Cursor = {"23", "30", "0"};
  W1.Partial.VariantsEnumerated = 8;
  W1.Partial.UniqueBugs.emplace(Wrong.BugId, Wrong);
  CP.Workers = {W0, W1};
  return CP;
}

/// FNV-1a twin of the serializer's checksum, for forging valid trailers in
/// the version-skew test.
uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string tempPath(const std::string &Name) {
  std::filesystem::create_directories("persist_test_tmp");
  return "persist_test_tmp/" + Name;
}

} // namespace

//===----------------------------------------------------------------------===//
// Cursor save/restore round-trips
//===----------------------------------------------------------------------===//

TEST(CursorStateTest, ProgramCursorRestoreContinuesTheExactSequence) {
  // For every embedded seed: walk the space sequentially, and at every
  // rank k check that a fresh cursor restored to {k, end, 0} produces the
  // identical remaining sequence. This sweeps all strata -- unit carries,
  // type odometer steps, level-map changes, partition successors.
  for (const std::string &Seed : embeddedSeeds()) {
    Pipeline P = analyze(Seed);
    ProgramCursor Reference(P.Units, SpeMode::Exact);
    uint64_t Limit = 40;
    if (Reference.size() < BigInt(Limit))
      Limit = Reference.size().toUint64();
    Reference.setEnd(BigInt(Limit));
    std::vector<ProgramAssignment> Sequential;
    while (const ProgramAssignment *PA = Reference.next())
      Sequential.push_back(*PA);

    for (uint64_t K = 0; K <= Sequential.size(); ++K) {
      ProgramCursor Restored(P.Units, SpeMode::Exact);
      CursorState S{BigInt(K).toString(), BigInt(Limit).toString(), "0"};
      ASSERT_TRUE(Restored.restoreState(S)) << "rank " << K;
      EXPECT_EQ(Restored.position(), BigInt(K));
      for (uint64_t J = K; J < Sequential.size(); ++J) {
        const ProgramAssignment *PA = Restored.next();
        ASSERT_NE(PA, nullptr) << "rank " << K << " step " << J;
        EXPECT_EQ(*PA, Sequential[J]) << "rank " << K << " step " << J;
      }
      EXPECT_EQ(Restored.next(), nullptr);
    }
  }
}

TEST(CursorStateTest, SaveMidStreamRoundTripsBothModes) {
  // save/restore at a live mid-stream position must agree with continuing
  // the original cursor, in exact and paper-faithful mode.
  for (SpeMode Mode : {SpeMode::Exact, SpeMode::PaperFaithful}) {
    Pipeline P = analyze(embeddedSeeds()[0]);
    ProgramCursor Original(P.Units, Mode);
    uint64_t Limit = 24;
    if (Original.size() < BigInt(Limit))
      Limit = Original.size().toUint64();
    Original.setEnd(BigInt(Limit));
    for (int I = 0; I < 7; ++I)
      ASSERT_NE(Original.next(), nullptr);

    CursorState S = Original.saveState();
    ProgramCursor Restored(P.Units, Mode);
    ASSERT_TRUE(Restored.restoreState(S));
    EXPECT_EQ(Restored.saveState(), S);

    for (;;) {
      const ProgramAssignment *A = Original.next();
      const ProgramAssignment *B = Restored.next();
      ASSERT_EQ(A == nullptr, B == nullptr);
      if (!A)
        break;
      EXPECT_EQ(*A, *B);
    }
  }
}

TEST(CursorStateTest, PrunedCounterSurvivesTheRoundTrip) {
  // Under validity constraints the pruned counter is part of the state:
  // a restored cursor must end with the same total as the uninterrupted
  // one. Pick the first embedded seed with non-empty constraints.
  for (const std::string &Seed : embeddedSeeds()) {
    Pipeline P = analyze(Seed);
    std::vector<ValidityConstraints> Validity =
        analyzeValidity(*P.Ctx, *P.Analysis, P.Units);
    bool AnyFacts = false;
    for (const ValidityConstraints &C : Validity)
      AnyFacts = AnyFacts || !C.empty();
    if (!AnyFacts)
      continue;
    std::vector<const ValidityConstraints *> Ptrs = constraintPtrs(Validity);

    ProgramCursor Full(P.Units, SpeMode::Exact);
    Full.setConstraints(Ptrs);
    uint64_t Limit = 60;
    if (Full.size() < BigInt(Limit))
      Limit = Full.size().toUint64();
    Full.setEnd(BigInt(Limit));
    unsigned Steps = 0;
    while (Full.next())
      ++Steps;
    ASSERT_GT(Steps, 0u);

    // Re-walk, snapshotting after every produced variant; each restore
    // must reproduce the same final pruned total and tail length.
    ProgramCursor Walk(P.Units, SpeMode::Exact);
    Walk.setConstraints(Ptrs);
    Walk.setEnd(BigInt(Limit));
    while (Walk.next()) {
      CursorState S = Walk.saveState();
      ProgramCursor Restored(P.Units, SpeMode::Exact);
      Restored.setConstraints(Ptrs);
      ASSERT_TRUE(Restored.restoreState(S));
      while (Restored.next())
        ;
      EXPECT_EQ(Restored.pruned(), Full.pruned());
    }
    return; // One constrained seed suffices.
  }
  GTEST_SKIP() << "no embedded seed produced validity facts";
}

TEST(CursorStateTest, AssignmentCursorRoundTripsToo) {
  Pipeline P = analyze(embeddedSeeds()[2]);
  ASSERT_FALSE(P.Units.empty());
  const AbstractSkeleton &Sk = P.Units[0].Skeleton;
  AssignmentCursor Original(Sk, SpeMode::Exact);
  uint64_t Limit = 12;
  if (Original.size() < BigInt(Limit))
    Limit = Original.size().toUint64();
  Original.setEnd(BigInt(Limit));
  for (int I = 0; I < 5 && Original.next(); ++I)
    ;
  CursorState S = Original.saveState();
  AssignmentCursor Restored(Sk, SpeMode::Exact);
  ASSERT_TRUE(Restored.restoreState(S));
  for (;;) {
    const Assignment *A = Original.next();
    const Assignment *B = Restored.next();
    ASSERT_EQ(A == nullptr, B == nullptr);
    if (!A)
      break;
    EXPECT_EQ(*A, *B);
  }
}

TEST(CursorStateTest, RestoreRejectsMalformedAndOutOfRangeStates) {
  Pipeline P = analyze(embeddedSeeds()[0]);
  ProgramCursor Cursor(P.Units, SpeMode::Exact);
  std::string Size = Cursor.size().toString();
  std::string Beyond = (Cursor.size() + BigInt(1)).toString();
  EXPECT_FALSE(Cursor.restoreState({"", "0", "0"}));
  EXPECT_FALSE(Cursor.restoreState({"1x", "2", "0"}));
  EXPECT_FALSE(Cursor.restoreState({"-1", "2", "0"}));
  EXPECT_FALSE(Cursor.restoreState({"3", "2", "0"})); // Pos > End.
  EXPECT_FALSE(Cursor.restoreState({"0", Beyond, "0"})); // End > size.
  EXPECT_TRUE(Cursor.restoreState({"0", Size, "0"}));
}

//===----------------------------------------------------------------------===//
// Snapshot serialization
//===----------------------------------------------------------------------===//

TEST(CheckpointFormatTest, SerializeDeserializeIsLossless) {
  CampaignCheckpoint CP = sampleCheckpoint();
  std::string Text = CP.serialize();
  CampaignCheckpoint Back;
  std::string Err;
  ASSERT_TRUE(CampaignCheckpoint::deserialize(Text, Back, Err)) << Err;
  EXPECT_TRUE(Back == CP);
  // And the round-trip is a fixpoint: re-serializing yields the same bytes.
  EXPECT_EQ(Back.serialize(), Text);
}

TEST(CheckpointFormatTest, EmptySnapshotRoundTrips) {
  CampaignCheckpoint CP;
  CampaignCheckpoint Back;
  std::string Err;
  ASSERT_TRUE(CampaignCheckpoint::deserialize(CP.serialize(), Back, Err))
      << Err;
  EXPECT_TRUE(Back == CP);
}

TEST(CheckpointFormatTest, SaveToLoadFromRoundTripsThroughDisk) {
  CampaignCheckpoint CP = sampleCheckpoint();
  std::string Path = tempPath("roundtrip.ck");
  std::string Err;
  ASSERT_TRUE(CP.saveTo(Path, &Err)) << Err;
  // The atomic protocol must not leave its temp file behind.
  EXPECT_FALSE(std::filesystem::exists(Path + ".tmp"));
  CampaignCheckpoint Back;
  ASSERT_TRUE(CampaignCheckpoint::loadFrom(Path, Back, Err)) << Err;
  EXPECT_TRUE(Back == CP);
}

TEST(CheckpointFormatTest, EveryTruncationIsRejected) {
  std::string Text = sampleCheckpoint().serialize();
  // Sweep a prefix ladder (every 7 bytes keeps the test fast while hitting
  // line boundaries, mid-token cuts, and mid-escape cuts).
  for (size_t Len = 0; Len < Text.size(); Len += 7) {
    CampaignCheckpoint Out;
    std::string Err;
    EXPECT_FALSE(
        CampaignCheckpoint::deserialize(Text.substr(0, Len), Out, Err))
        << "accepted a " << Len << "-byte truncation";
  }
}

TEST(CheckpointFormatTest, SingleByteCorruptionIsRejected) {
  std::string Text = sampleCheckpoint().serialize();
  // Flip one byte at a spread of offsets; the whole-body checksum must
  // catch every one of them.
  for (size_t At = 0; At < Text.size(); At += 11) {
    std::string Bad = Text;
    Bad[At] = Bad[At] == 'x' ? 'y' : 'x';
    if (Bad == Text)
      continue;
    CampaignCheckpoint Out;
    std::string Err;
    EXPECT_FALSE(CampaignCheckpoint::deserialize(Bad, Out, Err))
        << "accepted corruption at offset " << At;
  }
}

TEST(CheckpointFormatTest, VersionSkewIsRejectedEvenWithValidChecksum) {
  // A file from a hypothetical v4 writer: structurally intact, checksum
  // freshly valid -- the version gate alone must reject it.
  std::string Text = sampleCheckpoint().serialize();
  size_t Tail = Text.rfind("checksum ");
  ASSERT_NE(Tail, std::string::npos);
  std::string Body = Text.substr(0, Tail);
  size_t V = Body.find("v3");
  ASSERT_NE(V, std::string::npos);
  Body.replace(V, 2, "v4");
  std::string Forged = Body + "checksum " + std::to_string(fnv1a(Body)) + "\n";
  CampaignCheckpoint Out;
  std::string Err;
  EXPECT_FALSE(CampaignCheckpoint::deserialize(Forged, Out, Err));
  EXPECT_NE(Err.find("version"), std::string::npos) << Err;
}

TEST(CheckpointFormatTest, TrailingGarbageIsRejected) {
  std::string Text = sampleCheckpoint().serialize();
  CampaignCheckpoint Out;
  std::string Err;
  EXPECT_FALSE(CampaignCheckpoint::deserialize(Text + "extra\n", Out, Err));
}

//===----------------------------------------------------------------------===//
// Options fingerprint: campaign-shaping flags and backend identity
//===----------------------------------------------------------------------===//

namespace {

/// Minimal backend stub with a chosen identity, for fingerprint tests.
struct NamedBackend : CompilerBackend {
  std::string Name;
  explicit NamedBackend(std::string Name) : Name(std::move(Name)) {}
  std::string identity() const override { return Name; }
  bool hasGroundTruth() const override { return false; }
  BackendObservation run(const std::string &, const CompilerConfig &,
                         CoverageRegistry *) const override {
    return {};
  }
};

} // namespace

TEST(OptionsFingerprintTest, TriageFlagChangesTheFingerprint) {
  // Regression: HarnessOptions::Triage was omitted from the fingerprint,
  // so a checkpoint written without triage resumed under a triaging
  // campaign (and vice versa) without the skew being detected.
  HarnessOptions A;
  A.Configs = HarnessOptions::crashMatrix(Persona::GccSim, 70);
  HarnessOptions B = A;
  B.Triage = true;
  EXPECT_NE(fingerprintOptions(A), fingerprintOptions(B));
}

TEST(OptionsFingerprintTest, BackendIdentityChangesTheFingerprint) {
  HarnessOptions A;
  NamedBackend Gcc("external: gcc -w [-O] | gcc (Distro) 14.2.0");
  NamedBackend Clang("external: clang -w [-O] | clang version 19.1.0");
  A.Backend = &Gcc;
  HarnessOptions B = A;
  B.Backend = &Clang;
  HarnessOptions C = A;
  C.Backend = nullptr; // In-process MiniCC.
  uint64_t FA = fingerprintOptions(A);
  EXPECT_NE(FA, fingerprintOptions(B));
  EXPECT_NE(FA, fingerprintOptions(C));
}

TEST(OptionsFingerprintTest, TriageMismatchRejectsTheResume) {
  // End to end: a snapshot written by a non-triaging campaign must be
  // refused by a triaging resume on the fingerprint gate, and accepted
  // again once the options match.
  std::vector<std::string> Seeds = {"int main(void) { return 0; }\n"};
  HarnessOptions Plain;
  Plain.Configs = HarnessOptions::crashMatrix(Persona::GccSim, 70);
  Plain.CheckpointPath = tempPath("triage_skew.ck");
  CampaignResult Full = DifferentialHarness(Plain).runCampaign(Seeds);

  HarnessOptions Triaging = Plain;
  Triaging.Triage = true;
  CampaignResult R;
  std::string Err;
  EXPECT_FALSE(DifferentialHarness(Triaging).resumeCampaign(Seeds, R, Err));
  EXPECT_NE(Err.find("options fingerprint"), std::string::npos) << Err;

  CampaignResult Again;
  std::string Err2;
  ASSERT_TRUE(DifferentialHarness(Plain).resumeCampaign(Seeds, Again, Err2))
      << Err2;
  EXPECT_TRUE(Again == Full);
}

//===----------------------------------------------------------------------===//
// Oracle store
//===----------------------------------------------------------------------===//

namespace {

OracleCache::Entry entry(bool Ok, ExecStatus St, int64_t Exit,
                         std::string Output) {
  OracleCache::Entry E;
  E.FrontendOk = Ok;
  E.Status = St;
  E.ExitCode = Exit;
  E.Output = std::move(Output);
  return E;
}

} // namespace

TEST(OracleStoreTest, AppendThenLoadReplaysEveryRecord) {
  std::string Path = tempPath("store_roundtrip.log");
  std::remove(Path.c_str());
  OracleStore Store(Path);
  std::vector<OracleStore::Record> Batch = {
      {"int main(void)\n{\n  return 0;\n}\n",
       entry(true, ExecStatus::Ok, 0, "hello\nworld\n")},
      {"rejected program", entry(false, ExecStatus::Unsupported, 0, "")},
      {"ub program", entry(true, ExecStatus::UndefinedBehavior, -3, "")},
  };
  ASSERT_TRUE(Store.append(Batch));
  uint64_t Bytes = Store.bytesOnDisk();
  EXPECT_GT(Bytes, 0u);

  OracleCache Cache;
  uint64_t Valid = 0;
  EXPECT_EQ(Store.loadInto(Cache, ~uint64_t(0), &Valid), 3u);
  EXPECT_EQ(Valid, Bytes);
  OracleCache::Entry E;
  ASSERT_TRUE(Cache.lookup(Batch[0].first, E));
  EXPECT_TRUE(E.FrontendOk);
  EXPECT_EQ(E.Output, "hello\nworld\n");
  ASSERT_TRUE(Cache.lookup(Batch[2].first, E));
  EXPECT_EQ(E.Status, ExecStatus::UndefinedBehavior);
  EXPECT_EQ(E.ExitCode, -3);
}

TEST(OracleStoreTest, PrefixLoadStopsAtTheRecordedLength) {
  std::string Path = tempPath("store_prefix.log");
  std::remove(Path.c_str());
  OracleStore Store(Path);
  ASSERT_TRUE(Store.append({{"first", entry(true, ExecStatus::Ok, 1, "")}}));
  uint64_t AfterFirst = Store.bytesOnDisk();
  ASSERT_TRUE(Store.append({{"second", entry(true, ExecStatus::Ok, 2, "")}}));

  // A checkpoint written after record one must reconstruct a cache that
  // has record one and not record two.
  OracleCache Cache;
  EXPECT_EQ(Store.loadInto(Cache, AfterFirst), 1u);
  OracleCache::Entry E;
  EXPECT_TRUE(Cache.lookup("first", E));
  EXPECT_FALSE(Cache.lookup("second", E));

  // And truncateTo makes the cut permanent for future appends.
  ASSERT_TRUE(Store.truncateTo(AfterFirst));
  EXPECT_EQ(Store.bytesOnDisk(), AfterFirst);
  OracleCache Fresh;
  EXPECT_EQ(Store.loadInto(Fresh), 1u);
}

TEST(OracleStoreTest, TornTailIsToleratedAndTrimmable) {
  std::string Path = tempPath("store_torn.log");
  std::remove(Path.c_str());
  OracleStore Store(Path);
  ASSERT_TRUE(Store.append({{"whole", entry(true, ExecStatus::Ok, 7, "x")}}));
  uint64_t Whole = Store.bytesOnDisk();

  // Simulate a crash mid-append: half a record header at the tail.
  std::FILE *F = std::fopen(Path.c_str(), "ab");
  ASSERT_NE(F, nullptr);
  std::fputs("R 999 1", F);
  std::fclose(F);

  OracleCache Cache;
  uint64_t Valid = 0;
  EXPECT_EQ(Store.loadInto(Cache, ~uint64_t(0), &Valid), 1u);
  EXPECT_EQ(Valid, Whole);
  ASSERT_TRUE(Store.truncateTo(Valid));
  EXPECT_EQ(Store.bytesOnDisk(), Whole);
}

TEST(OracleStoreTest, TornHeaderRestartsTheLogInsteadOfPoisoningIt) {
  // A crash can die between creating the file and getting the magic to
  // disk. The next append must notice the short file and restart the log
  // (magic first), not append magic-less records that no load could ever
  // parse again.
  std::string Path = tempPath("store_torn_header.log");
  std::remove(Path.c_str());
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fputs("SPE-OR", F); // Half the magic, then "power loss".
  std::fclose(F);

  OracleStore Store(Path);
  ASSERT_TRUE(Store.append({{"key", entry(true, ExecStatus::Ok, 1, "")}}));
  OracleCache Cache;
  EXPECT_EQ(Store.loadInto(Cache), 1u);
  OracleCache::Entry E;
  EXPECT_TRUE(Cache.lookup("key", E));
}

TEST(OracleStoreTest, CorruptVerdictEnumEndsTheValidPrefix) {
  // A record whose Status field decodes outside the ExecStatus range must
  // terminate the valid prefix, not replay as an arbitrary verdict into
  // the differential arbiter.
  std::string Path = tempPath("store_bad_enum.log");
  std::remove(Path.c_str());
  OracleStore Store(Path);
  ASSERT_TRUE(Store.append({{"good", entry(true, ExecStatus::Ok, 0, "")}}));
  uint64_t Good = Store.bytesOnDisk();
  std::FILE *F = std::fopen(Path.c_str(), "ab");
  ASSERT_NE(F, nullptr);
  std::fputs("R 3 1 99 0 0\nbad\n", F); // Status 99: no such ExecStatus.
  std::fclose(F);

  OracleCache Cache;
  uint64_t Valid = 0;
  EXPECT_EQ(Store.loadInto(Cache, ~uint64_t(0), &Valid), 1u);
  EXPECT_EQ(Valid, Good);
  OracleCache::Entry E;
  EXPECT_FALSE(Cache.lookup("bad", E));
}

TEST(OracleStoreTest, AbsurdLengthFieldEndsThePrefixInsteadOfAllocating) {
  // A corrupt length field must terminate the valid prefix cleanly, not
  // feed resize() a multi-exabyte request that aborts the process.
  std::string Path = tempPath("store_bad_len.log");
  std::remove(Path.c_str());
  OracleStore Store(Path);
  ASSERT_TRUE(Store.append({{"good", entry(true, ExecStatus::Ok, 0, "")}}));
  uint64_t Good = Store.bytesOnDisk();
  std::FILE *F = std::fopen(Path.c_str(), "ab");
  ASSERT_NE(F, nullptr);
  std::fputs("R 18446744073709551615 1 0 0 0\n", F);
  std::fclose(F);

  OracleCache Cache;
  uint64_t Valid = 0;
  EXPECT_EQ(Store.loadInto(Cache, ~uint64_t(0), &Valid), 1u);
  EXPECT_EQ(Valid, Good);
}

TEST(OracleStoreTest, ForeignFileIsRefusedNotAppendedToOrDestroyed) {
  // A non-log file at the store path must be left exactly as found:
  // appending after unparseable content would strand the records, and
  // truncating would destroy data the store does not own.
  std::string Path = tempPath("store_foreign.log");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fputs("this is somebody's notes file, not an oracle log....\n", F);
  std::fclose(F);
  uint64_t Before = std::filesystem::file_size(Path);

  OracleStore Store(Path);
  EXPECT_FALSE(Store.append({{"key", entry(true, ExecStatus::Ok, 1, "")}}));
  EXPECT_EQ(std::filesystem::file_size(Path), Before);
  OracleCache Cache;
  EXPECT_EQ(Store.loadInto(Cache), 0u);

  // Same for a foreign file *shorter* than the magic: only a genuine
  // torn-header prefix of the magic may be truncated away.
  std::string Short = tempPath("store_foreign_short.log");
  F = std::fopen(Short.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fputs("abc", F);
  std::fclose(F);
  OracleStore ShortStore(Short);
  EXPECT_FALSE(
      ShortStore.append({{"key", entry(true, ExecStatus::Ok, 1, "")}}));
  EXPECT_EQ(std::filesystem::file_size(Short), 3u);
}

TEST(OracleStoreTest, MissingFileIsACleanColdStart) {
  OracleStore Store(tempPath("does_not_exist.log"));
  std::remove(Store.path().c_str());
  OracleCache Cache;
  uint64_t Valid = 42;
  EXPECT_EQ(Store.loadInto(Cache, ~uint64_t(0), &Valid), 0u);
  EXPECT_EQ(Valid, 0u);
  EXPECT_EQ(Store.bytesOnDisk(), 0u);
  EXPECT_TRUE(Store.truncateTo(0));
}
