//===- tests/skeleton_extractor_test.cpp - skeleton extraction tests -----===//

#include "core/AlphaEquivalence.h"
#include "core/NaiveEnumerator.h"
#include "core/SpeEnumerator.h"
#include "lang/Parser.h"
#include "sema/Sema.h"
#include "skeleton/SkeletonExtractor.h"

#include "gtest/gtest.h"

#include <set>

using namespace spe;

namespace {

struct Pipeline {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  std::unique_ptr<Sema> Analysis;
  std::vector<SkeletonUnit> Units;
};

std::unique_ptr<Pipeline> extract(const std::string &Source,
                                  ExtractorOptions Opts = {}) {
  auto P = std::make_unique<Pipeline>();
  EXPECT_TRUE(Parser::parse(Source, P->Ctx, P->Diags)) << P->Diags.toString();
  P->Analysis = std::make_unique<Sema>(P->Ctx, P->Diags);
  EXPECT_TRUE(P->Analysis->run()) << P->Diags.toString();
  SkeletonExtractor Ex(P->Ctx, *P->Analysis, Opts);
  P->Units = Ex.extract();
  return P;
}

/// The Figure 6 program of the paper, expressed with use-site holes.
const char *Figure6Source = "int main(void) {\n"
                            "  int a = 1, b = 0;\n"
                            "  if (a) {\n"
                            "    int c = 3, d = 5;\n"
                            "    b = c + d;\n"
                            "  }\n"
                            "  printf(\"%d\", a);\n"
                            "  printf(\"%d\", b);\n"
                            "  return 0;\n"
                            "}\n";

} // namespace

TEST(SkeletonExtractorTest, HolesAppearInUseOrder) {
  auto P = extract(Figure6Source);
  ASSERT_EQ(P->Units.size(), 1u);
  const SkeletonUnit &U = P->Units[0];
  ASSERT_EQ(U.Skeleton.numHoles(), 6u);
  const char *Expected[] = {"a", "b", "c", "d", "a", "b"};
  for (size_t I = 0; I < 6; ++I)
    EXPECT_EQ(U.HoleSites[I]->decl()->name(), Expected[I]) << "hole " << I;
}

TEST(SkeletonExtractorTest, PaperMergedPutsFunctionLocalsAtRoot) {
  auto P = extract(Figure6Source);
  const SkeletonUnit &U = P->Units[0];
  // a, b merged into root; c, d in a child scope.
  ASSERT_EQ(U.Skeleton.numVars(), 4u);
  EXPECT_EQ(U.Skeleton.var(0).Scope, AbstractSkeleton::rootScope());
  EXPECT_EQ(U.Skeleton.var(1).Scope, AbstractSkeleton::rootScope());
  EXPECT_NE(U.Skeleton.var(2).Scope, AbstractSkeleton::rootScope());
  EXPECT_EQ(U.Skeleton.var(2).Scope, U.Skeleton.var(3).Scope);
  // Candidate sets: the if-condition hole sees {a,b}; the inner holes see
  // all four variables.
  EXPECT_EQ(U.Skeleton.candidatesFor(0).size(), 2u);
  EXPECT_EQ(U.Skeleton.candidatesFor(2).size(), 4u);
}

TEST(SkeletonExtractorTest, Figure6Counts) {
  auto P = extract(Figure6Source);
  const SkeletonUnit &U = P->Units[0];
  // 3 root holes over {a,b}, 3 inner holes over {a,b,c,d}:
  // naive 2^3 * 4^3 = 512; exact classes = 144 (tree DP, cross-checked by
  // brute force below).
  NaiveEnumerator Naive(U.Skeleton);
  EXPECT_EQ(Naive.count().toUint64(), 512u);
  SpeEnumerator Exact(U.Skeleton, SpeMode::Exact);
  EXPECT_EQ(Exact.count().toUint64(), 144u);

  AlphaCanonicalizer Canon(U.Skeleton);
  std::set<std::string> Keys;
  Naive.enumerate([&](const Assignment &A) {
    Keys.insert(Canon.canonicalKey(A));
    return true;
  });
  EXPECT_EQ(Keys.size(), 144u);
}

TEST(SkeletonExtractorTest, LexicalModelSeparatesGlobalsFromLocals) {
  auto P = extract("int g;\nvoid f(void) { int x; x = g; }\n",
                   {Granularity::IntraProcedural, ScopeModel::Lexical});
  // Unit for f: g at root, x deeper.
  const SkeletonUnit &U = P->Units[0];
  ASSERT_EQ(U.Skeleton.numVars(), 2u);
  EXPECT_EQ(U.Skeleton.var(0).Name, "g");
  EXPECT_EQ(U.Skeleton.var(0).Scope, AbstractSkeleton::rootScope());
  EXPECT_NE(U.Skeleton.var(1).Scope, AbstractSkeleton::rootScope());
  // Under the paper-merged model they share the root instead.
  auto P2 = extract("int g;\nvoid f(void) { int x; x = g; }\n");
  EXPECT_EQ(P2->Units[0].Skeleton.var(1).Scope, AbstractSkeleton::rootScope());
}

TEST(SkeletonExtractorTest, DeclRegionExcludesLaterDeclarations) {
  const char *Source = "void f(void) { int a = 1; int b = a; int c = b; }";
  auto Block = extract(Source);
  auto Region = extract(
      Source, {Granularity::IntraProcedural, ScopeModel::DeclRegion});
  // Hole 0 is the use of 'a' in b's initializer. Block-level scoping offers
  // all three block variables; decl-region only {a, b}.
  EXPECT_EQ(Block->Units[0].Skeleton.candidatesFor(0).size(), 3u);
  EXPECT_EQ(Region->Units[0].Skeleton.candidatesFor(0).size(), 2u);
  // Hole 1 (use of 'b' in c's initializer) sees {a, b, c} in decl-region:
  // c is visible inside its own initializer.
  EXPECT_EQ(Region->Units[0].Skeleton.candidatesFor(1).size(), 3u);
}

TEST(SkeletonExtractorTest, TypesRestrictCandidates) {
  auto P = extract("int a; char c; int *p;\n"
                   "void f(void) { a = 1; c = 'x'; p = &a; }\n");
  const SkeletonUnit &U = P->Units[0];
  ASSERT_EQ(U.Skeleton.numHoles(), 4u); // a, c, p, a.
  EXPECT_EQ(U.Skeleton.candidatesFor(0).size(), 1u); // int: only a.
  EXPECT_EQ(U.Skeleton.candidatesFor(1).size(), 1u); // char: only c.
  EXPECT_EQ(U.Skeleton.candidatesFor(2).size(), 1u); // int*: only p.
}

TEST(SkeletonExtractorTest, IntraProducesOneUnitPerFunction) {
  auto P = extract("int g;\n"
                   "void f(void) { g = 1; }\n"
                   "void h(void) { g = 2; }\n");
  ASSERT_EQ(P->Units.size(), 2u);
  EXPECT_EQ(P->Units[0].Fn->name(), "f");
  EXPECT_EQ(P->Units[1].Fn->name(), "h");
  EXPECT_EQ(P->Units[0].Skeleton.numHoles(), 1u);
  EXPECT_EQ(P->Units[1].Skeleton.numHoles(), 1u);
}

TEST(SkeletonExtractorTest, InterProducesOneUnit) {
  auto P = extract("int g; int k;\n"
                   "void f(void) { g = 1; }\n"
                   "void h(void) { k = 2; }\n",
                   {Granularity::InterProcedural, ScopeModel::PaperMerged});
  ASSERT_EQ(P->Units.size(), 1u);
  EXPECT_EQ(P->Units[0].Skeleton.numHoles(), 2u);
  // Inter-procedural exact counting distinguishes f:g,h:g vs f:g,h:k.
  SpeEnumerator Exact(P->Units[0].Skeleton, SpeMode::Exact);
  EXPECT_EQ(Exact.count().toUint64(), 2u);
}

TEST(SkeletonExtractorTest, IntraMissesCrossFunctionClasses) {
  // Section 4.3: intra-procedural enumeration is an approximation. The
  // program above has 2 classes inter-procedurally but intra enumeration
  // (per-function canonicalization) yields only 1 combined variant.
  auto P = extract("int g; int k;\n"
                   "void f(void) { g = 1; }\n"
                   "void h(void) { k = 2; }\n");
  ASSERT_EQ(P->Units.size(), 2u);
  BigInt Product(1);
  for (const SkeletonUnit &U : P->Units)
    Product *= SpeEnumerator(U.Skeleton, SpeMode::Exact).count();
  EXPECT_EQ(Product.toUint64(), 1u);
}

TEST(SkeletonExtractorTest, ParamsCountAsFunctionGlobals) {
  auto P = extract("int fn(int p, int q) { return p - q; }\n");
  const SkeletonUnit &U = P->Units[0];
  ASSERT_EQ(U.Skeleton.numVars(), 2u);
  EXPECT_EQ(U.Skeleton.var(0).Scope, AbstractSkeleton::rootScope());
  EXPECT_EQ(U.Skeleton.var(1).Scope, AbstractSkeleton::rootScope());
  SpeEnumerator Exact(U.Skeleton, SpeMode::Exact);
  // p - q over {p,q}: partitions of 2 into <=2 blocks = 2 classes.
  EXPECT_EQ(Exact.count().toUint64(), 2u);
}

TEST(SkeletonExtractorTest, StatsMatchHandCounts) {
  auto P = extract(Figure6Source);
  SkeletonStats Stats = computeSkeletonStats(P->Ctx, *P->Analysis, P->Units);
  EXPECT_EQ(Stats.NumHoles, 6u);
  EXPECT_EQ(Stats.NumFunctions, 1u);
  EXPECT_EQ(Stats.NumTypes, 1u);
  EXPECT_EQ(Stats.NumScopes, 2u); // body scope and if scope declare vars.
  // Candidates: 2+4+4+4+2+2 = 18 over 6 holes = 3.0 vars/hole.
  EXPECT_EQ(Stats.TotalCandidates, 18u);
  EXPECT_DOUBLE_EQ(Stats.varsPerHole(), 3.0);
}

TEST(SkeletonExtractorTest, FunctionWithNoHolesYieldsEmptyUnit) {
  auto P = extract("void f(void) { }\nint g;\nvoid h(void) { g = 1; }\n");
  ASSERT_EQ(P->Units.size(), 2u);
  EXPECT_EQ(P->Units[0].Skeleton.numHoles(), 0u);
  SpeEnumerator Exact(P->Units[0].Skeleton, SpeMode::Exact);
  EXPECT_EQ(Exact.count().toUint64(), 1u);
}
