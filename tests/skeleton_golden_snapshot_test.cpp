//===- tests/skeleton_golden_snapshot_test.cpp - pinned variant goldens --===//
//
// Pins the rendered text and the enumeration order of the first variants of
// every embedded handwritten seed (exact mode, default extraction). The
// FNV-1a fingerprints were captured from the current pipeline; any change
// to cursor order, canonicalization, or rendering -- accidental or
// deliberate -- trips this test and must update the goldens consciously.
// seek(k) is cross-checked against sequential order so direct addressing
// pins the same sequence.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "persist/Checkpoint.h"
#include "sema/Sema.h"
#include "skeleton/ProgramEnumerator.h"
#include "skeleton/SkeletonExtractor.h"
#include "skeleton/VariantRenderer.h"
#include "testing/Corpus.h"

#include "gtest/gtest.h"

#include <fstream>
#include <sstream>

using namespace spe;

namespace {

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

struct Pipeline {
  std::unique_ptr<ASTContext> Ctx;
  std::unique_ptr<Sema> Analysis;
  std::vector<SkeletonUnit> Units;
};

Pipeline analyze(const std::string &Seed) {
  Pipeline P;
  P.Ctx = std::make_unique<ASTContext>();
  DiagnosticEngine Diags;
  EXPECT_TRUE(Parser::parse(Seed, *P.Ctx, Diags));
  P.Analysis = std::make_unique<Sema>(*P.Ctx, Diags);
  EXPECT_TRUE(P.Analysis->run());
  SkeletonExtractor Extractor(*P.Ctx, *P.Analysis, {});
  P.Units = Extractor.extract();
  return P;
}

/// Renders the first (up to) \p Limit variants in cursor order.
std::vector<std::string> firstVariants(const Pipeline &P, unsigned Limit) {
  ProgramCursor Cursor(P.Units, SpeMode::Exact);
  VariantRenderer Renderer(*P.Ctx, P.Units);
  std::vector<std::string> Out;
  std::string Buffer;
  while (Out.size() < Limit) {
    const ProgramAssignment *PA = Cursor.next();
    if (!PA)
      break;
    Renderer.renderInto(*PA, Buffer);
    Out.push_back(Buffer);
  }
  return Out;
}

/// Golden FNV-1a fingerprints of the first 8 variants of each embedded
/// seed, in embeddedSeeds() order (seeds with smaller spaces pin fewer).
const std::vector<std::vector<uint64_t>> &goldenHashes() {
  static const std::vector<std::vector<uint64_t>> Golden = {
      {0x400a87c2ce105435ull, 0xfafe83753a91d0f6ull, 0x6b5fc78348f2cd80ull,
       0x47666f5414a5734full, 0x8e893212faaccc70ull, 0x2da6617fd0ad857full,
       0x6699f25282ad7c25ull, 0xddd875a0f3b6ba26ull},
      {0x3e9cbb1d34a2ecfcull, 0x346bd44a427d8987ull, 0xacceb5fce49b4327ull,
       0xa5e2e6d3f782cb1cull, 0x8264bfdd2cf094b9ull, 0x492fcfa609441d49ull,
       0x434f327301fe0362ull, 0x18336c96d43893f7ull},
      {0x9a15c9b214eae372ull, 0x60925590a4770eabull, 0x06165c4633016d75ull,
       0x2e059c06ab00bdc0ull, 0x647623ffbd57ddf1ull, 0x1b04c01acdc612ccull,
       0xdb1144676783ca7eull, 0x183c5045a9a51f37ull},
      {0x09ac5ad00603111bull, 0x49794d2846efd403ull, 0x8263a52f950accf5ull,
       0xc85d2c49c0f2eea9ull},
      {0x0d1cb4857981c02aull, 0xd0332064062a8c03ull, 0xed96a539ae2f4987ull,
       0xb67b95305412d54eull, 0x30fd9969e6946dfcull, 0x71915a12ba3c66b7ull,
       0x34664e34781b11feull, 0xa0312871543ffeacull},
      {0x93b2be3f7364b8cdull, 0xbd0b063be63174c6ull, 0x31ab4b627636ee6cull,
       0x7d94532302f6fc33ull, 0x59a9eae6750d572bull, 0x3402684f5ebbf144ull,
       0x7feb700feb7bff0bull, 0xa67fd4215e875b93ull},
      {0xb5f10424d6c880f1ull, 0x27a4b846788e273eull, 0x4131a464cf1b8054ull,
       0x4c24884a3d6986bfull, 0xfd9790044ac70738ull, 0x8c2f5ef5292fd064ull,
       0x93bc42da949aadcfull, 0x48954a94a4db5748ull},
      {0xbb2086556f191ec3ull, 0x0c035ae375c1e0beull, 0xae15990593339064ull,
       0x829e89b6a8602679ull, 0x04264be29035dc86ull, 0xdd4961f3dbf6552bull,
       0x6f462a27275e30edull, 0x24d098f0fc9cd708ull},
      {0x7a53f3a30a449daaull, 0x124ab5a6663f15c5ull, 0x4e5489d8e16896d1ull,
       0xaf2ba98df9b52a86ull, 0x9121f7260bca496bull, 0x235c3ea4b50f0e50ull,
       0xb70ce6880577a8c4ull, 0xb5395aea6d658cdfull},
      {0xc7220df7f162e74cull, 0x72340d980d8bff85ull, 0x7d3c54d7bfc397bbull,
       0xbe2f290f01da6f1eull, 0x1fb82fe69495d5d3ull, 0x65886abbded87ba6ull,
       0xeb69e2985c315654ull, 0x135003efe732765dull},
  };
  return Golden;
}

} // namespace

TEST(GoldenSnapshotTest, FirstVariantsOfEveryEmbeddedSeedAreStable) {
  const std::vector<std::string> &Seeds = embeddedSeeds();
  const auto &Golden = goldenHashes();
  ASSERT_EQ(Seeds.size(), Golden.size())
      << "a seed was added or removed; regenerate the golden table";

  for (size_t SI = 0; SI < Seeds.size(); ++SI) {
    Pipeline P = analyze(Seeds[SI]);
    std::vector<std::string> Variants = firstVariants(P, 8);
    ASSERT_EQ(Variants.size(), Golden[SI].size()) << "seed " << SI;
    for (size_t V = 0; V < Variants.size(); ++V) {
      EXPECT_EQ(fnv1a(Variants[V]), Golden[SI][V])
          << "seed " << SI << " variant " << V << " changed:\n"
          << Variants[V];
    }
  }
}

TEST(GoldenSnapshotTest, SeekAddressesTheSameSequence) {
  // seek(k) must land on the exact variant sequential iteration produces;
  // this pins the rank <-> variant mapping the parallel shards rely on.
  const std::vector<std::string> &Seeds = embeddedSeeds();
  for (size_t SI = 0; SI < Seeds.size(); ++SI) {
    Pipeline P = analyze(Seeds[SI]);
    std::vector<std::string> Sequential = firstVariants(P, 8);
    VariantRenderer Renderer(*P.Ctx, P.Units);
    std::string Buffer;
    for (size_t K = 0; K < Sequential.size(); ++K) {
      ProgramCursor Cursor(P.Units, SpeMode::Exact);
      Cursor.seek(BigInt(K));
      const ProgramAssignment *PA = Cursor.next();
      ASSERT_NE(PA, nullptr) << "seed " << SI << " rank " << K;
      Renderer.renderInto(*PA, Buffer);
      EXPECT_EQ(Buffer, Sequential[K]) << "seed " << SI << " rank " << K;
    }
  }
}

namespace {

/// A fixed, fully populated snapshot whose serialization is pinned byte
/// for byte by tests/golden/campaign_checkpoint_v3.golden. Touch nothing
/// here (and nothing in the serializer) without consciously regenerating
/// the golden file AND bumping CampaignCheckpoint::FormatVersion -- an
/// accidental layout change would strand every long-haul campaign's
/// resume.
CampaignCheckpoint goldenCheckpoint() {
  CampaignCheckpoint CP;
  CP.OptionsFingerprint = 1234567890123456789ull;
  CP.SeedsFingerprint = 987654321098765432ull;
  CP.StoreBytes = 2048;
  CP.NextSeed = 2;

  FoundBug Crash;
  Crash.BugId = 3;
  Crash.P = Persona::GccSim;
  Crash.Effect = BugEffect::Crash;
  Crash.Signature = "ICE: segfault in reassoc, at tree-ssa-reassoc.c:77";
  Crash.Version = 48;
  Crash.OptLevel = 3;
  Crash.Mode64 = false;
  Crash.WitnessProgram =
      "int main(void)\n{\n  int a = 3;\n  return a * 10 + a;\n}\n";
  CP.Merged.UniqueBugs.emplace(Crash.BugId, Crash);
  CP.Merged.RawFindings.emplace(
      FindingKey{Crash.BugId, Crash.P, Crash.Version, Crash.OptLevel,
                 Crash.Mode64},
      Crash);
  // A signature-only finding (no ground truth: external backend) from a
  // differential matrix cell -- pins the v3 Sig/Backend/Input bug tokens
  // and the BackendIdx/InputIdx key tokens, with the escaped
  // "miscompilation (hang)" key.
  FoundBug Hang;
  Hang.BugId = 0;
  Hang.P = Persona::GccSim;
  Hang.Effect = BugEffect::WrongCode;
  Hang.Signature = "miscompilation (hang)";
  Hang.Version = 140;
  Hang.OptLevel = 2;
  Hang.Mode64 = true;
  Hang.Backend = "gcc -std=c99";
  Hang.Input = "42\n";
  Hang.WitnessProgram = "int main(void)\n{\n  return 0;\n}\n";
  CP.Merged.RawFindings.emplace(
      FindingKey{0, Hang.P, Hang.Version, Hang.OptLevel, Hang.Mode64, 1, 2,
                 "miscompilation (hang)"},
      Hang);
  CP.Merged.SeedsProcessed = 2;
  CP.Merged.VariantsEnumerated = 60;
  CP.Merged.VariantsOracleExcluded = 4;
  CP.Merged.VariantsTested = 50;
  CP.Merged.VariantsPruned = 6;
  CP.Merged.OracleExecutions = 54;
  CP.Merged.OracleCacheHits = 12;
  CP.Merged.CrashObservations = 2;
  CP.Merged.ExecutionTimeouts = 1;
  CP.Merged.MatrixCellsCompared = 180;
  CP.Merged.SweepCellsExcluded = 3;
  CP.CovHits = {"constfold.binary", "dce.removed store"};

  CP.InFlight = true;
  CP.ConstraintsFingerprint = 1111222233334444ull;
  CP.SeedHeader.SeedsProcessed = 1;
  WorkerCheckpoint W0;
  W0.Finished = false;
  W0.Cursor = {"7", "15", "2"};
  W0.Partial.VariantsEnumerated = 5;
  W0.CovHits = {"licm.hoisted"};
  WorkerCheckpoint W1;
  W1.Finished = true;
  W1.Cursor = {"30", "30", "0"};
  W1.Partial.VariantsEnumerated = 15;
  CP.Workers = {W0, W1};
  return CP;
}

} // namespace

TEST(GoldenSnapshotTest, CheckpointFormatIsPinnedByGoldenFile) {
  // The serialized checkpoint layout is an on-disk compatibility surface:
  // campaigns killed under one build must resume under the next. Pin the
  // exact bytes against a checked-in golden file so any accidental format
  // change fails CI loudly instead of silently stranding snapshots.
  std::ifstream In(std::string(SPE_SOURCE_DIR) +
                   "/tests/golden/campaign_checkpoint_v3.golden");
  ASSERT_TRUE(In.good())
      << "tests/golden/campaign_checkpoint_v3.golden is missing";
  std::ostringstream Golden;
  Golden << In.rdbuf();

  CampaignCheckpoint CP = goldenCheckpoint();
  EXPECT_EQ(CP.serialize(), Golden.str())
      << "the serialized checkpoint layout changed; if deliberate, bump "
         "CampaignCheckpoint::FormatVersion and regenerate the golden file";

  // And the pinned bytes must still load as format v3.
  CampaignCheckpoint Back;
  std::string Err;
  ASSERT_TRUE(CampaignCheckpoint::deserialize(Golden.str(), Back, Err))
      << Err;
  EXPECT_TRUE(Back == CP);
}

TEST(GoldenSnapshotTest, Figure1VariantTextIsPinnedVerbatim) {
  // One readable exemplar: the Figure 1 seed's first three variants, fully
  // spelled out so a rendering regression is visible in the diff, not just
  // as a hash mismatch.
  Pipeline P = analyze(embeddedSeeds()[2]);
  std::vector<std::string> Variants = firstVariants(P, 3);
  ASSERT_EQ(Variants.size(), 3u);
  EXPECT_EQ(Variants[0], "int main(void)\n"
                         "{\n"
                         "  int a = 3;\n"
                         "  int b = 1;\n"
                         "  a = a - a;\n"
                         "  if (a > a)\n"
                         "    a = a - a;\n"
                         "  return a * 10 + a;\n"
                         "}\n");
  EXPECT_EQ(Variants[1], "int main(void)\n"
                         "{\n"
                         "  int a = 3;\n"
                         "  int b = 1;\n"
                         "  a = a - a;\n"
                         "  if (a > a)\n"
                         "    a = a - a;\n"
                         "  return a * 10 + b;\n"
                         "}\n");
  EXPECT_EQ(Variants[2], "int main(void)\n"
                         "{\n"
                         "  int a = 3;\n"
                         "  int b = 1;\n"
                         "  a = a - a;\n"
                         "  if (a > a)\n"
                         "    a = a - a;\n"
                         "  return b * 10 + a;\n"
                         "}\n");
}
