//===- tests/compiler_external_backend_test.cpp - subprocess backends ----===//
//
// The real-compiler driving stack, bottom up: support/ProcessRunner
// (fork/exec, capture, timeout-kill, exit/signal decoding), the
// ExternalBackend classification of compile outcomes, signature-only
// finding semantics for backends without ground truth (including the
// out-of-bounds regression for foreign FiredBugs ids), and an end-to-end
// campaign against the host compiler: deterministic across thread counts,
// checkpoint/resume bit-identical, and resume against a different backend
// command line rejected by fingerprint. Host-compiler tests auto-skip with
// a reported reason when no working `cc` is on PATH.
//
//===----------------------------------------------------------------------===//

#include "compiler/ExternalBackend.h"
#include "persist/Checkpoint.h"
#include "support/ProcessPool.h"
#include "support/ProcessRunner.h"
#include "testing/Corpus.h"
#include "testing/Harness.h"
#include "triage/Deduper.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>
#include <thread>

#include <sys/stat.h>
#include <unistd.h>

using namespace spe;

namespace {

std::string tempPath(const std::string &Name) {
  std::filesystem::create_directories("external_test_tmp");
  return "external_test_tmp/" + Name;
}

/// The host compiler, probed once; tests that need it skip with the probe's
/// reason when it is unusable.
const ExternalBackend &hostBackend() {
  static ExternalBackend *B = [] {
    ExternalBackendOptions O;
    O.TempDir = "external_test_tmp";
    std::filesystem::create_directories(O.TempDir);
    return new ExternalBackend(std::move(O));
  }();
  return *B;
}

#define SKIP_WITHOUT_HOST_CC()                                              \
  do {                                                                      \
    if (!hostBackend().available())                                         \
      GTEST_SKIP() << "no usable host compiler: "                           \
                   << hostBackend().unavailableReason();                    \
  } while (0)

} // namespace

//===----------------------------------------------------------------------===//
// ProcessRunner
//===----------------------------------------------------------------------===//

TEST(ProcessRunnerTest, CapturesExitCodeAndBothStreams) {
  ProcessResult R = runProcess(
      {"/bin/sh", "-c", "printf out; printf err >&2; exit 7"});
  ASSERT_EQ(R.St, ProcessResult::Status::Exited) << R.Error;
  EXPECT_EQ(R.ExitCode, 7);
  EXPECT_EQ(R.Stdout, "out");
  EXPECT_EQ(R.Stderr, "err");
}

TEST(ProcessRunnerTest, DecodesDeathBySignal) {
  ProcessResult R = runProcess({"/bin/sh", "-c", "kill -SEGV $$"});
  ASSERT_EQ(R.St, ProcessResult::Status::Signaled) << R.Error;
  EXPECT_EQ(R.Signal, SIGSEGV);
}

TEST(ProcessRunnerTest, WallClockTimeoutKillsTheChild) {
  ProcessOptions O;
  O.TimeoutMs = 250;
  ProcessResult R = runProcess({"/bin/sh", "-c", "sleep 30"}, O);
  EXPECT_EQ(R.St, ProcessResult::Status::TimedOut);
}

TEST(ProcessRunnerTest, TimeoutStillDrainsOutputWrittenBeforeTheKill) {
  ProcessOptions O;
  O.TimeoutMs = 250;
  ProcessResult R =
      runProcess({"/bin/sh", "-c", "printf early; sleep 30"}, O);
  EXPECT_EQ(R.St, ProcessResult::Status::TimedOut);
  EXPECT_EQ(R.Stdout, "early");
}

TEST(ProcessRunnerTest, MissingBinaryIsStartFailedNotAnExitCode) {
  ProcessResult R = runProcess({"spe-no-such-binary-exists"});
  ASSERT_EQ(R.St, ProcessResult::Status::StartFailed);
  EXPECT_NE(R.Error.find("spe-no-such-binary-exists"), std::string::npos);
}

TEST(ProcessRunnerTest, OutputCapIsEnforcedWithoutDeadlock) {
  // Far more output than both the cap and the pipe buffer: the runner must
  // keep draining (or the child would block forever on a full pipe) while
  // retaining only the first MaxOutputBytes.
  ProcessOptions O;
  O.MaxOutputBytes = 1024;
  ProcessResult R = runProcess(
      {"/bin/sh", "-c", "i=0; while [ $i -lt 20000 ]; do echo aaaaaaaaaa; "
                        "i=$((i+1)); done"},
      O);
  ASSERT_EQ(R.St, ProcessResult::Status::Exited) << R.Error;
  EXPECT_EQ(R.Stdout.size(), 1024u);
}

//===----------------------------------------------------------------------===//
// Divergence classification (shared harness / repro-oracle definition)
//===----------------------------------------------------------------------===//

TEST(ClassifyDivergenceTest, CoversEveryKindAndMasksWaitStatusExits) {
  BackendObservation O;
  O.Exec = BackendObservation::ExecStatus::Timeout;
  EXPECT_EQ(classifyDivergence(O, 0, ""), "miscompilation (hang)");
  O.Exec = BackendObservation::ExecStatus::Trap;
  EXPECT_EQ(classifyDivergence(O, 0, ""), "miscompilation (trap)");

  O.Exec = BackendObservation::ExecStatus::Ok;
  O.ExitCode = 3;
  EXPECT_EQ(classifyDivergence(O, 7, ""), "miscompilation (exit 3 != 7)");
  O.ExitCode = 7;
  O.Output = "x";
  EXPECT_EQ(classifyDivergence(O, 7, "y"), "miscompilation (output)");
  EXPECT_EQ(classifyDivergence(O, 7, "x"), "");

  // A wait status keeps only the low 8 bits of main's return value: 300
  // truly came back as 44, which must not read as a divergence...
  O.ExitCodeLow8 = true;
  O.ExitCode = 44;
  O.Output = "";
  EXPECT_EQ(classifyDivergence(O, 300, ""), "");
  // ...while a genuine mismatch still must.
  EXPECT_EQ(classifyDivergence(O, 301, ""), "miscompilation (exit 44 != 45)");
}

//===----------------------------------------------------------------------===//
// Crash-signature extraction
//===----------------------------------------------------------------------===//

TEST(ExternalBackendTest, ExtractsAndNormalizesCrashMarkers) {
  // The variant-specific scratch-file prefix must be stripped so two
  // variants crashing in the same pass share one signature.
  EXPECT_EQ(ExternalBackend::extractCrashSignature(
                "/tmp/spe-ext-11-3.c:4:9: internal compiler error: in "
                "fold_binary, at fold-const.c:1234\ncompilation terminated.\n",
                "fallback"),
            "internal compiler error: in fold_binary, at fold-const.c:1234");
  // Clang-style assertion lines keep their stable prefix.
  EXPECT_EQ(ExternalBackend::extractCrashSignature(
                "clang: Assertion `N < size()' failed.\n", "fallback"),
            "clang: Assertion `N < size()' failed.");
  // Plain diagnostics are not crashes.
  EXPECT_EQ(ExternalBackend::extractCrashSignature(
                "x.c:1:1: error: unknown type name 'frob'\n", "fallback"),
            "fallback");
}

//===----------------------------------------------------------------------===//
// Signature-only finding semantics (no ground truth)
//===----------------------------------------------------------------------===//

namespace {

/// Scriptable backend: returns a fixed observation, optionally claiming
/// ground truth with arbitrary FiredBugs ids.
struct StubBackend : CompilerBackend {
  BackendObservation Obs;
  bool GroundTruth = false;
  std::string Id = "stub";

  std::string identity() const override { return Id; }
  bool hasGroundTruth() const override { return GroundTruth; }
  BackendObservation run(const std::string &, const CompilerConfig &,
                         CoverageRegistry *) const override {
    return Obs;
  }
};

/// Oracle-clean 1-variant program for driving testProgram.
const char *TrivialSeed = "int main(void) { return 5; }\n";

} // namespace

TEST(SignatureOnlyTest, ForeignFiredBugsIdsCannotReadOutOfBounds) {
  // Regression: the harness indexed bugDatabase()[Id - 1] unchecked on the
  // assumption that fired ids are dense 1..N. A backend reporting foreign
  // (or absent) ids -- exactly what external backends do -- walked off the
  // array. With the checked lookup the ids are simply unattributable and
  // dropped.
  StubBackend B;
  B.GroundTruth = true;
  B.Obs.Compile = BackendObservation::CompileStatus::Ok;
  B.Obs.CompileTimeAnomaly = true;
  B.Obs.FiredBugs = {999'999, -7, 0};
  B.Obs.Exec = BackendObservation::ExecStatus::Ok;
  B.Obs.ExitCode = 1; // Diverges from the oracle's 5.

  HarnessOptions Opts;
  Opts.Configs = {{Persona::GccSim, 70, 2, true}};
  Opts.Backend = &B;
  DifferentialHarness Harness(Opts);
  CampaignResult R;
  Harness.testProgram(TrivialSeed, R);

  EXPECT_EQ(R.PerformanceObservations, 1u);
  EXPECT_EQ(R.WrongCodeObservations, 1u);
  EXPECT_TRUE(R.UniqueBugs.empty());
  EXPECT_TRUE(R.RawFindings.empty());
}

TEST(SignatureOnlyTest, FindingsKeyByNormalizedSignatureAtIdZero) {
  StubBackend B; // No ground truth: the external-backend shape.
  B.Obs.Compile = BackendObservation::CompileStatus::Crashed;
  B.Obs.CrashSignature = "internal compiler error: in reload, at reload.c:1";

  HarnessOptions Opts;
  Opts.Configs = {{Persona::GccSim, 140, 0, true},
                  {Persona::GccSim, 140, 2, true}};
  Opts.Backend = &B;
  DifferentialHarness Harness(Opts);
  CampaignResult R;
  Harness.testProgram(TrivialSeed, R);

  // One finding per configuration, both at BugId 0, keyed by signature;
  // UniqueBugs (a by-ground-truth-id report) stays empty.
  EXPECT_EQ(R.CrashObservations, 2u);
  EXPECT_TRUE(R.UniqueBugs.empty());
  ASSERT_EQ(R.RawFindings.size(), 2u);
  for (const auto &[Key, Bug] : R.RawFindings) {
    EXPECT_EQ(Key.BugId, 0);
    EXPECT_EQ(Key.Sig, B.Obs.CrashSignature);
    EXPECT_EQ(Bug.BugId, 0);
  }
  // Signature triage collapses the per-config duplicates into one cluster.
  std::vector<TriagedBug> Clusters = clusterBySignature(R.RawFindings);
  ASSERT_EQ(Clusters.size(), 1u);
  EXPECT_EQ(Clusters[0].RawCount, 2u);
  EXPECT_EQ(Clusters[0].Sig.Key, B.Obs.CrashSignature);
}

TEST(SignatureOnlyTest, DistinctSignaturesStayDistinctRawFindings) {
  // Two different crashes under the *same* configuration must not collapse
  // into one raw finding just because both carry BugId 0.
  StubBackend A, B;
  A.Obs.Compile = B.Obs.Compile = BackendObservation::CompileStatus::Crashed;
  A.Obs.CrashSignature = "internal compiler error: in pass_a";
  B.Obs.CrashSignature = "internal compiler error: in pass_b";

  HarnessOptions Opts;
  Opts.Configs = {{Persona::GccSim, 140, 1, true}};
  CampaignResult R;
  Opts.Backend = &A;
  DifferentialHarness(Opts).testProgram(TrivialSeed, R);
  Opts.Backend = &B;
  DifferentialHarness(Opts).testProgram(TrivialSeed, R);

  EXPECT_EQ(R.RawFindings.size(), 2u);
  EXPECT_EQ(clusterBySignature(R.RawFindings).size(), 2u);
}

//===----------------------------------------------------------------------===//
// ExternalBackend against the host compiler (auto-skipped when absent)
//===----------------------------------------------------------------------===//

TEST(ExternalBackendTest, IdentityCarriesCommandLineAndVersion) {
  SKIP_WITHOUT_HOST_CC();
  const ExternalBackend &B = hostBackend();
  EXPECT_FALSE(B.versionLine().empty());
  EXPECT_NE(B.identity().find("cc"), std::string::npos);
  EXPECT_NE(B.identity().find(B.versionLine()), std::string::npos);
  EXPECT_FALSE(B.hasGroundTruth());
}

TEST(ExternalBackendTest, UnavailableCompilerIsReportedNotFatal) {
  ExternalBackendOptions O;
  O.Command = {"spe-no-such-compiler"};
  ExternalBackend B(O);
  EXPECT_FALSE(B.available());
  EXPECT_NE(B.unavailableReason().find("spe-no-such-compiler"),
            std::string::npos);
  // identity() still pins the (unusable) configuration for fingerprints.
  EXPECT_NE(B.identity().find("unavailable"), std::string::npos);
  BackendObservation Obs = B.run("int main(void) { return 0; }\n",
                                 {Persona::GccSim, 140, 0, true}, nullptr);
  EXPECT_EQ(Obs.Compile, BackendObservation::CompileStatus::Rejected);
}

TEST(ExternalBackendTest, CompilesRunsAndObservesARealBinary) {
  SKIP_WITHOUT_HOST_CC();
  BackendObservation Obs = hostBackend().run(
      "int main(void) {\n  printf(\"hi %d\\n\", 2);\n  return 41;\n}\n",
      {Persona::GccSim, 140, 2, true}, nullptr);
  ASSERT_EQ(Obs.Compile, BackendObservation::CompileStatus::Ok);
  ASSERT_EQ(Obs.Exec, BackendObservation::ExecStatus::Ok);
  EXPECT_EQ(Obs.ExitCode, 41);
  EXPECT_TRUE(Obs.ExitCodeLow8);
  EXPECT_EQ(Obs.Output, "hi 2\n");
}

TEST(ExternalBackendTest, RejectsWhatTheHostFrontendRejects) {
  SKIP_WITHOUT_HOST_CC();
  BackendObservation Obs =
      hostBackend().run("int main(void) { return frob; }\n",
                        {Persona::GccSim, 140, 0, true}, nullptr);
  EXPECT_EQ(Obs.Compile, BackendObservation::CompileStatus::Rejected);
}

TEST(ExternalBackendTest, AgreementWithTheOracleProducesNoFindings) {
  SKIP_WITHOUT_HOST_CC();
  HarnessOptions Opts;
  Opts.Configs = {{Persona::GccSim, 140, 0, true},
                  {Persona::GccSim, 140, 2, true}};
  Opts.Backend = &hostBackend();
  DifferentialHarness Harness(Opts);
  CampaignResult R;
  Harness.testProgram("int main(void) {\n"
                      "  int x = 6, y = 7;\n"
                      "  printf(\"%d\\n\", x * y);\n"
                      "  return x;\n"
                      "}\n",
                      R);
  EXPECT_EQ(R.VariantsTested, 1u);
  EXPECT_TRUE(R.RawFindings.empty())
      << "host compiler diverged from the reference oracle on a trivial "
         "program -- interpreter semantics bug?";
  EXPECT_EQ(R.CrashObservations + R.WrongCodeObservations, 0u);
}

namespace {

/// Writes a fake-compiler wrapper script: ICEs (with a stable marker line)
/// on any translation unit containing MAGIC_ICE, delegates to the real cc
/// otherwise. Lets the full subprocess path exercise crash classification
/// without needing a genuinely buggy host compiler.
std::string writeFakeIceCompiler() {
  std::string Path = tempPath("fake-ice-cc.sh");
  {
    std::ofstream Out(Path);
    Out << "#!/bin/sh\n"
           "src=\n"
           "for a in \"$@\"; do\n"
           "  case \"$a\" in *.c) src=\"$a\";; esac\n"
           "done\n"
           "if [ -n \"$src\" ] && grep -q MAGIC_ICE \"$src\"; then\n"
           "  echo \"$src:1:1: internal compiler error: in fake_fold, at "
           "fake.c:42\" >&2\n"
           "  exit 1\n"
           "fi\n"
           "exec cc \"$@\"\n";
  }
  ::chmod(Path.c_str(), 0755);
  return Path;
}

} // namespace

TEST(ExternalBackendTest, CompilerCrashBecomesASignatureOnlyFinding) {
  SKIP_WITHOUT_HOST_CC();
  ExternalBackendOptions O;
  O.Command = {"./" + writeFakeIceCompiler()};
  O.TempDir = "external_test_tmp";
  ExternalBackend Fake(O);
  ASSERT_TRUE(Fake.available()) << Fake.unavailableReason();

  HarnessOptions Opts;
  Opts.Configs = {{Persona::GccSim, 140, 1, true}};
  Opts.Backend = &Fake;
  DifferentialHarness Harness(Opts);
  CampaignResult R;
  Harness.testProgram("int MAGIC_ICE = 3;\n"
                      "int main(void) { return MAGIC_ICE; }\n",
                      R);
  EXPECT_EQ(R.CrashObservations, 1u);
  EXPECT_TRUE(R.UniqueBugs.empty());
  ASSERT_EQ(R.RawFindings.size(), 1u);
  const auto &[Key, Bug] = *R.RawFindings.begin();
  EXPECT_EQ(Key.BugId, 0);
  // The scratch-file prefix must have been stripped to the stable key.
  EXPECT_EQ(Key.Sig,
            "internal compiler error: in fake_fold, at fake.c:42");
  EXPECT_EQ(Bug.Signature, Key.Sig);
  EXPECT_EQ(Bug.Effect, BugEffect::Crash);
}

//===----------------------------------------------------------------------===//
// End-to-end: campaign over embedded seeds through the host compiler
//===----------------------------------------------------------------------===//

namespace {

HarnessOptions externalCampaignOptions() {
  HarnessOptions Opts;
  Opts.Configs = {{Persona::GccSim, 140, 0, true},
                  {Persona::GccSim, 140, 2, true}};
  Opts.Backend = &hostBackend();
  Opts.VariantBudget = 6;
  return Opts;
}

std::vector<std::string> externalCampaignSeeds() {
  // The Figure 1 seed (pure int arithmetic) and the division seed: small
  // rank spaces, UB-heavy neighborhoods for the oracle to prune, and
  // nothing the host compiler should reject.
  return {embeddedSeeds()[2], embeddedSeeds()[5]};
}

} // namespace

TEST(ExternalCampaignTest, DeterministicAcrossThreadCounts) {
  SKIP_WITHOUT_HOST_CC();
  std::vector<std::string> Seeds = externalCampaignSeeds();
  HarnessOptions Opts = externalCampaignOptions();
  Opts.Threads = 1;
  CampaignResult R1 = DifferentialHarness(Opts).runCampaign(Seeds);
  EXPECT_GT(R1.VariantsTested, 0u);
  for (unsigned Threads : {2u, 4u}) {
    Opts.Threads = Threads;
    CampaignResult RN = DifferentialHarness(Opts).runCampaign(Seeds);
    EXPECT_TRUE(RN == R1) << "thread count " << Threads
                          << " changed the campaign result";
  }
}

TEST(ExternalCampaignTest, CrashResumeIsBitIdenticalAndSkewIsRejected) {
  SKIP_WITHOUT_HOST_CC();
  std::vector<std::string> Seeds = externalCampaignSeeds();

  HarnessOptions Base = externalCampaignOptions();
  Base.CheckpointPath = tempPath("external_campaign.ck");
  Base.CheckpointEveryN = 2;
  CampaignResult Uninterrupted = DifferentialHarness(Base).runCampaign(Seeds);

  // Kill mid-campaign, then resume from the on-disk snapshot.
  HarnessOptions Crashing = Base;
  Crashing.SimulateCrashAfter = 5;
  (void)DifferentialHarness(Crashing).runCampaign(Seeds);
  CampaignResult Resumed;
  std::string Err;
  ASSERT_TRUE(DifferentialHarness(Base).resumeCampaign(Seeds, Resumed, Err))
      << Err;
  EXPECT_TRUE(Resumed == Uninterrupted);

  // A resume against a different backend command line must be refused:
  // same seeds, same options, different compiler identity.
  ExternalBackendOptions Other = hostBackend().options();
  Other.ExtraArgs.push_back("-fwrapv");
  ExternalBackend OtherBackend(Other);
  ASSERT_TRUE(OtherBackend.available()) << OtherBackend.unavailableReason();
  HarnessOptions Skewed = Base;
  Skewed.Backend = &OtherBackend;
  CampaignResult R;
  EXPECT_FALSE(DifferentialHarness(Skewed).resumeCampaign(Seeds, R, Err));
  EXPECT_NE(Err.find("options fingerprint"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Backend lifecycle: memoized version probe, per-instance scratch dir
//===----------------------------------------------------------------------===//

TEST(ExternalBackendTest, VersionProbeIsMemoizedPerCommandLine) {
  // A counting fake compiler: every --version probe that actually executes
  // appends a line. Three backends over the same command line must share
  // one probe, process-wide.
  std::string Counter = tempPath("probe_count_" + std::to_string(::getpid()));
  std::string Probe = tempPath("probe-count-cc.sh");
  {
    std::ofstream Out(Probe);
    Out << "#!/bin/sh\n"
           "echo probed >> " << Counter << "\n"
           "echo 'fake-probe-cc 1.0'\n";
  }
  ::chmod(Probe.c_str(), 0755);
  ::unlink(Counter.c_str());

  ExternalBackendOptions O;
  O.Command = {"./" + Probe};
  O.TempDir = "external_test_tmp";
  ExternalBackend A(O), B(O), C(O);
  ASSERT_TRUE(A.available()) << A.unavailableReason();
  EXPECT_EQ(A.versionLine(), "fake-probe-cc 1.0");
  EXPECT_EQ(B.versionLine(), A.versionLine());
  EXPECT_EQ(C.versionLine(), A.versionLine());

  std::ifstream In(Counter);
  std::string Line;
  size_t Probes = 0;
  while (std::getline(In, Line))
    ++Probes;
  EXPECT_EQ(Probes, 1u) << "same command line probed more than once";
}

TEST(ExternalBackendTest, ScratchDirectoryIsRemovedOnDestruction) {
  SKIP_WITHOUT_HOST_CC();
  std::string Dir;
  {
    ExternalBackendOptions O;
    O.TempDir = "external_test_tmp";
    ExternalBackend B(O);
    ASSERT_TRUE(B.available()) << B.unavailableReason();
    Dir = B.scratchDir();
    EXPECT_TRUE(std::filesystem::is_directory(Dir));
    // Leave real scratch traffic behind so removal has work to do.
    BackendObservation Obs = B.run("int main(void) { return 4; }\n",
                                   {Persona::GccSim, 140, 1, true}, nullptr);
    EXPECT_EQ(Obs.Compile, BackendObservation::CompileStatus::Ok);
  }
  EXPECT_FALSE(std::filesystem::exists(Dir))
      << "scratch directory survived backend destruction: " << Dir;
}

// A SIGKILLed campaign never runs the destructor above, so construction
// sweeps the scratch base for directories whose owner pid is dead. The
// sweep itself is a static function with no compiler dependency.
TEST(ExternalBackendTest, StaleScratchIsSweptLiveScratchSurvives) {
  std::string Base = tempPath("sweep-base");
  std::filesystem::create_directories(Base);

  // Stale: marker names a pid beyond any real pid space (pid_max defaults
  // to 4194304), so kill(pid, 0) reliably reports ESRCH.
  std::string Stale = Base + "/spe-ext-stale1";
  std::filesystem::create_directories(Stale);
  { std::ofstream(Stale + "/spe-owner.pid") << 2000000000 << "\n"; }
  { std::ofstream(Stale + "/leftover.o") << "junk"; }
  // Stale: no marker at all -- the owner died between mkdtemp and the
  // marker write.
  std::string NoMarker = Base + "/spe-ext-nomark";
  std::filesystem::create_directories(NoMarker);
  // Live: marker names this very process.
  std::string Live = Base + "/spe-ext-live01";
  std::filesystem::create_directories(Live);
  { std::ofstream(Live + "/spe-owner.pid") << ::getpid() << "\n"; }
  // Unrelated directory: name does not match the scratch prefix.
  std::string Other = Base + "/other-dir";
  std::filesystem::create_directories(Other);

  EXPECT_EQ(ExternalBackend::sweepStaleScratch(Base), 2u);
  EXPECT_FALSE(std::filesystem::exists(Stale));
  EXPECT_FALSE(std::filesystem::exists(NoMarker));
  EXPECT_TRUE(std::filesystem::exists(Live));
  EXPECT_TRUE(std::filesystem::exists(Other));
  std::filesystem::remove_all(Base);
}

TEST(ExternalBackendTest, ConstructionReapsStaleScratchAndMarksItsOwn) {
  SKIP_WITHOUT_HOST_CC();
  std::string Base = tempPath("sweep-ctor-base");
  std::filesystem::create_directories(Base);
  std::string Stale = Base + "/spe-ext-ghost1";
  std::filesystem::create_directories(Stale);
  { std::ofstream(Stale + "/spe-owner.pid") << 2000000000 << "\n"; }

  ExternalBackendOptions O;
  O.TempDir = Base;
  ExternalBackend B(O);
  ASSERT_TRUE(B.available()) << B.unavailableReason();
  EXPECT_FALSE(std::filesystem::exists(Stale))
      << "stale scratch survived backend construction";
  // Our own scratch carries a marker naming this process, so a sweep from
  // any other (or this) process leaves it alone.
  long long Pid = 0;
  std::ifstream(B.scratchDir() + "/spe-owner.pid") >> Pid;
  EXPECT_EQ(Pid, static_cast<long long>(::getpid()));
  EXPECT_EQ(ExternalBackend::sweepStaleScratch(Base), 0u);
  EXPECT_TRUE(std::filesystem::exists(B.scratchDir()));
}

//===----------------------------------------------------------------------===//
// Batched campaigns: bisection attribution, pollution, pool, resume
//===----------------------------------------------------------------------===//

namespace {

/// Like writeFakeIceCompiler, but triggering only on a *use* of MAGIC_ICE
/// (the statement-final "MAGIC_ICE;", as in "a + MAGIC_ICE;" or "return
/// MAGIC_ICE;"), a pattern the batch alpha-rename preserves
/// ("v<i>_MAGIC_ICE;") while the declaration ("MAGIC_ICE = 2") never
/// matches. Within one seed's variant set only the variants that bind a
/// use-hole to MAGIC_ICE trigger, so the batches the harness forms are
/// genuinely mixed and the bisector has real splitting to do.
std::string writeFakeIceOnUseCompiler() {
  std::string Path = tempPath("fake-ice-use-cc.sh");
  {
    std::ofstream Out(Path);
    Out << "#!/bin/sh\n"
           "src=\n"
           "for a in \"$@\"; do\n"
           "  case \"$a\" in *.c) src=\"$a\";; esac\n"
           "done\n"
           "if [ -n \"$src\" ] && grep -q 'MAGIC_ICE;' \"$src\"; then\n"
           "  echo \"$src:1:1: internal compiler error: in fake_use_fold, "
           "at fake.c:99\" >&2\n"
           "  exit 1\n"
           "fi\n"
           "exec cc \"$@\"\n";
  }
  ::chmod(Path.c_str(), 0755);
  return Path;
}

/// Wrong-code fake: compiles normally, then -- when the TU contains a use
/// "MAGIC_WRONG +" -- swaps the produced binary for one that exits 99
/// whatever its argv. In a batch this poisons *every* member's execution,
/// so only the mandated solo re-verification keeps the innocent members
/// out of the findings.
std::string writeFakeWrongCodeCompiler() {
  std::string Path = tempPath("fake-wrong-cc.sh");
  {
    std::ofstream Out(Path);
    Out << "#!/bin/sh\n"
           "src=\n"
           "out=\n"
           "prev=\n"
           "for a in \"$@\"; do\n"
           "  case \"$prev\" in -o) out=\"$a\";; esac\n"
           "  case \"$a\" in *.c) src=\"$a\";; esac\n"
           "  prev=\"$a\"\n"
           "done\n"
           "cc \"$@\" || exit $?\n"
           "if [ -n \"$src\" ] && [ -n \"$out\" ] && "
           "grep -q 'MAGIC_WRONG;' \"$src\"; then\n"
           "  printf '#!/bin/sh\\nexit 99\\n' > \"$out\"\n"
           "  chmod +x \"$out\"\n"
           "fi\n"
           "exit 0\n";
  }
  ::chmod(Path.c_str(), 0755);
  return Path;
}

/// One-seed campaign whose variant set mixes triggering and clean members:
/// use-holes over {a, MAGIC_<X>} put the magic name into left-of-+ position
/// in some variants only.
std::vector<std::string> mixedTriggerSeeds(const std::string &Magic) {
  return {"int a = 1, " + Magic + " = 2;\n"
          "int main(void) { int x = a + a; return x; }\n"};
}

HarnessOptions fakeCompilerCampaignOptions(const CompilerBackend &B) {
  HarnessOptions Opts;
  Opts.Configs = {{Persona::GccSim, 140, 0, true},
                  {Persona::GccSim, 140, 2, true}};
  Opts.Backend = &B;
  Opts.VariantBudget = 12;
  return Opts;
}

} // namespace

TEST(BatchedExternalCampaignTest, BisectionAttributionMatchesUnbatched) {
  SKIP_WITHOUT_HOST_CC();
  ExternalBackendOptions O;
  O.Command = {"./" + writeFakeIceOnUseCompiler()};
  O.TempDir = "external_test_tmp";
  ExternalBackend Fake(O);
  ASSERT_TRUE(Fake.available()) << Fake.unavailableReason();

  std::vector<std::string> Seeds = mixedTriggerSeeds("MAGIC_ICE");
  HarnessOptions Opts = fakeCompilerCampaignOptions(Fake);
  Opts.BatchSize = 1;
  Opts.Threads = 1;
  CampaignResult Ref = DifferentialHarness(Opts).runCampaign(Seeds);

  // The reference campaign must be genuinely mixed: some variants ICE,
  // some compile and run cleanly -- otherwise batching is never bisecting.
  EXPECT_GT(Ref.CrashObservations, 0u);
  EXPECT_LT(Ref.CrashObservations,
            Ref.VariantsTested * Opts.Configs.size());
  ASSERT_FALSE(Ref.RawFindings.empty());
  for (const auto &[Key, Bug] : Ref.RawFindings) {
    EXPECT_EQ(Key.BugId, 0);
    EXPECT_EQ(Key.Sig,
              "internal compiler error: in fake_use_fold, at fake.c:99");
  }

  // Batch sizes bracketing the campaign size and thread counts across the
  // scheduler: rank, signature, triage input -- the whole CampaignResult --
  // must be bit-identical to the unbatched reference.
  for (uint64_t Batch : {2u, 3u, 4u, 5u, 8u}) {
    for (unsigned Threads : {1u, 2u, 4u}) {
      Opts.BatchSize = Batch;
      Opts.Threads = Threads;
      CampaignResult R = DifferentialHarness(Opts).runCampaign(Seeds);
      EXPECT_TRUE(R == Ref)
          << "BatchSize " << Batch << " x " << Threads
          << " threads changed attribution vs the unbatched campaign";
    }
  }
}

TEST(BatchedExternalCampaignTest, BatchPollutionIsClearedBySoloReVerification) {
  SKIP_WITHOUT_HOST_CC();
  ExternalBackendOptions O;
  O.Command = {"./" + writeFakeWrongCodeCompiler()};
  O.TempDir = "external_test_tmp";
  ExternalBackend Fake(O);
  ASSERT_TRUE(Fake.available()) << Fake.unavailableReason();

  std::vector<std::string> Seeds = mixedTriggerSeeds("MAGIC_WRONG");
  HarnessOptions Opts = fakeCompilerCampaignOptions(Fake);
  Opts.BatchSize = 1;
  Opts.Threads = 1;
  CampaignResult Ref = DifferentialHarness(Opts).runCampaign(Seeds);

  // Mixed again: some variants miscompile (exit 99 vs the oracle), the
  // rest are clean.
  EXPECT_GT(Ref.WrongCodeObservations, 0u);
  EXPECT_LT(Ref.WrongCodeObservations,
            Ref.VariantsTested * Opts.Configs.size());

  // In a batch the poisoned binary makes *every* member diverge; only the
  // triggering members may survive solo re-verification into findings.
  for (uint64_t Batch : {4u, 8u}) {
    for (unsigned Threads : {1u, 2u}) {
      Opts.BatchSize = Batch;
      Opts.Threads = Threads;
      CampaignResult R = DifferentialHarness(Opts).runCampaign(Seeds);
      EXPECT_TRUE(R == Ref)
          << "BatchSize " << Batch << " x " << Threads
          << ": batch-level pollution leaked into the findings";
    }
  }
}

TEST(BatchedExternalCampaignTest, HostCampaignIsBatchInvariantWithWarmPool) {
  SKIP_WITHOUT_HOST_CC();
  std::vector<std::string> Seeds = externalCampaignSeeds();
  HarnessOptions Opts = externalCampaignOptions();
  Opts.BatchSize = 1;
  Opts.Threads = 1;
  CampaignResult Ref = DifferentialHarness(Opts).runCampaign(Seeds);
  EXPECT_GT(Ref.VariantsTested, 0u);

  ExternalBackendOptions PO = hostBackend().options();
  PO.PoolWorkers = 2;
  ExternalBackend Pooled(PO);
  ASSERT_TRUE(Pooled.available()) << Pooled.unavailableReason();
  ASSERT_NE(Pooled.pool(), nullptr);
  // The pool never enters the backend identity (it cannot change results),
  // so pooled campaigns stay resume-compatible with unpooled ones.
  EXPECT_EQ(Pooled.identity(), hostBackend().identity());

  Opts.Backend = &Pooled;
  for (uint64_t Batch : {8u, 64u}) {
    for (unsigned Threads : {1u, 2u, 4u}) {
      Opts.BatchSize = Batch;
      Opts.Threads = Threads;
      CampaignResult R = DifferentialHarness(Opts).runCampaign(Seeds);
      EXPECT_TRUE(R == Ref)
          << "pooled BatchSize " << Batch << " x " << Threads
          << " threads diverged from the direct unbatched campaign";
    }
  }
}

TEST(BatchedExternalCampaignTest, BrokerDeathMidCampaignDoesNotChangeResults) {
  SKIP_WITHOUT_HOST_CC();
  std::vector<std::string> Seeds = externalCampaignSeeds();
  HarnessOptions Opts = externalCampaignOptions();
  Opts.BatchSize = 1;
  Opts.Threads = 1;
  CampaignResult Ref = DifferentialHarness(Opts).runCampaign(Seeds);

  ExternalBackendOptions PO = hostBackend().options();
  PO.PoolWorkers = 2;
  ExternalBackend Pooled(PO);
  ASSERT_TRUE(Pooled.available()) << Pooled.unavailableReason();

  // Kill one broker shortly after the campaign starts: the in-flight job
  // is retried on a respawned broker and nothing is lost or duplicated.
  Opts.Backend = &Pooled;
  Opts.BatchSize = 8;
  Opts.Threads = 2;
  std::thread Killer([&Pooled] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    Pooled.pool()->killBrokerForTest();
  });
  CampaignResult R = DifferentialHarness(Opts).runCampaign(Seeds);
  Killer.join();
  EXPECT_TRUE(R == Ref)
      << "broker death mid-campaign changed the campaign result";
}

TEST(BatchedExternalCampaignTest, CheckpointedResumeAcrossBatchSizes) {
  SKIP_WITHOUT_HOST_CC();
  std::vector<std::string> Seeds = externalCampaignSeeds();

  // Uninterrupted unbatched reference.
  HarnessOptions Base = externalCampaignOptions();
  Base.CheckpointEveryN = 2;
  HarnessOptions Ref = Base;
  Ref.CheckpointPath = tempPath("batched_resume_ref.ck");
  Ref.BatchSize = 1;
  CampaignResult Uninterrupted = DifferentialHarness(Ref).runCampaign(Seeds);

  // Crash a *batched, pooled* campaign mid-flight...
  ExternalBackendOptions PO = hostBackend().options();
  PO.PoolWorkers = 2;
  ExternalBackend Pooled(PO);
  ASSERT_TRUE(Pooled.available()) << Pooled.unavailableReason();
  HarnessOptions Crashing = Base;
  Crashing.CheckpointPath = tempPath("batched_resume.ck");
  Crashing.Backend = &Pooled;
  Crashing.BatchSize = 8;
  Crashing.SimulateCrashAfter = 5;
  (void)DifferentialHarness(Crashing).runCampaign(Seeds);

  // ...and resume it unbatched and unpooled: BatchSize and PoolWorkers are
  // outside the fingerprint, and the drained-before-publish protocol means
  // the snapshot describes a clean unbatched prefix.
  HarnessOptions Resuming = Base;
  Resuming.CheckpointPath = Crashing.CheckpointPath;
  Resuming.BatchSize = 1;
  CampaignResult Resumed;
  std::string Err;
  ASSERT_TRUE(DifferentialHarness(Resuming).resumeCampaign(Seeds, Resumed,
                                                           Err))
      << Err;
  EXPECT_TRUE(Resumed == Uninterrupted)
      << "batched crash + unbatched resume diverged from the unbatched "
         "uninterrupted campaign";
}
