//===- tests/combinatorics_stirling_test.cpp - Stirling/Bell tests -------===//

#include "combinatorics/Stirling.h"

#include "gtest/gtest.h"

using namespace spe;

TEST(StirlingTest, BaseCases) {
  StirlingTable T;
  EXPECT_EQ(T.stirling2(0, 0).toUint64(), 1u);
  EXPECT_EQ(T.stirling2(1, 0).toUint64(), 0u);
  EXPECT_EQ(T.stirling2(1, 1).toUint64(), 1u);
  EXPECT_EQ(T.stirling2(5, 6).toUint64(), 0u);
}

TEST(StirlingTest, KnownSmallValues) {
  StirlingTable T;
  // Values used by the paper's Example 6 arithmetic.
  EXPECT_EQ(T.stirling2(5, 2).toUint64(), 15u);
  EXPECT_EQ(T.stirling2(5, 1).toUint64(), 1u);
  EXPECT_EQ(T.stirling2(4, 2).toUint64(), 7u);
  EXPECT_EQ(T.stirling2(3, 2).toUint64(), 3u);
  EXPECT_EQ(T.stirling2(2, 2).toUint64(), 1u);
  EXPECT_EQ(T.stirling2(2, 1).toUint64(), 1u);
  // A classic: {10,5} = 42525.
  EXPECT_EQ(T.stirling2(10, 5).toUint64(), 42525u);
}

TEST(StirlingTest, RowSumsAreBellNumbers) {
  StirlingTable T;
  const uint64_t Bell[] = {1,   1,    2,    5,     15,    52,   203,
                           877, 4140, 21147, 115975};
  for (unsigned N = 0; N <= 10; ++N)
    EXPECT_EQ(T.bell(N).toUint64(), Bell[N]) << "B(" << N << ")";
}

TEST(StirlingTest, Bell52IsFigure2Count) {
  // The paper's Figure 2 program has 5 holes over 5 same-scope variables:
  // naive 5^5 = 3125 programs, SPE 52 = B(5) programs.
  StirlingTable T;
  EXPECT_EQ(T.bell(5).toUint64(), 52u);
}

TEST(StirlingTest, PartitionsUpToTruncatesAtK) {
  StirlingTable T;
  // {5,1}+{5,2} = 16, the S'_f term of Example 6.
  EXPECT_EQ(T.partitionsUpTo(5, 2).toUint64(), 16u);
  EXPECT_EQ(T.partitionsUpTo(5, 5).toUint64(), 52u);
  EXPECT_EQ(T.partitionsUpTo(5, 100).toUint64(), 52u);
  EXPECT_EQ(T.partitionsUpTo(0, 3).toUint64(), 1u);
  EXPECT_EQ(T.partitionsUpTo(3, 0).toUint64(), 0u);
}

TEST(StirlingTest, RecurrenceHoldsForLargeEntries) {
  StirlingTable T;
  // {n,k} = k*{n-1,k} + {n-1,k-1} on a big row.
  for (unsigned K = 1; K <= 20; ++K) {
    BigInt Expected = T.stirling2(39, K) * static_cast<uint64_t>(K);
    Expected += T.stirling2(39, K - 1);
    EXPECT_EQ(T.stirling2(40, K).toString(), Expected.toString());
  }
}

TEST(StirlingTest, AsymptoticReductionFactor) {
  // Section 4.1.1: S ~ O(k^n / k!), a (k-1)! reduction over k^n.
  // Check the ratio k^n / S is within [k!/4, k!] for n = 20, k = 5.
  StirlingTable T;
  BigInt Naive = BigInt::pow(5, 20);
  BigInt Ours = T.partitionsUpTo(20, 5);
  double Ratio = Naive.toDouble() / Ours.toDouble();
  EXPECT_GT(Ratio, 120.0 / 4);
  EXPECT_LT(Ratio, 121.0);
}

TEST(StirlingTest, BinomialValues) {
  StirlingTable T;
  EXPECT_EQ(T.binomial(0, 0).toUint64(), 1u);
  EXPECT_EQ(T.binomial(5, 2).toUint64(), 10u);
  EXPECT_EQ(T.binomial(10, 10).toUint64(), 1u);
  EXPECT_EQ(T.binomial(10, 11).toUint64(), 0u);
  EXPECT_EQ(T.binomial(52, 5).toUint64(), 2598960u);
  // Pascal identity on a larger entry.
  BigInt Lhs = T.binomial(64, 32);
  BigInt Rhs = T.binomial(63, 31) + T.binomial(63, 32);
  EXPECT_EQ(Lhs.toString(), Rhs.toString());
}
