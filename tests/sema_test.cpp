//===- tests/sema_test.cpp - semantic analysis unit tests ----------------===//

#include "lang/Parser.h"
#include "sema/Sema.h"

#include "gtest/gtest.h"

using namespace spe;

namespace {

struct Analyzed {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  std::unique_ptr<Sema> Analysis;
  bool Ok = false;
};

std::unique_ptr<Analyzed> analyze(const std::string &Source) {
  auto R = std::make_unique<Analyzed>();
  if (!Parser::parse(Source, R->Ctx, R->Diags))
    return R;
  R->Analysis = std::make_unique<Sema>(R->Ctx, R->Diags);
  R->Ok = R->Analysis->run();
  return R;
}

} // namespace

TEST(SemaTest, ResolvesUsesToDeclarations) {
  auto R = analyze("int a;\nvoid f(void) { a = a + 1; }");
  ASSERT_TRUE(R->Ok) << R->Diags.toString();
  ASSERT_EQ(R->Analysis->variableUses().size(), 2u);
  for (DeclRefExpr *Use : R->Analysis->variableUses()) {
    ASSERT_NE(Use->decl(), nullptr);
    EXPECT_EQ(Use->decl()->name(), "a");
  }
}

TEST(SemaTest, UndeclaredIdentifierIsError) {
  auto R = analyze("void f(void) { x = 1; }");
  EXPECT_FALSE(R->Ok);
}

TEST(SemaTest, ShadowingResolvesToInnermost) {
  auto R = analyze("int a;\n"
                   "void f(void) {\n"
                   "  int a;\n"
                   "  { int a; a = 1; }\n"
                   "  a = 2;\n"
                   "}");
  ASSERT_TRUE(R->Ok) << R->Diags.toString();
  const auto &Uses = R->Analysis->variableUses();
  ASSERT_EQ(Uses.size(), 2u);
  // Inner use binds to the innermost 'a'; outer use to the function's 'a'.
  EXPECT_NE(Uses[0]->decl(), Uses[1]->decl());
  EXPECT_FALSE(Uses[0]->decl()->isGlobal());
  EXPECT_FALSE(Uses[1]->decl()->isGlobal());
  EXPECT_NE(Uses[0]->decl()->scopeId(), Uses[1]->decl()->scopeId());
}

TEST(SemaTest, RedeclarationInSameScopeIsError) {
  auto R = analyze("void f(void) { int a; int a; }");
  EXPECT_FALSE(R->Ok);
}

TEST(SemaTest, ScopeTreeShape) {
  auto R = analyze("int g;\n"
                   "void f(int p) {\n"
                   "  int x;\n"
                   "  if (p) { int y; y = x; }\n"
                   "}");
  ASSERT_TRUE(R->Ok) << R->Diags.toString();
  const auto &Scopes = R->Analysis->scopes();
  // file, params, body, if-block.
  ASSERT_EQ(Scopes.size(), 4u);
  EXPECT_EQ(Scopes[0].Parent, -1);
  EXPECT_EQ(Scopes[1].Parent, 0);
  EXPECT_EQ(Scopes[2].Parent, 1);
  EXPECT_EQ(Scopes[3].Parent, 2);
  EXPECT_EQ(Scopes[0].Vars.size(), 1u);
  EXPECT_EQ(Scopes[1].Vars.size(), 1u);
  EXPECT_EQ(Scopes[2].Vars.size(), 1u);
  EXPECT_EQ(Scopes[3].Vars.size(), 1u);
}

TEST(SemaTest, UsualArithmeticConversions) {
  auto R = analyze("char c; short s; int i; unsigned u; long l;\n"
                   "void f(void) { c + s; i + u; i + l; u + l; c << 1; }");
  ASSERT_TRUE(R->Ok) << R->Diags.toString();
  auto &Body = R->Ctx.findFunction("f")->body()->body();
  auto TypeOf = [&](int I) {
    return cast<ExprStmt>(Body[I])->expr()->type()->toString();
  };
  EXPECT_EQ(TypeOf(0), "int");           // char + short -> int
  EXPECT_EQ(TypeOf(1), "unsigned int");  // int + unsigned -> unsigned
  EXPECT_EQ(TypeOf(2), "long");          // int + long -> long
  EXPECT_EQ(TypeOf(3), "long");          // unsigned int + long -> long
  EXPECT_EQ(TypeOf(4), "int");           // char << 1 -> int
}

TEST(SemaTest, PointerTypeRules) {
  auto R = analyze("int a; int *p; int arr[4]; long d;\n"
                   "void f(void) {\n"
                   "  p = &a;\n"
                   "  a = *p;\n"
                   "  p = arr;\n"
                   "  a = arr[2];\n"
                   "  d = p - p;\n"
                   "  p = p + 1;\n"
                   "}");
  ASSERT_TRUE(R->Ok) << R->Diags.toString();
}

TEST(SemaTest, DerefNonPointerIsError) {
  auto R = analyze("int a; void f(void) { *a = 1; }");
  EXPECT_FALSE(R->Ok);
}

TEST(SemaTest, AssignToRValueIsError) {
  auto R = analyze("int a; void f(void) { (a + 1) = 2; }");
  EXPECT_FALSE(R->Ok);
}

TEST(SemaTest, AddressOfRValueIsError) {
  auto R = analyze("int a; int *p; void f(void) { p = &(a + 1); }");
  EXPECT_FALSE(R->Ok);
}

TEST(SemaTest, StructMemberResolution) {
  auto R = analyze("struct s { int x; int y; };\n"
                   "struct s v; struct s *p;\n"
                   "void f(void) { v.y = 1; p->x = v.y; }");
  ASSERT_TRUE(R->Ok) << R->Diags.toString();
  auto &Body = R->Ctx.findFunction("f")->body()->body();
  auto *First = cast<BinaryExpr>(cast<ExprStmt>(Body[0])->expr());
  EXPECT_EQ(cast<MemberExpr>(First->lhs())->fieldIndex(), 1);
}

TEST(SemaTest, UnknownFieldIsError) {
  auto R = analyze("struct s { int x; };\nstruct s v;\n"
                   "void f(void) { v.zz = 1; }");
  EXPECT_FALSE(R->Ok);
}

TEST(SemaTest, CallResolutionAndArity) {
  auto R = analyze("int g(int a) { return a; }\n"
                   "void f(void) { g(1); }");
  ASSERT_TRUE(R->Ok) << R->Diags.toString();
  auto BadArity = analyze("int g(int a) { return a; }\n"
                          "void f(void) { g(1, 2); }");
  EXPECT_FALSE(BadArity->Ok);
  auto Unknown = analyze("void f(void) { h(); }");
  EXPECT_FALSE(Unknown->Ok);
}

TEST(SemaTest, PrintfIsBuiltin) {
  auto R = analyze("int a;\nvoid f(void) { printf(\"%d\\n\", a); }");
  ASSERT_TRUE(R->Ok) << R->Diags.toString();
  auto Bad = analyze("int a;\nvoid f(void) { printf(a); }");
  EXPECT_FALSE(Bad->Ok);
}

TEST(SemaTest, GotoToUndefinedLabelIsError) {
  auto R = analyze("void f(void) { goto nowhere; }");
  EXPECT_FALSE(R->Ok);
  auto Dup = analyze("void f(void) { l: ; l: ; goto l; }");
  EXPECT_FALSE(Dup->Ok);
  auto Good = analyze("void f(void) { l: goto l; }");
  EXPECT_TRUE(Good->Ok) << Good->Diags.toString();
}

TEST(SemaTest, SequenceNumbersOrderDeclsAndUses) {
  auto R = analyze("void f(void) { int a = 1; int b = a; b = b + a; }");
  ASSERT_TRUE(R->Ok) << R->Diags.toString();
  // Uses in order: a (b's initializer), b (lhs), b (rhs), a (rhs).
  const auto &Uses = R->Analysis->variableUses();
  ASSERT_EQ(Uses.size(), 4u);
  const VarDecl *A = Uses[0]->decl();
  const VarDecl *B = Uses[1]->decl();
  EXPECT_EQ(A->name(), "a");
  EXPECT_EQ(B->name(), "b");
  // a declared before b, b before the use of a in its initializer.
  EXPECT_LT(R->Analysis->declSeqOf(A), R->Analysis->declSeqOf(B));
  EXPECT_LT(R->Analysis->declSeqOf(B), R->Analysis->useSeqOf(Uses[0]));
  EXPECT_LT(R->Analysis->useSeqOf(Uses[0]), R->Analysis->useSeqOf(Uses[1]));
}

TEST(SemaTest, ForInitDeclScopedToLoop) {
  auto R = analyze("void f(void) { for (int i = 0; i < 3; ++i) ; i = 1; }");
  // 'i' must not leak out of the for statement.
  EXPECT_FALSE(R->Ok);
}

TEST(SemaTest, StmtIdsAreDenseAndUnique) {
  auto R = analyze("int a;\n"
                   "void f(void) { a = 1; if (a) a = 2; while (a) a = 3; }");
  ASSERT_TRUE(R->Ok) << R->Diags.toString();
  EXPECT_GT(R->Analysis->numStmts(), 5);
}
