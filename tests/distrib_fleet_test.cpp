//===- tests/distrib_fleet_test.cpp - fleet campaign battery -------------===//
//
// The headline guarantee of the distrib layer (DESIGN.md Section 16): a
// CampaignCoordinator driving N worker *processes* ends with a
// CampaignResult -- unique bugs, raw findings, triage, and every
// deterministic counter -- bit-identical to the single-process run, for
// 1, 2, and 4 workers at batch sizes 1 and 8, including the final
// Complete checkpoint's exact bytes. The battery also SIGKILLs a worker
// mid-lease (the death must be detected, the lease re-run, and the final
// result unchanged), stops a coordinator at a fragment boundary and
// resumes a fresh one from the lease journal, and pins the rejection
// paths: journals from a skewed spec or seed list, corrupt journals,
// corrupt fragments, and unstartable worker binaries.
//
//===----------------------------------------------------------------------===//

#include "distrib/Coordinator.h"
#include "distrib/FleetProtocol.h"
#include "distrib/Worker.h"
#include "persist/Checkpoint.h"
#include "persist/LineText.h"
#include "testing/Corpus.h"
#include "testing/Harness.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace spe;

#ifndef SPE_FLEET_WORKER_PATH
#error "SPE_FLEET_WORKER_PATH must point at the spe_fleet_worker binary"
#endif

namespace {

std::vector<std::string> testSeeds() {
  const std::vector<std::string> &Embedded = embeddedSeeds();
  // Two distinct seeds plus a repeat, so lease planning sees more than one
  // rank space and identical headers for identical sources.
  return {Embedded[0], Embedded[2], Embedded[0]};
}

FleetSpec baseSpec() {
  FleetSpec Spec;
  Spec.Configs = HarnessOptions::crashMatrix(Persona::GccSim, 48);
  Spec.VariantBudget = 30;
  Spec.Threads = 2; // Folded into the checkpoint fingerprint only.
  return Spec;
}

FleetOptions baseFleet() {
  FleetOptions O;
  O.WorkerCommand = {SPE_FLEET_WORKER_PATH};
  return O;
}

struct TempDir {
  std::string Dir;
  explicit TempDir(const std::string &Name) : Dir("fleet_test_tmp/" + Name) {
    std::filesystem::remove_all(Dir);
    std::filesystem::create_directories(Dir);
  }
  std::string path(const char *File) const { return Dir + "/" + File; }
};

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// The single-process reference this whole battery compares against:
/// the same spec run through the ordinary harness, checkpointing on.
CampaignResult referenceRun(const FleetSpec &Spec, const std::string &CkPath) {
  HarnessOptions HO = Spec.toHarnessOptions();
  HO.CheckpointPath = CkPath;
  return DifferentialHarness(HO).runCampaign(testSeeds());
}

//===--------------------------------------------------------------------===//
// Wire format units
//===--------------------------------------------------------------------===//

TEST(FleetSpecTest, SerializeParseRoundTrip) {
  FleetSpec Spec = baseSpec();
  Spec.BatchSize = 8;
  Spec.Triage = true;
  Spec.Configs[0].ExecSweep = {"", "7 11"};

  FleetSpec Back;
  std::string Err;
  ASSERT_TRUE(FleetSpec::parse(Spec.serialize(), Back, Err)) << Err;
  EXPECT_EQ(Spec.serialize(), Back.serialize());
  EXPECT_EQ(Spec.fingerprint(), Back.fingerprint());
}

TEST(FleetSpecTest, ParseRejectsDamage) {
  FleetSpec Spec = baseSpec();
  std::string Doc = Spec.serialize();
  FleetSpec Back;
  std::string Err;

  EXPECT_FALSE(FleetSpec::parse("SPE-JUNK v9\n", Back, Err));
  EXPECT_FALSE(FleetSpec::parse(Doc.substr(0, Doc.size() / 2), Back, Err));
  EXPECT_FALSE(FleetSpec::parse(Doc + "extra line\n", Back, Err));
}

TEST(FleetFragmentTest, RoundTripAndChecksumRejection) {
  // A real result with findings, so both maps round-trip.
  FleetSpec Spec = baseSpec();
  CampaignResult R =
      DifferentialHarness(Spec.toHarnessOptions()).runCampaign(testSeeds());
  ASSERT_GT(R.UniqueBugs.size(), 0u);

  std::string Wire = serializeFragment(R);
  CampaignResult Back;
  std::string Err;
  ASSERT_TRUE(parseFragment(Wire, Back, Err)) << Err;
  EXPECT_TRUE(R == Back);

  std::string Corrupt = Wire;
  Corrupt[Corrupt.size() / 2] ^= 1;
  EXPECT_FALSE(parseFragment(Corrupt, Back, Err));
  EXPECT_FALSE(parseFragment(Wire.substr(0, Wire.size() - 4), Back, Err));
}

//===--------------------------------------------------------------------===//
// Lease machinery (in-process, no worker binary)
//===--------------------------------------------------------------------===//

TEST(FleetLeaseTest, LeaseFoldReproducesSeedRun) {
  FleetSpec Spec = baseSpec();
  DifferentialHarness H(Spec.toHarnessOptions());
  const std::string Seed = testSeeds()[0];

  DifferentialHarness::SeedLeaseSummary Sum = H.summarizeSeed(Seed);
  ASSERT_TRUE(Sum.Enumerable);
  const uint64_t Budget = Sum.Budget.toUint64();
  ASSERT_GT(Budget, 2u);

  // Deliberately uneven split, merged header-first in ascending order.
  CampaignResult Folded = Sum.Header;
  std::string Err;
  const uint64_t Cut = Budget / 3 + 1;
  for (uint64_t B : {uint64_t(0), Cut}) {
    CampaignResult Frag;
    ASSERT_TRUE(H.runLease(Seed, BigInt(B),
                           BigInt(B == 0 ? Cut : Budget), Frag,
                           Err))
        << Err;
    Folded.merge(Frag);
  }

  CampaignResult Whole = H.runCampaign({Seed});
  EXPECT_TRUE(Folded == Whole);
}

TEST(FleetLeaseTest, RunLeaseRejectsBadRanges) {
  FleetSpec Spec = baseSpec();
  DifferentialHarness H(Spec.toHarnessOptions());
  const std::string Seed = testSeeds()[0];
  const uint64_t Budget = H.summarizeSeed(Seed).Budget.toUint64();

  CampaignResult Frag;
  std::string Err;
  EXPECT_FALSE(H.runLease(Seed, BigInt(2), BigInt(1),
                          Frag, Err));
  EXPECT_FALSE(H.runLease(Seed, BigInt(0),
                          BigInt(Budget + 1), Frag, Err));
}

TEST(FleetWorkerTest, InProcessProtocolLoop) {
  FleetSpec Spec = baseSpec();
  const std::string Seed = testSeeds()[0];

  std::ostringstream Script;
  Script << "spec " << linetext::escapeToken(Spec.serialize()) << '\n';
  Script << "seed 0 " << linetext::escapeToken(Seed) << '\n';
  Script << "lease 7 0 0 5\n";
  Script << "exit\n";

  std::istringstream In(Script.str());
  std::ostringstream Out;
  EXPECT_EQ(runFleetWorker(In, Out, FleetWorkerOptions()), 0);

  std::istringstream Replies(Out.str());
  std::string Line;
  ASSERT_TRUE(std::getline(Replies, Line));
  EXPECT_EQ(Line, "ready " + std::to_string(Spec.fingerprint()));
  ASSERT_TRUE(std::getline(Replies, Line));
  ASSERT_EQ(Line.rfind("done 7 ", 0), 0u);

  std::string FragText, Err;
  CampaignResult Frag;
  ASSERT_TRUE(linetext::unescapeToken(Line.substr(7), FragText));
  ASSERT_TRUE(parseFragment(FragText, Frag, Err)) << Err;
  EXPECT_EQ(Frag.VariantsEnumerated, 5u);
}

TEST(FleetWorkerTest, UnknownCommandIsFatal) {
  std::istringstream In("frobnicate now\n");
  std::ostringstream Out;
  EXPECT_EQ(runFleetWorker(In, Out, FleetWorkerOptions()), 2);
  EXPECT_EQ(Out.str().rfind("error ", 0), 0u);
}

//===--------------------------------------------------------------------===//
// Coordinator vs single-process bit-identity
//===--------------------------------------------------------------------===//

TEST(FleetCoordinatorTest, MatchesSingleProcessAcrossWorkersAndBatch) {
  TempDir T("identity");
  FleetSpec Spec = baseSpec();
  Spec.Triage = true;

  const std::string RefCk = T.path("ref.ck");
  const CampaignResult Ref = referenceRun(Spec, RefCk);
  const std::string RefBytes = readFile(RefCk);
  ASSERT_FALSE(RefBytes.empty());
  ASSERT_GT(Ref.UniqueBugs.size(), 0u);

  for (unsigned Workers : {1u, 2u, 4u}) {
    for (uint64_t Batch : {uint64_t(1), uint64_t(8)}) {
      FleetSpec S = Spec;
      S.BatchSize = Batch;
      FleetOptions O = baseFleet();
      O.Workers = Workers;
      O.LeaseRanks = 7; // Uneven tail leases on a 30-rank budget.
      const std::string Tag =
          "w" + std::to_string(Workers) + "b" + std::to_string(Batch);
      O.CheckpointPath = T.path(("fleet_" + Tag + ".ck").c_str());

      CampaignCoordinator C(S, O);
      CampaignResult Result;
      std::string Err;
      ASSERT_TRUE(C.run(testSeeds(), Result, Err)) << Tag << ": " << Err;
      EXPECT_TRUE(Result == Ref) << Tag;
      // BatchSize is excluded from the options fingerprint, so every
      // combination must reproduce the reference checkpoint bytes.
      EXPECT_EQ(readFile(O.CheckpointPath), RefBytes) << Tag;
      EXPECT_EQ(C.stats().LeasesRun, C.stats().LeasesTotal) << Tag;
      EXPECT_FALSE(C.stoppedByHook());
    }
  }
}

TEST(FleetCoordinatorTest, KilledWorkerIsReLeasedInvisibly) {
  TempDir T("kill");
  FleetSpec Spec = baseSpec();
  const CampaignResult Ref = referenceRun(Spec, T.path("ref.ck"));

  FleetOptions O = baseFleet();
  O.Workers = 1; // Every lease funnels through the slot that gets killed.
  O.LeaseRanks = 5;
  O.KillWorkerAtLease = 1;

  CampaignCoordinator C(Spec, O);
  CampaignResult Result;
  std::string Err;
  ASSERT_TRUE(C.run(testSeeds(), Result, Err)) << Err;
  EXPECT_TRUE(Result == Ref);
  EXPECT_GE(C.stats().WorkerDeaths, 1u);
  EXPECT_GE(C.stats().Releases, 1u);
  EXPECT_GE(C.stats().WorkersSpawned, 2u);
  EXPECT_EQ(C.stats().LeasesRun, C.stats().LeasesTotal);
}

TEST(FleetCoordinatorTest, PoisonLeaseExhaustsRespawnBudget) {
  TempDir T("poison");
  FleetSpec Spec = baseSpec();
  FleetOptions O = baseFleet();
  // A worker that dies instantly on every lease: the lease is poison, and
  // the coordinator must give up instead of respawning forever.
  O.WorkerCommand = {"/bin/sh", "-c", "read line; exit 9"};
  O.Workers = 1;
  O.MaxRespawns = 2;

  CampaignCoordinator C(Spec, O);
  CampaignResult Result;
  std::string Err;
  EXPECT_FALSE(C.run(testSeeds(), Result, Err));
  EXPECT_NE(Err.find("respawn"), std::string::npos) << Err;
}

TEST(FleetCoordinatorTest, UnstartableWorkerFailsLoudly) {
  FleetSpec Spec = baseSpec();
  FleetOptions O = baseFleet();
  O.WorkerCommand = {"/nonexistent/spe-no-such-worker"};

  CampaignCoordinator C(Spec, O);
  CampaignResult Result;
  std::string Err;
  EXPECT_FALSE(C.run(testSeeds(), Result, Err));
  EXPECT_NE(Err.find("cannot start worker"), std::string::npos) << Err;
}

//===--------------------------------------------------------------------===//
// Journal: coordinator crash-resume and skew rejection
//===--------------------------------------------------------------------===//

TEST(FleetJournalTest, StopAndResumeMatchesUninterruptedRun) {
  TempDir T("resume");
  FleetSpec Spec = baseSpec();
  Spec.Triage = true;
  const std::string RefCk = T.path("ref.ck");
  const CampaignResult Ref = referenceRun(Spec, RefCk);

  FleetOptions O = baseFleet();
  O.Workers = 2;
  O.LeaseRanks = 5;
  O.JournalPath = T.path("leases.journal");
  O.CheckpointPath = T.path("fleet.ck");

  // Phase 1: stop at a fragment boundary -- what a SIGKILLed coordinator
  // leaves behind is exactly this journal.
  {
    FleetOptions Stop = O;
    Stop.StopAfterFragments = 2;
    CampaignCoordinator C(Spec, Stop);
    CampaignResult Partial;
    std::string Err;
    ASSERT_TRUE(C.run(testSeeds(), Partial, Err)) << Err;
    EXPECT_TRUE(C.stoppedByHook());
    EXPECT_GE(C.stats().LeasesRun, 2u);
    EXPECT_LT(C.stats().LeasesRun, C.stats().LeasesTotal);
    EXPECT_FALSE(Partial == Ref);
  }

  // Phase 2: a fresh coordinator resumes the journal and finishes.
  {
    CampaignCoordinator C(Spec, O);
    CampaignResult Result;
    std::string Err;
    ASSERT_TRUE(C.run(testSeeds(), Result, Err)) << Err;
    EXPECT_FALSE(C.stoppedByHook());
    EXPECT_GE(C.stats().LeasesRestored, 2u);
    EXPECT_EQ(C.stats().LeasesRestored + C.stats().LeasesRun,
              C.stats().LeasesTotal);
    EXPECT_TRUE(Result == Ref);
    EXPECT_EQ(readFile(O.CheckpointPath), readFile(RefCk));
  }
}

TEST(FleetJournalTest, SkewedSpecOrSeedsIsRejected) {
  TempDir T("skew");
  FleetSpec Spec = baseSpec();
  FleetOptions O = baseFleet();
  O.JournalPath = T.path("leases.journal");
  O.StopAfterFragments = 1;

  {
    CampaignCoordinator C(Spec, O);
    CampaignResult R;
    std::string Err;
    ASSERT_TRUE(C.run(testSeeds(), R, Err)) << Err;
    ASSERT_TRUE(C.stoppedByHook());
  }
  O.StopAfterFragments = 0;

  // Different spec, same journal.
  {
    FleetSpec Skewed = Spec;
    Skewed.VariantBudget = 20;
    CampaignCoordinator C(Skewed, O);
    CampaignResult R;
    std::string Err;
    EXPECT_FALSE(C.run(testSeeds(), R, Err));
    EXPECT_NE(Err.find("journal"), std::string::npos) << Err;
  }

  // Different seed list, same journal.
  {
    CampaignCoordinator C(Spec, O);
    CampaignResult R;
    std::string Err;
    std::vector<std::string> Fewer = {testSeeds()[0]};
    EXPECT_FALSE(C.run(Fewer, R, Err));
    EXPECT_NE(Err.find("journal"), std::string::npos) << Err;
  }

  // Same campaign, journal bytes corrupted.
  {
    std::string Bytes = readFile(O.JournalPath);
    ASSERT_FALSE(Bytes.empty());
    Bytes[Bytes.size() / 2] ^= 1;
    std::ofstream(O.JournalPath, std::ios::binary) << Bytes;
    CampaignCoordinator C(Spec, O);
    CampaignResult R;
    std::string Err;
    EXPECT_FALSE(C.run(testSeeds(), R, Err));
    EXPECT_NE(Err.find("journal"), std::string::npos) << Err;
  }
}

//===--------------------------------------------------------------------===//
// Fleet status aggregation
//===--------------------------------------------------------------------===//

TEST(FleetStatusTest, AggregatedDocumentCoversWorkersAndCounters) {
  TempDir T("status");
  FleetSpec Spec = baseSpec();
  FleetOptions O = baseFleet();
  O.Workers = 2;
  O.FleetStatusPath = T.path("fleet.status.json");
  O.WorkerStatusDir = T.Dir;
  O.StatusEveryMs = 25;

  CampaignCoordinator C(Spec, O);
  CampaignResult Result;
  std::string Err;
  ASSERT_TRUE(C.run(testSeeds(), Result, Err)) << Err;

  const std::string Doc = readFile(O.FleetStatusPath);
  ASSERT_FALSE(Doc.empty());
  EXPECT_NE(Doc.find("\"state\":\"complete\""), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"leases\":{\"total\":"), std::string::npos);
  EXPECT_NE(Doc.find("\"workers\":[{\"id\":0"), std::string::npos);
  EXPECT_NE(Doc.find("\"counters\":{\"enumerated\":"), std::string::npos);
  EXPECT_NE(Doc.find("\"write_failures\":"), std::string::npos);
  // Each worker maintained its own heartbeat, and the final fleet
  // document embeds the per-worker documents verbatim.
  EXPECT_FALSE(readFile(T.path("worker0.status.json")).empty());
  EXPECT_NE(Doc.find("\"status\":{"), std::string::npos) << Doc;
}

} // namespace
