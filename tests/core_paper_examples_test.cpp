//===- tests/core_paper_examples_test.cpp - the paper's worked examples --===//
//
// Every number the paper states for its running examples, checked against
// both enumeration modes and against brute-force canonical dedup. This file
// is the executable record of DESIGN.md Section 4 (the Example 6 36-vs-40
// discrepancy).
//
//===----------------------------------------------------------------------===//

#include "core/AlphaEquivalence.h"
#include "core/NaiveEnumerator.h"
#include "core/SpeEnumerator.h"

#include "gtest/gtest.h"

#include <set>

using namespace spe;

namespace {

/// Brute force: enumerate the full Cartesian product and count distinct
/// canonical keys. This is the ground-truth class count.
uint64_t bruteForceClassCount(const AbstractSkeleton &Sk) {
  NaiveEnumerator Naive(Sk);
  AlphaCanonicalizer Canon(Sk);
  std::set<std::string> Keys;
  Naive.enumerate([&](const Assignment &A) {
    Keys.insert(Canon.canonicalKey(A));
    return true;
  });
  return Keys.size();
}

/// Figure 7 / Example 6: three global holes over {a,b}, two holes in one
/// local scope with extra variables {c,d}. Hole order follows Figure 7(a):
/// 1,2 global, 3,4 local, 5 global.
AbstractSkeleton makeExample6Skeleton() {
  AbstractSkeleton Sk;
  ScopeId Root = AbstractSkeleton::rootScope();
  ScopeId Local = Sk.addScope(Root);
  Sk.addVariable("a", Root, 0);
  Sk.addVariable("b", Root, 0);
  Sk.addVariable("c", Local, 0);
  Sk.addVariable("d", Local, 0);
  Sk.addHole(Root, 0);
  Sk.addHole(Root, 0);
  Sk.addHole(Local, 0);
  Sk.addHole(Local, 0);
  Sk.addHole(Root, 0);
  return Sk;
}

AbstractSkeleton makeFigure6Skeleton() {
  AbstractSkeleton Sk;
  ScopeId Root = AbstractSkeleton::rootScope();
  ScopeId Inner = Sk.addScope(Root);
  Sk.addVariable("a", Root, 0);
  Sk.addVariable("b", Root, 0);
  Sk.addVariable("c", Inner, 0);
  Sk.addVariable("d", Inner, 0);
  for (int I = 0; I < 3; ++I)
    Sk.addHole(Root, 0);
  for (int I = 0; I < 5; ++I)
    Sk.addHole(Inner, 0);
  for (int I = 0; I < 2; ++I)
    Sk.addHole(Root, 0);
  return Sk;
}

} // namespace

TEST(PaperExamplesTest, Figure5NaiveIs64AndSpeIs32) {
  // Figure 5's WHILE skeleton: |P| = 2^6 = 64; without scopes SPE yields
  // sum_{i=1..2} {6,i} = 1 + 31 = 32 classes in both modes.
  AbstractSkeleton Sk;
  Sk.addVariable("a", AbstractSkeleton::rootScope(), 0);
  Sk.addVariable("b", AbstractSkeleton::rootScope(), 0);
  for (int I = 0; I < 6; ++I)
    Sk.addHole(AbstractSkeleton::rootScope(), 0);

  EXPECT_EQ(NaiveEnumerator(Sk).count().toUint64(), 64u);
  EXPECT_EQ(SpeEnumerator(Sk, SpeMode::Exact).count().toUint64(), 32u);
  EXPECT_EQ(SpeEnumerator(Sk, SpeMode::PaperFaithful).count().toUint64(), 32u);
  EXPECT_EQ(bruteForceClassCount(Sk), 32u);
}

TEST(PaperExamplesTest, Figure2BugSkeletonIsBell5) {
  // Section 2, Bug 69951: "a naive program enumeration approach generates
  // 3,125 programs. In contrast, our approach only enumerates 52" --
  // 5 holes over 5 interchangeable variables: 5^5 = 3125 and B(5) = 52.
  AbstractSkeleton Sk;
  for (int I = 0; I < 5; ++I)
    Sk.addVariable("v" + std::to_string(I), AbstractSkeleton::rootScope(), 0);
  for (int I = 0; I < 5; ++I)
    Sk.addHole(AbstractSkeleton::rootScope(), 0);

  EXPECT_EQ(NaiveEnumerator(Sk).count().toUint64(), 3125u);
  EXPECT_EQ(SpeEnumerator(Sk, SpeMode::Exact).count().toUint64(), 52u);
  EXPECT_EQ(SpeEnumerator(Sk, SpeMode::PaperFaithful).count().toUint64(), 52u);
  EXPECT_EQ(bruteForceClassCount(Sk), 52u);
}

TEST(PaperExamplesTest, Figure6NaiveCounts) {
  // Section 3.2.2: scope-blind naive count is 4^10 = 1,048,576; with scope
  // information it drops to 2^5 * 4^5 = 32,768 (32x fewer).
  AbstractSkeleton Sk = makeFigure6Skeleton();
  EXPECT_EQ(NaiveEnumerator(Sk).count().toUint64(), 32768u);

  AbstractSkeleton Blind;
  for (int I = 0; I < 4; ++I)
    Blind.addVariable("v" + std::to_string(I), AbstractSkeleton::rootScope(),
                      0);
  for (int I = 0; I < 10; ++I)
    Blind.addHole(AbstractSkeleton::rootScope(), 0);
  EXPECT_EQ(NaiveEnumerator(Blind).count().toUint64(), 1048576u);
}

TEST(PaperExamplesTest, Example6PaperArithmeticIs36) {
  // Example 6 computes S'_f = {5,2}+{5,1} = 16, promotion of one hole =
  // 2 * {4,2} = 14, promotion of neither = {3,2} * ({2,2}+{2,1}) = 6;
  // total 36 partitions against the naive 2^3 * 4^2 = 128.
  AbstractSkeleton Sk = makeExample6Skeleton();
  EXPECT_EQ(NaiveEnumerator(Sk).count().toUint64(), 128u);
  SpeEnumerator Paper(Sk, SpeMode::PaperFaithful);
  EXPECT_EQ(Paper.count().toUint64(), 36u);
  // Enumeration agrees with the closed-form count.
  std::set<Assignment> Variants;
  Paper.enumerate([&](const Assignment &A) {
    Variants.insert(A);
    return true;
  });
  EXPECT_EQ(Variants.size(), 36u);
}

TEST(PaperExamplesTest, Example6GroundTruthIs40) {
  // DESIGN.md Section 4: the published recursion misses the four classes
  // that use a local variable while occupying fewer than |v^g| global
  // blocks (e.g. <a,a,c,a,a>, <a,a,c,c,a>, <a,a,c,d,a>, <a,a,a,c,a>).
  // Brute-force canonical dedup gives 40; SpeMode::Exact matches it.
  AbstractSkeleton Sk = makeExample6Skeleton();
  EXPECT_EQ(bruteForceClassCount(Sk), 40u);
  SpeEnumerator Exact(Sk, SpeMode::Exact);
  EXPECT_EQ(Exact.count().toUint64(), 40u);
  std::set<Assignment> Variants;
  Exact.enumerate([&](const Assignment &A) {
    Variants.insert(A);
    return true;
  });
  EXPECT_EQ(Variants.size(), 40u);
}

TEST(PaperExamplesTest, Example6MissingClassesAreRealPrograms) {
  // The four classes the paper-faithful mode misses are genuinely
  // non-alpha-equivalent realizations: exact enumerates a superset of
  // paper-faithful, and each missing variant uses a local variable with a
  // single global block.
  AbstractSkeleton Sk = makeExample6Skeleton();
  AlphaCanonicalizer Canon(Sk);

  std::set<std::string> PaperKeys, ExactKeys;
  SpeEnumerator(Sk, SpeMode::PaperFaithful).enumerate([&](const Assignment &A) {
    PaperKeys.insert(Canon.canonicalKey(A));
    return true;
  });
  SpeEnumerator(Sk, SpeMode::Exact).enumerate([&](const Assignment &A) {
    ExactKeys.insert(Canon.canonicalKey(A));
    return true;
  });
  EXPECT_EQ(PaperKeys.size(), 36u);
  EXPECT_EQ(ExactKeys.size(), 40u);
  for (const std::string &Key : PaperKeys)
    EXPECT_TRUE(ExactKeys.count(Key)) << "paper mode emitted a class exact "
                                         "mode does not know: "
                                      << Key;
  // One concrete missing witness: <a,a,c,a,a> (vars a=0,b=1,c=2,d=3).
  Assignment Witness = {0, 0, 2, 0, 0};
  std::string WitnessKey = Canon.canonicalKey(Witness);
  EXPECT_TRUE(ExactKeys.count(WitnessKey));
  EXPECT_FALSE(PaperKeys.count(WitnessKey));
}

TEST(PaperExamplesTest, Figure6ClassCountsBothModes) {
  // Full Figure 6 skeleton (5 global holes, 5 local holes, 2+2 variables):
  // exact ground truth 8448 classes; the published recursion yields 8327.
  AbstractSkeleton Sk = makeFigure6Skeleton();
  EXPECT_EQ(bruteForceClassCount(Sk), 8448u);
  EXPECT_EQ(SpeEnumerator(Sk, SpeMode::Exact).count().toUint64(), 8448u);
  EXPECT_EQ(SpeEnumerator(Sk, SpeMode::PaperFaithful).count().toUint64(),
            8327u);
}

TEST(PaperExamplesTest, ReductionFactorApproachesKFactorial) {
  // Section 4.1.1: S ~ O(k^n / k!), so for n >> k the reduction over the
  // naive k^n approaches k!. 20 holes over 4 variables: naive 4^20 ~ 1.1e12,
  // SPE sum_{i<=4} {20,i} = 45,813,246,635, ratio ~ 24 = 4!.
  AbstractSkeleton Sk;
  for (int I = 0; I < 4; ++I)
    Sk.addVariable("v" + std::to_string(I), AbstractSkeleton::rootScope(), 0);
  for (int I = 0; I < 20; ++I)
    Sk.addHole(AbstractSkeleton::rootScope(), 0);
  BigInt Naive = NaiveEnumerator(Sk).count();
  BigInt Ours = SpeEnumerator(Sk, SpeMode::Exact).count();
  EXPECT_EQ(Naive.toString(), "1099511627776");
  EXPECT_EQ(Ours.toString(), "45813246635");
  double Ratio = Naive.toDouble() / Ours.toDouble();
  EXPECT_GT(Ratio, 12.0);
  EXPECT_LE(Ratio, 24.5);
}

TEST(PaperExamplesTest, SixOrdersOfMagnitudeShape) {
  // With more variables the k! factor alone exceeds six orders of
  // magnitude: 40 holes over 10 variables, 10! ~ 3.6e6.
  AbstractSkeleton Sk;
  for (int I = 0; I < 10; ++I)
    Sk.addVariable("v" + std::to_string(I), AbstractSkeleton::rootScope(), 0);
  for (int I = 0; I < 40; ++I)
    Sk.addHole(AbstractSkeleton::rootScope(), 0);
  BigInt Naive = NaiveEnumerator(Sk).count();
  BigInt Ours = SpeEnumerator(Sk, SpeMode::Exact).count();
  EXPECT_GT(Naive.log10() - Ours.log10(), 6.0);
  EXPECT_LT(Naive.log10() - Ours.log10(), 7.0);
}
