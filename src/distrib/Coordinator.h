//===- distrib/Coordinator.h - lease-based fleet campaign server ---------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CampaignCoordinator (DESIGN.md Section 16): owns every seed's
/// budgeted rank space, partitions it into contiguous leases, and hands
/// them to worker *processes* over the line-framed pipe protocol
/// (distrib/FleetProtocol.h). Fragments stream back per lease; the final
/// merge folds each seed's header counters first and then its fragments in
/// ascending rank order -- exactly the deterministic merge thread shards
/// use -- so a coordinator + N workers campaign is bit-identical to the
/// single-process run, for any worker count, lease size, or batch size.
///
/// Fault tolerance:
///  - A worker death (EOF on its pipe, confirmed by wait status) requeues
///    the in-flight lease and respawns the worker; because a lease's
///    fragment is recorded exactly once and a dead worker's partial work
///    never leaves its process, re-leased ranges cannot double-count.
///  - The lease journal (atomic write-then-rename + checksum, the persist/
///    idioms) is rewritten after every completed fragment; a SIGKILLed
///    coordinator resumes by replaying completed leases from the journal
///    and re-running only the rest. Spec and seed-list fingerprints gate
///    resume exactly like checkpoint resume does.
///
/// The coordinator also aggregates per-worker status.json heartbeats into
/// one fleet-level document (schemas/fleet_status.schema.json).
///
//===----------------------------------------------------------------------===//

#ifndef SPE_DISTRIB_COORDINATOR_H
#define SPE_DISTRIB_COORDINATOR_H

#include "distrib/FleetProtocol.h"
#include "support/BigInt.h"

#include <cstdint>
#include <string>
#include <vector>

namespace spe {

struct FleetOptions {
  /// argv of the worker binary (tools/fleet_worker.cpp). The coordinator
  /// appends "--status <path>" when WorkerStatusDir is set.
  std::vector<std::string> WorkerCommand;
  /// Worker processes to run concurrently.
  unsigned Workers = 2;
  /// Ranks per lease; 0 = auto (about four leases per worker per seed, so
  /// re-leased work after a death stays small without drowning the fleet
  /// in round trips).
  uint64_t LeaseRanks = 0;
  /// When non-empty, the crash-consistent lease journal lands here and a
  /// pre-existing valid journal for this exact campaign resumes it.
  std::string JournalPath;
  /// When non-empty, the aggregated fleet status document lands here.
  std::string FleetStatusPath;
  /// When non-empty, each worker writes its own status.json heartbeat to
  /// <dir>/worker<i>.status.json and the fleet document embeds them.
  std::string WorkerStatusDir;
  /// Fleet status write cadence in milliseconds.
  uint64_t StatusEveryMs = 500;
  /// Times a single worker slot may be respawned after a death before the
  /// campaign aborts (a worker dying on every lease it touches means the
  /// lease itself is poison, not the process).
  unsigned MaxRespawns = 8;
  /// When non-empty, the coordinator writes a Complete campaign checkpoint
  /// (persist/Checkpoint.h) of the merged pre-triage result here --
  /// byte-identical to the one the equivalent single-process checkpointed
  /// campaign leaves behind.
  std::string CheckpointPath;

  //===--- Test hooks (the kill-point battery) --------------------------===//

  /// Stop dispatching after this many fragments have been recorded (0 =
  /// off). The journal stays valid, so a fresh coordinator resumes; this
  /// simulates a coordinator SIGKILL at a fragment boundary.
  uint64_t StopAfterFragments = 0;
  /// SIGKILL the worker right after dispatching the Nth lease (1-based,
  /// 0 = off): the lease must be detected as dead, requeued, and re-run
  /// with no double-counted stats.
  uint64_t KillWorkerAtLease = 0;
};

struct FleetStats {
  uint64_t LeasesTotal = 0;
  uint64_t LeasesRun = 0;      ///< Fragments produced by live workers.
  uint64_t LeasesRestored = 0; ///< Fragments replayed from the journal.
  uint64_t Releases = 0;       ///< Leases requeued after a worker death.
  uint64_t WorkersSpawned = 0;
  uint64_t WorkerDeaths = 0;
};

class CampaignCoordinator {
public:
  CampaignCoordinator(FleetSpec Spec, FleetOptions Opts);

  /// Runs the fleet campaign over \p Seeds into \p Result. \returns false
  /// with \p Err set on unrecoverable failures (worker binary unstartable,
  /// respawn budget exhausted, corrupt journal for this campaign). When
  /// StopAfterFragments fires, \returns true with stoppedByHook() set and
  /// a partial Result; the journal carries the completed prefix.
  bool run(const std::vector<std::string> &Seeds, CampaignResult &Result,
           std::string &Err);

  const FleetStats &stats() const { return Stats; }
  bool stoppedByHook() const { return StoppedByHook; }

private:
  struct Impl;

  FleetSpec Spec;
  FleetOptions Opts;
  FleetStats Stats;
  bool StoppedByHook = false;
};

} // namespace spe

#endif // SPE_DISTRIB_COORDINATOR_H
