//===- distrib/FleetProtocol.h - coordinator/worker wire format ----------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The line-framed protocol between a CampaignCoordinator and its worker
/// processes (DESIGN.md Section 16). Every payload -- the campaign spec, a
/// seed's source, a per-lease CampaignResult fragment -- is serialized with
/// the checkpoint line-text helpers (persist/LineText.h) and escaped into a
/// single whitespace-free token, so one protocol message is always exactly
/// one line and splits on spaces:
///
///   coordinator -> worker        worker -> coordinator
///   ------------------------     -------------------------------
///   spec <escaped-spec-doc>      ready <spec-fingerprint>
///   seed <idx> <escaped-src>
///   lease <id> <seed> <b> <e>    done <id> <escaped-fragment>
///   exit                         error <escaped-message>   (fatal)
///
/// FleetSpec is the serializable subset of HarnessOptions a worker needs to
/// reproduce the coordinator's enumeration exactly: pointer-valued options
/// (Backend, Cache, Cov, Telemetry) deliberately have no wire form -- fleet
/// campaigns run the in-process backend with no shared cache, which is what
/// keeps per-lease oracle counters independent of how leases land on
/// workers. The spec fingerprint (FNV-1a over the serialized form) is
/// echoed by the worker's `ready` and embedded in the lease journal, so a
/// mismatched worker binary or a journal from a different campaign is
/// rejected instead of silently skewing results.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_DISTRIB_FLEETPROTOCOL_H
#define SPE_DISTRIB_FLEETPROTOCOL_H

#include "testing/Harness.h"

#include <string>
#include <vector>

namespace spe {

/// The wire-serializable campaign configuration a fleet shares.
struct FleetSpec {
  SpeMode Mode = SpeMode::Exact;
  ExtractorOptions Extract;
  uint64_t VariantThreshold = 10'000;
  uint64_t VariantBudget = 400;
  /// Folded into the checkpoint options fingerprint only (leases always
  /// run single-cursor): set this to the thread count of the equivalent
  /// single-process campaign so the coordinator's final checkpoint is
  /// byte-identical to that run's.
  unsigned Threads = 1;
  uint64_t BatchSize = 1;
  std::vector<CompilerConfig> Configs;
  bool InjectBugs = true;
  bool PruneInvalid = true;
  bool Triage = false;

  /// Line-text document (magic, options line, config/sweep lines).
  std::string serialize() const;
  static bool parse(const std::string &Text, FleetSpec &Out,
                    std::string &Err);
  /// FNV-1a over serialize(): one number both sides agree on.
  uint64_t fingerprint() const;
  /// The harness options a worker (or the coordinator's own planner) runs
  /// under. Pointer-valued options are left at their defaults.
  HarnessOptions toHarnessOptions() const;
};

/// Appends the FNV-1a "checksum <u64>" trailer line over \p Body -- the
/// same trailer the checkpoint format ends with. Shared by fragments and
/// the coordinator's lease journal.
std::string withChecksumTrailer(std::string Body);

/// Verifies and strips the trailer; \returns false with \p Err set on a
/// missing, malformed, or mismatching checksum.
bool stripChecksumTrailer(const std::string &Text, std::string &Body,
                          std::string &Err);

/// Serializes the checkpointed portion of \p R (counters + finding maps,
/// persist/LineText layout) with a checksum trailer.
std::string serializeFragment(const CampaignResult &R);

/// Inverse of serializeFragment; checksum-verified before parsing.
bool parseFragment(const std::string &Text, CampaignResult &Out,
                   std::string &Err);

} // namespace spe

#endif // SPE_DISTRIB_FLEETPROTOCOL_H
