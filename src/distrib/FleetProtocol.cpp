//===- distrib/FleetProtocol.cpp - coordinator/worker wire format --------===//

#include "distrib/FleetProtocol.h"

#include "persist/LineText.h"

#include <sstream>

using namespace spe;
using namespace spe::linetext;

namespace {

const char SpecMagic[] = "SPE-FLEET-SPEC v1";
const char FragmentMagic[] = "SPE-FLEET-FRAGMENT v1";

} // namespace

std::string spe::withChecksumTrailer(std::string Body) {
  Fnv Sum;
  Sum.bytes(Body.data(), Body.size());
  return Body + "checksum " + std::to_string(Sum.H) + "\n";
}

bool spe::stripChecksumTrailer(const std::string &Text, std::string &Body,
                               std::string &Err) {
  size_t Tail = Text.rfind("checksum ");
  if (Tail == std::string::npos || (Tail != 0 && Text[Tail - 1] != '\n')) {
    Err = "missing checksum trailer (truncated?)";
    return false;
  }
  std::string SumText = Text.substr(Tail + 9);
  while (!SumText.empty() &&
         (SumText.back() == '\n' || SumText.back() == '\r'))
    SumText.pop_back();
  uint64_t Expected;
  if (!parseU64(SumText, Expected)) {
    Err = "malformed checksum trailer";
    return false;
  }
  Fnv Sum;
  Sum.bytes(Text.data(), Tail);
  if (Sum.H != Expected) {
    Err = "checksum mismatch (corrupt or truncated)";
    return false;
  }
  Body = Text.substr(0, Tail);
  return true;
}

std::string FleetSpec::serialize() const {
  std::ostringstream Out;
  Out << SpecMagic << '\n';
  Out << "opts " << static_cast<int>(Mode) << ' '
      << static_cast<int>(Extract.Gran) << ' '
      << static_cast<int>(Extract.Model) << ' ' << VariantThreshold << ' '
      << VariantBudget << ' ' << Threads << ' ' << BatchSize << ' '
      << (InjectBugs ? 1 : 0) << ' ' << (PruneInvalid ? 1 : 0) << ' '
      << (Triage ? 1 : 0) << '\n';
  Out << "configs " << Configs.size() << '\n';
  for (const CompilerConfig &C : Configs) {
    Out << "config " << static_cast<int>(C.P) << ' ' << C.Version << ' '
        << C.OptLevel << ' ' << (C.Mode64 ? 1 : 0) << ' '
        << C.ExecSweep.size() << '\n';
    for (const std::string &In : C.ExecSweep)
      Out << "sweep " << escapeToken(In) << '\n';
  }
  return Out.str();
}

bool FleetSpec::parse(const std::string &Text, FleetSpec &Out,
                      std::string &Err) {
  Out = FleetSpec();
  Reader R(Text);
  if (R.Lines.empty() || R.Lines[0].size() != 2 ||
      R.Lines[0][0] + " " + R.Lines[0][1] != SpecMagic) {
    Err = "bad fleet spec magic";
    return false;
  }
  R.At = 1;

  const std::vector<std::string> *L = R.line("opts", 11);
  uint64_t Mode = 0, Gran = 0, Model = 0, Threads = 0;
  bool Ok = L && R.u64((*L)[1], Mode) && R.u64((*L)[2], Gran) &&
            R.u64((*L)[3], Model) && R.u64((*L)[4], Out.VariantThreshold) &&
            R.u64((*L)[5], Out.VariantBudget) && R.u64((*L)[6], Threads) &&
            R.u64((*L)[7], Out.BatchSize) &&
            R.boolTok((*L)[8], Out.InjectBugs) &&
            R.boolTok((*L)[9], Out.PruneInvalid) &&
            R.boolTok((*L)[10], Out.Triage);
  if (Ok && (Mode > 1 || Gran > 1 || Model > 2))
    Ok = R.fail("enum value out of range");
  if (Ok) {
    Out.Mode = static_cast<SpeMode>(Mode);
    Out.Extract.Gran = static_cast<Granularity>(Gran);
    Out.Extract.Model = static_cast<ScopeModel>(Model);
    Out.Threads = static_cast<unsigned>(Threads);
  }

  uint64_t NConfigs = 0;
  Ok = Ok && (L = R.line("configs", 2)) && R.u64((*L)[1], NConfigs);
  for (uint64_t I = 0; Ok && I < NConfigs; ++I) {
    const auto *CL = R.line("config", 6);
    uint64_t P = 0, Ver = 0, Opt = 0, NSweep = 0;
    CompilerConfig C;
    Ok = CL && R.u64((*CL)[1], P) && R.u64((*CL)[2], Ver) &&
         R.u64((*CL)[3], Opt) && R.boolTok((*CL)[4], C.Mode64) &&
         R.u64((*CL)[5], NSweep);
    if (Ok && P > 1)
      Ok = R.fail("persona out of range");
    for (uint64_t S = 0; Ok && S < NSweep; ++S) {
      const auto *SL = R.line("sweep", 2);
      std::string In;
      Ok = SL && R.strTok((*SL)[1], In);
      if (Ok)
        C.ExecSweep.push_back(std::move(In));
    }
    if (Ok) {
      C.P = static_cast<Persona>(P);
      C.Version = static_cast<unsigned>(Ver);
      C.OptLevel = static_cast<unsigned>(Opt);
      Out.Configs.push_back(std::move(C));
    }
  }
  if (Ok && R.At != R.Lines.size())
    Ok = R.fail("trailing data after fleet spec");
  if (!Ok) {
    Err = R.Err.empty() ? "malformed fleet spec" : R.Err;
    return false;
  }
  return true;
}

uint64_t FleetSpec::fingerprint() const {
  std::string Doc = serialize();
  Fnv Sum;
  Sum.bytes(Doc.data(), Doc.size());
  return Sum.H;
}

HarnessOptions FleetSpec::toHarnessOptions() const {
  HarnessOptions O;
  O.Mode = Mode;
  O.Extract = Extract;
  O.VariantThreshold = VariantThreshold;
  O.VariantBudget = VariantBudget;
  O.Threads = Threads;
  O.BatchSize = BatchSize;
  O.Configs = Configs;
  O.InjectBugs = InjectBugs;
  O.PruneInvalid = PruneInvalid;
  O.Triage = Triage;
  return O;
}

std::string spe::serializeFragment(const CampaignResult &R) {
  std::ostringstream Out;
  Out << FragmentMagic << '\n';
  linetext::writeResult(Out, R);
  return withChecksumTrailer(Out.str());
}

bool spe::parseFragment(const std::string &Text, CampaignResult &Out,
                        std::string &Err) {
  Out = CampaignResult();
  std::string Body;
  if (!stripChecksumTrailer(Text, Body, Err))
    return false;
  Reader R(Body);
  if (R.Lines.empty() || R.Lines[0].size() != 2 ||
      R.Lines[0][0] + " " + R.Lines[0][1] != FragmentMagic) {
    Err = "bad fragment magic";
    return false;
  }
  R.At = 1;
  if (!linetext::readResult(R, Out) || R.At != R.Lines.size()) {
    Err = R.Err.empty() ? "malformed fragment" : R.Err;
    return false;
  }
  return true;
}
