//===- distrib/Coordinator.cpp - lease-based fleet campaign server --------===//

#include "distrib/Coordinator.h"

#include "persist/Checkpoint.h"
#include "persist/LineText.h"
#include "support/PipedProcess.h"
#include "triage/Deduper.h"

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

using namespace spe;
using namespace spe::linetext;

namespace {

const char JournalMagic[] = "SPE-FLEET-JOURNAL v1";

std::vector<std::string> splitTokens(const std::string &Line) {
  std::vector<std::string> Tokens;
  size_t P = 0;
  while (P < Line.size()) {
    size_t Space = Line.find(' ', P);
    if (Space == std::string::npos)
      Space = Line.size();
    if (Space > P)
      Tokens.push_back(Line.substr(P, Space - P));
    P = Space + 1;
  }
  return Tokens;
}

bool readFileText(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In.is_open())
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

uint64_t steadyMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One contiguous rank range of one seed's budgeted space.
struct Lease {
  uint64_t Id = 0;
  uint64_t SeedIdx = 0;
  uint64_t Begin = 0;
  uint64_t End = 0;
  bool Done = false;
  CampaignResult Fragment;
};

/// Per-slot bookkeeping the fleet status document publishes.
struct WorkerSlot {
  pid_t Pid = -1;
  bool Alive = false;
  uint64_t LeasesDone = 0;
  unsigned Deaths = 0;
};

} // namespace

/// All state the dispatch threads, the status writer, and the journal share
/// for one run() invocation. Everything below Mu is guarded by it.
struct CampaignCoordinator::Impl {
  const FleetSpec &Spec;
  const FleetOptions &O;
  const std::vector<std::string> &Seeds;

  uint64_t SpecFp = 0;
  uint64_t SeedsFp = 0;
  std::string SpecDoc;
  uint64_t StartMs = 0;

  std::mutex Mu;
  std::condition_variable Cv;
  std::vector<CampaignResult> Headers; ///< Per-seed summarizeSeed headers.
  std::vector<Lease> Leases;           ///< Seed-major, ascending Begin.
  std::deque<size_t> Pending;          ///< Lease indices awaiting a worker.
  uint64_t DoneCount = 0;
  bool Stop = false;
  bool HookStop = false;
  std::string FirstErr;
  FleetStats St;
  std::vector<WorkerSlot> Slots;
  /// Headers plus every recorded fragment, for live status counters only;
  /// the returned Result is rebuilt with the deterministic final merge.
  CampaignResult Live;
  uint64_t Dispatched = 0; ///< Global dispatch ordinal (KillWorkerAtLease).
  uint64_t StatusWrites = 0;
  uint64_t StatusWriteFailures = 0;
  bool StatusWarned = false;
  bool StatusDone = false;

  Impl(const FleetSpec &Spec, const FleetOptions &O,
       const std::vector<std::string> &Seeds)
      : Spec(Spec), O(O), Seeds(Seeds) {}

  void failLocked(const std::string &Msg) {
    if (FirstErr.empty())
      FirstErr = Msg;
    Stop = true;
    Cv.notify_all();
  }

  void fail(const std::string &Msg) {
    std::lock_guard<std::mutex> G(Mu);
    failLocked(Msg);
  }

  std::string workerStatusPath(unsigned W) const {
    return O.WorkerStatusDir + "/worker" + std::to_string(W) +
           ".status.json";
  }

  //===--- Lease journal --------------------------------------------------===//

  std::string serializeJournalLocked() const {
    std::ostringstream Out;
    Out << JournalMagic << '\n';
    Out << "spec_fp " << SpecFp << '\n';
    Out << "seeds_fp " << SeedsFp << '\n';
    Out << "leases " << Leases.size() << '\n';
    for (const Lease &L : Leases) {
      Out << "lease " << L.Id << ' ' << L.SeedIdx << ' ' << L.Begin << ' '
          << L.End << ' ' << (L.Done ? 1 : 0) << '\n';
      if (L.Done)
        writeResult(Out, L.Fragment);
    }
    return withChecksumTrailer(Out.str());
  }

  void writeJournalLocked() {
    if (O.JournalPath.empty())
      return;
    std::string Err;
    if (!atomicWriteFile(O.JournalPath, serializeJournalLocked(), &Err))
      std::fprintf(stderr, "spe: fleet journal write failed: %s\n",
                   Err.c_str());
  }

  /// Replays a pre-existing journal into Leases. A missing file is a fresh
  /// campaign; anything present must match this campaign's spec, seed
  /// list, and lease partition exactly or the resume is rejected.
  bool loadJournal(std::string &Err) {
    std::string Text;
    if (O.JournalPath.empty() || !readFileText(O.JournalPath, Text))
      return true;
    std::string Body;
    if (!stripChecksumTrailer(Text, Body, Err)) {
      Err = "fleet journal: " + Err;
      return false;
    }
    Reader R(Body);
    bool Ok = !R.Lines.empty() && R.Lines[0].size() == 2 &&
              R.Lines[0][0] + " " + R.Lines[0][1] == JournalMagic;
    if (!Ok) {
      Err = "fleet journal: bad magic";
      return false;
    }
    R.At = 1;
    uint64_t Fp = 0, N = 0;
    const std::vector<std::string> *L = nullptr;
    Ok = (L = R.line("spec_fp", 2)) && R.u64((*L)[1], Fp);
    if (Ok && Fp != SpecFp)
      Ok = R.fail("journal is from a different campaign spec");
    Ok = Ok && (L = R.line("seeds_fp", 2)) && R.u64((*L)[1], Fp);
    if (Ok && Fp != SeedsFp)
      Ok = R.fail("journal is from a different seed list");
    Ok = Ok && (L = R.line("leases", 2)) && R.u64((*L)[1], N);
    if (Ok && N != Leases.size())
      Ok = R.fail("journal lease partition does not match");
    for (size_t I = 0; Ok && I < Leases.size(); ++I) {
      Lease &Mine = Leases[I];
      uint64_t Id = 0, Seed = 0, B = 0, E = 0;
      bool Done = false;
      Ok = (L = R.line("lease", 6)) && R.u64((*L)[1], Id) &&
           R.u64((*L)[2], Seed) && R.u64((*L)[3], B) && R.u64((*L)[4], E) &&
           R.boolTok((*L)[5], Done);
      if (Ok && (Id != Mine.Id || Seed != Mine.SeedIdx || B != Mine.Begin ||
                 E != Mine.End))
        Ok = R.fail("journal lease partition does not match");
      if (Ok && Done) {
        Ok = readResult(R, Mine.Fragment);
        if (Ok) {
          Mine.Done = true;
          ++DoneCount;
          ++St.LeasesRestored;
          Live.merge(Mine.Fragment);
        }
      }
    }
    if (Ok && R.At != R.Lines.size())
      Ok = R.fail("trailing data after fleet journal");
    if (!Ok) {
      Err = "fleet journal: " +
            (R.Err.empty() ? std::string("malformed") : R.Err);
      return false;
    }
    return true;
  }

  //===--- Fleet status document -----------------------------------------===//

  void writeStatusLocked(const char *State) {
    if (O.FleetStatusPath.empty())
      return;
    std::ostringstream J;
    J << "{\"schema\":1,\"state\":\"" << State << "\"";
    J << ",\"uptime_ms\":" << (steadyMs() - StartMs);
    J << ",\"leases\":{\"total\":" << Leases.size()
      << ",\"done\":" << DoneCount << ",\"released\":" << St.Releases
      << "}";
    J << ",\"workers\":[";
    for (size_t W = 0; W < Slots.size(); ++W) {
      const WorkerSlot &S = Slots[W];
      if (W)
        J << ',';
      J << "{\"id\":" << W << ",\"pid\":" << S.Pid << ",\"alive\":"
        << (S.Alive ? "true" : "false") << ",\"leases_done\":"
        << S.LeasesDone << ",\"respawns\":" << S.Deaths;
      // Embed the worker's own heartbeat verbatim when it parses as a
      // JSON object; a missing or torn file just omits the key.
      std::string Doc;
      if (!O.WorkerStatusDir.empty() &&
          readFileText(workerStatusPath(W), Doc)) {
        while (!Doc.empty() && (Doc.back() == '\n' || Doc.back() == '\r' ||
                                Doc.back() == ' '))
          Doc.pop_back();
        if (!Doc.empty() && Doc.front() == '{' && Doc.back() == '}')
          J << ",\"status\":" << Doc;
      }
      J << '}';
    }
    J << ']';
    J << ",\"counters\":{\"enumerated\":" << Live.VariantsEnumerated
      << ",\"tested\":" << Live.VariantsTested
      << ",\"pruned\":" << Live.VariantsPruned
      << ",\"oracle_excluded\":" << Live.VariantsOracleExcluded
      << ",\"oracle_execs\":" << Live.OracleExecutions
      << ",\"cache_hits\":" << Live.OracleCacheHits
      << ",\"timeouts\":" << Live.ExecutionTimeouts
      << ",\"matrix_cells\":" << Live.MatrixCellsCompared
      << ",\"raw_findings\":" << Live.RawFindings.size()
      << ",\"unique_bugs\":" << Live.UniqueBugs.size() << "}";
    // Committed-write semantics, exactly as status.schema.json documents
    // them: the counts cover documents that landed before this one.
    J << ",\"write_failures\":" << StatusWriteFailures
      << ",\"writes\":" << StatusWrites << "}\n";
    std::string Err;
    if (atomicWriteFile(O.FleetStatusPath, J.str(), &Err)) {
      ++StatusWrites;
      StatusWarned = false;
    } else {
      ++StatusWriteFailures;
      if (!StatusWarned) {
        StatusWarned = true;
        std::fprintf(stderr, "spe: fleet status write failed: %s\n",
                     Err.c_str());
      }
    }
  }
};

CampaignCoordinator::CampaignCoordinator(FleetSpec Spec, FleetOptions Opts)
    : Spec(std::move(Spec)), Opts(std::move(Opts)) {}

bool CampaignCoordinator::run(const std::vector<std::string> &Seeds,
                              CampaignResult &Result, std::string &Err) {
  Result = CampaignResult();
  Stats = FleetStats();
  StoppedByHook = false;
  if (Opts.WorkerCommand.empty()) {
    Err = "fleet: no worker command configured";
    return false;
  }
  const unsigned Workers = Opts.Workers == 0 ? 1 : Opts.Workers;

  Impl I(Spec, Opts, Seeds);
  I.SpecDoc = Spec.serialize();
  I.SpecFp = Spec.fingerprint();
  I.SeedsFp = fingerprintSeeds(Seeds);
  I.StartMs = steadyMs();
  I.Slots.resize(Workers);

  //===--- Plan: headers + lease partition, no enumeration ---------------===//

  const HarnessOptions HO = Spec.toHarnessOptions();
  DifferentialHarness Planner(HO);
  I.Headers.resize(Seeds.size());
  std::vector<size_t> FirstLease(Seeds.size() + 1, 0);
  for (size_t S = 0; S < Seeds.size(); ++S) {
    FirstLease[S] = I.Leases.size();
    DifferentialHarness::SeedLeaseSummary Sum = Planner.summarizeSeed(Seeds[S]);
    I.Headers[S] = std::move(Sum.Header);
    I.Live.merge(I.Headers[S]);
    if (!Sum.Enumerable)
      continue;
    const uint64_t Budget = Sum.Budget.toUint64();
    uint64_t Ranks = Opts.LeaseRanks;
    if (Ranks == 0)
      Ranks = (Budget + 4 * Workers - 1) / (4 * Workers);
    if (Ranks == 0)
      Ranks = 1;
    for (uint64_t B = 0; B < Budget; B += Ranks) {
      Lease L;
      L.Id = I.Leases.size();
      L.SeedIdx = S;
      L.Begin = B;
      L.End = B + Ranks < Budget ? B + Ranks : Budget;
      I.Leases.push_back(std::move(L));
    }
  }
  FirstLease[Seeds.size()] = I.Leases.size();
  I.St.LeasesTotal = I.Leases.size();

  if (!I.loadJournal(Err))
    return false;
  for (size_t Idx = 0; Idx < I.Leases.size(); ++Idx)
    if (!I.Leases[Idx].Done)
      I.Pending.push_back(Idx);

  //===--- Dispatch ------------------------------------------------------===//

  auto workerMain = [&I](unsigned W) {
    std::unique_ptr<PipedProcess> Proc;
    std::set<uint64_t> SeedsSent;

    // A worker death: confirm via wait status, requeue the in-flight
    // lease, and let the next dispatch respawn -- unless this slot has
    // burned its respawn budget (a lease that kills every worker that
    // touches it is poison, not bad luck).
    auto onDeath = [&](size_t Idx) {
      Proc->kill(SIGKILL);
      Proc->wait();
      Proc.reset();
      std::lock_guard<std::mutex> G(I.Mu);
      WorkerSlot &S = I.Slots[W];
      S.Alive = false;
      ++S.Deaths;
      ++I.St.WorkerDeaths;
      ++I.St.Releases;
      I.Pending.push_front(Idx);
      if (S.Deaths > I.O.MaxRespawns)
        I.failLocked("fleet: worker slot " + std::to_string(W) +
                     " exceeded its respawn budget");
      I.Cv.notify_all();
    };

    for (;;) {
      size_t Idx;
      {
        std::unique_lock<std::mutex> L(I.Mu);
        I.Cv.wait(L, [&] {
          return I.Stop || !I.Pending.empty() ||
                 I.DoneCount == I.Leases.size();
        });
        if (I.Stop || I.Pending.empty())
          break;
        Idx = I.Pending.front();
        I.Pending.pop_front();
      }

      if (!Proc) {
        Proc = std::make_unique<PipedProcess>();
        std::vector<std::string> Cmd = I.O.WorkerCommand;
        if (!I.O.WorkerStatusDir.empty()) {
          Cmd.push_back("--status");
          Cmd.push_back(I.workerStatusPath(W));
        }
        std::string SErr;
        if (!Proc->start(Cmd, SErr)) {
          std::lock_guard<std::mutex> G(I.Mu);
          I.Pending.push_front(Idx);
          I.failLocked("fleet: cannot start worker: " + SErr);
          return;
        }
        SeedsSent.clear();
        {
          std::lock_guard<std::mutex> G(I.Mu);
          ++I.St.WorkersSpawned;
          I.Slots[W].Pid = Proc->pid();
          I.Slots[W].Alive = true;
        }
        std::string Resp;
        if (!Proc->writeLine("spec " + escapeToken(I.SpecDoc)) ||
            !Proc->readLine(Resp)) {
          onDeath(Idx);
          continue;
        }
        std::vector<std::string> T = splitTokens(Resp);
        uint64_t Fp = 0;
        if (T.size() != 2 || T[0] != "ready" || !parseU64(T[1], Fp)) {
          I.fail("fleet: bad worker handshake: \"" + Resp + "\"");
          break;
        }
        if (Fp != I.SpecFp) {
          I.fail("fleet: worker echoed spec fingerprint " + T[1] +
                 ", expected " + std::to_string(I.SpecFp) +
                 " (skewed worker binary?)");
          break;
        }
      }

      const Lease &L = I.Leases[Idx];
      bool Sent = true;
      if (!SeedsSent.count(L.SeedIdx)) {
        Sent = Proc->writeLine("seed " + std::to_string(L.SeedIdx) + " " +
                               escapeToken(I.Seeds[L.SeedIdx]));
        if (Sent)
          SeedsSent.insert(L.SeedIdx);
      }
      Sent = Sent && Proc->writeLine("lease " + std::to_string(L.Id) + " " +
                                     std::to_string(L.SeedIdx) + " " +
                                     std::to_string(L.Begin) + " " +
                                     std::to_string(L.End));
      if (Sent) {
        uint64_t Ordinal;
        {
          std::lock_guard<std::mutex> G(I.Mu);
          Ordinal = ++I.Dispatched;
        }
        if (I.O.KillWorkerAtLease && Ordinal == I.O.KillWorkerAtLease)
          Proc->kill(SIGKILL);
      }

      std::string Resp;
      if (!Sent || !Proc->readLine(Resp)) {
        onDeath(Idx);
        continue;
      }
      std::vector<std::string> T = splitTokens(Resp);
      if (T.size() == 2 && T[0] == "error") {
        std::string Msg;
        unescapeToken(T[1], Msg);
        // A reported error is deterministic (the lease itself failed, not
        // the process) -- re-leasing would fail identically.
        I.fail("fleet: worker reported: " + Msg);
        break;
      }
      std::string FragText, PErr;
      CampaignResult Frag;
      if (T.size() != 3 || T[0] != "done" ||
          T[1] != std::to_string(L.Id) ||
          !unescapeToken(T[2], FragText) ||
          !parseFragment(FragText, Frag, PErr)) {
        I.fail("fleet: lease " + std::to_string(L.Id) +
               ": bad worker reply" + (PErr.empty() ? "" : ": " + PErr));
        break;
      }

      std::lock_guard<std::mutex> G(I.Mu);
      Lease &Mine = I.Leases[Idx];
      Mine.Done = true;
      Mine.Fragment = std::move(Frag);
      ++I.DoneCount;
      ++I.St.LeasesRun;
      ++I.Slots[W].LeasesDone;
      I.Live.merge(Mine.Fragment);
      I.writeJournalLocked();
      if (I.O.StopAfterFragments &&
          I.St.LeasesRun >= I.O.StopAfterFragments) {
        I.HookStop = true;
        I.Stop = true;
      }
      I.Cv.notify_all();
    }

    if (Proc) {
      Proc->writeLine("exit");
      Proc->closeStdin();
      Proc->wait();
      std::lock_guard<std::mutex> G(I.Mu);
      I.Slots[W].Alive = false;
    }
  };

  std::thread StatusThread;
  if (!Opts.FleetStatusPath.empty()) {
    StatusThread = std::thread([&I] {
      std::unique_lock<std::mutex> L(I.Mu);
      while (!I.StatusDone) {
        I.writeStatusLocked("running");
        I.Cv.wait_for(L, std::chrono::milliseconds(
                             I.O.StatusEveryMs == 0 ? 1 : I.O.StatusEveryMs),
                      [&] { return I.StatusDone; });
      }
    });
  }

  std::vector<std::thread> Threads;
  Threads.reserve(Workers);
  for (unsigned W = 0; W < Workers; ++W)
    Threads.emplace_back(workerMain, W);
  for (std::thread &T : Threads)
    T.join();

  //===--- Deterministic final merge -------------------------------------===//

  {
    std::lock_guard<std::mutex> G(I.Mu);
    for (size_t S = 0; S < Seeds.size(); ++S) {
      Result.merge(I.Headers[S]);
      for (size_t Idx = FirstLease[S]; Idx < FirstLease[S + 1]; ++Idx)
        if (I.Leases[Idx].Done)
          Result.merge(I.Leases[Idx].Fragment);
    }
    Stats = I.St;
    StoppedByHook = I.HookStop;
  }

  const bool Failed = !I.FirstErr.empty();
  if (!Failed && !StoppedByHook) {
    if (!Opts.CheckpointPath.empty()) {
      // The Complete pre-triage snapshot the equivalent single-process
      // checkpointed campaign leaves behind, byte for byte.
      CampaignCheckpoint CP;
      CP.OptionsFingerprint = fingerprintOptions(HO);
      CP.SeedsFingerprint = I.SeedsFp;
      CP.Complete = true;
      CP.NextSeed = Seeds.size();
      CP.Merged = Result;
      std::string CErr;
      if (!CP.saveTo(Opts.CheckpointPath, &CErr))
        std::fprintf(stderr, "spe: fleet checkpoint write failed: %s\n",
                     CErr.c_str());
    }
    if (Spec.Triage) {
      TriageOptions T;
      T.InjectBugs = Spec.InjectBugs;
      triageCampaign(Result, T);
    }
  }

  {
    std::lock_guard<std::mutex> G(I.Mu);
    I.StatusDone = true;
    I.Cv.notify_all();
  }
  if (StatusThread.joinable())
    StatusThread.join();
  {
    std::lock_guard<std::mutex> G(I.Mu);
    I.writeStatusLocked(Failed ? "failed" : "complete");
  }

  if (Failed) {
    Err = I.FirstErr;
    return false;
  }
  return true;
}
