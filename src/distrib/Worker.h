//===- distrib/Worker.h - fleet worker protocol loop ----------------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker half of the fleet protocol (distrib/FleetProtocol.h): a
/// stream-driven loop that receives a campaign spec, caches seed sources,
/// and runs each lease through DifferentialHarness::runLease, streaming the
/// serialized per-lease CampaignResult fragment back. Stream-parameterized
/// so tests can drive a worker in-process over stringstreams; the
/// spe_fleet_worker binary (tools/fleet_worker.cpp) wires it to stdin and
/// stdout.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_DISTRIB_WORKER_H
#define SPE_DISTRIB_WORKER_H

#include <cstdint>
#include <iosfwd>
#include <string>

namespace spe {

struct FleetWorkerOptions {
  /// When non-empty, the worker maintains a CampaignStatusFeed heartbeat
  /// at this path: one "seed" per completed lease, live shard progress
  /// inside a lease. A fleet coordinator aggregates these per-worker
  /// documents into its fleet status feed.
  std::string StatusPath;
  /// Heartbeat cadence (CampaignStatusFeed::Options::EveryMs).
  uint64_t StatusEveryMs = 500;
};

/// Runs the worker protocol loop over \p In / \p Out until `exit` or EOF
/// (EOF means the coordinator died; that is a clean shutdown, exit 0).
/// \returns the process exit code: 0 on clean shutdown, 2 after a fatal
/// protocol or lease error (reported to the coordinator as an `error`
/// line first).
int runFleetWorker(std::istream &In, std::ostream &Out,
                   const FleetWorkerOptions &Opts);

} // namespace spe

#endif // SPE_DISTRIB_WORKER_H
