//===- distrib/Worker.cpp - fleet worker protocol loop --------------------===//

#include "distrib/Worker.h"

#include "distrib/FleetProtocol.h"
#include "persist/LineText.h"
#include "testing/CampaignStatus.h"

#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <vector>

using namespace spe;
using namespace spe::linetext;

namespace {

std::vector<std::string> splitTokens(const std::string &Line) {
  std::vector<std::string> Tokens;
  size_t P = 0;
  while (P < Line.size()) {
    size_t Space = Line.find(' ', P);
    if (Space == std::string::npos)
      Space = Line.size();
    if (Space > P)
      Tokens.push_back(Line.substr(P, Space - P));
    P = Space + 1;
  }
  return Tokens;
}

bool isDecimal(const std::string &T) {
  if (T.empty())
    return false;
  for (char C : T)
    if (C < '0' || C > '9')
      return false;
  return true;
}

/// The counter slice of \p R the heartbeat publishes (the harness's
/// countersOf, which is internal to Harness.cpp).
StatusCounters countersOf(const CampaignResult &R) {
  StatusCounters C;
  C.Enumerated = R.VariantsEnumerated;
  C.Tested = R.VariantsTested;
  C.Pruned = R.VariantsPruned;
  C.OracleExcluded = R.VariantsOracleExcluded;
  C.OracleExecs = R.OracleExecutions;
  C.CacheHits = R.OracleCacheHits;
  C.Timeouts = R.ExecutionTimeouts;
  C.MatrixCells = R.MatrixCellsCompared;
  C.RawFindings = R.RawFindings.size();
  C.UniqueBugs = R.UniqueBugs.size();
  return C;
}

} // namespace

int spe::runFleetWorker(std::istream &In, std::ostream &Out,
                        const FleetWorkerOptions &WO) {
  std::unique_ptr<CampaignStatusFeed> Feed;
  std::unique_ptr<DifferentialHarness> Harness;
  FleetSpec Spec;
  std::map<uint64_t, std::string> Seeds;
  /// Everything this worker ran, for heartbeat counters only -- fragments
  /// go back to the coordinator per lease.
  CampaignResult Cumulative;
  uint64_t LeasesDone = 0;

  auto fatal = [&](const std::string &Msg) {
    Out << "error " << escapeToken(Msg) << '\n' << std::flush;
    return 2;
  };

  std::string Line;
  while (std::getline(In, Line)) {
    std::vector<std::string> T = splitTokens(Line);
    if (T.empty())
      continue;

    if (T[0] == "spec" && T.size() == 2) {
      std::string Doc, Err;
      if (!unescapeToken(T[1], Doc))
        return fatal("bad spec escaping");
      if (!FleetSpec::parse(Doc, Spec, Err))
        return fatal("bad spec: " + Err);
      HarnessOptions HO = Spec.toHarnessOptions();
      if (!WO.StatusPath.empty()) {
        CampaignStatusFeed::Options SO;
        SO.Path = WO.StatusPath;
        SO.EveryMs = WO.StatusEveryMs;
        Feed = std::make_unique<CampaignStatusFeed>(SO);
        // A worker does not know the corpus size -- its "seeds" are the
        // leases it completes, counted as they stream in.
        Feed->beginCampaign(0, 0, StatusCounters());
        HO.Status = Feed.get();
      }
      Harness = std::make_unique<DifferentialHarness>(std::move(HO));
      Out << "ready " << Spec.fingerprint() << '\n' << std::flush;
      continue;
    }

    if (T[0] == "seed" && T.size() == 3) {
      uint64_t Idx;
      std::string Src;
      if (!parseU64(T[1], Idx) || !unescapeToken(T[2], Src))
        return fatal("bad seed line");
      Seeds[Idx] = std::move(Src);
      continue;
    }

    if (T[0] == "lease" && T.size() == 5) {
      if (!Harness)
        return fatal("lease before spec");
      uint64_t Id, SeedIdx;
      if (!parseU64(T[1], Id) || !parseU64(T[2], SeedIdx) ||
          !isDecimal(T[3]) || !isDecimal(T[4]))
        return fatal("bad lease line");
      auto It = Seeds.find(SeedIdx);
      if (It == Seeds.end())
        return fatal("lease names unknown seed " + T[2]);
      BigInt Begin = BigInt::fromDecimalString(T[3]);
      BigInt End = BigInt::fromDecimalString(T[4]);
      if (Feed)
        Feed->beginSeed(1);
      CampaignResult Fragment;
      std::string Err;
      if (!Harness->runLease(It->second, Begin, End, Fragment, Err))
        return fatal("lease " + T[1] + " failed: " + Err);
      ++LeasesDone;
      Cumulative.merge(Fragment);
      if (Feed)
        Feed->commitSeed(countersOf(Cumulative));
      Out << "done " << Id << ' ' << escapeToken(serializeFragment(Fragment))
          << '\n'
          << std::flush;
      continue;
    }

    if (T[0] == "exit")
      break;

    return fatal("unknown command: " + T[0]);
  }

  // EOF without `exit` means the coordinator went away; lease work already
  // streamed back is safe (the journal has it), so this is a clean orphan
  // shutdown either way.
  if (Feed)
    Feed->finishCampaign(countersOf(Cumulative));
  return 0;
}
