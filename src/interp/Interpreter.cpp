//===- interp/Interpreter.cpp - Reference interpreter with UB oracle -----===//

#include "interp/Interpreter.h"

#include "support/StdinScan.h"

#include <cassert>
#include <cstdio>
#include <limits>
#include <map>
#include <vector>

using namespace spe;

const char *spe::execStatusName(ExecStatus Status) {
  switch (Status) {
  case ExecStatus::Ok:
    return "ok";
  case ExecStatus::UndefinedBehavior:
    return "undefined-behavior";
  case ExecStatus::Timeout:
    return "timeout";
  case ExecStatus::Unsupported:
    return "unsupported";
  }
  return "?";
}

namespace {

/// A runtime scalar: an integer (sign-/zero-extended into 64 bits) or a
/// pointer (block + byte offset). Uninit marks the indeterminate value a
/// non-void function "returns" when control falls off its end.
struct Value {
  const Type *Ty = nullptr;
  uint64_t Bits = 0;
  uint32_t Block = 0;
  int64_t Offset = 0;
  bool Uninit = false;

  bool isPointer() const { return Ty && Ty->isPointer(); }
};

/// A memory place.
struct LValue {
  uint32_t Block = 0;
  int64_t Offset = 0;
  const Type *Ty = nullptr;
};

/// One allocation.
struct MemBlock {
  std::string Name;
  std::vector<uint8_t> Bytes;
  std::vector<bool> Init;
  bool Alive = true;
};

/// Control-flow signal propagated out of statement execution.
struct Signal {
  enum Kind { None, Break, Continue, Return, Goto } K = None;
  Value Ret;
  std::string Label;
};

class Interp {
public:
  Interp(ASTContext &Ctx, const InterpOptions &Opts)
      : Ctx(Ctx), Opts(Opts), Stdin(Opts.Input) {
    Blocks.push_back(MemBlock{"<null>", {}, {}, false});
  }

  ExecResult run();

private:
  // --- failure handling -------------------------------------------------
  void fail(ExecStatus Status, const std::string &Message) {
    if (Failed)
      return;
    Failed = true;
    Result.Status = Status;
    Result.Message = Message;
  }
  void ub(const std::string &Message) {
    fail(ExecStatus::UndefinedBehavior, Message);
  }
  bool step() {
    if (Failed)
      return false;
    if (++Steps > Opts.MaxSteps) {
      fail(ExecStatus::Timeout, "step budget exhausted");
      return false;
    }
    return true;
  }

  // --- memory -----------------------------------------------------------
  uint32_t allocate(const std::string &Name, uint64_t Size, bool ZeroInit);
  void deallocateFrame(const std::map<const VarDecl *, uint32_t> &Frame);
  bool checkAccess(const LValue &LV, uint64_t Size, const char *What);
  Value loadScalar(const LValue &LV);
  void storeScalar(const LValue &LV, const Value &V);
  void copyObject(const LValue &Dst, const LValue &Src, uint64_t Size);

  // --- value helpers ----------------------------------------------------
  static uint64_t normalizeInt(const Type *Ty, uint64_t Raw);
  Value makeInt(const Type *Ty, uint64_t Raw) const;
  Value convert(const Value &V, const Type *To);
  /// \returns the boolean truth of a scalar; flags UB on uninit.
  bool truthy(const Value &V);
  bool requireInit(const Value &V, const char *What);

  // --- evaluation -------------------------------------------------------
  Value evalExpr(const Expr *E);
  bool evalLValue(const Expr *E, LValue &Out);
  Value evalBinary(const BinaryExpr *B);
  Value applyArith(BinaryOp Op, const Type *Ty, const Value &L,
                   const Value &R, SourceLocation Loc);
  Value pointerAdd(const Value &Ptr, int64_t Delta, SourceLocation Loc);
  Value evalCall(const CallExpr *C);
  void doPrintf(const CallExpr *C);
  Value callFunction(const FunctionDecl *F, const std::vector<Value> &Args);
  const Type *promoted(const Type *Ty) const;
  const Type *arithResultType(BinaryOp Op, const Type *L, const Type *R);

  // --- statements -------------------------------------------------------
  Signal execStmt(const Stmt *S);
  Signal execSeek(const Stmt *S, const std::string &Label, bool &Found);
  Signal runBody(const CompoundStmt *Body);
  void execVarDecl(const VarDecl *V);
  void initializeObject(const LValue &LV, const Expr *Init);

  VarDecl *findVar(const DeclRefExpr *Ref) const { return Ref->decl(); }
  uint32_t blockOf(const VarDecl *V);

  ASTContext &Ctx;
  const InterpOptions &Opts;
  ExecResult Result;
  bool Failed = false;
  uint64_t Steps = 0;
  StdinIntScanner Stdin; ///< Sweep-input cursor for spe_input().

  std::vector<MemBlock> Blocks;
  std::map<const VarDecl *, uint32_t> Globals;
  std::vector<std::map<const VarDecl *, uint32_t>> Frames;
  unsigned CallDepth = 0;
};

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

uint32_t Interp::allocate(const std::string &Name, uint64_t Size,
                          bool ZeroInit) {
  MemBlock B;
  B.Name = Name;
  B.Bytes.assign(Size, 0);
  B.Init.assign(Size, ZeroInit);
  Blocks.push_back(std::move(B));
  return static_cast<uint32_t>(Blocks.size() - 1);
}

void Interp::deallocateFrame(
    const std::map<const VarDecl *, uint32_t> &Frame) {
  for (const auto &[V, Block] : Frame)
    Blocks[Block].Alive = false;
}

bool Interp::checkAccess(const LValue &LV, uint64_t Size, const char *What) {
  if (LV.Block == 0 || LV.Block >= Blocks.size()) {
    ub(std::string("null pointer ") + What);
    return false;
  }
  MemBlock &B = Blocks[LV.Block];
  if (!B.Alive) {
    ub(std::string("dangling pointer ") + What + " of '" + B.Name + "'");
    return false;
  }
  if (LV.Offset < 0 ||
      static_cast<uint64_t>(LV.Offset) + Size > B.Bytes.size()) {
    ub(std::string("out-of-bounds ") + What + " of '" + B.Name + "'");
    return false;
  }
  return true;
}

Value Interp::loadScalar(const LValue &LV) {
  assert(LV.Ty->isScalar() && "loadScalar on aggregate");
  uint64_t Size = LV.Ty->sizeInBytes();
  if (!checkAccess(LV, Size, "read"))
    return {};
  MemBlock &B = Blocks[LV.Block];
  for (uint64_t I = 0; I < Size; ++I) {
    if (!B.Init[LV.Offset + I]) {
      ub("read of uninitialized value from '" + B.Name + "'");
      return {};
    }
  }
  if (LV.Ty->isPointer()) {
    Value V;
    V.Ty = LV.Ty;
    uint32_t Block = 0;
    uint32_t Off = 0;
    for (int I = 3; I >= 0; --I)
      Block = (Block << 8) | B.Bytes[LV.Offset + I];
    for (int I = 3; I >= 0; --I)
      Off = (Off << 8) | B.Bytes[LV.Offset + 4 + I];
    V.Block = Block;
    V.Offset = static_cast<int32_t>(Off);
    return V;
  }
  uint64_t Raw = 0;
  for (uint64_t I = Size; I-- > 0;)
    Raw = (Raw << 8) | B.Bytes[LV.Offset + I];
  return makeInt(LV.Ty, Raw);
}

void Interp::storeScalar(const LValue &LV, const Value &V) {
  assert(LV.Ty->isScalar() && "storeScalar on aggregate");
  uint64_t Size = LV.Ty->sizeInBytes();
  if (!checkAccess(LV, Size, "write"))
    return;
  MemBlock &B = Blocks[LV.Block];
  if (V.Uninit) {
    // Storing an indeterminate value leaves the bytes uninitialized.
    for (uint64_t I = 0; I < Size; ++I)
      B.Init[LV.Offset + I] = false;
    return;
  }
  if (LV.Ty->isPointer()) {
    uint32_t Off = static_cast<uint32_t>(static_cast<int32_t>(V.Offset));
    for (int I = 0; I < 4; ++I)
      B.Bytes[LV.Offset + I] = static_cast<uint8_t>(V.Block >> (8 * I));
    for (int I = 0; I < 4; ++I)
      B.Bytes[LV.Offset + 4 + I] = static_cast<uint8_t>(Off >> (8 * I));
  } else {
    for (uint64_t I = 0; I < Size; ++I)
      B.Bytes[LV.Offset + I] = static_cast<uint8_t>(V.Bits >> (8 * I));
  }
  for (uint64_t I = 0; I < Size; ++I)
    B.Init[LV.Offset + I] = true;
}

void Interp::copyObject(const LValue &Dst, const LValue &Src, uint64_t Size) {
  if (!checkAccess(Src, Size, "read") || !checkAccess(Dst, Size, "write"))
    return;
  MemBlock &SB = Blocks[Src.Block];
  MemBlock &DB = Blocks[Dst.Block];
  for (uint64_t I = 0; I < Size; ++I) {
    DB.Bytes[Dst.Offset + I] = SB.Bytes[Src.Offset + I];
    DB.Init[Dst.Offset + I] = SB.Init[Src.Offset + I];
  }
}

//===----------------------------------------------------------------------===//
// Values and conversions
//===----------------------------------------------------------------------===//

uint64_t Interp::normalizeInt(const Type *Ty, uint64_t Raw) {
  unsigned Width = Ty->intWidth();
  if (Width == 64)
    return Raw;
  uint64_t Mask = (1ull << Width) - 1;
  Raw &= Mask;
  if (Ty->isSigned() && (Raw & (1ull << (Width - 1))))
    Raw |= ~Mask; // Sign extend.
  return Raw;
}

Value Interp::makeInt(const Type *Ty, uint64_t Raw) const {
  Value V;
  V.Ty = Ty;
  V.Bits = normalizeInt(Ty, Raw);
  return V;
}

Value Interp::convert(const Value &V, const Type *To) {
  if (V.Uninit || V.Ty == To)
    return V.Uninit ? V : [&] {
      Value C = V;
      C.Ty = To;
      if (To->isInteger())
        C.Bits = normalizeInt(To, V.Bits);
      return C;
    }();
  Value C;
  C.Ty = To;
  if (To->isInteger()) {
    // ptr -> int uses a deterministic synthetic encoding shared with the VM.
    uint64_t Raw = V.isPointer()
                       ? (static_cast<uint64_t>(V.Block) << 32) |
                             (static_cast<uint32_t>(V.Offset))
                       : V.Bits;
    C.Bits = normalizeInt(To, Raw);
    return C;
  }
  if (To->isPointer()) {
    if (V.isPointer()) {
      C.Block = V.Block;
      C.Offset = V.Offset;
      return C;
    }
    // int -> ptr: zero becomes null, anything else a poisoned pointer.
    C.Block = V.Bits == 0 ? 0 : 0;
    C.Offset = static_cast<int64_t>(V.Bits);
    return C;
  }
  return C;
}

bool Interp::requireInit(const Value &V, const char *What) {
  if (!V.Uninit)
    return true;
  ub(std::string("use of indeterminate value in ") + What);
  return false;
}

bool Interp::truthy(const Value &V) {
  if (!requireInit(V, "condition"))
    return false;
  if (V.isPointer())
    return V.Block != 0 || V.Offset != 0;
  return V.Bits != 0;
}

const Type *Interp::promoted(const Type *Ty) const {
  if (Ty->isInteger() && Ty->intWidth() < 32)
    return Ctx.types().int32Type();
  return Ty;
}

const Type *Interp::arithResultType(BinaryOp Op, const Type *L,
                                    const Type *R) {
  if (Op == BinaryOp::Shl || Op == BinaryOp::Shr)
    return promoted(L);
  const Type *A = promoted(L);
  const Type *B = promoted(R);
  if (A == B)
    return A;
  unsigned Width = std::max(A->intWidth(), B->intWidth());
  bool Signed;
  if (A->isSigned() == B->isSigned()) {
    Signed = A->isSigned();
  } else {
    const Type *SignedT = A->isSigned() ? A : B;
    const Type *UnsignedT = A->isSigned() ? B : A;
    Signed = SignedT->intWidth() > UnsignedT->intWidth();
  }
  return Ctx.types().intType(Width, Signed);
}

//===----------------------------------------------------------------------===//
// Arithmetic with UB detection
//===----------------------------------------------------------------------===//

Value Interp::applyArith(BinaryOp Op, const Type *Ty, const Value &L,
                         const Value &R, SourceLocation Loc) {
  (void)Loc;
  if (!requireInit(L, "arithmetic") || !requireInit(R, "arithmetic"))
    return {};
  unsigned Width = Ty->intWidth();
  bool Signed = Ty->isSigned();
  int64_t SL = static_cast<int64_t>(normalizeInt(Ty, L.Bits));
  int64_t SR = static_cast<int64_t>(normalizeInt(Ty, R.Bits));
  uint64_t UL = normalizeInt(Ty, L.Bits);
  uint64_t UR = normalizeInt(Ty, R.Bits);

  auto CheckSignedRange = [&](__int128 Wide, const char *OpName) -> bool {
    __int128 Min = -(static_cast<__int128>(1) << (Width - 1));
    __int128 Max = (static_cast<__int128>(1) << (Width - 1)) - 1;
    if (Wide < Min || Wide > Max) {
      ub(std::string("signed integer overflow in '") + OpName + "'");
      return false;
    }
    return true;
  };

  uint64_t Raw = 0;
  switch (Op) {
  case BinaryOp::Add:
    if (Signed) {
      __int128 Wide = static_cast<__int128>(SL) + SR;
      if (!CheckSignedRange(Wide, "+"))
        return {};
      Raw = static_cast<uint64_t>(static_cast<int64_t>(Wide));
    } else {
      Raw = UL + UR;
    }
    break;
  case BinaryOp::Sub:
    if (Signed) {
      __int128 Wide = static_cast<__int128>(SL) - SR;
      if (!CheckSignedRange(Wide, "-"))
        return {};
      Raw = static_cast<uint64_t>(static_cast<int64_t>(Wide));
    } else {
      Raw = UL - UR;
    }
    break;
  case BinaryOp::Mul:
    if (Signed) {
      __int128 Wide = static_cast<__int128>(SL) * SR;
      if (!CheckSignedRange(Wide, "*"))
        return {};
      Raw = static_cast<uint64_t>(static_cast<int64_t>(Wide));
    } else {
      Raw = UL * UR;
    }
    break;
  case BinaryOp::Div:
  case BinaryOp::Rem: {
    bool IsDiv = Op == BinaryOp::Div;
    if ((Signed && SR == 0) || (!Signed && UR == 0)) {
      ub(IsDiv ? "division by zero" : "remainder by zero");
      return {};
    }
    if (Signed) {
      int64_t MinVal = Width == 64
                           ? std::numeric_limits<int64_t>::min()
                           : -(static_cast<int64_t>(1) << (Width - 1));
      if (SL == MinVal && SR == -1) {
        ub("signed overflow in division (MIN / -1)");
        return {};
      }
      Raw = static_cast<uint64_t>(IsDiv ? SL / SR : SL % SR);
    } else {
      Raw = IsDiv ? UL / UR : UL % UR;
    }
    break;
  }
  case BinaryOp::Shl:
  case BinaryOp::Shr: {
    // The count is the RHS as written; the type is the promoted LHS type.
    int64_t Count = R.Ty->isInteger() && R.Ty->isSigned()
                        ? static_cast<int64_t>(R.Bits)
                        : static_cast<int64_t>(R.Bits);
    if (Count < 0 || Count >= static_cast<int64_t>(Width)) {
      ub("shift amount out of range");
      return {};
    }
    if (Op == BinaryOp::Shl) {
      if (Signed && SL < 0) {
        ub("left shift of negative value");
        return {};
      }
      if (Signed) {
        __int128 Wide = static_cast<__int128>(SL) << Count;
        __int128 Max = (static_cast<__int128>(1) << (Width - 1)) - 1;
        if (Wide > Max) {
          ub("signed overflow in left shift");
          return {};
        }
        Raw = static_cast<uint64_t>(static_cast<int64_t>(Wide));
      } else {
        Raw = UL << Count;
      }
    } else {
      Raw = Signed ? static_cast<uint64_t>(SL >> Count) : UL >> Count;
    }
    break;
  }
  case BinaryOp::BitAnd:
    Raw = UL & UR;
    break;
  case BinaryOp::BitXor:
    Raw = UL ^ UR;
    break;
  case BinaryOp::BitOr:
    Raw = UL | UR;
    break;
  default:
    assert(false && "not an arithmetic operator");
  }
  return makeInt(Ty, Raw);
}

Value Interp::pointerAdd(const Value &Ptr, int64_t Delta,
                         SourceLocation Loc) {
  (void)Loc;
  if (Ptr.Block == 0) {
    if (Delta == 0)
      return Ptr; // NULL + 0 stays NULL.
    ub("arithmetic on null pointer");
    return {};
  }
  uint64_t ElemSize = Ptr.Ty->elementType()->sizeInBytes();
  Value R = Ptr;
  R.Offset = Ptr.Offset + Delta * static_cast<int64_t>(ElemSize);
  const MemBlock &B = Blocks[Ptr.Block];
  if (R.Offset < 0 ||
      static_cast<uint64_t>(R.Offset) > B.Bytes.size()) {
    ub("pointer arithmetic escapes object '" + B.Name + "'");
    return {};
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Expression evaluation
//===----------------------------------------------------------------------===//

uint32_t Interp::blockOf(const VarDecl *V) {
  if (!Frames.empty()) {
    auto It = Frames.back().find(V);
    if (It != Frames.back().end())
      return It->second;
  }
  auto It = Globals.find(V);
  if (It != Globals.end())
    return It->second;
  return 0;
}

bool Interp::evalLValue(const Expr *E, LValue &Out) {
  if (Failed || !step())
    return false;
  switch (E->kind()) {
  case Expr::Kind::DeclRef: {
    const auto *Ref = cast<DeclRefExpr>(E);
    uint32_t Block = blockOf(Ref->decl());
    if (Block == 0) {
      fail(ExecStatus::Unsupported, "unbound variable '" + Ref->name() + "'");
      return false;
    }
    Out = LValue{Block, 0, Ref->decl()->type()};
    return true;
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    assert(U->op() == UnaryOp::Deref && "not an lvalue unary");
    Value P = evalExpr(U->sub());
    if (Failed || !requireInit(P, "dereference"))
      return false;
    Out = LValue{P.Block, P.Offset, E->type()};
    return true;
  }
  case Expr::Kind::Index: {
    const auto *Ix = cast<IndexExpr>(E);
    Value Base = evalExpr(Ix->base());
    Value Index = evalExpr(Ix->index());
    if (Failed || !requireInit(Base, "subscript") ||
        !requireInit(Index, "subscript"))
      return false;
    Value P = pointerAdd(Base, static_cast<int64_t>(Index.Bits), Ix->loc());
    if (Failed)
      return false;
    Out = LValue{P.Block, P.Offset, E->type()};
    return true;
  }
  case Expr::Kind::Member: {
    const auto *M = cast<MemberExpr>(E);
    const Type *StructTy;
    LValue BaseLV;
    if (M->isArrow()) {
      Value P = evalExpr(M->base());
      if (Failed || !requireInit(P, "member access"))
        return false;
      StructTy = P.Ty->elementType();
      BaseLV = LValue{P.Block, P.Offset, StructTy};
    } else {
      if (!evalLValue(M->base(), BaseLV))
        return false;
      StructTy = BaseLV.Ty;
    }
    const Type::Field &F = StructTy->fields()[M->fieldIndex()];
    Out = LValue{BaseLV.Block, BaseLV.Offset + static_cast<int64_t>(F.Offset),
                 F.Ty};
    return true;
  }
  case Expr::Kind::Conditional: {
    // Needed for struct-valued ?: as in the paper's Figure 3 program.
    const auto *C = cast<ConditionalExpr>(E);
    Value Cond = evalExpr(C->cond());
    if (Failed)
      return false;
    return evalLValue(truthy(Cond) ? C->trueExpr() : C->falseExpr(), Out);
  }
  default:
    fail(ExecStatus::Unsupported, "expression is not an lvalue");
    return false;
  }
}

Value Interp::evalExpr(const Expr *E) {
  if (Failed || !step())
    return {};
  switch (E->kind()) {
  case Expr::Kind::IntegerLiteral:
    return makeInt(E->type(), cast<IntegerLiteral>(E)->value());
  case Expr::Kind::StringLiteral:
    fail(ExecStatus::Unsupported, "string literal outside printf");
    return {};
  case Expr::Kind::DeclRef: {
    const auto *Ref = cast<DeclRefExpr>(E);
    LValue LV;
    if (!evalLValue(E, LV))
      return {};
    // Arrays decay to a pointer to their first element.
    if (Ref->decl()->type()->isArray()) {
      Value V;
      V.Ty = Ctx.types().pointerTo(Ref->decl()->type()->elementType());
      V.Block = LV.Block;
      V.Offset = LV.Offset;
      return V;
    }
    if (!Ref->decl()->type()->isScalar()) {
      fail(ExecStatus::Unsupported, "aggregate rvalue use");
      return {};
    }
    return loadScalar(LV);
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    switch (U->op()) {
    case UnaryOp::Plus:
      return convert(evalExpr(U->sub()), E->type());
    case UnaryOp::Neg: {
      Value V = convert(evalExpr(U->sub()), E->type());
      if (Failed || !requireInit(V, "negation"))
        return {};
      Value Zero = makeInt(E->type(), 0);
      return applyArith(BinaryOp::Sub, E->type(), Zero, V, U->loc());
    }
    case UnaryOp::BitNot: {
      Value V = convert(evalExpr(U->sub()), E->type());
      if (Failed || !requireInit(V, "bitwise not"))
        return {};
      return makeInt(E->type(), ~V.Bits);
    }
    case UnaryOp::LogicalNot: {
      Value V = evalExpr(U->sub());
      if (Failed)
        return {};
      return makeInt(E->type(), truthy(V) ? 0 : 1);
    }
    case UnaryOp::Deref: {
      LValue LV;
      if (!evalLValue(E, LV))
        return {};
      if (LV.Ty->isArray()) {
        Value V;
        V.Ty = Ctx.types().pointerTo(LV.Ty->elementType());
        V.Block = LV.Block;
        V.Offset = LV.Offset;
        return V;
      }
      if (!LV.Ty->isScalar()) {
        fail(ExecStatus::Unsupported, "aggregate rvalue deref");
        return {};
      }
      return loadScalar(LV);
    }
    case UnaryOp::AddrOf: {
      LValue LV;
      if (!evalLValue(U->sub(), LV))
        return {};
      Value V;
      V.Ty = E->type();
      V.Block = LV.Block;
      V.Offset = LV.Offset;
      return V;
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec: {
      LValue LV;
      if (!evalLValue(U->sub(), LV))
        return {};
      Value Old = loadScalar(LV);
      if (Failed)
        return {};
      bool IsInc =
          U->op() == UnaryOp::PreInc || U->op() == UnaryOp::PostInc;
      Value New;
      if (Old.isPointer()) {
        New = pointerAdd(Old, IsInc ? 1 : -1, U->loc());
      } else {
        const Type *Ty = promoted(Old.Ty);
        Value One = makeInt(Ty, 1);
        New = applyArith(IsInc ? BinaryOp::Add : BinaryOp::Sub, Ty,
                         convert(Old, Ty), One, U->loc());
        if (!Failed)
          New = convert(New, Old.Ty);
      }
      if (Failed)
        return {};
      storeScalar(LV, New);
      bool IsPost =
          U->op() == UnaryOp::PostInc || U->op() == UnaryOp::PostDec;
      return IsPost ? Old : New;
    }
    }
    return {};
  }
  case Expr::Kind::Binary:
    return evalBinary(cast<BinaryExpr>(E));
  case Expr::Kind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    Value Cond = evalExpr(C->cond());
    if (Failed)
      return {};
    const Expr *Arm = truthy(Cond) ? C->trueExpr() : C->falseExpr();
    if (Failed)
      return {};
    Value V = evalExpr(Arm);
    if (Failed)
      return {};
    return E->type()->isScalar() ? convert(V, E->type()) : V;
  }
  case Expr::Kind::Call:
    return evalCall(cast<CallExpr>(E));
  case Expr::Kind::Index: {
    LValue LV;
    if (!evalLValue(E, LV))
      return {};
    if (LV.Ty->isArray()) {
      Value V;
      V.Ty = Ctx.types().pointerTo(LV.Ty->elementType());
      V.Block = LV.Block;
      V.Offset = LV.Offset;
      return V;
    }
    return loadScalar(LV);
  }
  case Expr::Kind::Member: {
    LValue LV;
    if (!evalLValue(E, LV))
      return {};
    if (LV.Ty->isArray()) {
      Value V;
      V.Ty = Ctx.types().pointerTo(LV.Ty->elementType());
      V.Block = LV.Block;
      V.Offset = LV.Offset;
      return V;
    }
    if (!LV.Ty->isScalar()) {
      fail(ExecStatus::Unsupported, "aggregate rvalue member");
      return {};
    }
    return loadScalar(LV);
  }
  case Expr::Kind::Cast: {
    Value V = evalExpr(cast<CastExpr>(E)->sub());
    if (Failed)
      return {};
    if (V.Uninit)
      return V;
    return convert(V, E->type());
  }
  case Expr::Kind::SizeOf: {
    const auto *S = cast<SizeOfExpr>(E);
    const Type *Ty =
        S->typeOperand() ? S->typeOperand() : S->exprOperand()->type();
    uint64_t Size = Ty->isPointer() ? 8 : Ty->sizeInBytes();
    if (Ty->isArray() && Ty->elementType()->isPointer())
      Size = Ty->arraySize() * 8;
    return makeInt(E->type(), Size);
  }
  case Expr::Kind::InitList:
    fail(ExecStatus::Unsupported, "initializer list in expression");
    return {};
  }
  return {};
}

Value Interp::evalBinary(const BinaryExpr *B) {
  BinaryOp Op = B->op();

  if (Op == BinaryOp::Comma) {
    evalExpr(B->lhs());
    if (Failed)
      return {};
    return evalExpr(B->rhs());
  }

  if (Op == BinaryOp::LogicalAnd || Op == BinaryOp::LogicalOr) {
    Value L = evalExpr(B->lhs());
    if (Failed)
      return {};
    bool LTrue = truthy(L);
    if (Failed)
      return {};
    if (Op == BinaryOp::LogicalAnd && !LTrue)
      return makeInt(B->type(), 0);
    if (Op == BinaryOp::LogicalOr && LTrue)
      return makeInt(B->type(), 1);
    Value R = evalExpr(B->rhs());
    if (Failed)
      return {};
    return makeInt(B->type(), truthy(R) ? 1 : 0);
  }

  if (isAssignmentOp(Op)) {
    // Struct assignment copies the whole object.
    if (Op == BinaryOp::Assign && B->lhs()->type()->isStruct()) {
      LValue Dst, Src;
      if (!evalLValue(B->lhs(), Dst) || !evalLValue(B->rhs(), Src))
        return {};
      copyObject(Dst, Src, Dst.Ty->sizeInBytes());
      Value V;
      V.Ty = B->type();
      V.Uninit = true; // Struct rvalue result is never used as a scalar.
      return V;
    }
    LValue LV;
    if (!evalLValue(B->lhs(), LV))
      return {};
    Value RHS = evalExpr(B->rhs());
    if (Failed)
      return {};
    Value NewVal;
    if (Op == BinaryOp::Assign) {
      if (RHS.Uninit)
        NewVal = RHS;
      else
        NewVal = convert(RHS, LV.Ty);
    } else {
      Value Old = loadScalar(LV);
      if (Failed)
        return {};
      BinaryOp Base;
      switch (Op) {
      case BinaryOp::AddAssign:
        Base = BinaryOp::Add;
        break;
      case BinaryOp::SubAssign:
        Base = BinaryOp::Sub;
        break;
      case BinaryOp::MulAssign:
        Base = BinaryOp::Mul;
        break;
      case BinaryOp::DivAssign:
        Base = BinaryOp::Div;
        break;
      case BinaryOp::RemAssign:
        Base = BinaryOp::Rem;
        break;
      case BinaryOp::ShlAssign:
        Base = BinaryOp::Shl;
        break;
      case BinaryOp::ShrAssign:
        Base = BinaryOp::Shr;
        break;
      case BinaryOp::AndAssign:
        Base = BinaryOp::BitAnd;
        break;
      case BinaryOp::XorAssign:
        Base = BinaryOp::BitXor;
        break;
      default:
        Base = BinaryOp::BitOr;
        break;
      }
      if (Old.isPointer()) {
        if (!requireInit(RHS, "pointer arithmetic"))
          return {};
        int64_t Delta = static_cast<int64_t>(RHS.Bits);
        NewVal = pointerAdd(Old, Base == BinaryOp::Sub ? -Delta : Delta,
                            B->loc());
      } else {
        const Type *Ty = arithResultType(Base, Old.Ty,
                                         RHS.Ty ? RHS.Ty : Old.Ty);
        Value R = Base == BinaryOp::Shl || Base == BinaryOp::Shr
                      ? RHS
                      : convert(RHS, Ty);
        NewVal = applyArith(Base, Ty, convert(Old, Ty), R, B->loc());
        if (!Failed)
          NewVal = convert(NewVal, LV.Ty);
      }
      if (Failed)
        return {};
    }
    storeScalar(LV, NewVal);
    if (Failed)
      return {};
    return NewVal.Uninit ? NewVal : convert(NewVal, LV.Ty);
  }

  Value L = evalExpr(B->lhs());
  if (Failed)
    return {};
  Value R = evalExpr(B->rhs());
  if (Failed)
    return {};

  // Pointer arithmetic and comparison.
  bool LPtr = L.isPointer(), RPtr = R.isPointer();
  if (Op == BinaryOp::Add && (LPtr || RPtr)) {
    if (!requireInit(L, "pointer arithmetic") ||
        !requireInit(R, "pointer arithmetic"))
      return {};
    const Value &P = LPtr ? L : R;
    const Value &N = LPtr ? R : L;
    return pointerAdd(P, static_cast<int64_t>(N.Bits), B->loc());
  }
  if (Op == BinaryOp::Sub && LPtr) {
    if (!requireInit(L, "pointer arithmetic") ||
        !requireInit(R, "pointer arithmetic"))
      return {};
    if (RPtr) {
      if (L.Block != R.Block) {
        ub("subtraction of pointers into different objects");
        return {};
      }
      uint64_t ElemSize = L.Ty->elementType()->sizeInBytes();
      int64_t Diff = (L.Offset - R.Offset) / static_cast<int64_t>(ElemSize);
      return makeInt(B->type(), static_cast<uint64_t>(Diff));
    }
    return pointerAdd(L, -static_cast<int64_t>(R.Bits), B->loc());
  }
  if (isComparisonOp(Op) && (LPtr || RPtr)) {
    if (!requireInit(L, "comparison") || !requireInit(R, "comparison"))
      return {};
    Value PL = LPtr ? L : convert(L, R.Ty);
    Value PR = RPtr ? R : convert(R, L.Ty);
    if (Op == BinaryOp::EQ || Op == BinaryOp::NE) {
      bool Eq = PL.Block == PR.Block && PL.Offset == PR.Offset;
      return makeInt(B->type(), (Op == BinaryOp::EQ) == Eq ? 1 : 0);
    }
    if (PL.Block != PR.Block) {
      ub("relational comparison of pointers into different objects");
      return {};
    }
    bool Res;
    switch (Op) {
    case BinaryOp::LT:
      Res = PL.Offset < PR.Offset;
      break;
    case BinaryOp::GT:
      Res = PL.Offset > PR.Offset;
      break;
    case BinaryOp::LE:
      Res = PL.Offset <= PR.Offset;
      break;
    default:
      Res = PL.Offset >= PR.Offset;
      break;
    }
    return makeInt(B->type(), Res ? 1 : 0);
  }

  if (isComparisonOp(Op)) {
    if (!requireInit(L, "comparison") || !requireInit(R, "comparison"))
      return {};
    const Type *Ty = arithResultType(BinaryOp::Add, L.Ty, R.Ty);
    uint64_t UL = normalizeInt(Ty, L.Bits);
    uint64_t UR = normalizeInt(Ty, R.Bits);
    int64_t SL = static_cast<int64_t>(UL);
    int64_t SR = static_cast<int64_t>(UR);
    bool Signed = Ty->isSigned();
    bool Res;
    switch (Op) {
    case BinaryOp::LT:
      Res = Signed ? SL < SR : UL < UR;
      break;
    case BinaryOp::GT:
      Res = Signed ? SL > SR : UL > UR;
      break;
    case BinaryOp::LE:
      Res = Signed ? SL <= SR : UL <= UR;
      break;
    case BinaryOp::GE:
      Res = Signed ? SL >= SR : UL >= UR;
      break;
    case BinaryOp::EQ:
      Res = UL == UR;
      break;
    default:
      Res = UL != UR;
      break;
    }
    return makeInt(B->type(), Res ? 1 : 0);
  }

  // Plain integer arithmetic.
  const Type *Ty = B->type();
  Value CL = Op == BinaryOp::Shl || Op == BinaryOp::Shr ? convert(L, Ty) : convert(L, Ty);
  Value CR = Op == BinaryOp::Shl || Op == BinaryOp::Shr ? R : convert(R, Ty);
  return applyArith(Op, Ty, CL, CR, B->loc());
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

void Interp::doPrintf(const CallExpr *C) {
  const auto *Fmt = cast<StringLiteral>(C->args()[0]);
  std::vector<Value> Args;
  for (size_t I = 1; I < C->args().size(); ++I) {
    Args.push_back(evalExpr(C->args()[I]));
    if (Failed)
      return;
    if (!requireInit(Args.back(), "printf argument"))
      return;
  }
  const std::string &F = Fmt->value();
  size_t Arg = 0;
  std::string Out;
  auto NextArg = [&](const char *Spec) -> const Value * {
    if (Arg >= Args.size()) {
      ub(std::string("printf: missing argument for %") + Spec);
      return nullptr;
    }
    return &Args[Arg++];
  };
  for (size_t I = 0; I < F.size(); ++I) {
    if (F[I] != '%') {
      Out += F[I];
      continue;
    }
    ++I;
    if (I >= F.size())
      break;
    bool Long = false;
    while (I < F.size() && F[I] == 'l') {
      Long = true;
      ++I;
    }
    char Conv = I < F.size() ? F[I] : '%';
    switch (Conv) {
    case '%':
      Out += '%';
      break;
    case 'd':
    case 'i': {
      const Value *V = NextArg("d");
      if (!V)
        return;
      int64_t X = static_cast<int64_t>(V->Bits);
      if (!Long)
        X = static_cast<int32_t>(V->Bits);
      Out += std::to_string(X);
      break;
    }
    case 'u': {
      const Value *V = NextArg("u");
      if (!V)
        return;
      uint64_t X = Long ? V->Bits : static_cast<uint32_t>(V->Bits);
      Out += std::to_string(X);
      break;
    }
    case 'x': {
      const Value *V = NextArg("x");
      if (!V)
        return;
      uint64_t X = Long ? V->Bits : static_cast<uint32_t>(V->Bits);
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%llx",
                    static_cast<unsigned long long>(X));
      Out += Buf;
      break;
    }
    case 'c': {
      const Value *V = NextArg("c");
      if (!V)
        return;
      Out += static_cast<char>(V->Bits & 0xff);
      break;
    }
    default:
      fail(ExecStatus::Unsupported,
           std::string("printf conversion %") + Conv);
      return;
    }
  }
  Result.Output += Out;
}

Value Interp::evalCall(const CallExpr *C) {
  if (C->callee()->name() == "printf") {
    doPrintf(C);
    return makeInt(Ctx.types().int32Type(), 0);
  }
  if (C->callee()->name() == "spe_input")
    return makeInt(Ctx.types().int32Type(),
                   static_cast<uint64_t>(
                       static_cast<uint32_t>(Stdin.next())));
  const FunctionDecl *F = C->callee()->functionDecl();
  if (!F || !F->isDefinition()) {
    fail(ExecStatus::Unsupported,
         "call to undefined function '" + C->callee()->name() + "'");
    return {};
  }
  std::vector<Value> Args;
  for (const Expr *A : C->args()) {
    Args.push_back(evalExpr(A));
    if (Failed)
      return {};
  }
  return callFunction(F, Args);
}

Value Interp::callFunction(const FunctionDecl *F,
                           const std::vector<Value> &Args) {
  if (++CallDepth > Opts.MaxCallDepth) {
    fail(ExecStatus::Timeout, "call depth exceeded");
    --CallDepth;
    return {};
  }
  Frames.emplace_back();
  for (size_t I = 0; I < F->params().size(); ++I) {
    const VarDecl *P = F->params()[I];
    uint32_t Block = allocate(P->name(), P->type()->sizeInBytes(), false);
    Frames.back()[P] = Block;
    Value V = Args[I];
    if (!V.Uninit)
      V = convert(V, P->type());
    storeScalar(LValue{Block, 0, P->type()}, V);
    if (Failed)
      break;
  }
  Signal Sig;
  if (!Failed)
    Sig = runBody(F->body());
  deallocateFrame(Frames.back());
  Frames.pop_back();
  --CallDepth;
  if (Failed)
    return {};
  if (Sig.K == Signal::Return && !F->returnType()->isVoid()) {
    if (Sig.Ret.Uninit)
      return Sig.Ret;
    return convert(Sig.Ret, F->returnType());
  }
  // Fell off the end (or void return): an indeterminate value, which is UB
  // only if the caller uses it.
  Value V;
  V.Ty = F->returnType()->isVoid() ? Ctx.types().int32Type()
                                   : F->returnType();
  V.Uninit = true;
  return V;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Interp::execVarDecl(const VarDecl *V) {
  uint64_t Size = V->type()->sizeInBytes();
  if (Size == 0) {
    fail(ExecStatus::Unsupported,
         "variable of incomplete type '" + V->name() + "'");
    return;
  }
  uint32_t Block = allocate(V->name(), Size, false);
  Frames.back()[V] = Block;
  if (V->init())
    initializeObject(LValue{Block, 0, V->type()}, V->init());
}

void Interp::initializeObject(const LValue &LV, const Expr *Init) {
  if (const auto *List = dyn_cast<InitListExpr>(Init)) {
    // Zero-fill first: C zero-initializes the remainder of a braced object.
    MemBlock &B = Blocks[LV.Block];
    uint64_t Size = LV.Ty->sizeInBytes();
    if (!checkAccess(LV, Size, "write"))
      return;
    for (uint64_t I = 0; I < Size; ++I) {
      B.Bytes[LV.Offset + I] = 0;
      B.Init[LV.Offset + I] = true;
    }
    if (LV.Ty->isArray()) {
      const Type *Elem = LV.Ty->elementType();
      for (size_t I = 0; I < List->elements().size(); ++I)
        initializeObject(LValue{LV.Block,
                                LV.Offset + static_cast<int64_t>(
                                                I * Elem->sizeInBytes()),
                                Elem},
                         List->elements()[I]);
      return;
    }
    if (LV.Ty->isStruct()) {
      const auto &Fields = LV.Ty->fields();
      for (size_t I = 0; I < List->elements().size() && I < Fields.size();
           ++I)
        initializeObject(LValue{LV.Block,
                                LV.Offset +
                                    static_cast<int64_t>(Fields[I].Offset),
                                Fields[I].Ty},
                         List->elements()[I]);
      return;
    }
    // Scalar braced initializer: { expr }.
    if (!List->elements().empty())
      initializeObject(LV, List->elements()[0]);
    return;
  }
  Value V = evalExpr(Init);
  if (Failed)
    return;
  if (!LV.Ty->isScalar()) {
    fail(ExecStatus::Unsupported, "aggregate initializer expression");
    return;
  }
  if (!V.Uninit)
    V = convert(V, LV.Ty);
  storeScalar(LV, V);
}

Signal Interp::execStmt(const Stmt *S) {
  Signal None;
  if (Failed || !S || !step())
    return None;
  Result.ExecutedStmts.insert(S->stmtId());
  switch (S->kind()) {
  case Stmt::Kind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->body()) {
      Signal Sig = execStmt(Child);
      if (Failed || Sig.K != Signal::None)
        return Sig;
    }
    return None;
  case Stmt::Kind::Decl:
    for (const VarDecl *V : cast<DeclStmt>(S)->decls()) {
      execVarDecl(V);
      if (Failed)
        return None;
    }
    return None;
  case Stmt::Kind::Expr:
    if (const Expr *E = cast<ExprStmt>(S)->expr())
      evalExpr(E);
    return None;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    Value Cond = evalExpr(I->cond());
    if (Failed)
      return None;
    bool Taken = truthy(Cond);
    if (Failed)
      return None;
    if (Taken)
      return execStmt(I->thenStmt());
    if (I->elseStmt())
      return execStmt(I->elseStmt());
    return None;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    for (;;) {
      if (!step())
        return None;
      Value Cond = evalExpr(W->cond());
      if (Failed || !truthy(Cond) || Failed)
        return None;
      Signal Sig = execStmt(W->body());
      if (Failed)
        return None;
      if (Sig.K == Signal::Break)
        return None;
      if (Sig.K == Signal::Return || Sig.K == Signal::Goto)
        return Sig;
    }
  }
  case Stmt::Kind::Do: {
    const auto *D = cast<DoStmt>(S);
    for (;;) {
      if (!step())
        return None;
      Signal Sig = execStmt(D->body());
      if (Failed)
        return None;
      if (Sig.K == Signal::Break)
        return None;
      if (Sig.K == Signal::Return || Sig.K == Signal::Goto)
        return Sig;
      Value Cond = evalExpr(D->cond());
      if (Failed || !truthy(Cond) || Failed)
        return None;
    }
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    if (F->init()) {
      execStmt(F->init());
      if (Failed)
        return None;
    }
    for (;;) {
      if (!step())
        return None;
      if (F->cond()) {
        Value Cond = evalExpr(F->cond());
        if (Failed || !truthy(Cond) || Failed)
          return None;
      }
      Signal Sig = execStmt(F->body());
      if (Failed)
        return None;
      if (Sig.K == Signal::Break)
        return None;
      if (Sig.K == Signal::Return || Sig.K == Signal::Goto)
        return Sig;
      if (F->step()) {
        evalExpr(F->step());
        if (Failed)
          return None;
      }
    }
  }
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    Signal Sig;
    Sig.K = Signal::Return;
    if (R->value()) {
      Sig.Ret = evalExpr(R->value());
      if (Failed)
        return None;
    } else {
      Sig.Ret.Uninit = true;
      Sig.Ret.Ty = Ctx.types().int32Type();
    }
    return Sig;
  }
  case Stmt::Kind::Break: {
    Signal Sig;
    Sig.K = Signal::Break;
    return Sig;
  }
  case Stmt::Kind::Continue: {
    Signal Sig;
    Sig.K = Signal::Continue;
    return Sig;
  }
  case Stmt::Kind::Goto: {
    Signal Sig;
    Sig.K = Signal::Goto;
    Sig.Label = cast<GotoStmt>(S)->label();
    return Sig;
  }
  case Stmt::Kind::Label:
    return execStmt(cast<LabelStmt>(S)->sub());
  }
  return None;
}

/// Seeks \p Label inside \p S without executing anything; once found,
/// execution resumes normally from the label onward.
Signal Interp::execSeek(const Stmt *S, const std::string &Label,
                        bool &Found) {
  Signal None;
  if (Failed || !S)
    return None;
  switch (S->kind()) {
  case Stmt::Kind::Compound: {
    const auto *C = cast<CompoundStmt>(S);
    for (size_t I = 0; I < C->body().size(); ++I) {
      if (!Found) {
        Signal Sig = execSeek(C->body()[I], Label, Found);
        if (Failed || (Found && Sig.K != Signal::None))
          return Sig;
        continue;
      }
      Signal Sig = execStmt(C->body()[I]);
      if (Failed || Sig.K != Signal::None)
        return Sig;
    }
    return None;
  }
  case Stmt::Kind::Label: {
    const auto *L = cast<LabelStmt>(S);
    if (L->name() == Label) {
      Found = true;
      return execStmt(L->sub());
    }
    return execSeek(L->sub(), Label, Found);
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    Signal Sig = execSeek(I->thenStmt(), Label, Found);
    if (Found || Failed)
      return Sig;
    if (I->elseStmt())
      return execSeek(I->elseStmt(), Label, Found);
    return None;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    Signal Sig = execSeek(W->body(), Label, Found);
    if (!Found || Failed)
      return None;
    if (Sig.K == Signal::Break)
      return None;
    if (Sig.K == Signal::Return || Sig.K == Signal::Goto)
      return Sig;
    // Entered the loop mid-body; continue iterating normally.
    return execStmt(S);
  }
  case Stmt::Kind::Do: {
    const auto *D = cast<DoStmt>(S);
    Signal Sig = execSeek(D->body(), Label, Found);
    if (!Found || Failed)
      return None;
    if (Sig.K == Signal::Break)
      return None;
    if (Sig.K == Signal::Return || Sig.K == Signal::Goto)
      return Sig;
    Value Cond = evalExpr(D->cond());
    if (Failed || !truthy(Cond) || Failed)
      return None;
    return execStmt(S);
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    Signal Sig = execSeek(F->body(), Label, Found);
    if (!Found || Failed)
      return None;
    if (Sig.K == Signal::Break)
      return None;
    if (Sig.K == Signal::Return || Sig.K == Signal::Goto)
      return Sig;
    // Continue the loop from the step expression (no re-init).
    for (;;) {
      if (F->step()) {
        evalExpr(F->step());
        if (Failed)
          return None;
      }
      if (!step())
        return None;
      if (F->cond()) {
        Value Cond = evalExpr(F->cond());
        if (Failed || !truthy(Cond) || Failed)
          return None;
      }
      Signal Inner = execStmt(F->body());
      if (Failed)
        return None;
      if (Inner.K == Signal::Break)
        return None;
      if (Inner.K == Signal::Return || Inner.K == Signal::Goto)
        return Inner;
    }
  }
  default:
    return None;
  }
}

Signal Interp::runBody(const CompoundStmt *Body) {
  Signal Sig = execStmt(Body);
  while (!Failed && Sig.K == Signal::Goto) {
    bool Found = false;
    Sig = execSeek(Body, Sig.Label, Found);
    if (!Found && !Failed) {
      fail(ExecStatus::Unsupported, "goto to unknown label");
      break;
    }
  }
  return Sig;
}

ExecResult Interp::run() {
  const FunctionDecl *Main = Ctx.findFunction("main");
  if (!Main || !Main->isDefinition()) {
    Result.Status = ExecStatus::Unsupported;
    Result.Message = "no main function";
    return Result;
  }
  // Allocate all globals zero-initialized, then run initializers in order.
  for (VarDecl *G : Ctx.globals()) {
    uint64_t Size = G->type()->sizeInBytes();
    if (Size == 0) {
      Result.Status = ExecStatus::Unsupported;
      Result.Message = "global of incomplete type '" + G->name() + "'";
      return Result;
    }
    Globals[G] = allocate(G->name(), Size, true);
  }
  Frames.emplace_back(); // Pseudo-frame for initializer evaluation.
  for (VarDecl *G : Ctx.globals()) {
    if (G->init() && !Failed)
      initializeObject(LValue{Globals[G], 0, G->type()}, G->init());
  }
  Frames.pop_back();
  if (!Failed) {
    Value Exit = callFunction(Main, {});
    if (!Failed) {
      Result.Status = ExecStatus::Ok;
      // Falling off the end of main returns 0 (C99 5.1.2.2.3).
      Result.ExitCode =
          Exit.Uninit ? 0 : static_cast<int64_t>(static_cast<int32_t>(
                                convert(Exit, Ctx.types().int32Type()).Bits));
    }
  }
  return Result;
}

} // namespace

ExecResult spe::interpret(ASTContext &Ctx, InterpOptions Opts) {
  Interp I(Ctx, Opts);
  return I.run();
}
