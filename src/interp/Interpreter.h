//===- interp/Interpreter.h - Reference interpreter with UB oracle -------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST-walking reference interpreter for the mini-C dialect. It plays the
/// role CompCert's reference interpreter plays in Section 5 of the paper:
/// the trusted executor that (a) provides the expected output for
/// differential testing and (b) detects undefined behavior so that
/// UB-exercising variants are excluded before wrong-code classification
/// (Section 5.4).
///
/// Detected UB: uninitialized scalar reads, signed integer overflow,
/// division/remainder by zero (and INT_MIN / -1), out-of-range and
/// negative shift amounts, shifts of/into negative signed values, null /
/// dangling / out-of-bounds dereferences, pointer arithmetic escaping its
/// object (one-past-the-end allowed, dereferencing it is not), and
/// relational comparison or subtraction of pointers into different objects.
///
/// The interpreter also records which statements executed (by Sema-assigned
/// stmt id); the Orion-style mutation baseline deletes statements in the
/// unexecuted "dead regions" exactly as in the paper's coverage experiment.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_INTERP_INTERPRETER_H
#define SPE_INTERP_INTERPRETER_H

#include "lang/AST.h"

#include <cstdint>
#include <set>
#include <string>

namespace spe {

/// Outcome classification of one reference execution.
enum class ExecStatus {
  /// Ran to completion; ExitCode and Output are meaningful.
  Ok,
  /// Undefined behavior detected; Message names it.
  UndefinedBehavior,
  /// Step budget exhausted (e.g. infinite loop); not UB, but the variant
  /// is excluded from differential comparison.
  Timeout,
  /// The program uses a feature outside the executable subset, or has no
  /// main function.
  Unsupported,
};

/// \returns a printable name for \p Status.
const char *execStatusName(ExecStatus Status);

/// Result of interpreting a program.
struct ExecResult {
  ExecStatus Status = ExecStatus::Unsupported;
  /// main's return value (when Status == Ok).
  int64_t ExitCode = 0;
  /// Accumulated printf output.
  std::string Output;
  /// Diagnostic for UB / unsupported features.
  std::string Message;
  /// Sema statement ids that executed at least once.
  std::set<int> ExecutedStmts;

  bool ok() const { return Status == ExecStatus::Ok; }
};

/// Interpreter configuration.
struct InterpOptions {
  /// Maximum number of statement/expression evaluation steps.
  uint64_t MaxSteps = 2'000'000;
  /// Maximum call depth (guards runaway recursion).
  unsigned MaxCallDepth = 256;
  /// Stdin image consumed by the spe_input() intrinsic (scanf("%d")
  /// semantics, 0 at exhaustion); see support/StdinScan.h for the
  /// cross-executor contract.
  std::string Input;
};

/// Runs the analyzed translation unit's main() under the reference
/// semantics. The unit must have passed Sema.
ExecResult interpret(ASTContext &Ctx, InterpOptions Opts = {});

} // namespace spe

#endif // SPE_INTERP_INTERPRETER_H
