//===- persist/OracleStore.cpp - on-disk oracle-verdict log --------------===//

#include "persist/OracleStore.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

using namespace spe;

namespace {

/// File magic; bump the version on any record-layout change so older logs
/// are rejected instead of misparsed.
const char Magic[] = "SPE-ORACLE-LOG v1\n";
constexpr size_t MagicLen = sizeof(Magic) - 1;

/// Reads up to \p MaxBytes of \p Path into \p Out. \returns false when the
/// file cannot be opened.
bool readPrefix(const std::string &Path, uint64_t MaxBytes,
                std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Buf[1 << 16];
  while (Out.size() < MaxBytes) {
    size_t Want = sizeof(Buf);
    if (MaxBytes - Out.size() < Want)
      Want = static_cast<size_t>(MaxBytes - Out.size());
    size_t Got = std::fread(Buf, 1, Want, F);
    if (Got == 0)
      break;
    Out.append(Buf, Got);
  }
  std::fclose(F);
  return true;
}

} // namespace

uint64_t OracleStore::loadInto(OracleCache &Cache, uint64_t MaxBytes,
                               uint64_t *ValidBytes) const {
  if (ValidBytes)
    *ValidBytes = 0;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return 0; // Cold store.
  // Streaming, one record in memory at a time: cross-generation logs grow
  // with every campaign, and slurping the whole file would make startup
  // peak RAM scale with total history.
  char Head[MagicLen];
  if (MaxBytes < MagicLen || std::fread(Head, 1, MagicLen, F) != MagicLen ||
      std::memcmp(Head, Magic, MagicLen) != 0) {
    std::fclose(F);
    return 0; // Unknown header or version: treat as cold rather than guess.
  }

  uint64_t Loaded = 0;
  uint64_t At = MagicLen;
  if (ValidBytes)
    *ValidBytes = At; // Valid-but-empty log: keep the header.
  // Upper bound for the header's length fields: a corrupt SrcLen/OutLen
  // must end the valid prefix, not feed resize() an absurd allocation.
  uint64_t FileBytes = bytesOnDisk();
  char Header[128];
  std::string Src, Out;
  for (;;) {
    if (!std::fgets(Header, sizeof(Header), F))
      break; // EOF.
    size_t HLen = std::strlen(Header);
    if (HLen == 0 || Header[HLen - 1] != '\n')
      break; // Torn or overlong header: stop at the valid prefix.
    uint64_t SrcLen = 0, OutLen = 0;
    unsigned FrontendOk = 0, Status = 0;
    long long Exit = 0;
    int Fields = std::sscanf(Header, "R %" SCNu64 " %u %u %lld %" SCNu64,
                             &SrcLen, &FrontendOk, &Status, &Exit, &OutLen);
    if (Fields != 5)
      break; // Torn or foreign record header: stop at the valid prefix.
    // A verdict feeds the differential arbiter directly, so a corrupt
    // byte must end the valid prefix, not replay as an arbitrary enum.
    if (FrontendOk > 1 ||
        Status > static_cast<unsigned>(ExecStatus::Unsupported))
      break;
    // Length fields that cannot possibly fit the file are corruption
    // (this also keeps the RecordBytes sum overflow-free below).
    if (SrcLen > FileBytes || OutLen > FileBytes)
      break;
    // Payload + trailing newline must be fully present and inside the
    // caller's byte budget (a checkpoint's recorded valid length always
    // falls on a record boundary).
    uint64_t RecordBytes = HLen + SrcLen + OutLen + 1;
    if (At + RecordBytes > MaxBytes)
      break;
    Src.resize(SrcLen);
    Out.resize(OutLen);
    if ((SrcLen != 0 && std::fread(&Src[0], 1, SrcLen, F) != SrcLen) ||
        (OutLen != 0 && std::fread(&Out[0], 1, OutLen, F) != OutLen) ||
        std::fgetc(F) != '\n')
      break; // Torn payload.
    OracleCache::Entry E;
    E.FrontendOk = FrontendOk != 0;
    E.Status = static_cast<ExecStatus>(Status);
    E.ExitCode = Exit;
    E.Output = Out;
    Cache.insert(Src, std::move(E));
    ++Loaded;
    At += RecordBytes;
    if (ValidBytes)
      *ValidBytes = At;
  }
  std::fclose(F);
  return Loaded;
}

bool OracleStore::append(const std::vector<Record> &Batch) {
  if (Batch.empty())
    return true;
  // Freshness is judged by header inspection, not existence: a crash can
  // die between creating the file and getting the magic to disk, and a
  // magic-less log would be unparseable forever. A missing file or a
  // *prefix of our magic* (the torn-header signature) is restarted from
  // scratch ("wb" truncates the partial header away). Anything else --
  // short or long, a foreign file at the store path or a future format --
  // is refused outright: appending after unparseable content would
  // strand the records forever, and truncating would destroy data this
  // layer does not own.
  std::string Head;
  readPrefix(Path, MagicLen, Head);
  bool Fresh = Head.size() < MagicLen;
  if (Head.compare(0, Head.size(), Magic, Head.size()) != 0)
    return false;
  std::FILE *F = std::fopen(Path.c_str(), Fresh ? "wb" : "ab");
  if (!F)
    return false;
  bool Ok = true;
  if (Fresh)
    Ok = std::fwrite(Magic, 1, MagicLen, F) == MagicLen;
  for (const Record &R : Batch) {
    if (!Ok)
      break;
    const std::string &Src = R.first;
    const OracleCache::Entry &E = R.second;
    Ok = std::fprintf(F, "R %" PRIu64 " %u %u %lld %" PRIu64 "\n",
                      static_cast<uint64_t>(Src.size()),
                      E.FrontendOk ? 1u : 0u,
                      static_cast<unsigned>(E.Status),
                      static_cast<long long>(E.ExitCode),
                      static_cast<uint64_t>(E.Output.size())) > 0 &&
         std::fwrite(Src.data(), 1, Src.size(), F) == Src.size() &&
         std::fwrite(E.Output.data(), 1, E.Output.size(), F) ==
             E.Output.size() &&
         std::fputc('\n', F) != EOF;
  }
  Ok = std::fflush(F) == 0 && Ok;
  // Checkpoint snapshots record this log's byte length as already
  // durable, so push the records past the kernel cache before any
  // snapshot referencing them can be written; on first creation the
  // directory entry must be durable too, or power loss could leave a
  // snapshot referencing a log that no longer exists.
  Ok = Ok && ::fsync(fileno(F)) == 0;
  std::fclose(F);
  if (Ok && Fresh)
    fsyncParentDir(Path);
  return Ok;
}

uint64_t OracleStore::bytesOnDisk() const {
  std::error_code EC;
  uint64_t Size = std::filesystem::file_size(Path, EC);
  return EC ? 0 : Size;
}

bool spe::fsyncParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int Fd = ::open(Dir.c_str(), O_RDONLY);
  if (Fd < 0)
    return false;
  bool Ok = ::fsync(Fd) == 0;
  ::close(Fd);
  return Ok;
}

bool OracleStore::truncateTo(uint64_t Bytes) const {
  std::error_code EC;
  uint64_t Size = std::filesystem::file_size(Path, EC);
  if (EC || Size <= Bytes)
    return true; // Missing or already short enough.
  std::filesystem::resize_file(Path, Bytes, EC);
  return !EC;
}
