//===- persist/OracleStore.h - on-disk oracle-verdict log ----------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An append-only on-disk backing log for testing/OracleCache.h: one
/// length-prefixed record per memoized verdict, content-keyed by the
/// rendered variant text. The log survives process death and is shared
/// across campaign generations -- a later campaign over overlapping seeds
/// starts with every previously computed verdict warm.
///
/// Consistency with checkpoints (DESIGN.md Section 11): records are only
/// appended as part of a checkpoint publish, and the checkpoint file stores
/// the log's valid byte length at that instant. A crash can therefore leave
/// only *extra* bytes past the recorded length (a torn append, or a flush
/// whose checkpoint rename never happened); resume truncates the log back
/// to the recorded length, restoring the exact cache state the checkpoint
/// describes. Loading tolerates a torn tail by stopping at the first
/// incomplete record.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_PERSIST_ORACLESTORE_H
#define SPE_PERSIST_ORACLESTORE_H

#include "testing/OracleCache.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace spe {

/// Append-only on-disk log of (variant text, oracle verdict) records.
class OracleStore {
public:
  /// One record: the cache key (rendered variant text) and its verdict.
  using Record = std::pair<std::string, OracleCache::Entry>;

  /// Opens (or creates) the log at \p Path. No I/O happens until load or
  /// append.
  explicit OracleStore(std::string Path) : Path(std::move(Path)) {}

  const std::string &path() const { return Path; }

  /// Replays the log's valid prefix into \p Cache (insert per record;
  /// first-writer-wins semantics make replay idempotent). Reads at most
  /// \p MaxBytes bytes -- pass a checkpoint's recorded length to
  /// reconstruct the exact state that checkpoint saw -- and stops early at
  /// a torn record. \returns the number of records loaded; \p ValidBytes,
  /// when non-null, receives the valid prefix length in bytes (0 for a
  /// missing or foreign file) so callers can truncate a torn tail before
  /// appending. A missing file loads zero records (a cold store is not an
  /// error).
  uint64_t loadInto(OracleCache &Cache, uint64_t MaxBytes = ~uint64_t(0),
                    uint64_t *ValidBytes = nullptr) const;

  /// Appends \p Batch and flushes. \returns false on I/O failure. Callers
  /// sequence appends with checkpoint writes (append first, then publish
  /// the new length in the checkpoint) so a crash between the two only
  /// ever strands ignorable bytes past the last published length.
  bool append(const std::vector<Record> &Batch);

  /// \returns the current on-disk size in bytes (0 when missing).
  uint64_t bytesOnDisk() const;

  /// Truncates the log to \p Bytes (a checkpoint's recorded valid length),
  /// discarding any bytes a crash stranded past it. No-op when the file is
  /// already at most \p Bytes long. \returns false on I/O failure.
  bool truncateTo(uint64_t Bytes) const;

private:
  std::string Path;
};

/// fsyncs the directory containing \p Path, making recent create/rename
/// entries durable against power loss. Best-effort; \returns false when
/// the directory cannot be opened or synced. Shared by the store (log
/// creation) and the checkpoint writer (snapshot rename).
bool fsyncParentDir(const std::string &Path);

} // namespace spe

#endif // SPE_PERSIST_ORACLESTORE_H
