//===- persist/LineText.cpp - shared line-text serialization --------------===//

#include "persist/LineText.h"

#include <cerrno>
#include <cstdlib>

namespace spe {
namespace linetext {

std::string escapeToken(const std::string &S) {
  if (S.empty())
    return "\\e";
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\': Out += "\\\\"; break;
    case ' ':  Out += "\\s";  break;
    case '\n': Out += "\\n";  break;
    case '\t': Out += "\\t";  break;
    case '\r': Out += "\\r";  break;
    default:   Out += C;      break;
    }
  }
  return Out;
}

bool unescapeToken(const std::string &T, std::string &Out) {
  Out.clear();
  if (T == "\\e")
    return true;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I] != '\\') {
      Out += T[I];
      continue;
    }
    if (++I >= T.size())
      return false;
    switch (T[I]) {
    case '\\': Out += '\\'; break;
    case 's':  Out += ' ';  break;
    case 'n':  Out += '\n'; break;
    case 't':  Out += '\t'; break;
    case 'r':  Out += '\r'; break;
    default:   return false;
    }
  }
  return true;
}

bool parseU64(const std::string &T, uint64_t &Out) {
  if (T.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(T.c_str(), &End, 10);
  if (errno != 0 || End != T.c_str() + T.size() || T[0] == '-')
    return false;
  Out = V;
  return true;
}

bool parseI64(const std::string &T, int64_t &Out) {
  if (T.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  long long V = std::strtoll(T.c_str(), &End, 10);
  if (errno != 0 || End != T.c_str() + T.size())
    return false;
  Out = V;
  return true;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

static void writeBugFields(std::ostringstream &Out, const FoundBug &Bug) {
  Out << Bug.BugId << ' ' << static_cast<int>(Bug.P) << ' '
      << static_cast<int>(Bug.Effect) << ' ' << Bug.Version << ' '
      << Bug.OptLevel << ' ' << (Bug.Mode64 ? 1 : 0) << ' '
      << escapeToken(Bug.Signature) << ' ' << escapeToken(Bug.Backend)
      << ' ' << escapeToken(Bug.Input) << ' '
      << escapeToken(Bug.WitnessProgram);
}

void writeResult(std::ostringstream &Out, const CampaignResult &R) {
  Out << "counters " << R.SeedsProcessed << ' ' << R.SeedsSkippedByThreshold
      << ' ' << R.VariantsEnumerated << ' ' << R.VariantsOracleExcluded
      << ' ' << R.VariantsTested << ' ' << R.VariantsPruned << ' '
      << R.OracleExecutions << ' ' << R.OracleCacheHits << ' '
      << R.CrashObservations << ' ' << R.WrongCodeObservations << ' '
      << R.PerformanceObservations << ' ' << R.ExecutionTimeouts << ' '
      << R.MatrixCellsCompared << ' ' << R.SweepCellsExcluded << '\n';
  Out << "bugs " << R.UniqueBugs.size() << '\n';
  for (const auto &[Id, Bug] : R.UniqueBugs) {
    (void)Id;
    Out << "bug ";
    writeBugFields(Out, Bug);
    Out << '\n';
  }
  Out << "findings " << R.RawFindings.size() << '\n';
  for (const auto &[Key, Bug] : R.RawFindings) {
    Out << "finding " << Key.BugId << ' ' << static_cast<int>(Key.P) << ' '
        << Key.Version << ' ' << Key.OptLevel << ' '
        << (Key.Mode64 ? 1 : 0) << ' ' << Key.BackendIdx << ' '
        << Key.InputIdx << ' ' << escapeToken(Key.Sig) << ' ';
    writeBugFields(Out, Bug);
    Out << '\n';
  }
}

void writeCov(std::ostringstream &Out, const std::set<std::string> &Hits) {
  Out << "cov " << Hits.size() << '\n';
  for (const std::string &Name : Hits)
    Out << "covhit " << escapeToken(Name) << '\n';
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

Reader::Reader(const std::string &Text) {
  size_t Start = 0;
  while (Start <= Text.size()) {
    size_t NL = Text.find('\n', Start);
    if (NL == std::string::npos)
      NL = Text.size();
    std::vector<std::string> Tokens;
    size_t P = Start;
    while (P < NL) {
      size_t Space = Text.find(' ', P);
      if (Space == std::string::npos || Space > NL)
        Space = NL;
      if (Space > P)
        Tokens.push_back(Text.substr(P, Space - P));
      P = Space + 1;
    }
    if (!Tokens.empty())
      Lines.push_back(std::move(Tokens));
    Start = NL + 1;
  }
}

bool Reader::fail(const std::string &Msg) {
  if (Err.empty())
    Err = "line " + std::to_string(At + 1) + ": " + Msg;
  return false;
}

const std::vector<std::string> *Reader::line(const char *Kw, size_t NTokens) {
  if (At >= Lines.size()) {
    fail(std::string("unexpected end of file, wanted '") + Kw + "'");
    return nullptr;
  }
  const std::vector<std::string> &L = Lines[At];
  if (L[0] != Kw) {
    fail(std::string("expected '") + Kw + "', got '" + L[0] + "'");
    return nullptr;
  }
  if (L.size() != NTokens) {
    fail(std::string("'") + Kw + "' wants " + std::to_string(NTokens) +
         " tokens, got " + std::to_string(L.size()));
    return nullptr;
  }
  ++At;
  return &L;
}

bool Reader::u64(const std::string &T, uint64_t &Out) {
  return parseU64(T, Out) || fail("bad unsigned integer '" + T + "'");
}
bool Reader::i64(const std::string &T, int64_t &Out) {
  return parseI64(T, Out) || fail("bad integer '" + T + "'");
}
bool Reader::strTok(const std::string &T, std::string &Out) {
  return unescapeToken(T, Out) || fail("bad escaped string");
}
bool Reader::boolTok(const std::string &T, bool &Out) {
  uint64_t V;
  if (!parseU64(T, V) || V > 1)
    return fail("bad flag '" + T + "'");
  Out = V != 0;
  return true;
}

static bool readBugFields(Reader &R, const std::vector<std::string> &L,
                          size_t At, FoundBug &Bug) {
  int64_t Id = 0;
  uint64_t P = 0, E = 0, Ver = 0, Opt = 0;
  bool M64 = false;
  if (!R.i64(L[At], Id) || !R.u64(L[At + 1], P) || !R.u64(L[At + 2], E) ||
      !R.u64(L[At + 3], Ver) || !R.u64(L[At + 4], Opt) ||
      !R.boolTok(L[At + 5], M64) || !R.strTok(L[At + 6], Bug.Signature) ||
      !R.strTok(L[At + 7], Bug.Backend) || !R.strTok(L[At + 8], Bug.Input) ||
      !R.strTok(L[At + 9], Bug.WitnessProgram))
    return false;
  if (P > 1 || E > 2)
    return R.fail("enum value out of range");
  Bug.BugId = static_cast<int>(Id);
  Bug.P = static_cast<Persona>(P);
  Bug.Effect = static_cast<BugEffect>(E);
  Bug.Version = static_cast<unsigned>(Ver);
  Bug.OptLevel = static_cast<unsigned>(Opt);
  Bug.Mode64 = M64;
  return true;
}

bool readResult(Reader &R, CampaignResult &Out) {
  const auto *L = R.line("counters", 15);
  if (!L)
    return false;
  uint64_t *Slots[14] = {
      &Out.SeedsProcessed,     &Out.SeedsSkippedByThreshold,
      &Out.VariantsEnumerated, &Out.VariantsOracleExcluded,
      &Out.VariantsTested,     &Out.VariantsPruned,
      &Out.OracleExecutions,   &Out.OracleCacheHits,
      &Out.CrashObservations,  &Out.WrongCodeObservations,
      &Out.PerformanceObservations, &Out.ExecutionTimeouts,
      &Out.MatrixCellsCompared, &Out.SweepCellsExcluded};
  for (size_t I = 0; I < 14; ++I)
    if (!R.u64((*L)[I + 1], *Slots[I]))
      return false;

  uint64_t N = 0;
  L = R.line("bugs", 2);
  if (!L || !R.u64((*L)[1], N))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    const auto *BL = R.line("bug", 11);
    FoundBug Bug;
    if (!BL || !readBugFields(R, *BL, 1, Bug))
      return false;
    if (!Out.UniqueBugs.emplace(Bug.BugId, std::move(Bug)).second)
      return R.fail("duplicate bug id");
  }

  L = R.line("findings", 2);
  if (!L || !R.u64((*L)[1], N))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    const auto *FL = R.line("finding", 19);
    if (!FL)
      return false;
    int64_t Id = 0;
    uint64_t P = 0, Ver = 0, Opt = 0, BIdx = 0, IIdx = 0;
    FindingKey Key;
    FoundBug Bug;
    if (!R.i64((*FL)[1], Id) || !R.u64((*FL)[2], P) ||
        !R.u64((*FL)[3], Ver) || !R.u64((*FL)[4], Opt) ||
        !R.boolTok((*FL)[5], Key.Mode64) || !R.u64((*FL)[6], BIdx) ||
        !R.u64((*FL)[7], IIdx) || !R.strTok((*FL)[8], Key.Sig) ||
        !readBugFields(R, *FL, 9, Bug))
      return false;
    if (P > 1)
      return R.fail("enum value out of range");
    Key.BugId = static_cast<int>(Id);
    Key.P = static_cast<Persona>(P);
    Key.Version = static_cast<unsigned>(Ver);
    Key.OptLevel = static_cast<unsigned>(Opt);
    Key.BackendIdx = static_cast<unsigned>(BIdx);
    Key.InputIdx = static_cast<unsigned>(IIdx);
    if (!Out.RawFindings.emplace(Key, std::move(Bug)).second)
      return R.fail("duplicate finding key");
  }
  return true;
}

bool readCov(Reader &R, std::set<std::string> &Out) {
  const auto *L = R.line("cov", 2);
  uint64_t N = 0;
  if (!L || !R.u64((*L)[1], N))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    const auto *HL = R.line("covhit", 2);
    std::string Name;
    if (!HL || !R.strTok((*HL)[1], Name))
      return false;
    Out.insert(std::move(Name));
  }
  return true;
}

} // namespace linetext
} // namespace spe
