//===- persist/LineText.h - shared line-text serialization ----------------===//
//
// The low-level pieces of the checkpoint file format, factored out so other
// line-framed formats (the fleet lease journal, the coordinator/worker wire
// protocol) serialize CampaignResults and escaped tokens with the *same*
// bytes the checkpoint writer produces. Checkpoint.cpp is the reference
// consumer; golden-byte tests there pin every helper in this header.
//
//===----------------------------------------------------------------------===//

#ifndef SPE_PERSIST_LINETEXT_H
#define SPE_PERSIST_LINETEXT_H

#include "testing/Harness.h"

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace spe {
namespace linetext {

/// Incremental FNV-1a over decimal-text renderings, so fingerprints and file
/// checksums are independent of host endianness and word size.
struct Fnv {
  uint64_t H = 1469598103934665603ull;
  void bytes(const char *P, size_t N) {
    for (size_t I = 0; I < N; ++I) {
      H ^= static_cast<unsigned char>(P[I]);
      H *= 1099511628211ull;
    }
  }
  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }
  void u64(uint64_t V) {
    std::string T = std::to_string(V);
    bytes(T.data(), T.size());
    bytes("|", 1);
  }
};

/// Escapes \p S into a whitespace-free token ("\e" for the empty string).
std::string escapeToken(const std::string &S);

bool unescapeToken(const std::string &T, std::string &Out);

bool parseU64(const std::string &T, uint64_t &Out);

bool parseI64(const std::string &T, int64_t &Out);

/// Serializes the checkpointed portion of a CampaignResult: the 14 campaign
/// counters plus both finding maps. Triaged/Reduction are deliberately not
/// part of the format -- triage runs post-campaign from the final snapshot
/// and is deterministic, so persisting its output would only duplicate
/// state (DESIGN.md Section 11). The cache-lifetime snapshot fields
/// (OracleCacheEvictions, OracleStoreBytes) are re-derived at campaign end.
void writeResult(std::ostringstream &Out, const CampaignResult &R);

void writeCov(std::ostringstream &Out, const std::set<std::string> &Hits);

/// Tokenized line reader with sticky first-error diagnostics.
struct Reader {
  std::vector<std::vector<std::string>> Lines;
  size_t At = 0;
  std::string Err;

  explicit Reader(const std::string &Text);

  bool fail(const std::string &Msg);

  /// Consumes the next line, requiring keyword \p Kw and exactly \p NTokens
  /// tokens (keyword included). \returns null after recording an error.
  const std::vector<std::string> *line(const char *Kw, size_t NTokens);

  bool u64(const std::string &T, uint64_t &Out);
  bool i64(const std::string &T, int64_t &Out);
  bool strTok(const std::string &T, std::string &Out);
  bool boolTok(const std::string &T, bool &Out);
};

bool readResult(Reader &R, CampaignResult &Out);

bool readCov(Reader &R, std::set<std::string> &Out);

} // namespace linetext
} // namespace spe

#endif // SPE_PERSIST_LINETEXT_H
