//===- persist/Checkpoint.cpp - campaign snapshot format -----------------===//

#include "persist/Checkpoint.h"

#include "persist/LineText.h"

#include "compiler/Backend.h"
#include "persist/OracleStore.h"

#include <cstdio>
#include <sstream>

#include <unistd.h>

using namespace spe;
using namespace spe::linetext;

namespace {

const char Magic[] = "SPE-CHECKPOINT v3";

} // namespace

//===----------------------------------------------------------------------===//
// CampaignCheckpoint
//===----------------------------------------------------------------------===//

std::string CampaignCheckpoint::serialize() const {
  std::ostringstream Out;
  Out << Magic << '\n';
  Out << "options_fp " << OptionsFingerprint << '\n';
  Out << "seeds_fp " << SeedsFingerprint << '\n';
  Out << "store_bytes " << StoreBytes << '\n';
  Out << "complete " << (Complete ? 1 : 0) << '\n';
  Out << "next_seed " << NextSeed << '\n';
  Out << "merged\n";
  writeResult(Out, Merged);
  writeCov(Out, CovHits);
  Out << "inflight " << (InFlight ? 1 : 0) << '\n';
  if (InFlight) {
    Out << "constraints_fp " << ConstraintsFingerprint << '\n';
    Out << "header\n";
    writeResult(Out, SeedHeader);
    Out << "workers " << Workers.size() << '\n';
    for (const WorkerCheckpoint &W : Workers) {
      Out << "worker " << (W.Finished ? 1 : 0) << ' ' << W.Cursor.Position
          << ' ' << W.Cursor.End << ' ' << W.Cursor.Pruned << '\n';
      writeResult(Out, W.Partial);
      writeCov(Out, W.CovHits);
    }
  }
  std::string Body = Out.str();
  Fnv Sum;
  Sum.bytes(Body.data(), Body.size());
  return Body + "checksum " + std::to_string(Sum.H) + "\n";
}

bool CampaignCheckpoint::deserialize(const std::string &Text,
                                     CampaignCheckpoint &Out,
                                     std::string &Err) {
  Out = CampaignCheckpoint();

  // The checksum guards the exact byte body, so verify it before any
  // structural parsing: truncation and single-byte corruption both die
  // here with a precise message.
  size_t Tail = Text.rfind("checksum ");
  if (Tail == std::string::npos || (Tail != 0 && Text[Tail - 1] != '\n')) {
    Err = "missing checksum trailer (truncated file?)";
    return false;
  }
  std::string SumText = Text.substr(Tail + 9);
  while (!SumText.empty() &&
         (SumText.back() == '\n' || SumText.back() == '\r'))
    SumText.pop_back();
  uint64_t Expected;
  if (!parseU64(SumText, Expected)) {
    Err = "malformed checksum trailer";
    return false;
  }
  Fnv Sum;
  Sum.bytes(Text.data(), Tail);
  if (Sum.H != Expected) {
    Err = "checksum mismatch (corrupt or truncated file)";
    return false;
  }

  Reader R(Text.substr(0, Tail));
  if (R.Lines.empty() || R.Lines[0].size() != 2 ||
      R.Lines[0][0] + " " + R.Lines[0][1] != Magic) {
    Err = "bad magic or unsupported format version";
    return false;
  }
  R.At = 1;

  const std::vector<std::string> *L;
  bool Ok =
      (L = R.line("options_fp", 2)) && R.u64((*L)[1], Out.OptionsFingerprint) &&
      (L = R.line("seeds_fp", 2)) && R.u64((*L)[1], Out.SeedsFingerprint) &&
      (L = R.line("store_bytes", 2)) && R.u64((*L)[1], Out.StoreBytes) &&
      (L = R.line("complete", 2)) && R.boolTok((*L)[1], Out.Complete) &&
      (L = R.line("next_seed", 2)) && R.u64((*L)[1], Out.NextSeed) &&
      R.line("merged", 1) && readResult(R, Out.Merged) &&
      readCov(R, Out.CovHits) && (L = R.line("inflight", 2)) &&
      R.boolTok((*L)[1], Out.InFlight);
  if (Ok && Out.InFlight) {
    uint64_t NWorkers = 0;
    Ok = (L = R.line("constraints_fp", 2)) &&
         R.u64((*L)[1], Out.ConstraintsFingerprint) &&
         R.line("header", 1) && readResult(R, Out.SeedHeader) &&
         (L = R.line("workers", 2)) && R.u64((*L)[1], NWorkers);
    for (uint64_t I = 0; Ok && I < NWorkers; ++I) {
      WorkerCheckpoint W;
      const auto *WL = R.line("worker", 5);
      Ok = WL && R.boolTok((*WL)[1], W.Finished);
      if (Ok) {
        W.Cursor.Position = (*WL)[2];
        W.Cursor.End = (*WL)[3];
        W.Cursor.Pruned = (*WL)[4];
        Ok = readResult(R, W.Partial) && readCov(R, W.CovHits);
      }
      if (Ok)
        Out.Workers.push_back(std::move(W));
    }
  }
  if (Ok && R.At != R.Lines.size())
    Ok = R.fail("trailing data after snapshot body");
  if (!Ok) {
    Err = R.Err.empty() ? "malformed snapshot" : R.Err;
    return false;
  }
  return true;
}

bool spe::atomicWriteFile(const std::string &Path, const std::string &Text,
                          std::string *Err) {
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open " + Tmp;
    return false;
  }
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  Ok = std::fflush(F) == 0 && Ok;
  // fsync before the rename: without it, power loss can leave the rename
  // durable but the contents not, replacing a good snapshot with an
  // empty/partial one. (Losing the rename itself is harmless -- the
  // previous snapshot survives.)
  Ok = Ok && ::fsync(fileno(F)) == 0;
  std::fclose(F);
  if (!Ok || std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    if (Err)
      *Err = "write/rename failed for " + Path;
    std::remove(Tmp.c_str());
    return false;
  }
  // And the directory entry: a rename that is not durable yet would
  // resurrect the previous snapshot after power loss -- harmless -- but
  // pairing this with OracleStore's directory sync keeps the snapshot
  // and the log it references from surviving independently.
  fsyncParentDir(Path);
  return true;
}

bool CampaignCheckpoint::saveTo(const std::string &Path,
                                std::string *Err) const {
  return atomicWriteFile(Path, serialize(), Err);
}

bool CampaignCheckpoint::loadFrom(const std::string &Path,
                                  CampaignCheckpoint &Out,
                                  std::string &Err) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Err = "cannot open " + Path;
    return false;
  }
  std::string Text;
  char Buf[1 << 16];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, Got);
  std::fclose(F);
  return deserialize(Text, Out, Err);
}

//===----------------------------------------------------------------------===//
// Fingerprints
//===----------------------------------------------------------------------===//

uint64_t spe::fingerprintOptions(const HarnessOptions &Opts) {
  Fnv F;
  F.u64(static_cast<uint64_t>(Opts.Mode));
  F.u64(static_cast<uint64_t>(Opts.Extract.Gran));
  F.u64(static_cast<uint64_t>(Opts.Extract.Model));
  F.u64(Opts.VariantThreshold);
  F.u64(Opts.VariantBudget);
  F.u64(Opts.Threads);
  // Deliberately NOT folded: Opts.BatchSize. Batching is result-neutral
  // by the batch contract (every recorded observation has unbatched
  // provenance), so a campaign checkpointed at one batch size must stay
  // resumable at any other -- the one options knob that may legitimately
  // change mid-campaign, e.g. to re-tune throughput on a different host.
  F.u64(Opts.Configs.size());
  for (const CompilerConfig &C : Opts.Configs) {
    F.u64(static_cast<uint64_t>(C.P));
    F.u64(C.Version);
    F.u64(C.OptLevel);
    F.u64(C.Mode64 ? 1 : 0);
    // The sweep set shapes which matrix cells exist, so a snapshot written
    // under one sweep can never resume under another.
    F.u64(C.ExecSweep.size());
    for (const std::string &In : C.ExecSweep)
      F.str(In);
  }
  F.u64(Opts.InjectBugs ? 1 : 0);
  F.u64(Opts.PruneInvalid ? 1 : 0);
  // Presence bits only: cache contents live in the oracle store, and the
  // counters a resume reproduces depend on whether memoization ran at all;
  // likewise coverage is only recorded into snapshots when a registry is
  // attached, so resuming with the opposite setting would silently skew
  // the final hit set.
  F.u64(Opts.Cache != nullptr ? 1 : 0);
  F.u64(Opts.OracleStorePath.empty() ? 0 : 1);
  F.u64(Opts.Cov != nullptr ? 1 : 0);
  // Triage shapes the final result (Triaged/Reduction are recomputed on
  // resume), so a snapshot written without it must not resume under a
  // triaging campaign or vice versa.
  F.u64(Opts.Triage ? 1 : 0);
  // Backend identity: command line + --version banner for external
  // compilers, "minicc" for the in-process driver. A checkpoint can never
  // be resumed against a different compiler.
  F.str(Opts.Backend ? Opts.Backend->identity()
                     : InProcessBackend(Opts.InjectBugs).identity());
  // The rest of the matrix roster, in slot order: adding, dropping, or
  // reordering differential backends reshapes every vote, so it severs
  // resume like a compiler change does. Classic campaigns fold a bare 0.
  F.u64(Opts.ExtraBackends.size());
  for (const CompilerBackend *E : Opts.ExtraBackends)
    F.str(E ? E->identity() : std::string());
  return F.H;
}

uint64_t spe::fingerprintSeeds(const std::vector<std::string> &Seeds) {
  Fnv F;
  F.u64(Seeds.size());
  for (const std::string &S : Seeds)
    F.str(S);
  return F.H;
}

uint64_t
spe::fingerprintConstraints(const std::vector<ValidityConstraints> &Tables) {
  Fnv F;
  F.u64(Tables.size());
  for (const ValidityConstraints &C : Tables) {
    F.u64(C.Forbidden.size());
    for (const auto &Row : C.Forbidden) {
      F.u64(Row.size());
      for (uint8_t B : Row)
        F.u64(B);
    }
  }
  return F.H;
}
