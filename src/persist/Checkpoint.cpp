//===- persist/Checkpoint.cpp - campaign snapshot format -----------------===//

#include "persist/Checkpoint.h"

#include "compiler/Backend.h"
#include "persist/OracleStore.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include <unistd.h>

using namespace spe;

//===----------------------------------------------------------------------===//
// Shared low-level pieces: FNV-1a, token escaping, strict number parsing
//===----------------------------------------------------------------------===//

namespace {

const char Magic[] = "SPE-CHECKPOINT v3";

/// Incremental FNV-1a over decimal-text renderings, so fingerprints and the
/// file checksum are independent of host endianness and word size.
struct Fnv {
  uint64_t H = 1469598103934665603ull;
  void bytes(const char *P, size_t N) {
    for (size_t I = 0; I < N; ++I) {
      H ^= static_cast<unsigned char>(P[I]);
      H *= 1099511628211ull;
    }
  }
  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }
  void u64(uint64_t V) {
    std::string T = std::to_string(V);
    bytes(T.data(), T.size());
    bytes("|", 1);
  }
};

/// Escapes \p S into a whitespace-free token ("\e" for the empty string).
std::string escapeToken(const std::string &S) {
  if (S.empty())
    return "\\e";
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\': Out += "\\\\"; break;
    case ' ':  Out += "\\s";  break;
    case '\n': Out += "\\n";  break;
    case '\t': Out += "\\t";  break;
    case '\r': Out += "\\r";  break;
    default:   Out += C;      break;
    }
  }
  return Out;
}

bool unescapeToken(const std::string &T, std::string &Out) {
  Out.clear();
  if (T == "\\e")
    return true;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I] != '\\') {
      Out += T[I];
      continue;
    }
    if (++I >= T.size())
      return false;
    switch (T[I]) {
    case '\\': Out += '\\'; break;
    case 's':  Out += ' ';  break;
    case 'n':  Out += '\n'; break;
    case 't':  Out += '\t'; break;
    case 'r':  Out += '\r'; break;
    default:   return false;
    }
  }
  return true;
}

bool parseU64(const std::string &T, uint64_t &Out) {
  if (T.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(T.c_str(), &End, 10);
  if (errno != 0 || End != T.c_str() + T.size() || T[0] == '-')
    return false;
  Out = V;
  return true;
}

bool parseI64(const std::string &T, int64_t &Out) {
  if (T.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  long long V = std::strtoll(T.c_str(), &End, 10);
  if (errno != 0 || End != T.c_str() + T.size())
    return false;
  Out = V;
  return true;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

void writeBugFields(std::ostringstream &Out, const FoundBug &Bug) {
  Out << Bug.BugId << ' ' << static_cast<int>(Bug.P) << ' '
      << static_cast<int>(Bug.Effect) << ' ' << Bug.Version << ' '
      << Bug.OptLevel << ' ' << (Bug.Mode64 ? 1 : 0) << ' '
      << escapeToken(Bug.Signature) << ' ' << escapeToken(Bug.Backend)
      << ' ' << escapeToken(Bug.Input) << ' '
      << escapeToken(Bug.WitnessProgram);
}

/// Serializes the checkpointed portion of a CampaignResult: the 14 campaign
/// counters plus both finding maps. Triaged/Reduction are deliberately not
/// part of the format -- triage runs post-campaign from the final snapshot
/// and is deterministic, so persisting its output would only duplicate
/// state (DESIGN.md Section 11). The cache-lifetime snapshot fields
/// (OracleCacheEvictions, OracleStoreBytes) are re-derived at campaign end.
void writeResult(std::ostringstream &Out, const CampaignResult &R) {
  Out << "counters " << R.SeedsProcessed << ' ' << R.SeedsSkippedByThreshold
      << ' ' << R.VariantsEnumerated << ' ' << R.VariantsOracleExcluded
      << ' ' << R.VariantsTested << ' ' << R.VariantsPruned << ' '
      << R.OracleExecutions << ' ' << R.OracleCacheHits << ' '
      << R.CrashObservations << ' ' << R.WrongCodeObservations << ' '
      << R.PerformanceObservations << ' ' << R.ExecutionTimeouts << ' '
      << R.MatrixCellsCompared << ' ' << R.SweepCellsExcluded << '\n';
  Out << "bugs " << R.UniqueBugs.size() << '\n';
  for (const auto &[Id, Bug] : R.UniqueBugs) {
    (void)Id;
    Out << "bug ";
    writeBugFields(Out, Bug);
    Out << '\n';
  }
  Out << "findings " << R.RawFindings.size() << '\n';
  for (const auto &[Key, Bug] : R.RawFindings) {
    Out << "finding " << Key.BugId << ' ' << static_cast<int>(Key.P) << ' '
        << Key.Version << ' ' << Key.OptLevel << ' '
        << (Key.Mode64 ? 1 : 0) << ' ' << Key.BackendIdx << ' '
        << Key.InputIdx << ' ' << escapeToken(Key.Sig) << ' ';
    writeBugFields(Out, Bug);
    Out << '\n';
  }
}

void writeCov(std::ostringstream &Out, const std::set<std::string> &Hits) {
  Out << "cov " << Hits.size() << '\n';
  for (const std::string &Name : Hits)
    Out << "covhit " << escapeToken(Name) << '\n';
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

/// Tokenized line reader with sticky first-error diagnostics.
struct Reader {
  std::vector<std::vector<std::string>> Lines;
  size_t At = 0;
  std::string Err;

  explicit Reader(const std::string &Text) {
    size_t Start = 0;
    while (Start <= Text.size()) {
      size_t NL = Text.find('\n', Start);
      if (NL == std::string::npos)
        NL = Text.size();
      std::vector<std::string> Tokens;
      size_t P = Start;
      while (P < NL) {
        size_t Space = Text.find(' ', P);
        if (Space == std::string::npos || Space > NL)
          Space = NL;
        if (Space > P)
          Tokens.push_back(Text.substr(P, Space - P));
        P = Space + 1;
      }
      if (!Tokens.empty())
        Lines.push_back(std::move(Tokens));
      Start = NL + 1;
    }
  }

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = "line " + std::to_string(At + 1) + ": " + Msg;
    return false;
  }

  /// Consumes the next line, requiring keyword \p Kw and exactly \p NTokens
  /// tokens (keyword included). \returns null after recording an error.
  const std::vector<std::string> *line(const char *Kw, size_t NTokens) {
    if (At >= Lines.size()) {
      fail(std::string("unexpected end of file, wanted '") + Kw + "'");
      return nullptr;
    }
    const std::vector<std::string> &L = Lines[At];
    if (L[0] != Kw) {
      fail(std::string("expected '") + Kw + "', got '" + L[0] + "'");
      return nullptr;
    }
    if (L.size() != NTokens) {
      fail(std::string("'") + Kw + "' wants " + std::to_string(NTokens) +
           " tokens, got " + std::to_string(L.size()));
      return nullptr;
    }
    ++At;
    return &L;
  }

  bool u64(const std::string &T, uint64_t &Out) {
    return parseU64(T, Out) || fail("bad unsigned integer '" + T + "'");
  }
  bool i64(const std::string &T, int64_t &Out) {
    return parseI64(T, Out) || fail("bad integer '" + T + "'");
  }
  bool strTok(const std::string &T, std::string &Out) {
    return unescapeToken(T, Out) || fail("bad escaped string");
  }
  bool boolTok(const std::string &T, bool &Out) {
    uint64_t V;
    if (!parseU64(T, V) || V > 1)
      return fail("bad flag '" + T + "'");
    Out = V != 0;
    return true;
  }
};

bool readBugFields(Reader &R, const std::vector<std::string> &L, size_t At,
                   FoundBug &Bug) {
  int64_t Id = 0;
  uint64_t P = 0, E = 0, Ver = 0, Opt = 0;
  bool M64 = false;
  if (!R.i64(L[At], Id) || !R.u64(L[At + 1], P) || !R.u64(L[At + 2], E) ||
      !R.u64(L[At + 3], Ver) || !R.u64(L[At + 4], Opt) ||
      !R.boolTok(L[At + 5], M64) || !R.strTok(L[At + 6], Bug.Signature) ||
      !R.strTok(L[At + 7], Bug.Backend) || !R.strTok(L[At + 8], Bug.Input) ||
      !R.strTok(L[At + 9], Bug.WitnessProgram))
    return false;
  if (P > 1 || E > 2)
    return R.fail("enum value out of range");
  Bug.BugId = static_cast<int>(Id);
  Bug.P = static_cast<Persona>(P);
  Bug.Effect = static_cast<BugEffect>(E);
  Bug.Version = static_cast<unsigned>(Ver);
  Bug.OptLevel = static_cast<unsigned>(Opt);
  Bug.Mode64 = M64;
  return true;
}

bool readResult(Reader &R, CampaignResult &Out) {
  const auto *L = R.line("counters", 15);
  if (!L)
    return false;
  uint64_t *Slots[14] = {
      &Out.SeedsProcessed,     &Out.SeedsSkippedByThreshold,
      &Out.VariantsEnumerated, &Out.VariantsOracleExcluded,
      &Out.VariantsTested,     &Out.VariantsPruned,
      &Out.OracleExecutions,   &Out.OracleCacheHits,
      &Out.CrashObservations,  &Out.WrongCodeObservations,
      &Out.PerformanceObservations, &Out.ExecutionTimeouts,
      &Out.MatrixCellsCompared, &Out.SweepCellsExcluded};
  for (size_t I = 0; I < 14; ++I)
    if (!R.u64((*L)[I + 1], *Slots[I]))
      return false;

  uint64_t N = 0;
  L = R.line("bugs", 2);
  if (!L || !R.u64((*L)[1], N))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    const auto *BL = R.line("bug", 11);
    FoundBug Bug;
    if (!BL || !readBugFields(R, *BL, 1, Bug))
      return false;
    if (!Out.UniqueBugs.emplace(Bug.BugId, std::move(Bug)).second)
      return R.fail("duplicate bug id");
  }

  L = R.line("findings", 2);
  if (!L || !R.u64((*L)[1], N))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    const auto *FL = R.line("finding", 19);
    if (!FL)
      return false;
    int64_t Id = 0;
    uint64_t P = 0, Ver = 0, Opt = 0, BIdx = 0, IIdx = 0;
    FindingKey Key;
    FoundBug Bug;
    if (!R.i64((*FL)[1], Id) || !R.u64((*FL)[2], P) ||
        !R.u64((*FL)[3], Ver) || !R.u64((*FL)[4], Opt) ||
        !R.boolTok((*FL)[5], Key.Mode64) || !R.u64((*FL)[6], BIdx) ||
        !R.u64((*FL)[7], IIdx) || !R.strTok((*FL)[8], Key.Sig) ||
        !readBugFields(R, *FL, 9, Bug))
      return false;
    if (P > 1)
      return R.fail("enum value out of range");
    Key.BugId = static_cast<int>(Id);
    Key.P = static_cast<Persona>(P);
    Key.Version = static_cast<unsigned>(Ver);
    Key.OptLevel = static_cast<unsigned>(Opt);
    Key.BackendIdx = static_cast<unsigned>(BIdx);
    Key.InputIdx = static_cast<unsigned>(IIdx);
    if (!Out.RawFindings.emplace(Key, std::move(Bug)).second)
      return R.fail("duplicate finding key");
  }
  return true;
}

bool readCov(Reader &R, std::set<std::string> &Out) {
  const auto *L = R.line("cov", 2);
  uint64_t N = 0;
  if (!L || !R.u64((*L)[1], N))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    const auto *HL = R.line("covhit", 2);
    std::string Name;
    if (!HL || !R.strTok((*HL)[1], Name))
      return false;
    Out.insert(std::move(Name));
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// CampaignCheckpoint
//===----------------------------------------------------------------------===//

std::string CampaignCheckpoint::serialize() const {
  std::ostringstream Out;
  Out << Magic << '\n';
  Out << "options_fp " << OptionsFingerprint << '\n';
  Out << "seeds_fp " << SeedsFingerprint << '\n';
  Out << "store_bytes " << StoreBytes << '\n';
  Out << "complete " << (Complete ? 1 : 0) << '\n';
  Out << "next_seed " << NextSeed << '\n';
  Out << "merged\n";
  writeResult(Out, Merged);
  writeCov(Out, CovHits);
  Out << "inflight " << (InFlight ? 1 : 0) << '\n';
  if (InFlight) {
    Out << "constraints_fp " << ConstraintsFingerprint << '\n';
    Out << "header\n";
    writeResult(Out, SeedHeader);
    Out << "workers " << Workers.size() << '\n';
    for (const WorkerCheckpoint &W : Workers) {
      Out << "worker " << (W.Finished ? 1 : 0) << ' ' << W.Cursor.Position
          << ' ' << W.Cursor.End << ' ' << W.Cursor.Pruned << '\n';
      writeResult(Out, W.Partial);
      writeCov(Out, W.CovHits);
    }
  }
  std::string Body = Out.str();
  Fnv Sum;
  Sum.bytes(Body.data(), Body.size());
  return Body + "checksum " + std::to_string(Sum.H) + "\n";
}

bool CampaignCheckpoint::deserialize(const std::string &Text,
                                     CampaignCheckpoint &Out,
                                     std::string &Err) {
  Out = CampaignCheckpoint();

  // The checksum guards the exact byte body, so verify it before any
  // structural parsing: truncation and single-byte corruption both die
  // here with a precise message.
  size_t Tail = Text.rfind("checksum ");
  if (Tail == std::string::npos || (Tail != 0 && Text[Tail - 1] != '\n')) {
    Err = "missing checksum trailer (truncated file?)";
    return false;
  }
  std::string SumText = Text.substr(Tail + 9);
  while (!SumText.empty() &&
         (SumText.back() == '\n' || SumText.back() == '\r'))
    SumText.pop_back();
  uint64_t Expected;
  if (!parseU64(SumText, Expected)) {
    Err = "malformed checksum trailer";
    return false;
  }
  Fnv Sum;
  Sum.bytes(Text.data(), Tail);
  if (Sum.H != Expected) {
    Err = "checksum mismatch (corrupt or truncated file)";
    return false;
  }

  Reader R(Text.substr(0, Tail));
  if (R.Lines.empty() || R.Lines[0].size() != 2 ||
      R.Lines[0][0] + " " + R.Lines[0][1] != Magic) {
    Err = "bad magic or unsupported format version";
    return false;
  }
  R.At = 1;

  const std::vector<std::string> *L;
  bool Ok =
      (L = R.line("options_fp", 2)) && R.u64((*L)[1], Out.OptionsFingerprint) &&
      (L = R.line("seeds_fp", 2)) && R.u64((*L)[1], Out.SeedsFingerprint) &&
      (L = R.line("store_bytes", 2)) && R.u64((*L)[1], Out.StoreBytes) &&
      (L = R.line("complete", 2)) && R.boolTok((*L)[1], Out.Complete) &&
      (L = R.line("next_seed", 2)) && R.u64((*L)[1], Out.NextSeed) &&
      R.line("merged", 1) && readResult(R, Out.Merged) &&
      readCov(R, Out.CovHits) && (L = R.line("inflight", 2)) &&
      R.boolTok((*L)[1], Out.InFlight);
  if (Ok && Out.InFlight) {
    uint64_t NWorkers = 0;
    Ok = (L = R.line("constraints_fp", 2)) &&
         R.u64((*L)[1], Out.ConstraintsFingerprint) &&
         R.line("header", 1) && readResult(R, Out.SeedHeader) &&
         (L = R.line("workers", 2)) && R.u64((*L)[1], NWorkers);
    for (uint64_t I = 0; Ok && I < NWorkers; ++I) {
      WorkerCheckpoint W;
      const auto *WL = R.line("worker", 5);
      Ok = WL && R.boolTok((*WL)[1], W.Finished);
      if (Ok) {
        W.Cursor.Position = (*WL)[2];
        W.Cursor.End = (*WL)[3];
        W.Cursor.Pruned = (*WL)[4];
        Ok = readResult(R, W.Partial) && readCov(R, W.CovHits);
      }
      if (Ok)
        Out.Workers.push_back(std::move(W));
    }
  }
  if (Ok && R.At != R.Lines.size())
    Ok = R.fail("trailing data after snapshot body");
  if (!Ok) {
    Err = R.Err.empty() ? "malformed snapshot" : R.Err;
    return false;
  }
  return true;
}

bool spe::atomicWriteFile(const std::string &Path, const std::string &Text,
                          std::string *Err) {
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open " + Tmp;
    return false;
  }
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  Ok = std::fflush(F) == 0 && Ok;
  // fsync before the rename: without it, power loss can leave the rename
  // durable but the contents not, replacing a good snapshot with an
  // empty/partial one. (Losing the rename itself is harmless -- the
  // previous snapshot survives.)
  Ok = Ok && ::fsync(fileno(F)) == 0;
  std::fclose(F);
  if (!Ok || std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    if (Err)
      *Err = "write/rename failed for " + Path;
    std::remove(Tmp.c_str());
    return false;
  }
  // And the directory entry: a rename that is not durable yet would
  // resurrect the previous snapshot after power loss -- harmless -- but
  // pairing this with OracleStore's directory sync keeps the snapshot
  // and the log it references from surviving independently.
  fsyncParentDir(Path);
  return true;
}

bool CampaignCheckpoint::saveTo(const std::string &Path,
                                std::string *Err) const {
  return atomicWriteFile(Path, serialize(), Err);
}

bool CampaignCheckpoint::loadFrom(const std::string &Path,
                                  CampaignCheckpoint &Out,
                                  std::string &Err) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Err = "cannot open " + Path;
    return false;
  }
  std::string Text;
  char Buf[1 << 16];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, Got);
  std::fclose(F);
  return deserialize(Text, Out, Err);
}

//===----------------------------------------------------------------------===//
// Fingerprints
//===----------------------------------------------------------------------===//

uint64_t spe::fingerprintOptions(const HarnessOptions &Opts) {
  Fnv F;
  F.u64(static_cast<uint64_t>(Opts.Mode));
  F.u64(static_cast<uint64_t>(Opts.Extract.Gran));
  F.u64(static_cast<uint64_t>(Opts.Extract.Model));
  F.u64(Opts.VariantThreshold);
  F.u64(Opts.VariantBudget);
  F.u64(Opts.Threads);
  // Deliberately NOT folded: Opts.BatchSize. Batching is result-neutral
  // by the batch contract (every recorded observation has unbatched
  // provenance), so a campaign checkpointed at one batch size must stay
  // resumable at any other -- the one options knob that may legitimately
  // change mid-campaign, e.g. to re-tune throughput on a different host.
  F.u64(Opts.Configs.size());
  for (const CompilerConfig &C : Opts.Configs) {
    F.u64(static_cast<uint64_t>(C.P));
    F.u64(C.Version);
    F.u64(C.OptLevel);
    F.u64(C.Mode64 ? 1 : 0);
    // The sweep set shapes which matrix cells exist, so a snapshot written
    // under one sweep can never resume under another.
    F.u64(C.ExecSweep.size());
    for (const std::string &In : C.ExecSweep)
      F.str(In);
  }
  F.u64(Opts.InjectBugs ? 1 : 0);
  F.u64(Opts.PruneInvalid ? 1 : 0);
  // Presence bits only: cache contents live in the oracle store, and the
  // counters a resume reproduces depend on whether memoization ran at all;
  // likewise coverage is only recorded into snapshots when a registry is
  // attached, so resuming with the opposite setting would silently skew
  // the final hit set.
  F.u64(Opts.Cache != nullptr ? 1 : 0);
  F.u64(Opts.OracleStorePath.empty() ? 0 : 1);
  F.u64(Opts.Cov != nullptr ? 1 : 0);
  // Triage shapes the final result (Triaged/Reduction are recomputed on
  // resume), so a snapshot written without it must not resume under a
  // triaging campaign or vice versa.
  F.u64(Opts.Triage ? 1 : 0);
  // Backend identity: command line + --version banner for external
  // compilers, "minicc" for the in-process driver. A checkpoint can never
  // be resumed against a different compiler.
  F.str(Opts.Backend ? Opts.Backend->identity()
                     : InProcessBackend(Opts.InjectBugs).identity());
  // The rest of the matrix roster, in slot order: adding, dropping, or
  // reordering differential backends reshapes every vote, so it severs
  // resume like a compiler change does. Classic campaigns fold a bare 0.
  F.u64(Opts.ExtraBackends.size());
  for (const CompilerBackend *E : Opts.ExtraBackends)
    F.str(E ? E->identity() : std::string());
  return F.H;
}

uint64_t spe::fingerprintSeeds(const std::vector<std::string> &Seeds) {
  Fnv F;
  F.u64(Seeds.size());
  for (const std::string &S : Seeds)
    F.str(S);
  return F.H;
}

uint64_t
spe::fingerprintConstraints(const std::vector<ValidityConstraints> &Tables) {
  Fnv F;
  F.u64(Tables.size());
  for (const ValidityConstraints &C : Tables) {
    F.u64(C.Forbidden.size());
    for (const auto &Row : C.Forbidden) {
      F.u64(Row.size());
      for (uint8_t B : Row)
        F.u64(B);
    }
  }
  return F.H;
}
