//===- persist/Checkpoint.h - campaign snapshot format -------------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned on-disk snapshot a long-haul campaign periodically writes
/// so it can be killed at any instant and resumed with a final result
/// bit-identical to the uninterrupted run (DESIGN.md Section 11).
///
/// What makes perfect resume *possible* is the deterministic mixed-radix
/// ranking of the enumeration cursors: a worker's entire future is a pure
/// function of (seed, options, cursor rank range), so a snapshot only needs
/// per-worker CursorState plus each worker's partial CampaignResult -- the
/// exact fold of the ranks it already consumed. Everything else in the file
/// is validation (format version, whole-file checksum, fingerprints of the
/// options, the seed list, and the in-flight seed's validity constraints)
/// so a resume against skewed inputs is rejected loudly instead of
/// silently diverging.
///
/// The format is line-oriented text with space-separated tokens; embedded
/// strings (bug signatures, witness programs, coverage point names) are
/// escaped to keep tokens whitespace-free. Files are written atomically
/// (temp file + rename) by saveTo. The serialized layout is pinned by a
/// golden file under tests/golden/; bump FormatVersion on any change.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_PERSIST_CHECKPOINT_H
#define SPE_PERSIST_CHECKPOINT_H

#include "core/AssignmentCursor.h"
#include "core/ValidityPruning.h"
#include "testing/Harness.h"

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace spe {

/// One shard worker's saved progress inside the in-flight seed.
struct WorkerCheckpoint {
  /// True once the worker's final publish ran (shard exhausted, pruned
  /// counter folded into Partial). Finished workers are restored verbatim,
  /// not re-run; Position == End alone is *not* sufficient to tell -- a
  /// mid-run publish can land after the last variant but before the fold.
  bool Finished = false;
  /// The worker's ProgramCursor position (rank range + pruned counter).
  CursorState Cursor;
  /// Fold of the ranks in [shard begin, Cursor.Position). VariantsPruned
  /// stays zero until the final publish folds the cursor's counter, so
  /// restored counters never double-count.
  CampaignResult Partial;
  /// The worker's private coverage registry hit set.
  std::set<std::string> CovHits;

  bool operator==(const WorkerCheckpoint &Other) const {
    return Finished == Other.Finished && Cursor == Other.Cursor &&
           Partial == Other.Partial && CovHits == Other.CovHits;
  }
};

/// A whole-campaign snapshot: the merged result of completed seeds plus,
/// when a seed is mid-enumeration, per-worker shard states.
struct CampaignCheckpoint {
  /// Bump on any serialized-layout change; loadFrom rejects other versions.
  /// v2: counters line gained ExecutionTimeouts; finding lines gained the
  /// signature-only key token (FindingKey::Sig).
  /// v3 (differential matrix, DESIGN.md Section 14): counters line gained
  /// MatrixCellsCompared + SweepCellsExcluded; bug fields gained the
  /// attributed backend identity and the sweep input; finding keys gained
  /// BackendIdx + InputIdx.
  static constexpr unsigned FormatVersion = 3;

  /// Fingerprint of the campaign-shaping HarnessOptions fields (mode,
  /// extraction, threshold, budget, threads, configs, bug injection,
  /// pruning, cache/store presence). Resume rejects a mismatch.
  uint64_t OptionsFingerprint = 0;
  /// Fingerprint of the seed list (count + every text).
  uint64_t SeedsFingerprint = 0;
  /// Valid byte length of the OracleStore log when this snapshot was
  /// published; resume truncates the log back to it (persist/OracleStore.h).
  uint64_t StoreBytes = 0;
  /// True for the final snapshot: every seed merged, campaign done.
  bool Complete = false;
  /// Index of the first seed not folded into Merged.
  uint64_t NextSeed = 0;
  /// Fold of seeds [0, NextSeed).
  CampaignResult Merged;
  /// The user coverage registry's hit set after seeds [0, NextSeed) -- the
  /// base state every in-flight worker's private copy diverged from.
  std::set<std::string> CovHits;

  /// True when seed NextSeed is mid-enumeration and Workers below is live.
  bool InFlight = false;
  /// Fingerprint of the in-flight seed's ValidityConstraints; pruning
  /// changes rank-skip behavior, so resuming against skewed analysis facts
  /// is rejected.
  uint64_t ConstraintsFingerprint = 0;
  /// The in-flight seed's pre-enumeration counters (SeedsProcessed /
  /// SeedsSkippedByThreshold increments), merged before worker partials.
  /// Resume recomputes this deterministically and cross-checks it against
  /// the recorded value as an extra front-end skew detector.
  CampaignResult SeedHeader;
  /// One entry per shard worker of the in-flight seed.
  std::vector<WorkerCheckpoint> Workers;

  bool operator==(const CampaignCheckpoint &Other) const {
    return OptionsFingerprint == Other.OptionsFingerprint &&
           SeedsFingerprint == Other.SeedsFingerprint &&
           StoreBytes == Other.StoreBytes && Complete == Other.Complete &&
           NextSeed == Other.NextSeed && Merged == Other.Merged &&
           CovHits == Other.CovHits && InFlight == Other.InFlight &&
           ConstraintsFingerprint == Other.ConstraintsFingerprint &&
           SeedHeader == Other.SeedHeader && Workers == Other.Workers;
  }

  /// Serializes to the versioned text format, checksum line included.
  std::string serialize() const;

  /// Parses \p Text. \returns false with a diagnostic in \p Err on any
  /// malformation: bad magic or version skew, checksum mismatch (corrupt
  /// or truncated file), or structural damage.
  static bool deserialize(const std::string &Text, CampaignCheckpoint &Out,
                          std::string &Err);

  /// Atomically writes the snapshot: serialize to \p Path + ".tmp", flush,
  /// rename over \p Path. A crash mid-write leaves the previous snapshot
  /// intact. \returns false on I/O failure.
  bool saveTo(const std::string &Path, std::string *Err = nullptr) const;

  /// Reads and deserializes \p Path. \returns false with a diagnostic on a
  /// missing, corrupt, truncated, or version-skewed file.
  static bool loadFrom(const std::string &Path, CampaignCheckpoint &Out,
                       std::string &Err);
};

/// Atomically writes \p Text to \p Path: temp file + flush + rename, so a
/// crash mid-write leaves any previous file intact. \returns false on I/O
/// failure (the temp file is cleaned up). This is the write primitive
/// under CampaignCheckpoint::saveTo, exposed so callers that serialize
/// under a lock can perform the disk write outside it.
bool atomicWriteFile(const std::string &Path, const std::string &Text,
                     std::string *Err = nullptr);

/// Fingerprints the campaign-shaping fields of \p Opts (FNV-1a), including
/// the Triage flag and the compiler backend's identity() (command line +
/// --version output for external backends). Cache/store/coverage pointers
/// contribute presence bits only; checkpoint cadence and paths are
/// excluded -- resuming with a different CheckpointEveryN is sound.
uint64_t fingerprintOptions(const HarnessOptions &Opts);

/// Fingerprints the seed list: count plus every program text.
uint64_t fingerprintSeeds(const std::vector<std::string> &Seeds);

/// Fingerprints per-unit validity constraints (forbidden tables).
uint64_t
fingerprintConstraints(const std::vector<ValidityConstraints> &Tables);

} // namespace spe

#endif // SPE_PERSIST_CHECKPOINT_H
