//===- triage/MatrixVote.cpp - majority-vs-outlier matrix attribution ----===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "triage/MatrixVote.h"

namespace spe {

BehaviorKey behaviorKey(const BackendObservation &Obs) {
  BehaviorKey K;
  switch (Obs.Exec) {
  case BackendObservation::ExecStatus::Timeout:
    K.K = BehaviorKey::Kind::Hang;
    return K;
  case BackendObservation::ExecStatus::Trap:
    K.K = BehaviorKey::Kind::Trap;
    return K;
  default:
    break;
  }
  K.K = BehaviorKey::Kind::Exit;
  K.Exit = Obs.ExitCodeLow8 ? (Obs.ExitCode & 0xFF) : Obs.ExitCode;
  K.Output = Obs.Output;
  return K;
}

MatrixVote
voteMatrixCell(int64_t OracleExit, const std::string &OracleOutput,
               const std::vector<const BackendObservation *> &Obs) {
  MatrixVote V;
  V.ConsensusExit = OracleExit;
  V.ConsensusOutput = OracleOutput;
  V.Outliers.assign(Obs.size(), std::string());

  // Group the cleanly exited observations by canonical behavior. Traps and
  // hangs are divergences by definition; they never form a consensus
  // candidate (they still get an outlier signature below).
  struct Group {
    BehaviorKey Key;
    unsigned Weight = 0;
    const BackendObservation *Rep = nullptr;
  };
  std::vector<Group> Groups;
  for (const BackendObservation *O : Obs) {
    if (!O || O->Compile != BackendObservation::CompileStatus::Ok ||
        O->Exec != BackendObservation::ExecStatus::Ok)
      continue;
    BehaviorKey K = behaviorKey(*O);
    bool Placed = false;
    for (Group &G : Groups)
      if (G.Key == K) {
        ++G.Weight;
        Placed = true;
        break;
      }
    if (!Placed)
      Groups.push_back(Group{K, 1, O});
  }

  // The oracle's own behavior is one extra vote for its group. A low-8
  // observation whose masked exit matches the oracle's full-width exit
  // only when the oracle's exit is itself < 256 joins the oracle's group
  // exactly when classifyDivergence would clear it, because
  // classifyDivergence masks both sides for that observation; for the
  // purpose of *weighing*, we count an observation into the oracle group
  // when its own divergence check against the oracle behavior is clean.
  unsigned OracleWeight = 1;
  for (const BackendObservation *O : Obs) {
    if (!O || O->Compile != BackendObservation::CompileStatus::Ok ||
        O->Exec != BackendObservation::ExecStatus::Ok)
      continue;
    if (classifyDivergence(*O, OracleExit, OracleOutput).empty())
      ++OracleWeight;
  }

  // A non-oracle group wins only when it is strictly heavier than the
  // oracle group AND uniquely maximal among non-oracle groups; every tie
  // (including 1-vs-1) falls back to the oracle.
  const Group *Winner = nullptr;
  bool WinnerUnique = true;
  for (const Group &G : Groups) {
    // Skip groups that agree with the oracle: they are the oracle group.
    if (classifyDivergence(*G.Rep, OracleExit, OracleOutput).empty())
      continue;
    if (!Winner || G.Weight > Winner->Weight) {
      Winner = &G;
      WinnerUnique = true;
    } else if (G.Weight == Winner->Weight) {
      WinnerUnique = false;
    }
  }
  if (Winner && WinnerUnique && Winner->Weight > OracleWeight) {
    V.OracleOutvoted = true;
    V.ConsensusExit = Winner->Key.Exit;
    V.ConsensusOutput = Winner->Key.Output;
    // The oracle's signature against the new consensus, via a pseudo
    // full-width observation of the oracle's behavior.
    BackendObservation OracleObs;
    OracleObs.Compile = BackendObservation::CompileStatus::Ok;
    OracleObs.Exec = BackendObservation::ExecStatus::Ok;
    OracleObs.ExitCode = OracleExit;
    OracleObs.ExitCodeLow8 = false;
    OracleObs.Output = OracleOutput;
    V.OracleSignature =
        classifyDivergence(OracleObs, V.ConsensusExit, V.ConsensusOutput);
  }

  for (size_t I = 0; I < Obs.size(); ++I) {
    const BackendObservation *O = Obs[I];
    if (!O || O->Compile != BackendObservation::CompileStatus::Ok ||
        O->Exec == BackendObservation::ExecStatus::NotRun)
      continue;
    V.Outliers[I] =
        classifyDivergence(*O, V.ConsensusExit, V.ConsensusOutput);
  }
  return V;
}

} // namespace spe
