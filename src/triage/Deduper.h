//===- triage/Deduper.h - signature clustering + triage pipeline ---------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The post-campaign triage pipeline: what stands between "the campaign
/// emitted raw FoundBugs" and "a human can read the report". Three stages,
/// all deterministic:
///
///   1. Cluster -- findings are grouped by behavioral signature
///      (triage/BugSignature.h); within each cluster the smallest witness
///      (fewest tokens, ties broken by text then ground-truth id) becomes
///      the representative. Duplicates across configs, shards, and personas
///      collapse here.
///   2. Reduce -- the representative witness is shrunk by the structural
///      reducer (reduce/SkeletonReducer.h) while the signature-preservation
///      oracle confirms the finding still reproduces.
///   3. Canonicalize -- the reduced witness is replaced by the minimal-rank
///      triggering variant of its own skeleton (reduce/VariantMinimizer.h),
///      so equal bugs reached through different variants converge on one
///      reproducer.
///
/// The pipeline runs on a merged CampaignResult and reads only its
/// RawFindings map (falling back to UniqueBugs for results that carry no
/// raw stream); both maps are thread-count invariant by construction, which
/// is what makes the triaged report bit-identical across harness thread
/// counts. Oracle re-probes flow through the campaign-shared
/// testing/OracleCache when one is supplied.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_TRIAGE_DEDUPER_H
#define SPE_TRIAGE_DEDUPER_H

#include "reduce/SkeletonReducer.h"
#include "reduce/VariantMinimizer.h"
#include "testing/Harness.h"

#include <map>
#include <vector>

namespace spe {

/// Stage toggles and shared state for one triage pass.
struct TriageOptions {
  /// Structural reduction of each cluster representative.
  bool ReduceWitnesses = true;
  ReducerOptions Reduce;
  /// Minimal-rank canonicalization of each (reduced) representative.
  bool MinimizeRank = true;
  MinimizerOptions Minimize;
  /// Campaign-shared oracle memoization for all reduction re-probes.
  OracleCache *Cache = nullptr;
  /// Mirrors HarnessOptions::InjectBugs.
  bool InjectBugs = true;
  /// The compiler backend reduction re-probes compile against; mirrors
  /// HarnessOptions::Backend (null = in-process MiniCC). Signature-only
  /// findings from an external compiler must be re-probed through that
  /// same compiler or every reduction step would spuriously fail.
  const CompilerBackend *Backend = nullptr;
  /// The rest of the matrix roster; mirrors HarnessOptions::ExtraBackends.
  /// A finding attributed to one of these (FoundBug::Backend matching its
  /// identity()) is re-probed through that backend rather than Backend;
  /// findings attributed to "reference-oracle" skip reduction entirely --
  /// no single compiler reproduces an oracle-outvoted divergence, so its
  /// witness is reported as found.
  std::vector<const CompilerBackend *> ExtraBackends;
  /// Campaign telemetry sink (support/Telemetry.h); null = off. Triage
  /// stages record global-phase spans (triage_dedup / triage_ddmin /
  /// triage_minimize) -- observation only, never verdicts.
  TelemetrySink *Telemetry = nullptr;
};

/// \returns the normalized signature of one finding.
BugSignature signatureOf(const FoundBug &Bug);

/// Stage 1 alone: clusters findings by signature and picks the smallest
/// representative per cluster (fewest witness tokens, ties broken by
/// witness text then ground-truth id; no reduction). Clusters are sorted
/// by signature; MemberIds ascending and unique. Findings are visited in
/// the order given, which both map overloads make deterministic.
std::vector<TriagedBug>
clusterBySignature(const std::vector<const FoundBug *> &Bugs);
std::vector<TriagedBug>
clusterBySignature(const std::map<FindingKey, FoundBug> &Raw);
std::vector<TriagedBug>
clusterBySignature(const std::map<int, FoundBug> &Bugs);

/// Runs the full pipeline over \p Result's raw finding stream (falling
/// back to UniqueBugs for results that carry none) and fills
/// \p Result.Triaged / \p Result.Reduction. Deterministic: depends only on
/// those maps and \p Opts (a shared cache changes cost counters it reports
/// elsewhere, never verdicts).
void triageCampaign(CampaignResult &Result, const TriageOptions &Opts = {});

} // namespace spe

#endif // SPE_TRIAGE_DEDUPER_H
