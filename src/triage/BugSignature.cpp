//===- triage/BugSignature.cpp - behavioral bug signatures ---------------===//

#include "triage/BugSignature.h"

using namespace spe;

std::string spe::normalizeSignature(BugEffect Effect,
                                    const std::string &Raw) {
  if (Effect != BugEffect::WrongCode)
    return Raw;
  // Wrong-code observations embed variant-specific payload after the
  // divergence kind: "miscompilation (exit 3 != 7)" -> "miscompilation
  // (exit)". The kind tag is the first word inside the parentheses.
  size_t Open = Raw.find('(');
  if (Open == std::string::npos)
    return Raw;
  size_t KindEnd = Raw.find_first_of(" )", Open + 1);
  if (KindEnd == std::string::npos)
    return Raw;
  return Raw.substr(0, KindEnd) + ")";
}

std::string BugSignature::str() const {
  std::string S = std::string(personaName(P)) + "/" + bugEffectName(Effect) +
                  "/" + Key;
  if (!Backend.empty())
    S += "@" + Backend;
  return S;
}
