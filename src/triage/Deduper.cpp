//===- triage/Deduper.cpp - signature clustering + triage pipeline -------===//

#include "triage/Deduper.h"

#include <algorithm>
#include <tuple>

using namespace spe;

BugSignature spe::signatureOf(const FoundBug &Bug) {
  return {Bug.P, Bug.Effect, normalizeSignature(Bug.Effect, Bug.Signature),
          Bug.Backend};
}

std::vector<TriagedBug>
spe::clusterBySignature(const std::vector<const FoundBug *> &Bugs) {
  // std::map keyed by BugSignature gives the sorted-by-signature output
  // order for free.
  std::map<BugSignature, TriagedBug> Clusters;
  for (const FoundBug *BugPtr : Bugs) {
    const FoundBug &Bug = *BugPtr;
    BugSignature Sig = signatureOf(Bug);
    auto [It, Inserted] = Clusters.try_emplace(Sig);
    TriagedBug &Cluster = It->second;
    ++Cluster.RawCount;
    if (std::find(Cluster.MemberIds.begin(), Cluster.MemberIds.end(),
                  Bug.BugId) == Cluster.MemberIds.end())
      Cluster.MemberIds.push_back(Bug.BugId);
    uint64_t Tokens = tokenCount(Bug.WitnessProgram);
    if (Inserted) {
      Cluster.Sig = std::move(Sig);
      Cluster.Representative = Bug;
      Cluster.TokensBefore = Cluster.TokensAfter = Tokens;
      continue;
    }
    // Smallest witness wins; deterministic tie-break on text then id.
    const FoundBug &Rep = Cluster.Representative;
    if (std::make_tuple(Tokens, std::cref(Bug.WitnessProgram), Bug.BugId) <
        std::make_tuple(Cluster.TokensBefore,
                        std::cref(Rep.WitnessProgram), Rep.BugId)) {
      Cluster.Representative = Bug;
      Cluster.TokensBefore = Cluster.TokensAfter = Tokens;
    }
  }

  std::vector<TriagedBug> Out;
  Out.reserve(Clusters.size());
  for (auto &[Sig, Cluster] : Clusters) {
    std::sort(Cluster.MemberIds.begin(), Cluster.MemberIds.end());
    Out.push_back(std::move(Cluster));
  }
  return Out;
}

std::vector<TriagedBug>
spe::clusterBySignature(const std::map<FindingKey, FoundBug> &Raw) {
  std::vector<const FoundBug *> Ptrs;
  Ptrs.reserve(Raw.size());
  for (const auto &[Key, Bug] : Raw)
    Ptrs.push_back(&Bug);
  return clusterBySignature(Ptrs);
}

std::vector<TriagedBug>
spe::clusterBySignature(const std::map<int, FoundBug> &Bugs) {
  std::vector<const FoundBug *> Ptrs;
  Ptrs.reserve(Bugs.size());
  for (const auto &[Id, Bug] : Bugs)
    Ptrs.push_back(&Bug);
  return clusterBySignature(Ptrs);
}

void spe::triageCampaign(CampaignResult &Result, const TriageOptions &Opts) {
  bool UseRaw = !Result.RawFindings.empty();
  std::vector<TriagedBug> Clusters;
  {
    SpanTimer T(Opts.Telemetry, nullptr, "triage_dedup");
    Clusters = UseRaw ? clusterBySignature(Result.RawFindings)
                      : clusterBySignature(Result.UniqueBugs);
  }

  ReductionStats Stats;
  Stats.RawBugs =
      UseRaw ? Result.RawFindings.size() : Result.UniqueBugs.size();
  Stats.Clusters = Clusters.size();

  for (TriagedBug &Cluster : Clusters) {
    FoundBug &Rep = Cluster.Representative;

    // Oracle-outvoted clusters have no compiler to re-probe through -- the
    // divergence is between the roster's consensus and the reference
    // semantics itself -- so their witness is reported unreduced.
    if (Rep.Backend == "reference-oracle") {
      Cluster.TokensAfter = Cluster.TokensBefore;
      Stats.TokensBefore += Cluster.TokensBefore;
      Stats.TokensAfter += Cluster.TokensAfter;
      continue;
    }

    // Matrix findings re-probe through the backend they were attributed
    // to; classic findings (empty Backend) keep the campaign's primary.
    const CompilerBackend *ProbeBackend = Opts.Backend;
    if (!Rep.Backend.empty()) {
      if (!(Opts.Backend && Opts.Backend->identity() == Rep.Backend))
        for (const CompilerBackend *E : Opts.ExtraBackends)
          if (E && E->identity() == Rep.Backend) {
            ProbeBackend = E;
            break;
          }
    }
    SkeletonReducer Reducer(Opts.Reduce, Opts.Cache, ProbeBackend);
    VariantMinimizer Minimizer(Opts.Minimize, Opts.Cache, ProbeBackend);

    ReproSpec Spec;
    Spec.Config = {Rep.P, Rep.Version, Rep.OptLevel, Rep.Mode64};
    Spec.Effect = Rep.Effect;
    Spec.SignatureKey = Cluster.Sig.Key;
    Spec.InjectBugs = Opts.InjectBugs;
    Spec.Input = Rep.Input;

    if (Opts.ReduceWitnesses) {
      SpanTimer T(Opts.Telemetry, nullptr, "triage_ddmin");
      ReductionOutcome R = Reducer.reduce(Rep.WitnessProgram, Spec);
      Rep.WitnessProgram = std::move(R.Reduced);
      Stats.StatementsDeleted += R.StatementsDeleted;
      Stats.DeclsDropped += R.DeclsDropped;
      Stats.ExprsSimplified += R.ExprsSimplified;
      Stats.ReductionProbes += R.Oracle.Probes;
      Stats.OracleRuns += R.Oracle.OracleRuns;
      Stats.OracleCacheHits += R.Oracle.OracleCacheHits;
    }
    if (Opts.MinimizeRank) {
      SpanTimer T(Opts.Telemetry, nullptr, "triage_minimize");
      MinimizeOutcome M = Minimizer.minimize(Rep.WitnessProgram, Spec);
      Rep.WitnessProgram = std::move(M.Minimized);
      Stats.RankMinimized += M.Improved ? 1 : 0;
      Stats.ReductionProbes += M.Oracle.Probes;
      Stats.OracleRuns += M.Oracle.OracleRuns;
      Stats.OracleCacheHits += M.Oracle.OracleCacheHits;
    }
    Cluster.TokensAfter = tokenCount(Rep.WitnessProgram);
    Stats.TokensBefore += Cluster.TokensBefore;
    Stats.TokensAfter += Cluster.TokensAfter;
  }

  Result.Triaged = std::move(Clusters);
  Result.Reduction = Stats;
}
