//===- triage/MatrixVote.h - majority-vs-outlier matrix attribution ------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Attribution for the N-way differential matrix (DESIGN.md Section 14).
/// A classic campaign compares one backend against the reference oracle;
/// with N backends observing the same (variant, config, input) cell, a
/// divergence no longer names its culprit by construction. This layer
/// votes: observations are grouped by canonical behavior, the reference
/// oracle's behavior counts as one vote of its own, and the backends
/// outside the winning group are the outliers a finding is attributed to.
/// When a strict backend majority agrees *against* the oracle, the oracle
/// itself is the outlier (an interpreter bug, or UB the exclusion pass
/// missed) and the finding is attributed to "reference-oracle".
///
/// Grouping is by per-cell canonical exit: an observation whose exit code
/// passed through a POSIX wait status is masked to its low 8 bits, one
/// observed full-width is not. Full-width 256+k therefore never collides
/// with low-8 k -- two full-width backends exiting 259 and 3 are a real
/// divergence -- while the final outlier signatures are re-derived through
/// classifyDivergence, whose per-observation masking keeps a low-8 backend
/// from being blamed for bits it never saw.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_TRIAGE_MATRIXVOTE_H
#define SPE_TRIAGE_MATRIXVOTE_H

#include "compiler/Backend.h"

#include <cstdint>
#include <string>
#include <vector>

namespace spe {

/// The canonical behavior of one executed observation, the unit the vote
/// groups by.
struct BehaviorKey {
  enum class Kind { Exit, Trap, Hang } K = Kind::Exit;
  /// Masked to the low 8 bits iff the observation's ExitCodeLow8 was set;
  /// meaningful only for Kind::Exit.
  int64_t Exit = 0;
  std::string Output; ///< Empty for Trap/Hang.

  friend bool operator==(const BehaviorKey &A, const BehaviorKey &B) {
    return A.K == B.K && A.Exit == B.Exit && A.Output == B.Output;
  }
};

/// \returns the canonical behavior of \p Obs. Meaningful only for executed
/// observations (Exec != NotRun).
BehaviorKey behaviorKey(const BackendObservation &Obs);

/// The outcome of voting one matrix cell.
struct MatrixVote {
  /// True when a strict backend majority agreed on one behavior against
  /// the reference oracle; the consensus below is then that group's.
  bool OracleOutvoted = false;
  /// The consensus behavior every participant is compared against: the
  /// oracle's expected behavior unless OracleOutvoted.
  int64_t ConsensusExit = 0;
  std::string ConsensusOutput;
  /// Raw divergence signature of the oracle against the consensus; set
  /// only when OracleOutvoted.
  std::string OracleSignature;
  /// One entry per input observation: the raw divergence signature of that
  /// backend against the consensus (classifyDivergence), empty when it
  /// agrees or was not executed.
  std::vector<std::string> Outliers;
};

/// Votes one matrix cell: the reference oracle's behavior under this input
/// (\p OracleExit full-width, \p OracleOutput) against \p Obs, one
/// observation per roster backend (null or unexecuted entries abstain).
///
/// Rules: only cleanly-exited observations form candidate behavior groups
/// (a trap or hang is a divergence by definition and can never be
/// consensus); the group matching the oracle's behavior weighs its member
/// count plus one for the oracle itself; the uniquely heaviest group wins
/// and every tie -- including the 1-vs-1 split -- falls back to the
/// oracle, so the oracle is only ever outvoted by a strict unique
/// majority.
MatrixVote voteMatrixCell(int64_t OracleExit, const std::string &OracleOutput,
                          const std::vector<const BackendObservation *> &Obs);

} // namespace spe

#endif // SPE_TRIAGE_MATRIXVOTE_H
