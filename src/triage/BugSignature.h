//===- triage/BugSignature.h - behavioral bug signatures -----------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The signature a triage pipeline can compute *without* ground truth: what
/// a human reporting the paper's bugs had -- the persona, the effect class,
/// and a normalized behavioral key (the crashing pass's assertion text for
/// ICEs, the divergence kind for miscompilations, "pathological compile
/// time" for compile-time blowups). Campaign findings with equal signatures
/// are considered duplicates of one bug and collapse into a single cluster
/// (triage/Deduper.h).
///
/// Normalization strips variant-specific payload -- the concrete exit codes
/// of a wrong-code divergence vary per reproducer while the underlying bug
/// does not -- and keeps the stable part. This makes signature equality
/// reduction-invariant: the reduction predicate (reduce/BugRepro.h) checks
/// the normalized key, so a reducer can never drift a finding into a
/// different cluster. Like real-world signature triage it under-approximates
/// distinctness: two genuinely different wrong-code bugs with the same
/// divergence kind conflate. TriagedBug::MemberIds keeps the ground-truth
/// ids per cluster so the benches can *measure* that conflation instead of
/// hiding it.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_TRIAGE_BUGSIGNATURE_H
#define SPE_TRIAGE_BUGSIGNATURE_H

#include "compiler/Bugs.h"

#include <string>
#include <tuple>

namespace spe {

/// Normalizes a raw per-observation signature string to its stable,
/// reduction-invariant key. Crash signatures (the assertion/pass text) and
/// performance signatures are already stable; wrong-code signatures keep
/// the divergence kind ("miscompilation (exit)", "(output)", "(trap)") and
/// drop the concrete values.
std::string normalizeSignature(BugEffect Effect, const std::string &Raw);

/// What distinguishes one triaged bug from another: persona, effect class,
/// the normalized behavioral key, and -- in N-way matrix campaigns -- the
/// identity of the backend the finding was attributed to. The same
/// divergence kind blamed on gcc and on clang is two bugs; the same
/// divergence reached through several sweep *inputs* of one backend is one
/// (the input is witness metadata, never part of this identity).
struct BugSignature {
  Persona P = Persona::GccSim;
  BugEffect Effect = BugEffect::Crash;
  std::string Key;
  /// Attributed backend identity (FoundBug::Backend); empty in classic
  /// single-backend campaigns, where it changes nothing -- including
  /// str(), which keeps its historical form.
  std::string Backend;

  /// Renders "gcc-sim/crash/<key>" for reports and test diagnostics, with
  /// "@<backend>" appended only when a backend identity is set.
  std::string str() const;

  friend bool operator==(const BugSignature &A, const BugSignature &B) {
    return A.P == B.P && A.Effect == B.Effect && A.Key == B.Key &&
           A.Backend == B.Backend;
  }
  friend bool operator!=(const BugSignature &A, const BugSignature &B) {
    return !(A == B);
  }
  friend bool operator<(const BugSignature &A, const BugSignature &B) {
    return std::make_tuple(static_cast<int>(A.P), static_cast<int>(A.Effect),
                           std::cref(A.Key), std::cref(A.Backend)) <
           std::make_tuple(static_cast<int>(B.P), static_cast<int>(B.Effect),
                           std::cref(B.Key), std::cref(B.Backend));
  }
};

} // namespace spe

#endif // SPE_TRIAGE_BUGSIGNATURE_H
