//===- core/ValidityPruning.h - Per-hole forbidden sets + pruned DP ------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Skeleton-level validity constraints: per-hole sets of *forbidden*
/// variables, i.e. single hole choices that make the variant invalid no
/// matter what the other holes do. The facts are produced by the frontend
/// def-before-use analysis (skeleton/ValidityAnalysis.h) and consumed by the
/// enumeration cursors, which skip whole mixed-radix subranges whose most
/// significant offending digit is forbidden -- most invalid variants are
/// never materialized, rendered, or interpreted (compare the by-construction
/// rejection argument of Stepanov et al., "Type-Centric Kotlin Compiler
/// Fuzzing", 2020).
///
/// Ranks are *not* renumbered: a pruned cursor walks the same canonical rank
/// space as an unpruned one and merely skips invalid ranks, so seek(rank),
/// shard(i, n), budget prefixes, and deterministic shard merges keep their
/// exact semantics. Alongside the skipping there is a pruned-count DP
/// (countValidClasses) -- the constrained analogue of ScopePartitionDP --
/// that reports the surviving-space cardinality without enumeration.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_CORE_VALIDITYPRUNING_H
#define SPE_CORE_VALIDITYPRUNING_H

#include "core/AbstractSkeleton.h"
#include "support/BigInt.h"

#include <vector>

namespace spe {

/// Per-hole forbidden variable sets for one skeleton. Forbidden[h][v] means:
/// every variant assigning variable v to hole h is invalid (it fails the
/// variant frontend or is rejected by the reference oracle) regardless of
/// the other holes, so the whole stratum may be skipped.
struct ValidityConstraints {
  /// Forbidden[h][v] indexed by hole index and VarId; empty when no analysis
  /// ran. Stored as uint8_t to dodge std::vector<bool> aliasing costs.
  std::vector<std::vector<uint8_t>> Forbidden;

  /// Sizes the table to \p Sk with nothing forbidden.
  void reset(const AbstractSkeleton &Sk) {
    Forbidden.assign(Sk.numHoles(),
                     std::vector<uint8_t>(Sk.numVars(), 0));
  }

  void forbid(unsigned Hole, VarId V) { Forbidden[Hole][V] = 1; }

  bool forbids(unsigned Hole, VarId V) const {
    return Hole < Forbidden.size() && V < Forbidden[Hole].size() &&
           Forbidden[Hole][V] != 0;
  }

  /// \returns true when no (hole, var) pair is forbidden; cursors skip all
  /// pruning work in that case.
  bool empty() const {
    for (const auto &Row : Forbidden)
      for (uint8_t B : Row)
        if (B)
          return false;
    return true;
  }

  /// \returns the number of forbidden (hole, var) pairs.
  uint64_t forbiddenPairs() const {
    uint64_t N = 0;
    for (const auto &Row : Forbidden)
      for (uint8_t B : Row)
        N += B;
    return N;
  }
};

/// \returns true iff \p A assigns some hole a variable \p C forbids.
bool assignmentViolates(const Assignment &A, const ValidityConstraints &C);

/// Borrows a per-unit pointer view of \p Tables, the shape
/// ProgramCursor::setConstraints consumes. \p Tables must outlive the view;
/// shared by the harness shard workers, the variant-rank minimizer, and the
/// pruning tests.
inline std::vector<const ValidityConstraints *>
constraintPtrs(const std::vector<ValidityConstraints> &Tables) {
  std::vector<const ValidityConstraints *> Ptrs;
  Ptrs.reserve(Tables.size());
  for (const ValidityConstraints &C : Tables)
    Ptrs.push_back(&C);
  return Ptrs;
}

/// Counts the restricted growth strings over \p Holes (filled from \p Vars,
/// block i bound to Vars[i]) in which no hole receives a variable its
/// forbidden set excludes. With an empty constraint set this equals
/// StirlingTable::partitionsUpTo(|Holes|, |Vars|).
BigInt countValidPartitions(const std::vector<unsigned> &Holes,
                            const std::vector<VarId> &Vars,
                            const ValidityConstraints &C);

/// The pruned-space cardinality: the number of exact-mode canonical
/// assignments of \p Sk that violate no constraint of \p C. Sums, per type
/// class, the constrained partition products over every level map; intended
/// for the threshold-bounded spaces the harness actually enumerates (cost is
/// linear in the number of level maps, not in the class count).
BigInt countValidClasses(const AbstractSkeleton &Sk,
                         const ValidityConstraints &C);

} // namespace spe

#endif // SPE_CORE_VALIDITYPRUNING_H
