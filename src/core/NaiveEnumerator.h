//===- core/NaiveEnumerator.h - Cartesian-product enumeration ------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The naive SPE baseline of Section 3.1: the n-ary Cartesian product over
/// the hole variable sets v_1 x ... x v_n. Used as the comparison baseline of
/// Table 1 / Figure 8 and as the generator underlying the brute-force
/// canonical-dedup oracle in tests.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_CORE_NAIVEENUMERATOR_H
#define SPE_CORE_NAIVEENUMERATOR_H

#include "core/AbstractSkeleton.h"
#include "support/BigInt.h"

#include <functional>

namespace spe {

/// Enumerates every realization of a skeleton (the paper's set P).
class NaiveEnumerator {
public:
  explicit NaiveEnumerator(const AbstractSkeleton &Skeleton);

  /// \returns prod_i |v_i|, the full Cartesian-product size.
  BigInt count() const;

  /// Invokes \p Callback on every assignment in lexicographic candidate
  /// order until it returns false or \p Limit assignments were produced
  /// (0 = unlimited). \returns the number of assignments produced.
  uint64_t
  enumerate(const std::function<bool(const Assignment &)> &Callback,
            uint64_t Limit = 0) const;

private:
  const AbstractSkeleton &Skeleton;
  std::vector<std::vector<VarId>> Candidates;
};

} // namespace spe

#endif // SPE_CORE_NAIVEENUMERATOR_H
