//===- core/AbstractSkeleton.h - Skeletons, scopes, holes ----------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The language-independent skeleton model of Section 3 of the paper. A
/// skeleton is a scope tree, a set of typed variables attached to scopes, and
/// an ordered list of holes; hole i may be filled by any variable of the same
/// type class declared in an ancestor-or-self scope of the hole's use scope
/// (the "hole variable set" v_i of Definition 1). The mini-C frontend lowers
/// real programs into this model; the enumerators and counters operate on it
/// exclusively, which keeps the combinatorial core reusable for other
/// languages (the paper's "generality" remark in Section 1).
///
//===----------------------------------------------------------------------===//

#ifndef SPE_CORE_ABSTRACTSKELETON_H
#define SPE_CORE_ABSTRACTSKELETON_H

#include <cstdint>
#include <string>
#include <vector>

namespace spe {

using ScopeId = uint32_t;
using VarId = uint32_t;
/// Opaque type-class key: two variables may be exchanged by a compact
/// alpha-renaming only if they have equal TypeKey and equal declaration scope.
using TypeKey = uint32_t;

constexpr ScopeId InvalidScope = ~static_cast<ScopeId>(0);

/// One lexical scope. Scope 0 is always the root ("global") scope.
struct SkeletonScope {
  ScopeId Parent = InvalidScope;
};

/// One variable declaration.
struct SkeletonVar {
  std::string Name;
  ScopeId Scope = 0;
  TypeKey Type = 0;
};

/// One hole: a variable-use site to be filled during enumeration.
struct SkeletonHole {
  ScopeId UseScope = 0;
  TypeKey Type = 0;
};

/// A program variant: Values[i] is the variable filling hole i (the paper's
/// characteristic vector s_P).
using Assignment = std::vector<VarId>;

/// A syntactic skeleton with scope and type information.
class AbstractSkeleton {
public:
  AbstractSkeleton() { Scopes.push_back(SkeletonScope{InvalidScope}); }

  /// The root scope id.
  static constexpr ScopeId rootScope() { return 0; }

  /// Adds a scope under \p Parent and \returns its id.
  ScopeId addScope(ScopeId Parent);

  /// Declares a variable in \p Scope and \returns its id.
  VarId addVariable(std::string Name, ScopeId Scope, TypeKey Type);

  /// Appends a hole used in \p Scope with type class \p Type; \returns its
  /// index.
  unsigned addHole(ScopeId Scope, TypeKey Type);

  unsigned numScopes() const { return static_cast<unsigned>(Scopes.size()); }
  unsigned numVars() const { return static_cast<unsigned>(Vars.size()); }
  unsigned numHoles() const { return static_cast<unsigned>(Holes.size()); }

  const SkeletonScope &scope(ScopeId Id) const { return Scopes[Id]; }
  const SkeletonVar &var(VarId Id) const { return Vars[Id]; }
  const SkeletonHole &hole(unsigned Index) const { return Holes[Index]; }

  /// \returns the scope chain from the root down to \p Id, inclusive.
  std::vector<ScopeId> scopeChain(ScopeId Id) const;

  /// \returns true iff \p Ancestor is \p Scope or one of its ancestors.
  bool isAncestorOrSelf(ScopeId Ancestor, ScopeId Scope) const;

  /// \returns the variables of type \p Type declared exactly in \p Scope, in
  /// declaration order.
  std::vector<VarId> varsInScopeOfType(ScopeId Scope, TypeKey Type) const;

  /// \returns the hole variable set v_i for hole \p HoleIndex: all visible,
  /// type-compatible variables in declaration order from the root downwards.
  std::vector<VarId> candidatesFor(unsigned HoleIndex) const;

  /// \returns the ids of direct children of \p Scope.
  std::vector<ScopeId> childrenOf(ScopeId Scope) const;

  /// \returns the distinct type keys that occur among the holes.
  std::vector<TypeKey> holeTypes() const;

  /// Renders the assignment as "<name,...>" for debugging and tests.
  std::string assignmentToString(const Assignment &A) const;

private:
  std::vector<SkeletonScope> Scopes;
  std::vector<SkeletonVar> Vars;
  std::vector<SkeletonHole> Holes;
};

} // namespace spe

#endif // SPE_CORE_ABSTRACTSKELETON_H
