//===- core/SpeEnumerator.h - Non-alpha-equivalent enumeration -----------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The combinatorial SPE algorithm of Section 4: enumerate (and count) one
/// canonical representative per alpha-equivalence class of a skeleton's
/// realizations. Two modes are provided:
///
/// * SpeMode::PaperFaithful implements Algorithm 1 plus Procedure
///   PartitionScope exactly as published. It reproduces every number the
///   paper states (e.g. 36 partitions in Example 6) but, as documented in
///   DESIGN.md Section 4, the published recursion misses classes that use a
///   local variable while occupying fewer than |v^g| global blocks.
///
/// * SpeMode::Exact enumerates every class exactly once. It factorizes an
///   assignment into (a) a *level map* sending each hole to the ancestor
///   scope declaring its variable and (b) one set partition per (scope, type)
///   class, and enumerates restricted growth strings per class. Counting
///   uses a bottom-up tree DP over the scope tree with BigInt arithmetic
///   (no materialization), so Table 1's 10^163-sized spaces are counted in
///   microseconds.
///
/// Both modes are per-skeleton; intra- vs inter-procedural granularity
/// (Section 4.3) is chosen by how the frontend slices programs into
/// skeletons (see skeleton/SkeletonExtractor.h).
///
/// SpeMode::Exact is the default throughout the codebase; PaperFaithful is
/// opt-in for the paper-reproduction benches. Enumeration is pull-based:
/// enumerate() is a thin wrapper over core/AssignmentCursor.h, which also
/// exposes seek(rank) and shard(i, n) for direct addressing and parallel
/// splitting of the variant space.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_CORE_SPEENUMERATOR_H
#define SPE_CORE_SPEENUMERATOR_H

#include "core/AbstractSkeleton.h"
#include "support/BigInt.h"

#include <functional>

namespace spe {

/// Selects the enumeration algorithm. See the file comment.
enum class SpeMode {
  /// Complete, canonical enumeration (the default).
  Exact,
  /// The literal published algorithm (Algorithm 1 + PartitionScope).
  PaperFaithful,
};

/// \returns a human-readable name for \p Mode.
const char *speModeName(SpeMode Mode);

class AssignmentCursor;

/// Enumerates and counts non-alpha-equivalent realizations of a skeleton.
class SpeEnumerator {
public:
  SpeEnumerator(const AbstractSkeleton &Skeleton, SpeMode Mode);

  /// \returns the number of non-alpha-equivalent programs, computed without
  /// enumeration.
  BigInt count() const;

  /// \returns a pull-based cursor over the canonical representatives, in the
  /// same order enumerate() produces them (see core/AssignmentCursor.h).
  AssignmentCursor cursor() const;

  /// Invokes \p Callback on canonical representatives until it returns
  /// false or \p Limit assignments were produced (0 = unlimited).
  /// \returns the number of assignments produced. Thin wrapper over a
  /// cursor.
  uint64_t
  enumerate(const std::function<bool(const Assignment &)> &Callback,
            uint64_t Limit = 0) const;

private:
  const AbstractSkeleton &Skeleton;
  SpeMode Mode;
};

} // namespace spe

#endif // SPE_CORE_SPEENUMERATOR_H
