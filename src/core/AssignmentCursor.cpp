//===- core/AssignmentCursor.cpp - Pull-based rankable enumeration -------===//

#include "core/AssignmentCursor.h"

#include "combinatorics/SetPartitions.h"
#include "core/PaperAlgorithm.h"
#include "core/ScopePartitionDP.h"

#include <cassert>
#include <map>

using namespace spe;

namespace {

/// Paper-faithful pull adapter: a sliding window over the push driver.
/// Refills restart the driver and skip to the window start; consecutive
/// forward refills double the window so a full sequential scan stays
/// O(N) amortized up to MaxChunk (DESIGN.md Section 5.3).
constexpr uint64_t InitialChunk = 1024;
constexpr uint64_t MaxChunk = 65536;

} // namespace

struct AssignmentCursor::Impl {
  const AbstractSkeleton &Sk;
  SpeMode Mode;
  StirlingTable Table;

  BigInt Size;
  BigInt Pos;  ///< Rank of the assignment the next next() produces.
  BigInt End;  ///< Exclusive bound of the active range.

  /// Validity pruning (see core/ValidityPruning.h). Null/empty = disabled.
  const ValidityConstraints *Constraints = nullptr;
  bool HasForbidden = false; ///< Cached !Constraints->empty().
  BigInt Pruned;             ///< Ranks skipped as invalid by next().
  /// Unranking tables for the group-digit validity walk, keyed by (N, K).
  std::map<std::pair<unsigned, unsigned>, RgsRanker> Rankers;

  // --- Exact mode: mixed-radix odometer with DP-backed unranking ---------

  struct GroupState {
    ScopeId Scope;
    std::vector<unsigned> Holes; ///< Absolute hole indices.
    std::vector<VarId> Vars;
    SetPartitionGenerator Gen;
    GroupState(ScopeId Scope, std::vector<unsigned> Holes,
               std::vector<VarId> Vars)
        : Scope(Scope), Holes(std::move(Holes)), Vars(std::move(Vars)),
          Gen(static_cast<unsigned>(this->Holes.size()),
              static_cast<unsigned>(this->Vars.size())) {}
  };
  struct TypeState {
    std::vector<unsigned> LevelIdx; ///< Index into Problem.Domains[i].
    std::vector<GroupState> Groups; ///< Ascending declaration scope.
  };

  std::vector<ExactTypeProblem> Problems;
  std::vector<TypeState> Types;
  std::vector<BigInt> TypeSuffix; ///< TypeSuffix[t] = prod counts of t..T-1.
  Assignment Current;
  BigInt OdoRank;       ///< Rank currently materialized in Current.
  bool OdoValid = false;

  // --- Paper-faithful mode: restartable window over the push driver ------

  std::vector<Assignment> Buffer;
  uint64_t BufferStart = 0;
  uint64_t Chunk = InitialChunk;

  Impl(const AbstractSkeleton &Sk, SpeMode Mode) : Sk(Sk), Mode(Mode) {
    if (Mode == SpeMode::Exact) {
      Problems = buildExactTypeProblems(Sk);
      Types.resize(Problems.size());
      TypeSuffix.assign(Problems.size() + 1, BigInt(1));
      for (size_t T = Problems.size(); T-- > 0;) {
        TypeSuffix[T] =
            countExactType(Sk, Problems[T], Table) * TypeSuffix[T + 1];
      }
      Size = TypeSuffix[0];
      Current.assign(Sk.numHoles(), 0);
    } else {
      Size = countPaperFaithful(Sk);
    }
    End = Size;
  }

  // --- Exact mode --------------------------------------------------------

  void writeGroup(const GroupState &G) {
    const RestrictedGrowthString &RGS = G.Gen.current();
    for (size_t I = 0; I < G.Holes.size(); ++I)
      Current[G.Holes[I]] = G.Vars[RGS[I]];
  }

  /// Rebuilds the per-scope groups of type \p T from its level choices.
  /// Generators are left unstarted; the caller primes or seeks them.
  void rebuildGroups(size_t T) {
    const ExactTypeProblem &P = Problems[T];
    TypeState &TS = Types[T];
    std::map<ScopeId, std::vector<unsigned>> ByScope;
    for (size_t I = 0; I < P.Holes.size(); ++I)
      ByScope[P.Domains[I][TS.LevelIdx[I]]].push_back(P.Holes[I]);
    TS.Groups.clear();
    for (auto &[Scope, Holes] : ByScope)
      TS.Groups.emplace_back(Scope, std::move(Holes),
                             Sk.varsInScopeOfType(Scope, P.Type));
  }

  /// Resets type \p T to its first configuration and writes it.
  void resetType(size_t T) {
    TypeState &TS = Types[T];
    TS.LevelIdx.assign(Problems[T].Holes.size(), 0);
    rebuildGroups(T);
    for (GroupState &G : TS.Groups) {
      G.Gen.reset();
      G.Gen.next();
      writeGroup(G);
    }
  }

  /// Advances type \p T to its next configuration in legacy enumeration
  /// order (partitions vary fastest, then the level odometer). \returns
  /// false when the type's space wrapped around.
  bool advanceType(size_t T) {
    TypeState &TS = Types[T];
    for (size_t GI = TS.Groups.size(); GI-- > 0;) {
      if (TS.Groups[GI].Gen.next()) {
        writeGroup(TS.Groups[GI]);
        for (size_t GJ = GI + 1; GJ < TS.Groups.size(); ++GJ) {
          TS.Groups[GJ].Gen.reset();
          TS.Groups[GJ].Gen.next();
          writeGroup(TS.Groups[GJ]);
        }
        return true;
      }
    }
    const ExactTypeProblem &P = Problems[T];
    for (size_t HI = P.Holes.size(); HI-- > 0;) {
      if (TS.LevelIdx[HI] + 1 < P.Domains[HI].size()) {
        ++TS.LevelIdx[HI];
        for (size_t HJ = HI + 1; HJ < P.Holes.size(); ++HJ)
          TS.LevelIdx[HJ] = 0;
        rebuildGroups(T);
        for (GroupState &G : TS.Groups) {
          G.Gen.next();
          writeGroup(G);
        }
        return true;
      }
    }
    return false;
  }

  /// Advances the whole odometer by one rank. Types later in type order are
  /// less significant, matching the legacy nesting.
  void advanceExact() {
    for (size_t T = Types.size(); T-- > 0;) {
      if (advanceType(T)) {
        for (size_t U = T + 1; U < Types.size(); ++U)
          resetType(U);
        OdoRank += BigInt(1);
        return;
      }
    }
    assert(false && "advanced past the end of the space");
  }

  /// Unranks type \p T's component \p Rank into level choices and partition
  /// generator states, leaving Current holding the decoded assignment.
  /// NOTE: invalidSpanEnd below is a read-only twin of this decoder; keep
  /// their digit orders in lockstep.
  void materializeType(size_t T, const BigInt &Rank) {
    const ExactTypeProblem &P = Problems[T];
    TypeState &TS = Types[T];
    size_t NumHoles = P.Holes.size();
    TS.LevelIdx.assign(NumHoles, 0);

    // Level map first: in lex order the level digits are more significant
    // than every partition. Walk holes in order, charging each candidate
    // level with the completion count of the remaining holes.
    BigInt Rest = Rank;
    std::vector<unsigned> PrefixCounts(Sk.numScopes(), 0);
    for (size_t HI = 0; HI < NumHoles; ++HI) {
      bool Found = false;
      for (size_t D = 0; D < P.Domains[HI].size(); ++D) {
        ScopeId S = P.Domains[HI][D];
        ++PrefixCounts[S];
        BigInt W = countExactCompletions(Sk, P, HI + 1, PrefixCounts, Table);
        if (Rest < W) {
          TS.LevelIdx[HI] = static_cast<unsigned>(D);
          Found = true;
          break;
        }
        Rest -= W;
        --PrefixCounts[S];
      }
      assert(Found && "level unranking exhausted the domain");
      (void)Found;
    }

    // Then the per-scope partitions, group-major with earlier scopes more
    // significant, each group's restricted growth string in lex order.
    rebuildGroups(T);
    std::vector<BigInt> GroupSuffix(TS.Groups.size() + 1, BigInt(1));
    for (size_t GI = TS.Groups.size(); GI-- > 0;) {
      const GroupState &G = TS.Groups[GI];
      GroupSuffix[GI] =
          Table.partitionsUpTo(static_cast<unsigned>(G.Holes.size()),
                               static_cast<unsigned>(G.Vars.size())) *
          GroupSuffix[GI + 1];
    }
    for (size_t GI = 0; GI < TS.Groups.size(); ++GI) {
      GroupState &G = TS.Groups[GI];
      BigInt Q, Rem;
      BigInt::divmod(Rest, GroupSuffix[GI + 1], Q, Rem);
      G.Gen.seekTo(ranker(static_cast<unsigned>(G.Holes.size()),
                          static_cast<unsigned>(G.Vars.size()))
                       .unrank(Q));
      writeGroup(G);
      Rest = Rem;
    }
    assert(Rest.isZero() && "partition unranking did not terminate");
  }

  /// Positions the exact-mode odometer directly on \p Rank (< Size).
  void materializeExact(const BigInt &Rank) {
    BigInt Rest = Rank;
    for (size_t T = 0; T < Types.size(); ++T) {
      BigInt Q, Rem;
      BigInt::divmod(Rest, TypeSuffix[T + 1], Q, Rem);
      materializeType(T, Q);
      Rest = Rem;
    }
    OdoRank = Rank;
    OdoValid = true;
  }

  // --- Paper-faithful mode -----------------------------------------------

  /// Refills the window so that it contains rank \p Target.
  void refillPaper(uint64_t Target) {
    if (Target == BufferStart + Buffer.size() && !Buffer.empty())
      Chunk = std::min(Chunk * 2, MaxChunk);
    else
      Chunk = InitialChunk;
    Buffer.clear();
    BufferStart = Target;
    uint64_t Seen = 0;
    enumeratePaperFaithful(Sk, [&](const Assignment &A) {
      if (Seen++ < Target)
        return true;
      Buffer.push_back(A);
      return Buffer.size() < Chunk;
    });
  }

  const Assignment *nextPaper() {
    assert(Pos.fitsInUint64() &&
           "paper-faithful cursor positions beyond 2^64 are unsupported");
    uint64_t P64 = Pos.toUint64();
    if (P64 < BufferStart || P64 >= BufferStart + Buffer.size())
      refillPaper(P64);
    assert(P64 - BufferStart < Buffer.size() && "paper window refill failed");
    Pos += BigInt(1);
    return &Buffer[P64 - BufferStart];
  }

  // --- Shared ------------------------------------------------------------

  /// Produces the assignment at Pos with no validity filtering (the
  /// pre-pruning next()).
  const Assignment *produce() {
    if (Pos >= End)
      return nullptr;
    if (Mode == SpeMode::PaperFaithful)
      return nextPaper();
    if (!OdoValid)
      materializeExact(Pos);
    else if (OdoRank < Pos)
      advanceExact();
    assert(OdoRank == Pos && "odometer out of sync with position");
    Pos += BigInt(1);
    return &Current;
  }

  const Assignment *next() {
    if (!HasForbidden)
      return produce();
    for (;;) {
      // Valid assignments stay on the O(1)-amortized odometer hot path: a
      // produced assignment costs only an O(holes) byte-table scan. The
      // digit-by-digit rank decode runs solely when a violation is found,
      // to jump the rest of the invalid subrange in one step.
      const Assignment *A = produce();
      if (!A)
        return nullptr;
      if (!assignmentViolates(*A, *Constraints))
        return A;
      BigInt Bad = Pos - BigInt(1); // The rank produce() just consumed.
      BigInt SpanEnd = invalidSpanEnd(Bad, *Constraints);
      if (SpanEnd <= Bad) // Paper mode (no decode) degrades to span 1.
        SpanEnd = Bad + BigInt(1);
      BigInt Clipped = SpanEnd > End ? End : SpanEnd;
      Pruned += Clipped - Bad;
      if (Clipped > Pos) {
        Pos = Clipped;
        OdoValid = false;
      }
    }
  }

  RgsRanker &ranker(unsigned N, unsigned K) {
    auto It = Rankers.find({N, K});
    if (It == Rankers.end())
      It = Rankers.try_emplace({N, K}, N, K).first;
    return It->second;
  }

  /// See AssignmentCursor::invalidSpanEnd. Decodes \p Rank digit by digit,
  /// most significant first (type, then level map, then per-scope
  /// partition), and stops at the first digit whose choice alone is
  /// forbidden; the returned span covers every rank sharing that digit.
  ///
  /// NOTE: this is a read-only twin of materializeType's decoder and must
  /// decode the exact same digit order; any change to enumeration order
  /// there must land here too. The lockstep is pinned by
  /// tests/core_validity_pruning_test.cpp (InvalidSpanEndIsExact) and the
  /// brute-force sweep in tests/testing_validity_property_test.cpp.
  BigInt invalidSpanEnd(const BigInt &Rank, const ValidityConstraints &C) {
    if (Mode != SpeMode::Exact || Rank >= Size)
      return Rank;
    BigInt Rest = Rank;
    for (size_t T = 0; T < Problems.size(); ++T) {
      BigInt R, Low;
      BigInt::divmod(Rest, TypeSuffix[T + 1], R, Low);
      const ExactTypeProblem &P = Problems[T];

      // Level digits: walking holes in order, each candidate level is a
      // digit of width countExactCompletions(remaining holes).
      std::vector<unsigned> PrefixCounts(Sk.numScopes(), 0);
      std::map<ScopeId, std::vector<unsigned>> ByScope;
      for (size_t HI = 0; HI < P.Holes.size(); ++HI) {
        bool Found = false;
        for (size_t D = 0; D < P.Domains[HI].size(); ++D) {
          ScopeId S = P.Domains[HI][D];
          ++PrefixCounts[S];
          BigInt W =
              countExactCompletions(Sk, P, HI + 1, PrefixCounts, Table);
          if (R < W) {
            bool AllForbidden = true;
            for (VarId V : Sk.varsInScopeOfType(S, P.Type)) {
              if (!C.forbids(P.Holes[HI], V)) {
                AllForbidden = false;
                break;
              }
            }
            if (AllForbidden)
              return Rank + (W - R) * TypeSuffix[T + 1] - Low;
            ByScope[S].push_back(P.Holes[HI]);
            Found = true;
            break;
          }
          R -= W;
          --PrefixCounts[S];
        }
        assert(Found && "level decoding exhausted the domain");
        (void)Found;
      }

      // Partition digits: group-major in ascending scope order, each
      // group's restricted growth string one digit.
      struct GroupRef {
        const std::vector<unsigned> *Holes;
        std::vector<VarId> Vars;
      };
      std::vector<GroupRef> Groups;
      Groups.reserve(ByScope.size());
      for (auto &[Scope, Holes] : ByScope)
        Groups.push_back({&Holes, Sk.varsInScopeOfType(Scope, P.Type)});
      std::vector<BigInt> GroupSuffix(Groups.size() + 1, BigInt(1));
      for (size_t GI = Groups.size(); GI-- > 0;) {
        GroupSuffix[GI] =
            Table.partitionsUpTo(
                static_cast<unsigned>(Groups[GI].Holes->size()),
                static_cast<unsigned>(Groups[GI].Vars.size())) *
            GroupSuffix[GI + 1];
      }
      for (size_t GI = 0; GI < Groups.size(); ++GI) {
        BigInt QG, Rem;
        BigInt::divmod(R, GroupSuffix[GI + 1], QG, Rem);
        const GroupRef &G = Groups[GI];
        RestrictedGrowthString RGS =
            ranker(static_cast<unsigned>(G.Holes->size()),
                   static_cast<unsigned>(G.Vars.size()))
                .unrank(QG);
        for (size_t I = 0; I < RGS.size(); ++I) {
          if (C.forbids((*G.Holes)[I], G.Vars[RGS[I]]))
            return Rank + (GroupSuffix[GI + 1] - Rem) * TypeSuffix[T + 1] -
                   Low;
        }
        R = Rem;
      }
      Rest = Low;
    }
    return Rank;
  }

  void seek(const BigInt &Rank) {
    Pos = Rank > Size ? Size : Rank;
    if (Mode == SpeMode::PaperFaithful)
      return; // nextPaper() refills lazily.
    if (Pos < Size)
      materializeExact(Pos);
    else
      OdoValid = false;
  }

  void reset() {
    Pos = BigInt(0);
    if (Mode == SpeMode::PaperFaithful || Size.isZero())
      return; // The paper window refills lazily from rank 0.
    for (size_t T = 0; T < Types.size(); ++T)
      resetType(T);
    OdoRank = BigInt(0);
    OdoValid = true;
  }
};

AssignmentCursor::AssignmentCursor(const AbstractSkeleton &Skeleton,
                                   SpeMode Mode)
    : I(std::make_unique<Impl>(Skeleton, Mode)) {}

AssignmentCursor::~AssignmentCursor() = default;
AssignmentCursor::AssignmentCursor(AssignmentCursor &&Other) noexcept = default;
AssignmentCursor &
AssignmentCursor::operator=(AssignmentCursor &&Other) noexcept = default;

const BigInt &AssignmentCursor::size() const { return I->Size; }
const BigInt &AssignmentCursor::position() const { return I->Pos; }
const BigInt &AssignmentCursor::end() const { return I->End; }

const Assignment *AssignmentCursor::next() { return I->next(); }

void AssignmentCursor::seek(const BigInt &Rank) { I->seek(Rank); }

void AssignmentCursor::reset() { I->reset(); }

void AssignmentCursor::setEnd(const BigInt &Rank) {
  I->End = Rank > I->Size ? I->Size : Rank;
}

void AssignmentCursor::shard(uint64_t Index, uint64_t Count) {
  assert(Count > 0 && Index < Count && "invalid shard request");
  BigInt Begin, NewEnd;
  cursor_detail::shardRange(I->Pos, I->End, Index, Count, Begin, NewEnd);
  I->End = NewEnd;
  I->seek(Begin);
}

void AssignmentCursor::setConstraints(const ValidityConstraints *C) {
  I->Constraints = C;
  I->HasForbidden = C != nullptr && !C->empty();
}

const BigInt &AssignmentCursor::pruned() const { return I->Pruned; }

CursorState AssignmentCursor::saveState() const {
  return {I->Pos.toString(), I->End.toString(), I->Pruned.toString()};
}

bool AssignmentCursor::restoreState(const CursorState &State) {
  BigInt Pos, End, Pruned;
  if (!cursor_detail::parseDecimal(State.Position, Pos) ||
      !cursor_detail::parseDecimal(State.End, End) ||
      !cursor_detail::parseDecimal(State.Pruned, Pruned))
    return false;
  if (Pos > End || End > I->Size)
    return false;
  I->End = End;
  I->seek(Pos);
  I->Pruned = Pruned;
  return true;
}

BigInt AssignmentCursor::invalidSpanEnd(const BigInt &Rank,
                                        const ValidityConstraints &C) const {
  return I->invalidSpanEnd(Rank, C);
}

