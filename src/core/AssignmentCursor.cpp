//===- core/AssignmentCursor.cpp - Pull-based rankable enumeration -------===//

#include "core/AssignmentCursor.h"

#include "combinatorics/SetPartitions.h"
#include "core/PaperAlgorithm.h"
#include "core/ScopePartitionDP.h"

#include <cassert>
#include <map>

using namespace spe;

namespace {

/// Paper-faithful pull adapter: a sliding window over the push driver.
/// Refills restart the driver and skip to the window start; consecutive
/// forward refills double the window so a full sequential scan stays
/// O(N) amortized up to MaxChunk (DESIGN.md Section 5.3).
constexpr uint64_t InitialChunk = 1024;
constexpr uint64_t MaxChunk = 65536;

} // namespace

struct AssignmentCursor::Impl {
  const AbstractSkeleton &Sk;
  SpeMode Mode;
  StirlingTable Table;

  BigInt Size;
  BigInt Pos;  ///< Rank of the assignment the next next() produces.
  BigInt End;  ///< Exclusive bound of the active range.

  // --- Exact mode: mixed-radix odometer with DP-backed unranking ---------

  struct GroupState {
    ScopeId Scope;
    std::vector<unsigned> Holes; ///< Absolute hole indices.
    std::vector<VarId> Vars;
    SetPartitionGenerator Gen;
    GroupState(ScopeId Scope, std::vector<unsigned> Holes,
               std::vector<VarId> Vars)
        : Scope(Scope), Holes(std::move(Holes)), Vars(std::move(Vars)),
          Gen(static_cast<unsigned>(this->Holes.size()),
              static_cast<unsigned>(this->Vars.size())) {}
  };
  struct TypeState {
    std::vector<unsigned> LevelIdx; ///< Index into Problem.Domains[i].
    std::vector<GroupState> Groups; ///< Ascending declaration scope.
  };

  std::vector<ExactTypeProblem> Problems;
  std::vector<TypeState> Types;
  std::vector<BigInt> TypeSuffix; ///< TypeSuffix[t] = prod counts of t..T-1.
  Assignment Current;
  BigInt OdoRank;       ///< Rank currently materialized in Current.
  bool OdoValid = false;

  // --- Paper-faithful mode: restartable window over the push driver ------

  std::vector<Assignment> Buffer;
  uint64_t BufferStart = 0;
  uint64_t Chunk = InitialChunk;

  Impl(const AbstractSkeleton &Sk, SpeMode Mode) : Sk(Sk), Mode(Mode) {
    if (Mode == SpeMode::Exact) {
      Problems = buildExactTypeProblems(Sk);
      Types.resize(Problems.size());
      TypeSuffix.assign(Problems.size() + 1, BigInt(1));
      for (size_t T = Problems.size(); T-- > 0;) {
        TypeSuffix[T] =
            countExactType(Sk, Problems[T], Table) * TypeSuffix[T + 1];
      }
      Size = TypeSuffix[0];
      Current.assign(Sk.numHoles(), 0);
    } else {
      Size = countPaperFaithful(Sk);
    }
    End = Size;
  }

  // --- Exact mode --------------------------------------------------------

  void writeGroup(const GroupState &G) {
    const RestrictedGrowthString &RGS = G.Gen.current();
    for (size_t I = 0; I < G.Holes.size(); ++I)
      Current[G.Holes[I]] = G.Vars[RGS[I]];
  }

  /// Rebuilds the per-scope groups of type \p T from its level choices.
  /// Generators are left unstarted; the caller primes or seeks them.
  void rebuildGroups(size_t T) {
    const ExactTypeProblem &P = Problems[T];
    TypeState &TS = Types[T];
    std::map<ScopeId, std::vector<unsigned>> ByScope;
    for (size_t I = 0; I < P.Holes.size(); ++I)
      ByScope[P.Domains[I][TS.LevelIdx[I]]].push_back(P.Holes[I]);
    TS.Groups.clear();
    for (auto &[Scope, Holes] : ByScope)
      TS.Groups.emplace_back(Scope, std::move(Holes),
                             Sk.varsInScopeOfType(Scope, P.Type));
  }

  /// Resets type \p T to its first configuration and writes it.
  void resetType(size_t T) {
    TypeState &TS = Types[T];
    TS.LevelIdx.assign(Problems[T].Holes.size(), 0);
    rebuildGroups(T);
    for (GroupState &G : TS.Groups) {
      G.Gen.reset();
      G.Gen.next();
      writeGroup(G);
    }
  }

  /// Advances type \p T to its next configuration in legacy enumeration
  /// order (partitions vary fastest, then the level odometer). \returns
  /// false when the type's space wrapped around.
  bool advanceType(size_t T) {
    TypeState &TS = Types[T];
    for (size_t GI = TS.Groups.size(); GI-- > 0;) {
      if (TS.Groups[GI].Gen.next()) {
        writeGroup(TS.Groups[GI]);
        for (size_t GJ = GI + 1; GJ < TS.Groups.size(); ++GJ) {
          TS.Groups[GJ].Gen.reset();
          TS.Groups[GJ].Gen.next();
          writeGroup(TS.Groups[GJ]);
        }
        return true;
      }
    }
    const ExactTypeProblem &P = Problems[T];
    for (size_t HI = P.Holes.size(); HI-- > 0;) {
      if (TS.LevelIdx[HI] + 1 < P.Domains[HI].size()) {
        ++TS.LevelIdx[HI];
        for (size_t HJ = HI + 1; HJ < P.Holes.size(); ++HJ)
          TS.LevelIdx[HJ] = 0;
        rebuildGroups(T);
        for (GroupState &G : TS.Groups) {
          G.Gen.next();
          writeGroup(G);
        }
        return true;
      }
    }
    return false;
  }

  /// Advances the whole odometer by one rank. Types later in type order are
  /// less significant, matching the legacy nesting.
  void advanceExact() {
    for (size_t T = Types.size(); T-- > 0;) {
      if (advanceType(T)) {
        for (size_t U = T + 1; U < Types.size(); ++U)
          resetType(U);
        OdoRank += BigInt(1);
        return;
      }
    }
    assert(false && "advanced past the end of the space");
  }

  /// Unranks type \p T's component \p Rank into level choices and partition
  /// generator states, leaving Current holding the decoded assignment.
  void materializeType(size_t T, const BigInt &Rank) {
    const ExactTypeProblem &P = Problems[T];
    TypeState &TS = Types[T];
    size_t NumHoles = P.Holes.size();
    TS.LevelIdx.assign(NumHoles, 0);

    // Level map first: in lex order the level digits are more significant
    // than every partition. Walk holes in order, charging each candidate
    // level with the completion count of the remaining holes.
    BigInt Rest = Rank;
    std::vector<unsigned> PrefixCounts(Sk.numScopes(), 0);
    for (size_t HI = 0; HI < NumHoles; ++HI) {
      bool Found = false;
      for (size_t D = 0; D < P.Domains[HI].size(); ++D) {
        ScopeId S = P.Domains[HI][D];
        ++PrefixCounts[S];
        BigInt W = countExactCompletions(Sk, P, HI + 1, PrefixCounts, Table);
        if (Rest < W) {
          TS.LevelIdx[HI] = static_cast<unsigned>(D);
          Found = true;
          break;
        }
        Rest -= W;
        --PrefixCounts[S];
      }
      assert(Found && "level unranking exhausted the domain");
      (void)Found;
    }

    // Then the per-scope partitions, group-major with earlier scopes more
    // significant, each group's restricted growth string in lex order.
    rebuildGroups(T);
    std::vector<BigInt> GroupSuffix(TS.Groups.size() + 1, BigInt(1));
    for (size_t GI = TS.Groups.size(); GI-- > 0;) {
      const GroupState &G = TS.Groups[GI];
      GroupSuffix[GI] =
          Table.partitionsUpTo(static_cast<unsigned>(G.Holes.size()),
                               static_cast<unsigned>(G.Vars.size())) *
          GroupSuffix[GI + 1];
    }
    for (size_t GI = 0; GI < TS.Groups.size(); ++GI) {
      GroupState &G = TS.Groups[GI];
      BigInt Q, Rem;
      BigInt::divmod(Rest, GroupSuffix[GI + 1], Q, Rem);
      RgsRanker Ranker(static_cast<unsigned>(G.Holes.size()),
                       static_cast<unsigned>(G.Vars.size()));
      G.Gen.seekTo(Ranker.unrank(Q));
      writeGroup(G);
      Rest = Rem;
    }
    assert(Rest.isZero() && "partition unranking did not terminate");
  }

  /// Positions the exact-mode odometer directly on \p Rank (< Size).
  void materializeExact(const BigInt &Rank) {
    BigInt Rest = Rank;
    for (size_t T = 0; T < Types.size(); ++T) {
      BigInt Q, Rem;
      BigInt::divmod(Rest, TypeSuffix[T + 1], Q, Rem);
      materializeType(T, Q);
      Rest = Rem;
    }
    OdoRank = Rank;
    OdoValid = true;
  }

  // --- Paper-faithful mode -----------------------------------------------

  /// Refills the window so that it contains rank \p Target.
  void refillPaper(uint64_t Target) {
    if (Target == BufferStart + Buffer.size() && !Buffer.empty())
      Chunk = std::min(Chunk * 2, MaxChunk);
    else
      Chunk = InitialChunk;
    Buffer.clear();
    BufferStart = Target;
    uint64_t Seen = 0;
    enumeratePaperFaithful(Sk, [&](const Assignment &A) {
      if (Seen++ < Target)
        return true;
      Buffer.push_back(A);
      return Buffer.size() < Chunk;
    });
  }

  const Assignment *nextPaper() {
    assert(Pos.fitsInUint64() &&
           "paper-faithful cursor positions beyond 2^64 are unsupported");
    uint64_t P64 = Pos.toUint64();
    if (P64 < BufferStart || P64 >= BufferStart + Buffer.size())
      refillPaper(P64);
    assert(P64 - BufferStart < Buffer.size() && "paper window refill failed");
    Pos += BigInt(1);
    return &Buffer[P64 - BufferStart];
  }

  // --- Shared ------------------------------------------------------------

  const Assignment *next() {
    if (Pos >= End)
      return nullptr;
    if (Mode == SpeMode::PaperFaithful)
      return nextPaper();
    if (!OdoValid)
      materializeExact(Pos);
    else if (OdoRank < Pos)
      advanceExact();
    assert(OdoRank == Pos && "odometer out of sync with position");
    Pos += BigInt(1);
    return &Current;
  }

  void seek(const BigInt &Rank) {
    Pos = Rank > Size ? Size : Rank;
    if (Mode == SpeMode::PaperFaithful)
      return; // nextPaper() refills lazily.
    if (Pos < Size)
      materializeExact(Pos);
    else
      OdoValid = false;
  }

  void reset() {
    Pos = BigInt(0);
    if (Mode == SpeMode::PaperFaithful || Size.isZero())
      return; // The paper window refills lazily from rank 0.
    for (size_t T = 0; T < Types.size(); ++T)
      resetType(T);
    OdoRank = BigInt(0);
    OdoValid = true;
  }
};

AssignmentCursor::AssignmentCursor(const AbstractSkeleton &Skeleton,
                                   SpeMode Mode)
    : I(std::make_unique<Impl>(Skeleton, Mode)) {}

AssignmentCursor::~AssignmentCursor() = default;
AssignmentCursor::AssignmentCursor(AssignmentCursor &&Other) noexcept = default;
AssignmentCursor &
AssignmentCursor::operator=(AssignmentCursor &&Other) noexcept = default;

const BigInt &AssignmentCursor::size() const { return I->Size; }
const BigInt &AssignmentCursor::position() const { return I->Pos; }
const BigInt &AssignmentCursor::end() const { return I->End; }

const Assignment *AssignmentCursor::next() { return I->next(); }

void AssignmentCursor::seek(const BigInt &Rank) { I->seek(Rank); }

void AssignmentCursor::reset() { I->reset(); }

void AssignmentCursor::setEnd(const BigInt &Rank) {
  I->End = Rank > I->Size ? I->Size : Rank;
}

void AssignmentCursor::shard(uint64_t Index, uint64_t Count) {
  assert(Count > 0 && Index < Count && "invalid shard request");
  BigInt Begin, NewEnd;
  cursor_detail::shardRange(I->Pos, I->End, Index, Count, Begin, NewEnd);
  I->End = NewEnd;
  I->seek(Begin);
}

