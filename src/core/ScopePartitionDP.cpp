//===- core/ScopePartitionDP.cpp - Exact-mode counting tree DP -----------===//

#include "core/ScopePartitionDP.h"

#include <functional>

using namespace spe;

std::vector<ExactTypeProblem>
spe::buildExactTypeProblems(const AbstractSkeleton &Sk) {
  std::vector<ExactTypeProblem> Problems;
  for (TypeKey T : Sk.holeTypes()) {
    ExactTypeProblem P;
    P.Type = T;
    for (unsigned H = 0; H < Sk.numHoles(); ++H)
      if (Sk.hole(H).Type == T)
        P.Holes.push_back(H);
    for (unsigned H : P.Holes) {
      std::vector<ScopeId> Domain;
      for (ScopeId S : Sk.scopeChain(Sk.hole(H).UseScope))
        if (!Sk.varsInScopeOfType(S, T).empty())
          Domain.push_back(S);
      P.Domains.push_back(std::move(Domain));
    }
    Problems.push_back(std::move(P));
  }
  return Problems;
}

namespace {

/// Convolves two polynomial-style count vectors.
std::vector<BigInt> convolve(const std::vector<BigInt> &A,
                             const std::vector<BigInt> &B) {
  std::vector<BigInt> Result(A.size() + B.size() - 1, BigInt(0));
  for (size_t I = 0; I < A.size(); ++I) {
    if (A[I].isZero())
      continue;
    for (size_t J = 0; J < B.size(); ++J)
      Result[I + J] += A[I] * B[J];
  }
  return Result;
}

} // namespace

/// g_s[j] = number of ways to fix stopping scopes and per-scope partitions
/// for the free type-t holes in subtree(s) while forwarding j holes upwards.
/// Pinned prefix holes do not travel through the pool; they only shift the
/// partition factor of their pinned scope.
BigInt spe::countExactCompletions(const AbstractSkeleton &Sk,
                                  const ExactTypeProblem &P, size_t FromHole,
                                  const std::vector<unsigned> &PrefixCounts,
                                  StirlingTable &Table) {
  std::vector<unsigned> UseCount(Sk.numScopes(), 0);
  std::vector<unsigned> VarCount(Sk.numScopes(), 0);
  for (size_t I = FromHole; I < P.Holes.size(); ++I)
    ++UseCount[Sk.hole(P.Holes[I]).UseScope];
  for (VarId V = 0; V < Sk.numVars(); ++V)
    if (Sk.var(V).Type == P.Type)
      ++VarCount[Sk.var(V).Scope];

  std::function<std::vector<BigInt>(ScopeId)> Solve =
      [&](ScopeId S) -> std::vector<BigInt> {
    std::vector<BigInt> Pool{BigInt(1)};
    for (ScopeId Child : Sk.childrenOf(S))
      Pool = convolve(Pool, Solve(Child));
    // The scope's own free holes always join the pool here.
    unsigned Shift = UseCount[S];
    if (Shift != 0) {
      std::vector<BigInt> Shifted(Pool.size() + Shift, BigInt(0));
      for (size_t I = 0; I < Pool.size(); ++I)
        Shifted[I + Shift] = std::move(Pool[I]);
      Pool = std::move(Shifted);
    }
    // Choose how many pool holes stop at this scope; the partition factor
    // covers them together with the holes the prefix pinned here.
    std::vector<BigInt> G(Pool.size(), BigInt(0));
    for (size_t PoolSize = 0; PoolSize < Pool.size(); ++PoolSize) {
      if (Pool[PoolSize].isZero())
        continue;
      for (size_t Stopped = 0; Stopped <= PoolSize; ++Stopped) {
        BigInt Ways = Table.partitionsUpTo(
            PrefixCounts[S] + static_cast<unsigned>(Stopped), VarCount[S]);
        if (Ways.isZero())
          continue;
        Ways *= Table.binomial(static_cast<unsigned>(PoolSize),
                               static_cast<unsigned>(Stopped));
        Ways *= Pool[PoolSize];
        G[PoolSize - Stopped] += Ways;
      }
    }
    return G;
  };

  std::vector<BigInt> RootG = Solve(AbstractSkeleton::rootScope());
  // No hole may be forwarded past the root.
  return RootG.empty() ? BigInt(0) : RootG[0];
}

BigInt spe::countExactType(const AbstractSkeleton &Sk,
                           const ExactTypeProblem &P, StirlingTable &Table) {
  std::vector<unsigned> NoPrefix(Sk.numScopes(), 0);
  return countExactCompletions(Sk, P, 0, NoPrefix, Table);
}

BigInt spe::countExactClasses(const AbstractSkeleton &Sk) {
  StirlingTable Table;
  BigInt Total(1);
  for (const ExactTypeProblem &P : buildExactTypeProblems(Sk)) {
    Total *= countExactType(Sk, P, Table);
    if (Total.isZero())
      return Total;
  }
  return Total;
}
