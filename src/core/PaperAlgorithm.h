//===- core/PaperAlgorithm.h - Published Algorithm 1 + PartitionScope ----===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The literal published SPE algorithm (Algorithm 1 plus Procedure
/// PartitionScope), backing SpeMode::PaperFaithful. It reproduces every
/// number the paper states but, as documented in DESIGN.md Section 4, the
/// published recursion misses classes that use a local variable while
/// occupying fewer than |v^g| global blocks.
///
/// This is a push-style streaming enumerator; AssignmentCursor adapts it to
/// the pull interface with a restartable window (DESIGN.md Section 5.3).
///
//===----------------------------------------------------------------------===//

#ifndef SPE_CORE_PAPERALGORITHM_H
#define SPE_CORE_PAPERALGORITHM_H

#include "core/AbstractSkeleton.h"
#include "support/BigInt.h"

#include <functional>

namespace spe {

/// Closed-form count of the assignments Algorithm 1 produces (S'_f plus the
/// PartitionScope sum, multiplied across types).
BigInt countPaperFaithful(const AbstractSkeleton &Sk);

/// Streams Algorithm 1's assignments; stops when \p Callback returns false
/// or \p Limit assignments were produced (0 = unlimited). \returns the
/// number of assignments produced.
uint64_t enumeratePaperFaithful(
    const AbstractSkeleton &Sk,
    const std::function<bool(const Assignment &)> &Callback,
    uint64_t Limit = 0);

} // namespace spe

#endif // SPE_CORE_PAPERALGORITHM_H
