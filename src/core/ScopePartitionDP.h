//===- core/ScopePartitionDP.h - Exact-mode counting tree DP -------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exact-mode combinatorial core shared by SpeEnumerator (counting) and
/// AssignmentCursor (unranking). An exact-mode alpha-equivalence class of one
/// type factorizes into a *level map* sending each hole to the ancestor scope
/// declaring its variable plus one set partition per scope; the number of
/// classes is a bottom-up tree DP over the scope tree with BigInt arithmetic
/// (no materialization).
///
/// For the cursor's seek/shard the DP is generalized to *completion counting*:
/// given a prefix of holes whose levels are already pinned, count the classes
/// over the remaining holes. Unranking a level map then walks holes in order,
/// subtracting completion counts per candidate level (DESIGN.md Section 5).
///
//===----------------------------------------------------------------------===//

#ifndef SPE_CORE_SCOPEPARTITIONDP_H
#define SPE_CORE_SCOPEPARTITIONDP_H

#include "combinatorics/Stirling.h"
#include "core/AbstractSkeleton.h"
#include "support/BigInt.h"

#include <vector>

namespace spe {

/// The exact-mode enumeration problem for one type class.
struct ExactTypeProblem {
  TypeKey Type = 0;
  /// Absolute hole indices of this type, in hole order.
  std::vector<unsigned> Holes;
  /// Domains[i]: scopes on the chain of Holes[i] that declare at least one
  /// variable of this type (the candidate declaration levels), in root-first
  /// chain order.
  std::vector<std::vector<ScopeId>> Domains;
};

/// Builds one problem per type key occurring among the holes, in
/// AbstractSkeleton::holeTypes() order.
std::vector<ExactTypeProblem>
buildExactTypeProblems(const AbstractSkeleton &Sk);

/// Counts the exact-mode classes over the free holes Holes[FromHole..] of
/// \p P, given that PrefixCounts[s] holes were already pinned to scope s by
/// the fixed prefix Holes[0..FromHole-1]. Each scope contributes a
/// partitions-into-at-most-|vars| factor over all of its holes, pinned and
/// free together. With FromHole = 0 and a zero prefix this is the plain
/// per-type class count.
BigInt countExactCompletions(const AbstractSkeleton &Sk,
                             const ExactTypeProblem &P, size_t FromHole,
                             const std::vector<unsigned> &PrefixCounts,
                             StirlingTable &Table);

/// The class count of one type (no prefix).
BigInt countExactType(const AbstractSkeleton &Sk, const ExactTypeProblem &P,
                      StirlingTable &Table);

/// The exact-mode class count of the whole skeleton: the product over types.
BigInt countExactClasses(const AbstractSkeleton &Sk);

} // namespace spe

#endif // SPE_CORE_SCOPEPARTITIONDP_H
