//===- core/SpeEnumerator.cpp - Non-alpha-equivalent enumeration ---------===//

#include "core/SpeEnumerator.h"

#include "combinatorics/SetPartitions.h"
#include "combinatorics/Stirling.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace spe;

const char *spe::speModeName(SpeMode Mode) {
  switch (Mode) {
  case SpeMode::Exact:
    return "exact";
  case SpeMode::PaperFaithful:
    return "paper-faithful";
  }
  return "unknown";
}

SpeEnumerator::SpeEnumerator(const AbstractSkeleton &Skeleton, SpeMode Mode)
    : Skeleton(Skeleton), Mode(Mode) {}

namespace {

/// Per-type working data shared by both modes.
struct TypeProblem {
  TypeKey Type = 0;
  /// Absolute hole indices of this type, in hole order.
  std::vector<unsigned> Holes;

  // --- Exact mode ---
  /// DomainPerHole[i]: scopes on the chain of Holes[i] that declare at least
  /// one variable of this type (the possible declaration levels).
  std::vector<std::vector<ScopeId>> Domains;
  /// Working vector: chosen declaration level per hole of this type. Owned
  /// per type because per-type enumerations nest recursively.
  std::vector<ScopeId> Levels;

  // --- Paper-faithful mode (two-level projection) ---
  /// Root-declared variables of this type, declaration order.
  std::vector<VarId> RootVars;
  /// Hole indices whose use scope is the root ("global holes" G).
  std::vector<unsigned> GlobalHoles;
  /// One entry per non-root use scope that has holes.
  struct LocalScope {
    ScopeId Scope;
    std::vector<unsigned> Holes;
    /// Variables on the scope chain strictly below the root, chain order.
    std::vector<VarId> Vars;
  };
  std::vector<LocalScope> LocalScopes;
};

/// Builds the per-type problems for a skeleton.
std::vector<TypeProblem> buildTypeProblems(const AbstractSkeleton &Sk) {
  std::vector<TypeProblem> Problems;
  for (TypeKey T : Sk.holeTypes()) {
    TypeProblem P;
    P.Type = T;
    for (unsigned H = 0; H < Sk.numHoles(); ++H)
      if (Sk.hole(H).Type == T)
        P.Holes.push_back(H);

    // Exact-mode domains.
    for (unsigned H : P.Holes) {
      std::vector<ScopeId> Domain;
      for (ScopeId S : Sk.scopeChain(Sk.hole(H).UseScope))
        if (!Sk.varsInScopeOfType(S, T).empty())
          Domain.push_back(S);
      P.Domains.push_back(std::move(Domain));
    }

    // Paper-mode projection.
    P.RootVars = Sk.varsInScopeOfType(AbstractSkeleton::rootScope(), T);
    std::map<ScopeId, std::vector<unsigned>> LocalHoles;
    for (unsigned H : P.Holes) {
      ScopeId Use = Sk.hole(H).UseScope;
      if (Use == AbstractSkeleton::rootScope())
        P.GlobalHoles.push_back(H);
      else
        LocalHoles[Use].push_back(H);
    }
    for (auto &[Scope, Holes] : LocalHoles) {
      TypeProblem::LocalScope L;
      L.Scope = Scope;
      L.Holes = Holes;
      for (ScopeId S : Sk.scopeChain(Scope)) {
        if (S == AbstractSkeleton::rootScope())
          continue;
        std::vector<VarId> Here = Sk.varsInScopeOfType(S, T);
        L.Vars.insert(L.Vars.end(), Here.begin(), Here.end());
      }
      P.LocalScopes.push_back(std::move(L));
    }
    Problems.push_back(std::move(P));
  }
  return Problems;
}

/// Streams canonical assignments for all types, with early termination.
class EnumerationDriver {
public:
  EnumerationDriver(const AbstractSkeleton &Sk, SpeMode Mode,
                    const std::function<bool(const Assignment &)> &Callback,
                    uint64_t Limit)
      : Sk(Sk), Mode(Mode), Callback(Callback), Limit(Limit),
        Problems(buildTypeProblems(Sk)), Current(Sk.numHoles(), 0) {}

  uint64_t run() {
    enumerateTypes(0);
    return Produced;
  }

private:
  /// Emits the fully built assignment. \returns false to stop enumeration.
  bool emit() {
    ++Produced;
    if (!Callback(Current))
      return false;
    return Limit == 0 || Produced < Limit;
  }

  bool enumerateTypes(size_t TI) {
    if (TI == Problems.size())
      return emit();
    TypeProblem &P = Problems[TI];
    if (Mode == SpeMode::Exact) {
      P.Levels.assign(P.Holes.size(), 0);
      return exactAssignLevels(P, TI, 0);
    }
    return paperEnumerate(P, TI);
  }

  // --- Exact mode -------------------------------------------------------

  bool exactAssignLevels(TypeProblem &P, size_t TI, size_t HI) {
    if (HI == P.Holes.size())
      return exactPartitionGroups(P, TI);
    for (ScopeId S : P.Domains[HI]) {
      P.Levels[HI] = S;
      if (!exactAssignLevels(P, TI, HI + 1))
        return false;
    }
    return true;
  }

  struct Group {
    std::vector<unsigned> Holes; // Absolute hole indices.
    std::vector<VarId> Vars;
  };

  bool exactPartitionGroups(TypeProblem &P, size_t TI) {
    // Group holes by chosen declaration level, in ascending scope order.
    std::map<ScopeId, std::vector<unsigned>> ByScope;
    for (size_t I = 0; I < P.Holes.size(); ++I)
      ByScope[P.Levels[I]].push_back(P.Holes[I]);
    std::vector<Group> Groups;
    for (auto &[Scope, Holes] : ByScope) {
      Group G;
      G.Holes = Holes;
      G.Vars = Sk.varsInScopeOfType(Scope, P.Type);
      assert(!G.Vars.empty() && "level domain had no variables");
      Groups.push_back(std::move(G));
    }
    return exactGroupProduct(Groups, 0, TI);
  }

  bool exactGroupProduct(const std::vector<Group> &Groups, size_t GI,
                         size_t TI) {
    if (GI == Groups.size())
      return enumerateTypes(TI + 1);
    const Group &G = Groups[GI];
    SetPartitionGenerator Gen(static_cast<unsigned>(G.Holes.size()),
                              static_cast<unsigned>(G.Vars.size()));
    while (Gen.next()) {
      const RestrictedGrowthString &RGS = Gen.current();
      for (size_t I = 0; I < G.Holes.size(); ++I)
        Current[G.Holes[I]] = G.Vars[RGS[I]];
      if (!exactGroupProduct(Groups, GI + 1, TI))
        return false;
    }
    return true;
  }

  // --- Paper-faithful mode ----------------------------------------------

  bool paperEnumerate(TypeProblem &P, size_t TI) {
    // Algorithm 1 line 3: S'_f, all holes filled with root variables, at
    // most |v_f| blocks.
    unsigned NumRootVars = static_cast<unsigned>(P.RootVars.size());
    SetPartitionGenerator AllGlobal(static_cast<unsigned>(P.Holes.size()),
                                    NumRootVars);
    while (AllGlobal.next()) {
      const RestrictedGrowthString &RGS = AllGlobal.current();
      for (size_t I = 0; I < P.Holes.size(); ++I)
        Current[P.Holes[I]] = P.RootVars[RGS[I]];
      if (!enumerateTypes(TI + 1))
        return false;
    }
    // Lines 4-5: Procedure PartitionScope over the local scopes. When there
    // are no local holes the S'_f term is already complete.
    if (P.LocalScopes.empty())
      return true;
    std::vector<unsigned> Promoted;
    return paperScopes(P, TI, 0, Promoted);
  }

  bool paperScopes(TypeProblem &P, size_t TI, size_t SI,
                   std::vector<unsigned> &Promoted) {
    if (SI == P.LocalScopes.size())
      return paperGlobalPartition(P, TI, Promoted);
    const TypeProblem::LocalScope &L = P.LocalScopes[SI];
    unsigned U = static_cast<unsigned>(L.Holes.size());
    unsigned V = static_cast<unsigned>(L.Vars.size());
    // Line 2: promote k holes, k in [0, u-1].
    for (unsigned K = 0; K < U; ++K) {
      CombinationGenerator Combos(U, K);
      while (Combos.next()) {
        std::vector<bool> IsPromoted(U, false);
        for (uint32_t Index : Combos.current())
          IsPromoted[Index] = true;
        std::vector<unsigned> Rest;
        for (unsigned I = 0; I < U; ++I) {
          if (IsPromoted[I])
            Promoted.push_back(L.Holes[I]);
          else
            Rest.push_back(L.Holes[I]);
        }
        // Lines 7-8: partition the remaining local holes into exactly j
        // non-empty blocks for every j in [1, v].
        for (unsigned J = 1; J <= V && J <= Rest.size(); ++J) {
          ExactBlockPartitionGenerator LocalGen(
              static_cast<unsigned>(Rest.size()), J);
          while (LocalGen.next()) {
            const RestrictedGrowthString &RGS = LocalGen.current();
            for (size_t I = 0; I < Rest.size(); ++I)
              Current[Rest[I]] = L.Vars[RGS[I]];
            if (!paperScopes(P, TI, SI + 1, Promoted))
              return false;
          }
        }
        Promoted.resize(Promoted.size() - K);
      }
    }
    return true;
  }

  bool paperGlobalPartition(TypeProblem &P, size_t TI,
                            const std::vector<unsigned> &Promoted) {
    // Line 14: partition G (global holes plus promoted holes) into exactly
    // |v^g| non-empty blocks.
    std::vector<unsigned> G = P.GlobalHoles;
    G.insert(G.end(), Promoted.begin(), Promoted.end());
    std::sort(G.begin(), G.end());
    unsigned NumRootVars = static_cast<unsigned>(P.RootVars.size());
    if (G.empty()) {
      // Stirling {0 over k} is 1 only for k = 0.
      if (NumRootVars != 0)
        return true;
      return enumerateTypes(TI + 1);
    }
    ExactBlockPartitionGenerator Gen(static_cast<unsigned>(G.size()),
                                     NumRootVars);
    while (Gen.next()) {
      const RestrictedGrowthString &RGS = Gen.current();
      for (size_t I = 0; I < G.size(); ++I)
        Current[G[I]] = P.RootVars[RGS[I]];
      if (!enumerateTypes(TI + 1))
        return false;
    }
    return true;
  }

  const AbstractSkeleton &Sk;
  SpeMode Mode;
  const std::function<bool(const Assignment &)> &Callback;
  uint64_t Limit;
  std::vector<TypeProblem> Problems;
  Assignment Current;
  uint64_t Produced = 0;
};

/// Convolves two polynomial-style count vectors.
std::vector<BigInt> convolve(const std::vector<BigInt> &A,
                             const std::vector<BigInt> &B) {
  std::vector<BigInt> Result(A.size() + B.size() - 1, BigInt(0));
  for (size_t I = 0; I < A.size(); ++I) {
    if (A[I].isZero())
      continue;
    for (size_t J = 0; J < B.size(); ++J)
      Result[I + J] += A[I] * B[J];
  }
  return Result;
}

/// Exact-mode count for one type: bottom-up tree DP over the scope tree.
/// g_s[j] = number of ways to fix stopping scopes and per-scope partitions
/// for all type-t holes in subtree(s) while forwarding j holes upwards.
BigInt countTypeExact(const AbstractSkeleton &Sk, const TypeProblem &P,
                      StirlingTable &Table) {
  // Holes used at each scope, and variables declared at each scope.
  std::vector<unsigned> UseCount(Sk.numScopes(), 0);
  std::vector<unsigned> VarCount(Sk.numScopes(), 0);
  for (unsigned H : P.Holes)
    ++UseCount[Sk.hole(H).UseScope];
  for (VarId V = 0; V < Sk.numVars(); ++V)
    if (Sk.var(V).Type == P.Type)
      ++VarCount[Sk.var(V).Scope];

  // Post-order DP via explicit recursion.
  std::function<std::vector<BigInt>(ScopeId)> Solve =
      [&](ScopeId S) -> std::vector<BigInt> {
    std::vector<BigInt> Pool{BigInt(1)};
    for (ScopeId Child : Sk.childrenOf(S)) {
      std::vector<BigInt> ChildG = Solve(Child);
      Pool = convolve(Pool, ChildG);
    }
    // The scope's own holes always join the pool here.
    unsigned Shift = UseCount[S];
    if (Shift != 0) {
      std::vector<BigInt> Shifted(Pool.size() + Shift, BigInt(0));
      for (size_t I = 0; I < Pool.size(); ++I)
        Shifted[I + Shift] = std::move(Pool[I]);
      Pool = std::move(Shifted);
    }
    // Choose how many pool holes stop at this scope.
    std::vector<BigInt> G(Pool.size(), BigInt(0));
    for (size_t PoolSize = 0; PoolSize < Pool.size(); ++PoolSize) {
      if (Pool[PoolSize].isZero())
        continue;
      for (size_t Stopped = 0; Stopped <= PoolSize; ++Stopped) {
        BigInt Ways = Table.partitionsUpTo(static_cast<unsigned>(Stopped),
                                           VarCount[S]);
        if (Ways.isZero())
          continue;
        Ways *= Table.binomial(static_cast<unsigned>(PoolSize),
                               static_cast<unsigned>(Stopped));
        Ways *= Pool[PoolSize];
        G[PoolSize - Stopped] += Ways;
      }
    }
    return G;
  };

  std::vector<BigInt> RootG = Solve(AbstractSkeleton::rootScope());
  // No hole may be forwarded past the root.
  return RootG.empty() ? BigInt(0) : RootG[0];
}

/// Paper-faithful count for one type: S'_f plus the PartitionScope sum.
BigInt countTypePaper(const AbstractSkeleton &Sk, const TypeProblem &P,
                      StirlingTable &Table) {
  (void)Sk;
  unsigned NumRootVars = static_cast<unsigned>(P.RootVars.size());
  unsigned NumHoles = static_cast<unsigned>(P.Holes.size());
  BigInt Total = Table.partitionsUpTo(NumHoles, NumRootVars);
  if (P.LocalScopes.empty())
    return Total;

  unsigned NumGlobalHoles = static_cast<unsigned>(P.GlobalHoles.size());
  std::function<void(size_t, unsigned, const BigInt &)> Recurse =
      [&](size_t SI, unsigned PromotedCount, const BigInt &Product) {
        if (SI == P.LocalScopes.size()) {
          BigInt Term =
              Table.stirling2(NumGlobalHoles + PromotedCount, NumRootVars);
          Term *= Product;
          Total += Term;
          return;
        }
        const TypeProblem::LocalScope &L = P.LocalScopes[SI];
        unsigned U = static_cast<unsigned>(L.Holes.size());
        unsigned V = static_cast<unsigned>(L.Vars.size());
        for (unsigned K = 0; K < U; ++K) {
          BigInt Ways = Table.binomial(U, K);
          Ways *= Table.partitionsUpTo(U - K, V);
          if (Ways.isZero())
            continue;
          Ways *= Product;
          Recurse(SI + 1, PromotedCount + K, Ways);
        }
      };
  Recurse(0, 0, BigInt(1));
  return Total;
}

} // namespace

BigInt SpeEnumerator::count() const {
  StirlingTable Table;
  BigInt Total(1);
  for (const TypeProblem &P : buildTypeProblems(Skeleton)) {
    BigInt TypeCount = Mode == SpeMode::Exact
                           ? countTypeExact(Skeleton, P, Table)
                           : countTypePaper(Skeleton, P, Table);
    Total *= TypeCount;
    if (Total.isZero())
      return Total;
  }
  return Total;
}

uint64_t SpeEnumerator::enumerate(
    const std::function<bool(const Assignment &)> &Callback,
    uint64_t Limit) const {
  EnumerationDriver Driver(Skeleton, Mode, Callback, Limit);
  return Driver.run();
}
