//===- core/SpeEnumerator.cpp - Non-alpha-equivalent enumeration ---------===//

#include "core/SpeEnumerator.h"

#include "core/AssignmentCursor.h"
#include "core/PaperAlgorithm.h"
#include "core/ScopePartitionDP.h"

using namespace spe;

const char *spe::speModeName(SpeMode Mode) {
  switch (Mode) {
  case SpeMode::Exact:
    return "exact";
  case SpeMode::PaperFaithful:
    return "paper-faithful";
  }
  return "unknown";
}

SpeEnumerator::SpeEnumerator(const AbstractSkeleton &Skeleton, SpeMode Mode)
    : Skeleton(Skeleton), Mode(Mode) {}

BigInt SpeEnumerator::count() const {
  return Mode == SpeMode::Exact ? countExactClasses(Skeleton)
                                : countPaperFaithful(Skeleton);
}

AssignmentCursor SpeEnumerator::cursor() const {
  return AssignmentCursor(Skeleton, Mode);
}

uint64_t SpeEnumerator::enumerate(
    const std::function<bool(const Assignment &)> &Callback,
    uint64_t Limit) const {
  AssignmentCursor Cursor(Skeleton, Mode);
  uint64_t Produced = 0;
  while (const Assignment *A = Cursor.next()) {
    ++Produced;
    if (!Callback(*A))
      break;
    if (Limit != 0 && Produced >= Limit)
      break;
  }
  return Produced;
}
