//===- core/ValidityPruning.cpp - Per-hole forbidden sets + pruned DP ----===//

#include "core/ValidityPruning.h"

#include "core/ScopePartitionDP.h"

#include <map>

using namespace spe;

bool spe::assignmentViolates(const Assignment &A,
                             const ValidityConstraints &C) {
  for (size_t H = 0; H < A.size(); ++H)
    if (C.forbids(static_cast<unsigned>(H), A[H]))
      return true;
  return false;
}

BigInt spe::countValidPartitions(const std::vector<unsigned> &Holes,
                                 const std::vector<VarId> &Vars,
                                 const ValidityConstraints &C) {
  // DP over restricted growth strings in block-count space. Because block i
  // of a canonical partition is always bound to Vars[i], "hole H joins block
  // j" is allowed exactly when C permits (H, Vars[j]); the count of allowed
  // existing blocks therefore depends only on (H, m), not on which holes sit
  // in them.
  size_t N = Holes.size();
  size_t K = Vars.size();
  if (N == 0)
    return BigInt(1);
  if (K == 0)
    return BigInt(0);
  std::vector<BigInt> ByBlocks(K + 1, BigInt(0)); // ByBlocks[m] after i holes.
  ByBlocks[0] = BigInt(1);
  for (size_t I = 0; I < N; ++I) {
    std::vector<BigInt> Next(K + 1, BigInt(0));
    for (size_t M = 0; M <= std::min(I, K); ++M) {
      if (ByBlocks[M].isZero())
        continue;
      uint64_t AllowedExisting = 0;
      for (size_t J = 0; J < M; ++J)
        if (!C.forbids(Holes[I], Vars[J]))
          ++AllowedExisting;
      if (AllowedExisting)
        Next[M] += ByBlocks[M] * AllowedExisting;
      if (M < K && !C.forbids(Holes[I], Vars[M]))
        Next[M + 1] += ByBlocks[M];
    }
    ByBlocks = std::move(Next);
  }
  BigInt Total(0);
  for (const BigInt &B : ByBlocks)
    Total += B;
  return Total;
}

namespace {

/// Recursively assigns a declaration scope to every hole of one type
/// problem; at each leaf (complete level map) the count is the product of
/// constrained partition counts per scope. This walks every level map -- the
/// same factorization materializeType uses -- so cost is
/// O(#level maps * group DP), fine for threshold-bounded spaces.
class LevelMapCounter {
public:
  LevelMapCounter(const AbstractSkeleton &Sk, const ExactTypeProblem &P,
                  const ValidityConstraints &C)
      : Sk(Sk), P(P), C(C) {}

  BigInt count() {
    ByScope.clear();
    BigInt Total(0);
    recurse(0, Total);
    return Total;
  }

private:
  void recurse(size_t HI, BigInt &Total) {
    if (HI == P.Holes.size()) {
      BigInt Product(1);
      for (const auto &[Scope, Holes] : ByScope) {
        Product *= countValidPartitions(
            Holes, Sk.varsInScopeOfType(Scope, P.Type), C);
        if (Product.isZero())
          return;
      }
      Total += Product;
      return;
    }
    for (ScopeId S : P.Domains[HI]) {
      ByScope[S].push_back(P.Holes[HI]);
      recurse(HI + 1, Total);
      ByScope[S].pop_back();
      if (ByScope[S].empty())
        ByScope.erase(S);
    }
  }

  const AbstractSkeleton &Sk;
  const ExactTypeProblem &P;
  const ValidityConstraints &C;
  std::map<ScopeId, std::vector<unsigned>> ByScope;
};

} // namespace

BigInt spe::countValidClasses(const AbstractSkeleton &Sk,
                              const ValidityConstraints &C) {
  BigInt Total(1);
  for (const ExactTypeProblem &P : buildExactTypeProblems(Sk)) {
    Total *= LevelMapCounter(Sk, P, C).count();
    if (Total.isZero())
      return Total;
  }
  return Total;
}
