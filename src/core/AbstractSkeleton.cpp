//===- core/AbstractSkeleton.cpp - Skeletons, scopes, holes --------------===//

#include "core/AbstractSkeleton.h"

#include <algorithm>
#include <cassert>

using namespace spe;

ScopeId AbstractSkeleton::addScope(ScopeId Parent) {
  assert(Parent < Scopes.size() && "unknown parent scope");
  Scopes.push_back(SkeletonScope{Parent});
  return static_cast<ScopeId>(Scopes.size() - 1);
}

VarId AbstractSkeleton::addVariable(std::string Name, ScopeId Scope,
                                    TypeKey Type) {
  assert(Scope < Scopes.size() && "unknown scope");
  Vars.push_back(SkeletonVar{std::move(Name), Scope, Type});
  return static_cast<VarId>(Vars.size() - 1);
}

unsigned AbstractSkeleton::addHole(ScopeId Scope, TypeKey Type) {
  assert(Scope < Scopes.size() && "unknown scope");
  Holes.push_back(SkeletonHole{Scope, Type});
  return static_cast<unsigned>(Holes.size() - 1);
}

std::vector<ScopeId> AbstractSkeleton::scopeChain(ScopeId Id) const {
  std::vector<ScopeId> Chain;
  for (ScopeId S = Id; S != InvalidScope; S = Scopes[S].Parent)
    Chain.push_back(S);
  std::reverse(Chain.begin(), Chain.end());
  return Chain;
}

bool AbstractSkeleton::isAncestorOrSelf(ScopeId Ancestor,
                                        ScopeId Scope) const {
  for (ScopeId S = Scope; S != InvalidScope; S = Scopes[S].Parent)
    if (S == Ancestor)
      return true;
  return false;
}

std::vector<VarId> AbstractSkeleton::varsInScopeOfType(ScopeId Scope,
                                                       TypeKey Type) const {
  std::vector<VarId> Result;
  for (VarId V = 0; V < Vars.size(); ++V)
    if (Vars[V].Scope == Scope && Vars[V].Type == Type)
      Result.push_back(V);
  return Result;
}

std::vector<VarId> AbstractSkeleton::candidatesFor(unsigned HoleIndex) const {
  assert(HoleIndex < Holes.size() && "hole index out of range");
  const SkeletonHole &H = Holes[HoleIndex];
  std::vector<VarId> Result;
  for (ScopeId S : scopeChain(H.UseScope)) {
    std::vector<VarId> InScope = varsInScopeOfType(S, H.Type);
    Result.insert(Result.end(), InScope.begin(), InScope.end());
  }
  return Result;
}

std::vector<ScopeId> AbstractSkeleton::childrenOf(ScopeId Scope) const {
  std::vector<ScopeId> Result;
  for (ScopeId S = 0; S < Scopes.size(); ++S)
    if (Scopes[S].Parent == Scope)
      Result.push_back(S);
  return Result;
}

std::vector<TypeKey> AbstractSkeleton::holeTypes() const {
  std::vector<TypeKey> Result;
  for (const SkeletonHole &H : Holes)
    if (std::find(Result.begin(), Result.end(), H.Type) == Result.end())
      Result.push_back(H.Type);
  std::sort(Result.begin(), Result.end());
  return Result;
}

std::string AbstractSkeleton::assignmentToString(const Assignment &A) const {
  std::string Result = "<";
  for (size_t I = 0; I < A.size(); ++I) {
    if (I != 0)
      Result += ",";
    Result += Vars[A[I]].Name;
  }
  Result += ">";
  return Result;
}
