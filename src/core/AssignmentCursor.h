//===- core/AssignmentCursor.h - Pull-based rankable enumeration ---------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pull-based cursor over a skeleton's canonical assignments. The cursor
/// defines a total order on the class space -- the same order the classic
/// push enumeration produces -- and makes every assignment *addressable* by
/// its rank in that order:
///
///   * next()        produces assignments one at a time (O(1) amortized in
///                   exact mode);
///   * seek(rank)    jumps directly to the assignment with a given BigInt
///                   rank, in exact mode by *unranking* restricted growth
///                   strings against the counting tree DP, i.e. without
///                   stepping through any intervening assignment;
///   * shard(i, n)   restricts the cursor to the i-th of n contiguous,
///                   near-equal rank ranges, which is how the differential
///                   harness splits one variant space across worker threads.
///
/// Sharding is an exact partition: the union of the n shards visits every
/// assignment of the original range exactly once. In SpeMode::PaperFaithful
/// the published recursion has no closed unranking, so seek degrades to a
/// restartable skip-window over the push driver (fine for the threshold-
/// bounded spaces that mode is used for); see DESIGN.md Section 5.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_CORE_ASSIGNMENTCURSOR_H
#define SPE_CORE_ASSIGNMENTCURSOR_H

#include "core/AbstractSkeleton.h"
#include "core/SpeEnumerator.h"
#include "core/ValidityPruning.h"
#include "support/BigInt.h"

#include <memory>
#include <string>

namespace spe {

/// Serializable cursor position, the unit of state the persistence layer
/// (src/persist/) snapshots per worker. All three fields are decimal BigInt
/// strings, so the format is stable across word sizes and the rank space
/// may exceed 2^64. Restoring is pure rank arithmetic: because cursors make
/// every assignment addressable by rank, a restored cursor re-derives its
/// odometer by unranking -- positions are never renumbered, in exact or
/// paper-faithful mode.
struct CursorState {
  std::string Position; ///< Rank the next next() will produce.
  std::string End;      ///< Exclusive upper bound of the active range.
  std::string Pruned;   ///< Ranks skipped as invalid so far.

  bool operator==(const CursorState &Other) const {
    return Position == Other.Position && End == Other.End &&
           Pruned == Other.Pruned;
  }
};

/// Pull-based, rankable cursor over the canonical assignments of a skeleton.
class AssignmentCursor {
public:
  AssignmentCursor(const AbstractSkeleton &Skeleton, SpeMode Mode);
  ~AssignmentCursor();
  AssignmentCursor(AssignmentCursor &&Other) noexcept;
  AssignmentCursor &operator=(AssignmentCursor &&Other) noexcept;

  /// \returns the total number of assignments in cursor order (the same
  /// value SpeEnumerator::count() reports for this mode).
  const BigInt &size() const;

  /// \returns the rank of the assignment the next call to next() produces.
  const BigInt &position() const;

  /// \returns the exclusive upper bound of the active range.
  const BigInt &end() const;

  /// Produces the next assignment, or nullptr when the active range is
  /// exhausted. The pointee is owned by the cursor and valid until the next
  /// call to next(), seek() or shard().
  const Assignment *next();

  /// Repositions the cursor so the next call to next() produces the
  /// assignment with rank \p Rank (clamped to size()).
  void seek(const BigInt &Rank);

  /// Equivalent to seek(0) but without the unranking cost: the odometer is
  /// rewound to its first configuration directly. This is the hot rewind on
  /// ProgramCursor's mixed-radix carry path.
  void reset();

  /// Shrinks the active range's exclusive upper bound to \p Rank (clamped
  /// to size()). Positions at or past the bound are exhausted.
  void setEnd(const BigInt &Rank);

  /// Restricts the cursor to shard \p Index of \p Count over the active
  /// range [position(), end()): contiguous rank sub-ranges of near-equal
  /// length whose union is exactly the original range.
  void shard(uint64_t Index, uint64_t Count);

  /// Enables validity pruning: next() silently skips every assignment that
  /// violates \p C (see core/ValidityPruning.h), in exact mode by jumping
  /// over whole subranges that share the offending digit. Ranks are not
  /// renumbered -- position(), seek() and shard() keep their unpruned
  /// semantics. \p C must outlive the cursor; pass nullptr to disable.
  void setConstraints(const ValidityConstraints *C);

  /// \returns the total number of ranks next() skipped as invalid since
  /// construction.
  const BigInt &pruned() const;

  /// Snapshots the cursor's position for persistence. Constraints are not
  /// part of the state -- the caller re-derives and re-attaches them on
  /// restore (validated by fingerprint in src/persist/Checkpoint.h).
  CursorState saveState() const;

  /// Repositions the cursor from a saved state: equivalent to setEnd(End)
  /// + seek(Position) with the pruned counter restored. \returns false
  /// (cursor untouched) when a field is not a decimal integer or the
  /// range is inconsistent (Position > End or End > size()).
  bool restoreState(const CursorState &State);

  /// Exact mode: \returns the exclusive end of the maximal invalid-under-\p
  /// C subrange starting at \p Rank, or \p Rank itself when the assignment
  /// with that rank violates nothing. Every rank in [Rank, result) shares
  /// the most significant forbidden digit and is invalid. Pure rank
  /// arithmetic -- the cursor's position and odometer are untouched. In
  /// paper-faithful mode there is no closed digit decomposition and the
  /// result is always \p Rank (callers filter produced assignments
  /// instead).
  BigInt invalidSpanEnd(const BigInt &Rank,
                        const ValidityConstraints &C) const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

namespace cursor_detail {

/// Strict decimal parse for restoreState: \returns false unless \p Text is
/// a non-empty all-digit string (BigInt::fromDecimalString asserts on
/// malformed input, which is wrong for data read from disk).
inline bool parseDecimal(const std::string &Text, BigInt &Out) {
  if (Text.empty())
    return false;
  for (char C : Text)
    if (C < '0' || C > '9')
      return false;
  Out = BigInt::fromDecimalString(Text);
  return true;
}

/// Splits [Pos, End) into \p Count contiguous near-equal rank ranges and
/// stores the \p Index-th as [Begin, NewEnd). Shared by the per-skeleton and
/// per-program cursors so the exact-partition arithmetic cannot drift.
inline void shardRange(const BigInt &Pos, const BigInt &End, uint64_t Index,
                       uint64_t Count, BigInt &Begin, BigInt &NewEnd) {
  BigInt Len = End < Pos ? BigInt(0) : End - Pos;
  Begin = Pos + (Len * Index).divideBySmall(Count);
  NewEnd = Pos + (Len * (Index + 1)).divideBySmall(Count);
}

} // namespace cursor_detail

} // namespace spe

#endif // SPE_CORE_ASSIGNMENTCURSOR_H
