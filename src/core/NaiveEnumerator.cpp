//===- core/NaiveEnumerator.cpp - Cartesian-product enumeration ----------===//

#include "core/NaiveEnumerator.h"

using namespace spe;

NaiveEnumerator::NaiveEnumerator(const AbstractSkeleton &Skeleton)
    : Skeleton(Skeleton) {
  Candidates.reserve(Skeleton.numHoles());
  for (unsigned I = 0; I < Skeleton.numHoles(); ++I)
    Candidates.push_back(Skeleton.candidatesFor(I));
}

BigInt NaiveEnumerator::count() const {
  BigInt Total(1);
  for (const std::vector<VarId> &C : Candidates) {
    if (C.empty())
      return BigInt(0);
    Total *= static_cast<uint64_t>(C.size());
  }
  return Total;
}

uint64_t NaiveEnumerator::enumerate(
    const std::function<bool(const Assignment &)> &Callback,
    uint64_t Limit) const {
  unsigned NumHoles = Skeleton.numHoles();
  for (const std::vector<VarId> &C : Candidates)
    if (C.empty())
      return 0;

  std::vector<size_t> Odometer(NumHoles, 0);
  Assignment Current(NumHoles);
  uint64_t Produced = 0;
  for (;;) {
    for (unsigned I = 0; I < NumHoles; ++I)
      Current[I] = Candidates[I][Odometer[I]];
    ++Produced;
    if (!Callback(Current))
      return Produced;
    if (Limit != 0 && Produced >= Limit)
      return Produced;
    // Advance the odometer, least-significant hole last (so the rightmost
    // hole varies fastest, giving lexicographic order over candidates).
    unsigned I = NumHoles;
    for (; I-- > 0;) {
      if (++Odometer[I] < Candidates[I].size())
        break;
      Odometer[I] = 0;
    }
    if (I == static_cast<unsigned>(-1))
      return Produced;
  }
}
