//===- core/AlphaEquivalence.h - Compact alpha-renaming equivalence ------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Program alpha-equivalence (Definition 2 of the paper, extended with the
/// compact alpha-renaming of Section 3.2.2): two assignments of the same
/// skeleton are equivalent iff one maps to the other under a permutation of
/// variables that respects declaration scope and type class. The canonical
/// key renumbers, independently per (declaration scope, type) class, the
/// variables of each class in first-occurrence order over the hole sequence;
/// equivalence is then key equality. This is the ground truth the enumerators
/// are property-tested against, and the dedup basis for brute-force SPE.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_CORE_ALPHAEQUIVALENCE_H
#define SPE_CORE_ALPHAEQUIVALENCE_H

#include "core/AbstractSkeleton.h"

#include <string>
#include <vector>

namespace spe {

/// Canonicalization of assignments under compact alpha-renaming.
class AlphaCanonicalizer {
public:
  explicit AlphaCanonicalizer(const AbstractSkeleton &Skeleton)
      : Skeleton(Skeleton) {}

  /// \returns a string key equal for exactly the alpha-equivalent
  /// assignments of this skeleton.
  std::string canonicalKey(const Assignment &A) const;

  /// \returns the canonical representative of A's equivalence class: each
  /// (scope, type) class's variables are renamed, in first-occurrence order,
  /// to that class's variables in declaration order.
  Assignment canonicalRepresentative(const Assignment &A) const;

  /// \returns true iff \p A and \p B are alpha-equivalent.
  bool areEquivalent(const Assignment &A, const Assignment &B) const {
    return canonicalKey(A) == canonicalKey(B);
  }

private:
  const AbstractSkeleton &Skeleton;
};

} // namespace spe

#endif // SPE_CORE_ALPHAEQUIVALENCE_H
