//===- core/AlphaEquivalence.cpp - Compact alpha-renaming equivalence ----===//

#include "core/AlphaEquivalence.h"

#include <cassert>
#include <map>

using namespace spe;

namespace {
/// Identifies one renaming class: variables are interchangeable only within
/// the same declaration scope and type class.
using RenamingClass = std::pair<ScopeId, TypeKey>;
} // namespace

std::string AlphaCanonicalizer::canonicalKey(const Assignment &A) const {
  assert(A.size() == Skeleton.numHoles() && "assignment arity mismatch");
  // Per class, map each variable to its first-occurrence rank.
  std::map<RenamingClass, std::map<VarId, unsigned>> Ranks;
  std::string Key;
  for (size_t I = 0; I < A.size(); ++I) {
    const SkeletonVar &V = Skeleton.var(A[I]);
    RenamingClass Class{V.Scope, V.Type};
    std::map<VarId, unsigned> &ClassRanks = Ranks[Class];
    auto [It, Inserted] =
        ClassRanks.insert({A[I], static_cast<unsigned>(ClassRanks.size())});
    Key += std::to_string(V.Scope);
    Key += '.';
    Key += std::to_string(V.Type);
    Key += '#';
    Key += std::to_string(It->second);
    Key += '|';
  }
  return Key;
}

Assignment AlphaCanonicalizer::canonicalRepresentative(
    const Assignment &A) const {
  assert(A.size() == Skeleton.numHoles() && "assignment arity mismatch");
  std::map<RenamingClass, std::map<VarId, unsigned>> Ranks;
  Assignment Result(A.size());
  for (size_t I = 0; I < A.size(); ++I) {
    const SkeletonVar &V = Skeleton.var(A[I]);
    RenamingClass Class{V.Scope, V.Type};
    std::map<VarId, unsigned> &ClassRanks = Ranks[Class];
    auto [It, Inserted] =
        ClassRanks.insert({A[I], static_cast<unsigned>(ClassRanks.size())});
    std::vector<VarId> ClassVars =
        Skeleton.varsInScopeOfType(V.Scope, V.Type);
    assert(It->second < ClassVars.size() &&
           "more distinct variables used than declared in class");
    Result[I] = ClassVars[It->second];
  }
  return Result;
}
