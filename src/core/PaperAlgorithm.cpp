//===- core/PaperAlgorithm.cpp - Published Algorithm 1 + PartitionScope --===//

#include "core/PaperAlgorithm.h"

#include "combinatorics/SetPartitions.h"
#include "combinatorics/Stirling.h"

#include <algorithm>
#include <map>

using namespace spe;

namespace {

/// Per-type working data: the paper's two-level projection of the scope
/// tree (global variable set plus one entry per local use scope).
struct PaperTypeProblem {
  TypeKey Type = 0;
  /// Absolute hole indices of this type, in hole order.
  std::vector<unsigned> Holes;
  /// Root-declared variables of this type, declaration order.
  std::vector<VarId> RootVars;
  /// Hole indices whose use scope is the root ("global holes" G).
  std::vector<unsigned> GlobalHoles;
  /// One entry per non-root use scope that has holes.
  struct LocalScope {
    ScopeId Scope;
    std::vector<unsigned> Holes;
    /// Variables on the scope chain strictly below the root, chain order.
    std::vector<VarId> Vars;
  };
  std::vector<LocalScope> LocalScopes;
};

std::vector<PaperTypeProblem> buildPaperTypeProblems(const AbstractSkeleton &Sk) {
  std::vector<PaperTypeProblem> Problems;
  for (TypeKey T : Sk.holeTypes()) {
    PaperTypeProblem P;
    P.Type = T;
    for (unsigned H = 0; H < Sk.numHoles(); ++H)
      if (Sk.hole(H).Type == T)
        P.Holes.push_back(H);
    P.RootVars = Sk.varsInScopeOfType(AbstractSkeleton::rootScope(), T);
    std::map<ScopeId, std::vector<unsigned>> LocalHoles;
    for (unsigned H : P.Holes) {
      ScopeId Use = Sk.hole(H).UseScope;
      if (Use == AbstractSkeleton::rootScope())
        P.GlobalHoles.push_back(H);
      else
        LocalHoles[Use].push_back(H);
    }
    for (auto &[Scope, Holes] : LocalHoles) {
      PaperTypeProblem::LocalScope L;
      L.Scope = Scope;
      L.Holes = std::move(Holes);
      for (ScopeId S : Sk.scopeChain(Scope)) {
        if (S == AbstractSkeleton::rootScope())
          continue;
        std::vector<VarId> Here = Sk.varsInScopeOfType(S, T);
        L.Vars.insert(L.Vars.end(), Here.begin(), Here.end());
      }
      P.LocalScopes.push_back(std::move(L));
    }
    Problems.push_back(std::move(P));
  }
  return Problems;
}

/// Streams Algorithm 1's assignments for all types, with early termination.
class PaperDriver {
public:
  PaperDriver(const AbstractSkeleton &Sk,
              const std::function<bool(const Assignment &)> &Callback,
              uint64_t Limit)
      : Callback(Callback), Limit(Limit), Problems(buildPaperTypeProblems(Sk)),
        Current(Sk.numHoles(), 0) {}

  uint64_t run() {
    enumerateTypes(0);
    return Produced;
  }

private:
  /// Emits the fully built assignment. \returns false to stop enumeration.
  bool emit() {
    ++Produced;
    if (!Callback(Current))
      return false;
    return Limit == 0 || Produced < Limit;
  }

  bool enumerateTypes(size_t TI) {
    if (TI == Problems.size())
      return emit();
    return paperEnumerate(Problems[TI], TI);
  }

  bool paperEnumerate(PaperTypeProblem &P, size_t TI) {
    // Algorithm 1 line 3: S'_f, all holes filled with root variables, at
    // most |v_f| blocks.
    unsigned NumRootVars = static_cast<unsigned>(P.RootVars.size());
    SetPartitionGenerator AllGlobal(static_cast<unsigned>(P.Holes.size()),
                                    NumRootVars);
    while (AllGlobal.next()) {
      const RestrictedGrowthString &RGS = AllGlobal.current();
      for (size_t I = 0; I < P.Holes.size(); ++I)
        Current[P.Holes[I]] = P.RootVars[RGS[I]];
      if (!enumerateTypes(TI + 1))
        return false;
    }
    // Lines 4-5: Procedure PartitionScope over the local scopes. When there
    // are no local holes the S'_f term is already complete.
    if (P.LocalScopes.empty())
      return true;
    std::vector<unsigned> Promoted;
    return paperScopes(P, TI, 0, Promoted);
  }

  bool paperScopes(PaperTypeProblem &P, size_t TI, size_t SI,
                   std::vector<unsigned> &Promoted) {
    if (SI == P.LocalScopes.size())
      return paperGlobalPartition(P, TI, Promoted);
    const PaperTypeProblem::LocalScope &L = P.LocalScopes[SI];
    unsigned U = static_cast<unsigned>(L.Holes.size());
    unsigned V = static_cast<unsigned>(L.Vars.size());
    // Line 2: promote k holes, k in [0, u-1].
    for (unsigned K = 0; K < U; ++K) {
      CombinationGenerator Combos(U, K);
      while (Combos.next()) {
        std::vector<bool> IsPromoted(U, false);
        for (uint32_t Index : Combos.current())
          IsPromoted[Index] = true;
        std::vector<unsigned> Rest;
        for (unsigned I = 0; I < U; ++I) {
          if (IsPromoted[I])
            Promoted.push_back(L.Holes[I]);
          else
            Rest.push_back(L.Holes[I]);
        }
        // Lines 7-8: partition the remaining local holes into exactly j
        // non-empty blocks for every j in [1, v].
        for (unsigned J = 1; J <= V && J <= Rest.size(); ++J) {
          ExactBlockPartitionGenerator LocalGen(
              static_cast<unsigned>(Rest.size()), J);
          while (LocalGen.next()) {
            const RestrictedGrowthString &RGS = LocalGen.current();
            for (size_t I = 0; I < Rest.size(); ++I)
              Current[Rest[I]] = L.Vars[RGS[I]];
            if (!paperScopes(P, TI, SI + 1, Promoted))
              return false;
          }
        }
        Promoted.resize(Promoted.size() - K);
      }
    }
    return true;
  }

  bool paperGlobalPartition(PaperTypeProblem &P, size_t TI,
                            const std::vector<unsigned> &Promoted) {
    // Line 14: partition G (global holes plus promoted holes) into exactly
    // |v^g| non-empty blocks.
    std::vector<unsigned> G = P.GlobalHoles;
    G.insert(G.end(), Promoted.begin(), Promoted.end());
    std::sort(G.begin(), G.end());
    unsigned NumRootVars = static_cast<unsigned>(P.RootVars.size());
    if (G.empty()) {
      // Stirling {0 over k} is 1 only for k = 0.
      if (NumRootVars != 0)
        return true;
      return enumerateTypes(TI + 1);
    }
    ExactBlockPartitionGenerator Gen(static_cast<unsigned>(G.size()),
                                     NumRootVars);
    while (Gen.next()) {
      const RestrictedGrowthString &RGS = Gen.current();
      for (size_t I = 0; I < G.size(); ++I)
        Current[G[I]] = P.RootVars[RGS[I]];
      if (!enumerateTypes(TI + 1))
        return false;
    }
    return true;
  }

  const std::function<bool(const Assignment &)> &Callback;
  uint64_t Limit;
  std::vector<PaperTypeProblem> Problems;
  Assignment Current;
  uint64_t Produced = 0;
};

/// Paper-faithful count for one type: S'_f plus the PartitionScope sum.
BigInt countTypePaper(const PaperTypeProblem &P, StirlingTable &Table) {
  unsigned NumRootVars = static_cast<unsigned>(P.RootVars.size());
  unsigned NumHoles = static_cast<unsigned>(P.Holes.size());
  BigInt Total = Table.partitionsUpTo(NumHoles, NumRootVars);
  if (P.LocalScopes.empty())
    return Total;

  unsigned NumGlobalHoles = static_cast<unsigned>(P.GlobalHoles.size());
  std::function<void(size_t, unsigned, const BigInt &)> Recurse =
      [&](size_t SI, unsigned PromotedCount, const BigInt &Product) {
        if (SI == P.LocalScopes.size()) {
          BigInt Term =
              Table.stirling2(NumGlobalHoles + PromotedCount, NumRootVars);
          Term *= Product;
          Total += Term;
          return;
        }
        const PaperTypeProblem::LocalScope &L = P.LocalScopes[SI];
        unsigned U = static_cast<unsigned>(L.Holes.size());
        unsigned V = static_cast<unsigned>(L.Vars.size());
        for (unsigned K = 0; K < U; ++K) {
          BigInt Ways = Table.binomial(U, K);
          Ways *= Table.partitionsUpTo(U - K, V);
          if (Ways.isZero())
            continue;
          Ways *= Product;
          Recurse(SI + 1, PromotedCount + K, Ways);
        }
      };
  Recurse(0, 0, BigInt(1));
  return Total;
}

} // namespace

BigInt spe::countPaperFaithful(const AbstractSkeleton &Sk) {
  StirlingTable Table;
  BigInt Total(1);
  for (const PaperTypeProblem &P : buildPaperTypeProblems(Sk)) {
    Total *= countTypePaper(P, Table);
    if (Total.isZero())
      return Total;
  }
  return Total;
}

uint64_t spe::enumeratePaperFaithful(
    const AbstractSkeleton &Sk,
    const std::function<bool(const Assignment &)> &Callback, uint64_t Limit) {
  PaperDriver Driver(Sk, Callback, Limit);
  return Driver.run();
}
