//===- reduce/SkeletonReducer.cpp - structural witness reduction ---------===//

#include "reduce/SkeletonReducer.h"

#include "lang/AstPrinter.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "reduce/DeltaDebug.h"
#include "sema/Sema.h"

#include <memory>
#include <set>

using namespace spe;

uint64_t spe::tokenCount(const std::string &Source) {
  DiagnosticEngine Diags;
  Lexer L(Source, Diags);
  std::vector<Token> Tokens = L.lexAll();
  return Tokens.empty() ? 0 : Tokens.size() - 1; // Drop the EOF sentinel.
}

namespace {

/// One parsed + analyzed program held across a reduction pass.
struct Analyzed {
  std::unique_ptr<ASTContext> Ctx;
  std::unique_ptr<Sema> Analysis;
};

bool analyze(const std::string &Source, Analyzed &Out) {
  Out.Ctx = std::make_unique<ASTContext>();
  DiagnosticEngine Diags;
  if (!Parser::parse(Source, *Out.Ctx, Diags))
    return false;
  Out.Analysis = std::make_unique<Sema>(*Out.Ctx, Diags);
  return Out.Analysis->run();
}

/// Collects the ddmin chunk domain: the Sema ids of every statement nested
/// inside \p S (pre-order). The for-init clause is excluded -- it renders
/// inline inside `for (...)`, where the deleted-statement mechanism cannot
/// reach it -- and so is the root body compound the caller starts from.
/// Statements in positions that syntactically require one (non-compound
/// branches, loop bodies, label substatements) are candidates too: deleting
/// them prints `;` there.
void collectStmtIds(const Stmt *S, std::vector<int> &Out) {
  if (!S)
    return;
  // A non-compound child in a statement-requiring position is itself a
  // deletion candidate (compound children contribute their elements
  // instead, which elide entirely).
  auto Required = [&Out](const Stmt *Child) {
    if (!Child)
      return;
    if (!isa<CompoundStmt>(Child) && Child->stmtId() >= 0)
      Out.push_back(Child->stmtId());
    collectStmtIds(Child, Out);
  };
  switch (S->kind()) {
  case Stmt::Kind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->body()) {
      if (Child->stmtId() >= 0)
        Out.push_back(Child->stmtId());
      collectStmtIds(Child, Out);
    }
    return;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    Required(I->thenStmt());
    Required(I->elseStmt());
    return;
  }
  case Stmt::Kind::While:
    Required(cast<WhileStmt>(S)->body());
    return;
  case Stmt::Kind::Do:
    Required(cast<DoStmt>(S)->body());
    return;
  case Stmt::Kind::For:
    Required(cast<ForStmt>(S)->body());
    return;
  case Stmt::Kind::Label:
    Required(cast<LabelStmt>(S)->sub());
    return;
  default:
    return;
  }
}

/// One expression-simplification proposal: print \p E as one of Repls
/// instead of its subtree.
struct ExprCandidate {
  const Expr *E = nullptr;
  std::vector<std::string> Repls;
};

/// Collects simplification candidates in deterministic pre-order.
class CandidateCollector {
public:
  explicit CandidateCollector(bool ShrinkLoops) : ShrinkLoops(ShrinkLoops) {}

  std::vector<ExprCandidate> run(const ASTContext &Ctx) {
    for (const Decl *D : Ctx.TopLevel) {
      if (const auto *V = dyn_cast<VarDecl>(D))
        expr(V->init());
      else if (const auto *F = dyn_cast<FunctionDecl>(D))
        if (F->isDefinition())
          stmt(F->body());
    }
    return std::move(Out);
  }

private:
  void propose(const Expr *E, std::vector<std::string> Repls) {
    Out.push_back({E, std::move(Repls)});
  }

  /// A loop/branch condition: propose the constant that minimizes the trip
  /// count or linearizes the branch.
  void cond(const Expr *E, bool IsLoop) {
    if (!E)
      return;
    if (IsLoop) {
      if (ShrinkLoops)
        propose(E, {"0"});
    } else {
      propose(E, {"0", "1"});
    }
    expr(E);
  }

  void stmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->kind()) {
    case Stmt::Kind::Compound:
      for (const Stmt *Child : cast<CompoundStmt>(S)->body())
        stmt(Child);
      return;
    case Stmt::Kind::Decl:
      for (const VarDecl *V : cast<DeclStmt>(S)->decls())
        expr(V->init());
      return;
    case Stmt::Kind::Expr:
      expr(cast<ExprStmt>(S)->expr());
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      cond(I->cond(), /*IsLoop=*/false);
      stmt(I->thenStmt());
      stmt(I->elseStmt());
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      cond(W->cond(), /*IsLoop=*/true);
      stmt(W->body());
      return;
    }
    case Stmt::Kind::Do: {
      const auto *D = cast<DoStmt>(S);
      stmt(D->body());
      cond(D->cond(), /*IsLoop=*/true);
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      stmt(F->init());
      cond(F->cond(), /*IsLoop=*/true);
      expr(F->step());
      stmt(F->body());
      return;
    }
    case Stmt::Kind::Return:
      expr(cast<ReturnStmt>(S)->value());
      return;
    case Stmt::Kind::Label:
      stmt(cast<LabelStmt>(S)->sub());
      return;
    default:
      return;
    }
  }

  void expr(const Expr *E) {
    if (!E)
      return;
    switch (E->kind()) {
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      if (!isAssignmentOp(B->op()) && B->op() != BinaryOp::Comma)
        propose(E, {Plain.printExpr(B->lhs()), Plain.printExpr(B->rhs()),
                    "0", "1"});
      expr(B->lhs());
      expr(B->rhs());
      return;
    }
    case Expr::Kind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      propose(E, {Plain.printExpr(C->trueExpr()),
                  Plain.printExpr(C->falseExpr())});
      expr(C->cond());
      expr(C->trueExpr());
      expr(C->falseExpr());
      return;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      switch (U->op()) {
      case UnaryOp::Plus:
      case UnaryOp::Neg:
      case UnaryOp::LogicalNot:
      case UnaryOp::BitNot:
        propose(E, {Plain.printExpr(U->sub()), "0"});
        break;
      default:
        // Address-of / dereference / inc-dec: operand substitution changes
        // the type or requires an lvalue; skip the near-certain rejects.
        break;
      }
      expr(U->sub());
      return;
    }
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      propose(E, {"0"});
      for (const Expr *Arg : C->args())
        expr(Arg);
      return;
    }
    case Expr::Kind::Index: {
      const auto *Ix = cast<IndexExpr>(E);
      expr(Ix->base());
      expr(Ix->index());
      return;
    }
    case Expr::Kind::Member:
      expr(cast<MemberExpr>(E)->base());
      return;
    case Expr::Kind::Cast:
      expr(cast<CastExpr>(E)->sub());
      return;
    case Expr::Kind::SizeOf:
      expr(cast<SizeOfExpr>(E)->exprOperand());
      return;
    case Expr::Kind::InitList:
      for (const Expr *Elem : cast<InitListExpr>(E)->elements())
        expr(Elem);
      return;
    default:
      return;
    }
  }

  bool ShrinkLoops;
  AstPrinter Plain;
  std::vector<ExprCandidate> Out;
};

/// Pass 1: ddmin over statement ids.
bool deleteStatements(std::string &Best, ReproOracle &Oracle,
                      ReductionOutcome &Out) {
  Analyzed A;
  if (!analyze(Best, A))
    return false;
  std::vector<int> Cands;
  for (const FunctionDecl *F : A.Ctx->functions())
    collectStmtIds(F->body(), Cands);
  if (Cands.empty())
    return false;

  auto Render = [&](const std::vector<size_t> &Keep) {
    std::set<int> Deleted(Cands.begin(), Cands.end());
    for (size_t K : Keep)
      Deleted.erase(Cands[K]);
    AstPrinter P;
    P.setDeletedStmts(std::move(Deleted));
    P.setElideDeletedStmts(true);
    return P.print(*A.Ctx);
  };

  std::vector<size_t> Keep = ddmin(
      Cands.size(),
      [&](const std::vector<size_t> &K) { return Oracle.reproduces(Render(K)); });
  if (Keep.size() == Cands.size())
    return false;
  Best = Render(Keep);
  Out.StatementsDeleted += Cands.size() - Keep.size();
  return true;
}

/// Pass 2: greedy top-level declaration dropping.
bool dropDecls(std::string &Best, ReproOracle &Oracle,
               ReductionOutcome &Out) {
  Analyzed A;
  if (!analyze(Best, A))
    return false;

  std::set<const Decl *> Dropped;
  auto Render = [&] {
    AstPrinter P;
    P.setDeletedDecls(Dropped);
    return P.print(*A.Ctx);
  };
  for (const Decl *D : A.Ctx->TopLevel) {
    if (const auto *F = dyn_cast<FunctionDecl>(D))
      if (F->name() == "main")
        continue;
    Dropped.insert(D);
    if (!Oracle.reproduces(Render()))
      Dropped.erase(D);
  }
  if (Dropped.empty())
    return false;
  Best = Render();
  Out.DeclsDropped += Dropped.size();
  return true;
}

/// Pass 3: greedy expression simplification / loop shrinking. Accepted
/// replacements must strictly shrink the token count, which both guarantees
/// termination and filters no-op probes (e.g. proposals under an already
/// replaced ancestor render identically).
bool simplifyExprs(std::string &Best, const ReducerOptions &Opts,
                   ReproOracle &Oracle, ReductionOutcome &Out) {
  Analyzed A;
  if (!analyze(Best, A))
    return false;
  std::vector<ExprCandidate> Cands =
      CandidateCollector(Opts.ShrinkLoops).run(*A.Ctx);
  if (Cands.empty())
    return false;

  AstPrinter::ExprReplacement Accepted;
  uint64_t BestTokens = tokenCount(Best);
  bool Changed = false;
  for (const ExprCandidate &C : Cands) {
    for (const std::string &Repl : C.Repls) {
      AstPrinter::ExprReplacement Trial = Accepted;
      Trial[C.E] = Repl;
      AstPrinter P;
      P.setReplacedExprs(std::move(Trial));
      std::string Text = P.print(*A.Ctx);
      uint64_t Tokens = tokenCount(Text);
      if (Tokens >= BestTokens || !Oracle.reproduces(Text))
        continue;
      Accepted[C.E] = Repl;
      BestTokens = Tokens;
      Best = std::move(Text);
      ++Out.ExprsSimplified;
      Changed = true;
      break;
    }
  }
  return Changed;
}

} // namespace

ReductionOutcome SkeletonReducer::reduce(const std::string &Witness,
                                         const ReproSpec &Spec) const {
  ReductionOutcome Out;
  Out.Reduced = Witness;
  Out.TokensBefore = Out.TokensAfter = tokenCount(Witness);

  ReproOracle Oracle(Spec, Cache, Backend);
  if (!Oracle.reproduces(Witness)) {
    Out.Oracle = Oracle.stats();
    return Out;
  }

  std::string Best = Witness;
  for (unsigned Pass = 0; Pass < Opts.MaxPasses; ++Pass) {
    bool Changed = false;
    if (Opts.DeleteStatements)
      Changed |= deleteStatements(Best, Oracle, Out);
    if (Opts.DropDecls)
      Changed |= dropDecls(Best, Oracle, Out);
    if (Opts.SimplifyExpressions)
      Changed |= simplifyExprs(Best, Opts, Oracle, Out);
    if (!Changed)
      break;
  }

  Out.Reduced = std::move(Best);
  Out.TokensAfter = tokenCount(Out.Reduced);
  Out.Oracle = Oracle.stats();
  return Out;
}
