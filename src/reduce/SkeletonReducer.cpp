//===- reduce/SkeletonReducer.cpp - structural witness reduction ---------===//

#include "reduce/SkeletonReducer.h"

#include "lang/AstPrinter.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "reduce/DeltaDebug.h"
#include "sema/Sema.h"

#include <memory>
#include <set>

using namespace spe;

uint64_t spe::tokenCount(const std::string &Source) {
  DiagnosticEngine Diags;
  Lexer L(Source, Diags);
  std::vector<Token> Tokens = L.lexAll();
  return Tokens.empty() ? 0 : Tokens.size() - 1; // Drop the EOF sentinel.
}

namespace {

/// One parsed + analyzed program held across a reduction pass.
struct Analyzed {
  std::unique_ptr<ASTContext> Ctx;
  std::unique_ptr<Sema> Analysis;
};

bool analyze(const std::string &Source, Analyzed &Out) {
  Out.Ctx = std::make_unique<ASTContext>();
  DiagnosticEngine Diags;
  if (!Parser::parse(Source, *Out.Ctx, Diags))
    return false;
  Out.Analysis = std::make_unique<Sema>(*Out.Ctx, Diags);
  return Out.Analysis->run();
}

/// Collects the ddmin chunk domain: the Sema ids of every statement nested
/// inside \p S (pre-order). The for-init clause is excluded -- it renders
/// inline inside `for (...)`, where the deleted-statement mechanism cannot
/// reach it -- and so is the root body compound the caller starts from.
/// Statements in positions that syntactically require one (non-compound
/// branches, loop bodies, label substatements) are candidates too: deleting
/// them prints `;` there.
void collectStmtIds(const Stmt *S, std::vector<int> &Out) {
  if (!S)
    return;
  // A non-compound child in a statement-requiring position is itself a
  // deletion candidate (compound children contribute their elements
  // instead, which elide entirely).
  auto Required = [&Out](const Stmt *Child) {
    if (!Child)
      return;
    if (!isa<CompoundStmt>(Child) && Child->stmtId() >= 0)
      Out.push_back(Child->stmtId());
    collectStmtIds(Child, Out);
  };
  switch (S->kind()) {
  case Stmt::Kind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->body()) {
      if (Child->stmtId() >= 0)
        Out.push_back(Child->stmtId());
      collectStmtIds(Child, Out);
    }
    return;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    Required(I->thenStmt());
    Required(I->elseStmt());
    return;
  }
  case Stmt::Kind::While:
    Required(cast<WhileStmt>(S)->body());
    return;
  case Stmt::Kind::Do:
    Required(cast<DoStmt>(S)->body());
    return;
  case Stmt::Kind::For:
    Required(cast<ForStmt>(S)->body());
    return;
  case Stmt::Kind::Label:
    Required(cast<LabelStmt>(S)->sub());
    return;
  default:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Static bounded-loop guard (ReducerOptions::BoundedLoopGuard)
//===----------------------------------------------------------------------===//

/// Root variable name of a store target: peels array subscripts and dot
/// member accesses (a store to `a[i].f` touches only object `a`). Null for
/// dereferences and arrow accesses, whose target object is unknown.
const std::string *storeRootName(const Expr *E) {
  while (E) {
    switch (E->kind()) {
    case Expr::Kind::DeclRef:
      return &cast<DeclRefExpr>(E)->name();
    case Expr::Kind::Index:
      E = cast<IndexExpr>(E)->base();
      continue;
    case Expr::Kind::Member: {
      const auto *M = cast<MemberExpr>(E);
      if (M->isArrow())
        return nullptr;
      E = M->base();
      continue;
    }
    default:
      return nullptr;
    }
  }
  return nullptr;
}

/// Collects every variable name a loop condition reads. \returns false when
/// the condition is unanalyzable (a dereference, arrow access, or call --
/// its value can then change without any direct store), which disables the
/// guard for that loop.
bool collectCondVars(const Expr *E, std::set<std::string> &Names) {
  if (!E)
    return true;
  switch (E->kind()) {
  case Expr::Kind::IntegerLiteral:
  case Expr::Kind::StringLiteral:
  case Expr::Kind::SizeOf:
    return true;
  case Expr::Kind::DeclRef:
    Names.insert(cast<DeclRefExpr>(E)->name());
    return true;
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->op() == UnaryOp::Deref || U->op() == UnaryOp::AddrOf)
      return false;
    // Inc/dec conditions store too; simpler to call the loop unanalyzable
    // than to model a condition with side effects.
    if (U->op() != UnaryOp::Plus && U->op() != UnaryOp::Neg &&
        U->op() != UnaryOp::LogicalNot && U->op() != UnaryOp::BitNot)
      return false;
    return collectCondVars(U->sub(), Names);
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (isAssignmentOp(B->op()))
      return false; // Side-effecting condition: unanalyzable.
    return collectCondVars(B->lhs(), Names) &&
           collectCondVars(B->rhs(), Names);
  }
  case Expr::Kind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    return collectCondVars(C->cond(), Names) &&
           collectCondVars(C->trueExpr(), Names) &&
           collectCondVars(C->falseExpr(), Names);
  }
  case Expr::Kind::Index: {
    const auto *Ix = cast<IndexExpr>(E);
    return collectCondVars(Ix->base(), Names) &&
           collectCondVars(Ix->index(), Names);
  }
  case Expr::Kind::Member: {
    const auto *M = cast<MemberExpr>(E);
    return !M->isArrow() && collectCondVars(M->base(), Names);
  }
  case Expr::Kind::Cast:
    return collectCondVars(cast<CastExpr>(E)->sub(), Names);
  default:
    return false; // Calls and anything else: unanalyzable.
  }
}

/// What one loop body (or for-step) can do that might end the loop.
struct BodyEffects {
  bool Escapes = false;      ///< break / return / goto inside the body.
  bool Unanalyzable = false; ///< Call, pointer store, unknown-target store.
  std::set<std::string> StoredNames;
};

void scanExprEffects(const Expr *E, BodyEffects &B) {
  if (!E || B.Unanalyzable)
    return;
  switch (E->kind()) {
  case Expr::Kind::Call:
    // A call can store to globals or through escaped pointers.
    B.Unanalyzable = true;
    return;
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    switch (U->op()) {
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec: {
      const std::string *Root = storeRootName(U->sub());
      if (!Root)
        B.Unanalyzable = true;
      else
        B.StoredNames.insert(*Root);
      break;
    }
    default:
      break;
    }
    scanExprEffects(U->sub(), B);
    return;
  }
  case Expr::Kind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    if (isAssignmentOp(Bin->op())) {
      const std::string *Root = storeRootName(Bin->lhs());
      if (!Root) {
        B.Unanalyzable = true; // `*p = ...` or another opaque target.
        return;
      }
      B.StoredNames.insert(*Root);
    }
    scanExprEffects(Bin->lhs(), B);
    scanExprEffects(Bin->rhs(), B);
    return;
  }
  case Expr::Kind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    scanExprEffects(C->cond(), B);
    scanExprEffects(C->trueExpr(), B);
    scanExprEffects(C->falseExpr(), B);
    return;
  }
  case Expr::Kind::Index: {
    const auto *Ix = cast<IndexExpr>(E);
    scanExprEffects(Ix->base(), B);
    scanExprEffects(Ix->index(), B);
    return;
  }
  case Expr::Kind::Member:
    scanExprEffects(cast<MemberExpr>(E)->base(), B);
    return;
  case Expr::Kind::Cast:
    scanExprEffects(cast<CastExpr>(E)->sub(), B);
    return;
  case Expr::Kind::InitList:
    for (const Expr *Elem : cast<InitListExpr>(E)->elements())
      scanExprEffects(Elem, B);
    return;
  default:
    return; // Literals, refs, sizeof: no effects.
  }
}

void scanStmtEffects(const Stmt *S, BodyEffects &B) {
  if (!S || B.Unanalyzable)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Break:
  case Stmt::Kind::Return:
  case Stmt::Kind::Goto:
    B.Escapes = true;
    return;
  case Stmt::Kind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->body())
      scanStmtEffects(Child, B);
    return;
  case Stmt::Kind::Decl:
    // A redeclaration shadows a condition variable; counting the name as
    // stored is conservative in the guard's safe direction (keeps the
    // probe alive for the oracle).
    for (const VarDecl *V : cast<DeclStmt>(S)->decls()) {
      B.StoredNames.insert(V->name());
      scanExprEffects(V->init(), B);
    }
    return;
  case Stmt::Kind::Expr:
    scanExprEffects(cast<ExprStmt>(S)->expr(), B);
    return;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    scanExprEffects(I->cond(), B);
    scanStmtEffects(I->thenStmt(), B);
    scanStmtEffects(I->elseStmt(), B);
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    scanExprEffects(W->cond(), B);
    scanStmtEffects(W->body(), B);
    return;
  }
  case Stmt::Kind::Do: {
    const auto *D = cast<DoStmt>(S);
    scanStmtEffects(D->body(), B);
    scanExprEffects(D->cond(), B);
    return;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    scanStmtEffects(F->init(), B);
    scanExprEffects(F->cond(), B);
    scanExprEffects(F->step(), B);
    scanStmtEffects(F->body(), B);
    return;
  }
  case Stmt::Kind::Label:
    scanStmtEffects(cast<LabelStmt>(S)->sub(), B);
    return;
  default:
    return; // Continue / null statements: no escape, no store.
  }
}

/// \returns true when this loop, once entered, provably never exits: its
/// body (plus for-step) has no escape statement, no call, no opaque store,
/// and no store to any variable the condition reads. A literal-zero
/// condition is always bounded (never entered, or one do-while trip); a
/// condition the scan cannot analyze disables the guard for this loop.
bool loopIsUnbounded(const Expr *Cond, const Stmt *Body, const Expr *Step) {
  std::set<std::string> CondVars;
  if (Cond) {
    if (const auto *Lit = dyn_cast<IntegerLiteral>(Cond)) {
      if (Lit->value() == 0)
        return false;
      // Nonzero literal: no store can falsify it; CondVars stays empty.
    } else if (!collectCondVars(Cond, CondVars)) {
      return false;
    }
  }
  // No condition (`for (;;)`) falls through with an empty CondVars set.
  BodyEffects B;
  scanStmtEffects(Body, B);
  scanExprEffects(Step, B);
  if (B.Escapes || B.Unanalyzable)
    return false;
  for (const std::string &Name : B.StoredNames)
    if (CondVars.count(Name))
      return false;
  return true;
}

/// Recursively checks every loop under \p S.
bool stmtHasUnboundedLoop(const Stmt *S) {
  if (!S)
    return false;
  switch (S->kind()) {
  case Stmt::Kind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->body())
      if (stmtHasUnboundedLoop(Child))
        return true;
    return false;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    return stmtHasUnboundedLoop(I->thenStmt()) ||
           stmtHasUnboundedLoop(I->elseStmt());
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    return loopIsUnbounded(W->cond(), W->body(), nullptr) ||
           stmtHasUnboundedLoop(W->body());
  }
  case Stmt::Kind::Do: {
    const auto *D = cast<DoStmt>(S);
    return loopIsUnbounded(D->cond(), D->body(), nullptr) ||
           stmtHasUnboundedLoop(D->body());
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    return loopIsUnbounded(F->cond(), F->body(), F->step()) ||
           stmtHasUnboundedLoop(F->body());
  }
  case Stmt::Kind::Label:
    return stmtHasUnboundedLoop(cast<LabelStmt>(S)->sub());
  default:
    return false;
  }
}

/// Parses \p Source and reports whether any function contains a statically
/// unbounded loop. Unparseable candidates report false -- the oracle's own
/// frontend check rejects them for the price of a parse anyway.
bool hasStaticallyUnboundedLoop(const std::string &Source) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  if (!Parser::parse(Source, Ctx, Diags))
    return false;
  for (const Decl *D : Ctx.TopLevel)
    if (const auto *F = dyn_cast<FunctionDecl>(D))
      if (F->isDefinition() && stmtHasUnboundedLoop(F->body()))
        return true;
  return false;
}

/// The probe predicate every pass runs candidates through: the static
/// bounded-loop guard first (when enabled), then the signature oracle.
struct Prober {
  ReproOracle &Oracle;
  bool Guard;
  uint64_t Rejected = 0;

  bool operator()(const std::string &Text) {
    if (Guard && hasStaticallyUnboundedLoop(Text)) {
      ++Rejected;
      return false;
    }
    return Oracle.reproduces(Text);
  }
};

/// One expression-simplification proposal: print \p E as one of Repls
/// instead of its subtree.
struct ExprCandidate {
  const Expr *E = nullptr;
  std::vector<std::string> Repls;
};

/// Collects simplification candidates in deterministic pre-order.
class CandidateCollector {
public:
  explicit CandidateCollector(bool ShrinkLoops) : ShrinkLoops(ShrinkLoops) {}

  std::vector<ExprCandidate> run(const ASTContext &Ctx) {
    for (const Decl *D : Ctx.TopLevel) {
      if (const auto *V = dyn_cast<VarDecl>(D))
        expr(V->init());
      else if (const auto *F = dyn_cast<FunctionDecl>(D))
        if (F->isDefinition())
          stmt(F->body());
    }
    return std::move(Out);
  }

private:
  void propose(const Expr *E, std::vector<std::string> Repls) {
    Out.push_back({E, std::move(Repls)});
  }

  /// A loop/branch condition: propose the constant that minimizes the trip
  /// count or linearizes the branch.
  void cond(const Expr *E, bool IsLoop) {
    if (!E)
      return;
    if (IsLoop) {
      if (ShrinkLoops)
        propose(E, {"0"});
    } else {
      propose(E, {"0", "1"});
    }
    expr(E);
  }

  void stmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->kind()) {
    case Stmt::Kind::Compound:
      for (const Stmt *Child : cast<CompoundStmt>(S)->body())
        stmt(Child);
      return;
    case Stmt::Kind::Decl:
      for (const VarDecl *V : cast<DeclStmt>(S)->decls())
        expr(V->init());
      return;
    case Stmt::Kind::Expr:
      expr(cast<ExprStmt>(S)->expr());
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      cond(I->cond(), /*IsLoop=*/false);
      stmt(I->thenStmt());
      stmt(I->elseStmt());
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      cond(W->cond(), /*IsLoop=*/true);
      stmt(W->body());
      return;
    }
    case Stmt::Kind::Do: {
      const auto *D = cast<DoStmt>(S);
      stmt(D->body());
      cond(D->cond(), /*IsLoop=*/true);
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      stmt(F->init());
      cond(F->cond(), /*IsLoop=*/true);
      expr(F->step());
      stmt(F->body());
      return;
    }
    case Stmt::Kind::Return:
      expr(cast<ReturnStmt>(S)->value());
      return;
    case Stmt::Kind::Label:
      stmt(cast<LabelStmt>(S)->sub());
      return;
    default:
      return;
    }
  }

  void expr(const Expr *E) {
    if (!E)
      return;
    switch (E->kind()) {
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      if (!isAssignmentOp(B->op()) && B->op() != BinaryOp::Comma)
        propose(E, {Plain.printExpr(B->lhs()), Plain.printExpr(B->rhs()),
                    "0", "1"});
      expr(B->lhs());
      expr(B->rhs());
      return;
    }
    case Expr::Kind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      propose(E, {Plain.printExpr(C->trueExpr()),
                  Plain.printExpr(C->falseExpr())});
      expr(C->cond());
      expr(C->trueExpr());
      expr(C->falseExpr());
      return;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      switch (U->op()) {
      case UnaryOp::Plus:
      case UnaryOp::Neg:
      case UnaryOp::LogicalNot:
      case UnaryOp::BitNot:
        propose(E, {Plain.printExpr(U->sub()), "0"});
        break;
      default:
        // Address-of / dereference / inc-dec: operand substitution changes
        // the type or requires an lvalue; skip the near-certain rejects.
        break;
      }
      expr(U->sub());
      return;
    }
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      propose(E, {"0"});
      for (const Expr *Arg : C->args())
        expr(Arg);
      return;
    }
    case Expr::Kind::Index: {
      const auto *Ix = cast<IndexExpr>(E);
      expr(Ix->base());
      expr(Ix->index());
      return;
    }
    case Expr::Kind::Member:
      expr(cast<MemberExpr>(E)->base());
      return;
    case Expr::Kind::Cast:
      expr(cast<CastExpr>(E)->sub());
      return;
    case Expr::Kind::SizeOf:
      expr(cast<SizeOfExpr>(E)->exprOperand());
      return;
    case Expr::Kind::InitList:
      for (const Expr *Elem : cast<InitListExpr>(E)->elements())
        expr(Elem);
      return;
    default:
      return;
    }
  }

  bool ShrinkLoops;
  AstPrinter Plain;
  std::vector<ExprCandidate> Out;
};

/// Pass 1: ddmin over statement ids.
bool deleteStatements(std::string &Best, Prober &Probe,
                      ReductionOutcome &Out) {
  Analyzed A;
  if (!analyze(Best, A))
    return false;
  std::vector<int> Cands;
  for (const FunctionDecl *F : A.Ctx->functions())
    collectStmtIds(F->body(), Cands);
  if (Cands.empty())
    return false;

  auto Render = [&](const std::vector<size_t> &Keep) {
    std::set<int> Deleted(Cands.begin(), Cands.end());
    for (size_t K : Keep)
      Deleted.erase(Cands[K]);
    AstPrinter P;
    P.setDeletedStmts(std::move(Deleted));
    P.setElideDeletedStmts(true);
    return P.print(*A.Ctx);
  };

  std::vector<size_t> Keep = ddmin(
      Cands.size(),
      [&](const std::vector<size_t> &K) { return Probe(Render(K)); });
  if (Keep.size() == Cands.size())
    return false;
  Best = Render(Keep);
  Out.StatementsDeleted += Cands.size() - Keep.size();
  return true;
}

/// Pass 2: greedy top-level declaration dropping.
bool dropDecls(std::string &Best, Prober &Probe,
               ReductionOutcome &Out) {
  Analyzed A;
  if (!analyze(Best, A))
    return false;

  std::set<const Decl *> Dropped;
  auto Render = [&] {
    AstPrinter P;
    P.setDeletedDecls(Dropped);
    return P.print(*A.Ctx);
  };
  for (const Decl *D : A.Ctx->TopLevel) {
    if (const auto *F = dyn_cast<FunctionDecl>(D))
      if (F->name() == "main")
        continue;
    Dropped.insert(D);
    if (!Probe(Render()))
      Dropped.erase(D);
  }
  if (Dropped.empty())
    return false;
  Best = Render();
  Out.DeclsDropped += Dropped.size();
  return true;
}

/// Pass 3: greedy expression simplification / loop shrinking. Accepted
/// replacements must strictly shrink the token count, which both guarantees
/// termination and filters no-op probes (e.g. proposals under an already
/// replaced ancestor render identically).
bool simplifyExprs(std::string &Best, const ReducerOptions &Opts,
                   Prober &Probe, ReductionOutcome &Out) {
  Analyzed A;
  if (!analyze(Best, A))
    return false;
  std::vector<ExprCandidate> Cands =
      CandidateCollector(Opts.ShrinkLoops).run(*A.Ctx);
  if (Cands.empty())
    return false;

  AstPrinter::ExprReplacement Accepted;
  uint64_t BestTokens = tokenCount(Best);
  bool Changed = false;
  for (const ExprCandidate &C : Cands) {
    for (const std::string &Repl : C.Repls) {
      AstPrinter::ExprReplacement Trial = Accepted;
      Trial[C.E] = Repl;
      AstPrinter P;
      P.setReplacedExprs(std::move(Trial));
      std::string Text = P.print(*A.Ctx);
      uint64_t Tokens = tokenCount(Text);
      if (Tokens >= BestTokens || !Probe(Text))
        continue;
      Accepted[C.E] = Repl;
      BestTokens = Tokens;
      Best = std::move(Text);
      ++Out.ExprsSimplified;
      Changed = true;
      break;
    }
  }
  return Changed;
}

} // namespace

ReductionOutcome SkeletonReducer::reduce(const std::string &Witness,
                                         const ReproSpec &Spec) const {
  ReductionOutcome Out;
  Out.Reduced = Witness;
  Out.TokensBefore = Out.TokensAfter = tokenCount(Witness);

  // The witness itself bypasses the static guard: it already reproduced in
  // the campaign, so it terminates no matter what the guard would guess.
  ReproOracle Oracle(Spec, Cache, Backend);
  if (!Oracle.reproduces(Witness)) {
    Out.Oracle = Oracle.stats();
    return Out;
  }

  Prober Probe{Oracle, Opts.BoundedLoopGuard};
  std::string Best = Witness;
  for (unsigned Pass = 0; Pass < Opts.MaxPasses; ++Pass) {
    bool Changed = false;
    if (Opts.DeleteStatements)
      Changed |= deleteStatements(Best, Probe, Out);
    if (Opts.DropDecls)
      Changed |= dropDecls(Best, Probe, Out);
    if (Opts.SimplifyExpressions)
      Changed |= simplifyExprs(Best, Opts, Probe, Out);
    if (!Changed)
      break;
  }

  Out.Reduced = std::move(Best);
  Out.TokensAfter = tokenCount(Out.Reduced);
  Out.UnboundedLoopProbesRejected = Probe.Rejected;
  Out.Oracle = Oracle.stats();
  return Out;
}
