//===- reduce/VariantMinimizer.cpp - minimal-rank canonical reproducers --===//

#include "reduce/VariantMinimizer.h"

#include "lang/Parser.h"
#include "sema/Sema.h"
#include "skeleton/ProgramEnumerator.h"
#include "skeleton/ValidityAnalysis.h"
#include "skeleton/VariantRenderer.h"

#include <memory>

using namespace spe;

MinimizeOutcome VariantMinimizer::minimize(const std::string &Witness,
                                           const ReproSpec &Spec) const {
  MinimizeOutcome Out;
  Out.Minimized = Witness;

  auto Ctx = std::make_unique<ASTContext>();
  DiagnosticEngine Diags;
  if (!Parser::parse(Witness, *Ctx, Diags))
    return Out;
  Sema Analysis(*Ctx, Diags);
  if (!Analysis.run())
    return Out;

  SkeletonExtractor Extractor(*Ctx, Analysis, Opts.Extract);
  std::vector<SkeletonUnit> Units = Extractor.extract();

  ProgramCursor Cursor(Units, Opts.Mode);
  if (Cursor.size() > BigInt(Opts.RankBudget))
    Cursor.setEnd(BigInt(Opts.RankBudget));
  std::vector<ValidityConstraints> Validity;
  if (Opts.PruneInvalid) {
    Validity = analyzeValidity(*Ctx, Analysis, Units);
    Cursor.setConstraints(constraintPtrs(Validity));
  }

  VariantRenderer Renderer(*Ctx, Units);
  ReproOracle Oracle(Spec, Cache, Backend);
  std::string Buffer;
  while (Out.Probes < Opts.ProbeBudget) {
    // position() is the rank of the variant next() is about to produce; read
    // it before the call advances the cursor.
    const BigInt &Pos = Cursor.position();
    uint64_t Rank = Pos.fitsInUint64() ? Pos.toUint64() : ~uint64_t(0);
    const ProgramAssignment *PA = Cursor.next();
    if (!PA)
      break;
    Renderer.renderInto(*PA, Buffer);
    ++Out.Probes;
    if (Buffer == Witness) {
      // Reached the witness itself: nothing below its rank triggers, so it
      // already is the canonical reproducer.
      Out.FoundAtRank = true;
      Out.Rank = Rank;
      break;
    }
    if (Oracle.reproduces(Buffer)) {
      Out.Minimized = Buffer;
      Out.FoundAtRank = true;
      Out.Rank = Rank;
      Out.Improved = true;
      break;
    }
  }
  Out.Oracle = Oracle.stats();
  return Out;
}
