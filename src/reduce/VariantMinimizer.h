//===- reduce/VariantMinimizer.h - minimal-rank canonical reproducers ----===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonicalizes a bug witness *within its own skeleton's variant space*:
/// alpha-renaming does not change a skeleton, so the witness and every
/// hole-assignment variant of it share one enumeration space, and the
/// triage pipeline can ask for the lowest-ranked assignment in cursor order
/// that still shows the bug. Two duplicate findings whose reduced witnesses
/// share a skeleton then minimize to the *same* reproducer -- the canonical
/// one per (skeleton, signature) -- which is what makes reduced bug reports
/// comparable across seeds, shards, and campaigns.
///
/// The search walks a ProgramCursor over the witness's extracted skeleton
/// from rank 0 upward under the seed's ValidityConstraints -- the cursor's
/// pruning jumps whole invalid subranges via AssignmentCursor::seek, so
/// provably frontend- or oracle-rejected assignments cost no render and no
/// probe -- and stops at the first rank whose rendered variant reproduces
/// the spec (reduce/BugRepro.h). Encountering the witness's own text ends
/// the scan: no strictly smaller rank triggers, and the witness is already
/// canonical. Probe and rank budgets bound the worst case; on budget
/// exhaustion the witness is returned unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_REDUCE_VARIANTMINIMIZER_H
#define SPE_REDUCE_VARIANTMINIMIZER_H

#include "core/SpeEnumerator.h"
#include "reduce/BugRepro.h"
#include "skeleton/SkeletonExtractor.h"

#include <string>

namespace spe {

/// Search bounds and enumeration parameters for one minimizer instance.
struct MinimizerOptions {
  SpeMode Mode = SpeMode::Exact;
  ExtractorOptions Extract;
  /// Skip provably invalid assignments without rendering them.
  bool PruneInvalid = true;
  /// Maximum rendered-and-probed candidates per witness.
  uint64_t ProbeBudget = 192;
  /// Maximum rank (exclusive) the scan may reach; pruned skips do not spend
  /// probes but still advance the rank, so this bounds pathological spaces.
  uint64_t RankBudget = 1 << 16;
};

/// Outcome of minimizing one witness.
struct MinimizeOutcome {
  /// The canonical reproducer: the lowest-ranked triggering variant found,
  /// or the witness itself when none was found in budget.
  std::string Minimized;
  /// True when the scan found a triggering variant (possibly the witness's
  /// own text) at some rank.
  bool FoundAtRank = false;
  /// The rank of Minimized when FoundAtRank (0 otherwise).
  uint64_t Rank = 0;
  /// True when Minimized differs from the input witness.
  bool Improved = false;
  /// Rendered candidates probed.
  uint64_t Probes = 0;
  /// Oracle-side counters (reduce/BugRepro.h).
  ReproStats Oracle;
};

/// Searches a witness's own variant space for the minimal-rank reproducer.
class VariantMinimizer {
public:
  /// \p Backend: compiler the signature-preservation probes run against
  /// (reduce/BugRepro.h); null = in-process MiniCC.
  explicit VariantMinimizer(MinimizerOptions Opts = {},
                            OracleCache *Cache = nullptr,
                            const CompilerBackend *Backend = nullptr)
      : Opts(Opts), Cache(Cache), Backend(Backend) {}

  MinimizeOutcome minimize(const std::string &Witness,
                           const ReproSpec &Spec) const;

private:
  MinimizerOptions Opts;
  OracleCache *Cache;
  const CompilerBackend *Backend;
};

} // namespace spe

#endif // SPE_REDUCE_VARIANTMINIMIZER_H
