//===- reduce/BugRepro.cpp - signature-preservation oracle ---------------===//

#include "reduce/BugRepro.h"

#include "interp/Interpreter.h"
#include "testing/OracleCache.h"
#include "triage/BugSignature.h"

#include <memory>

using namespace spe;

bool ReproOracle::reproduces(const std::string &Source) {
  ++Stats.Probes;
  auto It = Memo.find(Source);
  if (It != Memo.end()) {
    ++Stats.MemoHits;
    return It->second;
  }
  bool Result = evaluate(Source);
  Memo.emplace(Source, Result);
  return Result;
}

bool ReproOracle::evaluate(const std::string &Source) {
  // The candidate's own oracle verdict, replayed from the campaign-shared
  // cache when available (identical flow to the harness, so a variant the
  // campaign already interpreted is never re-run here).
  OracleCache::Entry Verdict;
  std::unique_ptr<ASTContext> Ctx;
  std::string Key = oracleCacheKey(Source, Spec.Input);
  if (Cache && Cache->lookup(Key, Verdict)) {
    ++Stats.OracleCacheHits;
  } else {
    Ctx = parseAndAnalyze(Source);
    Verdict.FrontendOk = Ctx != nullptr;
    if (Ctx) {
      InterpOptions IO;
      IO.Input = Spec.Input;
      ExecResult Ref = interpret(*Ctx, IO);
      ++Stats.OracleRuns;
      Verdict.Status = Ref.Status;
      Verdict.ExitCode = Ref.ExitCode;
      Verdict.Output = std::move(Ref.Output);
    }
    if (Cache)
      Cache->insert(Key, Verdict);
  }
  if (Verdict.FrontendOk && Verdict.Status == ExecStatus::Timeout)
    ++Stats.TimeoutRuns;
  if (!Verdict.FrontendOk || Verdict.Status != ExecStatus::Ok)
    return false;

  // Compile (and, for wrong-code, execute) under the finding's
  // configuration through the same backend the campaign used. The
  // in-process fallback reuses the AST built for the oracle verdict
  // (building it now on a cache hit -- FrontendOk guarantees success)
  // instead of paying a second parse per probe.
  BackendObservation Obs;
  if (Backend) {
    Obs = Backend->runWithInput(Source, Spec.Config, Spec.Input,
                                /*Cov=*/nullptr);
  } else {
    if (!Ctx)
      Ctx = parseAndAnalyze(Source);
    if (!Ctx)
      return false;
    Obs = Fallback.runOn(*Ctx, Spec.Config, /*Cov=*/nullptr, Spec.Input);
  }
  if (Obs.Compile == BackendObservation::CompileStatus::Rejected)
    return false;

  switch (Spec.Effect) {
  case BugEffect::Crash:
    return Obs.Compile == BackendObservation::CompileStatus::Crashed &&
           normalizeSignature(BugEffect::Crash, Obs.CrashSignature) ==
               Spec.SignatureKey;
  case BugEffect::Performance:
    return Obs.Compile != BackendObservation::CompileStatus::Crashed &&
           Obs.CompileTimeAnomaly;
  case BugEffect::WrongCode: {
    if (Obs.Compile != BackendObservation::CompileStatus::Ok)
      return false;
    // Reconstruct the divergence kind the campaign would report for this
    // candidate -- the harness-shared classifyDivergence, so e.g. an
    // exit-code miscompilation cannot silently degrade into a mere output
    // diff, and a hang reproducer must still hang.
    std::string Raw =
        classifyDivergence(Obs, Verdict.ExitCode, Verdict.Output);
    if (Raw.empty())
      return false;
    return normalizeSignature(BugEffect::WrongCode, Raw) ==
           Spec.SignatureKey;
  }
  }
  return false;
}
