//===- reduce/BugRepro.cpp - signature-preservation oracle ---------------===//

#include "reduce/BugRepro.h"

#include "compiler/Compiler.h"
#include "interp/Interpreter.h"
#include "lang/Parser.h"
#include "sema/Sema.h"
#include "testing/OracleCache.h"
#include "triage/BugSignature.h"

#include <memory>

using namespace spe;

namespace {

std::unique_ptr<ASTContext> analyzeSource(const std::string &Source) {
  auto Ctx = std::make_unique<ASTContext>();
  DiagnosticEngine Diags;
  if (!Parser::parse(Source, *Ctx, Diags))
    return nullptr;
  Sema Analysis(*Ctx, Diags);
  if (!Analysis.run())
    return nullptr;
  return Ctx;
}

} // namespace

bool ReproOracle::reproduces(const std::string &Source) {
  ++Stats.Probes;
  auto It = Memo.find(Source);
  if (It != Memo.end()) {
    ++Stats.MemoHits;
    return It->second;
  }
  bool Result = evaluate(Source);
  Memo.emplace(Source, Result);
  return Result;
}

bool ReproOracle::evaluate(const std::string &Source) {
  // The candidate's own oracle verdict, replayed from the campaign-shared
  // cache when available (identical flow to the harness, so a variant the
  // campaign already interpreted is never re-run here).
  OracleCache::Entry Verdict;
  std::unique_ptr<ASTContext> Ctx;
  if (Cache && Cache->lookup(Source, Verdict)) {
    ++Stats.OracleCacheHits;
  } else {
    Ctx = analyzeSource(Source);
    Verdict.FrontendOk = Ctx != nullptr;
    if (Ctx) {
      ExecResult Ref = interpret(*Ctx);
      ++Stats.OracleRuns;
      Verdict.Status = Ref.Status;
      Verdict.ExitCode = Ref.ExitCode;
      Verdict.Output = std::move(Ref.Output);
    }
    if (Cache)
      Cache->insert(Source, Verdict);
  }
  if (!Verdict.FrontendOk || Verdict.Status != ExecStatus::Ok)
    return false;

  // Compile under the finding's configuration. On a cache hit the AST was
  // never built; build it now (FrontendOk guarantees this succeeds).
  if (!Ctx)
    Ctx = analyzeSource(Source);
  if (!Ctx)
    return false;
  MiniCompiler CC(Spec.Config, /*Cov=*/nullptr, Spec.InjectBugs);
  CompileResult R = CC.compile(*Ctx);
  if (R.St == CompileResult::Status::Rejected)
    return false;

  switch (Spec.Effect) {
  case BugEffect::Crash:
    return R.crashed() &&
           normalizeSignature(BugEffect::Crash, R.CrashSignature) ==
               Spec.SignatureKey;
  case BugEffect::Performance:
    return !R.crashed() && R.CompileCost > 1'000'000;
  case BugEffect::WrongCode: {
    if (!R.ok())
      return false;
    VMResult V = executeModule(R.Module);
    if (V.Status == VMStatus::Timeout)
      return false;
    // Reconstruct the divergence kind the campaign would report for this
    // candidate and compare normalized keys, so e.g. an exit-code
    // miscompilation cannot silently degrade into a mere output diff.
    std::string Raw;
    if (V.Status != VMStatus::Ok)
      Raw = "miscompilation (trap)";
    else if (V.ExitCode != Verdict.ExitCode)
      Raw = "miscompilation (exit " + std::to_string(V.ExitCode) +
            " != " + std::to_string(Verdict.ExitCode) + ")";
    else if (V.Output != Verdict.Output)
      Raw = "miscompilation (output)";
    else
      return false;
    return normalizeSignature(BugEffect::WrongCode, Raw) ==
           Spec.SignatureKey;
  }
  }
  return false;
}
