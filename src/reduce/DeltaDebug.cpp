//===- reduce/DeltaDebug.cpp - generic ddmin over indexed chunks ---------===//

#include "reduce/DeltaDebug.h"

#include <algorithm>

using namespace spe;

namespace {

/// Splits \p Items into \p N near-equal contiguous chunks; chunk \p Index is
/// [out Begin, out End) into \p Items.
void chunkRange(size_t Size, size_t N, size_t Index, size_t &Begin,
                size_t &End) {
  Begin = Size * Index / N;
  End = Size * (Index + 1) / N;
}

} // namespace

std::vector<size_t> spe::ddmin(size_t N, const DdminPredicate &Test,
                               DdminStats *Stats) {
  DdminStats Local;
  DdminStats &S = Stats ? *Stats : Local;

  std::vector<size_t> Current(N);
  for (size_t I = 0; I < N; ++I)
    Current[I] = I;
  if (N == 0)
    return Current;

  size_t Granularity = 2;
  std::vector<size_t> Candidate;
  while (Current.size() >= 2) {
    bool Reduced = false;

    // Phase 1: reduce to a single chunk.
    for (size_t C = 0; C < Granularity && !Reduced; ++C) {
      size_t Begin, End;
      chunkRange(Current.size(), Granularity, C, Begin, End);
      if (Begin == End)
        continue;
      Candidate.assign(Current.begin() + static_cast<ptrdiff_t>(Begin),
                       Current.begin() + static_cast<ptrdiff_t>(End));
      if (Candidate.size() == Current.size())
        continue;
      ++S.Probes;
      if (Test(Candidate)) {
        ++S.Reductions;
        Current = Candidate;
        Granularity = 2;
        Reduced = true;
      }
    }
    if (Reduced)
      continue;

    // Phase 2: reduce to a complement.
    for (size_t C = 0; C < Granularity && !Reduced; ++C) {
      size_t Begin, End;
      chunkRange(Current.size(), Granularity, C, Begin, End);
      if (Begin == End)
        continue;
      Candidate.clear();
      Candidate.insert(Candidate.end(), Current.begin(),
                       Current.begin() + static_cast<ptrdiff_t>(Begin));
      Candidate.insert(Candidate.end(),
                       Current.begin() + static_cast<ptrdiff_t>(End),
                       Current.end());
      if (Candidate.empty() || Candidate.size() == Current.size())
        continue;
      ++S.Probes;
      if (Test(Candidate)) {
        ++S.Reductions;
        Current = Candidate;
        Granularity = std::max<size_t>(Granularity - 1, 2);
        Reduced = true;
      }
    }
    if (Reduced)
      continue;

    // Phase 3: refine granularity or stop.
    if (Granularity >= Current.size())
      break;
    Granularity = std::min(Current.size(), Granularity * 2);
    ++S.Rounds;
  }

  // Final polish: ddmin with chunking alone is 1-minimal only up to chunk
  // boundaries at the point it stops; a single element-wise sweep makes the
  // 1-minimality contract unconditional (and is cheap at this size).
  for (size_t I = 0; I < Current.size() && Current.size() > 1;) {
    Candidate = Current;
    Candidate.erase(Candidate.begin() + static_cast<ptrdiff_t>(I));
    ++S.Probes;
    if (Test(Candidate)) {
      ++S.Reductions;
      Current = std::move(Candidate);
    } else {
      ++I;
    }
  }
  if (Current.size() == 1) {
    ++S.Probes;
    Candidate.clear();
    if (Test(Candidate)) {
      ++S.Reductions;
      Current.clear();
    }
  }
  return Current;
}
