//===- reduce/SkeletonReducer.h - structural witness reduction -----------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural reduction of a bug-witness program, the triage pipeline's
/// analogue of C-Reduce in the paper's reporting workflow: parse the
/// witness, then shrink it while the signature-preservation oracle
/// (reduce/BugRepro.h) confirms the finding still reproduces. Three passes
/// iterate to a fixpoint:
///
///   1. Statement deletion -- ddmin (reduce/DeltaDebug.h) over the Sema
///      statement ids of every function body; deleted statements print as
///      `;` through AstPrinter::setDeletedStmts, and the 1-minimal kept set
///      is re-parsed as the new witness.
///   2. Declaration dropping -- a greedy sweep over top-level globals,
///      records, and non-main helper functions via setDeletedDecls; a decl
///      some surviving use still needs fails the candidate's own re-parse
///      and is kept automatically.
///   3. Expression simplification and loop shrinking -- a greedy pre-order
///      sweep proposing, per expression, its own operands or the literals
///      0/1 (and, for loop conditions, 0 -- which shrinks the loop to its
///      minimum trip count) via setReplacedExprs; a replacement is accepted
///      only when it both shrinks the token count and preserves the
///      signature, which guarantees termination.
///
/// Every accepted step re-parses printed source, so the pipeline exercises
/// the renderer/parser round-trip on each shrink; a candidate that fails its
/// own frontend is simply rejected by the oracle. Candidates containing a
/// statically unbounded loop (a frequent ddmin byproduct: the counter
/// update deleted, the loop kept) are rejected before the oracle by a
/// syntactic guard (ReducerOptions::BoundedLoopGuard) instead of by a full
/// interpreter-step-budget timeout. All probe order is fixed, so reduction
/// is deterministic for a deterministic oracle.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_REDUCE_SKELETONREDUCER_H
#define SPE_REDUCE_SKELETONREDUCER_H

#include "reduce/BugRepro.h"

#include <string>

namespace spe {

/// Pass toggles and bounds for one reducer instance.
struct ReducerOptions {
  bool DeleteStatements = true;
  bool DropDecls = true;
  bool SimplifyExpressions = true;
  /// Propose replacing loop conditions with 0 (minimum trip count). Only
  /// meaningful when SimplifyExpressions is on.
  bool ShrinkLoops = true;
  /// Statically reject probe candidates containing a provably unbounded
  /// loop before they reach the oracle. ddmin loves deleting a bounded
  /// loop's counter update while keeping its body, and every such probe
  /// costs a full interpreter step-budget exhaustion (Timeout) to reject
  /// dynamically; a syntactic check -- a loop whose body has no escape
  /// (break/return/goto), no call, no store through a pointer, and no
  /// store to any variable its condition reads cannot terminate once
  /// entered -- rejects them for the price of a parse. The check is
  /// conservative in the safe direction: it only ever rejects candidates
  /// (recorded in ReductionOutcome::UnboundedLoopProbesRejected), so a
  /// false positive costs a missed shrink, never an unsound reduction.
  bool BoundedLoopGuard = true;
  /// Fixpoint bound on pass iterations (each pass only re-runs while the
  /// previous round shrank something, so this rarely binds).
  unsigned MaxPasses = 4;
};

/// Outcome of reducing one witness.
struct ReductionOutcome {
  /// The reduced witness; equals the input when nothing could be removed
  /// (or when the witness does not reproduce the spec at all).
  std::string Reduced;
  uint64_t TokensBefore = 0;
  uint64_t TokensAfter = 0;
  uint64_t StatementsDeleted = 0;
  uint64_t DeclsDropped = 0;
  uint64_t ExprsSimplified = 0;
  /// Probe candidates the static bounded-loop guard rejected without
  /// consulting the oracle (ReducerOptions::BoundedLoopGuard).
  uint64_t UnboundedLoopProbesRejected = 0;
  /// Oracle-side probe counters (reduce/BugRepro.h).
  ReproStats Oracle;
};

/// Reduces bug witnesses structurally while preserving their signature.
class SkeletonReducer {
public:
  /// \p Backend: compiler the signature-preservation probes run against
  /// (reduce/BugRepro.h); null = in-process MiniCC.
  explicit SkeletonReducer(ReducerOptions Opts = {},
                           OracleCache *Cache = nullptr,
                           const CompilerBackend *Backend = nullptr)
      : Opts(Opts), Cache(Cache), Backend(Backend) {}

  /// Shrinks \p Witness while \p Spec keeps reproducing.
  ReductionOutcome reduce(const std::string &Witness,
                          const ReproSpec &Spec) const;

private:
  ReducerOptions Opts;
  OracleCache *Cache;
  const CompilerBackend *Backend;
};

/// \returns the number of lexical tokens of \p Source (EOF excluded), the
/// size metric of the paper's reporting pipeline and of ReductionStats.
uint64_t tokenCount(const std::string &Source);

} // namespace spe

#endif // SPE_REDUCE_SKELETONREDUCER_H
