//===- reduce/BugRepro.h - signature-preservation oracle -----------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interestingness predicate of the whole reduction pipeline: does a
/// candidate program still constitute a *valid report of the same bug*? A
/// candidate reproduces a finding iff
///
///   1. its own frontend (parse + Sema) accepts it,
///   2. the reference oracle runs it to completion -- UB / timeout /
///      unsupported candidates are rejected exactly like the campaign's
///      Section 5.4 exclusion, so reduction can never "simplify" a crash
///      reproducer into an invalid test case, and
///   3. compiling it under the finding's configuration shows the same
///      normalized behavioral signature (triage/BugSignature.h): the same
///      crashing-pass text for ICEs, a divergence of the same kind against
///      the candidate's *own* oracle verdict for miscompilations, and a
///      pathological compile cost for performance bugs.
///
/// The oracle half (the per-candidate interpretation) is the expensive part
/// and is memoized through the campaign-shared testing/OracleCache, so
/// re-probing a candidate text the campaign or an earlier ddmin round
/// already interpreted costs a lookup; an additional per-instance verdict
/// memo makes repeated probes of identical candidate text (ddmin revisits
/// subsets near convergence) free. Both layers replay deterministic
/// verdicts, so a ReproOracle is deterministic for a fixed spec.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_REDUCE_BUGREPRO_H
#define SPE_REDUCE_BUGREPRO_H

#include "compiler/Backend.h"
#include "compiler/Bugs.h"

#include <cstdint>
#include <string>
#include <unordered_map>

namespace spe {

class OracleCache;

/// What must be preserved across reduction: the compiler configuration the
/// finding manifested under and its normalized behavioral signature.
struct ReproSpec {
  CompilerConfig Config;
  BugEffect Effect = BugEffect::Crash;
  /// Normalized signature key (triage/normalizeSignature).
  std::string SignatureKey;
  /// The stdin sweep input the finding manifested under (FoundBug::Input);
  /// empty for the classic single empty-stdin execution. Probes interpret
  /// and execute candidates under this input, so a divergence that only
  /// manifests for one seeded spe_input() value keeps reproducing while
  /// its witness shrinks.
  std::string Input;
  /// Ground-truth injection switch; mirrors HarnessOptions::InjectBugs.
  bool InjectBugs = true;
};

/// Probe counters of one oracle instance.
struct ReproStats {
  uint64_t Probes = 0;          ///< reproduces() calls.
  uint64_t MemoHits = 0;        ///< Answered from the per-instance memo.
  uint64_t OracleRuns = 0;      ///< Reference interpretations performed.
  uint64_t OracleCacheHits = 0; ///< Verdicts replayed from the shared cache.
  /// Probes whose candidate parsed cleanly but exhausted the interpreter
  /// step budget (diverging candidates; cache-replayed Timeout verdicts
  /// count too). Each fresh one costs a full worst-case interpretation, so
  /// this is the bill the reducer's static bounded-loop guard
  /// (ReducerOptions::BoundedLoopGuard) exists to avoid.
  uint64_t TimeoutRuns = 0;

  void merge(const ReproStats &Other) {
    Probes += Other.Probes;
    MemoHits += Other.MemoHits;
    OracleRuns += Other.OracleRuns;
    OracleCacheHits += Other.OracleCacheHits;
    TimeoutRuns += Other.TimeoutRuns;
  }
};

/// Memoizing "does this candidate still show the bug" predicate.
class ReproOracle {
public:
  /// \p Backend is the compiler candidates are probed against; null = the
  /// in-process MiniCC driver honoring Spec.InjectBugs. Findings from an
  /// external backend must be re-probed through the same backend.
  explicit ReproOracle(ReproSpec Spec, OracleCache *Cache = nullptr,
                       const CompilerBackend *Backend = nullptr)
      : Spec(std::move(Spec)), Cache(Cache), Backend(Backend),
        Fallback(this->Spec.InjectBugs) {}

  /// \returns true iff \p Source is frontend-valid, oracle-accepted, and
  /// shows the spec's signature under the spec's configuration.
  bool reproduces(const std::string &Source);

  const ReproSpec &spec() const { return Spec; }
  const ReproStats &stats() const { return Stats; }

private:
  bool evaluate(const std::string &Source);

  ReproSpec Spec;
  OracleCache *Cache;
  const CompilerBackend *Backend;
  /// Used when Backend is null: the historical in-process probe path.
  InProcessBackend Fallback;
  ReproStats Stats;
  std::unordered_map<std::string, bool> Memo;
};

} // namespace spe

#endif // SPE_REDUCE_BUGREPRO_H
