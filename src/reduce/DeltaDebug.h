//===- reduce/DeltaDebug.h - generic ddmin over indexed chunks -----------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Zeller & Hildebrandt's ddmin ("Simplifying and Isolating Failure-Inducing
/// Input", TSE 2002), the workhorse behind the bug-triage pipeline's
/// structural reduction. The algorithm is generic: it minimizes an *index
/// set* [0, N) against a caller-supplied interestingness predicate, so the
/// same driver serves statement deletion, declaration dropping, and any
/// future chunk domain (the reducer maps indices onto AST entities).
///
/// Contract: the predicate must hold on the full index set; the result is a
/// 1-minimal subset on which it still holds (removing any single element
/// makes it fail). Probes are issued in a fixed order, so runs are
/// deterministic for a deterministic predicate -- the property the
/// post-campaign triage pass's thread-count invariance rests on.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_REDUCE_DELTADEBUG_H
#define SPE_REDUCE_DELTADEBUG_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace spe {

/// Counters of one ddmin run.
struct DdminStats {
  /// Predicate evaluations (excluding any the caller memoized away).
  uint64_t Probes = 0;
  /// Probes on which the predicate held (each one shrinks the set).
  uint64_t Reductions = 0;
  /// Granularity-doubling rounds.
  uint64_t Rounds = 0;
};

/// The interestingness predicate: receives the kept indices in ascending
/// order and \returns true when the property of interest (e.g. "the bug
/// still reproduces") holds for that subset.
using DdminPredicate = std::function<bool(const std::vector<size_t> &)>;

/// Runs ddmin over the index set [0, \p N). \p Test must hold on the full
/// set; \returns a 1-minimal subset (ascending) on which it still holds.
/// \p Stats, when non-null, accumulates probe counters.
std::vector<size_t> ddmin(size_t N, const DdminPredicate &Test,
                          DdminStats *Stats = nullptr);

} // namespace spe

#endif // SPE_REDUCE_DELTADEBUG_H
