//===- compiler/Passes.h - MiniCC optimization passes --------------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization pipeline of MiniCC. The passes implement exactly the
/// transformations the paper's running example motivates (Section 1,
/// Figure 1): constant folding and propagation, dead code elimination of
/// branches whose condition folds, store-to-load forwarding over stack
/// slots, algebraic peepholes (x - x, x ^ x, ...), CFG simplification, and
/// loop-invariant code motion. Every pass marks coverage points in a
/// CoverageRegistry so Figure 9's coverage experiment can be reproduced.
///
/// Pipelines: -O0 runs nothing; -O1 folds constants, simplifies control
/// flow and removes dead code; -O2 adds slot forwarding, copy propagation
/// and peepholes; -O3 adds loop-invariant code motion and a second
/// strengthened round.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_COMPILER_PASSES_H
#define SPE_COMPILER_PASSES_H

#include "compiler/Coverage.h"
#include "compiler/IR.h"

namespace spe {

/// Registers every pass's coverage catalog (fixed totals for Figure 9).
void registerPassCoverageCatalog(CoverageRegistry &Cov);

/// Individual passes. Each returns true when it changed the function and
/// marks coverage points through \p Cov (which may be null).
bool foldConstants(IRFunction &F, CoverageRegistry *Cov);
bool propagateCopies(IRFunction &F, CoverageRegistry *Cov);
bool eliminateDeadCode(IRFunction &F, CoverageRegistry *Cov);
bool simplifyControlFlow(IRFunction &F, CoverageRegistry *Cov);
bool forwardStores(IRFunction &F, CoverageRegistry *Cov);
bool simplifyAlgebra(IRFunction &F, CoverageRegistry *Cov);
bool hoistLoopInvariants(IRFunction &F, CoverageRegistry *Cov);

/// Runs the pipeline for \p OptLevel (0-3) over the whole module.
void runPipeline(IRModule &M, unsigned OptLevel, CoverageRegistry *Cov);

} // namespace spe

#endif // SPE_COMPILER_PASSES_H
