//===- compiler/Compiler.h - MiniCC driver --------------------------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniCC driver: feature extraction, IR generation, the optimization
/// pipeline with coverage instrumentation, and the injected-bug hooks. This
/// is the "compiler under test" of the differential harness; the paper's
/// GCC/Clang stand-ins are CompilerConfig personas over this driver.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_COMPILER_COMPILER_H
#define SPE_COMPILER_COMPILER_H

#include "compiler/Bugs.h"
#include "compiler/Coverage.h"
#include "compiler/IRGen.h"
#include "compiler/VM.h"

namespace spe {

/// Outcome of one compilation.
struct CompileResult {
  enum class Status {
    Ok,       ///< Module ready to execute.
    Crashed,  ///< Internal compiler error (an injected bug fired).
    Rejected, ///< Outside the compilable subset.
  };
  Status St = Status::Rejected;
  IRModule Module;
  std::string CrashSignature;
  /// The injected bug behind a crash, or 0.
  int CrashBugId = 0;
  /// All injected bugs that fired (crash, wrong-code, performance).
  std::vector<int> FiredBugs;
  /// Simulated compile cost; Performance bugs inflate it.
  uint64_t CompileCost = 0;
  std::string Error;

  bool ok() const { return St == Status::Ok; }
  bool crashed() const { return St == Status::Crashed; }
};

/// Compiles one analyzed translation unit under a configuration.
class MiniCompiler {
public:
  /// \param Config   persona/version/opt-level/machine mode.
  /// \param Cov      optional coverage registry (Figure 9).
  /// \param InjectBugs when false the ground-truth bugs are disabled; this
  ///        is the "fixed compiler" used by differential self-validation.
  MiniCompiler(CompilerConfig Config, CoverageRegistry *Cov = nullptr,
               bool InjectBugs = true)
      : Config(Config), Cov(Cov), InjectBugs(InjectBugs) {}

  CompileResult compile(ASTContext &Ctx) const;

  const CompilerConfig &config() const { return Config; }

private:
  CompilerConfig Config;
  CoverageRegistry *Cov;
  bool InjectBugs;
};

/// Applies a wrong-code mutilation to the module (test hook; the driver
/// calls it internally when a WrongCode bug fires).
void applyMutilation(IRModule &M, Mutilation Mut);

} // namespace spe

#endif // SPE_COMPILER_COMPILER_H
