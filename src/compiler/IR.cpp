//===- compiler/IR.cpp - MiniCC IR printing and verification -------------===//

#include "compiler/IR.h"

#include <set>

using namespace spe;

static std::string operandToString(const IROperand &O) {
  switch (O.K) {
  case IROperand::Kind::None:
    return "_";
  case IROperand::Kind::Const:
    return "#" + std::to_string(static_cast<int64_t>(O.Imm));
  case IROperand::Kind::Reg:
    return "%" + std::to_string(O.Reg);
  }
  return "?";
}

static std::string instrToString(const IRInstr &I) {
  std::string Out;
  auto Dst = [&] { return "%" + std::to_string(I.Dst) + " = "; };
  switch (I.Op) {
  case IROp::Const:
    Out = Dst() + "const " + operandToString(I.A);
    break;
  case IROp::Copy:
    Out = Dst() + "copy " + operandToString(I.A);
    break;
  case IROp::Bin:
    Out = Dst() + "bin " + binaryOpSpelling(I.Bin) + " " +
          operandToString(I.A) + ", " + operandToString(I.B);
    break;
  case IROp::Neg:
    Out = Dst() + "neg " + operandToString(I.A);
    break;
  case IROp::BitNot:
    Out = Dst() + "bitnot " + operandToString(I.A);
    break;
  case IROp::Not:
    Out = Dst() + "not " + operandToString(I.A);
    break;
  case IROp::AddrSlot:
    Out = Dst() + "addr slot" + std::to_string(I.SlotIndex);
    break;
  case IROp::AddrGlobal:
    Out = Dst() + "addr global" + std::to_string(I.GlobalIndex);
    break;
  case IROp::PtrAdd:
    Out = Dst() + "ptradd " + operandToString(I.A) + " + " +
          operandToString(I.B) + " * " + std::to_string(I.Scale);
    break;
  case IROp::PtrDiff:
    Out = Dst() + "ptrdiff (" + operandToString(I.A) + " - " +
          operandToString(I.B) + ") / " + std::to_string(I.Scale);
    break;
  case IROp::Load:
    Out = Dst() + "load " + operandToString(I.A);
    break;
  case IROp::Store:
    Out = "store " + operandToString(I.A) + " <- " + operandToString(I.B);
    break;
  case IROp::Memcpy:
    Out = "memcpy " + operandToString(I.A) + " <- " + operandToString(I.B) +
          ", " + std::to_string(I.Size);
    break;
  case IROp::Memset:
    Out = "memset " + operandToString(I.A) + ", 0, " +
          std::to_string(I.Size);
    break;
  case IROp::Call:
    Out = (I.HasDst ? Dst() : std::string()) + "call fn" +
          std::to_string(I.CalleeIndex) + "(";
    for (size_t A = 0; A < I.Args.size(); ++A) {
      if (A)
        Out += ", ";
      Out += operandToString(I.Args[A]);
    }
    Out += ")";
    break;
  case IROp::Printf:
    Out = "printf(...)";
    break;
  case IROp::Input:
    Out = Dst() + "input";
    break;
  case IROp::Ret:
    Out = "ret " + operandToString(I.A);
    break;
  case IROp::Br:
    Out = "br bb" + std::to_string(I.Succ0);
    break;
  case IROp::CondBr:
    Out = "condbr " + operandToString(I.A) + ", bb" +
          std::to_string(I.Succ0) + ", bb" + std::to_string(I.Succ1);
    break;
  case IROp::Unreachable:
    Out = "unreachable";
    break;
  }
  return Out;
}

std::string spe::printFunction(const IRFunction &F) {
  std::string Out = "function " + F.Name + " (params " +
                    std::to_string(F.NumParams) + ", slots " +
                    std::to_string(F.Slots.size()) + ")\n";
  for (size_t B = 0; B < F.Blocks.size(); ++B) {
    Out += "bb" + std::to_string(B) + ":\n";
    for (const IRInstr &I : F.Blocks[B].Instrs)
      Out += "  " + instrToString(I) + "\n";
  }
  return Out;
}

std::string spe::printModule(const IRModule &M) {
  std::string Out;
  for (const IRGlobal &G : M.Globals)
    Out += "global " + G.Name + " : " + G.Ty->toString() + " (" +
           std::to_string(G.InitBytes.size()) + " bytes)\n";
  for (const IRFunction &F : M.Functions)
    Out += printFunction(F);
  return Out;
}

static std::string verifyFunction(const IRModule &M, const IRFunction &F) {
  std::string Where = "function '" + F.Name + "': ";
  if (F.Blocks.empty())
    return Where + "no blocks";
  std::set<unsigned> Defined;
  auto CollectDef = [&](const IRInstr &I) {
    if (I.HasDst)
      Defined.insert(I.Dst);
  };
  for (const IRBlock &B : F.Blocks)
    for (const IRInstr &I : B.Instrs)
      CollectDef(I);
  for (size_t BI = 0; BI < F.Blocks.size(); ++BI) {
    const IRBlock &B = F.Blocks[BI];
    std::string Block = Where + "bb" + std::to_string(BI) + ": ";
    if (B.Instrs.empty())
      return Block + "empty block";
    for (size_t II = 0; II < B.Instrs.size(); ++II) {
      const IRInstr &I = B.Instrs[II];
      bool IsLast = II + 1 == B.Instrs.size();
      if (I.isTerminator() != IsLast)
        return Block + "terminator placement broken";
      auto CheckOperand = [&](const IROperand &O) -> bool {
        return !O.isReg() || Defined.count(O.Reg);
      };
      if (!CheckOperand(I.A) || !CheckOperand(I.B))
        return Block + "use of undefined register";
      for (const IROperand &O : I.Args)
        if (!CheckOperand(O))
          return Block + "use of undefined register in args";
      if (I.Op == IROp::AddrSlot &&
          (I.SlotIndex < 0 ||
           static_cast<size_t>(I.SlotIndex) >= F.Slots.size()))
        return Block + "slot index out of range";
      if (I.Op == IROp::AddrGlobal &&
          (I.GlobalIndex < 0 ||
           static_cast<size_t>(I.GlobalIndex) >= M.Globals.size()))
        return Block + "global index out of range";
      if (I.Op == IROp::Call &&
          (I.CalleeIndex < 0 ||
           static_cast<size_t>(I.CalleeIndex) >= M.Functions.size()))
        return Block + "callee index out of range";
      if ((I.Op == IROp::Br || I.Op == IROp::CondBr) &&
          (I.Succ0 >= F.Blocks.size() ||
           (I.Op == IROp::CondBr && I.Succ1 >= F.Blocks.size())))
        return Block + "successor out of range";
    }
  }
  return "";
}

std::string spe::verifyModule(const IRModule &M) {
  for (const IRFunction &F : M.Functions) {
    std::string Err = verifyFunction(M, F);
    if (!Err.empty())
      return Err;
  }
  return "";
}
