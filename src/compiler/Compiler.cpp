//===- compiler/Compiler.cpp - MiniCC driver ------------------------------===//

#include "compiler/Compiler.h"

#include "compiler/Passes.h"

using namespace spe;

void spe::applyMutilation(IRModule &M, Mutilation Mut) {
  if (Mut == Mutilation::None || M.MainIndex < 0)
    return;
  IRFunction &Main = M.Functions[static_cast<size_t>(M.MainIndex)];
  switch (Mut) {
  case Mutilation::None:
    return;
  case Mutilation::DropLastStore: {
    for (size_t B = Main.Blocks.size(); B-- > 0;) {
      std::vector<IRInstr> &Instrs = Main.Blocks[B].Instrs;
      for (size_t I = Instrs.size(); I-- > 0;) {
        if (Instrs[I].Op == IROp::Store) {
          Instrs.erase(Instrs.begin() + static_cast<long>(I));
          return;
        }
      }
    }
    return;
  }
  case Mutilation::DropFirstStore: {
    for (IRBlock &B : Main.Blocks) {
      for (size_t I = 0; I < B.Instrs.size(); ++I) {
        if (B.Instrs[I].Op == IROp::Store) {
          B.Instrs.erase(B.Instrs.begin() + static_cast<long>(I));
          return;
        }
      }
    }
    return;
  }
  case Mutilation::SwapFirstSubOperands: {
    for (IRFunction &F : M.Functions) {
      for (IRBlock &B : F.Blocks) {
        for (IRInstr &I : B.Instrs) {
          if (I.Op == IROp::Bin && I.Bin == BinaryOp::Sub) {
            std::swap(I.A, I.B);
            return;
          }
        }
      }
    }
    return;
  }
  case Mutilation::FoldSelfDivToOne: {
    for (IRFunction &F : M.Functions) {
      for (IRBlock &B : F.Blocks) {
        for (IRInstr &I : B.Instrs) {
          if (I.Op == IROp::Bin && I.Bin == BinaryOp::Div && I.A.isReg() &&
              I.B.isReg() && I.A.Reg == I.B.Reg) {
            IRInstr New;
            New.Op = IROp::Const;
            New.HasDst = true;
            New.Dst = I.Dst;
            New.Ty = I.Ty;
            New.A = IROperand::constant(1, I.Ty);
            I = std::move(New);
            return;
          }
        }
      }
    }
    return;
  }
  case Mutilation::NegateFirstCondBr: {
    for (IRFunction &F : M.Functions) {
      for (IRBlock &B : F.Blocks) {
        IRInstr &Term = B.Instrs.back();
        if (Term.Op == IROp::CondBr) {
          std::swap(Term.Succ0, Term.Succ1);
          return;
        }
      }
    }
    return;
  }
  }
}

CompileResult MiniCompiler::compile(ASTContext &Ctx) const {
  CompileResult Result;
  ProgramFeatures Features = extractFeatures(Ctx);

  IRGenResult Gen = generateIR(Ctx);
  if (!Gen.Ok) {
    Result.St = CompileResult::Status::Rejected;
    Result.Error = Gen.Error;
    return Result;
  }
  Result.Module = std::move(Gen.Module);
  Result.CompileCost = 1;
  for (const IRFunction &F : Result.Module.Functions)
    Result.CompileCost += F.Blocks.size();

  // Frontend coverage points keyed on syntactic features and on the
  // operators the lowering actually emitted.
  if (Cov) {
    Cov->hit("irgen.function");
    if (Features.NumLoops > 0)
      Cov->hit("irgen.loop");
    if (Features.NumGotos > 0)
      Cov->hit("irgen.goto");
    if (Features.NumCalls > 0)
      Cov->hit("irgen.call");
    if (Features.NumDerefs > 0)
      Cov->hit("irgen.pointer");
    if (Features.NumStructAccesses > 0)
      Cov->hit("irgen.struct");
    Cov->hit("irgen.branch");
    for (const IRFunction &F : Result.Module.Functions)
      for (const IRBlock &B : F.Blocks)
        for (const IRInstr &I : B.Instrs)
          if (I.Op == IROp::Bin)
            Cov->hit(std::string("irgen.bin.") + binaryOpSpelling(I.Bin));
  }

  // Injected bug hooks: crashes preempt everything; wrong-code mutilates
  // the module after optimization; performance inflates the cost.
  Mutilation PendingMut = Mutilation::None;
  if (InjectBugs) {
    for (const InjectedBug &B : bugDatabase()) {
      if (!B.firesOn(Config, Features))
        continue;
      Result.FiredBugs.push_back(B.Id);
      if (B.Effect == BugEffect::Crash && Result.CrashBugId == 0) {
        Result.St = CompileResult::Status::Crashed;
        Result.CrashSignature = B.CrashSignature;
        Result.CrashBugId = B.Id;
      } else if (B.Effect == BugEffect::WrongCode &&
                 PendingMut == Mutilation::None) {
        PendingMut = B.Mut;
      } else if (B.Effect == BugEffect::Performance) {
        Result.CompileCost += 1'000'000;
      }
    }
  }
  if (Result.CrashBugId != 0)
    return Result;

  runPipeline(Result.Module, Config.OptLevel, Cov);
  applyMutilation(Result.Module, PendingMut);

  std::string VerifyError = verifyModule(Result.Module);
  if (!VerifyError.empty()) {
    // A pipeline bug in MiniCC itself; surface it as a crash so the harness
    // notices instead of executing bogus IR.
    Result.St = CompileResult::Status::Crashed;
    Result.CrashSignature = "internal compiler error: " + VerifyError;
    return Result;
  }
  Result.St = CompileResult::Status::Ok;
  return Result;
}
