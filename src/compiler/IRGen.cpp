//===- compiler/IRGen.cpp - AST to MiniCC IR lowering --------------------===//

#include "compiler/IRGen.h"

#include <cassert>
#include <map>

using namespace spe;

namespace {

/// Evaluates a constant initializer expression; \returns false when the
/// expression is not a compile-time constant.
bool evalConstExpr(const Expr *E, int64_t &Out) {
  switch (E->kind()) {
  case Expr::Kind::IntegerLiteral:
    Out = static_cast<int64_t>(cast<IntegerLiteral>(E)->value());
    return true;
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    int64_t Sub;
    if (!evalConstExpr(U->sub(), Sub))
      return false;
    switch (U->op()) {
    case UnaryOp::Plus:
      Out = Sub;
      return true;
    case UnaryOp::Neg:
      Out = -Sub;
      return true;
    case UnaryOp::BitNot:
      Out = ~Sub;
      return true;
    case UnaryOp::LogicalNot:
      Out = Sub == 0 ? 1 : 0;
      return true;
    default:
      return false;
    }
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    int64_t L, R;
    if (!evalConstExpr(B->lhs(), L) || !evalConstExpr(B->rhs(), R))
      return false;
    switch (B->op()) {
    case BinaryOp::Add:
      Out = L + R;
      return true;
    case BinaryOp::Sub:
      Out = L - R;
      return true;
    case BinaryOp::Mul:
      Out = L * R;
      return true;
    case BinaryOp::Div:
      if (R == 0)
        return false;
      Out = L / R;
      return true;
    case BinaryOp::Rem:
      if (R == 0)
        return false;
      Out = L % R;
      return true;
    case BinaryOp::Shl:
      if (R < 0 || R > 63)
        return false;
      Out = static_cast<int64_t>(static_cast<uint64_t>(L) << R);
      return true;
    case BinaryOp::Shr:
      if (R < 0 || R > 63)
        return false;
      Out = L >> R;
      return true;
    case BinaryOp::BitAnd:
      Out = L & R;
      return true;
    case BinaryOp::BitOr:
      Out = L | R;
      return true;
    case BinaryOp::BitXor:
      Out = L ^ R;
      return true;
    default:
      return false;
    }
  }
  case Expr::Kind::Cast:
    return evalConstExpr(cast<CastExpr>(E)->sub(), Out);
  case Expr::Kind::SizeOf: {
    const auto *S = cast<SizeOfExpr>(E);
    const Type *Ty =
        S->typeOperand() ? S->typeOperand() : S->exprOperand()->type();
    Out = static_cast<int64_t>(Ty->isPointer() ? 8 : Ty->sizeInBytes());
    return true;
  }
  default:
    return false;
  }
}

/// Writes a constant scalar into a global's init image.
void writeScalarBytes(std::vector<uint8_t> &Bytes, uint64_t Offset,
                      uint64_t Size, uint64_t Value) {
  for (uint64_t I = 0; I < Size; ++I)
    Bytes[Offset + I] = static_cast<uint8_t>(Value >> (8 * I));
}

/// Fills a global's init image from an initializer expression. \returns
/// false for non-constant initializers.
bool fillGlobalInit(std::vector<uint8_t> &Bytes, uint64_t Offset,
                    const Type *Ty, const Expr *Init) {
  if (const auto *List = dyn_cast<InitListExpr>(Init)) {
    if (Ty->isArray()) {
      const Type *Elem = Ty->elementType();
      for (size_t I = 0; I < List->elements().size(); ++I)
        if (!fillGlobalInit(Bytes, Offset + I * Elem->sizeInBytes(), Elem,
                            List->elements()[I]))
          return false;
      return true;
    }
    if (Ty->isStruct()) {
      const auto &Fields = Ty->fields();
      for (size_t I = 0; I < List->elements().size() && I < Fields.size();
           ++I)
        if (!fillGlobalInit(Bytes, Offset + Fields[I].Offset, Fields[I].Ty,
                            List->elements()[I]))
          return false;
      return true;
    }
    if (List->elements().size() == 1)
      return fillGlobalInit(Bytes, Offset, Ty, List->elements()[0]);
    return List->elements().empty();
  }
  int64_t Value;
  if (!Ty->isInteger() || !evalConstExpr(Init, Value)) {
    // Pointer globals may be initialized with a literal 0.
    if (Ty->isPointer() && evalConstExpr(Init, Value) && Value == 0)
      return true;
    return false;
  }
  writeScalarBytes(Bytes, Offset, Ty->sizeInBytes(),
                   static_cast<uint64_t>(Value));
  return true;
}

/// Per-function lowering state.
class FunctionLowering {
public:
  FunctionLowering(ASTContext &Ctx, IRModule &Module,
                   std::map<const VarDecl *, int> &GlobalIndex,
                   std::string &Error)
      : Ctx(Ctx), Module(Module), GlobalIndex(GlobalIndex), Error(Error) {}

  bool lower(const FunctionDecl *FD, IRFunction &F);

private:
  // --- plumbing ---------------------------------------------------------
  bool failed() const { return !Error.empty(); }
  void fail(const std::string &Message) {
    if (Error.empty())
      Error = Message;
  }
  unsigned newBlock() {
    Fn->Blocks.emplace_back();
    return static_cast<unsigned>(Fn->Blocks.size() - 1);
  }
  IRBlock &block(unsigned Id) { return Fn->Blocks[Id]; }
  bool terminated() const {
    const IRBlock &B = Fn->Blocks[Cur];
    return !B.Instrs.empty() && B.Instrs.back().isTerminator();
  }
  /// Appends to the current block; if it is already terminated, opens a
  /// fresh (unreachable) block first so the IR stays well formed.
  IRInstr &append(IRInstr I) {
    if (terminated())
      Cur = newBlock();
    Fn->Blocks[Cur].Instrs.push_back(std::move(I));
    return Fn->Blocks[Cur].Instrs.back();
  }
  void setCurrent(unsigned Block) { Cur = Block; }
  void branchTo(unsigned Target) {
    if (terminated())
      return;
    IRInstr I;
    I.Op = IROp::Br;
    I.Succ0 = Target;
    append(std::move(I));
  }
  void condBranch(IROperand Cond, unsigned TrueB, unsigned FalseB) {
    IRInstr I;
    I.Op = IROp::CondBr;
    I.A = Cond;
    I.Succ0 = TrueB;
    I.Succ1 = FalseB;
    append(std::move(I));
  }

  int slotOf(const VarDecl *V) {
    auto It = SlotIndex.find(V);
    return It == SlotIndex.end() ? -1 : It->second;
  }
  int addSlot(const VarDecl *V) {
    IRSlot S;
    S.Name = V->name();
    S.Ty = V->type();
    S.Size = V->type()->sizeInBytes();
    Fn->Slots.push_back(S);
    int Index = static_cast<int>(Fn->Slots.size() - 1);
    SlotIndex[V] = Index;
    return Index;
  }

  // --- helpers ----------------------------------------------------------
  const Type *ptrTo(const Type *T) { return Ctx.types().pointerTo(T); }
  IROperand emitUn(IROp Op, IROperand A, const Type *Ty);
  IROperand emitBin(BinaryOp Op, IROperand A, IROperand B, const Type *Ty);
  IROperand emitLoad(IROperand Addr, const Type *Ty);
  void emitStore(IROperand Addr, IROperand Value);
  IROperand emitAddrSlot(int Slot, const Type *PointeeTy);
  IROperand emitAddrGlobal(int Global, const Type *PointeeTy);
  IROperand emitPtrAdd(IROperand Ptr, IROperand Delta, uint64_t Scale,
                       const Type *Ty);
  /// Converts \p V to \p To (constant-folds integer conversions).
  IROperand convert(IROperand V, const Type *To);
  const Type *promoted(const Type *Ty);
  const Type *commonType(const Type *A, const Type *B);
  /// Materializes a scalar into a fresh temp slot; \returns the slot index.
  int makeTempSlot(const Type *Ty);

  // --- expressions -------------------------------------------------------
  IROperand genExpr(const Expr *E);
  bool genAddr(const Expr *E, IROperand &Out);
  IROperand genBinary(const BinaryExpr *B);
  IROperand genCall(const CallExpr *C);
  IROperand genCond(const ConditionalExpr *C);
  IROperand decayIfNeeded(const Expr *E, IROperand Addr);

  // --- statements --------------------------------------------------------
  void genStmt(const Stmt *S);
  void genVarDecl(const VarDecl *V);
  void genLocalInit(IROperand Addr, const Type *Ty, const Expr *Init);
  unsigned labelBlock(const std::string &Name);

  ASTContext &Ctx;
  IRModule &Module;
  std::map<const VarDecl *, int> &GlobalIndex;
  std::string &Error;

  IRFunction *Fn = nullptr;
  unsigned Cur = 0;
  std::map<const VarDecl *, int> SlotIndex;
  std::map<std::string, unsigned> LabelBlocks;
  std::vector<unsigned> BreakTargets;
  std::vector<unsigned> ContinueTargets;
};

IROperand FunctionLowering::emitUn(IROp Op, IROperand A, const Type *Ty) {
  IRInstr I;
  I.Op = Op;
  I.A = A;
  I.Ty = Ty;
  I.HasDst = true;
  I.Dst = Fn->newReg();
  append(std::move(I));
  return IROperand::reg(Fn->NumRegs - 1, Ty);
}

IROperand FunctionLowering::emitBin(BinaryOp Op, IROperand A, IROperand B,
                                    const Type *Ty) {
  IRInstr I;
  I.Op = IROp::Bin;
  I.Bin = Op;
  I.A = A;
  I.B = B;
  I.Ty = Ty;
  I.HasDst = true;
  I.Dst = Fn->newReg();
  append(std::move(I));
  return IROperand::reg(Fn->NumRegs - 1, Ty);
}

IROperand FunctionLowering::emitLoad(IROperand Addr, const Type *Ty) {
  IRInstr I;
  I.Op = IROp::Load;
  I.A = Addr;
  I.Ty = Ty;
  I.HasDst = true;
  I.Dst = Fn->newReg();
  append(std::move(I));
  return IROperand::reg(Fn->NumRegs - 1, Ty);
}

void FunctionLowering::emitStore(IROperand Addr, IROperand Value) {
  IRInstr I;
  I.Op = IROp::Store;
  I.A = Addr;
  I.B = Value;
  I.Ty = Value.Ty;
  append(std::move(I));
}

IROperand FunctionLowering::emitAddrSlot(int Slot, const Type *PointeeTy) {
  IRInstr I;
  I.Op = IROp::AddrSlot;
  I.SlotIndex = Slot;
  I.Ty = ptrTo(PointeeTy);
  I.HasDst = true;
  I.Dst = Fn->newReg();
  append(std::move(I));
  return IROperand::reg(Fn->NumRegs - 1, I.Ty);
}

IROperand FunctionLowering::emitAddrGlobal(int Global,
                                           const Type *PointeeTy) {
  IRInstr I;
  I.Op = IROp::AddrGlobal;
  I.GlobalIndex = Global;
  I.Ty = ptrTo(PointeeTy);
  I.HasDst = true;
  I.Dst = Fn->newReg();
  append(std::move(I));
  return IROperand::reg(Fn->NumRegs - 1, I.Ty);
}

IROperand FunctionLowering::emitPtrAdd(IROperand Ptr, IROperand Delta,
                                       uint64_t Scale, const Type *Ty) {
  IRInstr I;
  I.Op = IROp::PtrAdd;
  I.A = Ptr;
  I.B = Delta;
  I.Scale = Scale;
  I.Ty = Ty;
  I.HasDst = true;
  I.Dst = Fn->newReg();
  append(std::move(I));
  return IROperand::reg(Fn->NumRegs - 1, Ty);
}

IROperand FunctionLowering::convert(IROperand V, const Type *To) {
  if (V.Ty == To || failed())
    return V;
  if (V.isConst() && V.Ty && V.Ty->isInteger() && To->isInteger())
    return IROperand::constant(normalizeIntValue(To, V.Imm), To);
  return emitUn(IROp::Copy, V, To);
}

const Type *FunctionLowering::promoted(const Type *Ty) {
  if (Ty->isInteger() && Ty->intWidth() < 32)
    return Ctx.types().int32Type();
  return Ty;
}

const Type *FunctionLowering::commonType(const Type *A, const Type *B) {
  A = promoted(A);
  B = promoted(B);
  if (A == B)
    return A;
  if (!A->isInteger() || !B->isInteger())
    return A;
  unsigned Width = std::max(A->intWidth(), B->intWidth());
  bool Signed;
  if (A->isSigned() == B->isSigned()) {
    Signed = A->isSigned();
  } else {
    const Type *SignedT = A->isSigned() ? A : B;
    const Type *UnsignedT = A->isSigned() ? B : A;
    Signed = SignedT->intWidth() > UnsignedT->intWidth();
  }
  return Ctx.types().intType(Width, Signed);
}

int FunctionLowering::makeTempSlot(const Type *Ty) {
  IRSlot S;
  S.Name = "$tmp" + std::to_string(Fn->Slots.size());
  S.Ty = Ty;
  S.Size = Ty->isPointer() ? 8 : Ty->sizeInBytes();
  Fn->Slots.push_back(S);
  return static_cast<int>(Fn->Slots.size() - 1);
}

IROperand FunctionLowering::decayIfNeeded(const Expr *E, IROperand Addr) {
  // Array-typed expressions decay to a pointer to the first element.
  const Type *Ty = E->type();
  assert(Ty->isArray() && "decay on non-array");
  // Re-type via a copy so the operand type is consistent.
  return convert(Addr, ptrTo(Ty->elementType()));
}

bool FunctionLowering::genAddr(const Expr *E, IROperand &Out) {
  if (failed())
    return false;
  switch (E->kind()) {
  case Expr::Kind::DeclRef: {
    const VarDecl *V = cast<DeclRefExpr>(E)->decl();
    if (!V) {
      fail("unresolved reference");
      return false;
    }
    int Slot = slotOf(V);
    if (Slot >= 0) {
      Out = emitAddrSlot(Slot, V->type());
      return true;
    }
    auto It = GlobalIndex.find(V);
    if (It == GlobalIndex.end()) {
      fail("reference to unknown variable '" + V->name() + "'");
      return false;
    }
    Out = emitAddrGlobal(It->second, V->type());
    return true;
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->op() != UnaryOp::Deref) {
      fail("address of non-lvalue");
      return false;
    }
    Out = genExpr(U->sub());
    return !failed();
  }
  case Expr::Kind::Index: {
    const auto *Ix = cast<IndexExpr>(E);
    IROperand Base = genExpr(Ix->base());
    IROperand Index = genExpr(Ix->index());
    if (failed())
      return false;
    uint64_t ElemSize = E->type()->isArray()
                            ? E->type()->sizeInBytes()
                            : E->type()->sizeInBytes();
    Out = emitPtrAdd(Base, convert(Index, Ctx.types().longType()), ElemSize,
                     ptrTo(E->type()));
    return true;
  }
  case Expr::Kind::Member: {
    const auto *M = cast<MemberExpr>(E);
    IROperand Base;
    const Type *StructTy;
    if (M->isArrow()) {
      Base = genExpr(M->base());
      StructTy = M->base()->type()->isArray()
                     ? M->base()->type()->elementType()
                     : M->base()->type()->elementType();
    } else {
      if (!genAddr(M->base(), Base))
        return false;
      StructTy = M->base()->type();
    }
    if (failed())
      return false;
    const Type::Field &F = StructTy->fields()[M->fieldIndex()];
    Out = emitPtrAdd(Base,
                     IROperand::constant(F.Offset, Ctx.types().longType()),
                     1, ptrTo(F.Ty));
    return true;
  }
  case Expr::Kind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    IROperand Cond = genExpr(C->cond());
    if (failed())
      return false;
    unsigned TrueB = newBlock(), FalseB = newBlock(), Join = newBlock();
    const Type *SlotTy = ptrTo(E->type());
    int Temp = makeTempSlot(SlotTy);
    condBranch(Cond, TrueB, FalseB);
    setCurrent(TrueB);
    IROperand TrueAddr;
    if (!genAddr(C->trueExpr(), TrueAddr))
      return false;
    emitStore(emitAddrSlot(Temp, SlotTy), TrueAddr);
    branchTo(Join);
    setCurrent(FalseB);
    IROperand FalseAddr;
    if (!genAddr(C->falseExpr(), FalseAddr))
      return false;
    emitStore(emitAddrSlot(Temp, SlotTy), FalseAddr);
    branchTo(Join);
    setCurrent(Join);
    Out = emitLoad(emitAddrSlot(Temp, SlotTy), SlotTy);
    return true;
  }
  default:
    fail("expression is not an lvalue");
    return false;
  }
}

IROperand FunctionLowering::genExpr(const Expr *E) {
  if (failed())
    return IROperand::none();
  switch (E->kind()) {
  case Expr::Kind::IntegerLiteral:
    return IROperand::constant(
        normalizeIntValue(E->type(), cast<IntegerLiteral>(E)->value()),
        E->type());
  case Expr::Kind::StringLiteral:
    fail("string literal outside printf");
    return IROperand::none();
  case Expr::Kind::DeclRef: {
    const VarDecl *V = cast<DeclRefExpr>(E)->decl();
    IROperand Addr;
    if (!genAddr(E, Addr))
      return IROperand::none();
    if (V->type()->isArray())
      return decayIfNeeded(E, Addr);
    if (!V->type()->isScalar()) {
      fail("aggregate rvalue");
      return IROperand::none();
    }
    return emitLoad(Addr, V->type());
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    switch (U->op()) {
    case UnaryOp::Plus:
      return convert(genExpr(U->sub()), E->type());
    case UnaryOp::Neg:
      return emitUn(IROp::Neg, convert(genExpr(U->sub()), E->type()),
                    E->type());
    case UnaryOp::BitNot:
      return emitUn(IROp::BitNot, convert(genExpr(U->sub()), E->type()),
                    E->type());
    case UnaryOp::LogicalNot:
      return emitUn(IROp::Not, genExpr(U->sub()), E->type());
    case UnaryOp::Deref: {
      IROperand Addr = genExpr(U->sub());
      if (failed())
        return IROperand::none();
      if (E->type()->isArray()) {
        IROperand Decayed = Addr;
        return convert(Decayed, ptrTo(E->type()->elementType()));
      }
      return emitLoad(Addr, E->type());
    }
    case UnaryOp::AddrOf: {
      IROperand Addr;
      if (!genAddr(U->sub(), Addr))
        return IROperand::none();
      return convert(Addr, E->type());
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec: {
      IROperand Addr;
      if (!genAddr(U->sub(), Addr))
        return IROperand::none();
      const Type *Ty = U->sub()->type();
      IROperand Old = emitLoad(Addr, Ty);
      bool IsInc =
          U->op() == UnaryOp::PreInc || U->op() == UnaryOp::PostInc;
      IROperand New;
      if (Ty->isPointer()) {
        New = emitPtrAdd(
            Old,
            IROperand::constant(IsInc ? 1 : static_cast<uint64_t>(-1),
                                Ctx.types().longType()),
            Ty->elementType()->sizeInBytes(), Ty);
      } else {
        const Type *PTy = promoted(Ty);
        New = emitBin(IsInc ? BinaryOp::Add : BinaryOp::Sub,
                      convert(Old, PTy), IROperand::constant(1, PTy), PTy);
        New = convert(New, Ty);
      }
      emitStore(Addr, New);
      bool IsPost =
          U->op() == UnaryOp::PostInc || U->op() == UnaryOp::PostDec;
      return IsPost ? Old : New;
    }
    }
    return IROperand::none();
  }
  case Expr::Kind::Binary:
    return genBinary(cast<BinaryExpr>(E));
  case Expr::Kind::Conditional:
    return genCond(cast<ConditionalExpr>(E));
  case Expr::Kind::Call:
    return genCall(cast<CallExpr>(E));
  case Expr::Kind::Index:
  case Expr::Kind::Member: {
    IROperand Addr;
    if (!genAddr(E, Addr))
      return IROperand::none();
    if (E->type()->isArray())
      return convert(Addr, ptrTo(E->type()->elementType()));
    if (!E->type()->isScalar()) {
      fail("aggregate rvalue");
      return IROperand::none();
    }
    return emitLoad(Addr, E->type());
  }
  case Expr::Kind::Cast: {
    IROperand V = genExpr(cast<CastExpr>(E)->sub());
    if (failed())
      return IROperand::none();
    return convert(V, E->type());
  }
  case Expr::Kind::SizeOf: {
    const auto *S = cast<SizeOfExpr>(E);
    const Type *Ty =
        S->typeOperand() ? S->typeOperand() : S->exprOperand()->type();
    uint64_t Size = Ty->isPointer() ? 8 : Ty->sizeInBytes();
    return IROperand::constant(Size, E->type());
  }
  case Expr::Kind::InitList:
    fail("initializer list in expression");
    return IROperand::none();
  }
  return IROperand::none();
}

IROperand FunctionLowering::genBinary(const BinaryExpr *B) {
  BinaryOp Op = B->op();

  if (Op == BinaryOp::Comma) {
    genExpr(B->lhs());
    return genExpr(B->rhs());
  }

  if (Op == BinaryOp::LogicalAnd || Op == BinaryOp::LogicalOr) {
    // Short-circuit via a temp slot holding the 0/1 result.
    const Type *ResTy = B->type();
    int Temp = makeTempSlot(ResTy);
    IROperand L = genExpr(B->lhs());
    if (failed())
      return IROperand::none();
    unsigned RhsB = newBlock(), ShortB = newBlock(), Join = newBlock();
    if (Op == BinaryOp::LogicalAnd)
      condBranch(L, RhsB, ShortB);
    else
      condBranch(L, ShortB, RhsB);
    // Short-circuit value: 0 for &&, 1 for ||.
    setCurrent(ShortB);
    emitStore(emitAddrSlot(Temp, ResTy),
              IROperand::constant(Op == BinaryOp::LogicalAnd ? 0 : 1, ResTy));
    branchTo(Join);
    setCurrent(RhsB);
    IROperand R = genExpr(B->rhs());
    if (failed())
      return IROperand::none();
    IROperand RBool = emitUn(IROp::Not, emitUn(IROp::Not, R, ResTy), ResTy);
    emitStore(emitAddrSlot(Temp, ResTy), RBool);
    branchTo(Join);
    setCurrent(Join);
    return emitLoad(emitAddrSlot(Temp, ResTy), ResTy);
  }

  if (isAssignmentOp(Op)) {
    if (Op == BinaryOp::Assign && B->lhs()->type()->isStruct()) {
      IROperand Dst, Src;
      if (!genAddr(B->lhs(), Dst) || !genAddr(B->rhs(), Src))
        return IROperand::none();
      IRInstr I;
      I.Op = IROp::Memcpy;
      I.A = Dst;
      I.B = Src;
      I.Size = B->lhs()->type()->sizeInBytes();
      append(std::move(I));
      return IROperand::none();
    }
    IROperand Addr;
    if (!genAddr(B->lhs(), Addr))
      return IROperand::none();
    const Type *LTy = B->lhs()->type();
    IROperand Result;
    if (Op == BinaryOp::Assign) {
      Result = convert(genExpr(B->rhs()), LTy);
    } else {
      IROperand Old = emitLoad(Addr, LTy);
      IROperand R = genExpr(B->rhs());
      if (failed())
        return IROperand::none();
      BinaryOp Base;
      switch (Op) {
      case BinaryOp::AddAssign:
        Base = BinaryOp::Add;
        break;
      case BinaryOp::SubAssign:
        Base = BinaryOp::Sub;
        break;
      case BinaryOp::MulAssign:
        Base = BinaryOp::Mul;
        break;
      case BinaryOp::DivAssign:
        Base = BinaryOp::Div;
        break;
      case BinaryOp::RemAssign:
        Base = BinaryOp::Rem;
        break;
      case BinaryOp::ShlAssign:
        Base = BinaryOp::Shl;
        break;
      case BinaryOp::ShrAssign:
        Base = BinaryOp::Shr;
        break;
      case BinaryOp::AndAssign:
        Base = BinaryOp::BitAnd;
        break;
      case BinaryOp::XorAssign:
        Base = BinaryOp::BitXor;
        break;
      default:
        Base = BinaryOp::BitOr;
        break;
      }
      if (LTy->isPointer()) {
        IROperand Delta = convert(R, Ctx.types().longType());
        if (Base == BinaryOp::Sub)
          Delta = emitUn(IROp::Neg, Delta, Ctx.types().longType());
        Result = emitPtrAdd(Old, Delta, LTy->elementType()->sizeInBytes(),
                            LTy);
      } else if (Base == BinaryOp::Shl || Base == BinaryOp::Shr) {
        const Type *Ty = promoted(LTy);
        Result = convert(
            emitBin(Base, convert(Old, Ty), convert(R, Ctx.types().int32Type()), Ty),
            LTy);
      } else {
        const Type *Ty = commonType(LTy, R.Ty ? R.Ty : LTy);
        Result =
            convert(emitBin(Base, convert(Old, Ty), convert(R, Ty), Ty), LTy);
      }
    }
    if (failed())
      return IROperand::none();
    emitStore(Addr, Result);
    return Result;
  }

  IROperand L = genExpr(B->lhs());
  IROperand R = genExpr(B->rhs());
  if (failed())
    return IROperand::none();

  bool LPtr = L.Ty && L.Ty->isPointer();
  bool RPtr = R.Ty && R.Ty->isPointer();
  if (Op == BinaryOp::Add && (LPtr || RPtr)) {
    IROperand P = LPtr ? L : R;
    IROperand N = LPtr ? R : L;
    return emitPtrAdd(P, convert(N, Ctx.types().longType()),
                      P.Ty->elementType()->sizeInBytes(), P.Ty);
  }
  if (Op == BinaryOp::Sub && LPtr) {
    if (RPtr) {
      IRInstr I;
      I.Op = IROp::PtrDiff;
      I.A = L;
      I.B = R;
      I.Scale = L.Ty->elementType()->sizeInBytes();
      I.Ty = B->type();
      I.HasDst = true;
      I.Dst = Fn->newReg();
      append(std::move(I));
      return IROperand::reg(Fn->NumRegs - 1, B->type());
    }
    IROperand Delta =
        emitUn(IROp::Neg, convert(R, Ctx.types().longType()),
               Ctx.types().longType());
    return emitPtrAdd(L, Delta, L.Ty->elementType()->sizeInBytes(), L.Ty);
  }
  if (isComparisonOp(Op)) {
    if (LPtr || RPtr) {
      IROperand PL = LPtr ? L : convert(L, R.Ty);
      IROperand PR = RPtr ? R : convert(R, L.Ty);
      return emitBin(Op, PL, PR, B->type());
    }
    const Type *Ty = commonType(L.Ty, R.Ty);
    return emitBin(Op, convert(L, Ty), convert(R, Ty), B->type());
  }
  if (Op == BinaryOp::Shl || Op == BinaryOp::Shr) {
    const Type *Ty = B->type();
    return emitBin(Op, convert(L, Ty), convert(R, Ctx.types().int32Type()),
                   Ty);
  }
  const Type *Ty = B->type();
  return emitBin(Op, convert(L, Ty), convert(R, Ty), Ty);
}

IROperand FunctionLowering::genCond(const ConditionalExpr *C) {
  IROperand Cond = genExpr(C->cond());
  if (failed())
    return IROperand::none();
  const Type *Ty = C->type();
  if (!Ty->isScalar()) {
    fail("aggregate conditional rvalue");
    return IROperand::none();
  }
  int Temp = makeTempSlot(Ty);
  unsigned TrueB = newBlock(), FalseB = newBlock(), Join = newBlock();
  condBranch(Cond, TrueB, FalseB);
  setCurrent(TrueB);
  IROperand TV = convert(genExpr(C->trueExpr()), Ty);
  if (failed())
    return IROperand::none();
  emitStore(emitAddrSlot(Temp, Ty), TV);
  branchTo(Join);
  setCurrent(FalseB);
  IROperand FV = convert(genExpr(C->falseExpr()), Ty);
  if (failed())
    return IROperand::none();
  emitStore(emitAddrSlot(Temp, Ty), FV);
  branchTo(Join);
  setCurrent(Join);
  return emitLoad(emitAddrSlot(Temp, Ty), Ty);
}

IROperand FunctionLowering::genCall(const CallExpr *C) {
  if (C->callee()->name() == "printf") {
    if (C->args().empty() || !isa<StringLiteral>(C->args()[0])) {
      fail("printf without literal format");
      return IROperand::none();
    }
    IRInstr I;
    I.Op = IROp::Printf;
    I.Fmt = cast<StringLiteral>(C->args()[0])->value();
    for (size_t A = 1; A < C->args().size(); ++A) {
      I.Args.push_back(genExpr(C->args()[A]));
      if (failed())
        return IROperand::none();
    }
    append(std::move(I));
    return IROperand::constant(0, Ctx.types().int32Type());
  }
  if (C->callee()->name() == "spe_input") {
    IRInstr I;
    I.Op = IROp::Input;
    I.HasDst = true;
    I.Dst = Fn->newReg();
    I.Ty = Ctx.types().int32Type();
    append(std::move(I));
    return IROperand::reg(Fn->NumRegs - 1, Ctx.types().int32Type());
  }
  const FunctionDecl *Callee = C->callee()->functionDecl();
  if (!Callee || !Callee->isDefinition()) {
    fail("call to undefined function");
    return IROperand::none();
  }
  IRInstr I;
  I.Op = IROp::Call;
  I.CalleeIndex = Module.functionIndex(Callee->name());
  for (size_t A = 0; A < C->args().size(); ++A) {
    IROperand Arg = genExpr(C->args()[A]);
    if (failed())
      return IROperand::none();
    I.Args.push_back(convert(Arg, Callee->params()[A]->type()));
  }
  const Type *RetTy = Callee->returnType();
  if (!RetTy->isVoid()) {
    I.HasDst = true;
    I.Dst = Fn->newReg();
    I.Ty = RetTy;
    append(std::move(I));
    return IROperand::reg(Fn->NumRegs - 1, RetTy);
  }
  append(std::move(I));
  return IROperand::none();
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

unsigned FunctionLowering::labelBlock(const std::string &Name) {
  auto It = LabelBlocks.find(Name);
  if (It != LabelBlocks.end())
    return It->second;
  unsigned Block = newBlock();
  LabelBlocks[Name] = Block;
  return Block;
}

void FunctionLowering::genLocalInit(IROperand Addr, const Type *Ty,
                                    const Expr *Init) {
  if (const auto *List = dyn_cast<InitListExpr>(Init)) {
    // Zero-fill, then write the given elements.
    IRInstr I;
    I.Op = IROp::Memset;
    I.A = Addr;
    I.Size = Ty->sizeInBytes();
    append(std::move(I));
    if (Ty->isArray()) {
      const Type *Elem = Ty->elementType();
      for (size_t E = 0; E < List->elements().size(); ++E) {
        IROperand ElemAddr = emitPtrAdd(
            Addr,
            IROperand::constant(E, Ctx.types().longType()),
            Elem->sizeInBytes(), ptrTo(Elem));
        genLocalInit(ElemAddr, Elem, List->elements()[E]);
      }
      return;
    }
    if (Ty->isStruct()) {
      const auto &Fields = Ty->fields();
      for (size_t E = 0; E < List->elements().size() && E < Fields.size();
           ++E) {
        IROperand FieldAddr = emitPtrAdd(
            Addr,
            IROperand::constant(Fields[E].Offset, Ctx.types().longType()), 1,
            ptrTo(Fields[E].Ty));
        genLocalInit(FieldAddr, Fields[E].Ty, List->elements()[E]);
      }
      return;
    }
    if (!List->elements().empty())
      genLocalInit(Addr, Ty, List->elements()[0]);
    return;
  }
  IROperand V = genExpr(Init);
  if (failed())
    return;
  if (!Ty->isScalar()) {
    fail("aggregate initializer expression");
    return;
  }
  emitStore(Addr, convert(V, Ty));
}

void FunctionLowering::genVarDecl(const VarDecl *V) {
  int Slot = addSlot(V);
  if (V->init()) {
    IROperand Addr = emitAddrSlot(Slot, V->type());
    genLocalInit(Addr, V->type(), V->init());
  }
}

void FunctionLowering::genStmt(const Stmt *S) {
  if (failed() || !S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->body())
      genStmt(Child);
    return;
  case Stmt::Kind::Decl:
    for (const VarDecl *V : cast<DeclStmt>(S)->decls())
      genVarDecl(V);
    return;
  case Stmt::Kind::Expr:
    if (const Expr *E = cast<ExprStmt>(S)->expr())
      genExpr(E);
    return;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    IROperand Cond = genExpr(I->cond());
    if (failed())
      return;
    unsigned ThenB = newBlock(), Join = newBlock();
    unsigned ElseB = I->elseStmt() ? newBlock() : Join;
    condBranch(Cond, ThenB, ElseB);
    setCurrent(ThenB);
    genStmt(I->thenStmt());
    branchTo(Join);
    if (I->elseStmt()) {
      setCurrent(ElseB);
      genStmt(I->elseStmt());
      branchTo(Join);
    }
    setCurrent(Join);
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    unsigned Header = newBlock(), Body = newBlock(), Exit = newBlock();
    branchTo(Header);
    setCurrent(Header);
    IROperand Cond = genExpr(W->cond());
    if (failed())
      return;
    condBranch(Cond, Body, Exit);
    BreakTargets.push_back(Exit);
    ContinueTargets.push_back(Header);
    setCurrent(Body);
    genStmt(W->body());
    branchTo(Header);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    setCurrent(Exit);
    return;
  }
  case Stmt::Kind::Do: {
    const auto *D = cast<DoStmt>(S);
    unsigned Body = newBlock(), CondB = newBlock(), Exit = newBlock();
    branchTo(Body);
    BreakTargets.push_back(Exit);
    ContinueTargets.push_back(CondB);
    setCurrent(Body);
    genStmt(D->body());
    branchTo(CondB);
    setCurrent(CondB);
    IROperand Cond = genExpr(D->cond());
    if (failed())
      return;
    condBranch(Cond, Body, Exit);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    setCurrent(Exit);
    return;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    if (F->init())
      genStmt(F->init());
    unsigned Header = newBlock(), Body = newBlock(), StepB = newBlock(),
             Exit = newBlock();
    branchTo(Header);
    setCurrent(Header);
    if (F->cond()) {
      IROperand Cond = genExpr(F->cond());
      if (failed())
        return;
      condBranch(Cond, Body, Exit);
    } else {
      branchTo(Body);
    }
    BreakTargets.push_back(Exit);
    ContinueTargets.push_back(StepB);
    setCurrent(Body);
    genStmt(F->body());
    branchTo(StepB);
    setCurrent(StepB);
    if (F->step())
      genExpr(F->step());
    branchTo(Header);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    setCurrent(Exit);
    return;
  }
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    IRInstr I;
    I.Op = IROp::Ret;
    if (R->value()) {
      I.A = convert(genExpr(R->value()), Fn->RetTy->isVoid()
                                             ? R->value()->type()
                                             : Fn->RetTy);
      if (failed())
        return;
    }
    append(std::move(I));
    return;
  }
  case Stmt::Kind::Break:
    if (!BreakTargets.empty())
      branchTo(BreakTargets.back());
    return;
  case Stmt::Kind::Continue:
    if (!ContinueTargets.empty())
      branchTo(ContinueTargets.back());
    return;
  case Stmt::Kind::Goto:
    branchTo(labelBlock(cast<GotoStmt>(S)->label()));
    return;
  case Stmt::Kind::Label: {
    const auto *L = cast<LabelStmt>(S);
    unsigned Block = labelBlock(L->name());
    branchTo(Block);
    setCurrent(Block);
    genStmt(L->sub());
    return;
  }
  }
}

bool FunctionLowering::lower(const FunctionDecl *FD, IRFunction &F) {
  Fn = &F;
  F.Name = FD->name();
  F.RetTy = FD->returnType();
  F.NumParams = static_cast<unsigned>(FD->params().size());
  Cur = newBlock();
  for (const VarDecl *P : FD->params())
    addSlot(P);
  genStmt(FD->body());
  // Implicit return at the end (value 0: UB-free variants never use an
  // indeterminate return, and the reference interpreter maps main's
  // fall-off to 0).
  if (!terminated()) {
    IRInstr I;
    I.Op = IROp::Ret;
    append(std::move(I));
  }
  // Some label/join blocks may have been created and never filled.
  for (IRBlock &B : F.Blocks) {
    if (B.Instrs.empty() || !B.Instrs.back().isTerminator()) {
      IRInstr I;
      I.Op = IROp::Ret;
      B.Instrs.push_back(std::move(I));
    }
  }
  // Conservative address-taken marking: any AddrSlot whose result is used
  // by something other than a direct Load/Store address position.
  for (IRBlock &B : F.Blocks) {
    for (size_t II = 0; II < B.Instrs.size(); ++II) {
      const IRInstr &I = B.Instrs[II];
      if (I.Op != IROp::AddrSlot)
        continue;
      unsigned Reg = I.Dst;
      for (const IRBlock &B2 : F.Blocks) {
        for (const IRInstr &Use : B2.Instrs) {
          bool Escapes = false;
          if (Use.Op == IROp::Load && Use.A.isReg() && Use.A.Reg == Reg)
            continue;
          if (Use.Op == IROp::Store && Use.A.isReg() && Use.A.Reg == Reg &&
              !(Use.B.isReg() && Use.B.Reg == Reg))
            continue;
          if (Use.A.isReg() && Use.A.Reg == Reg)
            Escapes = true;
          if (Use.B.isReg() && Use.B.Reg == Reg)
            Escapes = true;
          for (const IROperand &O : Use.Args)
            if (O.isReg() && O.Reg == Reg)
              Escapes = true;
          if (Escapes)
            F.Slots[I.SlotIndex].AddressTaken = true;
        }
      }
    }
  }
  return !failed();
}

} // namespace

IRGenResult spe::generateIR(ASTContext &Ctx) {
  IRGenResult Result;
  IRModule &M = Result.Module;

  std::map<const VarDecl *, int> GlobalIndex;
  for (VarDecl *G : Ctx.globals()) {
    IRGlobal IG;
    IG.Name = G->name();
    IG.Ty = G->type();
    uint64_t Size = G->type()->sizeInBytes();
    if (Size == 0) {
      Result.Error = "global of incomplete type";
      return Result;
    }
    IG.InitBytes.assign(Size, 0);
    if (G->init() &&
        !fillGlobalInit(IG.InitBytes, 0, G->type(), G->init())) {
      Result.Error = "non-constant global initializer";
      return Result;
    }
    GlobalIndex[G] = static_cast<int>(M.Globals.size());
    M.Globals.push_back(std::move(IG));
  }

  // Pre-create function entries so calls can reference any definition.
  std::vector<FunctionDecl *> Defs = Ctx.functions();
  M.Functions.resize(Defs.size());
  for (size_t I = 0; I < Defs.size(); ++I)
    M.Functions[I].Name = Defs[I]->name();

  for (size_t I = 0; I < Defs.size(); ++I) {
    FunctionLowering Lowering(Ctx, M, GlobalIndex, Result.Error);
    IRFunction F;
    F.Name = Defs[I]->name();
    if (!Lowering.lower(Defs[I], F))
      return Result;
    M.Functions[I] = std::move(F);
  }
  M.MainIndex = M.functionIndex("main");
  if (M.MainIndex < 0) {
    Result.Error = "no main function";
    return Result;
  }
  std::string VerifyError = verifyModule(M);
  if (!VerifyError.empty()) {
    Result.Error = "IR verification failed: " + VerifyError;
    return Result;
  }
  Result.Ok = true;
  return Result;
}
