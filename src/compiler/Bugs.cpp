//===- compiler/Bugs.cpp - injected latent compiler bugs -----------------===//

#include "compiler/Bugs.h"

using namespace spe;

const char *spe::personaName(Persona P) {
  return P == Persona::GccSim ? "gcc-sim" : "clang-sim";
}

const char *spe::bugEffectName(BugEffect E) {
  switch (E) {
  case BugEffect::Crash:
    return "crash";
  case BugEffect::WrongCode:
    return "wrong-code";
  case BugEffect::Performance:
    return "performance";
  }
  return "?";
}

bool InjectedBug::activeIn(const CompilerConfig &Config) const {
  if (Config.P != P)
    return false;
  if (Config.Version < IntroducedIn)
    return false;
  if (FixedIn != 0 && Config.Version >= FixedIn)
    return false;
  if (Config.OptLevel < MinOptLevel)
    return false;
  if (Mode32Only && Config.Mode64)
    return false;
  return true;
}

bool InjectedBug::firesOn(const CompilerConfig &Config,
                          const ProgramFeatures &Features) const {
  return activeIn(Config) && Trigger(Features);
}

const std::vector<InjectedBug> &spe::bugDatabase() {
  static const std::vector<InjectedBug> Bugs = [] {
    std::vector<InjectedBug> DB;
    auto Add = [&](InjectedBug B) {
      B.Id = static_cast<int>(DB.size()) + 1;
      DB.push_back(std::move(B));
    };
    using F = ProgramFeatures;

    // ---- gcc-sim -------------------------------------------------------
    // Modeled on bug 69951 (Figure 2): alias analysis treats two names for
    // one object as distinct; the second store is lost. Latent since "4.4".
    Add({0, Persona::GccSim, "middle-end", 2, 44, 0, 2, false,
         BugEffect::WrongCode, Mutilation::DropLastStore, "",
         [](const F &X) { return X.AliasedPointers && X.NumDerefs >= 2; }});
    // Modeled on bug 69801 (Figure 3): operand_equal_p asserts on identical
    // conditional arms. Release-blocking (P1), crashes at all levels.
    Add({0, Persona::GccSim, "c", 1, 60, 0, 0, false, BugEffect::Crash,
         Mutilation::None,
         "internal compiler error: in operand_equal_p, at fold-const.c:2977",
         [](const F &X) { return X.IdenticalCondArms; }});
    // Modeled on bug 69740 (Figure 11b): irreducible loops from goto break
    // loop verification at -O2+.
    Add({0, Persona::GccSim, "tree-optimization", 3, 58, 0, 2, false,
         BugEffect::Crash, Mutilation::None,
         "internal compiler error: in verify_loop_structure, at "
         "cfgloop.c:1644",
         [](const F &X) { return X.GotoIntoLoop || X.BackwardGoto; }});
    // Self-subtraction folding drops a needed sign extension (wrong code at
    // -O2, fixed in "6.2" = 62).
    Add({0, Persona::GccSim, "tree-optimization", 3, 50, 62, 2, false,
         BugEffect::WrongCode, Mutilation::SwapFirstSubOperands, "",
         [](const F &X) { return X.IdenticalSubOperands; }});
    // v/v folded to 1 ignoring v == 0 (wrong code at -O3).
    Add({0, Persona::GccSim, "tree-optimization", 2, 55, 0, 3, false,
         BugEffect::WrongCode, Mutilation::FoldSelfDivToOne, "",
         [](const F &X) { return X.IdenticalDivOperands; }});
    // LRA spill crash on self-shift patterns in -m32 (Table 3 signature).
    Add({0, Persona::GccSim, "target", 3, 48, 0, 1, true, BugEffect::Crash,
         Mutilation::None,
         "internal compiler error: in assign_by_spills, at lra-assigns.c:1281",
         [](const F &X) { return X.ShiftBySelf; }});
    // RTL: self-comparison canonicalization flips a branch (wrong code).
    Add({0, Persona::GccSim, "rtl-optimization", 3, 46, 66, 1, false,
         BugEffect::WrongCode, Mutilation::NegateFirstCondBr, "",
         [](const F &X) { return X.IdenticalCmpOperands && X.NumLoops > 0; }});
    // IPA: repeated argument confuses the clone pass (crash).
    Add({0, Persona::GccSim, "ipa", 4, 59, 0, 2, false, BugEffect::Crash,
         Mutilation::None,
         "internal compiler error: in ipa_edge_args_sum_t::duplicate",
         [](const F &X) { return X.RepeatedCallArg && X.NumCalls >= 2; }});
    // Frontend crash on x = x with struct member chains.
    Add({0, Persona::GccSim, "c", 3, 49, 61, 0, false, BugEffect::Crash,
         Mutilation::None,
         "internal compiler error: in c_fully_fold_internal, at c-fold.c:482",
         [](const F &X) { return X.SelfAssignment && X.NumStructAccesses > 0; }});
    // Middle-end hang: loop bound equals induction variable (performance).
    Add({0, Persona::GccSim, "middle-end", 3, 52, 0, 1, false,
         BugEffect::Performance, Mutilation::None, "",
         [](const F &X) { return X.LoopBoundIsInductionVar; }});
    // Uninitialized-use path in the C frontend's warning machinery.
    Add({0, Persona::GccSim, "c", 4, 63, 0, 0, false, BugEffect::Crash,
         Mutilation::None,
         "internal compiler error: tree check: expected ssa_name, have "
         "var_decl in warn_uninit",
         [](const F &X) { return X.UninitUseLikely && X.IdenticalBitOperands; }});
    // Backend crash on a[a] addressing at -O1+ (Table 3 signature).
    Add({0, Persona::GccSim, "target", 2, 54, 0, 1, false, BugEffect::Crash,
         Mutilation::None, "error in backend: Invalid register name global "
                           "variable.",
         [](const F &X) { return X.IndexBySelf; }});
    // Tree-opt: conditional with its own condition as an arm miscompiles
    // at -O2 (latent, fixed in 6.4 = 64).
    Add({0, Persona::GccSim, "tree-optimization", 3, 51, 64, 2, false,
         BugEffect::WrongCode, Mutilation::DropFirstStore, "",
         [](const F &X) { return X.CondWithSameVarAsArm; }});
    // Self-bitand canonicalizer infinite loop at -O3 (performance, P1).
    Add({0, Persona::GccSim, "middle-end", 1, 65, 0, 3, false,
         BugEffect::Performance, Mutilation::None, "",
         [](const F &X) { return X.IdenticalBitOperands && X.NumLoops > 1; }});

    // ---- clang-sim -----------------------------------------------------
    // Modeled on bug 26994 (Figure 11d): lifetime ends at backward goto.
    Add({0, Persona::ClangSim, "c", 2, 37, 0, 1, false,
         BugEffect::WrongCode, Mutilation::DropLastStore, "",
         [](const F &X) { return X.BackwardGoto && X.SelfAddressOfInit; }});
    // Modeled on bug 26973 (Figure 11c): loop-invariant inference corrupts
    // bitcode; crash at -O1+.
    Add({0, Persona::ClangSim, "tree-optimization", 2, 38, 40, 1, false,
         BugEffect::Crash, Mutilation::None,
         "Assertion `MRI->getVRegDef(reg) && \"Register use before def!\"' "
         "failed.",
         [](const F &X) { return X.NumLoops >= 2 && X.IdenticalCmpOperands; }});
    // SDNode operand assert on identical conditional arms (Table 3).
    Add({0, Persona::ClangSim, "target", 3, 35, 0, 0, false,
         BugEffect::Crash, Mutilation::None,
         "Assertion `Num < NumOperands && \"Invalid child # of SDNode!\"' "
         "failed.",
         [](const F &X) { return X.IdenticalCondArms; }});
    // Backend splitter crash on self-shifts (Table 3 signature).
    Add({0, Persona::ClangSim, "target", 3, 36, 0, 1, false,
         BugEffect::Crash, Mutilation::None,
         "error in backend: Do not know how to split the result of this "
         "operator!",
         [](const F &X) { return X.ShiftBySelf; }});
    // Stack coloring drops a store when two pointers alias one local.
    Add({0, Persona::ClangSim, "middle-end", 2, 34, 39, 2, false,
         BugEffect::WrongCode, Mutilation::DropLastStore, "",
         [](const F &X) { return X.AliasedPointers; }});
    // -m32 only: register scavenger overflow on a[a] (crash).
    Add({0, Persona::ClangSim, "target", 3, 36, 0, 1, true,
         BugEffect::Crash, Mutilation::None,
         "error in backend: Access past stack top!",
         [](const F &X) { return X.IndexBySelf; }});
    // InstCombine folds v/v to 1 (wrong code at -O2+).
    Add({0, Persona::ClangSim, "tree-optimization", 3, 37, 0, 2, false,
         BugEffect::WrongCode, Mutilation::FoldSelfDivToOne, "",
         [](const F &X) { return X.IdenticalDivOperands; }});
    // Frontend crash on self-assignment through a struct member.
    Add({0, Persona::ClangSim, "c", 4, 38, 0, 0, false, BugEffect::Crash,
         Mutilation::None,
         "Assertion `isa<LoadInst>(V) && \"self-init fold\"' failed.",
         [](const F &X) { return X.SelfAssignment && X.NumStructAccesses > 0; }});
    // Branch folding flips polarity on self-comparison in loops.
    Add({0, Persona::ClangSim, "rtl-optimization", 3, 35, 39, 1, false,
         BugEffect::WrongCode, Mutilation::NegateFirstCondBr, "",
         [](const F &X) { return X.IdenticalCmpOperands && X.NumLoops > 0; }});
    // Pathological SCEV on loop bound == induction variable.
    Add({0, Persona::ClangSim, "middle-end", 3, 36, 0, 2, false,
         BugEffect::Performance, Mutilation::None, "",
         [](const F &X) { return X.LoopBoundIsInductionVar; }});

    return DB;
  }();
  return Bugs;
}

const InjectedBug *spe::findBug(int Id) {
  const std::vector<InjectedBug> &DB = bugDatabase();
  // Ids are assigned densely (1..N) today, so the fast path is a bounds
  // check plus one probe; the fallback scan keeps the lookup correct if
  // the density convention ever changes.
  if (Id >= 1 && static_cast<size_t>(Id) <= DB.size() &&
      DB[static_cast<size_t>(Id) - 1].Id == Id)
    return &DB[static_cast<size_t>(Id) - 1];
  for (const InjectedBug &B : DB)
    if (B.Id == Id)
      return &B;
  return nullptr;
}

std::vector<const InjectedBug *> spe::bugsOf(Persona P) {
  std::vector<const InjectedBug *> Result;
  for (const InjectedBug &B : bugDatabase())
    if (B.P == P)
      Result.push_back(&B);
  return Result;
}
