//===- compiler/ExternalBackend.h - real-compiler subprocess driver ------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend the paper actually describes: render the variant to a file,
/// invoke a real host compiler (cc/gcc/clang) as a subprocess, run the
/// produced binary, and classify crash / reject / wrong-code / timeout.
/// Built on support/ProcessRunner.h; thread-safe (every run gets uniquely
/// named scratch files inside one per-instance scratch directory, removed
/// on destruction).
///
/// Mapping from CompilerConfig: OptLevel becomes -O<n>; Mode64 becomes
/// -m64/-m32 when MapMachineMode is on (off by default -- 32-bit support
/// libraries are frequently absent); Persona/Version are carried through
/// to findings as labels but do not change the command line -- point
/// different ExternalBackend instances at different compilers to test
/// several personas for real.
///
/// There is no ground truth here. Compiler crashes are keyed by the marker
/// line fished out of stderr ("internal compiler error: ...", assertion
/// failures, backend fatals) with the variant-specific file/line prefix
/// stripped; wrong-code findings carry the divergence kind. Everything
/// dedups through the signature-only triage path (FoundBug::BugId == 0).
///
/// Batched path (DESIGN.md Section 13): beginBatch packs K variants into
/// one translation unit (compiler/BatchRenderer.h) and compiles it once
/// per configuration -- asynchronously on the broker pool when
/// Opts.PoolWorkers > 0 -- then finishBatch executes each member as its
/// own process, once per sweep input (the input delivered over stdin; the
/// argv slot stays the dispatch index). The batch is an amortization,
/// never an oracle: a batch compile failure is bisected by recursive
/// split down to single variants, and a batched execution cell that
/// deviates from the harness's expectation in any way sends its whole
/// (variant, config) row back through unbatched runSweep(), so every
/// observation that can become a finding carries ordinary single-variant
/// provenance and campaign results are bit-identical to BatchSize = 1.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_COMPILER_EXTERNALBACKEND_H
#define SPE_COMPILER_EXTERNALBACKEND_H

#include "compiler/Backend.h"
#include "support/ProcessRunner.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace spe {

class ProcessPool;
class TelemetrySink;
struct ExternalBatchTicket;

/// Command-line template and budgets for one external compiler.
struct ExternalBackendOptions {
  /// Compiler argv prefix; Argv[0] is resolved through PATH.
  std::vector<std::string> Command = {"cc"};
  /// Arguments appended right after Command on every compile. "-w" keeps
  /// ordinary warnings out of the stderr stream the crash scanner reads.
  std::vector<std::string> ExtraArgs = {"-w"};
  /// Append -O<OptLevel> from the CompilerConfig under test.
  bool MapOptLevel = true;
  /// Append -m64 / -m32 from CompilerConfig::Mode64. Off by default: the
  /// -m32 runtime is often not installed, and a missing libc must not be
  /// misread as ten thousand rejection findings.
  bool MapMachineMode = false;
  uint64_t CompileTimeoutMs = 30'000;
  uint64_t ExecTimeoutMs = 5'000;
  /// Text prepended to every variant before it reaches the compiler.
  /// Variants are mini-C programs that may call printf (so stdio.h) and
  /// spe_input(), the sweep intrinsic, which reads one scanf("%d") integer
  /// from stdin -- the same contract support/StdinScan.h implements for
  /// the in-process executors, so swept inputs (whitespace-separated
  /// decimal integers) observe identical values everywhere.
  std::string Prelude = "#include <stdio.h>\n"
                        "static int spe_input(void) {\n"
                        "  int spe_v = 0;\n"
                        "  if (scanf(\"%d\", &spe_v) != 1)\n"
                        "    return 0;\n"
                        "  return spe_v;\n"
                        "}\n";
  /// Scratch directory under which the per-instance scratch subdirectory
  /// is created; empty = $TMPDIR or /tmp.
  std::string TempDir;
  /// Keep scratch files (and the scratch directory) instead of removing
  /// them on destruction (debugging).
  bool KeepArtifacts = false;
  /// Pre-forked broker processes running compiler/binary subprocesses on
  /// this backend's behalf (support/ProcessPool.h). 0 = no pool, every
  /// subprocess forked directly. The pool overlaps batch compiles with the
  /// harness's oracle work and runs one batch's per-config compiles
  /// concurrently; it never changes any observation, so it is (like
  /// BatchSize) excluded from identity() and the resume fingerprint.
  unsigned PoolWorkers = 0;
  /// Campaign telemetry sink (support/Telemetry.h); null = off. Global
  /// spans: "compile" per compiler invocation (for pooled batch compiles,
  /// the honest submit-to-collect latency folds aggregate-only under the
  /// same key while "compile_wait" traces the blocking wait), "batch_pack"
  /// around TU packing, "exec" around compiled-binary executions.
  /// Observation only -- excluded from identity() and every resume
  /// fingerprint, exactly like PoolWorkers.
  TelemetrySink *Telemetry = nullptr;
};

/// Drives one real host compiler through support/ProcessRunner.
class ExternalBackend final : public CompilerBackend {
public:
  /// Probes `Command --version` once per distinct command line
  /// process-wide (memoized -- constructing many backends over the same
  /// compiler re-probes nothing); a backend whose compiler cannot be
  /// executed stays constructible (available() false, every run()
  /// rejecting) so callers can report the reason and skip.
  explicit ExternalBackend(ExternalBackendOptions Opts = {});
  ~ExternalBackend() override;

  /// True when the version probe succeeded and runs can proceed.
  bool available() const { return Available; }
  /// Human-readable reason when available() is false.
  const std::string &unavailableReason() const { return Unavailable; }
  /// First line of the probed `--version` output.
  const std::string &versionLine() const { return Version; }

  std::string identity() const override;
  bool hasGroundTruth() const override { return false; }
  BackendObservation run(const std::string &Source,
                         const CompilerConfig &Config,
                         CoverageRegistry *Cov) const override;
  BackendObservation runWithInput(const std::string &Source,
                                  const CompilerConfig &Config,
                                  const std::string &Input,
                                  CoverageRegistry *Cov) const override;
  /// One compile, one subprocess execution per sweep input (each input fed
  /// through the binary's stdin).
  std::vector<BackendObservation>
  runSweep(const std::string &Source, const CompilerConfig &Config,
           const std::vector<std::string> &Inputs,
           CoverageRegistry *Cov) const override;

  std::unique_ptr<BatchTicket>
  beginBatch(std::vector<std::string> Sources,
             std::vector<BatchExpectation> Expected,
             std::vector<CompilerConfig> Configs,
             CoverageRegistry *Cov) const override;
  std::vector<std::vector<std::vector<BackendObservation>>>
  finishBatch(std::unique_ptr<BatchTicket> Ticket) const override;

  const ExternalBackendOptions &options() const { return Opts; }
  /// The broker pool (null when Opts.PoolWorkers == 0). Exposed so tests
  /// can kill brokers and count respawns.
  ProcessPool *pool() const { return Pool.get(); }
  /// The per-instance scratch directory (removed on destruction unless
  /// KeepArtifacts).
  const std::string &scratchDir() const { return ScratchDir; }

  /// Extracts the stable crash key from a crashed compiler's stderr: the
  /// first marker line (internal compiler error / assertion / backend
  /// fatal) with its leading "file:line:col:" prefix stripped, or
  /// \p Fallback when no marker is present. Exposed for tests.
  static std::string extractCrashSignature(const std::string &Stderr,
                                           const std::string &Fallback);

  /// Best-effort reaper for scratch directories stranded by SIGKILLed
  /// campaigns: removes every `spe-ext-*` directory directly under
  /// \p BaseDir whose `spe-owner.pid` marker names a dead process (or is
  /// missing/garbled -- a crash between mkdtemp and the marker write).
  /// Directories owned by live processes are left alone. \returns the
  /// number of directories removed. Runs automatically at construction
  /// against the instance's scratch base; exposed for tests and tools.
  static unsigned sweepStaleScratch(const std::string &BaseDir);

private:
  friend struct ExternalBatchTicket;

  std::string scratchBase() const;
  /// Runs one subprocess, through the broker pool when one exists --
  /// identical results either way (the pool's contract).
  ProcessResult runTool(const std::vector<std::string> &Argv,
                        const ProcessOptions &PO) const;
  /// The compile command line for one (source file, output, config).
  std::vector<std::string> compileArgv(const std::string &Src,
                                       const std::string &Bin,
                                       const CompilerConfig &Config) const;
  /// Resolves the members of \p Subset for configuration \p ConfigIdx into
  /// \p Out: compiles the packed subset (or accepts \p Known, the already
  /// finished compile of exactly this subset), executes members of a
  /// successful compile once per sweep input, and recursively splits a
  /// failed compile down to single variants, which are resolved by plain
  /// runSweep(). Any executed cell that deviates from its expectation
  /// sends the whole (variant, config) row back through runSweep() so
  /// every recorded row shares one unbatched compile.
  void resolveSubset(
      const ExternalBatchTicket &T, size_t ConfigIdx,
      const std::vector<size_t> &Subset, const ProcessResult *Known,
      const std::string &KnownBin,
      std::vector<std::vector<std::vector<BackendObservation>>> &Out) const;
  /// One loud line on the first infrastructure failure (scratch write,
  /// fork/exec of compiler or binary); such variants are skipped, never
  /// classified, so they cannot fabricate findings.
  void warnInfra(const std::string &What) const;

  ExternalBackendOptions Opts;
  bool Available = false;
  std::string Unavailable;
  std::string Version;
  /// Cached telemetryBackendLabel(identity()) -- span keys must not pay an
  /// identity() rebuild per compile.
  std::string TelLabel;
  std::string ScratchDir;
  /// True when ScratchDir is this instance's own mkdtemp directory (and is
  /// removed on destruction); false on the fallback flat layout when the
  /// directory could not be created.
  bool OwnScratchDir = false;
  std::unique_ptr<ProcessPool> Pool;
  mutable std::atomic<uint64_t> Seq{0};
  mutable std::atomic<bool> InfraWarned{false};
};

} // namespace spe

#endif // SPE_COMPILER_EXTERNALBACKEND_H
