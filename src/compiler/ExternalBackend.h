//===- compiler/ExternalBackend.h - real-compiler subprocess driver ------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend the paper actually describes: render the variant to a file,
/// invoke a real host compiler (cc/gcc/clang) as a subprocess, run the
/// produced binary, and classify crash / reject / wrong-code / timeout.
/// Built on support/ProcessRunner.h; thread-safe (every run gets uniquely
/// named scratch files).
///
/// Mapping from CompilerConfig: OptLevel becomes -O<n>; Mode64 becomes
/// -m64/-m32 when MapMachineMode is on (off by default -- 32-bit support
/// libraries are frequently absent); Persona/Version are carried through
/// to findings as labels but do not change the command line -- point
/// different ExternalBackend instances at different compilers to test
/// several personas for real.
///
/// There is no ground truth here. Compiler crashes are keyed by the marker
/// line fished out of stderr ("internal compiler error: ...", assertion
/// failures, backend fatals) with the variant-specific file/line prefix
/// stripped; wrong-code findings carry the divergence kind. Everything
/// dedups through the signature-only triage path (FoundBug::BugId == 0).
///
//===----------------------------------------------------------------------===//

#ifndef SPE_COMPILER_EXTERNALBACKEND_H
#define SPE_COMPILER_EXTERNALBACKEND_H

#include "compiler/Backend.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace spe {

/// Command-line template and budgets for one external compiler.
struct ExternalBackendOptions {
  /// Compiler argv prefix; Argv[0] is resolved through PATH.
  std::vector<std::string> Command = {"cc"};
  /// Arguments appended right after Command on every compile. "-w" keeps
  /// ordinary warnings out of the stderr stream the crash scanner reads.
  std::vector<std::string> ExtraArgs = {"-w"};
  /// Append -O<OptLevel> from the CompilerConfig under test.
  bool MapOptLevel = true;
  /// Append -m64 / -m32 from CompilerConfig::Mode64. Off by default: the
  /// -m32 runtime is often not installed, and a missing libc must not be
  /// misread as ten thousand rejection findings.
  bool MapMachineMode = false;
  uint64_t CompileTimeoutMs = 30'000;
  uint64_t ExecTimeoutMs = 5'000;
  /// Text prepended to every variant before it reaches the compiler.
  /// Variants are mini-C programs that may call printf; real compilers
  /// want the declaration.
  std::string Prelude = "#include <stdio.h>\n";
  /// Scratch directory for .c/.bin files; empty = $TMPDIR or /tmp.
  std::string TempDir;
  /// Keep scratch files instead of unlinking them (debugging).
  bool KeepArtifacts = false;
};

/// Drives one real host compiler through support/ProcessRunner.
class ExternalBackend final : public CompilerBackend {
public:
  /// Probes `Command --version` once at construction; a backend whose
  /// compiler cannot be executed stays constructible (available() false,
  /// every run() rejecting) so callers can report the reason and skip.
  explicit ExternalBackend(ExternalBackendOptions Opts = {});

  /// True when the version probe succeeded and runs can proceed.
  bool available() const { return Available; }
  /// Human-readable reason when available() is false.
  const std::string &unavailableReason() const { return Unavailable; }
  /// First line of the probed `--version` output.
  const std::string &versionLine() const { return Version; }

  std::string identity() const override;
  bool hasGroundTruth() const override { return false; }
  BackendObservation run(const std::string &Source,
                         const CompilerConfig &Config,
                         CoverageRegistry *Cov) const override;

  const ExternalBackendOptions &options() const { return Opts; }

  /// Extracts the stable crash key from a crashed compiler's stderr: the
  /// first marker line (internal compiler error / assertion / backend
  /// fatal) with its leading "file:line:col:" prefix stripped, or
  /// \p Fallback when no marker is present. Exposed for tests.
  static std::string extractCrashSignature(const std::string &Stderr,
                                           const std::string &Fallback);

private:
  std::string scratchBase() const;
  /// One loud line on the first infrastructure failure (scratch write,
  /// fork/exec of compiler or binary); such variants are skipped, never
  /// classified, so they cannot fabricate findings.
  void warnInfra(const std::string &What) const;

  ExternalBackendOptions Opts;
  bool Available = false;
  std::string Unavailable;
  std::string Version;
  mutable std::atomic<uint64_t> Seq{0};
  mutable std::atomic<bool> InfraWarned{false};
};

} // namespace spe

#endif // SPE_COMPILER_EXTERNALBACKEND_H
