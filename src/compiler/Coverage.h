//===- compiler/Coverage.h - compiler coverage instrumentation -----------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explicit coverage-point registry for MiniCC. The paper's Figure 9
/// measures how much SPE variants and Orion-style mutations improve gcov
/// function/line coverage of GCC and Clang; here every compiler pass
/// registers a fixed catalog of named decision points ("lines") grouped by
/// pass ("functions") and marks them as it transforms code, giving the same
/// two ratios deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_COMPILER_COVERAGE_H
#define SPE_COMPILER_COVERAGE_H

#include <map>
#include <set>
#include <string>

namespace spe {

/// Tracks which registered compiler decision points executed.
///
/// Point names are "pass.detail"; the prefix before the first '.' is the
/// pass ("function") name. Totals are fixed by the registered catalog;
/// hit() on an unregistered name is routed -- identically in debug and
/// release builds -- to the synthetic catalog entry syntheticPoint(), so an
/// instrumentation point someone forgot to register can never silently
/// grow the denominator per distinct name or diverge between build modes.
class CoverageRegistry {
public:
  /// The catalog entry unregistered hit() names are folded into.
  static const char *syntheticPoint() { return "uncatalogued.synthetic"; }

  /// Adds a point to the catalog (idempotent).
  void registerPoint(const std::string &Name);

  /// Marks a point as executed. Unregistered names are counted under
  /// syntheticPoint() (registered on first use); \returns true when \p Name
  /// itself was in the catalog.
  bool hit(const std::string &Name);

  /// Clears hit marks but keeps the catalog.
  void resetHits();

  unsigned totalPoints() const {
    return static_cast<unsigned>(Catalog.size());
  }
  unsigned hitPoints() const { return static_cast<unsigned>(Hits.size()); }
  unsigned totalFunctions() const;
  unsigned hitFunctions() const;

  double pointCoverage() const {
    return totalPoints() == 0
               ? 0.0
               : static_cast<double>(hitPoints()) / totalPoints();
  }
  double functionCoverage() const {
    return totalFunctions() == 0
               ? 0.0
               : static_cast<double>(hitFunctions()) / totalFunctions();
  }

  /// Snapshot of the current hit set (to diff runs).
  std::set<std::string> hitSet() const { return Hits; }
  /// Restores a previously captured hit set.
  void setHits(std::set<std::string> NewHits) { Hits = std::move(NewHits); }

  /// Folds \p Other into this registry: catalog and hit sets are unioned.
  /// The parallel harness gives each worker its own registry copy and
  /// merges them back deterministically after the join.
  void merge(const CoverageRegistry &Other);

private:
  static std::string functionOf(const std::string &PointName);

  std::set<std::string> Catalog;
  std::set<std::string> Hits;
};

} // namespace spe

#endif // SPE_COMPILER_COVERAGE_H
