//===- compiler/ExternalBackend.cpp - real-compiler subprocess driver ----===//

#include "compiler/ExternalBackend.h"

#include "compiler/BatchRenderer.h"
#include "support/ProcessPool.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include <cerrno>
#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace spe;

namespace {

/// Writes \p Text to \p Path; \returns false on any I/O failure.
bool writeFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  Ok = std::fclose(F) == 0 && Ok;
  return Ok;
}

std::string firstLine(const std::string &Text) {
  size_t NL = Text.find('\n');
  std::string Line = NL == std::string::npos ? Text : Text.substr(0, NL);
  while (!Line.empty() && (Line.back() == '\r' || Line.back() == ' '))
    Line.pop_back();
  return Line;
}

/// Marker substrings that distinguish "the compiler died" from "the
/// compiler diagnosed the program". Shared across GCC and Clang stderr
/// shapes.
bool isCrashMarker(const std::string &Line) {
  return Line.find("internal compiler error") != std::string::npos ||
         Line.find("Internal compiler error") != std::string::npos ||
         Line.find("Assertion") != std::string::npos ||
         Line.find("error in backend") != std::string::npos ||
         Line.find("fatal error: error in") != std::string::npos ||
         Line.find("PLEASE submit a bug report") != std::string::npos ||
         Line.find("Segmentation fault") != std::string::npos;
}

/// Decodes a finished *execution* subprocess result into the observation.
/// The caller has already set Compile = Ok and handled StartFailed (solo
/// paths warn and leave Exec at NotRun; batch paths re-run the variant).
void classifyExecInto(const ProcessResult &R, BackendObservation &Obs) {
  switch (R.St) {
  case ProcessResult::Status::StartFailed:
    break; // Caller's responsibility; see above.
  case ProcessResult::Status::TimedOut:
    Obs.Exec = BackendObservation::ExecStatus::Timeout;
    break;
  case ProcessResult::Status::Signaled:
    Obs.Exec = BackendObservation::ExecStatus::Trap;
    break;
  case ProcessResult::Status::Exited:
    Obs.Exec = BackendObservation::ExecStatus::Ok;
    Obs.ExitCode = R.ExitCode;
    Obs.ExitCodeLow8 = true;
    Obs.Output = R.Stdout;
    break;
  }
}

/// One memoized `--version` probe outcome.
struct ProbeResult {
  bool Ok = false;
  std::string Unavailable;
  std::string Version;
};

/// Probes `Command --version` once per distinct command line for the whole
/// process. Campaigns and tests construct many backends over the same
/// compiler; the probe is pure identity, so re-running it buys nothing but
/// a subprocess per construction.
const ProbeResult &probeCompiler(const std::vector<std::string> &Command) {
  static std::mutex Mu;
  static std::map<std::string, ProbeResult> Memo;
  std::string Key;
  for (const std::string &A : Command) {
    Key += A;
    Key += '\x1f';
  }
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Memo.find(Key);
  if (It != Memo.end())
    return It->second;
  ProbeResult P;
  std::vector<std::string> Argv = Command;
  Argv.push_back("--version");
  ProcessOptions PO;
  PO.TimeoutMs = 10'000;
  ProcessResult R = runProcess(Argv, PO);
  if (R.St == ProcessResult::Status::StartFailed) {
    P.Unavailable = R.Error;
  } else if (!R.exitedWith(0)) {
    P.Unavailable = "'" + Command[0] + " --version' did not exit 0";
  } else {
    P.Version = firstLine(R.Stdout.empty() ? R.Stderr : R.Stdout);
    P.Ok = true;
  }
  return Memo.emplace(Key, std::move(P)).first->second;
}

} // namespace

namespace spe {

/// In-flight state of one batched compile: the packed TU on disk plus one
/// (possibly pool-submitted) compile per configuration. Destruction claims
/// any job finishBatch never collected -- an abandoned ticket (simulated
/// crash mid-batch) must not leave its broker permanently busy -- and
/// removes the scratch files.
struct ExternalBatchTicket final : BatchTicket {
  const ExternalBackend *B = nullptr;
  std::vector<std::string> Sources;
  std::vector<BatchExpectation> Expected;
  std::vector<CompilerConfig> Configs;
  /// sweepUnion(Configs): maps each config's local sweep inputs to the
  /// expectation indices BatchExpectation::cell() speaks. Set by
  /// finishBatch before any subset is resolved.
  std::vector<std::string> Union;
  /// The packed TU's source path; empty when !Packed.
  std::string Src;
  struct ConfigCompile {
    std::string Bin;
    ProcessPool::JobId Job = 0;
    bool Submitted = false; ///< True until finishBatch claims the job.
    /// Sink timestamp at pool submission; the honest compile latency of a
    /// pooled compile is submit -> collect (telemetry on only).
    uint64_t SubmitUs = 0;
  };
  std::vector<ConfigCompile> Compiles;
  /// False = packing was skipped or failed; finishBatch resolves every
  /// (variant, config) pair by plain run().
  bool Packed = false;

  ~ExternalBatchTicket() override {
    bool Keep = B && B->options().KeepArtifacts;
    for (ConfigCompile &CC : Compiles) {
      if (CC.Submitted && B && B->pool())
        B->pool()->wait(CC.Job);
      if (!CC.Bin.empty() && !Keep)
        std::remove(CC.Bin.c_str());
    }
    if (!Src.empty() && !Keep)
      std::remove(Src.c_str());
  }
};

} // namespace spe

std::string
ExternalBackend::extractCrashSignature(const std::string &Stderr,
                                       const std::string &Fallback) {
  size_t Start = 0;
  while (Start <= Stderr.size()) {
    size_t NL = Stderr.find('\n', Start);
    if (NL == std::string::npos)
      NL = Stderr.size();
    std::string Line = Stderr.substr(Start, NL - Start);
    Start = NL + 1;
    if (!isCrashMarker(Line))
      continue;
    // Strip the variant-specific "path/to/spe-ext-1234-5.c:3:7: " prefix:
    // everything up to the last ": " before the marker keyword would be
    // too aggressive (assertion texts embed colons), so strip only a
    // leading "<token-without-spaces>: " whose token contains a path-ish
    // ':' separated location.
    size_t FirstSpace = Line.find(' ');
    if (FirstSpace != std::string::npos && FirstSpace > 0 &&
        Line[FirstSpace - 1] == ':' &&
        Line.find(':') < FirstSpace - 1)
      Line = Line.substr(FirstSpace + 1);
    while (!Line.empty() && (Line.back() == '\r' || Line.back() == ' '))
      Line.pop_back();
    if (!Line.empty())
      return Line;
  }
  return Fallback;
}

ExternalBackend::ExternalBackend(ExternalBackendOptions O)
    : Opts(std::move(O)) {
  if (Opts.Command.empty()) {
    Unavailable = "empty compiler command";
    return;
  }
  const ProbeResult &P = probeCompiler(Opts.Command);
  Available = P.Ok;
  Unavailable = P.Unavailable;
  Version = P.Version;
  TelLabel = telemetryBackendLabel(identity());
  if (!Available)
    return;

  // One scratch directory per instance: scratch files cluster under it and
  // the destructor removes everything at once, so long campaigns cannot
  // strand thousands of loose temp files on a crash-free exit.
  std::string Base = Opts.TempDir;
  if (Base.empty()) {
    const char *Env = std::getenv("TMPDIR");
    Base = Env && *Env ? Env : "/tmp";
  }
  while (!Base.empty() && Base.back() == '/')
    Base.pop_back();
  ::mkdir(Base.c_str(), 0777); // Best effort; mkdtemp reports real failure.
  // Reap scratch left behind by SIGKILLed campaigns before adding our own:
  // the destructor below never runs on a kill, so without this every
  // crashed run strands one directory per backend forever.
  sweepStaleScratch(Base);
  std::string Templ = Base + "/spe-ext-XXXXXX";
  std::vector<char> Buf(Templ.begin(), Templ.end());
  Buf.push_back('\0');
  if (mkdtemp(Buf.data())) {
    ScratchDir = Buf.data();
    OwnScratchDir = true;
    // Liveness marker: concurrent and future sweeps skip directories whose
    // owner pid still runs. Written before any compile job can land here.
    writeFile(ScratchDir + "/spe-owner.pid",
              std::to_string(static_cast<long long>(::getpid())) + "\n");
  } else {
    // Flat fallback: unique pid+seq names directly under the base, as the
    // pre-directory layout did. Nothing is removed on destruction beyond
    // the per-run cleanups.
    ScratchDir = Base;
  }

  if (Opts.PoolWorkers > 0)
    Pool = std::make_unique<ProcessPool>(Opts.PoolWorkers);
}

ExternalBackend::~ExternalBackend() {
  // Brokers first: they must not outlive the scratch directory their jobs
  // write into.
  Pool.reset();
  if (!OwnScratchDir || Opts.KeepArtifacts)
    return;
  if (DIR *D = opendir(ScratchDir.c_str())) {
    while (dirent *E = readdir(D)) {
      if (std::strcmp(E->d_name, ".") == 0 || std::strcmp(E->d_name, "..") == 0)
        continue;
      std::remove((ScratchDir + "/" + E->d_name).c_str());
    }
    closedir(D);
  }
  rmdir(ScratchDir.c_str());
}

unsigned ExternalBackend::sweepStaleScratch(const std::string &BaseDir) {
  std::vector<std::string> Stale;
  DIR *D = opendir(BaseDir.c_str());
  if (!D)
    return 0;
  while (dirent *E = readdir(D)) {
    if (std::strncmp(E->d_name, "spe-ext-", 8) != 0)
      continue;
    std::string Dir = BaseDir + "/" + E->d_name;
    struct stat St;
    if (::stat(Dir.c_str(), &St) != 0 || !S_ISDIR(St.st_mode))
      continue;
    bool Live = false;
    if (std::FILE *F = std::fopen((Dir + "/spe-owner.pid").c_str(), "rb")) {
      char Buf[32] = {};
      if (std::fread(Buf, 1, sizeof(Buf) - 1, F) == 0)
        Buf[0] = '\0';
      std::fclose(F);
      char *End = nullptr;
      long long Pid = std::strtoll(Buf, &End, 10);
      // kill(pid, 0) probes liveness without signaling: success or EPERM
      // means the pid exists; ESRCH means the owner is gone. A missing or
      // garbled marker means the owner died between mkdtemp and the marker
      // write, so it counts as dead.
      if (End != Buf && Pid > 0 &&
          (::kill(static_cast<pid_t>(Pid), 0) == 0 || errno == EPERM))
        Live = true;
    }
    if (!Live)
      Stale.push_back(std::move(Dir));
  }
  closedir(D);

  unsigned Removed = 0;
  for (const std::string &Dir : Stale) {
    if (DIR *SD = opendir(Dir.c_str())) {
      while (dirent *E = readdir(SD)) {
        if (std::strcmp(E->d_name, ".") == 0 ||
            std::strcmp(E->d_name, "..") == 0)
          continue;
        std::remove((Dir + "/" + E->d_name).c_str());
      }
      closedir(SD);
    }
    if (::rmdir(Dir.c_str()) == 0)
      ++Removed;
  }
  return Removed;
}

std::string ExternalBackend::identity() const {
  // Command line + --version banner: the resume fingerprint must change
  // whenever either does, so a checkpoint can never silently continue
  // against a different compiler or flag set. Deliberately excluded:
  // PoolWorkers and scratch placement -- execution mechanics that cannot
  // change any observation, so a snapshot stays resumable across them.
  std::string Id = "external:";
  for (const std::string &A : Opts.Command)
    Id += " " + A;
  for (const std::string &A : Opts.ExtraArgs)
    Id += " " + A;
  Id += Opts.MapOptLevel ? " [-O]" : "";
  Id += Opts.MapMachineMode ? " [-m]" : "";
  Id += " | " + (Available ? Version : "unavailable: " + Unavailable);
  return Id;
}

void ExternalBackend::warnInfra(const std::string &What) const {
  if (InfraWarned.exchange(true, std::memory_order_relaxed))
    return;
  std::fprintf(stderr,
               "spe: external backend infrastructure failure (%s); affected "
               "variants are skipped, not classified -- further failures "
               "of this backend are silent\n",
               What.c_str());
}

std::string ExternalBackend::scratchBase() const {
  uint64_t N = Seq.fetch_add(1, std::memory_order_relaxed);
  if (OwnScratchDir)
    return ScratchDir + "/v" + std::to_string(N);
  return ScratchDir + "/spe-ext-" +
         std::to_string(static_cast<long>(getpid())) + "-" +
         std::to_string(N);
}

ProcessResult ExternalBackend::runTool(const std::vector<std::string> &Argv,
                                       const ProcessOptions &PO) const {
  return Pool ? Pool->run(Argv, PO) : runProcess(Argv, PO);
}

std::vector<std::string>
ExternalBackend::compileArgv(const std::string &Src, const std::string &Bin,
                             const CompilerConfig &Config) const {
  std::vector<std::string> Argv = Opts.Command;
  Argv.insert(Argv.end(), Opts.ExtraArgs.begin(), Opts.ExtraArgs.end());
  if (Opts.MapOptLevel)
    Argv.push_back("-O" + std::to_string(Config.OptLevel));
  if (Opts.MapMachineMode)
    Argv.push_back(Config.Mode64 ? "-m64" : "-m32");
  Argv.push_back(Src);
  Argv.push_back("-o");
  Argv.push_back(Bin);
  return Argv;
}

BackendObservation ExternalBackend::run(const std::string &Source,
                                        const CompilerConfig &Config,
                                        CoverageRegistry *Cov) const {
  return runWithInput(Source, Config, std::string(), Cov);
}

BackendObservation
ExternalBackend::runWithInput(const std::string &Source,
                              const CompilerConfig &Config,
                              const std::string &Input,
                              CoverageRegistry *Cov) const {
  return runSweep(Source, Config, {Input}, Cov).front();
}

std::vector<BackendObservation>
ExternalBackend::runSweep(const std::string &Source,
                          const CompilerConfig &Config,
                          const std::vector<std::string> &Inputs,
                          CoverageRegistry *Cov) const {
  (void)Cov; // No instrumentation hooks into a foreign compiler.
  BackendObservation Obs;
  auto Row = [&Inputs](const BackendObservation &O) {
    // The compile's outcome is the whole row's outcome.
    return std::vector<BackendObservation>(Inputs.size(), O);
  };
  if (!Available)
    return Row(Obs); // Rejected: probe() already told the caller why.

  std::string Base = scratchBase();
  std::string Src = Base + ".c";
  std::string Bin = Base + ".bin";
  struct Cleanup {
    const ExternalBackend *B;
    std::string Src, Bin;
    ~Cleanup() {
      if (!B->Opts.KeepArtifacts) {
        std::remove(Src.c_str());
        std::remove(Bin.c_str());
      }
    }
  } Scope{this, Src, Bin};

  if (!writeFile(Src, Opts.Prelude + Source)) {
    warnInfra("cannot write scratch file " + Src);
    return Row(Obs);
  }

  TelemetrySink *Sink = Opts.Telemetry;
  std::string Cfg =
      Sink ? telemetryConfigLabel(Config.OptLevel, Config.Mode64)
           : std::string();
  ProcessOptions PO;
  PO.TimeoutMs = Opts.CompileTimeoutMs;
  ProcessResult C;
  {
    SpanTimer Span(Sink, nullptr, "compile", TelLabel, Cfg);
    C = runTool(compileArgv(Src, Bin, Config), PO);
  }
  switch (C.St) {
  case ProcessResult::Status::StartFailed:
    // A compiler that probed fine but cannot start now (deleted binary,
    // fork pressure): the variant is skipped like a rejection, but a
    // campaign silently degrading into "everything rejected, zero
    // findings" is a misconfiguration worth one loud line.
    warnInfra("cannot start compiler: " + C.Error);
    return Row(Obs);
  case ProcessResult::Status::TimedOut:
    Obs.Compile = BackendObservation::CompileStatus::TimedOut;
    Obs.CompileTimeAnomaly = true;
    return Row(Obs);
  case ProcessResult::Status::Signaled:
    Obs.Compile = BackendObservation::CompileStatus::Crashed;
    Obs.CrashSignature = extractCrashSignature(
        C.Stderr, "compiler killed by signal " + std::to_string(C.Signal));
    return Row(Obs);
  case ProcessResult::Status::Exited:
    break;
  }
  if (C.ExitCode != 0) {
    // Distinguish "died with a diagnostic banner" (ICE, assertion) from a
    // plain rejection: GCC's cc1 segfault surfaces as driver exit 1 plus
    // an "internal compiler error" line, not as a signal here.
    std::string Sig = extractCrashSignature(C.Stderr, "");
    if (Sig.empty()) {
      Obs.Compile = BackendObservation::CompileStatus::Rejected;
      return Row(Obs);
    }
    Obs.Compile = BackendObservation::CompileStatus::Crashed;
    Obs.CrashSignature = std::move(Sig);
    return Row(Obs);
  }

  // One compile, one subprocess execution per sweep input.
  Obs.Compile = BackendObservation::CompileStatus::Ok;
  std::vector<BackendObservation> Out = Row(Obs);
  for (size_t I = 0; I < Inputs.size(); ++I) {
    ProcessOptions RO;
    RO.TimeoutMs = Opts.ExecTimeoutMs;
    RO.StdinData = Inputs[I];
    ProcessResult R;
    {
      SpanTimer Span(Sink, nullptr, "exec", TelLabel, Cfg);
      R = runTool({Bin}, RO);
    }
    if (R.St == ProcessResult::Status::StartFailed) {
      // We never ran the binary -- transient fork pressure, or an artifact
      // the compiler claimed and did not deliver. Either way this is an
      // infrastructure fact, not a behavioral observation: leave Exec at
      // NotRun so no wrong-code finding can be fabricated from it, and say
      // so once.
      warnInfra("cannot execute compiled binary: " + R.Error);
      continue;
    }
    classifyExecInto(R, Out[I]);
  }
  return Out;
}

std::unique_ptr<BatchTicket>
ExternalBackend::beginBatch(std::vector<std::string> Sources,
                            std::vector<BatchExpectation> Expected,
                            std::vector<CompilerConfig> Configs,
                            CoverageRegistry *Cov) const {
  (void)Cov;
  auto T = std::make_unique<ExternalBatchTicket>();
  T->B = this;
  T->Sources = std::move(Sources);
  T->Expected = std::move(Expected);
  T->Configs = std::move(Configs);
  if (!Available || T->Sources.size() <= 1)
    return T; // Solo fallback: nothing batched, nothing in flight.

  TelemetrySink *Sink = Opts.Telemetry;
  BatchRenderer::Result P;
  {
    SpanTimer Span(Sink, nullptr, "batch_pack", TelLabel);
    P = BatchRenderer::pack(T->Sources, Opts.Prelude);
  }
  if (!P.Ok)
    return T; // A variant that does not re-lex: the solo path is always right.

  std::string Base = scratchBase();
  T->Src = Base + ".c";
  if (!writeFile(T->Src, P.Source)) {
    warnInfra("cannot write scratch file " + T->Src);
    T->Src.clear();
    return T;
  }
  T->Packed = true;
  T->Compiles.resize(T->Configs.size());
  ProcessOptions PO;
  PO.TimeoutMs = Opts.CompileTimeoutMs;
  for (size_t C = 0; C < T->Configs.size(); ++C) {
    ExternalBatchTicket::ConfigCompile &CC = T->Compiles[C];
    CC.Bin = Base + "-c" + std::to_string(C) + ".bin";
    if (Pool) {
      // The overlap the pool exists for: compiles start now, while the
      // harness worker goes back to rendering and interpreting. Without a
      // pool the compile happens synchronously in finishBatch.
      CC.Job = Pool->submit(compileArgv(T->Src, CC.Bin, T->Configs[C]), PO);
      CC.Submitted = true;
      if (Sink)
        CC.SubmitUs = Sink->nowUs();
    }
  }
  return T;
}

std::vector<std::vector<std::vector<BackendObservation>>>
ExternalBackend::finishBatch(std::unique_ptr<BatchTicket> Ticket) const {
  auto *T = dynamic_cast<ExternalBatchTicket *>(Ticket.get());
  if (!T)
    return CompilerBackend::finishBatch(std::move(Ticket));

  std::vector<std::vector<std::vector<BackendObservation>>> Out(
      T->Sources.size(),
      std::vector<std::vector<BackendObservation>>(T->Configs.size()));
  if (!T->Packed) {
    for (size_t I = 0; I < T->Sources.size(); ++I)
      for (size_t C = 0; C < T->Configs.size(); ++C)
        Out[I][C] = runSweep(T->Sources[I], T->Configs[C],
                             configInputs(T->Configs[C]), nullptr);
    return Out;
  }

  T->Union = sweepUnion(T->Configs);
  std::vector<size_t> All(T->Sources.size());
  for (size_t I = 0; I < All.size(); ++I)
    All[I] = I;
  ProcessOptions PO;
  PO.TimeoutMs = Opts.CompileTimeoutMs;
  TelemetrySink *Sink = Opts.Telemetry;
  for (size_t C = 0; C < T->Configs.size(); ++C) {
    ExternalBatchTicket::ConfigCompile &CC = T->Compiles[C];
    std::string Cfg = Sink ? telemetryConfigLabel(T->Configs[C].OptLevel,
                                                  T->Configs[C].Mode64)
                           : std::string();
    ProcessResult CR;
    if (CC.Submitted) {
      {
        // The blocking wait traces as its own phase; the honest compile
        // latency (submit -> collect, crossing threads) folds
        // aggregate-only under "compile" so broker-overlapped compiles
        // report real durations, not just the tail this thread blocked on.
        SpanTimer Span(Sink, nullptr, "compile_wait", TelLabel, Cfg);
        CR = Pool->wait(CC.Job);
      }
      CC.Submitted = false;
      if (Sink)
        Sink->recordAggregate("compile", TelLabel, Cfg,
                              Sink->nowUs() - CC.SubmitUs);
    } else {
      SpanTimer Span(Sink, nullptr, "compile", TelLabel, Cfg);
      CR = runTool(compileArgv(T->Src, CC.Bin, T->Configs[C]), PO);
    }
    resolveSubset(*T, C, All, &CR, CC.Bin, Out);
  }
  return Out; // ~ExternalBatchTicket removes the scratch files.
}

void ExternalBackend::resolveSubset(
    const ExternalBatchTicket &T, size_t ConfigIdx,
    const std::vector<size_t> &Subset, const ProcessResult *Known,
    const std::string &KnownBin,
    std::vector<std::vector<std::vector<BackendObservation>>> &Out) const {
  const CompilerConfig &Config = T.Configs[ConfigIdx];
  const std::vector<std::string> Ins = configInputs(Config);
  // Each local sweep input's index in the batch's sweep union -- the index
  // space BatchExpectation::cell() speaks.
  std::vector<size_t> UnionIdx(Ins.size(), 0);
  for (size_t I = 0; I < Ins.size(); ++I)
    UnionIdx[I] = static_cast<size_t>(
        std::find(T.Union.begin(), T.Union.end(), Ins[I]) - T.Union.begin());
  auto Solo = [&](size_t V) {
    Out[V][ConfigIdx] = runSweep(T.Sources[V], Config, Ins, nullptr);
  };

  ProcessResult CR;
  std::string Bin;
  struct Cleanup {
    const ExternalBackend *B;
    std::string Src, Bin;
    ~Cleanup() {
      if (B && !B->Opts.KeepArtifacts) {
        if (!Src.empty())
          std::remove(Src.c_str());
        if (!Bin.empty())
          std::remove(Bin.c_str());
      }
    }
  } Scope{nullptr, {}, {}};

  if (Known) {
    CR = *Known;
    Bin = KnownBin;
  } else {
    // A sub-batch produced by splitting: one variant resolves by plain
    // run() directly (cheaper than packing a singleton TU, and it is the
    // very observation the contract demands); larger subsets re-pack.
    if (Subset.size() == 1)
      return Solo(Subset.front());
    BatchRenderer::Result P;
    {
      SpanTimer Span(Opts.Telemetry, nullptr, "batch_pack", TelLabel);
      P = BatchRenderer::pack(T.Sources, Subset, Opts.Prelude);
    }
    if (!P.Ok) {
      for (size_t V : Subset)
        Solo(V);
      return;
    }
    std::string Base = scratchBase();
    Scope.B = this;
    Scope.Src = Base + ".c";
    Scope.Bin = Bin = Base + ".bin";
    if (!writeFile(Scope.Src, P.Source)) {
      warnInfra("cannot write scratch file " + Scope.Src);
      for (size_t V : Subset)
        Solo(V);
      return;
    }
    ProcessOptions PO;
    PO.TimeoutMs = Opts.CompileTimeoutMs;
    SpanTimer Span(Opts.Telemetry, nullptr, "compile", TelLabel,
                   Opts.Telemetry ? telemetryConfigLabel(Config.OptLevel,
                                                         Config.Mode64)
                                  : std::string());
    CR = runTool(compileArgv(Scope.Src, Bin, Config), PO);
  }

  if (!CR.exitedWith(0)) {
    // The batch TU did not compile cleanly: crash, reject, timeout, or
    // start failure. Which member is responsible is unknowable from here
    // (diagnostics name renamed identifiers, a timeout names nobody), so
    // split and recurse; singletons resolve unbatched, which classifies
    // the failure exactly as an unbatched campaign would have.
    if (Subset.size() == 1)
      return Solo(Subset.front());
    size_t Mid = Subset.size() / 2;
    resolveSubset(T, ConfigIdx,
                  std::vector<size_t>(Subset.begin(), Subset.begin() + Mid),
                  nullptr, {}, Out);
    resolveSubset(T, ConfigIdx,
                  std::vector<size_t>(Subset.begin() + Mid, Subset.end()),
                  nullptr, {}, Out);
    return;
  }

  ProcessOptions RO;
  RO.TimeoutMs = Opts.ExecTimeoutMs;
  for (size_t Local = 0; Local < Subset.size(); ++Local) {
    size_t V = Subset[Local];
    // Solo-verification invariant, row edition: only a row whose every
    // executed cell exactly reproduces its oracle expectation is kept --
    // and such a row records nothing downstream. Any deviating cell
    // (trap, hang, divergent exit or output, missing expectation) sends
    // the whole (variant, config) row back through unbatched runSweep()
    // so the recorded row shares one single-compile provenance. Cells
    // whose input the oracle excluded (Cell.Valid false under a valid
    // expectation) are never executed here and stay Exec = NotRun; the
    // harness skips them by oracle verdict, never by looking at the
    // observation, so the shape difference against a runSweep() row is
    // unobservable. The one thing none of this can catch is a batch
    // compile *masking* a divergence its solo compile would show while
    // still matching the oracle -- see DESIGN.md Section 13 for why that
    // is accepted.
    const BatchExpectation *E =
        V < T.Expected.size() ? &T.Expected[V] : nullptr;
    std::vector<BackendObservation> RowObs(Ins.size());
    bool RowClean = E && E->Valid;
    for (size_t I = 0; RowClean && I < Ins.size(); ++I) {
      BatchExpectation::Cell Cell = E->cell(UnionIdx[I]);
      RowObs[I].Compile = BackendObservation::CompileStatus::Ok;
      if (!Cell.Valid)
        continue; // Excluded input: not executed, not compared.
      RO.StdinData = Ins[I];
      ProcessResult R;
      {
        SpanTimer Span(Opts.Telemetry, nullptr, "exec", TelLabel);
        R = runTool({Bin, std::to_string(Local)}, RO);
      }
      if (R.St == ProcessResult::Status::StartFailed) {
        RowClean = false;
        break;
      }
      classifyExecInto(R, RowObs[I]);
      RowClean = RowObs[I].Exec == BackendObservation::ExecStatus::Ok &&
                 classifyDivergence(RowObs[I], Cell.ExitCode, Cell.Output)
                     .empty();
    }
    if (RowClean)
      Out[V][ConfigIdx] = std::move(RowObs);
    else
      Solo(V);
  }
}
