//===- compiler/ExternalBackend.cpp - real-compiler subprocess driver ----===//

#include "compiler/ExternalBackend.h"

#include "support/ProcessRunner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

using namespace spe;

namespace {

/// Writes \p Text to \p Path; \returns false on any I/O failure.
bool writeFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  Ok = std::fclose(F) == 0 && Ok;
  return Ok;
}

std::string firstLine(const std::string &Text) {
  size_t NL = Text.find('\n');
  std::string Line = NL == std::string::npos ? Text : Text.substr(0, NL);
  while (!Line.empty() && (Line.back() == '\r' || Line.back() == ' '))
    Line.pop_back();
  return Line;
}

/// Marker substrings that distinguish "the compiler died" from "the
/// compiler diagnosed the program". Shared across GCC and Clang stderr
/// shapes.
bool isCrashMarker(const std::string &Line) {
  return Line.find("internal compiler error") != std::string::npos ||
         Line.find("Internal compiler error") != std::string::npos ||
         Line.find("Assertion") != std::string::npos ||
         Line.find("error in backend") != std::string::npos ||
         Line.find("fatal error: error in") != std::string::npos ||
         Line.find("PLEASE submit a bug report") != std::string::npos ||
         Line.find("Segmentation fault") != std::string::npos;
}

} // namespace

std::string
ExternalBackend::extractCrashSignature(const std::string &Stderr,
                                       const std::string &Fallback) {
  size_t Start = 0;
  while (Start <= Stderr.size()) {
    size_t NL = Stderr.find('\n', Start);
    if (NL == std::string::npos)
      NL = Stderr.size();
    std::string Line = Stderr.substr(Start, NL - Start);
    Start = NL + 1;
    if (!isCrashMarker(Line))
      continue;
    // Strip the variant-specific "path/to/spe-ext-1234-5.c:3:7: " prefix:
    // everything up to the last ": " before the marker keyword would be
    // too aggressive (assertion texts embed colons), so strip only a
    // leading "<token-without-spaces>: " whose token contains a path-ish
    // ':' separated location.
    size_t FirstSpace = Line.find(' ');
    if (FirstSpace != std::string::npos && FirstSpace > 0 &&
        Line[FirstSpace - 1] == ':' &&
        Line.find(':') < FirstSpace - 1)
      Line = Line.substr(FirstSpace + 1);
    while (!Line.empty() && (Line.back() == '\r' || Line.back() == ' '))
      Line.pop_back();
    if (!Line.empty())
      return Line;
  }
  return Fallback;
}

ExternalBackend::ExternalBackend(ExternalBackendOptions O)
    : Opts(std::move(O)) {
  if (Opts.Command.empty()) {
    Unavailable = "empty compiler command";
    return;
  }
  std::vector<std::string> Argv = Opts.Command;
  Argv.push_back("--version");
  ProcessOptions PO;
  PO.TimeoutMs = 10'000;
  ProcessResult R = runProcess(Argv, PO);
  if (R.St == ProcessResult::Status::StartFailed) {
    Unavailable = R.Error;
    return;
  }
  if (!R.exitedWith(0)) {
    Unavailable = "'" + Opts.Command[0] + " --version' did not exit 0";
    return;
  }
  Version = firstLine(R.Stdout.empty() ? R.Stderr : R.Stdout);
  Available = true;
}

std::string ExternalBackend::identity() const {
  // Command line + --version banner: the resume fingerprint must change
  // whenever either does, so a checkpoint can never silently continue
  // against a different compiler or flag set.
  std::string Id = "external:";
  for (const std::string &A : Opts.Command)
    Id += " " + A;
  for (const std::string &A : Opts.ExtraArgs)
    Id += " " + A;
  Id += Opts.MapOptLevel ? " [-O]" : "";
  Id += Opts.MapMachineMode ? " [-m]" : "";
  Id += " | " + (Available ? Version : "unavailable: " + Unavailable);
  return Id;
}

void ExternalBackend::warnInfra(const std::string &What) const {
  if (InfraWarned.exchange(true, std::memory_order_relaxed))
    return;
  std::fprintf(stderr,
               "spe: external backend infrastructure failure (%s); affected "
               "variants are skipped, not classified -- further failures "
               "of this backend are silent\n",
               What.c_str());
}

std::string ExternalBackend::scratchBase() const {
  std::string Dir = Opts.TempDir;
  if (Dir.empty()) {
    const char *Env = std::getenv("TMPDIR");
    Dir = Env && *Env ? Env : "/tmp";
  }
  if (!Dir.empty() && Dir.back() == '/')
    Dir.pop_back();
  return Dir + "/spe-ext-" + std::to_string(static_cast<long>(getpid())) +
         "-" + std::to_string(Seq.fetch_add(1, std::memory_order_relaxed));
}

BackendObservation ExternalBackend::run(const std::string &Source,
                                        const CompilerConfig &Config,
                                        CoverageRegistry *Cov) const {
  (void)Cov; // No instrumentation hooks into a foreign compiler.
  BackendObservation Obs;
  if (!Available)
    return Obs; // Rejected: probe() already told the caller why.

  std::string Base = scratchBase();
  std::string Src = Base + ".c";
  std::string Bin = Base + ".bin";
  struct Cleanup {
    const ExternalBackend *B;
    std::string Src, Bin;
    ~Cleanup() {
      if (!B->Opts.KeepArtifacts) {
        std::remove(Src.c_str());
        std::remove(Bin.c_str());
      }
    }
  } Scope{this, Src, Bin};

  if (!writeFile(Src, Opts.Prelude + Source)) {
    warnInfra("cannot write scratch file " + Src);
    return Obs;
  }

  std::vector<std::string> Argv = Opts.Command;
  Argv.insert(Argv.end(), Opts.ExtraArgs.begin(), Opts.ExtraArgs.end());
  if (Opts.MapOptLevel)
    Argv.push_back("-O" + std::to_string(Config.OptLevel));
  if (Opts.MapMachineMode)
    Argv.push_back(Config.Mode64 ? "-m64" : "-m32");
  Argv.push_back(Src);
  Argv.push_back("-o");
  Argv.push_back(Bin);

  ProcessOptions PO;
  PO.TimeoutMs = Opts.CompileTimeoutMs;
  ProcessResult C = runProcess(Argv, PO);
  switch (C.St) {
  case ProcessResult::Status::StartFailed:
    // A compiler that probed fine but cannot start now (deleted binary,
    // fork pressure): the variant is skipped like a rejection, but a
    // campaign silently degrading into "everything rejected, zero
    // findings" is a misconfiguration worth one loud line.
    warnInfra("cannot start compiler: " + C.Error);
    return Obs;
  case ProcessResult::Status::TimedOut:
    Obs.Compile = BackendObservation::CompileStatus::TimedOut;
    Obs.CompileTimeAnomaly = true;
    return Obs;
  case ProcessResult::Status::Signaled:
    Obs.Compile = BackendObservation::CompileStatus::Crashed;
    Obs.CrashSignature = extractCrashSignature(
        C.Stderr, "compiler killed by signal " + std::to_string(C.Signal));
    return Obs;
  case ProcessResult::Status::Exited:
    break;
  }
  if (C.ExitCode != 0) {
    // Distinguish "died with a diagnostic banner" (ICE, assertion) from a
    // plain rejection: GCC's cc1 segfault surfaces as driver exit 1 plus
    // an "internal compiler error" line, not as a signal here.
    std::string Sig = extractCrashSignature(C.Stderr, "");
    if (Sig.empty()) {
      Obs.Compile = BackendObservation::CompileStatus::Rejected;
      return Obs;
    }
    Obs.Compile = BackendObservation::CompileStatus::Crashed;
    Obs.CrashSignature = std::move(Sig);
    return Obs;
  }

  Obs.Compile = BackendObservation::CompileStatus::Ok;
  ProcessOptions RO;
  RO.TimeoutMs = Opts.ExecTimeoutMs;
  ProcessResult R = runProcess({Bin}, RO);
  switch (R.St) {
  case ProcessResult::Status::StartFailed:
    // We never ran the binary -- transient fork pressure, or an artifact
    // the compiler claimed and did not deliver. Either way this is an
    // infrastructure fact, not a behavioral observation: leave Exec at
    // NotRun so no wrong-code finding can be fabricated from it, and say
    // so once.
    warnInfra("cannot execute compiled binary: " + R.Error);
    return Obs;
  case ProcessResult::Status::TimedOut:
    Obs.Exec = BackendObservation::ExecStatus::Timeout;
    return Obs;
  case ProcessResult::Status::Signaled:
    Obs.Exec = BackendObservation::ExecStatus::Trap;
    return Obs;
  case ProcessResult::Status::Exited:
    Obs.Exec = BackendObservation::ExecStatus::Ok;
    Obs.ExitCode = R.ExitCode;
    Obs.ExitCodeLow8 = true;
    Obs.Output = std::move(R.Stdout);
    return Obs;
  }
  return Obs;
}
