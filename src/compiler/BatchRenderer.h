//===- compiler/BatchRenderer.h - pack variants into one TU --------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-variant translation units for batched external compilation. A real
/// compiler costs ~30 ms per subprocess invocation; a skeleton variant is a
/// few hundred bytes of straight-line C. Packing K variants into one TU --
/// each variant alpha-renamed into its own namespace (every identifier
/// prefixed "v<i>_", so variant i carries a private snapshot of its globals
/// and its entry point becomes v<i>_main) plus a generated dispatch
/// main(argc, argv) that selects a variant by its decimal index argument --
/// amortizes that invocation down to one compile per K differential points
/// while preserving the per-variant exit-code/stdout convention exactly:
/// running `./batch <i>` returns what variant i's own main would have
/// returned and prints what it would have printed, because each execution
/// is still its own process.
///
/// The rename is token-exact: the mini-C Lexer locates every identifier and
/// the prefix is spliced into the *raw* source text, so string literals,
/// integer spellings, comments and whitespace survive byte-for-byte.
/// Keywords come back as keyword tokens (never renamed) and the library
/// names the harness prelude declares (printf) are preserved. The scheme is
/// collision-free by construction: renaming is injective per variant
/// (a fixed prefix on distinct names yields distinct names), and two
/// prefixes "v<i>_" / "v<j>_" can only collide on identifiers starting
/// with a digit, which cannot lex.
///
/// Packing can fail (a variant that does not re-lex); callers fall back to
/// per-variant compilation, which is always correct. Note the packed TU is
/// an *amortization*, not an oracle: compiler/ExternalBackend.h bisects any
/// batch-level failure and re-verifies any batch-level anomaly with a solo
/// compile, so every recorded observation comes from an unbatched run.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_COMPILER_BATCHRENDERER_H
#define SPE_COMPILER_BATCHRENDERER_H

#include <cstddef>
#include <string>
#include <vector>

namespace spe {

/// Renders K variant programs into one dispatching translation unit.
class BatchRenderer {
public:
  /// Outcome of one pack() call.
  struct Result {
    bool Ok = false;
    /// The packed TU (valid when Ok): prelude, then each renamed variant,
    /// then the dispatch main.
    std::string Source;
    /// Human-readable reason when !Ok (e.g. which variant failed to lex).
    std::string Error;
  };

  /// Packs \p Variants (complete mini-C programs, each defining main) into
  /// one TU prefixed by \p Prelude. Variant i is selected at run time by
  /// passing the decimal string "i" as argv[1]; an absent or malformed
  /// index exits with DispatchBadIndex, which the driver never passes.
  static Result pack(const std::vector<std::string> &Variants,
                     const std::string &Prelude);
  /// Same, over a subset: packs Variants[Subset[0]], Variants[Subset[1]],
  /// ... so bisection re-packs sub-batches without copying sources. The
  /// packed TU numbers its members 0..Subset.size()-1 in subset order.
  static Result pack(const std::vector<std::string> &Variants,
                     const std::vector<size_t> &Subset,
                     const std::string &Prelude);

  /// Splices \p Prefix onto every identifier of \p Source except preserved
  /// library names (printf). \returns false (and sets \p Error) when the
  /// source does not lex cleanly. Exposed for tests.
  static bool prefixIdentifiers(const std::string &Source,
                                const std::string &Prefix, std::string &Out,
                                std::string &Error);

  /// Exit code of the generated dispatch main for a missing or malformed
  /// variant index. Unobservable through the driver, which always passes
  /// an index the switch covers.
  static constexpr int DispatchBadIndex = 125;
};

} // namespace spe

#endif // SPE_COMPILER_BATCHRENDERER_H
