//===- compiler/Coverage.cpp - compiler coverage instrumentation ---------===//

#include "compiler/Coverage.h"

using namespace spe;

void CoverageRegistry::registerPoint(const std::string &Name) {
  Catalog.insert(Name);
}

bool CoverageRegistry::hit(const std::string &Name) {
  if (Catalog.count(Name)) {
    Hits.insert(Name);
    return true;
  }
  // Unregistered point: the old behavior silently registered the name,
  // inflating totalPoints() per distinct unregistered string and making
  // coverage ratios depend on which variants executed. Fold every such hit
  // into one synthetic entry instead, identically in all build modes.
  Catalog.insert(syntheticPoint());
  Hits.insert(syntheticPoint());
  return false;
}

void CoverageRegistry::resetHits() { Hits.clear(); }

std::string CoverageRegistry::functionOf(const std::string &PointName) {
  // A "function" is the rule family: the first two dot-separated segments
  // (e.g. "algebra.selfcancel" of "algebra.selfcancel.-"); points are the
  // per-operator "lines" within it.
  size_t Dot = PointName.find('.');
  if (Dot == std::string::npos)
    return PointName;
  size_t Dot2 = PointName.find('.', Dot + 1);
  return Dot2 == std::string::npos ? PointName : PointName.substr(0, Dot2);
}

unsigned CoverageRegistry::totalFunctions() const {
  std::set<std::string> Fns;
  for (const std::string &Name : Catalog)
    Fns.insert(functionOf(Name));
  return static_cast<unsigned>(Fns.size());
}

unsigned CoverageRegistry::hitFunctions() const {
  std::set<std::string> Fns;
  for (const std::string &Name : Hits)
    Fns.insert(functionOf(Name));
  return static_cast<unsigned>(Fns.size());
}

void CoverageRegistry::merge(const CoverageRegistry &Other) {
  Catalog.insert(Other.Catalog.begin(), Other.Catalog.end());
  Hits.insert(Other.Hits.begin(), Other.Hits.end());
}
