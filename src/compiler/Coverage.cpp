//===- compiler/Coverage.cpp - compiler coverage instrumentation ---------===//

#include "compiler/Coverage.h"

using namespace spe;

void CoverageRegistry::registerPoint(const std::string &Name) {
  Catalog.insert(Name);
}

void CoverageRegistry::hit(const std::string &Name) {
  Catalog.insert(Name);
  Hits.insert(Name);
}

void CoverageRegistry::resetHits() { Hits.clear(); }

std::string CoverageRegistry::functionOf(const std::string &PointName) {
  // A "function" is the rule family: the first two dot-separated segments
  // (e.g. "algebra.selfcancel" of "algebra.selfcancel.-"); points are the
  // per-operator "lines" within it.
  size_t Dot = PointName.find('.');
  if (Dot == std::string::npos)
    return PointName;
  size_t Dot2 = PointName.find('.', Dot + 1);
  return Dot2 == std::string::npos ? PointName : PointName.substr(0, Dot2);
}

unsigned CoverageRegistry::totalFunctions() const {
  std::set<std::string> Fns;
  for (const std::string &Name : Catalog)
    Fns.insert(functionOf(Name));
  return static_cast<unsigned>(Fns.size());
}

unsigned CoverageRegistry::hitFunctions() const {
  std::set<std::string> Fns;
  for (const std::string &Name : Hits)
    Fns.insert(functionOf(Name));
  return static_cast<unsigned>(Fns.size());
}

void CoverageRegistry::merge(const CoverageRegistry &Other) {
  Catalog.insert(Other.Catalog.begin(), Other.Catalog.end());
  Hits.insert(Other.Hits.begin(), Other.Hits.end());
}
