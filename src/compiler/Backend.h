//===- compiler/Backend.h - pluggable compiler backends ------------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler-under-test abstraction of the differential harness. The
/// paper's headline result is 217 bugs in *real* GCC and Clang; this
/// interface is what lets one campaign loop drive either the in-process
/// MiniCC personas (ground-truth injected bugs, used by every bench that
/// reports found/missed precisely) or an external host compiler invoked as
/// a subprocess (compiler/ExternalBackend.h, no ground truth -- findings
/// flow through signature-only triage exactly as the paper's authors'
/// did).
///
/// A backend turns (variant text, configuration) into one behavioral
/// observation: how compilation ended, whether compile time blew up, and
/// -- when a binary was produced -- how it ran. Classification against the
/// reference oracle stays in the harness (and in reduce/BugRepro.h via the
/// shared classifyDivergence), so the two can never drift on what counts
/// as a divergence.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_COMPILER_BACKEND_H
#define SPE_COMPILER_BACKEND_H

#include "compiler/Bugs.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace spe {

class ASTContext;
class CoverageRegistry;

/// The shared front-end gate: parse + Sema, null on any failure. One
/// definition serves the harness, the repro oracle, and the in-process
/// backend, so what counts as "frontend-valid" cannot desynchronize
/// between them.
std::unique_ptr<ASTContext> parseAndAnalyze(const std::string &Source);

/// One compile-and-run observation of a variant under a configuration.
struct BackendObservation {
  enum class CompileStatus {
    Ok,       ///< A runnable artifact was produced.
    Crashed,  ///< The compiler itself died (ICE / assertion / signal).
    Rejected, ///< Diagnosed and refused; not a bug observation.
    TimedOut, ///< Compilation exceeded its wall-clock budget.
  };
  CompileStatus Compile = CompileStatus::Rejected;
  /// Crash signature text (CompileStatus::Crashed): the assertion or ICE
  /// line for MiniCC; the normalized stderr marker line for external
  /// compilers.
  std::string CrashSignature;
  /// Ground-truth injected bug behind the crash, or 0 when unknown (always
  /// 0 for external backends).
  int CrashBugId = 0;
  /// All ground-truth bugs that fired during compilation; empty when the
  /// backend has none. The harness looks ids up with findBug(), so foreign
  /// or empty id sets are safe.
  std::vector<int> FiredBugs;
  /// Pathological compile time: MiniCC's inflated cost model, or an
  /// external compile that needed killing (CompileStatus::TimedOut).
  bool CompileTimeAnomaly = false;

  enum class ExecStatus {
    NotRun,  ///< No artifact to execute (crash/reject/timeout).
    Ok,      ///< Ran to completion; ExitCode and Output are meaningful.
    Trap,    ///< Died abnormally (VM trap, or a signal for subprocesses).
    Timeout, ///< Execution budget expired -- the hang-divergence case.
  };
  ExecStatus Exec = ExecStatus::NotRun;
  int64_t ExitCode = 0;
  /// True when ExitCode passed through a POSIX wait status and only its
  /// low 8 bits are meaningful; divergence comparison masks both sides.
  bool ExitCodeLow8 = false;
  std::string Output;
};

/// The stdin inputs one config's sweep drives. An empty ExecSweep is the
/// classic single execution on empty stdin, so this is never empty: it
/// returns {""} for an unswept config.
std::vector<std::string> configInputs(const CompilerConfig &Config);

/// The matrix's input axis: the first-appearance-ordered union of every
/// config's sweep. Index 0 is the *primary* input -- the one whose oracle
/// verdict gates whether a variant is tested at all, and "" when no config
/// sweeps. Deterministic for identical config lists, which is what lets
/// checkpoints fingerprint the sweep set.
std::vector<std::string> sweepUnion(const std::vector<CompilerConfig> &Configs);

/// The harness's oracle expectation for one batched variant: what a clean
/// execution must reproduce. A batched observation that deviates from it in
/// any way (or that has no valid expectation to check against) is discarded
/// and the variant re-run unbatched, so every observation that can reach
/// the recording path carries single-compile provenance.
struct BatchExpectation {
  /// False = no behavioral expectation is known; such variants are always
  /// resolved by an unbatched run.
  bool Valid = false;
  /// Expected behavior under the primary input (sweepUnion index 0).
  int64_t ExitCode = 0;
  std::string Output;

  /// Expected behavior of one non-primary sweep input.
  struct Cell {
    /// False = this input's oracle verdict was not Ok (UB / timeout under
    /// that input); the cell is excluded from the matrix and never run.
    bool Valid = false;
    int64_t ExitCode = 0;
    std::string Output;
  };
  /// Expectations for sweepUnion indices 1.. (entry I describes union
  /// input I+1). Empty when the campaign has no sweep -- the layout the
  /// pre-matrix harness produced, byte for byte.
  std::vector<Cell> Extra;

  /// The expectation cell for sweep-union index \p UnionIdx (index 0
  /// aliases the legacy top-level fields). Cell.Valid is false when the
  /// whole expectation is invalid or that input is excluded.
  Cell cell(size_t UnionIdx) const {
    if (!Valid)
      return {};
    if (UnionIdx == 0)
      return {true, ExitCode, Output};
    if (UnionIdx - 1 >= Extra.size())
      return {};
    return Extra[UnionIdx - 1];
  }
};

/// Opaque handle for an in-flight batch: beginBatch() may start real work
/// (pool compiles) behind it; finishBatch() consumes it. Destroying an
/// unfinished ticket abandons the batch and releases its resources --
/// exactly what a simulated crash strands.
class BatchTicket {
public:
  virtual ~BatchTicket() = default;
};

/// A compiler under differential test. Implementations must be const-callable
/// from concurrent shard workers.
class CompilerBackend {
public:
  virtual ~CompilerBackend() = default;

  /// Stable identity folded into checkpoint fingerprints (persist/): for
  /// external backends the command-line template plus the compiler's
  /// --version banner, so a snapshot written against one compiler can
  /// never be resumed against another.
  virtual std::string identity() const = 0;

  /// True when observations carry ground-truth injected-bug ids. Without
  /// ground truth the harness records findings as signature-only clusters
  /// (FoundBug::BugId 0, keyed by normalized signature).
  virtual bool hasGroundTruth() const = 0;

  /// Compiles \p Source under \p Config and, when a runnable artifact
  /// results, executes it. \p Cov is forwarded to backends that support
  /// coverage instrumentation and ignored by the rest.
  virtual BackendObservation run(const std::string &Source,
                                 const CompilerConfig &Config,
                                 CoverageRegistry *Cov) const = 0;

  /// run() with \p Input fed to the executed artifact's stdin (the
  /// spe_input() intrinsic reads it). The base implementation ignores the
  /// input and forwards to run() -- correct for test doubles whose
  /// behavior is scripted rather than executed; every real executor
  /// overrides it.
  virtual BackendObservation runWithInput(const std::string &Source,
                                          const CompilerConfig &Config,
                                          const std::string &Input,
                                          CoverageRegistry *Cov) const;

  /// One compile, M executions: the full observation row of \p Source
  /// under \p Config for each stdin in \p Inputs (never empty; pass
  /// configInputs(Config)). All returned observations share one compile's
  /// status/crash fields. The base implementation loops runWithInput;
  /// real backends override to amortize the compile across the sweep.
  virtual std::vector<BackendObservation>
  runSweep(const std::string &Source, const CompilerConfig &Config,
           const std::vector<std::string> &Inputs,
           CoverageRegistry *Cov) const;

  /// Starts testing a batch of variants against every configuration and
  /// returns immediately; backends that can overlap work (ExternalBackend's
  /// pool compiles) start it here. The base implementation just parks the
  /// inputs in the ticket. Ownership of \p Sources transfers to the ticket
  /// so nothing dangles while the caller enumerates ahead.
  virtual std::unique_ptr<BatchTicket>
  beginBatch(std::vector<std::string> Sources,
             std::vector<BatchExpectation> Expected,
             std::vector<CompilerConfig> Configs, CoverageRegistry *Cov) const;

  /// Completes a batch: \returns Out[variant][config][input] observations
  /// in the shape beginBatch was given, with the input axis of row
  /// (variant, config) being configInputs(Configs[config]). The contract
  /// batched callers rely on: every observation that differs from its
  /// BatchExpectation cell (crash, reject, anomaly, divergence, exec
  /// failure) is equal to what runSweep() would have produced for that
  /// (variant, config) row -- the base implementation guarantees it by
  /// *being* a runSweep() loop, ExternalBackend by bisection plus
  /// unbatched re-verification of the whole row.
  virtual std::vector<std::vector<std::vector<BackendObservation>>>
  finishBatch(std::unique_ptr<BatchTicket> Ticket) const;
};

/// The historical in-process driver: parse + Sema + MiniCompiler + VM.
/// Behavior-preserving refactor of the loop body the harness ran inline
/// before backends existed.
class InProcessBackend final : public CompilerBackend {
public:
  explicit InProcessBackend(bool InjectBugs = true)
      : InjectBugs(InjectBugs) {}

  std::string identity() const override { return "minicc"; }
  bool hasGroundTruth() const override { return true; }
  BackendObservation run(const std::string &Source,
                         const CompilerConfig &Config,
                         CoverageRegistry *Cov) const override;
  BackendObservation runWithInput(const std::string &Source,
                                  const CompilerConfig &Config,
                                  const std::string &Input,
                                  CoverageRegistry *Cov) const override;
  /// One MiniCompiler invocation, one VM execution per input.
  std::vector<BackendObservation>
  runSweep(const std::string &Source, const CompilerConfig &Config,
           const std::vector<std::string> &Inputs,
           CoverageRegistry *Cov) const override;

  /// In-process fast path: compile + execute an already-analyzed unit,
  /// skipping the re-parse run() would perform. Used where the caller
  /// still holds the AST it built for the oracle verdict. \p Input feeds
  /// the VM's spe_input() cursor.
  BackendObservation runOn(ASTContext &Ctx, const CompilerConfig &Config,
                           CoverageRegistry *Cov,
                           const std::string &Input = {}) const;

  /// runOn for a whole sweep: compile once, execute the VM per input.
  std::vector<BackendObservation>
  runOnSweep(ASTContext &Ctx, const CompilerConfig &Config,
             CoverageRegistry *Cov,
             const std::vector<std::string> &Inputs) const;

private:
  bool InjectBugs;
};

/// Classifies one executed observation against the reference oracle's
/// verdict. \returns the raw wrong-code signature -- "miscompilation
/// (hang)" for an execution timeout, "(trap)", "(exit A != B)", or
/// "(output)" -- or the empty string when behaviors agree. Exit codes are
/// masked to their low 8 bits when the observation says only those
/// survived the wait status. Shared by the harness and the reduction
/// pipeline's repro oracle so the divergence definition cannot drift.
std::string classifyDivergence(const BackendObservation &Obs,
                               int64_t OracleExitCode,
                               const std::string &OracleOutput);

} // namespace spe

#endif // SPE_COMPILER_BACKEND_H
