//===- compiler/Backend.h - pluggable compiler backends ------------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler-under-test abstraction of the differential harness. The
/// paper's headline result is 217 bugs in *real* GCC and Clang; this
/// interface is what lets one campaign loop drive either the in-process
/// MiniCC personas (ground-truth injected bugs, used by every bench that
/// reports found/missed precisely) or an external host compiler invoked as
/// a subprocess (compiler/ExternalBackend.h, no ground truth -- findings
/// flow through signature-only triage exactly as the paper's authors'
/// did).
///
/// A backend turns (variant text, configuration) into one behavioral
/// observation: how compilation ended, whether compile time blew up, and
/// -- when a binary was produced -- how it ran. Classification against the
/// reference oracle stays in the harness (and in reduce/BugRepro.h via the
/// shared classifyDivergence), so the two can never drift on what counts
/// as a divergence.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_COMPILER_BACKEND_H
#define SPE_COMPILER_BACKEND_H

#include "compiler/Bugs.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace spe {

class ASTContext;
class CoverageRegistry;

/// The shared front-end gate: parse + Sema, null on any failure. One
/// definition serves the harness, the repro oracle, and the in-process
/// backend, so what counts as "frontend-valid" cannot desynchronize
/// between them.
std::unique_ptr<ASTContext> parseAndAnalyze(const std::string &Source);

/// One compile-and-run observation of a variant under a configuration.
struct BackendObservation {
  enum class CompileStatus {
    Ok,       ///< A runnable artifact was produced.
    Crashed,  ///< The compiler itself died (ICE / assertion / signal).
    Rejected, ///< Diagnosed and refused; not a bug observation.
    TimedOut, ///< Compilation exceeded its wall-clock budget.
  };
  CompileStatus Compile = CompileStatus::Rejected;
  /// Crash signature text (CompileStatus::Crashed): the assertion or ICE
  /// line for MiniCC; the normalized stderr marker line for external
  /// compilers.
  std::string CrashSignature;
  /// Ground-truth injected bug behind the crash, or 0 when unknown (always
  /// 0 for external backends).
  int CrashBugId = 0;
  /// All ground-truth bugs that fired during compilation; empty when the
  /// backend has none. The harness looks ids up with findBug(), so foreign
  /// or empty id sets are safe.
  std::vector<int> FiredBugs;
  /// Pathological compile time: MiniCC's inflated cost model, or an
  /// external compile that needed killing (CompileStatus::TimedOut).
  bool CompileTimeAnomaly = false;

  enum class ExecStatus {
    NotRun,  ///< No artifact to execute (crash/reject/timeout).
    Ok,      ///< Ran to completion; ExitCode and Output are meaningful.
    Trap,    ///< Died abnormally (VM trap, or a signal for subprocesses).
    Timeout, ///< Execution budget expired -- the hang-divergence case.
  };
  ExecStatus Exec = ExecStatus::NotRun;
  int64_t ExitCode = 0;
  /// True when ExitCode passed through a POSIX wait status and only its
  /// low 8 bits are meaningful; divergence comparison masks both sides.
  bool ExitCodeLow8 = false;
  std::string Output;
};

/// The harness's oracle expectation for one batched variant: what a clean
/// execution must reproduce. A batched observation that deviates from it in
/// any way (or that has no valid expectation to check against) is discarded
/// and the variant re-run unbatched, so every observation that can reach
/// the recording path carries single-compile provenance.
struct BatchExpectation {
  /// False = no behavioral expectation is known; such variants are always
  /// resolved by an unbatched run.
  bool Valid = false;
  int64_t ExitCode = 0;
  std::string Output;
};

/// Opaque handle for an in-flight batch: beginBatch() may start real work
/// (pool compiles) behind it; finishBatch() consumes it. Destroying an
/// unfinished ticket abandons the batch and releases its resources --
/// exactly what a simulated crash strands.
class BatchTicket {
public:
  virtual ~BatchTicket() = default;
};

/// A compiler under differential test. Implementations must be const-callable
/// from concurrent shard workers.
class CompilerBackend {
public:
  virtual ~CompilerBackend() = default;

  /// Stable identity folded into checkpoint fingerprints (persist/): for
  /// external backends the command-line template plus the compiler's
  /// --version banner, so a snapshot written against one compiler can
  /// never be resumed against another.
  virtual std::string identity() const = 0;

  /// True when observations carry ground-truth injected-bug ids. Without
  /// ground truth the harness records findings as signature-only clusters
  /// (FoundBug::BugId 0, keyed by normalized signature).
  virtual bool hasGroundTruth() const = 0;

  /// Compiles \p Source under \p Config and, when a runnable artifact
  /// results, executes it. \p Cov is forwarded to backends that support
  /// coverage instrumentation and ignored by the rest.
  virtual BackendObservation run(const std::string &Source,
                                 const CompilerConfig &Config,
                                 CoverageRegistry *Cov) const = 0;

  /// Starts testing a batch of variants against every configuration and
  /// returns immediately; backends that can overlap work (ExternalBackend's
  /// pool compiles) start it here. The base implementation just parks the
  /// inputs in the ticket. Ownership of \p Sources transfers to the ticket
  /// so nothing dangles while the caller enumerates ahead.
  virtual std::unique_ptr<BatchTicket>
  beginBatch(std::vector<std::string> Sources,
             std::vector<BatchExpectation> Expected,
             std::vector<CompilerConfig> Configs, CoverageRegistry *Cov) const;

  /// Completes a batch: \returns Out[variant][config] observations in the
  /// shape beginBatch was given. The contract batched callers rely on:
  /// every observation that differs from its BatchExpectation (crash,
  /// reject, anomaly, divergence, exec failure) is equal to what run()
  /// would have produced for that (variant, config) pair -- the base
  /// implementation guarantees it by *being* a run() loop, ExternalBackend
  /// by bisection plus unbatched re-verification.
  virtual std::vector<std::vector<BackendObservation>>
  finishBatch(std::unique_ptr<BatchTicket> Ticket) const;
};

/// The historical in-process driver: parse + Sema + MiniCompiler + VM.
/// Behavior-preserving refactor of the loop body the harness ran inline
/// before backends existed.
class InProcessBackend final : public CompilerBackend {
public:
  explicit InProcessBackend(bool InjectBugs = true)
      : InjectBugs(InjectBugs) {}

  std::string identity() const override { return "minicc"; }
  bool hasGroundTruth() const override { return true; }
  BackendObservation run(const std::string &Source,
                         const CompilerConfig &Config,
                         CoverageRegistry *Cov) const override;

  /// In-process fast path: compile + execute an already-analyzed unit,
  /// skipping the re-parse run() would perform. Used where the caller
  /// still holds the AST it built for the oracle verdict.
  BackendObservation runOn(ASTContext &Ctx, const CompilerConfig &Config,
                           CoverageRegistry *Cov) const;

private:
  bool InjectBugs;
};

/// Classifies one executed observation against the reference oracle's
/// verdict. \returns the raw wrong-code signature -- "miscompilation
/// (hang)" for an execution timeout, "(trap)", "(exit A != B)", or
/// "(output)" -- or the empty string when behaviors agree. Exit codes are
/// masked to their low 8 bits when the observation says only those
/// survived the wait status. Shared by the harness and the reduction
/// pipeline's repro oracle so the divergence definition cannot drift.
std::string classifyDivergence(const BackendObservation &Obs,
                               int64_t OracleExitCode,
                               const std::string &OracleOutput);

} // namespace spe

#endif // SPE_COMPILER_BACKEND_H
