//===- compiler/Features.cpp - variable-usage pattern features -----------===//

#include "compiler/Features.h"

#include <map>
#include <set>

using namespace spe;

bool spe::exprStructurallyEqual(const Expr *A, const Expr *B) {
  if (A == B)
    return true;
  if (!A || !B || A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case Expr::Kind::IntegerLiteral:
    return cast<IntegerLiteral>(A)->value() ==
           cast<IntegerLiteral>(B)->value();
  case Expr::Kind::StringLiteral:
    return cast<StringLiteral>(A)->value() ==
           cast<StringLiteral>(B)->value();
  case Expr::Kind::DeclRef:
    return cast<DeclRefExpr>(A)->decl() == cast<DeclRefExpr>(B)->decl();
  case Expr::Kind::Unary: {
    const auto *UA = cast<UnaryExpr>(A), *UB = cast<UnaryExpr>(B);
    return UA->op() == UB->op() &&
           exprStructurallyEqual(UA->sub(), UB->sub());
  }
  case Expr::Kind::Binary: {
    const auto *BA = cast<BinaryExpr>(A), *BB = cast<BinaryExpr>(B);
    return BA->op() == BB->op() &&
           exprStructurallyEqual(BA->lhs(), BB->lhs()) &&
           exprStructurallyEqual(BA->rhs(), BB->rhs());
  }
  case Expr::Kind::Conditional: {
    const auto *CA = cast<ConditionalExpr>(A), *CB = cast<ConditionalExpr>(B);
    return exprStructurallyEqual(CA->cond(), CB->cond()) &&
           exprStructurallyEqual(CA->trueExpr(), CB->trueExpr()) &&
           exprStructurallyEqual(CA->falseExpr(), CB->falseExpr());
  }
  case Expr::Kind::Call: {
    const auto *CA = cast<CallExpr>(A), *CB = cast<CallExpr>(B);
    if (CA->callee()->name() != CB->callee()->name() ||
        CA->args().size() != CB->args().size())
      return false;
    for (size_t I = 0; I < CA->args().size(); ++I)
      if (!exprStructurallyEqual(CA->args()[I], CB->args()[I]))
        return false;
    return true;
  }
  case Expr::Kind::Index: {
    const auto *IA = cast<IndexExpr>(A), *IB = cast<IndexExpr>(B);
    return exprStructurallyEqual(IA->base(), IB->base()) &&
           exprStructurallyEqual(IA->index(), IB->index());
  }
  case Expr::Kind::Member: {
    const auto *MA = cast<MemberExpr>(A), *MB = cast<MemberExpr>(B);
    return MA->fieldName() == MB->fieldName() &&
           MA->isArrow() == MB->isArrow() &&
           exprStructurallyEqual(MA->base(), MB->base());
  }
  case Expr::Kind::Cast: {
    const auto *CA = cast<CastExpr>(A), *CB = cast<CastExpr>(B);
    return CA->toType() == CB->toType() &&
           exprStructurallyEqual(CA->sub(), CB->sub());
  }
  case Expr::Kind::SizeOf: {
    const auto *SA = cast<SizeOfExpr>(A), *SB = cast<SizeOfExpr>(B);
    if (SA->typeOperand() || SB->typeOperand())
      return SA->typeOperand() == SB->typeOperand();
    return exprStructurallyEqual(SA->exprOperand(), SB->exprOperand());
  }
  case Expr::Kind::InitList: {
    const auto *LA = cast<InitListExpr>(A), *LB = cast<InitListExpr>(B);
    if (LA->elements().size() != LB->elements().size())
      return false;
    for (size_t I = 0; I < LA->elements().size(); ++I)
      if (!exprStructurallyEqual(LA->elements()[I], LB->elements()[I]))
        return false;
    return true;
  }
  }
  return false;
}

namespace {

const VarDecl *refTarget(const Expr *E) {
  if (const auto *Ref = dyn_cast<DeclRefExpr>(E))
    return Ref->decl();
  return nullptr;
}

class FeatureWalker {
public:
  explicit FeatureWalker(ProgramFeatures &F) : F(F) {}

  void walkStmt(const Stmt *S, unsigned LoopDepth) {
    if (!S)
      return;
    switch (S->kind()) {
    case Stmt::Kind::Compound:
      for (const Stmt *Child : cast<CompoundStmt>(S)->body())
        walkStmt(Child, LoopDepth);
      return;
    case Stmt::Kind::Decl:
      for (const VarDecl *V : cast<DeclStmt>(S)->decls()) {
        if (V->init()) {
          Assigned.insert(V);
          walkExpr(V->init());
          // int *p = &v;
          if (const auto *U = dyn_cast<UnaryExpr>(V->init())) {
            if (U->op() == UnaryOp::AddrOf) {
              if (const VarDecl *Target = refTarget(U->sub()))
                recordAddressTaken(V, Target);
            }
          }
        }
      }
      return;
    case Stmt::Kind::Expr:
      walkExpr(cast<ExprStmt>(S)->expr());
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      walkExpr(I->cond());
      walkStmt(I->thenStmt(), LoopDepth);
      walkStmt(I->elseStmt(), LoopDepth);
      return;
    }
    case Stmt::Kind::While: {
      ++F.NumLoops;
      const auto *W = cast<WhileStmt>(S);
      walkExpr(W->cond());
      walkStmt(W->body(), LoopDepth + 1);
      return;
    }
    case Stmt::Kind::Do: {
      ++F.NumLoops;
      const auto *D = cast<DoStmt>(S);
      walkStmt(D->body(), LoopDepth + 1);
      walkExpr(D->cond());
      return;
    }
    case Stmt::Kind::For: {
      ++F.NumLoops;
      const auto *For = cast<ForStmt>(S);
      walkStmt(For->init(), LoopDepth);
      if (For->cond()) {
        walkExpr(For->cond());
        if (const auto *B = dyn_cast<BinaryExpr>(For->cond())) {
          const VarDecl *L = refTarget(B->lhs());
          const VarDecl *R = refTarget(B->rhs());
          if (L && L == R && isComparisonOp(B->op()))
            F.LoopBoundIsInductionVar = true;
        }
      }
      if (For->step())
        walkExpr(For->step());
      walkStmt(For->body(), LoopDepth + 1);
      return;
    }
    case Stmt::Kind::Return:
      walkExpr(cast<ReturnStmt>(S)->value());
      return;
    case Stmt::Kind::Goto: {
      ++F.NumGotos;
      const auto *G = cast<GotoStmt>(S);
      auto It = LabelIds.find(G->label());
      if (It != LabelIds.end() && It->second < S->stmtId())
        F.BackwardGoto = true;
      PendingGotos = true;
      return;
    }
    case Stmt::Kind::Label: {
      const auto *L = cast<LabelStmt>(S);
      LabelIds[L->name()] = S->stmtId();
      if (LoopDepth > 0)
        LabelInLoop = true;
      walkStmt(L->sub(), LoopDepth);
      return;
    }
    default:
      return;
    }
  }

  void walkExpr(const Expr *E) {
    if (!E)
      return;
    switch (E->kind()) {
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      const VarDecl *L = refTarget(B->lhs());
      const VarDecl *R = refTarget(B->rhs());
      if (L && L == R) {
        switch (B->op()) {
        case BinaryOp::Sub:
          F.IdenticalSubOperands = true;
          break;
        case BinaryOp::Div:
        case BinaryOp::Rem:
          F.IdenticalDivOperands = true;
          break;
        case BinaryOp::Shl:
        case BinaryOp::Shr:
          F.ShiftBySelf = true;
          break;
        case BinaryOp::BitAnd:
        case BinaryOp::BitOr:
        case BinaryOp::BitXor:
          F.IdenticalBitOperands = true;
          break;
        case BinaryOp::Assign:
          F.SelfAssignment = true;
          break;
        default:
          if (isComparisonOp(B->op()))
            F.IdenticalCmpOperands = true;
          break;
        }
      }
      if (isAssignmentOp(B->op())) {
        if (const VarDecl *Target = refTarget(B->lhs()))
          Assigned.insert(Target);
        // p = &v;
        if (const auto *U = dyn_cast<UnaryExpr>(B->rhs())) {
          if (U->op() == UnaryOp::AddrOf) {
            if (const VarDecl *Target = refTarget(U->sub()))
              if (const VarDecl *Ptr = refTarget(B->lhs()))
                recordAddressTaken(Ptr, Target);
          }
        }
      } else {
        noteRead(B->lhs());
      }
      noteRead(B->rhs());
      walkExpr(B->lhs());
      walkExpr(B->rhs());
      return;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      if (U->op() == UnaryOp::Deref)
        ++F.NumDerefs;
      if (U->op() == UnaryOp::PreInc || U->op() == UnaryOp::PreDec ||
          U->op() == UnaryOp::PostInc || U->op() == UnaryOp::PostDec) {
        if (const VarDecl *Target = refTarget(U->sub()))
          Assigned.insert(Target);
      } else if (U->op() != UnaryOp::AddrOf) {
        noteRead(U->sub());
      }
      walkExpr(U->sub());
      return;
    }
    case Expr::Kind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      if (exprStructurallyEqual(C->trueExpr(), C->falseExpr()))
        F.IdenticalCondArms = true;
      const VarDecl *Cond = refTarget(C->cond());
      if (Cond && (refTarget(C->trueExpr()) == Cond ||
                   refTarget(C->falseExpr()) == Cond))
        F.CondWithSameVarAsArm = true;
      noteRead(C->cond());
      noteRead(C->trueExpr());
      noteRead(C->falseExpr());
      walkExpr(C->cond());
      walkExpr(C->trueExpr());
      walkExpr(C->falseExpr());
      return;
    }
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      ++F.NumCalls;
      std::set<const VarDecl *> SeenArgs;
      for (const Expr *A : C->args()) {
        if (const VarDecl *V = refTarget(A))
          if (!SeenArgs.insert(V).second)
            F.RepeatedCallArg = true;
        noteRead(A);
        walkExpr(A);
      }
      return;
    }
    case Expr::Kind::Index: {
      const auto *Ix = cast<IndexExpr>(E);
      const VarDecl *Base = refTarget(Ix->base());
      if (Base && refTarget(Ix->index()) == Base)
        F.IndexBySelf = true;
      noteRead(Ix->base());
      noteRead(Ix->index());
      walkExpr(Ix->base());
      walkExpr(Ix->index());
      return;
    }
    case Expr::Kind::Member:
      ++F.NumStructAccesses;
      walkExpr(cast<MemberExpr>(E)->base());
      return;
    case Expr::Kind::Cast:
      noteRead(cast<CastExpr>(E)->sub());
      walkExpr(cast<CastExpr>(E)->sub());
      return;
    case Expr::Kind::SizeOf:
      if (const Expr *Sub = cast<SizeOfExpr>(E)->exprOperand())
        walkExpr(Sub);
      return;
    case Expr::Kind::InitList:
      for (const Expr *Elem : cast<InitListExpr>(E)->elements())
        walkExpr(Elem);
      return;
    default:
      return;
    }
  }

  void finish() {
    if (PendingGotos && LabelInLoop)
      F.GotoIntoLoop = true;
  }

private:
  void noteRead(const Expr *E) {
    const VarDecl *V = E ? refTarget(E) : nullptr;
    if (!V || V->isGlobal() || V->storage() == VarDecl::Storage::Param)
      return;
    if (!Assigned.count(V))
      F.UninitUseLikely = true;
  }

  void recordAddressTaken(const VarDecl *Pointer, const VarDecl *Target) {
    auto [It, Inserted] = AddressOf.insert({Target, Pointer});
    if (!Inserted && It->second != Pointer)
      F.AliasedPointers = true;
    F.SelfAddressOfInit = true;
  }

  ProgramFeatures &F;
  std::set<const VarDecl *> Assigned;
  std::map<const VarDecl *, const VarDecl *> AddressOf;
  std::map<std::string, int> LabelIds;
  bool PendingGotos = false;
  bool LabelInLoop = false;
};

} // namespace

ProgramFeatures spe::extractFeatures(const ASTContext &Ctx) {
  ProgramFeatures F;
  FeatureWalker Walker(F);
  for (const FunctionDecl *Fn : Ctx.functions())
    Walker.walkStmt(Fn->body(), 0);
  Walker.finish();
  return F;
}
