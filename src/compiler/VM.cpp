//===- compiler/VM.cpp - MiniCC IR execution engine ----------------------===//

#include "compiler/VM.h"

#include "support/StdinScan.h"

#include <cassert>
#include <cstdio>
#include <limits>
#include <map>
#include <vector>

using namespace spe;

namespace {

struct VMValue {
  bool IsPtr = false;
  uint64_t Bits = 0;
  uint32_t Block = 0;
  int64_t Offset = 0;
};

struct VMBlock {
  std::vector<uint8_t> Bytes;
  bool Alive = true;
};

class VM {
public:
  VM(const IRModule &M, const VMOptions &Opts)
      : M(M), Opts(Opts), Stdin(Opts.Input) {
    Blocks.push_back(VMBlock{{}, false}); // Null block.
  }

  VMResult run();

private:
  void trap(const std::string &Message) {
    if (Done)
      return;
    Done = true;
    Result.Status = VMStatus::Trap;
    Result.Message = Message;
  }
  bool step() {
    if (Done)
      return false;
    if (++Steps > Opts.MaxSteps) {
      Done = true;
      Result.Status = VMStatus::Timeout;
      Result.Message = "step budget exhausted";
      return false;
    }
    return true;
  }

  uint32_t allocate(uint64_t Size) {
    Blocks.push_back(VMBlock{std::vector<uint8_t>(Size, 0), true});
    return static_cast<uint32_t>(Blocks.size() - 1);
  }
  bool checkAccess(uint32_t Block, int64_t Offset, uint64_t Size,
                   const char *What) {
    if (Block == 0 || Block >= Blocks.size() || !Blocks[Block].Alive) {
      trap(std::string("bad pointer ") + What);
      return false;
    }
    if (Offset < 0 ||
        static_cast<uint64_t>(Offset) + Size > Blocks[Block].Bytes.size()) {
      trap(std::string("out-of-bounds ") + What);
      return false;
    }
    return true;
  }

  VMValue convertTo(const VMValue &V, const Type *Ty) {
    VMValue R;
    if (Ty->isPointer()) {
      if (V.IsPtr)
        return V;
      R.IsPtr = true;
      R.Block = 0;
      R.Offset = static_cast<int64_t>(V.Bits);
      return R;
    }
    uint64_t Raw = V.IsPtr ? (static_cast<uint64_t>(V.Block) << 32) |
                                 static_cast<uint32_t>(V.Offset)
                           : V.Bits;
    R.Bits = normalizeIntValue(Ty, Raw);
    return R;
  }

  VMValue evalOperand(const IROperand &O,
                      const std::vector<VMValue> &Regs) {
    VMValue V;
    if (O.isConst()) {
      if (O.Ty && O.Ty->isPointer()) {
        V.IsPtr = true;
        V.Block = 0;
        V.Offset = static_cast<int64_t>(O.Imm);
      } else {
        V.Bits = O.Imm;
      }
      return V;
    }
    if (O.isReg())
      return Regs[O.Reg];
    return V;
  }

  static bool truthy(const VMValue &V) {
    return V.IsPtr ? (V.Block != 0 || V.Offset != 0) : V.Bits != 0;
  }

  VMValue loadFrom(uint32_t Block, int64_t Offset, const Type *Ty);
  void storeTo(uint32_t Block, int64_t Offset, const Type *Ty,
               const VMValue &V);

  VMValue applyBin(const IRInstr &I, const VMValue &L, const VMValue &R);
  void doPrintf(const IRInstr &I, const std::vector<VMValue> &Regs);

  VMValue callFunction(unsigned FnIndex, const std::vector<VMValue> &Args);

  const IRModule &M;
  const VMOptions &Opts;
  VMResult Result;
  bool Done = false;
  uint64_t Steps = 0;
  std::vector<VMBlock> Blocks;
  std::vector<uint32_t> GlobalBlocks;
  unsigned CallDepth = 0;
  StdinIntScanner Stdin; ///< Sweep-input cursor for IROp::Input.
};

VMValue VM::loadFrom(uint32_t Block, int64_t Offset, const Type *Ty) {
  uint64_t Size = Ty->isPointer() ? 8 : Ty->sizeInBytes();
  if (!checkAccess(Block, Offset, Size, "load"))
    return {};
  const std::vector<uint8_t> &Bytes = Blocks[Block].Bytes;
  VMValue V;
  if (Ty->isPointer()) {
    V.IsPtr = true;
    uint32_t Blk = 0, Off = 0;
    for (int I = 3; I >= 0; --I)
      Blk = (Blk << 8) | Bytes[Offset + I];
    for (int I = 3; I >= 0; --I)
      Off = (Off << 8) | Bytes[Offset + 4 + I];
    V.Block = Blk;
    V.Offset = static_cast<int32_t>(Off);
    return V;
  }
  uint64_t Raw = 0;
  for (uint64_t I = Size; I-- > 0;)
    Raw = (Raw << 8) | Bytes[Offset + I];
  V.Bits = normalizeIntValue(Ty, Raw);
  return V;
}

void VM::storeTo(uint32_t Block, int64_t Offset, const Type *Ty,
                 const VMValue &V) {
  uint64_t Size = Ty && Ty->isPointer() ? 8
                  : Ty                  ? Ty->sizeInBytes()
                                        : 8;
  bool AsPtr = V.IsPtr;
  if (!checkAccess(Block, Offset, AsPtr ? 8 : Size, "store"))
    return;
  std::vector<uint8_t> &Bytes = Blocks[Block].Bytes;
  if (AsPtr) {
    uint32_t Off = static_cast<uint32_t>(static_cast<int32_t>(V.Offset));
    for (int I = 0; I < 4; ++I)
      Bytes[Offset + I] = static_cast<uint8_t>(V.Block >> (8 * I));
    for (int I = 0; I < 4; ++I)
      Bytes[Offset + 4 + I] = static_cast<uint8_t>(Off >> (8 * I));
    return;
  }
  for (uint64_t I = 0; I < Size; ++I)
    Bytes[Offset + I] = static_cast<uint8_t>(V.Bits >> (8 * I));
}

VMValue VM::applyBin(const IRInstr &I, const VMValue &L, const VMValue &R) {
  VMValue V;
  // Pointer comparisons.
  if ((L.IsPtr || R.IsPtr) && isComparisonOp(I.Bin)) {
    VMValue PL = L.IsPtr ? L : VMValue{true, 0, 0, static_cast<int64_t>(L.Bits)};
    VMValue PR = R.IsPtr ? R : VMValue{true, 0, 0, static_cast<int64_t>(R.Bits)};
    bool Res = false;
    switch (I.Bin) {
    case BinaryOp::EQ:
      Res = PL.Block == PR.Block && PL.Offset == PR.Offset;
      break;
    case BinaryOp::NE:
      Res = PL.Block != PR.Block || PL.Offset != PR.Offset;
      break;
    case BinaryOp::LT:
      Res = std::pair(PL.Block, PL.Offset) < std::pair(PR.Block, PR.Offset);
      break;
    case BinaryOp::GT:
      Res = std::pair(PL.Block, PL.Offset) > std::pair(PR.Block, PR.Offset);
      break;
    case BinaryOp::LE:
      Res = std::pair(PL.Block, PL.Offset) <= std::pair(PR.Block, PR.Offset);
      break;
    default:
      Res = std::pair(PL.Block, PL.Offset) >= std::pair(PR.Block, PR.Offset);
      break;
    }
    V.Bits = Res ? 1 : 0;
    return V;
  }

  // Integer operations: the computation type is the operands' common type
  // (carried on operand A for comparisons, on I.Ty for arithmetic).
  const Type *Ty = isComparisonOp(I.Bin) && I.A.Ty ? I.A.Ty : I.Ty;
  unsigned Width = Ty->isInteger() ? Ty->intWidth() : 64;
  bool Signed = Ty->isInteger() ? Ty->isSigned() : true;
  uint64_t UL = L.Bits, UR = R.Bits;
  int64_t SL = static_cast<int64_t>(UL), SR = static_cast<int64_t>(UR);
  uint64_t Raw = 0;
  bool Res = false;
  switch (I.Bin) {
  case BinaryOp::Add:
    Raw = UL + UR;
    break;
  case BinaryOp::Sub:
    Raw = UL - UR;
    break;
  case BinaryOp::Mul:
    Raw = UL * UR;
    break;
  case BinaryOp::Div:
  case BinaryOp::Rem: {
    if (UR == 0) {
      trap("division by zero");
      return {};
    }
    if (Signed) {
      if (SL == std::numeric_limits<int64_t>::min() && SR == -1) {
        trap("division overflow");
        return {};
      }
      Raw = static_cast<uint64_t>(I.Bin == BinaryOp::Div ? SL / SR
                                                         : SL % SR);
    } else {
      Raw = I.Bin == BinaryOp::Div ? UL / UR : UL % UR;
    }
    break;
  }
  case BinaryOp::Shl:
    Raw = UL << (UR & (Width - 1));
    break;
  case BinaryOp::Shr:
    if (Signed)
      Raw = static_cast<uint64_t>(SL >> (UR & (Width - 1)));
    else
      Raw = normalizeIntValue(Ty, UL) >> (UR & (Width - 1));
    break;
  case BinaryOp::BitAnd:
    Raw = UL & UR;
    break;
  case BinaryOp::BitXor:
    Raw = UL ^ UR;
    break;
  case BinaryOp::BitOr:
    Raw = UL | UR;
    break;
  case BinaryOp::LT:
  case BinaryOp::GT:
  case BinaryOp::LE:
  case BinaryOp::GE:
  case BinaryOp::EQ:
  case BinaryOp::NE: {
    uint64_t NL = normalizeIntValue(Ty, UL), NR = normalizeIntValue(Ty, UR);
    int64_t TSL = static_cast<int64_t>(NL), TSR = static_cast<int64_t>(NR);
    switch (I.Bin) {
    case BinaryOp::LT:
      Res = Signed ? TSL < TSR : NL < NR;
      break;
    case BinaryOp::GT:
      Res = Signed ? TSL > TSR : NL > NR;
      break;
    case BinaryOp::LE:
      Res = Signed ? TSL <= TSR : NL <= NR;
      break;
    case BinaryOp::GE:
      Res = Signed ? TSL >= TSR : NL >= NR;
      break;
    case BinaryOp::EQ:
      Res = NL == NR;
      break;
    default:
      Res = NL != NR;
      break;
    }
    V.Bits = Res ? 1 : 0;
    return V;
  }
  default:
    trap("unsupported binary operator in VM");
    return {};
  }
  V.Bits = normalizeIntValue(I.Ty && I.Ty->isInteger() ? I.Ty : Ty, Raw);
  return V;
}

void VM::doPrintf(const IRInstr &I, const std::vector<VMValue> &Regs) {
  std::vector<VMValue> Args;
  std::vector<const Type *> Types;
  for (const IROperand &O : I.Args) {
    Args.push_back(evalOperand(O, Regs));
    Types.push_back(O.Ty);
  }
  const std::string &F = I.Fmt;
  size_t Arg = 0;
  std::string Out;
  for (size_t P = 0; P < F.size(); ++P) {
    if (F[P] != '%') {
      Out += F[P];
      continue;
    }
    ++P;
    if (P >= F.size())
      break;
    bool Long = false;
    while (P < F.size() && F[P] == 'l') {
      Long = true;
      ++P;
    }
    char Conv = P < F.size() ? F[P] : '%';
    if (Conv == '%') {
      Out += '%';
      continue;
    }
    if (Arg >= Args.size()) {
      trap("printf: missing argument");
      return;
    }
    VMValue V = Args[Arg++];
    switch (Conv) {
    case 'd':
    case 'i': {
      int64_t X = Long ? static_cast<int64_t>(V.Bits)
                       : static_cast<int32_t>(V.Bits);
      Out += std::to_string(X);
      break;
    }
    case 'u': {
      uint64_t X = Long ? V.Bits : static_cast<uint32_t>(V.Bits);
      Out += std::to_string(X);
      break;
    }
    case 'x': {
      uint64_t X = Long ? V.Bits : static_cast<uint32_t>(V.Bits);
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%llx",
                    static_cast<unsigned long long>(X));
      Out += Buf;
      break;
    }
    case 'c':
      Out += static_cast<char>(V.Bits & 0xff);
      break;
    default:
      trap(std::string("printf conversion %") + Conv);
      return;
    }
  }
  Result.Output += Out;
}

VMValue VM::callFunction(unsigned FnIndex,
                         const std::vector<VMValue> &Args) {
  if (++CallDepth > Opts.MaxCallDepth) {
    Done = true;
    Result.Status = VMStatus::Timeout;
    Result.Message = "call depth exceeded";
    --CallDepth;
    return {};
  }
  const IRFunction &F = M.Functions[FnIndex];
  std::vector<VMValue> Regs(F.NumRegs);
  std::vector<uint32_t> SlotBlocks(F.Slots.size());
  for (size_t S = 0; S < F.Slots.size(); ++S)
    SlotBlocks[S] = allocate(F.Slots[S].Ty->isPointer() ? 8
                                                        : F.Slots[S].Size);
  for (size_t A = 0; A < Args.size() && A < F.NumParams; ++A)
    storeTo(SlotBlocks[A], 0, F.Slots[A].Ty, Args[A]);

  unsigned BlockIndex = 0;
  size_t InstrIndex = 0;
  VMValue RetVal;
  while (!Done) {
    if (!step())
      break;
    assert(BlockIndex < F.Blocks.size() &&
           InstrIndex < F.Blocks[BlockIndex].Instrs.size());
    const IRInstr &I = F.Blocks[BlockIndex].Instrs[InstrIndex];
    ++InstrIndex;
    switch (I.Op) {
    case IROp::Const: {
      Regs[I.Dst] = evalOperand(I.A, Regs);
      break;
    }
    case IROp::Copy:
      Regs[I.Dst] = convertTo(evalOperand(I.A, Regs), I.Ty);
      break;
    case IROp::Bin:
      Regs[I.Dst] = applyBin(I, evalOperand(I.A, Regs),
                             evalOperand(I.B, Regs));
      break;
    case IROp::Neg: {
      VMValue V = evalOperand(I.A, Regs);
      Regs[I.Dst].IsPtr = false;
      Regs[I.Dst].Bits = normalizeIntValue(I.Ty, 0 - V.Bits);
      break;
    }
    case IROp::BitNot: {
      VMValue V = evalOperand(I.A, Regs);
      Regs[I.Dst].IsPtr = false;
      Regs[I.Dst].Bits = normalizeIntValue(I.Ty, ~V.Bits);
      break;
    }
    case IROp::Not: {
      VMValue V = evalOperand(I.A, Regs);
      Regs[I.Dst] = VMValue{};
      Regs[I.Dst].Bits = truthy(V) ? 0 : 1;
      break;
    }
    case IROp::AddrSlot: {
      VMValue V;
      V.IsPtr = true;
      V.Block = SlotBlocks[I.SlotIndex];
      Regs[I.Dst] = V;
      break;
    }
    case IROp::AddrGlobal: {
      VMValue V;
      V.IsPtr = true;
      V.Block = GlobalBlocks[I.GlobalIndex];
      Regs[I.Dst] = V;
      break;
    }
    case IROp::PtrAdd: {
      VMValue P = evalOperand(I.A, Regs);
      VMValue D = evalOperand(I.B, Regs);
      P.Offset += static_cast<int64_t>(D.Bits) *
                  static_cast<int64_t>(I.Scale);
      Regs[I.Dst] = P;
      break;
    }
    case IROp::PtrDiff: {
      VMValue A = evalOperand(I.A, Regs);
      VMValue B = evalOperand(I.B, Regs);
      if (A.Block != B.Block) {
        trap("cross-object pointer difference");
        break;
      }
      VMValue V;
      V.Bits = normalizeIntValue(
          I.Ty, static_cast<uint64_t>((A.Offset - B.Offset) /
                                      static_cast<int64_t>(I.Scale)));
      Regs[I.Dst] = V;
      break;
    }
    case IROp::Load: {
      VMValue P = evalOperand(I.A, Regs);
      Regs[I.Dst] = loadFrom(P.Block, P.Offset, I.Ty);
      break;
    }
    case IROp::Store: {
      VMValue P = evalOperand(I.A, Regs);
      VMValue V = evalOperand(I.B, Regs);
      storeTo(P.Block, P.Offset, I.Ty, V);
      break;
    }
    case IROp::Memcpy: {
      VMValue D = evalOperand(I.A, Regs);
      VMValue S = evalOperand(I.B, Regs);
      if (!checkAccess(D.Block, D.Offset, I.Size, "memcpy dst") ||
          !checkAccess(S.Block, S.Offset, I.Size, "memcpy src"))
        break;
      for (uint64_t Byte = 0; Byte < I.Size; ++Byte)
        Blocks[D.Block].Bytes[D.Offset + Byte] =
            Blocks[S.Block].Bytes[S.Offset + Byte];
      break;
    }
    case IROp::Memset: {
      VMValue D = evalOperand(I.A, Regs);
      if (!checkAccess(D.Block, D.Offset, I.Size, "memset"))
        break;
      for (uint64_t Byte = 0; Byte < I.Size; ++Byte)
        Blocks[D.Block].Bytes[D.Offset + Byte] = 0;
      break;
    }
    case IROp::Call: {
      std::vector<VMValue> CallArgs;
      for (const IROperand &O : I.Args)
        CallArgs.push_back(evalOperand(O, Regs));
      VMValue R = callFunction(static_cast<unsigned>(I.CalleeIndex),
                               CallArgs);
      if (I.HasDst)
        Regs[I.Dst] = R;
      break;
    }
    case IROp::Printf:
      doPrintf(I, Regs);
      break;
    case IROp::Input: {
      VMValue V;
      V.Bits = normalizeIntValue(I.Ty, static_cast<uint64_t>(static_cast<uint32_t>(
                                           Stdin.next())));
      if (I.HasDst)
        Regs[I.Dst] = V;
      break;
    }
    case IROp::Ret:
      if (!I.A.isNone())
        RetVal = evalOperand(I.A, Regs);
      goto FunctionExit;
    case IROp::Br:
      BlockIndex = I.Succ0;
      InstrIndex = 0;
      break;
    case IROp::CondBr: {
      VMValue C = evalOperand(I.A, Regs);
      BlockIndex = truthy(C) ? I.Succ0 : I.Succ1;
      InstrIndex = 0;
      break;
    }
    case IROp::Unreachable:
      trap("reached unreachable");
      break;
    }
  }
FunctionExit:
  for (uint32_t B : SlotBlocks)
    Blocks[B].Alive = false;
  --CallDepth;
  return RetVal;
}

VMResult VM::run() {
  for (const IRGlobal &G : M.Globals) {
    uint32_t B = allocate(G.InitBytes.size());
    Blocks[B].Bytes = G.InitBytes;
    GlobalBlocks.push_back(B);
  }
  if (M.MainIndex < 0) {
    trap("no main function");
    return Result;
  }
  VMValue Exit = callFunction(static_cast<unsigned>(M.MainIndex), {});
  if (!Done) {
    Result.Status = VMStatus::Ok;
    Result.ExitCode = static_cast<int32_t>(Exit.Bits);
  }
  return Result;
}

} // namespace

VMResult spe::executeModule(const IRModule &M, VMOptions Opts) {
  VM Machine(M, Opts);
  return Machine.run();
}
