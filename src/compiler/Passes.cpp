//===- compiler/Passes.cpp - MiniCC optimization passes ------------------===//

#include "compiler/Passes.h"

#include <cassert>
#include <limits>
#include <map>
#include <set>

using namespace spe;

namespace {

void cov(CoverageRegistry *Cov, const char *Point) {
  if (Cov)
    Cov->hit(Point);
}

/// Coverage point suffixed with the operator spelling, so each operator is
/// its own "line" within the rule family (Figure 9 granularity).
void covOp(CoverageRegistry *Cov, const char *Family, BinaryOp Op) {
  if (Cov)
    Cov->hit(std::string(Family) + "." + binaryOpSpelling(Op));
}

/// Folds an integer binary operation with VM-identical semantics.
/// \returns false when folding would change runtime behavior (e.g. a
/// division that must trap).
bool evalBinConst(const IRInstr &I, uint64_t &Out) {
  const Type *Ty = isComparisonOp(I.Bin) && I.A.Ty ? I.A.Ty : I.Ty;
  if (!Ty || !Ty->isInteger())
    return false;
  if (I.A.Ty && I.A.Ty->isPointer())
    return false;
  unsigned Width = Ty->intWidth();
  bool Signed = Ty->isSigned();
  uint64_t UL = I.A.Imm, UR = I.B.Imm;
  int64_t SL = static_cast<int64_t>(UL), SR = static_cast<int64_t>(UR);
  uint64_t Raw;
  switch (I.Bin) {
  case BinaryOp::Add:
    Raw = UL + UR;
    break;
  case BinaryOp::Sub:
    Raw = UL - UR;
    break;
  case BinaryOp::Mul:
    Raw = UL * UR;
    break;
  case BinaryOp::Div:
  case BinaryOp::Rem:
    if (UR == 0)
      return false;
    if (Signed && SL == std::numeric_limits<int64_t>::min() && SR == -1)
      return false;
    if (Signed)
      Raw = static_cast<uint64_t>(I.Bin == BinaryOp::Div ? SL / SR : SL % SR);
    else
      Raw = I.Bin == BinaryOp::Div ? UL / UR : UL % UR;
    break;
  case BinaryOp::Shl:
    Raw = UL << (UR & (Width - 1));
    break;
  case BinaryOp::Shr:
    Raw = Signed ? static_cast<uint64_t>(SL >> (UR & (Width - 1)))
                 : normalizeIntValue(Ty, UL) >> (UR & (Width - 1));
    break;
  case BinaryOp::BitAnd:
    Raw = UL & UR;
    break;
  case BinaryOp::BitXor:
    Raw = UL ^ UR;
    break;
  case BinaryOp::BitOr:
    Raw = UL | UR;
    break;
  case BinaryOp::LT:
  case BinaryOp::GT:
  case BinaryOp::LE:
  case BinaryOp::GE:
  case BinaryOp::EQ:
  case BinaryOp::NE: {
    uint64_t NL = normalizeIntValue(Ty, UL), NR = normalizeIntValue(Ty, UR);
    int64_t TSL = static_cast<int64_t>(NL), TSR = static_cast<int64_t>(NR);
    bool Res;
    switch (I.Bin) {
    case BinaryOp::LT:
      Res = Signed ? TSL < TSR : NL < NR;
      break;
    case BinaryOp::GT:
      Res = Signed ? TSL > TSR : NL > NR;
      break;
    case BinaryOp::LE:
      Res = Signed ? TSL <= TSR : NL <= NR;
      break;
    case BinaryOp::GE:
      Res = Signed ? TSL >= TSR : NL >= NR;
      break;
    case BinaryOp::EQ:
      Res = NL == NR;
      break;
    default:
      Res = NL != NR;
      break;
    }
    Out = Res ? 1 : 0;
    return true;
  }
  default:
    return false;
  }
  Out = normalizeIntValue(I.Ty && I.Ty->isInteger() ? I.Ty : Ty, Raw);
  return true;
}

/// Rewrites an instruction into `Dst = Const Imm`.
void makeConst(IRInstr &I, uint64_t Imm) {
  IRInstr New;
  New.Op = IROp::Const;
  New.HasDst = true;
  New.Dst = I.Dst;
  New.Ty = I.Ty;
  New.A = IROperand::constant(Imm, I.Ty);
  I = std::move(New);
}

/// Rewrites an instruction into `Dst = Copy Src`.
void makeCopy(IRInstr &I, IROperand Src) {
  IRInstr New;
  New.Op = IROp::Copy;
  New.HasDst = true;
  New.Dst = I.Dst;
  New.Ty = I.Ty;
  New.A = Src;
  I = std::move(New);
}

} // namespace

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

bool spe::foldConstants(IRFunction &F, CoverageRegistry *Cov) {
  bool Changed = false;
  for (IRBlock &B : F.Blocks) {
    for (IRInstr &I : B.Instrs) {
      switch (I.Op) {
      case IROp::Bin: {
        if (!I.A.isConst() || !I.B.isConst())
          break;
        uint64_t Out;
        if (!evalBinConst(I, Out))
          break;
        BinaryOp FoldedOp = I.Bin;
        makeConst(I, Out);
        covOp(Cov, "constfold.bin", FoldedOp);
        Changed = true;
        break;
      }
      case IROp::Neg:
        if (I.A.isConst() && I.Ty && I.Ty->isInteger()) {
          makeConst(I, normalizeIntValue(I.Ty, 0 - I.A.Imm));
          cov(Cov, "constfold.neg");
          Changed = true;
        }
        break;
      case IROp::BitNot:
        if (I.A.isConst() && I.Ty && I.Ty->isInteger()) {
          makeConst(I, normalizeIntValue(I.Ty, ~I.A.Imm));
          cov(Cov, "constfold.bitnot");
          Changed = true;
        }
        break;
      case IROp::Not:
        if (I.A.isConst()) {
          makeConst(I, I.A.Imm == 0 ? 1 : 0);
          cov(Cov, "constfold.not");
          Changed = true;
        }
        break;
      case IROp::Copy:
        if (I.A.isConst() && I.Ty && I.Ty->isInteger() && I.A.Ty &&
            I.A.Ty->isInteger()) {
          makeConst(I, normalizeIntValue(I.Ty, I.A.Imm));
          cov(Cov, "constfold.convert");
          Changed = true;
        }
        break;
      case IROp::CondBr:
        if (I.A.isConst()) {
          IRInstr New;
          New.Op = IROp::Br;
          New.Succ0 = I.A.Imm != 0 ? I.Succ0 : I.Succ1;
          I = std::move(New);
          cov(Cov, "constfold.branch");
          Changed = true;
        }
        break;
      default:
        break;
      }
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Copy / constant propagation over single-assignment registers
//===----------------------------------------------------------------------===//

bool spe::propagateCopies(IRFunction &F, CoverageRegistry *Cov) {
  // Registers are single-assignment, so a Copy or Const definition may be
  // substituted into every use.
  std::map<unsigned, IROperand> Defs;
  for (IRBlock &B : F.Blocks) {
    for (IRInstr &I : B.Instrs) {
      if (I.Op == IROp::Const)
        Defs[I.Dst] = IROperand::constant(I.A.Imm, I.Ty);
      else if (I.Op == IROp::Copy && I.Ty == I.A.Ty)
        Defs[I.Dst] = I.A;
    }
  }
  if (Defs.empty())
    return false;
  auto Resolve = [&](IROperand O) {
    unsigned Guard = 0;
    while (O.isReg() && Defs.count(O.Reg) && Guard++ < 64) {
      IROperand Next = Defs[O.Reg];
      if (Next.isNone())
        break;
      O = Next;
    }
    return O;
  };
  bool Changed = false;
  for (IRBlock &B : F.Blocks) {
    for (IRInstr &I : B.Instrs) {
      auto Rewrite = [&](IROperand &O) {
        if (!O.isReg() || !Defs.count(O.Reg))
          return;
        IROperand R = Resolve(O);
        if (R.isReg() && R.Reg == O.Reg)
          return;
        O = R;
        Changed = true;
        cov(Cov, "copyprop.replaced");
      };
      Rewrite(I.A);
      Rewrite(I.B);
      for (IROperand &O : I.Args)
        Rewrite(O);
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Dead code elimination
//===----------------------------------------------------------------------===//

bool spe::eliminateDeadCode(IRFunction &F, CoverageRegistry *Cov) {
  bool ChangedAny = false;
  for (;;) {
    std::set<unsigned> Used;
    for (const IRBlock &B : F.Blocks) {
      for (const IRInstr &I : B.Instrs) {
        if (I.A.isReg())
          Used.insert(I.A.Reg);
        if (I.B.isReg())
          Used.insert(I.B.Reg);
        for (const IROperand &O : I.Args)
          if (O.isReg())
            Used.insert(O.Reg);
      }
    }
    bool Changed = false;
    for (IRBlock &B : F.Blocks) {
      std::vector<IRInstr> Kept;
      Kept.reserve(B.Instrs.size());
      for (IRInstr &I : B.Instrs) {
        if (I.isPure() && I.HasDst && !Used.count(I.Dst)) {
          Changed = true;
          cov(Cov, "dce.removed");
          continue;
        }
        Kept.push_back(std::move(I));
      }
      B.Instrs = std::move(Kept);
    }
    if (!Changed)
      return ChangedAny;
    ChangedAny = true;
  }
}

//===----------------------------------------------------------------------===//
// CFG simplification
//===----------------------------------------------------------------------===//

bool spe::simplifyControlFlow(IRFunction &F, CoverageRegistry *Cov) {
  bool Changed = false;

  // CondBr with identical arms becomes an unconditional branch.
  for (IRBlock &B : F.Blocks) {
    IRInstr &Term = B.Instrs.back();
    if (Term.Op == IROp::CondBr && Term.Succ0 == Term.Succ1) {
      IRInstr New;
      New.Op = IROp::Br;
      New.Succ0 = Term.Succ0;
      Term = std::move(New);
      cov(Cov, "simplifycfg.samearms");
      Changed = true;
    }
  }

  // Thread forwarder blocks that contain only `br`.
  std::vector<int> Forward(F.Blocks.size(), -1);
  for (size_t BI = 0; BI < F.Blocks.size(); ++BI) {
    const IRBlock &B = F.Blocks[BI];
    if (B.Instrs.size() == 1 && B.Instrs[0].Op == IROp::Br &&
        B.Instrs[0].Succ0 != BI)
      Forward[BI] = static_cast<int>(B.Instrs[0].Succ0);
  }
  auto Thread = [&](unsigned Succ) {
    std::set<unsigned> Seen;
    while (Forward[Succ] >= 0 && Seen.insert(Succ).second)
      Succ = static_cast<unsigned>(Forward[Succ]);
    return Succ;
  };
  for (IRBlock &B : F.Blocks) {
    IRInstr &Term = B.Instrs.back();
    if (Term.Op == IROp::Br) {
      unsigned T = Thread(Term.Succ0);
      if (T != Term.Succ0) {
        Term.Succ0 = T;
        cov(Cov, "simplifycfg.thread");
        Changed = true;
      }
    } else if (Term.Op == IROp::CondBr) {
      unsigned T0 = Thread(Term.Succ0), T1 = Thread(Term.Succ1);
      if (T0 != Term.Succ0 || T1 != Term.Succ1) {
        Term.Succ0 = T0;
        Term.Succ1 = T1;
        cov(Cov, "simplifycfg.thread");
        Changed = true;
      }
    }
  }

  // Remove unreachable blocks.
  std::vector<bool> Reachable(F.Blocks.size(), false);
  std::vector<unsigned> Work{0};
  Reachable[0] = true;
  while (!Work.empty()) {
    unsigned B = Work.back();
    Work.pop_back();
    const IRInstr &Term = F.Blocks[B].Instrs.back();
    if (Term.Op == IROp::Br || Term.Op == IROp::CondBr) {
      if (!Reachable[Term.Succ0]) {
        Reachable[Term.Succ0] = true;
        Work.push_back(Term.Succ0);
      }
      if (Term.Op == IROp::CondBr && !Reachable[Term.Succ1]) {
        Reachable[Term.Succ1] = true;
        Work.push_back(Term.Succ1);
      }
    }
  }
  bool AnyUnreachable = false;
  for (bool R : Reachable)
    if (!R)
      AnyUnreachable = true;
  if (AnyUnreachable) {
    std::vector<unsigned> Remap(F.Blocks.size(), 0);
    std::vector<IRBlock> Kept;
    for (size_t BI = 0; BI < F.Blocks.size(); ++BI) {
      if (!Reachable[BI])
        continue;
      Remap[BI] = static_cast<unsigned>(Kept.size());
      Kept.push_back(std::move(F.Blocks[BI]));
    }
    for (IRBlock &B : Kept) {
      IRInstr &Term = B.Instrs.back();
      if (Term.Op == IROp::Br || Term.Op == IROp::CondBr) {
        Term.Succ0 = Remap[Term.Succ0];
        if (Term.Op == IROp::CondBr)
          Term.Succ1 = Remap[Term.Succ1];
      }
    }
    F.Blocks = std::move(Kept);
    cov(Cov, "simplifycfg.unreachable");
    Changed = true;
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Store-to-load forwarding over stack slots
//===----------------------------------------------------------------------===//

bool spe::forwardStores(IRFunction &F, CoverageRegistry *Cov) {
  // Map each AddrSlot result register to its slot.
  std::map<unsigned, int> AddrToSlot;
  for (const IRBlock &B : F.Blocks)
    for (const IRInstr &I : B.Instrs)
      if (I.Op == IROp::AddrSlot)
        AddrToSlot[I.Dst] = I.SlotIndex;

  auto SlotOf = [&](const IROperand &O) -> int {
    if (!O.isReg())
      return -1;
    auto It = AddrToSlot.find(O.Reg);
    if (It == AddrToSlot.end())
      return -1;
    int Slot = It->second;
    // Only slots whose address never escapes are tracked.
    if (F.Slots[Slot].AddressTaken)
      return -1;
    return Slot;
  };

  bool Changed = false;
  for (IRBlock &B : F.Blocks) {
    // Known value per slot, plus the index of a store not yet observed.
    std::map<int, IROperand> Known;
    std::map<int, size_t> PendingStore;
    std::set<size_t> Dead;
    for (size_t II = 0; II < B.Instrs.size(); ++II) {
      IRInstr &I = B.Instrs[II];
      switch (I.Op) {
      case IROp::Store: {
        int Slot = SlotOf(I.A);
        if (Slot < 0)
          break;
        auto Pending = PendingStore.find(Slot);
        if (Pending != PendingStore.end()) {
          // Overwritten without an intervening read: dead store.
          Dead.insert(Pending->second);
          cov(Cov, "forward.deadstore");
          Changed = true;
        }
        Known[Slot] = I.B;
        PendingStore[Slot] = II;
        break;
      }
      case IROp::Load: {
        int Slot = SlotOf(I.A);
        if (Slot < 0)
          break;
        auto It = Known.find(Slot);
        if (It != Known.end() && !It->second.isNone()) {
          makeCopy(I, It->second);
          cov(Cov, "forward.load");
          Changed = true;
        } else {
          // Remember the loaded value for load-to-load forwarding.
          Known[Slot] = IROperand::reg(I.Dst, I.Ty);
          cov(Cov, "forward.record");
        }
        PendingStore.erase(Slot);
        break;
      }
      case IROp::Memset:
      case IROp::Memcpy: {
        int Slot = SlotOf(I.A);
        if (Slot >= 0) {
          Known.erase(Slot);
          PendingStore.erase(Slot);
        }
        break;
      }
      default:
        break;
      }
    }
    if (!Dead.empty()) {
      std::vector<IRInstr> Kept;
      for (size_t II = 0; II < B.Instrs.size(); ++II)
        if (!Dead.count(II))
          Kept.push_back(std::move(B.Instrs[II]));
      B.Instrs = std::move(Kept);
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Algebraic peepholes
//===----------------------------------------------------------------------===//

bool spe::simplifyAlgebra(IRFunction &F, CoverageRegistry *Cov) {
  bool Changed = false;
  for (IRBlock &B : F.Blocks) {
    for (IRInstr &I : B.Instrs) {
      if (I.Op != IROp::Bin || !I.Ty || !I.Ty->isInteger())
        continue;
      BinaryOp Op = I.Bin;
      bool SameReg = I.A.isReg() && I.B.isReg() && I.A.Reg == I.B.Reg;
      if (SameReg) {
        switch (I.Bin) {
        case BinaryOp::Sub:
        case BinaryOp::BitXor:
          makeConst(I, 0);
          covOp(Cov, "algebra.selfcancel", Op);
          Changed = true;
          continue;
        case BinaryOp::BitAnd:
        case BinaryOp::BitOr:
          makeCopy(I, I.A);
          covOp(Cov, "algebra.selfidem", Op);
          Changed = true;
          continue;
        case BinaryOp::EQ:
        case BinaryOp::LE:
        case BinaryOp::GE:
          makeConst(I, 1);
          covOp(Cov, "algebra.selfcompare", Op);
          Changed = true;
          continue;
        case BinaryOp::NE:
        case BinaryOp::LT:
        case BinaryOp::GT:
          makeConst(I, 0);
          covOp(Cov, "algebra.selfcompare", Op);
          Changed = true;
          continue;
        default:
          break;
        }
      }
      auto IsConst = [](const IROperand &O, uint64_t V) {
        return O.isConst() && O.Ty && O.Ty->isInteger() &&
               normalizeIntValue(O.Ty, O.Imm) == normalizeIntValue(O.Ty, V);
      };
      // Identities with a constant on either side.
      if ((I.Bin == BinaryOp::Add && IsConst(I.B, 0)) ||
          (I.Bin == BinaryOp::Sub && IsConst(I.B, 0)) ||
          (I.Bin == BinaryOp::Mul && IsConst(I.B, 1)) ||
          (I.Bin == BinaryOp::Div && IsConst(I.B, 1)) ||
          (I.Bin == BinaryOp::Shl && IsConst(I.B, 0)) ||
          (I.Bin == BinaryOp::Shr && IsConst(I.B, 0)) ||
          (I.Bin == BinaryOp::BitOr && IsConst(I.B, 0)) ||
          (I.Bin == BinaryOp::BitXor && IsConst(I.B, 0))) {
        makeCopy(I, I.A);
        covOp(Cov, "algebra.rightident", Op);
        Changed = true;
        continue;
      }
      if ((I.Bin == BinaryOp::Add && IsConst(I.A, 0)) ||
          (I.Bin == BinaryOp::Mul && IsConst(I.A, 1)) ||
          (I.Bin == BinaryOp::BitOr && IsConst(I.A, 0)) ||
          (I.Bin == BinaryOp::BitXor && IsConst(I.A, 0))) {
        makeCopy(I, I.B);
        covOp(Cov, "algebra.leftident", Op);
        Changed = true;
        continue;
      }
      if ((I.Bin == BinaryOp::Mul && (IsConst(I.A, 0) || IsConst(I.B, 0))) ||
          (I.Bin == BinaryOp::BitAnd &&
           (IsConst(I.A, 0) || IsConst(I.B, 0))) ||
          (I.Bin == BinaryOp::Rem && IsConst(I.B, 1))) {
        makeConst(I, 0);
        covOp(Cov, "algebra.zero", Op);
        Changed = true;
        continue;
      }
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Loop-invariant code motion
//===----------------------------------------------------------------------===//

namespace {

/// Computes dominators with the classic iterative algorithm.
std::vector<std::set<unsigned>> computeDominators(const IRFunction &F) {
  size_t N = F.Blocks.size();
  std::vector<std::vector<unsigned>> Preds(N);
  for (unsigned B = 0; B < N; ++B) {
    const IRInstr &Term = F.Blocks[B].Instrs.back();
    if (Term.Op == IROp::Br || Term.Op == IROp::CondBr) {
      Preds[Term.Succ0].push_back(B);
      if (Term.Op == IROp::CondBr)
        Preds[Term.Succ1].push_back(B);
    }
  }
  std::set<unsigned> All;
  for (unsigned B = 0; B < N; ++B)
    All.insert(B);
  std::vector<std::set<unsigned>> Dom(N, All);
  Dom[0] = {0};
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B = 1; B < N; ++B) {
      std::set<unsigned> NewDom = All;
      if (Preds[B].empty())
        NewDom = {B}; // Unreachable; keep minimal.
      for (unsigned P : Preds[B]) {
        std::set<unsigned> Inter;
        for (unsigned D : Dom[P])
          if (NewDom.count(D))
            Inter.insert(D);
        NewDom = std::move(Inter);
      }
      NewDom.insert(B);
      if (NewDom != Dom[B]) {
        Dom[B] = std::move(NewDom);
        Changed = true;
      }
    }
  }
  return Dom;
}

} // namespace

bool spe::hoistLoopInvariants(IRFunction &F, CoverageRegistry *Cov) {
  if (F.Blocks.size() < 2)
    return false;
  std::vector<std::set<unsigned>> Dom = computeDominators(F);

  // Find back edges U -> H where H dominates U.
  std::vector<std::pair<unsigned, unsigned>> BackEdges;
  for (unsigned B = 0; B < F.Blocks.size(); ++B) {
    const IRInstr &Term = F.Blocks[B].Instrs.back();
    auto Check = [&](unsigned Succ) {
      if (Succ != 0 && Dom[B].count(Succ))
        BackEdges.push_back({B, Succ});
    };
    if (Term.Op == IROp::Br)
      Check(Term.Succ0);
    if (Term.Op == IROp::CondBr) {
      Check(Term.Succ0);
      Check(Term.Succ1);
    }
  }
  if (BackEdges.empty())
    return false;

  bool Changed = false;
  for (auto [Latch, Header] : BackEdges) {
    // Natural loop: header plus everything reaching the latch without
    // passing through the header.
    std::set<unsigned> Loop{Header, Latch};
    std::vector<unsigned> Work{Latch};
    std::vector<std::vector<unsigned>> Preds(F.Blocks.size());
    for (unsigned B = 0; B < F.Blocks.size(); ++B) {
      const IRInstr &Term = F.Blocks[B].Instrs.back();
      if (Term.Op == IROp::Br || Term.Op == IROp::CondBr) {
        Preds[Term.Succ0].push_back(B);
        if (Term.Op == IROp::CondBr)
          Preds[Term.Succ1].push_back(B);
      }
    }
    while (!Work.empty()) {
      unsigned B = Work.back();
      Work.pop_back();
      if (B == Header)
        continue;
      for (unsigned P : Preds[B])
        if (Loop.insert(P).second)
          Work.push_back(P);
    }

    // Definition site per register.
    std::map<unsigned, unsigned> DefBlock;
    for (unsigned B = 0; B < F.Blocks.size(); ++B)
      for (const IRInstr &I : F.Blocks[B].Instrs)
        if (I.HasDst)
          DefBlock[I.Dst] = B;

    auto IsInvariantOperand = [&](const IROperand &O) {
      if (!O.isReg())
        return true;
      auto It = DefBlock.find(O.Reg);
      return It != DefBlock.end() && !Loop.count(It->second);
    };
    auto IsHoistable = [&](const IRInstr &I) {
      if (!I.isPure() || I.Op == IROp::Load)
        return false;
      // Division can trap; moving it above the loop guard is unsound.
      if (I.Op == IROp::Bin &&
          (I.Bin == BinaryOp::Div || I.Bin == BinaryOp::Rem))
        return false;
      if (!IsInvariantOperand(I.A) || !IsInvariantOperand(I.B))
        return false;
      for (const IROperand &O : I.Args)
        if (!IsInvariantOperand(O))
          return false;
      return true;
    };

    // Build a preheader: a fresh block branching to the header; all
    // non-loop predecessors of the header are redirected to it.
    std::vector<unsigned> OutsidePreds;
    for (unsigned P : Preds[Header])
      if (!Loop.count(P))
        OutsidePreds.push_back(P);
    if (OutsidePreds.empty())
      continue;
    unsigned Preheader = static_cast<unsigned>(F.Blocks.size());
    F.Blocks.emplace_back();
    {
      IRInstr Br;
      Br.Op = IROp::Br;
      Br.Succ0 = Header;
      F.Blocks[Preheader].Instrs.push_back(std::move(Br));
    }
    for (unsigned P : OutsidePreds) {
      IRInstr &Term = F.Blocks[P].Instrs.back();
      if (Term.Succ0 == Header)
        Term.Succ0 = Preheader;
      if (Term.Op == IROp::CondBr && Term.Succ1 == Header)
        Term.Succ1 = Preheader;
    }

    // Hoist to the preheader until fixpoint.
    bool LocalChanged = true;
    while (LocalChanged) {
      LocalChanged = false;
      for (unsigned B : Loop) {
        std::vector<IRInstr> &Instrs = F.Blocks[B].Instrs;
        for (size_t II = 0; II + 1 < Instrs.size(); ++II) {
          IRInstr &I = Instrs[II];
          if (!I.HasDst || !IsHoistable(I))
            continue;
          IRInstr Hoisted = I;
          // Insert before the preheader terminator.
          std::vector<IRInstr> &PH = F.Blocks[Preheader].Instrs;
          PH.insert(PH.end() - 1, Hoisted);
          DefBlock[I.Dst] = Preheader;
          Instrs.erase(Instrs.begin() + static_cast<long>(II));
          --II;
          cov(Cov, "licm.hoist");
          Changed = true;
          LocalChanged = true;
        }
      }
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

void spe::registerPassCoverageCatalog(CoverageRegistry &Cov) {
  static const char *Points[] = {
      "constfold.neg",      "constfold.bitnot",        "constfold.not",
      "constfold.convert",  "constfold.branch",        "copyprop.replaced",
      "dce.removed",        "simplifycfg.samearms",    "simplifycfg.thread",
      "simplifycfg.unreachable",                       "forward.deadstore",
      "forward.load",       "forward.record",          "licm.hoist",
      "irgen.function",     "irgen.loop",              "irgen.branch",
      "irgen.call",         "irgen.pointer",           "irgen.struct",
      "irgen.goto",
  };
  for (const char *P : Points)
    Cov.registerPoint(P);

  // Per-operator "lines" within each rule family.
  static const BinaryOp FoldableOps[] = {
      BinaryOp::Add,    BinaryOp::Sub,    BinaryOp::Mul, BinaryOp::Div,
      BinaryOp::Rem,    BinaryOp::Shl,    BinaryOp::Shr, BinaryOp::LT,
      BinaryOp::GT,     BinaryOp::LE,     BinaryOp::GE,  BinaryOp::EQ,
      BinaryOp::NE,     BinaryOp::BitAnd, BinaryOp::BitXor,
      BinaryOp::BitOr,
  };
  auto RegisterFamily = [&Cov](const char *Family,
                               std::initializer_list<BinaryOp> Ops) {
    for (BinaryOp Op : Ops)
      Cov.registerPoint(std::string(Family) + "." + binaryOpSpelling(Op));
  };
  for (BinaryOp Op : FoldableOps) {
    Cov.registerPoint(std::string("constfold.bin.") + binaryOpSpelling(Op));
    Cov.registerPoint(std::string("irgen.bin.") + binaryOpSpelling(Op));
  }
  RegisterFamily("algebra.selfcancel", {BinaryOp::Sub, BinaryOp::BitXor});
  RegisterFamily("algebra.selfidem", {BinaryOp::BitAnd, BinaryOp::BitOr});
  RegisterFamily("algebra.selfcompare",
                 {BinaryOp::EQ, BinaryOp::NE, BinaryOp::LT, BinaryOp::GT,
                  BinaryOp::LE, BinaryOp::GE});
  RegisterFamily("algebra.rightident",
                 {BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul,
                  BinaryOp::Div, BinaryOp::Shl, BinaryOp::Shr,
                  BinaryOp::BitOr, BinaryOp::BitXor});
  RegisterFamily("algebra.leftident", {BinaryOp::Add, BinaryOp::Mul,
                                       BinaryOp::BitOr, BinaryOp::BitXor});
  RegisterFamily("algebra.zero",
                 {BinaryOp::Mul, BinaryOp::BitAnd, BinaryOp::Rem});
}

void spe::runPipeline(IRModule &M, unsigned OptLevel, CoverageRegistry *Cov) {
  if (OptLevel == 0)
    return;
  for (IRFunction &F : M.Functions) {
    // Round 1 (-O1): local cleanups.
    foldConstants(F, Cov);
    propagateCopies(F, Cov);
    simplifyControlFlow(F, Cov);
    eliminateDeadCode(F, Cov);
    if (OptLevel >= 2) {
      // Round 2 (-O2): memory forwarding and algebraic identities.
      forwardStores(F, Cov);
      propagateCopies(F, Cov);
      foldConstants(F, Cov);
      simplifyAlgebra(F, Cov);
      propagateCopies(F, Cov);
      foldConstants(F, Cov);
      simplifyControlFlow(F, Cov);
      eliminateDeadCode(F, Cov);
    }
    if (OptLevel >= 3) {
      // Round 3 (-O3): loop optimizations and one more strengthening pass.
      hoistLoopInvariants(F, Cov);
      forwardStores(F, Cov);
      propagateCopies(F, Cov);
      foldConstants(F, Cov);
      simplifyAlgebra(F, Cov);
      propagateCopies(F, Cov);
      foldConstants(F, Cov);
      simplifyControlFlow(F, Cov);
      eliminateDeadCode(F, Cov);
    }
  }
}
