//===- compiler/Backend.cpp - pluggable compiler backends ----------------===//

#include "compiler/Backend.h"

#include "compiler/Compiler.h"
#include "lang/Parser.h"
#include "sema/Sema.h"

#include <algorithm>
#include <memory>

using namespace spe;

namespace {

/// The base batch ticket: nothing is in flight, the inputs are merely
/// parked until finishBatch runs the ordinary per-variant loop.
struct GenericBatchTicket final : BatchTicket {
  std::vector<std::string> Sources;
  std::vector<CompilerConfig> Configs;
  CoverageRegistry *Cov = nullptr;
};

} // namespace

std::vector<std::string> spe::configInputs(const CompilerConfig &Config) {
  if (Config.ExecSweep.empty())
    return {std::string()};
  return Config.ExecSweep;
}

std::vector<std::string>
spe::sweepUnion(const std::vector<CompilerConfig> &Configs) {
  std::vector<std::string> Union;
  for (const CompilerConfig &C : Configs)
    for (const std::string &In : configInputs(C))
      if (std::find(Union.begin(), Union.end(), In) == Union.end())
        Union.push_back(In);
  if (Union.empty())
    Union.emplace_back(); // No configs at all: still one empty input.
  return Union;
}

BackendObservation
CompilerBackend::runWithInput(const std::string &Source,
                              const CompilerConfig &Config,
                              const std::string &Input,
                              CoverageRegistry *Cov) const {
  (void)Input; // Scripted doubles have no execution to feed.
  return run(Source, Config, Cov);
}

std::vector<BackendObservation>
CompilerBackend::runSweep(const std::string &Source,
                          const CompilerConfig &Config,
                          const std::vector<std::string> &Inputs,
                          CoverageRegistry *Cov) const {
  std::vector<BackendObservation> Row;
  Row.reserve(Inputs.size());
  for (const std::string &In : Inputs)
    Row.push_back(runWithInput(Source, Config, In, Cov));
  return Row;
}

std::unique_ptr<BatchTicket>
CompilerBackend::beginBatch(std::vector<std::string> Sources,
                            std::vector<BatchExpectation> Expected,
                            std::vector<CompilerConfig> Configs,
                            CoverageRegistry *Cov) const {
  (void)Expected; // The loop below *is* the unbatched path; nothing to verify.
  auto T = std::make_unique<GenericBatchTicket>();
  T->Sources = std::move(Sources);
  T->Configs = std::move(Configs);
  T->Cov = Cov;
  return T;
}

std::vector<std::vector<std::vector<BackendObservation>>>
CompilerBackend::finishBatch(std::unique_ptr<BatchTicket> Ticket) const {
  auto *T = dynamic_cast<GenericBatchTicket *>(Ticket.get());
  if (!T)
    return {}; // Ticket from a different backend's beginBatch: caller bug.
  std::vector<std::vector<std::vector<BackendObservation>>> Out(
      T->Sources.size());
  for (size_t I = 0; I < T->Sources.size(); ++I) {
    Out[I].reserve(T->Configs.size());
    for (const CompilerConfig &Config : T->Configs)
      Out[I].push_back(
          runSweep(T->Sources[I], Config, configInputs(Config), T->Cov));
  }
  return Out;
}

std::unique_ptr<ASTContext> spe::parseAndAnalyze(const std::string &Source) {
  auto Ctx = std::make_unique<ASTContext>();
  DiagnosticEngine Diags;
  if (!Parser::parse(Source, *Ctx, Diags))
    return nullptr;
  Sema Analysis(*Ctx, Diags);
  if (!Analysis.run())
    return nullptr;
  return Ctx;
}

BackendObservation InProcessBackend::run(const std::string &Source,
                                         const CompilerConfig &Config,
                                         CoverageRegistry *Cov) const {
  std::unique_ptr<ASTContext> Ctx = parseAndAnalyze(Source);
  if (!Ctx)
    return {}; // Rejected.
  return runOn(*Ctx, Config, Cov);
}

BackendObservation
InProcessBackend::runWithInput(const std::string &Source,
                               const CompilerConfig &Config,
                               const std::string &Input,
                               CoverageRegistry *Cov) const {
  std::unique_ptr<ASTContext> Ctx = parseAndAnalyze(Source);
  if (!Ctx)
    return {}; // Rejected.
  return runOn(*Ctx, Config, Cov, Input);
}

std::vector<BackendObservation>
InProcessBackend::runSweep(const std::string &Source,
                           const CompilerConfig &Config,
                           const std::vector<std::string> &Inputs,
                           CoverageRegistry *Cov) const {
  std::unique_ptr<ASTContext> Ctx = parseAndAnalyze(Source);
  if (!Ctx)
    return std::vector<BackendObservation>(Inputs.size()); // All rejected.
  return runOnSweep(*Ctx, Config, Cov, Inputs);
}

BackendObservation InProcessBackend::runOn(ASTContext &Ctx,
                                           const CompilerConfig &Config,
                                           CoverageRegistry *Cov,
                                           const std::string &Input) const {
  return runOnSweep(Ctx, Config, Cov, {Input}).front();
}

std::vector<BackendObservation>
InProcessBackend::runOnSweep(ASTContext &Ctx, const CompilerConfig &Config,
                             CoverageRegistry *Cov,
                             const std::vector<std::string> &Inputs) const {
  BackendObservation Obs;
  MiniCompiler CC(Config, Cov, InjectBugs);
  CompileResult R = CC.compile(Ctx);
  if (R.St == CompileResult::Status::Rejected)
    return std::vector<BackendObservation>(Inputs.size(), Obs);
  Obs.FiredBugs = std::move(R.FiredBugs);
  if (R.crashed()) {
    Obs.Compile = BackendObservation::CompileStatus::Crashed;
    Obs.CrashSignature = std::move(R.CrashSignature);
    Obs.CrashBugId = R.CrashBugId;
    return std::vector<BackendObservation>(Inputs.size(), Obs);
  }
  Obs.Compile = BackendObservation::CompileStatus::Ok;
  // The MiniCC cost model: a fired Performance bug inflates compile cost
  // past the paper's pathological threshold.
  Obs.CompileTimeAnomaly = R.CompileCost > 1'000'000;

  // One compile, one VM execution per sweep input: the compile-level
  // fields are shared across the row, the exec fields are per input.
  std::vector<BackendObservation> Row(Inputs.size(), Obs);
  for (size_t I = 0; I < Inputs.size(); ++I) {
    VMOptions VO;
    VO.Input = Inputs[I];
    VMResult V = executeModule(R.Module, VO);
    switch (V.Status) {
    case VMStatus::Ok:
      Row[I].Exec = BackendObservation::ExecStatus::Ok;
      break;
    case VMStatus::Trap:
      Row[I].Exec = BackendObservation::ExecStatus::Trap;
      break;
    case VMStatus::Timeout:
      Row[I].Exec = BackendObservation::ExecStatus::Timeout;
      break;
    }
    Row[I].ExitCode = V.ExitCode;
    Row[I].Output = std::move(V.Output);
  }
  return Row;
}

std::string spe::classifyDivergence(const BackendObservation &Obs,
                                    int64_t OracleExitCode,
                                    const std::string &OracleOutput) {
  switch (Obs.Exec) {
  case BackendObservation::ExecStatus::NotRun:
    return "";
  case BackendObservation::ExecStatus::Timeout:
    // The oracle terminated (only oracle-Ok variants reach comparison),
    // so a non-terminating compiled module is a genuine divergence.
    return "miscompilation (hang)";
  case BackendObservation::ExecStatus::Trap:
    return "miscompilation (trap)";
  case BackendObservation::ExecStatus::Ok:
    break;
  }
  int64_t Got = Obs.ExitCode;
  int64_t Want = OracleExitCode;
  if (Obs.ExitCodeLow8) {
    // A POSIX wait status keeps main's return value modulo 256; compare
    // what actually survived so large oracle exit codes cannot fabricate
    // divergences.
    Got &= 0xFF;
    Want &= 0xFF;
  }
  if (Got != Want)
    return "miscompilation (exit " + std::to_string(Got) +
           " != " + std::to_string(Want) + ")";
  if (Obs.Output != OracleOutput)
    return "miscompilation (output)";
  return "";
}
