//===- compiler/IRGen.h - AST to MiniCC IR lowering ----------------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers an analyzed mini-C translation unit to the MiniCC IR. Locals live
/// in stack slots (every access is an explicit Load/Store so the
/// optimization passes have real work to do); control flow becomes a CFG,
/// including goto/label, short-circuit operators and conditional
/// expressions; struct copies become Memcpy. Global initializers must be
/// constant expressions (the corpus convention); anything outside the
/// compilable subset yields a Rejected result rather than a crash.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_COMPILER_IRGEN_H
#define SPE_COMPILER_IRGEN_H

#include "compiler/IR.h"

#include <string>

namespace spe {

/// Result of lowering.
struct IRGenResult {
  bool Ok = false;
  IRModule Module;
  std::string Error;
};

/// Lowers \p Ctx (post-Sema) to IR.
IRGenResult generateIR(ASTContext &Ctx);

} // namespace spe

#endif // SPE_COMPILER_IRGEN_H
