//===- compiler/VM.h - MiniCC IR execution engine ------------------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bytecode-style executor for MiniCC IR. On UB-free programs (the only ones
/// the differential harness compares, per Section 5.4) the O0 pipeline's
/// behavior matches the reference interpreter exactly; divergence after
/// optimization therefore indicates a compiler bug (injected or real).
/// Unlike the reference interpreter, the VM performs no UB bookkeeping -- it
/// guards only against conditions that would crash the host (bad memory,
/// division by zero) and reports them as traps.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_COMPILER_VM_H
#define SPE_COMPILER_VM_H

#include "compiler/IR.h"

#include <string>

namespace spe {

/// VM execution options.
struct VMOptions {
  uint64_t MaxSteps = 5'000'000;
  unsigned MaxCallDepth = 256;
  /// Stdin image consumed by the spe_input() intrinsic: each call parses
  /// the next integer scanf("%d")-style and yields 0 once exhausted,
  /// mirroring the reference interpreter and the external backends'
  /// scanf-based prelude byte for byte.
  std::string Input;
};

/// Outcome of a VM run.
enum class VMStatus { Ok, Trap, Timeout };

struct VMResult {
  VMStatus Status = VMStatus::Trap;
  int64_t ExitCode = 0;
  std::string Output;
  std::string Message;

  bool ok() const { return Status == VMStatus::Ok; }
};

/// Executes the module's main function.
VMResult executeModule(const IRModule &M, VMOptions Opts = {});

} // namespace spe

#endif // SPE_COMPILER_VM_H
