//===- compiler/Bugs.h - injected latent compiler bugs -------------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ground-truth bug population for the differential-testing experiments.
/// Real GCC/Clang cannot be shipped in this reproduction, so MiniCC carries
/// two personas ("gcc-sim", "clang-sim") with known latent bugs whose
/// triggers are variable-usage patterns modeled on the paper's case studies
/// (Figures 2, 3, 11, 12) and whose metadata (priority, component, affected
/// versions and optimization levels, fixed status) mirrors the shape of
/// Figure 10. Since the ground truth is known, the benches can report both
/// what a technique found and what it missed.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_COMPILER_BUGS_H
#define SPE_COMPILER_BUGS_H

#include "compiler/Features.h"

#include <functional>
#include <string>
#include <vector>

namespace spe {

/// Compiler persona under test.
enum class Persona { GccSim, ClangSim };
const char *personaName(Persona P);

/// One compiler configuration (the paper tests 2 opt levels x 2 machine
/// modes for crashes and all levels for the campaign).
struct CompilerConfig {
  Persona P = Persona::GccSim;
  /// Version code: gcc-sim uses 44..70 (4.4 .. 7.0 trunk = 70); clang-sim
  /// uses 34..40 (3.4 .. 4.0 trunk = 40).
  unsigned Version = 70;
  unsigned OptLevel = 0; ///< 0..3.
  bool Mode64 = true;    ///< -m64 vs -m32.
  /// Stdin sweep for the differential matrix: each compiled variant is
  /// executed once per entry (the spe_input() intrinsic reads them as
  /// scanf("%d") integers) and every execution is compared per-input.
  /// Empty means the classic single run on empty stdin -- exactly
  /// equivalent to {""} -- so an unswept config's behavior is untouched.
  std::vector<std::string> ExecSweep;
};

/// What an injected bug does when triggered.
enum class BugEffect {
  Crash,       ///< Internal compiler error with a signature.
  WrongCode,   ///< Silent miscompilation (an IR mutilation is applied).
  Performance, ///< Pathological compile time.
};
const char *bugEffectName(BugEffect E);

/// Wrong-code mutilations (applied to the optimized IR).
enum class Mutilation {
  None,
  DropLastStore,        ///< Delete the final Store in main (alias bugs).
  SwapFirstSubOperands, ///< a-b becomes b-a somewhere.
  FoldSelfDivToOne,     ///< v/v folded to 1 without the zero check.
  NegateFirstCondBr,    ///< One branch polarity flipped.
  DropFirstStore,       ///< Delete the first Store in main.
};

/// One injected latent bug.
struct InjectedBug {
  int Id = 0;
  Persona P = Persona::GccSim;
  /// Component label as in Figure 10(d): "c", "middle-end",
  /// "tree-optimization", "rtl-optimization", "target", "ipa".
  std::string Component;
  /// Priority P1..P5 as in Figure 10(a).
  int Priority = 3;
  /// Version range [IntroducedIn, FixedIn); FixedIn == 0 means still open.
  unsigned IntroducedIn = 0;
  unsigned FixedIn = 0;
  /// Minimum optimization level that runs the buggy code.
  unsigned MinOptLevel = 0;
  /// When true the bug only manifests in -m32 mode.
  bool Mode32Only = false;
  BugEffect Effect = BugEffect::Crash;
  Mutilation Mut = Mutilation::None;
  std::string CrashSignature;
  /// The variable-usage pattern that exercises the buggy path.
  std::function<bool(const ProgramFeatures &)> Trigger;

  /// \returns true iff the bug is live in \p Config (regardless of input).
  bool activeIn(const CompilerConfig &Config) const;
  /// \returns true iff \p Config + \p Features fire the bug.
  bool firesOn(const CompilerConfig &Config,
               const ProgramFeatures &Features) const;
};

/// The full ground-truth population for both personas. Deterministic.
const std::vector<InjectedBug> &bugDatabase();

/// Checked lookup by ground-truth id; null when \p Id is not in the
/// database. Callers must use this instead of indexing bugDatabase()
/// directly: backends without ground truth report empty or foreign
/// FiredBugs ids, and an unchecked `[Id - 1]` would read out of bounds.
const InjectedBug *findBug(int Id);

/// \returns the bugs of one persona.
std::vector<const InjectedBug *> bugsOf(Persona P);

} // namespace spe

#endif // SPE_COMPILER_BUGS_H
