//===- compiler/BatchRenderer.cpp - pack variants into one TU ------------===//

#include "compiler/BatchRenderer.h"

#include "lang/Lexer.h"
#include "support/Diagnostics.h"

using namespace spe;

namespace {

/// Library names declared by the compile prelude rather than the variant
/// itself; renaming one would sever the libc/prelude linkage the variant
/// depends on. The mini-C dialect knows exactly two: printf and the
/// harness's spe_input() sweep intrinsic.
bool isPreservedName(const std::string &Name) {
  return Name == "printf" || Name == "spe_input";
}

} // namespace

bool BatchRenderer::prefixIdentifiers(const std::string &Source,
                                      const std::string &Prefix,
                                      std::string &Out, std::string &Error) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Diags.hasErrors()) {
    Error = "variant does not re-lex: " + Diags.toString();
    return false;
  }

  // Token locations are 1-based line/column; rebuild byte offsets from the
  // line starts so the prefix splices into the raw text and everything
  // that is not an identifier survives byte-for-byte.
  std::vector<size_t> LineStart{0};
  for (size_t I = 0; I < Source.size(); ++I)
    if (Source[I] == '\n')
      LineStart.push_back(I + 1);

  Out.clear();
  Out.reserve(Source.size() + Tokens.size() * Prefix.size());
  size_t Prev = 0;
  for (const Token &T : Tokens) {
    if (T.Kind != TokenKind::Identifier || isPreservedName(T.Text))
      continue;
    if (!T.Loc.isValid() || T.Loc.Line > LineStart.size()) {
      Error = "identifier token with an unusable location";
      return false;
    }
    size_t Off = LineStart[T.Loc.Line - 1] + (T.Loc.Column - 1);
    // The raw text at the computed offset must spell the token; anything
    // else means the location math and the lexer disagree, and splicing
    // would corrupt the program.
    if (Off < Prev || Source.compare(Off, T.Text.size(), T.Text) != 0) {
      Error = "identifier token location does not match the source text";
      return false;
    }
    Out.append(Source, Prev, Off - Prev);
    Out += Prefix;
    Prev = Off;
  }
  Out.append(Source, Prev, Source.size() - Prev);
  return true;
}

BatchRenderer::Result
BatchRenderer::pack(const std::vector<std::string> &Variants,
                    const std::string &Prelude) {
  std::vector<size_t> All(Variants.size());
  for (size_t I = 0; I < All.size(); ++I)
    All[I] = I;
  return pack(Variants, All, Prelude);
}

BatchRenderer::Result
BatchRenderer::pack(const std::vector<std::string> &Variants,
                    const std::vector<size_t> &Subset,
                    const std::string &Prelude) {
  Result R;
  if (Subset.empty()) {
    R.Error = "empty batch";
    return R;
  }
  R.Source = Prelude;
  std::string Renamed;
  for (size_t Local = 0; Local < Subset.size(); ++Local) {
    const std::string &Variant = Variants[Subset[Local]];
    std::string Prefix = "v" + std::to_string(Local) + "_";
    if (!prefixIdentifiers(Variant, Prefix, Renamed, R.Error)) {
      R.Source.clear();
      return R;
    }
    R.Source += "/* variant " + std::to_string(Local) + " */\n";
    R.Source += Renamed;
    if (!R.Source.empty() && R.Source.back() != '\n')
      R.Source += '\n';
  }

  // The dispatch: full C (this text never passes through the mini-C
  // frontend), parsing argv[1] by hand so the prelude stays minimal. Each
  // case forwards the selected variant's exit code and shares the
  // process's stdout, preserving the per-variant observation convention.
  R.Source += "int main(int argc, char **argv) {\n"
              "  int spe_k = 0;\n"
              "  const char *spe_s;\n"
              "  if (argc < 2 || !argv[1][0])\n"
              "    return " +
              std::to_string(DispatchBadIndex) +
              ";\n"
              "  for (spe_s = argv[1]; *spe_s; ++spe_s) {\n"
              "    if (*spe_s < '0' || *spe_s > '9')\n"
              "      return " +
              std::to_string(DispatchBadIndex) +
              ";\n"
              "    spe_k = spe_k * 10 + (*spe_s - '0');\n"
              "  }\n"
              "  switch (spe_k) {\n";
  for (size_t Local = 0; Local < Subset.size(); ++Local)
    R.Source += "  case " + std::to_string(Local) + ": return v" +
                std::to_string(Local) + "_main();\n";
  R.Source += "  }\n"
              "  return " +
              std::to_string(DispatchBadIndex) +
              ";\n"
              "}\n";
  R.Ok = true;
  return R;
}
