//===- compiler/IR.h - MiniCC three-address intermediate form ------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intermediate representation of MiniCC, the optimizing mini-C compiler
/// that stands in for GCC/Clang in the paper's experiments. Functions are
/// CFGs of basic blocks holding three-address instructions over
/// single-assignment virtual registers; local variables live in stack slots
/// accessed via Load/Store (the slot-propagation pass then removes most of
/// the traffic). The representation is deliberately simple but rich enough
/// that the optimization passes perform the transformations the paper's
/// motivating examples exercise (constant propagation, dead code
/// elimination, CSE, loop-invariant code motion).
///
//===----------------------------------------------------------------------===//

#ifndef SPE_COMPILER_IR_H
#define SPE_COMPILER_IR_H

#include "lang/AST.h"

#include <cstdint>
#include <string>
#include <vector>

namespace spe {

/// An operand: nothing, an immediate constant, or a virtual register.
struct IROperand {
  enum class Kind { None, Const, Reg } K = Kind::None;
  /// Immediate payload (normalized to the type's width).
  uint64_t Imm = 0;
  /// Virtual register number.
  unsigned Reg = 0;
  /// Value type (integer or pointer).
  const Type *Ty = nullptr;

  static IROperand none() { return IROperand{}; }
  static IROperand constant(uint64_t Imm, const Type *Ty) {
    IROperand O;
    O.K = Kind::Const;
    O.Imm = Imm;
    O.Ty = Ty;
    return O;
  }
  static IROperand reg(unsigned Reg, const Type *Ty) {
    IROperand O;
    O.K = Kind::Reg;
    O.Reg = Reg;
    O.Ty = Ty;
    return O;
  }
  bool isConst() const { return K == Kind::Const; }
  bool isReg() const { return K == Kind::Reg; }
  bool isNone() const { return K == Kind::None; }
};

/// Instruction opcodes.
enum class IROp {
  Const,     ///< Dst = Imm(A).
  Copy,      ///< Dst = A.
  Bin,       ///< Dst = A <BinOp> B (integer arithmetic/comparison).
  Neg,       ///< Dst = -A.
  BitNot,    ///< Dst = ~A.
  Not,       ///< Dst = !A (scalar to 0/1).
  AddrSlot,  ///< Dst = &slot[SlotIndex].
  AddrGlobal,///< Dst = &global[GlobalIndex].
  PtrAdd,    ///< Dst = A + B * Scale (B integer element count).
  PtrDiff,   ///< Dst = (A - B) / Scale.
  Load,      ///< Dst = *(A) with type Ty.
  Store,     ///< *(A) = B.
  Memcpy,    ///< copy Size bytes from B to A.
  Memset,    ///< zero Size bytes at A.
  Call,      ///< Dst = call Functions[CalleeIndex](Args).
  Printf,    ///< printf(Fmt, Args).
  Input,     ///< Dst = spe_input(): next stdin sweep integer (side effect:
             ///< advances the input cursor, so never treated as pure).
  Ret,       ///< return A (A may be None for void/fall-off).
  Br,        ///< unconditional branch to Succ0.
  CondBr,    ///< branch to Succ0 if A is nonzero else Succ1.
  Unreachable,///< control never reaches here.
};

/// One three-address instruction.
struct IRInstr {
  IROp Op;
  /// Result register (meaningful when HasDst).
  unsigned Dst = 0;
  bool HasDst = false;
  /// Result type.
  const Type *Ty = nullptr;
  IROperand A;
  IROperand B;
  BinaryOp Bin = BinaryOp::Add;
  /// PtrAdd/PtrDiff element size in bytes.
  uint64_t Scale = 1;
  /// Memcpy byte count.
  uint64_t Size = 0;
  int SlotIndex = -1;
  int GlobalIndex = -1;
  int CalleeIndex = -1;
  std::vector<IROperand> Args;
  std::string Fmt;
  unsigned Succ0 = 0;
  unsigned Succ1 = 0;

  bool isTerminator() const {
    return Op == IROp::Ret || Op == IROp::Br || Op == IROp::CondBr ||
           Op == IROp::Unreachable;
  }
  /// True when the instruction can be deleted if its result is unused.
  bool isPure() const {
    switch (Op) {
    case IROp::Const:
    case IROp::Copy:
    case IROp::Bin:
    case IROp::Neg:
    case IROp::BitNot:
    case IROp::Not:
    case IROp::AddrSlot:
    case IROp::AddrGlobal:
    case IROp::PtrAdd:
    case IROp::PtrDiff:
    case IROp::Load:
      return true;
    default:
      return false;
    }
  }
};

/// A basic block: straight-line instructions ending in one terminator.
struct IRBlock {
  std::vector<IRInstr> Instrs;
};

/// A stack slot backing one local variable (parameters come first).
struct IRSlot {
  std::string Name;
  const Type *Ty = nullptr;
  uint64_t Size = 0;
  /// Conservative: address observed escaping (via AddrSlot feeding anything
  /// other than a direct Load/Store). Set by IRGen.
  bool AddressTaken = false;
};

/// A compiled function.
struct IRFunction {
  std::string Name;
  const Type *RetTy = nullptr;
  unsigned NumParams = 0;
  std::vector<IRSlot> Slots;
  std::vector<IRBlock> Blocks; ///< Blocks[0] is the entry.
  unsigned NumRegs = 0;

  unsigned newReg() { return NumRegs++; }
};

/// A global variable image.
struct IRGlobal {
  std::string Name;
  const Type *Ty = nullptr;
  std::vector<uint8_t> InitBytes; ///< Zero-filled to the full size.
};

/// A whole compiled program.
struct IRModule {
  std::vector<IRGlobal> Globals;
  std::vector<IRFunction> Functions;
  int MainIndex = -1;

  int functionIndex(const std::string &Name) const {
    for (size_t I = 0; I < Functions.size(); ++I)
      if (Functions[I].Name == Name)
        return static_cast<int>(I);
    return -1;
  }
};

/// Renders the module as readable text (for tests and debugging).
std::string printModule(const IRModule &M);
/// Renders one function.
std::string printFunction(const IRFunction &F);

/// Structural sanity checks: every block ends in exactly one terminator,
/// successors are in range, register uses are defined somewhere, slot and
/// global indices are valid. \returns an empty string when well-formed, else
/// a description of the first problem.
std::string verifyModule(const IRModule &M);

} // namespace spe

#endif // SPE_COMPILER_IR_H
