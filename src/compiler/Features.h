//===- compiler/Features.h - variable-usage pattern features -------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Syntactic variable-usage features of a program variant. The injected
/// compiler bugs trigger on exactly the patterns the paper's found bugs
/// hinged on: identical operands produced by unifying two variables
/// (Figure 3 / bug 69801), two names aliasing one object (Figure 2 /
/// bug 69951), irreducible goto loops (Figure 11b), lifetimes crossing a
/// backward goto (Figure 11d), and so on. SPE reaches these patterns by
/// exhaustive hole enumeration; random seeds rarely do -- which is the
/// paper's core claim, reproduced measurably here.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_COMPILER_FEATURES_H
#define SPE_COMPILER_FEATURES_H

#include "lang/AST.h"

namespace spe {

/// Variable-usage pattern flags extracted from one program.
struct ProgramFeatures {
  bool IdenticalSubOperands = false;   ///< v - v.
  bool IdenticalDivOperands = false;   ///< v / v or v % v.
  bool IdenticalCmpOperands = false;   ///< v == v, v < v, ...
  bool IdenticalBitOperands = false;   ///< v & v, v | v, v ^ v.
  bool IdenticalCondArms = false;      ///< c ? E : E with E structurally equal.
  bool SelfAssignment = false;         ///< v = v (possibly compound).
  bool RepeatedCallArg = false;        ///< f(..., v, ..., v, ...).
  bool AliasedPointers = false;        ///< two pointers take &v of one v.
  bool SelfAddressOfInit = false;      ///< int *p = &v; ... two names, one obj.
  bool BackwardGoto = false;           ///< goto to an earlier label.
  bool GotoIntoLoop = false;           ///< label nested in a loop + any goto.
  bool CondWithSameVarAsArm = false;   ///< v ? v : w or v ? w : v.
  bool ShiftBySelf = false;            ///< v << v or v >> v.
  bool IndexBySelf = false;            ///< v[v] shape through one variable.
  bool UninitUseLikely = false;        ///< local read before first assignment.
  bool LoopBoundIsInductionVar = false;///< for(...; i < i; ...) style.
  unsigned NumLoops = 0;
  unsigned NumGotos = 0;
  unsigned NumDerefs = 0;
  unsigned NumCalls = 0;
  unsigned NumStructAccesses = 0;
};

/// Extracts features from an analyzed translation unit.
ProgramFeatures extractFeatures(const ASTContext &Ctx);

/// Structural expression equality (same shape, same literals, same resolved
/// declarations). Used for the identical-conditional-arms feature.
bool exprStructurallyEqual(const Expr *A, const Expr *B);

} // namespace spe

#endif // SPE_COMPILER_FEATURES_H
