//===- combinatorics/SetPartitions.cpp - Set-partition generation --------===//

#include "combinatorics/SetPartitions.h"

#include <cassert>
#include <cstddef>

using namespace spe;

unsigned spe::numBlocks(const RestrictedGrowthString &RGS) {
  uint32_t Max = 0;
  if (RGS.empty())
    return 0;
  for (uint32_t Value : RGS)
    if (Value > Max)
      Max = Value;
  return Max + 1;
}

bool spe::isValidRGS(const RestrictedGrowthString &RGS) {
  uint32_t Bound = 0;
  for (uint32_t Value : RGS) {
    if (Value > Bound)
      return false;
    if (Value == Bound)
      ++Bound;
  }
  return true;
}

RestrictedGrowthString
spe::canonicalizeLabeling(const std::vector<uint32_t> &Labels) {
  RestrictedGrowthString Result(Labels.size());
  // Renumber labels in first-occurrence order.
  std::vector<uint32_t> SeenLabels;
  for (size_t I = 0; I < Labels.size(); ++I) {
    uint32_t Renamed = ~0u;
    for (size_t J = 0; J < SeenLabels.size(); ++J) {
      if (SeenLabels[J] == Labels[I]) {
        Renamed = static_cast<uint32_t>(J);
        break;
      }
    }
    if (Renamed == ~0u) {
      Renamed = static_cast<uint32_t>(SeenLabels.size());
      SeenLabels.push_back(Labels[I]);
    }
    Result[I] = Renamed;
  }
  return Result;
}

SetPartitionGenerator::SetPartitionGenerator(unsigned N, unsigned MaxBlocks)
    : N(N), MaxBlocks(MaxBlocks) {
  if (N > 0 && this->MaxBlocks > N)
    this->MaxBlocks = N;
  reset();
}

void SetPartitionGenerator::reset() {
  Started = false;
  Done = N > 0 && MaxBlocks == 0;
  Current.assign(N, 0);
  Maxima.assign(N, 0);
}

bool SetPartitionGenerator::next() {
  if (Done)
    return false;
  if (!Started) {
    Started = true;
    // The all-zeros string (single block) is the lexicographic minimum.
    for (unsigned I = 0; I < N; ++I) {
      Current[I] = 0;
      Maxima[I] = I == 0 ? 0 : (Current[I - 1] == Maxima[I - 1]
                                    ? Maxima[I - 1] + 1
                                    : Maxima[I - 1]);
    }
    if (N == 0)
      Done = true; // Single empty partition; exhausted afterwards.
    return true;
  }
  // Find the rightmost position that can be incremented: Current[I] may rise
  // to min(Maxima[I], MaxBlocks-1).
  for (unsigned I = N; I-- > 1;) {
    uint32_t Cap = Maxima[I] < MaxBlocks - 1 ? Maxima[I] : MaxBlocks - 1;
    if (Current[I] < Cap) {
      ++Current[I];
      // Reset the suffix to zeros and recompute the prefix maxima, where
      // Maxima[J] is the largest value Current[J] may take while keeping the
      // string a valid RGS, i.e. 1 + max(Current[0..J-1]).
      for (unsigned J = I + 1; J < N; ++J)
        Current[J] = 0;
      for (unsigned J = I + 1; J < N; ++J)
        Maxima[J] = Current[J - 1] == Maxima[J - 1] ? Maxima[J - 1] + 1
                                                    : Maxima[J - 1];
      return true;
    }
  }
  Done = true;
  return false;
}

void SetPartitionGenerator::seekTo(const RestrictedGrowthString &RGS) {
  assert(RGS.size() == N && "seekTo length mismatch");
  assert(isValidRGS(RGS) && "seekTo target is not a restricted growth string");
  assert((N == 0 || numBlocks(RGS) <= MaxBlocks) &&
         "seekTo target exceeds the block bound");
  Current = RGS;
  Maxima.assign(N, 0);
  for (unsigned I = 1; I < N; ++I)
    Maxima[I] = Current[I - 1] == Maxima[I - 1] ? Maxima[I - 1] + 1
                                                : Maxima[I - 1];
  Started = true;
  // With N == 0 the single empty partition is now consumed.
  Done = N == 0;
}

RgsRanker::RgsRanker(unsigned N, unsigned MaxBlocks) : N(N), MaxBlocks(MaxBlocks) {
  if (N > 0 && this->MaxBlocks > N)
    this->MaxBlocks = N;
  unsigned K = this->MaxBlocks;
  if (N == 0) {
    Total = BigInt(1); // The single empty partition.
    return;
  }
  if (K == 0) {
    Total = BigInt(0);
    return;
  }
  Suffixes.assign(N + 1, std::vector<BigInt>(K + 1, BigInt(0)));
  for (unsigned M = 0; M <= K; ++M)
    Suffixes[N][M] = BigInt(1);
  for (unsigned I = N; I-- > 1;) {
    for (unsigned M = 1; M <= K; ++M) {
      Suffixes[I][M] = Suffixes[I + 1][M] * M;
      if (M < K)
        Suffixes[I][M] += Suffixes[I + 1][M + 1];
    }
  }
  // Position 0 is forced to open the first block.
  Total = Suffixes[1][1];
}

RestrictedGrowthString RgsRanker::unrank(const BigInt &Rank) const {
  assert(Rank < Total && "RGS rank out of range");
  RestrictedGrowthString RGS(N, 0);
  if (N == 0)
    return RGS;
  BigInt Rest = Rank;
  unsigned M = 1;
  for (unsigned I = 1; I < N; ++I) {
    // Values 0..M-1 reuse a block (weight Suffixes[I+1][M] each); value M
    // opens a new one (weight Suffixes[I+1][M+1]).
    BigInt Span = Suffixes[I + 1][M] * M;
    if (Rest < Span) {
      BigInt Digit, Rem;
      BigInt::divmod(Rest, Suffixes[I + 1][M], Digit, Rem);
      RGS[I] = static_cast<uint32_t>(Digit.toUint64());
      Rest = Rem;
    } else {
      Rest -= Span;
      RGS[I] = M;
      ++M;
    }
  }
  assert(Rest.isZero() && "rank decomposition did not terminate");
  return RGS;
}

BigInt RgsRanker::rank(const RestrictedGrowthString &RGS) const {
  assert(RGS.size() == N && "rank length mismatch");
  BigInt Rank(0);
  unsigned M = 1;
  for (unsigned I = 1; I < N; ++I) {
    Rank += Suffixes[I + 1][M] * RGS[I];
    if (RGS[I] == M)
      ++M;
  }
  return Rank;
}

ExactBlockPartitionGenerator::ExactBlockPartitionGenerator(unsigned N,
                                                           unsigned K)
    : Inner(N, K), N(N), K(K) {}

bool ExactBlockPartitionGenerator::next() {
  // {0 over 0} = 1: the empty partition has exactly zero blocks.
  if (N == 0)
    return K == 0 ? Inner.next() : false;
  if (K == 0 || K > N)
    return false;
  while (Inner.next())
    if (numBlocks(Inner.current()) == K)
      return true;
  return false;
}

CombinationGenerator::CombinationGenerator(unsigned N, unsigned K)
    : N(N), K(K) {
  Done = K > N;
}

bool CombinationGenerator::next() {
  if (Done)
    return false;
  if (!Started) {
    Started = true;
    Current.resize(K);
    for (unsigned I = 0; I < K; ++I)
      Current[I] = I;
    if (K == 0)
      Done = true; // Single empty combination.
    return true;
  }
  // Standard lexicographic successor.
  for (unsigned I = K; I-- > 0;) {
    if (Current[I] < N - K + I) {
      ++Current[I];
      for (unsigned J = I + 1; J < K; ++J)
        Current[J] = Current[J - 1] + 1;
      return true;
    }
  }
  Done = true;
  return false;
}

std::vector<RestrictedGrowthString> spe::allPartitionsUpTo(unsigned N,
                                                           unsigned MaxBlocks) {
  std::vector<RestrictedGrowthString> Result;
  SetPartitionGenerator Gen(N, MaxBlocks);
  while (Gen.next())
    Result.push_back(Gen.current());
  return Result;
}

std::vector<std::vector<uint32_t>> spe::allCombinations(unsigned N,
                                                        unsigned K) {
  std::vector<std::vector<uint32_t>> Result;
  CombinationGenerator Gen(N, K);
  while (Gen.next())
    Result.push_back(Gen.current());
  return Result;
}
