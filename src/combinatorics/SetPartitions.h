//===- combinatorics/SetPartitions.h - Set-partition generation ----------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generation of set partitions encoded as restricted growth strings (RGS),
/// the canonical encoding used in Section 4.1.2 of the paper: a string
/// a_1..a_n with a_1 = 0 and a_{i+1} <= 1 + max(a_1..a_i). Each string is one
/// partition of {1..n} into unlabeled non-empty blocks; generation is in
/// lexicographic order (Knuth TAOCP 7.2.1.5).
///
//===----------------------------------------------------------------------===//

#ifndef SPE_COMBINATORICS_SETPARTITIONS_H
#define SPE_COMBINATORICS_SETPARTITIONS_H

#include "support/BigInt.h"

#include <cstdint>
#include <vector>

namespace spe {

/// A set partition of {0..n-1} as a restricted growth string: Blocks[i] is the
/// block index of element i, block indices appear in first-use order.
using RestrictedGrowthString = std::vector<uint32_t>;

/// \returns the number of blocks of \p RGS (max entry + 1; 0 for empty).
unsigned numBlocks(const RestrictedGrowthString &RGS);

/// \returns true iff \p RGS is a valid restricted growth string.
bool isValidRGS(const RestrictedGrowthString &RGS);

/// Converts an arbitrary labeling (element -> label) into canonical RGS form
/// by renumbering labels in first-occurrence order. This is the core of
/// alpha-canonicalization: two labelings are equivalent up to label renaming
/// iff they normalize to the same RGS.
RestrictedGrowthString canonicalizeLabeling(const std::vector<uint32_t> &Labels);

/// Generates all partitions of an N-element set into at most MaxBlocks
/// non-empty blocks, in lexicographic RGS order.
///
/// Usage:
/// \code
///   SetPartitionGenerator Gen(N, MaxBlocks);
///   while (Gen.next())
///     use(Gen.current());
/// \endcode
///
/// The N = 0 case yields exactly one (empty) partition.
class SetPartitionGenerator {
public:
  /// \param N          number of elements.
  /// \param MaxBlocks  maximum number of blocks; clamped to N for N > 0.
  ///                   MaxBlocks = 0 with N > 0 yields nothing.
  SetPartitionGenerator(unsigned N, unsigned MaxBlocks);

  /// Advances to the next partition. \returns false when exhausted.
  bool next();

  /// \returns the current RGS; valid only after next() returned true.
  const RestrictedGrowthString &current() const { return Current; }

  /// Restarts the generation from the first partition.
  void reset();

  /// Positions the generator exactly on \p RGS, as if next() had just
  /// returned it: current() equals \p RGS and next() yields its lexicographic
  /// successor. \p RGS must be a valid restricted growth string of length N
  /// with at most MaxBlocks blocks. This is how the enumeration cursors
  /// resume a partition stream mid-way after an unranking seek.
  void seekTo(const RestrictedGrowthString &RGS);

private:
  unsigned N;
  unsigned MaxBlocks;
  bool Started = false;
  bool Done = false;
  RestrictedGrowthString Current;
  /// Prefix maxima: Maxima[i] = 1 + max(Current[0..i-1]).
  std::vector<uint32_t> Maxima;
};

/// Generates all partitions of an N-element set into exactly K non-empty
/// blocks ({N over K} of them), by filtering the ≤K stream. The paper's
/// PARTITIONS'(Q, k).
class ExactBlockPartitionGenerator {
public:
  ExactBlockPartitionGenerator(unsigned N, unsigned K);

  bool next();
  const RestrictedGrowthString &current() const { return Inner.current(); }

private:
  SetPartitionGenerator Inner;
  unsigned N;
  unsigned K;
};

/// Generates all K-element subsets of {0..N-1} in lexicographic order; the
/// paper's COMBINATIONS(Q, k) routine used to promote local holes.
class CombinationGenerator {
public:
  CombinationGenerator(unsigned N, unsigned K);

  bool next();
  const std::vector<uint32_t> &current() const { return Current; }

private:
  unsigned N;
  unsigned K;
  bool Started = false;
  bool Done = false;
  std::vector<uint32_t> Current;
};

/// Ranks and unranks restricted growth strings of length N with at most
/// MaxBlocks blocks, in the same lexicographic order SetPartitionGenerator
/// produces them. The rank space is the BigInt count partitionsUpTo(N,
/// MaxBlocks), so Table-1-sized partition streams can be addressed directly
/// without materialization; this is the core primitive behind
/// AssignmentCursor::seek and shard (see DESIGN.md Section 5).
class RgsRanker {
public:
  RgsRanker(unsigned N, unsigned MaxBlocks);

  /// \returns the total number of strings (the rank space size).
  const BigInt &count() const { return Total; }

  /// \returns the string with lexicographic rank \p Rank. Asserts
  /// Rank < count().
  RestrictedGrowthString unrank(const BigInt &Rank) const;

  /// \returns the lexicographic rank of \p RGS (the inverse of unrank).
  BigInt rank(const RestrictedGrowthString &RGS) const;

private:
  unsigned N;
  unsigned MaxBlocks;
  /// Suffixes[I][M]: number of ways to complete positions I..N-1 of a string
  /// whose prefix uses M blocks.
  std::vector<std::vector<BigInt>> Suffixes;
  BigInt Total;
};

/// Collects all partitions of an N-set into at most MaxBlocks blocks.
/// Convenience for tests and small problem sizes.
std::vector<RestrictedGrowthString> allPartitionsUpTo(unsigned N,
                                                      unsigned MaxBlocks);

/// Collects all K-subsets of {0..N-1}. Convenience for tests.
std::vector<std::vector<uint32_t>> allCombinations(unsigned N, unsigned K);

} // namespace spe

#endif // SPE_COMBINATORICS_SETPARTITIONS_H
