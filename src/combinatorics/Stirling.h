//===- combinatorics/Stirling.h - Stirling and Bell numbers --------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stirling numbers of the second kind {n over k} and Bell numbers, cached
/// with arbitrary precision. Section 4.1.1 of the paper expresses the SPE
/// solution size without scopes as S = sum_{i=1..k} {n over i}; these tables
/// back both the counting APIs and the Table 1 / Figure 8 benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_COMBINATORICS_STIRLING_H
#define SPE_COMBINATORICS_STIRLING_H

#include "support/BigInt.h"

#include <vector>

namespace spe {

/// Memoized table of Stirling numbers of the second kind and derived sums.
///
/// All entries are computed with the triangular recurrence
/// {n,k} = k*{n-1,k} + {n-1,k-1} and cached; the table grows on demand.
class StirlingTable {
public:
  /// \returns {n over k}, the number of partitions of an n-set into exactly
  /// k non-empty unlabeled blocks. {0,0} = 1; {n,0} = 0 for n > 0.
  const BigInt &stirling2(unsigned N, unsigned K);

  /// \returns sum_{i=1..min(k,n)} {n over i}: partitions of an n-set into at
  /// most k non-empty blocks. This is the paper's PARTITIONS(Q, k) count
  /// (Eq. 1). For n = 0 returns 1 (the empty partition).
  BigInt partitionsUpTo(unsigned N, unsigned K);

  /// \returns the Bell number B(n) = partitionsUpTo(n, n).
  BigInt bell(unsigned N);

  /// \returns C(n, k) as a BigInt.
  BigInt binomial(unsigned N, unsigned K);

private:
  void growTo(unsigned N);

  /// Rows[n][k] = {n over k} for k in [0, n].
  std::vector<std::vector<BigInt>> Rows;
};

} // namespace spe

#endif // SPE_COMBINATORICS_STIRLING_H
