//===- combinatorics/Stirling.cpp - Stirling and Bell numbers ------------===//

#include "combinatorics/Stirling.h"

#include <cassert>

using namespace spe;

void StirlingTable::growTo(unsigned N) {
  if (Rows.empty())
    Rows.push_back({BigInt(1)}); // {0,0} = 1.
  while (Rows.size() <= N) {
    unsigned Row = static_cast<unsigned>(Rows.size());
    std::vector<BigInt> Next(Row + 1);
    Next[0] = BigInt(0);
    for (unsigned K = 1; K <= Row; ++K) {
      // {n,k} = k * {n-1,k} + {n-1,k-1}; {n-1,k} is 0 when k = n.
      BigInt Term = K < Row ? Rows[Row - 1][K] * static_cast<uint64_t>(K)
                            : BigInt(0);
      Term += Rows[Row - 1][K - 1];
      Next[K] = std::move(Term);
    }
    Rows.push_back(std::move(Next));
  }
}

const BigInt &StirlingTable::stirling2(unsigned N, unsigned K) {
  growTo(N);
  static const BigInt Zero(0);
  if (K > N)
    return Zero;
  return Rows[N][K];
}

BigInt StirlingTable::partitionsUpTo(unsigned N, unsigned K) {
  if (N == 0)
    return BigInt(1);
  BigInt Total(0);
  unsigned Max = K < N ? K : N;
  for (unsigned I = 1; I <= Max; ++I)
    Total += stirling2(N, I);
  return Total;
}

BigInt StirlingTable::bell(unsigned N) { return partitionsUpTo(N, N); }

BigInt StirlingTable::binomial(unsigned N, unsigned K) {
  if (K > N)
    return BigInt(0);
  if (K > N - K)
    K = N - K;
  BigInt Result(1);
  for (unsigned I = 0; I < K; ++I) {
    Result *= static_cast<uint64_t>(N - I);
    uint64_t Rem = 0;
    Result = Result.divideBySmall(I + 1, &Rem);
    assert(Rem == 0 && "binomial division must be exact");
  }
  return Result;
}
