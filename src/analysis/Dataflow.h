//===- analysis/Dataflow.h - Forward dataflow over CFGs ------------------===//
//
// Part of the SPE reproduction of "Skeletal Program Enumeration for Rigorous
// Compiler Testing" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small forward worklist engine for meet-over-paths dataflow on
/// analysis/CFG.h graphs, plus the one graph-level client every validity
/// layer needs: must-execute (which blocks lie on *every* entry-to-exit
/// path). Clients supply a lattice:
///
///   struct Client {
///     using State = ...;                // copyable, operator== comparable
///     State boundary() const;           // fact at the entry block
///     State top() const;                // identity of meet (optimistic)
///     void meet(State &Into, const State &From) const;
///     void transfer(unsigned Block, State &S) const; // in place, In -> Out
///   };
///
/// With a must-lattice (meet = intersection) the fixpoint In[B] holds facts
/// true on every path from the entry to B -- the meet-over-paths solution,
/// exact here because our transfer functions distribute over intersection.
/// Unreachable blocks keep top() and must be ignored by clients; back edges
/// feed the loop header's meet, so anything a loop body can undo is
/// conservatively dropped from the header onward.
///
//===----------------------------------------------------------------------===//

#ifndef SPE_ANALYSIS_DATAFLOW_H
#define SPE_ANALYSIS_DATAFLOW_H

#include "analysis/CFG.h"

#include <cstdint>
#include <vector>

namespace spe {

/// The fixpoint solution of one forward pass.
template <typename StateT> struct DataflowResult {
  std::vector<StateT> In;  ///< Fact on entry to each block.
  std::vector<StateT> Out; ///< Fact on exit from each block.
  /// Total block-transfer applications until the fixpoint; the convergence
  /// tests pin this to stay linear-ish on loopy graphs.
  unsigned TransfersRun = 0;
};

/// Runs \p C to fixpoint over \p G and \returns the per-block solution.
/// Blocks are seeded in reverse post-order, so acyclic regions converge in
/// one sweep and each loop costs one extra pass per carried change.
template <typename Client>
DataflowResult<typename Client::State> runForwardDataflow(const CFG &G,
                                                          const Client &C) {
  using State = typename Client::State;
  DataflowResult<State> R;
  R.In.assign(G.size(), C.top());
  R.Out.assign(G.size(), C.top());

  std::vector<unsigned> RPO = G.reversePostOrder();
  std::vector<unsigned> RPOIndex(G.size(), 0);
  for (unsigned I = 0; I < RPO.size(); ++I)
    RPOIndex[RPO[I]] = I;

  std::vector<uint8_t> OnWorklist(G.size(), 0);
  std::vector<unsigned> Worklist = RPO; // Already predecessor-first.
  for (unsigned B : Worklist)
    OnWorklist[B] = 1;

  // Simple round-robin worklist: pop front-most by RPO index. The graphs
  // are tiny (a corpus function has tens of blocks), so a plain scan per
  // pop is cheaper than a priority queue would ever amortize to.
  while (!Worklist.empty()) {
    size_t Best = 0;
    for (size_t I = 1; I < Worklist.size(); ++I)
      if (RPOIndex[Worklist[I]] < RPOIndex[Worklist[Best]])
        Best = I;
    unsigned B = Worklist[Best];
    Worklist.erase(Worklist.begin() + static_cast<long>(Best));
    OnWorklist[B] = 0;

    State NewIn =
        B == CFG::EntryBlock ? C.boundary() : C.top();
    for (unsigned P : G.block(B).Preds)
      C.meet(NewIn, R.Out[P]);
    R.In[B] = NewIn;

    State NewOut = NewIn;
    C.transfer(B, NewOut);
    ++R.TransfersRun;
    if (NewOut == R.Out[B])
      continue;
    R.Out[B] = NewOut;
    for (unsigned S : G.block(B).Succs)
      if (!OnWorklist[S]) {
        OnWorklist[S] = 1;
        Worklist.push_back(S);
      }
  }
  return R;
}

/// \returns a size()-long mask of the blocks that lie on *every* path from
/// the entry to the exit -- the blocks whose elements are evaluated at
/// least once by any execution of the function that returns. Computed as a
/// must-dataflow whose state is the set of blocks traversed so far: at the
/// exit, the meet over all paths leaves exactly the blocks no path avoids.
/// When the exit is unreachable no execution of the function terminates, so
/// the property holds vacuously for every block and the mask is all-ones;
/// callers relying on "executes at least once" also require the whole
/// program to terminate, which the reference oracle's timeout enforces.
inline std::vector<uint8_t> mustExecuteBlocks(const CFG &G) {
  struct TraversedClient {
    const CFG &G;
    using State = std::vector<uint8_t>;
    State boundary() const {
      State S(G.size(), 0);
      S[CFG::EntryBlock] = 1;
      return S;
    }
    State top() const { return State(G.size(), 1); }
    void meet(State &Into, const State &From) const {
      for (size_t I = 0; I < Into.size(); ++I)
        Into[I] = Into[I] && From[I];
    }
    void transfer(unsigned Block, State &S) const { S[Block] = 1; }
  };
  TraversedClient C{G};
  DataflowResult<std::vector<uint8_t>> R = runForwardDataflow(G, C);
  return R.In[CFG::ExitBlock];
}

} // namespace spe

#endif // SPE_ANALYSIS_DATAFLOW_H
