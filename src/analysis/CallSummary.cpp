//===- analysis/CallSummary.cpp - Per-callee summaries over CFGs ---------===//

#include "analysis/CallSummary.h"

#include "analysis/Dataflow.h"
#include "analysis/ExprEvents.h"

#include <algorithm>

using namespace spe;

FunctionCFGInfo spe::buildFunctionCFGInfo(const FunctionDecl &F) {
  FunctionCFGInfo Info;
  Info.Graph = CFG::build(F);
  Info.Reachable = Info.Graph.reachableFromEntry();
  Info.MustExec = mustExecuteBlocks(Info.Graph);
  return Info;
}

namespace {

/// Collects the targets of definite call events.
class CallCollector : public ExprEventHandler {
public:
  void onRead(const DeclRefExpr *, bool) override {}
  void onWrite(const DeclRefExpr *) override {}
  void onCall(const FunctionDecl *Callee, bool Definite) override {
    if (Definite && Callee->isDefinition())
      Callees.push_back(Callee);
  }

  std::vector<const FunctionDecl *> Callees;
};

} // namespace

std::vector<const FunctionDecl *>
spe::mustCallees(const FunctionCFGInfo &Info) {
  CallCollector Collector;
  for (unsigned B = 0; B < Info.Graph.size(); ++B) {
    if (!Info.MustExec[B] || !Info.Reachable[B])
      continue;
    for (const CFGElement &El : Info.Graph.block(B).Elems)
      walkElementEvents(El, Collector);
  }
  // Deterministic de-dup preserving first-mention order.
  std::vector<const FunctionDecl *> Result;
  for (const FunctionDecl *F : Collector.Callees)
    if (std::find(Result.begin(), Result.end(), F) == Result.end())
      Result.push_back(F);
  return Result;
}

std::map<const FunctionDecl *, FunctionCFGInfo>
spe::buildAllFunctionCFGs(const ASTContext &Ctx) {
  std::map<const FunctionDecl *, FunctionCFGInfo> Infos;
  for (const FunctionDecl *F : Ctx.functions())
    if (F->isDefinition())
      Infos.emplace(F, buildFunctionCFGInfo(*F));
  return Infos;
}

std::set<const FunctionDecl *> spe::mustCalledFunctions(
    const ASTContext &Ctx,
    const std::map<const FunctionDecl *, FunctionCFGInfo> &Infos) {
  std::set<const FunctionDecl *> Result;
  const FunctionDecl *Main = Ctx.findFunction("main");
  if (!Main || !Main->body() || !Infos.count(Main))
    return Result;
  std::vector<const FunctionDecl *> Work{Main};
  Result.insert(Main);
  while (!Work.empty()) {
    const FunctionDecl *F = Work.back();
    Work.pop_back();
    auto It = Infos.find(F);
    if (It == Infos.end())
      continue;
    for (const FunctionDecl *Callee : mustCallees(It->second))
      if (Result.insert(Callee).second)
        Work.push_back(Callee);
  }
  return Result;
}
